#!/usr/bin/env python3
"""Summarize bench_output.txt into the compact per-figure tables used in
EXPERIMENTS.md. Pure-stdlib; reads the google-benchmark console format.

Also ingests BENCH_quiesce.json ("tle-quiesce/v1", emitted by
bench/quiesce_scale — see summarize_quiesce below) and BENCH_tm_ops.json
(emitted by bench/abl_overhead, schema "tle-tm-ops/v1" — authoritative
documentation in bench/bench_support.hpp):

    {"schema": "tle-tm-ops/v1",
     "secs_per_cell": <double>,
     "results": [{"workload": ..., "mode": ..., "threads": ...,
                  "txns": ..., "ops_per_sec": ..., "accesses_per_sec": ...,
                  "abort_pct": ..., "serial_pct": ...,
                  "quiesce_waits": ..., "quiesce_spins": ...,
                  "stm_read_dedup": ..., "htm_read_dedup": ...,
                  "htm_rw_hits": ...}, ...],
     "baseline_prepr": {"htm_read_own_write_ops": ...,
                        "mlwt_large_read_set_ops": ..., "note": ...},
     "speedup_vs_prepr": {"htm_read_own_write": ...,
                          "mlwt_large_read_set": ...}}

The JSON file is looked for next to the benchmark output (same directory),
or passed explicitly as a second argument."""
import json
import os
import re
import sys
from collections import defaultdict


def parse(path):
    rows = []
    pat = re.compile(r"^(\S+)\s+(\d+(?:\.\d+)?) ms\s+(\d+(?:\.\d+)?) ms\s+\d+(.*)$")
    for line in open(path):
        m = pat.match(line.strip())
        if not m:
            continue
        name, real, _cpu, rest = m.groups()
        counters = {}
        for key, val in re.findall(r"(\w+)=([-\d.kMGu]+)", rest):
            mult = 1.0
            if val.endswith("k"):
                mult, val = 1e3, val[:-1]
            elif val.endswith("M"):
                mult, val = 1e6, val[:-1]
            elif val.endswith("G"):
                mult, val = 1e9, val[:-1]
            elif val.endswith("u"):
                mult, val = 1e-6, val[:-1]
            try:
                counters[key] = float(val) * mult
            except ValueError:
                pass
        rows.append((name, float(real), counters))
    return rows


def fig(rows, prefix):
    return [r for r in rows if r[0].startswith(prefix)]


def summarize_tm_ops(path):
    """Per-access overhead table from BENCH_tm_ops.json ("tle-tm-ops/v1")."""
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        print(f"  (cannot read {path}: {e})")
        return
    if doc.get("schema") != "tle-tm-ops/v1":
        print(f"  (unexpected schema {doc.get('schema')!r} in {path})")
        return
    print(f"== tm-ops: per-access overhead ({doc.get('secs_per_cell', 0)}s/cell) ==")
    by_wl = defaultdict(list)
    for r in doc.get("results", []):
        by_wl[r.get("workload", "?")].append(r)
    routed = immediate = 0
    for wl, cells in by_wl.items():
        parts = []
        for c in cells:
            dedup = (c.get("stm_read_dedup", 0) + c.get("htm_read_dedup", 0)
                     + c.get("htm_rw_hits", 0))
            tag = f"{c.get('mode', '?')}={c.get('ops_per_sec', 0):.3g}"
            if dedup:
                tag += "*"  # dedup/index hits recorded for this cell
            parts.append(tag)
            routed += (c.get("htm_routed_frees", 0)
                       + c.get("priv_limbo_routed", 0))
            immediate += c.get("priv_immediate_frees", 0)
        print(f"  {wl:16s} ops/s: " + "  ".join(parts))
    if routed or immediate:
        print(f"  routed frees: {routed} via limbo (HTM readers in flight), "
              f"{immediate} immediate")
    sp = doc.get("speedup_vs_prepr", {})
    base = doc.get("baseline_prepr", {})
    if sp:
        print("  speedup vs pre-overhaul engine "
              f"({base.get('note', 'no baseline note')}):")
        for k, v in sp.items():
            print(f"    {k:24s} {v:.2f}x")


def summarize_quiesce(path):
    """Quiescence-scaling table from BENCH_quiesce.json ("tle-quiesce/v1",
    emitted by bench/quiesce_scale): writer-commit throughput per
    {policy, frees, threads} cell plus grace/limbo accounting."""
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        print(f"  (cannot read {path}: {e})")
        return
    if doc.get("schema") != "tle-quiesce/v1":
        print(f"  (unexpected schema {doc.get('schema')!r} in {path})")
        return
    print(f"== quiesce-scale: writer commits/s "
          f"({doc.get('secs_per_cell', 0)}s/cell) ==")
    by_cfg = defaultdict(list)
    for c in doc.get("results", []):
        by_cfg[(c.get("policy", "?"), c.get("frees", "?"))].append(c)
    for (policy, frees), cells in sorted(by_cfg.items()):
        cells.sort(key=lambda c: c.get("threads", 0))
        parts = [f"{c.get('threads', 0)}T={c.get('commits_per_sec', 0):.3g}"
                 for c in cells]
        shared = sum(c.get("grace_shared", 0) for c in cells)
        limbo = sum(c.get("limbo_enqueued", 0) for c in cells)
        tag = f"  {policy:10s} frees={frees:5s} " + "  ".join(parts)
        if shared or limbo:
            tag += f"   (grace_shared={shared:.0f} limbo_enq={limbo:.0f})"
        print(tag)
    sp = doc.get("speedup_vs_prepr", {})
    base = doc.get("baseline_prepr", {})
    if sp:
        print("  speedup vs per-commit-quiesce engine "
              f"({base.get('note', 'no baseline note')}):")
        for k, v in sp.items():
            print(f"    {k:24s} {v:.2f}x")


def summarize_governor(path):
    """Contention-governor A/B table from BENCH_governor.json
    ("tle-governor/v1", emitted by bench/abl_htm_retry): the retry-budget
    sweep plus the lemming-effect cells (governor on/off) and the
    acceptance ratios. `elided_commits_per_sec` counts only speculative
    (lock-elided) commits — the rate a serialization convoy destroys."""
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        print(f"  (cannot read {path}: {e})")
        return
    if doc.get("schema") != "tle-governor/v1":
        print(f"  (unexpected schema {doc.get('schema')!r} in {path})")
        return
    print(f"== governor: lemming-effect A/B "
          f"({doc.get('secs_per_cell', 0)}s/cell) ==")
    sweep = doc.get("sweep", [])
    if sweep:
        print("  retry sweep (ops/s by retries x threads):")
        by_r = defaultdict(list)
        for c in sweep:
            by_r[c.get("retries", 0)].append(c)
        for r, cells in sorted(by_r.items()):
            cells.sort(key=lambda c: c.get("threads", 0))
            parts = [f"{c.get('threads', 0)}T={c.get('ops_per_sec', 0):.3g}"
                     for c in cells]
            print(f"    retries={r:<3d} " + "  ".join(parts))
    for c in doc.get("lemming", []):
        print(f"  governor={c.get('governor', '?'):3s} "
              f"elided/s={c.get('elided_commits_per_sec', 0):.3g} "
              f"total/s={c.get('total_txns_per_sec', 0):.3g} "
              f"fallbacks={c.get('serial_fallbacks', 0)} "
              f"convoy={c.get('convoy_depth', 0):.1f} "
              f"drains={c.get('gov_drain_waits', 0)} "
              f"storms={c.get('gov_storm_enters', 0)} "
              f"watchdog={c.get('gov_watchdog_escalations', 0)}")
    acc = doc.get("acceptance", {})
    if acc:
        print(f"  acceptance @ {acc.get('threads', '?')}T: "
              f"elided ratio {acc.get('commits_ratio', 0):.2f}x "
              f"(>= 2.0), total ratio {acc.get('total_ratio', 0):.2f}x, "
              f"fallback drop {100 * acc.get('fallback_drop', 0):.1f}% "
              f"(>= 50%)")


def summarize_commit_scale(path):
    """Commit-striping A/B table from BENCH_commit_scale.json
    ("tle-commit-scale/v1", emitted by bench/abl_commit_scale): elided
    commits/s per {workload, stripes, threads} cell plus the striped vs
    single-sequence acceptance ratio at the widest disjoint cell."""
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        print(f"  (cannot read {path}: {e})")
        return
    if doc.get("schema") != "tle-commit-scale/v1":
        print(f"  (unexpected schema {doc.get('schema')!r} in {path})")
        return
    print(f"== commit-scale: striped vs single commit sequence "
          f"({doc.get('secs_per_cell', 0)}s/cell) ==")
    by_cfg = defaultdict(list)
    for c in doc.get("cells", []):
        by_cfg[(c.get("workload", "?"), c.get("stripes", 0))].append(c)
    for (workload, stripes), cells in sorted(by_cfg.items()):
        cells.sort(key=lambda c: c.get("threads", 0))
        parts = [f"{c.get('threads', 0)}T="
                 f"{c.get('elided_commits_per_sec', 0):.3g}"
                 for c in cells]
        falserev = sum(c.get("stripe_false_revalidations", 0) for c in cells)
        busy = sum(c.get("aborts_stripe_busy", 0) for c in cells)
        tag = f"  {workload:9s} stripes={stripes:<3d} " + "  ".join(parts)
        if falserev or busy:
            tag += f"   (false_reval={falserev:.0f} stripe_busy={busy:.0f})"
        print(tag)
    acc = doc.get("acceptance", {})
    if acc.get("commits_ratio") is not None:
        print(f"  acceptance @ {acc.get('threads', '?')}T "
              f"{acc.get('workload', '?')}: striped/single elided ratio "
              f"{acc.get('commits_ratio', 0):.2f}x (>= 3.0 full run)")


def summarize_stm_algo(path):
    """Commit-protocol shoot-out table from BENCH_stm_algo.json
    ("tle-stm-algo/v1", emitted by bench/abl_stm_algo): speculative
    commits/s per {algo, mix, threads} cell for ml_wt / gl_wt / tictoc
    behind the StmProtocol seam, plus the tictoc-vs-ml_wt read-mostly
    acceptance ratio and the TicToc-specific counters (rts extensions,
    certification failures, commit-window lock waits/timeouts)."""
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        print(f"  (cannot read {path}: {e})")
        return
    if doc.get("schema") != "tle-stm-algo/v1":
        print(f"  (unexpected schema {doc.get('schema')!r} in {path})")
        return
    print(f"== stm-algo: commit-protocol shoot-out "
          f"({doc.get('secs_per_cell', 0)}s/cell) ==")
    by_cfg = defaultdict(list)
    for c in doc.get("cells", []):
        by_cfg[(c.get("mix", "?"), c.get("algo", "?"))].append(c)
    for (mix, algo), cells in sorted(by_cfg.items()):
        cells.sort(key=lambda c: c.get("threads", 0))
        parts = [f"{c.get('threads', 0)}T={c.get('commits_per_sec', 0):.3g}"
                 for c in cells]
        conflict = sum(c.get("aborts_conflict", 0) for c in cells)
        valid = sum(c.get("aborts_validation", 0) for c in cells)
        tag = f"  {mix:12s} {algo:7s} " + "  ".join(parts)
        if conflict or valid:
            tag += f"   (conflict={conflict:.0f} validation={valid:.0f})"
        ext = sum(c.get("tictoc_extensions", 0) for c in cells)
        if ext:
            tag += (f" ext={ext:.0f}"
                    f" ext_fail="
                    f"{sum(c.get('tictoc_extension_fails', 0) for c in cells):.0f}"
                    f" waits="
                    f"{sum(c.get('tictoc_wts_waits', 0) for c in cells):.0f}"
                    f" lock_to="
                    f"{sum(c.get('tictoc_lock_timeouts', 0) for c in cells):.0f}")
        print(tag)
    acc = doc.get("acceptance", {})
    if acc.get("commits_ratio") is not None:
        print(f"  acceptance @ {acc.get('threads', '?')}T "
              f"{acc.get('mix', '?')}: tictoc/ml_wt commits ratio "
              f"{acc.get('commits_ratio', 0):.2f}x (>= 1.5 full run)")


def summarize_adapt(path):
    """Adaptive-controller shoot-out table from BENCH_adapt.json
    ("tle-adapt/v1", emitted by bench/abl_adapt): per-phase ops/s for every
    static configuration and for the controller, the controller's decision
    tally (degraded entries/exits, drained mode switches, flaps), and the
    adaptive-vs-static acceptance ratios (>= 1.0x best, >= 1.5x worst on
    the full run)."""
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        print(f"  (cannot read {path}: {e})")
        return
    if doc.get("schema") != "tle-adapt/v1":
        print(f"  (unexpected schema {doc.get('schema')!r} in {path})")
        return
    print(f"== adapt: controller vs static configurations "
          f"({doc.get('secs_per_phase', 0)}s/phase, "
          f"{doc.get('threads', '?')}T) ==")
    for c in doc.get("cells", []):
        parts = [f"{p.get('phase', '?')}={p.get('ops_per_sec', 0):.3g}"
                 for p in c.get("phases", [])]
        line = (f"  {c.get('config', '?'):12s} "
                f"total={c.get('total_ops_per_sec', 0):.3g}  "
                + "  ".join(parts))
        ctl = c.get("ctl", {})
        if ctl.get("evals"):
            line += (f"   (evals={ctl.get('evals', 0)}"
                     f" plans={ctl.get('plan_changes', 0)}"
                     f" degraded={ctl.get('degraded_enters', 0)}"
                     f"/{ctl.get('degraded_exits', 0)}"
                     f" switches={ctl.get('mode_switches', 0)}"
                     f" flaps={ctl.get('flaps', 0)}"
                     f" final={ctl.get('final_mode', '?')})")
        print(line)
    acc = doc.get("acceptance", {})
    if acc.get("vs_best") is not None:
        print(f"  acceptance: vs best static ({acc.get('best_static', '?')}) "
              f"{acc.get('vs_best', 0):.2f}x (>= 1.0 full run), vs worst "
              f"({acc.get('worst_static', '?')}) "
              f"{acc.get('vs_worst', 0):.2f}x (>= 1.5 full run)")


def summarize_obs(path):
    """Per-site profile table from a tle-obs/v1 document (emitted via
    TLE_STATS_DUMP=FILE by any binary linking the TM runtime, or by
    tle::obs::obs_json()). Shows the Figure-4 view: per named TLE_TX_SITE,
    attempts / commits / aborts-by-cause / serial fraction, plus p50/p99
    attempt latency derived from the log2 histograms."""
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        print(f"  (cannot read {path}: {e})")
        return
    if doc.get("schema") != "tle-obs/v1":
        print(f"  (unexpected schema {doc.get('schema')!r} in {path})")
        return

    def pctl(hist, p):
        # Midpoint rule, mirroring obs::percentile_from_buckets: bucket 0
        # holds [0, 2) and reports 1; bucket floor 2^b reports 2^b + 2^(b-1).
        total = sum(c for _, c in hist)
        if not total:
            return 0.0
        want = p * total
        seen = 0
        for floor, count in hist:
            seen += count
            if seen >= want:
                return 1 if floor == 0 else floor + floor // 2
        floor = hist[-1][0]
        return 1 if floor == 0 else floor + floor // 2

    stats = doc.get("stats", {})
    print(f"== obs: {doc.get('mode', '?')} — "
          f"{stats.get('commits', 0)} commits, "
          f"{stats.get('aborts_total', 0)} aborts, "
          f"{stats.get('serial_commits', 0)} serial ==")
    sites = sorted(doc.get("sites", []),
                   key=lambda s: (-s.get("aborts_total", 0),
                                  -s.get("attempts", 0)))
    print(f"  {'site':28s} {'attempts':>9s} {'commits':>9s} {'aborts':>7s} "
          f"{'abrt%':>6s} {'serial':>7s} {'p50us':>8s} {'p99us':>8s}")
    for s in sites:
        att = s.get("attempts", 0)
        ab = s.get("aborts_total", 0)
        serial = s.get("serial_fallbacks", 0) + s.get("serial_commits", 0)
        hist = s.get("attempt_ns_hist", [])
        print(f"  {s.get('name', '?'):28s} {att:9d} {s.get('commits', 0):9d} "
              f"{ab:7d} {100.0 * ab / att if att else 0.0:6.2f} {serial:7d} "
              f"{pctl(hist, 0.50) / 1e3:8.1f} {pctl(hist, 0.99) / 1e3:8.1f}")
        causes = {k: v for k, v in s.get("aborts", {}).items() if v}
        if causes:
            print("    " + "  ".join(f"{k}={v}"
                                     for k, v in sorted(causes.items())))


def summarize_metrics(path):
    """Interval-telemetry rollup from a tle-metrics/v1 stream
    (TLE_METRICS_OUT=FILE — one JSON record per window, JSONL). Shows the
    windowed view the background sampler captured: per-window commit/abort
    rates, gauge peaks, and a per-site total with a conservation check
    (summed window deltas vs the last cumulative total_commits)."""
    windows = []
    try:
        with open(path) as f:
            for line in f:
                line = line.strip()
                if not line:
                    continue
                rec = json.loads(line)
                if rec.get("schema") == "tle-metrics/v1":
                    windows.append(rec)
    except (OSError, ValueError) as e:
        print(f"  (cannot read {path}: {e})")
        return
    if not windows:
        print(f"  (no tle-metrics/v1 records in {path})")
        return
    totals = [w.get("totals", {}) for w in windows]
    commits = sum(t.get("commits", 0) for t in totals)
    aborts = sum(t.get("aborts", 0) for t in totals)
    serial = sum(t.get("serial_commits", 0) for t in totals)
    dur_s = sum(w.get("duration_ns", 0) for w in windows) / 1e9
    rates = [t.get("commit_rate", 0.0) for t in totals
             if t.get("commit_rate")]
    gauges = [w.get("gauges", {}) for w in windows]
    print(f"== metrics: {len(windows)} window(s) over {dur_s:.2f}s — "
          f"{commits} commits, {aborts} aborts, {serial} serial ==")
    if rates:
        print(f"  commit rate: mean={sum(rates) / len(rates):.3g}/s  "
              f"peak={max(rates):.3g}/s")
    print(f"  gauge peaks: inflight={max((g.get('inflight_txns', 0) for g in gauges), default=0)}  "
          f"limbo={max((g.get('limbo_pending', 0) for g in gauges), default=0)}  "
          f"oldest_txn={max((g.get('oldest_txn_age_ns', 0) for g in gauges), default=0) / 1e3:.1f}us  "
          f"serial_hold={sum(g.get('serial_hold_ns', 0) for g in gauges) / 1e6:.2f}ms")
    per_site = {}
    for w in windows:
        for s in w.get("sites", []):
            d = per_site.setdefault(s.get("id"),
                                    {"name": s.get("name", "?"), "commits": 0,
                                     "aborts": 0, "last_total": 0, "p99": 0})
            d["commits"] += s.get("commits", 0)
            d["aborts"] += s.get("aborts_total", 0)
            d["last_total"] = s.get("total_commits", 0)
            d["p99"] = max(d["p99"], s.get("p99_ns", 0))
    for sid, d in sorted(per_site.items(), key=lambda kv: -kv[1]["commits"]):
        conserved = "" if d["commits"] == d["last_total"] else \
            f"  !! deltas {d['commits']} != cumulative {d['last_total']}"
        print(f"  {d['name']:28s} commits={d['commits']:<10d} "
              f"aborts={d['aborts']:<8d} p99={d['p99'] / 1e3:8.1f}us"
              f"{conserved}")


def main():
    path = sys.argv[1] if len(sys.argv) > 1 else "bench_output.txt"

    # Direct mode: a recognized schema JSON (or JSONL stream) as the sole
    # argument. A tle-metrics/v1 stream is JSONL, so sniff its first line
    # when whole-file parsing fails.
    if path.endswith((".json", ".jsonl")):
        schema = None
        try:
            with open(path) as f:
                schema = json.load(f).get("schema")
        except (OSError, ValueError):
            try:
                with open(path) as f:
                    schema = json.loads(f.readline()).get("schema")
            except (OSError, ValueError):
                schema = None
        if schema == "tle-obs/v1":
            summarize_obs(path)
            return
        if schema == "tle-governor/v1":
            summarize_governor(path)
            return
        if schema == "tle-commit-scale/v1":
            summarize_commit_scale(path)
            return
        if schema == "tle-stm-algo/v1":
            summarize_stm_algo(path)
            return
        if schema == "tle-adapt/v1":
            summarize_adapt(path)
            return
        if schema == "tle-metrics/v1":
            summarize_metrics(path)
            return

    rows = parse(path)

    tm_ops = (sys.argv[2] if len(sys.argv) > 2 else
              os.path.join(os.path.dirname(path) or ".", "BENCH_tm_ops.json"))
    if os.path.exists(tm_ops):
        summarize_tm_ops(tm_ops)

    quiesce = os.path.join(os.path.dirname(path) or ".", "BENCH_quiesce.json")
    if os.path.exists(quiesce):
        summarize_quiesce(quiesce)

    governor = os.path.join(os.path.dirname(path) or ".",
                            "BENCH_governor.json")
    if os.path.exists(governor):
        summarize_governor(governor)

    commit_scale = os.path.join(os.path.dirname(path) or ".",
                                "BENCH_commit_scale.json")
    if os.path.exists(commit_scale):
        summarize_commit_scale(commit_scale)

    stm_algo = os.path.join(os.path.dirname(path) or ".",
                            "BENCH_stm_algo.json")
    if os.path.exists(stm_algo):
        summarize_stm_algo(stm_algo)

    adapt = os.path.join(os.path.dirname(path) or ".", "BENCH_adapt.json")
    if os.path.exists(adapt):
        summarize_adapt(adapt)

    obs = os.path.join(os.path.dirname(path) or ".", "BENCH_obs.json")
    if os.path.exists(obs):
        summarize_obs(obs)

    metrics = os.path.join(os.path.dirname(path) or ".",
                           "BENCH_metrics.jsonl")
    if os.path.exists(metrics):
        summarize_metrics(metrics)

    print("== fig2: HTM serial-fallback band (paper: 13-18%) ==")
    vals = [c.get("serial_pct", 0) for n, _, c in fig(rows, "fig2/") if "HTM" in n]
    if vals:
        print(f"  min={min(vals):.1f}%  mean={sum(vals)/len(vals):.1f}%  max={max(vals):.1f}%  (n={len(vals)})")

    print("== fig2: transaction counts by block size (Compress, 4 threads) ==")
    for n, _, c in fig(rows, "fig2/Compress"):
        if "/threads:4/" in n and "STM+CondVar/" in n:
            print(f"  {n.split('/')[2]}: txns={c.get('txns', 0):.0f} abort_pct={c.get('abort_pct', 0):.3f}")

    print("== fig3: speedup_vs_pthread1 range per mode ==")
    by_mode = defaultdict(list)
    for n, _, c in fig(rows, "fig3/"):
        by_mode[n.split("/")[3]].append(c.get("speedup_vs_pthread1", 0))
    for mode, vs in sorted(by_mode.items()):
        print(f"  {mode:24s} min={min(vs):.2f} max={max(vs):.2f}")

    print("== fig4: aborts per 1000 txns vs threads ==")
    for n, _, c in fig(rows, "fig4/"):
        print(f"  {n}: aborts_per_ktxn={c.get('aborts_per_ktxn', 0):.1f} serial_pct={c.get('serial_pct', 0):.1f}")

    print("== fig5: regime throughput geometric means (ops/s) ==")
    geo = defaultdict(lambda: [0.0, 0])
    for n, _, c in fig(rows, "fig5/"):
        if "fig5x" in n:
            continue
        regime = n.split("/")[4].split("/")[0]
        import math
        v = c.get("ops_per_sec", 0)
        if v > 0:
            geo[regime][0] += math.log(v)
            geo[regime][1] += 1
    import math
    for regime, (slog, cnt) in sorted(geo.items()):
        if cnt:
            print(f"  {regime:12s} geomean={math.exp(slog/cnt)/1e6:.2f}M over {cnt} cells")

    print("== fig5: list lookup50 at 8 threads (the paper's congestion-control cell) ==")
    for n, _, c in fig(rows, "fig5/list/lookup50/threads:8"):
        print(f"  {n.split('/')[-2]}: {c.get('ops_per_sec', 0)/1e6:.2f}M ops/s quiesce={c.get('quiesce', 0):.0f} q_waits={c.get('q_waits', 0):.0f} abort_pct={c.get('abort_pct', 0):.4f}")

    print("== ablations ==")
    for p in ["abl_quiesce_cc", "abl_htm_retry", "abl_lock_erasure", "abl_stm_algo", "abl_slices"]:
        for n, _, c in fig(rows, p):
            extras = " ".join(
                f"{k}={c[k]:.3g}" for k in
                ("ops_per_sec", "serial_pct", "q_waits", "bits", "psnr_db")
                if k in c and c[k])
            print(f"  {n}: {extras}")


if __name__ == "__main__":
    main()
