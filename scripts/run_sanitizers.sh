#!/usr/bin/env bash
# Address+UB sanitizer spot-checks of the most memory-sensitive suites:
# the TM core (longjmp rollback, allocation logs), the privatization
# stress tests (quiesce-before-free), and the data structures (node
# reclamation under concurrency).
set -euo pipefail
cd "$(dirname "$0")/.."

CXX=${CXX:-g++}
FLAGS="-fsanitize=address,undefined -fno-omit-frame-pointer -O1 -g -std=c++20 -Isrc -Itests"
TM_SRCS="src/tm/engine.cpp src/tm/registry.cpp src/tm/runtime.cpp src/tm/audit.cpp src/tm/trace.cpp"
LIBS="-lgtest -lgtest_main -pthread"
OUT=$(mktemp -d)

for test in tm_core_test tm_privatization_test dstruct_test tm_engine_edge_test; do
  extra=""
  [ "$test" = tm_privatization_test ] && extra="src/sync/tx_condvar.cpp"
  echo "== $test (ASan+UBSan)"
  # shellcheck disable=SC2086
  $CXX $FLAGS "tests/$test.cpp" $TM_SRCS $extra $LIBS -o "$OUT/$test"
  "$OUT/$test"
done
echo "all sanitizer runs clean"
