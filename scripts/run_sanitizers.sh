#!/usr/bin/env bash
# Sanitizer presets over the tier-1 suites most sensitive to the TM
# runtime's memory and ordering tricks: the TM core (longjmp rollback,
# allocation logs), privatization (quiesce-before-free and the mode-aware
# routed reclamation, rerun under a seeded htm_zombie fault matrix), the data
# structures (node reclamation under concurrency), the engine edge cases,
# the quiescence substrate (grace sharing, parking, limbo reclamation), the
# observability layer (seqlock trace ring under concurrent
# emit/snapshot/reset, per-site counter tables, the windowed metrics
# sampler ticking against live counter bumps), and the contention
# governor (storm-window folding, token gate, drain waits under racing
# serial writers), and the striped commit sequence (per-stripe seqlock
# acquisition/release ordering, lazy subscription, deferred gclock CAS).
#
#   asan  — AddressSanitizer + UBSan: catches use-after-free of limbo'd
#           nodes, i.e. frees released before a covering grace period.
#   tsan  — ThreadSanitizer: catches ordering bugs in the epoch/park
#           protocol and the serial lock's Dekker edges.
#
# Usage: run_sanitizers.sh [asan|tsan|all]   (default: all)
# Wired to the build as `cmake --build build --target check-sanitizers`.
set -euo pipefail
cd "$(dirname "$0")/.."

PRESET=${1:-all}
CXX=${CXX:-g++}
TM_SRCS="src/tm/engine.cpp src/tm/registry.cpp src/tm/runtime.cpp src/tm/audit.cpp src/tm/trace.cpp src/tm/fault/fault.cpp src/tm/governor/governor.cpp src/tm/obs/site.cpp src/tm/obs/export.cpp src/tm/obs/metrics.cpp src/tm/obs/sampler.cpp src/tm/control/control.cpp"
LIBS="-lgtest -lgtest_main -pthread"
OUT=$(mktemp -d)
trap 'rm -rf "$OUT"' EXIT

# suite -> extra sources beyond the TM core.
suite_extra() {
  case "$1" in
    tm_privatization_test|sync_stress_test|fault_injection_test) echo "src/sync/tx_condvar.cpp" ;;
    *) echo "" ;;
  esac
}
SUITES="tm_core_test tm_privatization_test dstruct_test tm_engine_edge_test quiesce_stress_test sync_stress_test obs_test metrics_test site_overflow_test fault_injection_test governor_test control_test tm_stripe_test tm_protocol_test"

# Seeded fault matrix: rerun the suites most sensitive to the perturbed
# windows with the env-armed chaos plan, so the sanitizers watch the Dekker
# handshakes while injection drives aborts and delays through them.
FAULT_SUITES="tm_core_test sync_stress_test quiesce_stress_test"
FAULT_SEED=20260806

# Privatization suite (hard-gating): the mode-aware reclamation routing is
# additionally driven through five seeded reruns with perturbation parked
# directly inside the simulated-HTM zombie window (delay/yield@htm_zombie),
# so ASan catches any privatizing free that escapes the limbo routing and
# TSan checks the epoch/limbo edges under the stretched window. The plan is
# perturbation-only: aborts would retry the rendezvous tests' pinned
# interleavings out of existence.
PRIV_SEEDS="1 2 3 4 5"
PRIV_PLAN="delay@htm_zombie=0.3/20000,yield@htm_zombie=0.3"

# Controller chaos matrix (hard-gating): the phase-shift chaos suite
# (capacity -> conflict -> spurious fault plans against the live engine)
# reruns across >= 3 seeds with perturbation parked on the controller's own
# evaluation tick (delay/yield@ctl_tick), so ASan+TSan watch the plan-word
# publication, the drained mode switch, and the probe admission counters
# while evaluations land at stretched, shifted instants. Perturbation-only
# for the same reason as the privatization plan: injected aborts would
# change the decision sequence the byte-identity test pins.
CTL_SEEDS="11 12 13"
CTL_PLAN="delay@ctl_tick=0.5/20000,yield@ctl_tick=0.3"

run_preset() {
  local name=$1 flags=$2
  for test in $SUITES; do
    echo "== $test ($name)"
    # shellcheck disable=SC2086
    $CXX $flags -fno-omit-frame-pointer -g -std=c++20 -Isrc -Itests \
      "tests/$test.cpp" $TM_SRCS $(suite_extra "$test") $LIBS \
      -o "$OUT/$test-$name"
    "$OUT/$test-$name"
  done
  for test in $FAULT_SUITES; do
    echo "== $test ($name, TLE_FAULT_SEED=$FAULT_SEED)"
    TLE_FAULT_SEED=$FAULT_SEED "$OUT/$test-$name"
  done
  for seed in $PRIV_SEEDS; do
    echo "== tm_privatization_test ($name, htm_zombie plan, seed $seed)"
    TLE_FAULT_SEED=$((FAULT_SEED + seed)) TLE_FAULT_PLAN="$PRIV_PLAN" \
      "$OUT/tm_privatization_test-$name"
  done
  for seed in $CTL_SEEDS; do
    echo "== control_test ($name, ctl_tick plan, seed $seed)"
    TLE_FAULT_SEED=$((FAULT_SEED + seed)) TLE_FAULT_PLAN="$CTL_PLAN" \
      "$OUT/control_test-$name" --gtest_filter='ControlChaos.*:ControlDegraded.*'
  done
}

case "$PRESET" in
  asan) run_preset asan "-fsanitize=address,undefined -O1" ;;
  tsan) run_preset tsan "-fsanitize=thread -O1" ;;
  all)
    run_preset asan "-fsanitize=address,undefined -O1"
    run_preset tsan "-fsanitize=thread -O1"
    ;;
  *) echo "unknown preset '$PRESET' (want asan|tsan|all)" >&2; exit 2 ;;
esac
echo "all sanitizer runs clean"
