#!/usr/bin/env bash
# Run the benchmark suite at (approximately) the paper's workload scale.
# Expect multi-hour runtimes on laptop hardware; the defaults in
# bench_output.txt are the CI-scale equivalents of the same sweeps.
set -euo pipefail

BUILD=${1:-build}

export PIPEZ_MB=${PIPEZ_MB:-650}       # the paper's 650 MB test file
export VIDENC_SCALE=${VIDENC_SCALE:-8} # longer clips for Figure 3
export MICRO_SECS=${MICRO_SECS:-10}    # the paper's 10-second trials
export HTM_SPURIOUS=${HTM_SPURIOUS:-0.40}

REPS=${REPS:-5}  # the paper averages 5 trials (3 for Figure 5)

for b in "$BUILD"/bench/*; do
  echo "== $b (repetitions=$REPS)"
  "$b" --benchmark_repetitions="$REPS" --benchmark_report_aggregates_only=true
done
