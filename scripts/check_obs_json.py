#!/usr/bin/env python3
"""Tier-1 smoke check for the observability exports (stdlib-only).

Runs a workload binary with the zero-friction env activation
(TLE_STATS_DUMP=<file> TLE_TRACE=1 TLE_TRACE_OUT=<file>) and validates that:

  * the tle-obs/v1 JSON parses, carries every TLE_TXSTATS_COUNTERS counter
    by name, a per-cause abort breakdown keyed by the AbortCause names, and
    well-formed per-site profiles with log2 histograms;
  * the Chrome-trace JSON parses and contains thread-name metadata plus at
    least one complete ("X") slice, i.e. Perfetto/chrome://tracing will
    render a non-empty timeline.

Usage: check_obs_json.py <workload-binary> [args...]
       (default args: selftest -s 1 -p 4 -m stm — the pipez_tool smoke)
"""
import json
import os
import subprocess
import sys
import tempfile

# Must mirror TLE_TXSTATS_COUNTERS in src/tm/stats.hpp. The obs_test unit
# suite proves obs_json() covers the X-macro; this list pins the external
# schema so a renamed counter is caught as the compatibility break it is.
REQUIRED_COUNTERS = [
    "txn_starts", "commits", "commits_readonly", "serial_fallbacks",
    "serial_commits", "lock_sections", "quiesce_calls", "quiesce_waits",
    "quiesce_spins", "quiesce_wait_ns", "grace_scans", "grace_shared",
    "parked_waits", "limbo_enqueued", "limbo_drained", "limbo_forced_flush",
    "noquiesce_requests", "noquiesce_honored", "noquiesce_ignored_nested",
    "noquiesce_ignored_free", "noquiesce_ignored_htm", "htm_routed_frees",
    "priv_immediate_frees", "priv_limbo_routed",
    "tm_allocs", "tm_frees", "deferred_run",
    "condvar_waits", "condvar_timeouts", "htm_retries", "stm_read_dedup",
    "htm_read_dedup", "htm_rw_hits", "stripe_bumps",
    "stripe_false_revalidations", "lazy_sub_commits", "gclock_advances",
    "tictoc_extensions", "tictoc_extension_fails", "tictoc_wts_waits",
    "tictoc_lock_timeouts",
    "faults_injected", "fault_delays",
    "fault_forced_serial", "fault_forced_flush", "gov_serial_immediate",
    "gov_backoffs", "gov_immediate_retries", "gov_drain_waits",
    "gov_drain_timeouts", "gov_storm_enters", "gov_storm_exits",
    "gov_storm_gated", "gov_watchdog_escalations", "gov_stall_events",
    "ctl_evals", "ctl_plan_changes", "ctl_forced_serial",
    "ctl_boost_applied", "ctl_probe_attempts", "ctl_degraded_enters",
    "ctl_degraded_exits", "ctl_mode_switches", "ctl_flaps",
    "obs_site_overflow",
]

ABORT_CAUSES = ["conflict", "validation", "capacity", "unsafe",
                "serial-pending", "user-explicit", "spurious", "stripe-busy"]

SITE_FIELDS = ["id", "name", "file", "line", "attempts", "commits",
               "serial_fallbacks", "serial_commits", "lock_sections",
               "htm_retries", "quiesce_waits", "drain_waits", "storm_gated",
               "watchdog_escalations", "stripe_bumps",
               "stripe_false_revalidations", "lazy_sub_commits",
               "tictoc_extensions", "tictoc_extension_fails",
               "tictoc_wts_waits", "tictoc_lock_timeouts",
               "htm_routed_frees", "priv_limbo_routed", "audit_hazard_arms",
               "aborts", "aborts_total",
               "attempt_ns_hist", "quiesce_ns_hist"]

failures = []


def check(ok, what):
    if not ok:
        failures.append(what)
        print(f"check_obs_json: FAIL: {what}", file=sys.stderr)


def check_hist(hist, where):
    check(isinstance(hist, list), f"{where}: histogram is not a list")
    for pair in hist if isinstance(hist, list) else []:
        check(isinstance(pair, list) and len(pair) == 2,
              f"{where}: histogram entry {pair!r} is not [floor_ns, count]")
        if isinstance(pair, list) and len(pair) == 2:
            floor, count = pair
            check(isinstance(floor, int) and floor >= 0,
                  f"{where}: bad bucket floor {floor!r}")
            check(isinstance(count, int) and count > 0,
                  f"{where}: empty buckets must be omitted, got {pair!r}")


def check_obs(path):
    with open(path) as f:
        doc = json.load(f)
    check(doc.get("schema") == "tle-obs/v1",
          f"schema is {doc.get('schema')!r}, want tle-obs/v1")
    check("mode" in doc, "missing top-level 'mode'")

    stats = doc.get("stats")
    check(isinstance(stats, dict), "missing 'stats' object")
    stats = stats or {}
    for name in REQUIRED_COUNTERS:
        check(name in stats, f"stats missing counter {name!r}")
    aborts = stats.get("aborts", {})
    check(isinstance(aborts, dict), "stats.aborts is not an object")
    for cause in ABORT_CAUSES:
        check(cause in aborts, f"stats.aborts missing cause {cause!r}")
    if isinstance(aborts, dict) and all(c in aborts for c in ABORT_CAUSES):
        check(stats.get("aborts_total") == sum(aborts.values()),
              "aborts_total != sum of per-cause aborts")
    check(stats.get("txn_starts", 0) + stats.get("serial_commits", 0)
          + stats.get("lock_sections", 0) > 0,
          "workload ran no transactions at all")

    sites = doc.get("sites")
    check(isinstance(sites, list) and len(sites) > 0,
          "no per-site profiles recorded")
    for s in sites if isinstance(sites, list) else []:
        label = f"site {s.get('name', '?')!r}"
        for field in SITE_FIELDS:
            check(field in s, f"{label} missing field {field!r}")
        check_hist(s.get("attempt_ns_hist", []), f"{label} attempt_ns_hist")
        check_hist(s.get("quiesce_ns_hist", []), f"{label} quiesce_ns_hist")
        site_aborts = s.get("aborts", {})
        check(isinstance(site_aborts, dict)
              and set(site_aborts) <= set(ABORT_CAUSES),
              f"{label} has unknown abort-cause keys: {site_aborts!r}")
    names = [s.get("name", "") for s in sites if isinstance(sites, list)]
    check(any(n.startswith("pipez/") for n in names) or len(names) > 1,
          f"expected named TLE_TX_SITE profiles, got {names!r}")
    print(f"check_obs_json: obs OK — {len(sites or [])} site(s), "
          f"{stats.get('commits', 0)} commits, "
          f"{stats.get('aborts_total', 0)} aborts")


def check_trace(path):
    with open(path) as f:
        doc = json.load(f)
    events = doc.get("traceEvents")
    check(isinstance(events, list) and len(events) > 0,
          "traceEvents missing or empty")
    events = events if isinstance(events, list) else []
    slices = [e for e in events if e.get("ph") == "X"]
    meta = [e for e in events if e.get("ph") == "M"]
    check(len(slices) > 0, "no complete ('X') slices in the trace")
    check(len(meta) > 0, "no thread_name metadata events")
    for e in slices[:200]:
        check(all(k in e for k in ("name", "ts", "dur", "pid", "tid")),
              f"slice missing required keys: {e!r}")
    print(f"check_obs_json: trace OK — {len(slices)} slices over "
          f"{len({e.get('tid') for e in slices})} thread track(s)")


def main():
    if len(sys.argv) < 2:
        print("usage: check_obs_json.py <workload-binary> [args...]",
              file=sys.stderr)
        return 2
    binary = sys.argv[1]
    args = sys.argv[2:] or ["selftest", "-s", "1", "-p", "4", "-m", "stm"]

    with tempfile.TemporaryDirectory(prefix="tle_obs_") as tmp:
        obs_path = os.path.join(tmp, "obs.json")
        trace_path = os.path.join(tmp, "trace.json")
        env = dict(os.environ,
                   TLE_STATS_DUMP=obs_path,
                   TLE_TRACE="1",
                   TLE_TRACE_OUT=trace_path)
        proc = subprocess.run([binary] + args, env=env,
                              stdout=subprocess.PIPE,
                              stderr=subprocess.PIPE, timeout=300)
        check(proc.returncode == 0,
              f"workload exited {proc.returncode}: "
              f"{proc.stderr.decode(errors='replace')[-500:]}")
        check(os.path.exists(obs_path), f"{obs_path} was not written")
        check(os.path.exists(trace_path), f"{trace_path} was not written")
        if os.path.exists(obs_path):
            check_obs(obs_path)
        if os.path.exists(trace_path):
            check_trace(trace_path)

    if failures:
        print(f"check_obs_json: {len(failures)} failure(s)", file=sys.stderr)
        return 1
    print("check_obs_json: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
