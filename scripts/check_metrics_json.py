#!/usr/bin/env python3
"""Tier-1 smoke check for the interval-telemetry stream (stdlib-only).

Runs a workload binary with the zero-friction env activation
(TLE_METRICS_OUT=<file> TLE_METRICS_PROM=<file> TLE_METRICS_PERIOD_MS=20
TLE_STATS_DUMP=<file>) and validates that:

  * the stream holds >= 3 tle-metrics/v1 records, one JSON object per line,
    with consecutive window indices and abutting [t_start_ns, t_end_ns)
    intervals, ending in exactly one final (residual) flush record;
  * every record carries the totals / gauges / per-site fields of the
    schema, and each reported commit_rate is consistent with its own
    delta / duration to within max(1, 1%);
  * per-site conservation is EXACT: for every site id, the window deltas
    (periodic windows + the final residual) sum to the last record's
    cumulative total_commits, which in turn equals the site's lifetime
    commits in the tle-obs/v1 dump written at exit. (Process-level TxStats
    totals are not compared — workloads may reset_stats() mid-run; the
    per-site counters are never reset, which is what makes the interval
    stream reconcilable.)
  * the Prometheus exposition file exists and exposes the tle_* families.

Usage: check_metrics_json.py <workload-binary> [args...]
       (default args: selftest -s 1 -p 4 -m stm — the pipez_tool smoke)
"""
import json
import os
import subprocess
import sys
import tempfile

TOTALS_FIELDS = ["txn_starts", "commits", "aborts", "serial_commits",
                 "serial_fallbacks", "lock_sections", "limbo_enqueued",
                 "limbo_drained", "htm_routed_frees", "priv_immediate_frees",
                 "priv_limbo_routed"]
GAUGE_FIELDS = ["inflight_txns", "limbo_pending", "storm_active",
                "storm_inflight", "storm_gated", "watchdog_escalations"]
GAUGE_TIME_FIELDS = ["oldest_txn_age_ns", "grace_last_scan_ns",
                     "grace_scan_ns", "serial_hold_ns", "serial_wait_ns",
                     "serial_held_age_ns", "gov_abort_rate"]
SITE_FIELDS = ["id", "name", "attempts", "commits", "serial_fallbacks",
               "serial_commits", "htm_retries", "drain_waits", "storm_gated",
               "watchdog_escalations", "aborts", "aborts_total",
               "total_commits"]
CTL_FIELDS = ["enabled", "state", "mode", "probe_shift", "evals",
              "plan_changes", "flaps", "degraded_enters", "degraded_exits",
              "mode_switches", "decisions"]
CTL_DECISION_FIELDS = ["seq", "window", "site", "kind", "state", "shift",
                       "detail"]
SITE_TIME_FIELDS = ["commit_rate", "abort_ratio", "fallback_ratio",
                    "p50_ns", "p99_ns", "p999_ns"]

failures = []


def check(ok, what):
    if not ok:
        failures.append(what)
        print(f"check_metrics_json: FAIL: {what}", file=sys.stderr)


def load_windows(path):
    windows = []
    with open(path) as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except ValueError as e:
                check(False, f"line {lineno} is not valid JSON: {e}")
                continue
            check(rec.get("schema") == "tle-metrics/v1",
                  f"line {lineno}: schema is {rec.get('schema')!r}")
            windows.append(rec)
    return windows


def check_record_shape(rec, label):
    det = rec.get("deterministic", False)
    totals = rec.get("totals")
    check(isinstance(totals, dict), f"{label}: missing 'totals'")
    for fld in TOTALS_FIELDS:
        check(fld in (totals or {}), f"{label}: totals missing {fld!r}")
    gauges = rec.get("gauges")
    check(isinstance(gauges, dict), f"{label}: missing 'gauges'")
    for fld in GAUGE_FIELDS:
        check(fld in (gauges or {}), f"{label}: gauges missing {fld!r}")
    sites = rec.get("sites")
    check(isinstance(sites, list), f"{label}: missing 'sites'")
    ctl = rec.get("ctl")
    check(isinstance(ctl, dict), f"{label}: missing 'ctl'")
    for fld in CTL_FIELDS:
        check(fld in (ctl or {}), f"{label}: ctl missing {fld!r}")
    for d in (ctl or {}).get("decisions", []):
        for fld in CTL_DECISION_FIELDS:
            check(fld in d, f"{label}: ctl decision missing {fld!r}")
    check(ctl is None or ctl.get("state") in
          ("normal", "degraded", "probing"),
          f"{label}: ctl state {ctl.get('state') if ctl else None!r}")
    starved = rec.get("starved_sites")
    check(isinstance(starved, list), f"{label}: missing 'starved_sites'")
    for s in starved if isinstance(starved, list) else []:
        for fld in ("id", "name", "watchdog_escalations", "storm_gated"):
            check(fld in s, f"{label}: starved_sites entry missing {fld!r}")
    if not det:
        for fld in ("t_start_ns", "t_end_ns", "duration_ns"):
            check(fld in rec, f"{label}: missing {fld!r}")
        check(rec.get("t_end_ns", 0) >= rec.get("t_start_ns", 0),
              f"{label}: t_end_ns < t_start_ns")
        for fld in GAUGE_TIME_FIELDS:
            check(fld in (gauges or {}), f"{label}: gauges missing {fld!r}")
    for s in sites if isinstance(sites, list) else []:
        slabel = f"{label} site {s.get('name', '?')!r}"
        for fld in SITE_FIELDS:
            check(fld in s, f"{slabel}: missing {fld!r}")
        if not det:
            for fld in SITE_TIME_FIELDS:
                check(fld in s, f"{slabel}: missing {fld!r}")
        aborts = s.get("aborts", {})
        check(isinstance(aborts, dict), f"{slabel}: aborts is not an object")
        if isinstance(aborts, dict):
            check(s.get("aborts_total") == sum(aborts.values()),
                  f"{slabel}: aborts_total != sum of causes")


def check_rates(rec, label):
    if rec.get("deterministic", False):
        return
    dur_s = rec.get("duration_ns", 0) / 1e9
    if dur_s <= 0:
        return
    commits = rec.get("totals", {}).get("commits", 0)
    rate = rec.get("totals", {}).get("commit_rate", 0.0)
    tol = max(1.0, 0.01 * commits)
    check(abs(rate * dur_s - commits) <= tol,
          f"{label}: commit_rate {rate} x {dur_s:.4f}s != {commits} commits")
    for s in rec.get("sites", []):
        sc = s.get("commits", 0)
        sr = s.get("commit_rate", 0.0)
        check(abs(sr * dur_s - sc) <= max(1.0, 0.01 * sc),
              f"{label} site {s.get('name', '?')!r}: rate/delta mismatch")


def check_stream(windows):
    check(len(windows) >= 3,
          f"expected >= 3 windows in the stream, got {len(windows)}")
    finals = [w for w in windows if w.get("final")]
    check(len(finals) == 1, f"expected exactly one final flush, "
                            f"got {len(finals)}")
    if windows:
        check(windows[-1].get("final") is True,
              "the final flush must be the last record")
    prev_index, prev_end = None, None
    for i, rec in enumerate(windows):
        label = f"window[{i}]"
        check_record_shape(rec, label)
        check_rates(rec, label)
        idx = rec.get("window")
        check(isinstance(idx, int), f"{label}: missing integer 'window'")
        if prev_index is not None:
            check(idx == prev_index + 1,
                  f"{label}: index {idx} not consecutive after {prev_index}")
        prev_index = idx
        if not rec.get("deterministic", False):
            if prev_end is not None:
                check(rec.get("t_start_ns") == prev_end,
                      f"{label}: t_start_ns != previous t_end_ns "
                      "(intervals must abut)")
            prev_end = rec.get("t_end_ns")


def check_ctl_stream(windows):
    """Controller decisions stream each exactly once, in sequence order."""
    seqs = [d.get("seq") for w in windows
            for d in w.get("ctl", {}).get("decisions", [])]
    check(seqs == sorted(seqs), "ctl decision seqs out of order")
    check(len(seqs) == len(set(seqs)), "ctl decision seq streamed twice")


def site_conservation(windows, obs_doc):
    """sum(window deltas) == last cumulative total_commits == lifetime dump."""
    delta_sum, last_total, names = {}, {}, {}
    for rec in windows:
        for s in rec.get("sites", []):
            sid = s.get("id")
            delta_sum[sid] = delta_sum.get(sid, 0) + s.get("commits", 0)
            last_total[sid] = s.get("total_commits", 0)
            names[sid] = s.get("name", "?")
    check(len(delta_sum) > 0, "no per-site activity in any window")
    for sid, total in last_total.items():
        check(delta_sum[sid] == total,
              f"site {names[sid]!r}: window deltas sum to {delta_sum[sid]} "
              f"but the last cumulative total_commits is {total}")
    if obs_doc is None:
        return
    lifetime = {s.get("id"): s.get("commits", 0)
                for s in obs_doc.get("sites", [])}
    for sid, total in last_total.items():
        check(sid in lifetime,
              f"site {names[sid]!r} (id {sid}) missing from the obs dump")
        if sid in lifetime:
            check(lifetime[sid] == total,
                  f"site {names[sid]!r}: stream total {total} != lifetime "
                  f"dump {lifetime[sid]}")


def check_prom(path):
    with open(path) as f:
        text = f.read()
    for family in ("tle_txn_starts_total", "tle_commits_total",
                   "tle_aborts_total", "tle_site_commits_total",
                   "tle_inflight_txns", "tle_limbo_pending"):
        check(family in text, f"prometheus exposition missing {family}")
    check("# TYPE tle_commits_total counter" in text,
          "prometheus exposition missing TYPE metadata")


def main():
    if len(sys.argv) < 2:
        print("usage: check_metrics_json.py <workload-binary> [args...]",
              file=sys.stderr)
        return 2
    binary = sys.argv[1]
    args = sys.argv[2:] or ["selftest", "-s", "1", "-p", "4", "-m", "stm"]

    with tempfile.TemporaryDirectory(prefix="tle_metrics_") as tmp:
        metrics_path = os.path.join(tmp, "metrics.jsonl")
        prom_path = os.path.join(tmp, "metrics.prom")
        obs_path = os.path.join(tmp, "obs.json")
        env = dict(os.environ,
                   TLE_METRICS_OUT=metrics_path,
                   TLE_METRICS_PROM=prom_path,
                   TLE_METRICS_PERIOD_MS="20",
                   TLE_STATS_DUMP=obs_path)
        proc = subprocess.run([binary] + args, env=env,
                              stdout=subprocess.PIPE,
                              stderr=subprocess.PIPE, timeout=300)
        check(proc.returncode == 0,
              f"workload exited {proc.returncode}: "
              f"{proc.stderr.decode(errors='replace')[-500:]}")
        check(os.path.exists(metrics_path), f"{metrics_path} was not written")
        check(os.path.exists(prom_path), f"{prom_path} was not written")

        windows, obs_doc = [], None
        if os.path.exists(metrics_path):
            windows = load_windows(metrics_path)
            check_stream(windows)
        if os.path.exists(obs_path):
            with open(obs_path) as f:
                obs_doc = json.load(f)
        else:
            check(False, f"{obs_path} was not written")
        if windows:
            site_conservation(windows, obs_doc)
            check_ctl_stream(windows)
        if os.path.exists(prom_path):
            check_prom(prom_path)

        if windows:
            commits = sum(w.get("totals", {}).get("commits", 0)
                          for w in windows)
            print(f"check_metrics_json: stream OK — {len(windows)} "
                  f"window(s), {commits} commits across "
                  f"{len({s.get('id') for w in windows for s in w.get('sites', [])})} site(s)")

    if failures:
        print(f"check_metrics_json: {len(failures)} failure(s)",
              file=sys.stderr)
        return 1
    print("check_metrics_json: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
