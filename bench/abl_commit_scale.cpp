// Ablation A6 — commit-sequence striping scalability (PR-6 tentpole).
//
// The pre-striping runtime serialized every HTM commit through one global
// NOrec-style sequence word: disjoint writers that never touch the same
// data still collided on the commit CAS, and every commit forced every
// concurrent reader to revalidate its whole read log. The striped commit
// sequence (htm_seq_stripes cache-line-padded seqlocks, keyed by address)
// removes both costs for stripe-disjoint footprints.
//
// Two kernels, A/B'd over htm_seq_stripes in the SAME binary:
//
//  1. disjoint — each worker owns a private block of tm_vars, selected so
//     the whole block maps to one stripe (threads are spread across
//     stripes round-robin via stripe_of()). Under stripes=1 every commit
//     still contends on the lone sequence word; under the striped table
//     commits are fully independent. This is the headline scaling cell.
//
//  2. overlap — all workers hammer the same few hot vars: true data
//     conflicts, so striping cannot help (and must not hurt). Reported as
//     the control.
//
// Metric note: the headline rate is ELIDED commits/s (the `commits`
// counter — speculative commits only; serial fallbacks land in
// `serial_commits`). This harness's simulated HTM shares one machine, so
// on few-core containers the stripes=1 penalty shows up as StripeBusy
// aborts and false revalidations rather than lost parallelism; the >= 3x
// acceptance ratio below is only enforced by the full (non-smoke) run on
// real multicore, mirroring the abl_htm_retry precedent.
//
// Emits BENCH_commit_scale.json (schema "tle-commit-scale/v1", ingested by
// scripts/summarize_bench.py):
//
//   {
//     "schema": "tle-commit-scale/v1",
//     "secs_per_cell": <double>,
//     "cells": [                        // workload x stripes x threads
//       { "workload": "disjoint|overlap", "stripes": <int>,
//         "threads": <int>, "txns": <uint>,
//         "elided_commits_per_sec": <double>,
//         "total_txns_per_sec": <double>,
//         "stripe_bumps": <uint>, "stripe_false_revalidations": <uint>,
//         "aborts_validation": <uint>, "aborts_stripe_busy": <uint>,
//         "htm_retries": <uint>, "serial_fallbacks": <uint>,
//         "serial_pct": <double> }, ... ],
//     "acceptance": {                   // striped vs single at 8T disjoint
//       "threads": <int>, "workload": "disjoint",
//       "striped_commits_per_sec": <double>,
//       "single_commits_per_sec": <double>,
//       "commits_ratio": <double> }     // >= 3.0 expected (full run)
//   }
//
// `--smoke` runs three tiny cells plus accounting self-checks and is wired
// into the tier-1 ctest suite.
#include <atomic>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_support.hpp"
#include "tm/governor/governor.hpp"
#include "util/barrier.hpp"
#include "util/env.hpp"
#include "util/timing.hpp"

namespace {

using namespace tle;
using namespace tle::bench;

std::atomic<std::uint64_t> g_check_failures{0};

void check(bool ok, const char* what) {
  if (!ok) {
    g_check_failures.fetch_add(1, std::memory_order_relaxed);
    std::fprintf(stderr, "abl_commit_scale: CHECK FAILED: %s\n", what);
  }
}

constexpr std::size_t kVarsPerThread = 4;  // one worker's transaction set
constexpr std::size_t kHotVars = 4;  // shared footprint of the overlap kernel
constexpr std::size_t kMaxThreads = 16;

struct ScaleResult {
  bool disjoint = true;
  unsigned stripes = 0;
  int threads = 0;
  double secs = 0;
  std::uint64_t txns = 0;  // completed worker operations
  StatsSnapshot stats;

  /// Speculative (lock-elided) commits/s — what stripe contention caps.
  double elided_commits_per_sec() const {
    return secs > 0 ? static_cast<double>(stats.commits) / secs : 0;
  }
  double total_txns_per_sec() const {
    return secs > 0 ? static_cast<double>(txns) / secs : 0;
  }
};

ScaleResult run_scale_cell(bool disjoint, unsigned stripes, int threads,
                           double secs) {
  set_exec_mode(ExecMode::Htm);
  const unsigned saved_stripes = config().htm_seq_stripes;
  config().htm_seq_stripes = stripes;
  reset_stats();
  gov::reset();

  // Pool large enough that every thread can claim kVarsPerThread vars that
  // all map to its assigned stripe (threads spread round-robin): ~256
  // 512-byte stripe blocks, so each of up to 16 stripe classes is hit by
  // ~16 blocks. With stripes=1 everything maps to stripe 0 and claiming
  // degenerates to successive private blocks — address-disjoint either
  // way, so the A/B compares pure commit-sequence contention, never data
  // conflicts.
  std::vector<tm_var<long>> pool(disjoint ? kMaxThreads * 256 * kVarsPerThread
                                          : kHotVars);
  std::vector<std::vector<tm_var<long>*>> mine(
      static_cast<std::size_t>(threads));
  std::vector<bool> claimed(pool.size(), false);
  for (int t = 0; t < threads; ++t) {
    if (!disjoint) {
      for (auto& v : pool) mine[static_cast<std::size_t>(t)].push_back(&v);
      continue;
    }
    const unsigned want = static_cast<unsigned>(t) % stripes;
    for (std::size_t i = 0;
         i < pool.size() &&
         mine[static_cast<std::size_t>(t)].size() < kVarsPerThread;
         ++i) {
      if (!claimed[i] && stripe_of(pool[i]) == want) {
        claimed[i] = true;
        mine[static_cast<std::size_t>(t)].push_back(&pool[i]);
      }
    }
    check(mine[static_cast<std::size_t>(t)].size() == kVarsPerThread,
          "pool yields a stripe-homogeneous block per thread");
  }

  elidable_mutex lock;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> ops{0};
  SpinBarrier gate(static_cast<std::size_t>(threads) + 1);
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      auto& vars = mine[static_cast<std::size_t>(t)];
      gate.arrive_and_wait();
      std::uint64_t local = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        // Two read-modify-writes per transaction: small commit-bound
        // bodies, the shape where commit-sequence cost dominates.
        const std::size_t a = local % vars.size();
        const std::size_t b = (local + 1) % vars.size();
        const auto body = [&](TxContext& ctx) {
          ctx.fetch_add(*vars[a], 1L);
          ctx.fetch_add(*vars[b], 1L);
        };
        if (disjoint)
          critical(lock, TLE_TX_SITE("commit_scale/disjoint"), body);
        else
          critical(lock, TLE_TX_SITE("commit_scale/overlap"), body);
        ++local;
      }
      ops.fetch_add(local);
    });
  }
  Stopwatch sw;
  gate.arrive_and_wait();
  while (sw.seconds() < secs) std::this_thread::yield();
  stop.store(true);
  const double measured = sw.seconds();
  for (auto& w : workers) w.join();

  ScaleResult r;
  r.disjoint = disjoint;
  r.stripes = stripes;
  r.threads = threads;
  r.secs = measured;
  r.txns = ops.load();
  r.stats = aggregate_stats();
  check(r.txns > 0, "scale cell made progress");

  // Every committed transaction added exactly 2 across the pool.
  long long sum = 0;
  for (auto& v : pool)
    sum += static_cast<long>(v.raw().load(std::memory_order_relaxed));
  check(static_cast<std::uint64_t>(sum) == 2 * r.txns,
        "pool sum equals 2 x completed txns");

  // Disjoint write sets are stripe-homogeneous: one stripe bump per
  // published (elided, writing) commit — the accounting contract.
  if (disjoint)
    check(r.stats.stripe_bumps == r.stats.commits,
          "one stripe bump per elided disjoint commit");

  config().htm_seq_stripes = saved_stripes;
  set_exec_mode(ExecMode::Lock);
  return r;
}

void emit_json(const char* path, const std::vector<ScaleResult>& cells,
               double secs, int accept_threads) {
  JsonWriter j;
  j.begin_obj();
  j.kv("schema", "tle-commit-scale/v1");
  j.kv("secs_per_cell", secs);

  const ScaleResult* striped = nullptr;
  const ScaleResult* single = nullptr;
  j.key("cells");
  j.begin_arr();
  for (const ScaleResult& c : cells) {
    j.begin_obj();
    j.kv("workload", c.disjoint ? "disjoint" : "overlap");
    j.kv("stripes", static_cast<std::uint64_t>(c.stripes));
    j.kv("threads", static_cast<std::uint64_t>(c.threads));
    j.kv("txns", c.txns);
    j.kv("elided_commits_per_sec", c.elided_commits_per_sec());
    j.kv("total_txns_per_sec", c.total_txns_per_sec());
    j.kv("stripe_bumps", c.stats.stripe_bumps);
    j.kv("stripe_false_revalidations", c.stats.stripe_false_revalidations);
    j.kv("aborts_validation",
         c.stats.aborts[static_cast<int>(AbortCause::Validation)]);
    j.kv("aborts_stripe_busy",
         c.stats.aborts[static_cast<int>(AbortCause::StripeBusy)]);
    j.kv("htm_retries", c.stats.htm_retries);
    j.kv("serial_fallbacks", c.stats.serial_fallbacks);
    j.kv("serial_pct", 100.0 * c.stats.serial_fraction());
    j.end_obj();
    if (c.disjoint && c.threads == accept_threads)
      (c.stripes > 1 ? striped : single) = &c;
  }
  j.end_arr();

  j.key("acceptance");
  j.begin_obj();
  j.kv("threads", static_cast<std::uint64_t>(accept_threads));
  j.kv("workload", "disjoint");
  if (striped && single) {
    const double ratio = single->elided_commits_per_sec() > 0
                             ? striped->elided_commits_per_sec() /
                                   single->elided_commits_per_sec()
                             : 0.0;
    j.kv("striped_commits_per_sec", striped->elided_commits_per_sec());
    j.kv("single_commits_per_sec", single->elided_commits_per_sec());
    j.kv("commits_ratio", ratio);
  }
  j.end_obj();
  j.end_obj();

  if (!j.write_file(path)) {
    std::fprintf(stderr, "abl_commit_scale: cannot write %s\n", path);
    g_check_failures.fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  const char* out = "BENCH_commit_scale.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0)
      smoke = true;
    else
      out = argv[i];
  }
  const double secs = env_double("ABL_COMMIT_SCALE_SECS", smoke ? 0.05 : 1.0);
  const int accept_threads =
      static_cast<int>(env_long("ABL_COMMIT_SCALE_THREADS", 8));
  const unsigned striped = config().htm_seq_stripes;  // default table width

  std::vector<ScaleResult> cells;
  if (smoke) {
    // Three tiny cells: the A/B pair plus the overlap control.
    cells.push_back(run_scale_cell(true, 1, 2, secs));
    cells.push_back(run_scale_cell(true, striped, 2, secs));
    cells.push_back(run_scale_cell(false, striped, 2, secs));
  } else {
    for (bool disjoint : {true, false})
      for (unsigned stripes : {1u, striped})
        for (int t : {1, 2, 4, 8, 16})
          cells.push_back(run_scale_cell(disjoint, stripes, t, secs));
  }

  std::printf("%-9s %8s %8s %14s %14s %12s %10s %12s %8s\n", "workload",
              "stripes", "threads", "elided/s", "total/s", "bumps",
              "falserev", "stripebusy", "serial%");
  for (const ScaleResult& c : cells)
    std::printf(
        "%-9s %8u %8d %14.0f %14.0f %12llu %10llu %12llu %7.2f%%\n",
        c.disjoint ? "disjoint" : "overlap", c.stripes, c.threads,
        c.elided_commits_per_sec(), c.total_txns_per_sec(),
        static_cast<unsigned long long>(c.stats.stripe_bumps),
        static_cast<unsigned long long>(c.stats.stripe_false_revalidations),
        static_cast<unsigned long long>(
            c.stats.aborts[static_cast<int>(AbortCause::StripeBusy)]),
        100.0 * c.stats.serial_fraction());

  emit_json(out, cells, secs, accept_threads);
  std::printf("wrote %s\n", out);

  if (!smoke) {
    const ScaleResult* on = nullptr;
    const ScaleResult* off = nullptr;
    for (const ScaleResult& c : cells)
      if (c.disjoint && c.threads == accept_threads)
        (c.stripes > 1 ? on : off) = &c;
    if (on && off) {
      const double ratio =
          off->elided_commits_per_sec() > 0
              ? on->elided_commits_per_sec() / off->elided_commits_per_sec()
              : 0.0;
      std::printf("acceptance: disjoint %dT striped/single elided commits "
                  "ratio %.2fx (need >= 3.0)\n",
                  accept_threads, ratio);
      check(ratio >= 3.0,
            "striped table >= 3x single-sequence disjoint commits/s");
    }
  }

  const auto failures = g_check_failures.load();
  if (failures) {
    std::fprintf(stderr, "abl_commit_scale: %llu check failure(s)\n",
                 static_cast<unsigned long long>(failures));
    return 1;
  }
  return 0;
}
