// Figure 4 reproduction: x265 (videnc) abort behaviour versus worker
// threads, for the STM and (simulated) HTM configurations. The paper plots
// abort rates to explain why tuned fallback policies would help; we report
// aborts-per-transaction, the abort-cause breakdown, and the serial
// fallback fraction.
//
// Benchmark name format: fig4/<mode>/threads:<N>
//
// The abort breakdown is double-checked against the per-site profiler: the
// encoder's critical sections are all named (TLE_TX_SITE), so summing the
// per-site abort counters over every site must reproduce exactly the same
// per-cause totals as the engine-level StatsSnapshot that pre-dates the
// profiler. Any divergence fails the benchmark via SkipWithError.
#include <benchmark/benchmark.h>

#include <string>

#include "bench_support.hpp"
#include "tm/obs/export.hpp"
#include "tm/obs/site.hpp"
#include "tm/trace.hpp"
#include "videnc/encoder.hpp"

namespace {

using namespace tle;
using namespace tle::bench;

void run_case(benchmark::State& state, ExecMode mode, int threads) {
  set_exec_mode(mode);
  config().htm_spurious_abort_rate = env_double("HTM_SPURIOUS", 0.40);
  videnc::EncoderConfig cfg;
  cfg.width = static_cast<int>(env_long("FIG4_W", 128));
  cfg.height = static_cast<int>(env_long("FIG4_H", 80));
  cfg.frames = static_cast<int>(env_long("FIG4_FRAMES", 6));
  cfg.worker_threads = threads;
  cfg.frame_threads = 3;
  cfg.search_range = 6;

  // Regenerate the abort breakdown through the observability stack: the
  // flight recorder runs alongside the per-site profiler for the whole case.
  obs::profile_enable(true);
  trace::enable(true);

  StatsSnapshot s;
  for (auto _ : state) {
    reset_stats();
    obs::reset_site_profiles();
    trace::reset();
    const auto r = videnc::encode(cfg);
    benchmark::DoNotOptimize(r.stats.bits);
    s = aggregate_stats();
  }

  // Cross-check: per-site abort totals (all sites, all causes) must match
  // the engine-level snapshot cause-for-cause.
  std::uint64_t site_aborts[kAbortCauseCount] = {};
  std::uint64_t site_attempts = 0;
  for (const obs::SiteProfile& p : obs::collect_site_profiles()) {
    site_attempts += p.attempts;
    for (int a = 0; a < kAbortCauseCount; ++a) site_aborts[a] += p.aborts[a];
  }
  for (int a = 0; a < kAbortCauseCount; ++a) {
    if (site_aborts[a] != s.aborts[a]) {
      state.SkipWithError(
          (std::string("per-site abort breakdown diverges from snapshot for "
                       "cause ") +
           to_string(static_cast<AbortCause>(a)) + ": site=" +
           std::to_string(site_aborts[a]) + " snapshot=" +
           std::to_string(s.aborts[a]))
              .c_str());
      break;
    }
  }
  if (site_attempts != s.txn_starts) {
    state.SkipWithError(
        (std::string("per-site attempts diverge from snapshot txn_starts: ") +
         std::to_string(site_attempts) + " vs " + std::to_string(s.txn_starts))
            .c_str());
  }

  attach_tm_counters(state, s);
  state.counters["aborts_per_ktxn"] =
      s.txn_starts ? 1000.0 * static_cast<double>(s.aborts_total()) /
                         static_cast<double>(s.txn_starts)
                   : 0.0;
  state.counters["profiled_sites"] =
      static_cast<double>(obs::collect_site_profiles().size());
  trace::enable(false);
  obs::profile_enable(false);
  config().htm_spurious_abort_rate = 0.0;
  set_exec_mode(ExecMode::Lock);
}

void register_all() {
  const ExecMode modes[] = {ExecMode::StmCondVar, ExecMode::StmCondVarNoQ,
                            ExecMode::Htm};
  for (ExecMode mode : modes) {
    for (int threads : {1, 2, 4, 8}) {
      const std::string name = std::string("fig4/") + mode_tag(mode) +
                               "/threads:" + std::to_string(threads);
      benchmark::RegisterBenchmark(
          name.c_str(),
          [mode, threads](benchmark::State& st) { run_case(st, mode, threads); })
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1)
          ->UseRealTime();
    }
  }
}

const int dummy = (register_all(), 0);

}  // namespace

BENCHMARK_MAIN();
