// Figure 4 reproduction: x265 (videnc) abort behaviour versus worker
// threads, for the STM and (simulated) HTM configurations. The paper plots
// abort rates to explain why tuned fallback policies would help; we report
// aborts-per-transaction, the abort-cause breakdown, and the serial
// fallback fraction.
//
// Benchmark name format: fig4/<mode>/threads:<N>
#include <benchmark/benchmark.h>

#include <string>

#include "bench_support.hpp"
#include "videnc/encoder.hpp"

namespace {

using namespace tle;
using namespace tle::bench;

void run_case(benchmark::State& state, ExecMode mode, int threads) {
  set_exec_mode(mode);
  config().htm_spurious_abort_rate = env_double("HTM_SPURIOUS", 0.40);
  videnc::EncoderConfig cfg;
  cfg.width = static_cast<int>(env_long("FIG4_W", 128));
  cfg.height = static_cast<int>(env_long("FIG4_H", 80));
  cfg.frames = static_cast<int>(env_long("FIG4_FRAMES", 6));
  cfg.worker_threads = threads;
  cfg.frame_threads = 3;
  cfg.search_range = 6;

  StatsSnapshot s;
  for (auto _ : state) {
    reset_stats();
    const auto r = videnc::encode(cfg);
    benchmark::DoNotOptimize(r.stats.bits);
    s = aggregate_stats();
  }
  attach_tm_counters(state, s);
  state.counters["aborts_per_ktxn"] =
      s.txn_starts ? 1000.0 * static_cast<double>(s.aborts_total()) /
                         static_cast<double>(s.txn_starts)
                   : 0.0;
  config().htm_spurious_abort_rate = 0.0;
  set_exec_mode(ExecMode::Lock);
}

void register_all() {
  const ExecMode modes[] = {ExecMode::StmCondVar, ExecMode::StmCondVarNoQ,
                            ExecMode::Htm};
  for (ExecMode mode : modes) {
    for (int threads : {1, 2, 4, 8}) {
      const std::string name = std::string("fig4/") + mode_tag(mode) +
                               "/threads:" + std::to_string(threads);
      benchmark::RegisterBenchmark(
          name.c_str(),
          [mode, threads](benchmark::State& st) { run_case(st, mode, threads); })
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1)
          ->UseRealTime();
    }
  }
}

const int dummy = (register_all(), 0);

}  // namespace

BENCHMARK_MAIN();
