// Commit-time quiescence at scale — the tentpole benchmark for the grace-
// period overhaul (paper Sections IV and VII).
//
// Quiescence is the dominant overhead of TMTS-compliant lock elision: every
// committing writer must wait out all concurrent transactions, and every
// transaction that frees memory must additionally wait out ALL domains
// before the memory returns to the allocator. This benchmark measures
// exactly that cost: writer-commit throughput as a function of thread count
// under the three quiescence regimes of Figure 5, with and without
// transactional frees, while one peer thread holds long transactions open
// (see kStragglerIters below). Writers touch disjoint words, so there are
// no data conflicts — all scaling loss is quiescence (plus scheduling).
//
// Emits BENCH_quiesce.json (schema "tle-quiesce/v1", documented below and
// ingested by scripts/summarize_bench.py). `--smoke` runs a fast
// self-checking pass that is wired into the tier-1 ctest suite like
// abl_overhead.
//
//   {
//     "schema": "tle-quiesce/v1",
//     "secs_per_cell": <double>,
//     "results": [
//       { "policy": "Always|WriterOnly|NoQ",
//         "frees": "none|heavy",
//         "threads": <int>,                // writer threads
//         "stragglers": <int>,             // long-transaction peers (0 or 1)
//         "txns": <uint>,                  // committed writer transactions
//         "straggler_txns": <uint>,
//         "commits_per_sec": <double>,     // writer commits only
//         "quiesce_waits": <uint>, "quiesce_spins": <uint>,
//         "parked_waits": <uint>,          // 0 on pre-grace engines
//         "grace_scans": <uint>, "grace_shared": <uint>,
//         "limbo_enqueued": <uint>, "limbo_drained": <uint>,
//         "tm_frees": <uint> }, ... ],
//     "baseline_prepr": {                  // pre-overhaul engine reference
//       "always_free_8t_ops": <double>, "always_none_1t_ops": <double>,
//       "note": <string> },
//     "speedup_vs_prepr": {                // this run vs. that baseline
//       "always_free_8t": <double>, "always_none_1t": <double> }
//   }
#include <atomic>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_support.hpp"
#include "util/barrier.hpp"
#include "util/env.hpp"
#include "util/timing.hpp"

namespace {

using namespace tle;
using namespace tle::bench;

constexpr int kVarsPerThread = 64;  // disjoint, conflict-free writer footprint
constexpr int kTxWrites = 16;       // writes per transaction
constexpr int kTxReadRounds = 4;    // read passes over the footprint per txn
constexpr int kMaxBenchThreads = 32;

// The long-transaction peer. Quiescence only costs when a committer can
// observe a peer mid-transaction, so every multi-writer cell runs one extra
// thread whose read-only transactions do ~150 us of private computation
// (no tm_var accesses, so they can never abort and their length is
// deterministic — an instrumented read set would be vulnerable to orec-hash
// collisions with the writers and livelock). This is the paper's §IV
// regime: commit-time quiescence serializes writers behind whatever long
// transaction happens to be in flight. Single-writer cells omit the peer:
// they are the uncontended-commit-cost gauge.
//
// The cells run with multi-domain quiescence (ablation A3): writers elide a
// domain-0 lock, the long peer elides a domain-1 lock. Ordering quiescence
// is therefore domain-filtered — writers only wait out other writers — but
// the §IV-B allocator rule still forces every memory-freeing commit to wait
// out ALL domains, long peer included. That is precisely the cost this
// PR's limbo reclamation removes, and the reason the free-heavy cells
// collapse on a pre-limbo engine.
constexpr int kStragglerIters = 100000;
constexpr std::uint32_t kWriterDomain = 0;
constexpr std::uint32_t kStragglerDomain = 1;

// Pre-PR baselines for the two acceptance cells, measured on the seed+PR1
// engine (commit 075b074) with this same harness (QUIESCE_SCALE_SECS=0.5) on
// the single-core CI container. Machine-specific reference points, recorded
// so the quiescence perf trajectory starting at this PR has a fixed origin.
constexpr double kPrePrAlwaysFree8T = 5517.0;    // Always, heavy frees, 8 thr
constexpr double kPrePrAlwaysNone1T = 404603.0;  // Always, no frees, 1 thread

std::atomic<std::uint64_t> g_check_failures{0};

void check(bool ok, const char* what) {
  if (!ok) {
    g_check_failures.fetch_add(1, std::memory_order_relaxed);
    std::fprintf(stderr, "quiesce_scale: CHECK FAILED: %s\n", what);
  }
}

struct Regime {
  const char* name;
  QuiescePolicy policy;
};

const Regime kRegimes[] = {
    {"Always", QuiescePolicy::Always},
    {"WriterOnly", QuiescePolicy::WriterOnly},
    {"NoQ", QuiescePolicy::Never},
};

struct CellResult {
  std::string policy;
  bool frees = false;
  int threads = 0;
  int stragglers = 0;
  double secs = 0;
  std::uint64_t txns = 0;
  std::uint64_t straggler_txns = 0;
  StatsSnapshot stats;

  double commits_per_sec() const {
    return secs > 0 ? static_cast<double>(txns) / secs : 0;
  }
};

struct BenchNode {
  tm_var<long> value{0};
};

/// One writer transaction: kTxWrites disjoint writes plus kTxReadRounds
/// read passes over the thread's own footprint, plus an alloc/free pair when
/// `frees` is set — each iteration frees the previous iteration's node, so
/// every transaction after the first carries a deferred free (the §IV-B
/// allocator-rule path).
inline long writer_txn(elidable_mutex& m, tm_var<long>* mine, long seq,
                       bool frees, BenchNode** prev) {
  long acc = 0;
  critical(m, TLE_TX_SITE("qsc/writer"), [&](TxContext& tx) {
    acc = 0;
    for (int i = 0; i < kTxWrites; ++i) tx.write(mine[i], seq + i);
    for (int rnd = 0; rnd < kTxReadRounds; ++rnd)
      for (int i = 0; i < kVarsPerThread; ++i) acc += tx.read(mine[i]);
    if (frees) {
      BenchNode* fresh = tx.create<BenchNode>();
      fresh->value.unsafe_set(seq);
      if (*prev) tx.destroy(*prev);
      *prev = fresh;
    }
  });
  return acc;
}

/// Deterministic ~150 us of abort-proof private work (xorshift64 chain).
inline std::uint64_t straggler_spin(std::uint64_t x) {
  for (int i = 0; i < kStragglerIters; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
  }
  return x;
}

/// Run `threads` writers (plus one long-transaction peer when `threads` > 1)
/// for ~`secs` under the given regime.
CellResult run_cell(const Regime& regime, bool frees, int threads,
                    double secs) {
  set_exec_mode(ExecMode::StmCondVar);
  config().quiesce = regime.policy;
  config().multi_domain = true;
  reset_stats();

  const int stragglers = threads > 1 ? 1 : 0;
  elidable_mutex wlock{kWriterDomain};
  elidable_mutex slock{kStragglerDomain};
  auto vars = std::make_unique<tm_var<long>[]>(
      static_cast<std::size_t>(threads) * kVarsPerThread);
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> txns{0};
  std::atomic<std::uint64_t> stxns{0};
  SpinBarrier gate(static_cast<std::size_t>(threads + stragglers) + 1);
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(threads + stragglers));
  for (int t = 0; t < stragglers; ++t) {
    workers.emplace_back([&] {
      gate.arrive_and_wait();
      std::uint64_t lt = 0;
      std::uint64_t x = 0x9E3779B97F4A7C15ULL;
      while (!stop.load(std::memory_order_relaxed)) {
        critical(slock, TLE_TX_SITE("qsc/straggler"),
                 [&](TxContext&) { x = straggler_spin(x); });
        benchmark::DoNotOptimize(x);
        ++lt;
      }
      stxns.fetch_add(lt, std::memory_order_relaxed);
    });
  }
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      tm_var<long>* mine = &vars[t * kVarsPerThread];
      BenchNode* prev = nullptr;
      gate.arrive_and_wait();
      std::uint64_t lt = 0;
      long seq = 0;
      long acc = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        ++seq;
        acc ^= writer_txn(wlock, mine, seq, frees, &prev);
        ++lt;
      }
      benchmark::DoNotOptimize(acc);
      // Release the last node outside the measurement window.
      if (prev)
        critical(wlock, TLE_TX_SITE("qsc/cleanup"),
                 [&](TxContext& tx) { tx.destroy(prev); });
      txns.fetch_add(lt, std::memory_order_relaxed);
      // Per-thread invariant: our words hold the last sequence we wrote.
      for (int i = 0; i < kTxWrites; ++i)
        check(mine[i].unsafe_get() == seq + i, "writer final state");
    });
  }
  Stopwatch sw;
  gate.arrive_and_wait();
  while (sw.seconds() < secs) std::this_thread::yield();
  stop.store(true);
  const double measured = sw.seconds();
  for (auto& w : workers) w.join();

  CellResult r;
  r.policy = regime.name;
  r.frees = frees;
  r.threads = threads;
  r.stragglers = stragglers;
  r.secs = measured;
  r.txns = txns.load();
  r.straggler_txns = stxns.load();
  r.stats = aggregate_stats();
  config().multi_domain = false;
  set_exec_mode(ExecMode::Lock);
  return r;
}

void emit_json(const char* path, const std::vector<CellResult>& cells,
               double secs) {
  JsonWriter j;
  j.begin_obj();
  j.kv("schema", "tle-quiesce/v1");
  j.kv("secs_per_cell", secs);
  j.key("results");
  j.begin_arr();
  double always_free_8t = 0, always_none_1t = 0;
  for (const CellResult& c : cells) {
    j.begin_obj();
    j.kv("policy", c.policy.c_str());
    j.kv("frees", c.frees ? "heavy" : "none");
    j.kv("threads", static_cast<std::uint64_t>(c.threads));
    j.kv("stragglers", static_cast<std::uint64_t>(c.stragglers));
    j.kv("txns", c.txns);
    j.kv("straggler_txns", c.straggler_txns);
    j.kv("commits_per_sec", c.commits_per_sec());
    j.kv("quiesce_waits", c.stats.quiesce_waits);
    j.kv("quiesce_spins", c.stats.quiesce_spins);
    j.kv("parked_waits", c.stats.parked_waits);
    j.kv("grace_scans", c.stats.grace_scans);
    j.kv("grace_shared", c.stats.grace_shared);
    j.kv("limbo_enqueued", c.stats.limbo_enqueued);
    j.kv("limbo_drained", c.stats.limbo_drained);
    j.kv("tm_frees", c.stats.tm_frees);
    j.end_obj();
    if (c.policy == "Always" && c.frees && c.threads == 8)
      always_free_8t = c.commits_per_sec();
    if (c.policy == "Always" && !c.frees && c.threads == 1)
      always_none_1t = c.commits_per_sec();
  }
  j.end_arr();
  j.key("baseline_prepr");
  j.begin_obj();
  j.kv("always_free_8t_ops", kPrePrAlwaysFree8T);
  j.kv("always_none_1t_ops", kPrePrAlwaysNone1T);
  j.kv("note",
       "pre-grace engine @075b074, QUIESCE_SCALE_SECS=0.5, single-core CI "
       "box");
  j.end_obj();
  j.key("speedup_vs_prepr");
  j.begin_obj();
  j.kv("always_free_8t",
       kPrePrAlwaysFree8T > 0 ? always_free_8t / kPrePrAlwaysFree8T : 0.0);
  j.kv("always_none_1t",
       kPrePrAlwaysNone1T > 0 ? always_none_1t / kPrePrAlwaysNone1T : 0.0);
  j.end_obj();
  j.end_obj();

  if (!j.write_file(path)) {
    std::fprintf(stderr, "quiesce_scale: cannot write %s\n", path);
    g_check_failures.fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  const char* out = "BENCH_quiesce.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0)
      smoke = true;
    else
      out = argv[i];
  }
  const double secs = env_double("QUIESCE_SCALE_SECS", smoke ? 0.02 : 0.3);
  const int max_threads = static_cast<int>(
      env_long("QUIESCE_SCALE_MAX_THREADS", smoke ? 4 : 8));

  std::vector<int> thread_counts;
  for (int t = 1; t <= max_threads && t <= kMaxBenchThreads; t *= 2)
    thread_counts.push_back(t);

  std::vector<CellResult> cells;
  for (const Regime& regime : kRegimes)
    for (bool frees : {false, true})
      for (int t : thread_counts)
        cells.push_back(run_cell(regime, frees, t, secs));

  std::printf("%-12s %-6s %8s %12s %9s %12s %12s %8s %12s\n", "policy",
              "frees", "threads", "commits/s", "strag_tx", "q_waits",
              "q_spins", "parked", "grace s/sh");
  for (const CellResult& c : cells) {
    char grace[32];
    std::snprintf(grace, sizeof grace, "%llu/%llu",
                  static_cast<unsigned long long>(c.stats.grace_scans),
                  static_cast<unsigned long long>(c.stats.grace_shared));
    std::printf("%-12s %-6s %8d %12.0f %9llu %12llu %12llu %8llu %12s\n",
                c.policy.c_str(), c.frees ? "heavy" : "none", c.threads,
                c.commits_per_sec(),
                static_cast<unsigned long long>(c.straggler_txns),
                static_cast<unsigned long long>(c.stats.quiesce_waits),
                static_cast<unsigned long long>(c.stats.quiesce_spins),
                static_cast<unsigned long long>(c.stats.parked_waits),
                grace);
  }
  emit_json(out, cells, secs);
  std::printf("wrote %s\n", out);

  const auto failures = g_check_failures.load();
  if (failures) {
    std::fprintf(stderr, "quiesce_scale: %llu check failure(s)\n",
                 static_cast<unsigned long long>(failures));
    return 1;
  }
  return 0;
}
