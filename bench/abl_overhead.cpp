// Per-access TM overhead microbenchmark — the perf-trajectory anchor.
//
// The paper's central cost story (Figs. 2-5) is that TLE lives or dies on
// per-access runtime overhead: instrumentation on reads/writes, read-set
// validation, and quiescence. This benchmark isolates those hot paths with
// four transaction shapes, each run under all five paper ExecModes:
//
//   read_only       : R distinct reads per transaction (pure read
//                     instrumentation; no validation, no undo)
//   write_heavy     : W distinct writes per transaction (orec acquisition /
//                     store-buffer append + undo logging)
//   read_own_write  : W writes then several read rounds over the same words
//                     (read-own-write lookup — the HTM store-buffer path)
//   large_read_set  : many read rounds over a working set plus a write burst,
//                     two threads, so commit-time validation actually runs
//                     (single-threaded ml_wt commits skip validation when the
//                     clock did not move)
//
// Unlike the figure benchmarks this one emits machine-readable JSON
// (BENCH_tm_ops.json, schema "tle-tm-ops/v1" — see bench_support.hpp) so the
// per-op perf trajectory is diffable across PRs. A smoke run is wired into
// tier-1 ctest (ABL_OVERHEAD_SECS=0.02); full runs default to 0.3 s/cell.
//
// Each workload self-checks transactional results (snapshot atomicity, final
// memory state) and the process exits nonzero on any violation, so the smoke
// run doubles as a correctness gate.
#include <atomic>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_support.hpp"
#include "tm/obs/metrics.hpp"
#include "util/barrier.hpp"
#include "util/env.hpp"
#include "util/timing.hpp"

namespace {

using namespace tle;
using namespace tle::bench;

// Workload geometry. All vars of one workload live in a single contiguous
// array: orec_for walks a full cycle over consecutive words, so contiguous
// words are guaranteed orec-disjoint (no accidental cross-thread aliasing).
constexpr int kRoVars = 256;   // read_only: distinct reads per txn
constexpr int kWrVars = 128;   // write_heavy: distinct writes per txn
constexpr int kRowVars = 128;  // read_own_write: buffered writes per txn
constexpr int kRowRounds = 4;  // ...then kRowRounds reads of each
constexpr int kLrsVars = 1024;  // large_read_set: distinct words per thread
constexpr int kLrsRounds = 64;  // ...read rounds (65536 logged reads pre-dedup)

// Pre-PR baselines for the two acceptance cells, measured on the seed engine
// (commit 5325171) with this same harness at ABL_OVERHEAD_SECS=0.5 on the CI
// container. They are machine-specific reference points: speedup_vs_prepr in
// the JSON is meaningful on comparable hardware and is recorded here so the
// perf trajectory starting at this PR has a fixed origin.
constexpr double kPrePrHtmRowOps = 57208.0;  // HTM read_own_write txns/sec
constexpr double kPrePrMlwtLargeReadOps =
    796.0;  // StmCondVar large_read_set txns/sec

std::atomic<std::uint64_t> g_check_failures{0};

void check(bool ok, const char* what) {
  if (!ok) {
    g_check_failures.fetch_add(1, std::memory_order_relaxed);
    std::fprintf(stderr, "abl_overhead: CHECK FAILED: %s\n", what);
  }
}

struct CellResult {
  std::string workload;
  ExecMode mode{};
  int threads = 0;
  double secs = 0;
  std::uint64_t txns = 0;
  std::uint64_t accesses = 0;
  StatsSnapshot stats;

  double ops_per_sec() const { return secs > 0 ? static_cast<double>(txns) / secs : 0; }
  double accesses_per_sec() const {
    return secs > 0 ? static_cast<double>(accesses) / secs : 0;
  }
};

/// Run `txn_once(tid)` (returning accesses performed) on `threads` threads
/// for ~`secs` seconds; aggregate txn/access counts and the stats delta.
template <typename F>
CellResult run_cell(const char* workload, ExecMode mode, int threads,
                    double secs, F&& txn_once) {
  set_exec_mode(mode);
  reset_stats();

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> txns{0}, accesses{0};
  SpinBarrier gate(static_cast<std::size_t>(threads) + 1);
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      gate.arrive_and_wait();
      std::uint64_t lt = 0, la = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        la += txn_once(t);
        ++lt;
      }
      txns.fetch_add(lt, std::memory_order_relaxed);
      accesses.fetch_add(la, std::memory_order_relaxed);
    });
  }
  Stopwatch sw;
  gate.arrive_and_wait();
  while (sw.seconds() < secs) std::this_thread::yield();
  stop.store(true);
  for (auto& w : workers) w.join();

  CellResult r;
  r.workload = workload;
  r.mode = mode;
  r.threads = threads;
  r.secs = sw.seconds();
  r.txns = txns.load();
  r.accesses = accesses.load();
  r.stats = aggregate_stats();
  set_exec_mode(ExecMode::Lock);
  return r;
}

// ---------------------------------------------------------------------------
// Workloads
// ---------------------------------------------------------------------------

CellResult wl_read_only(ExecMode mode, double secs) {
  auto vars = std::make_unique<tm_var<long>[]>(kRoVars);
  for (int i = 0; i < kRoVars; ++i) vars[i].unsafe_set(i + 1);
  elidable_mutex mu;
  const long expect = static_cast<long>(kRoVars) * (kRoVars + 1) / 2;
  return run_cell("read_only", mode, 1, secs, [&](int) -> std::uint64_t {
    long sum = 0;
    critical(mu, TLE_TX_SITE("abl/read_only"), [&](TxContext& tx) {
      sum = 0;
      for (int i = 0; i < kRoVars; ++i) sum += tx.read(vars[i]);
    });
    check(sum == expect, "read_only sum");
    benchmark::DoNotOptimize(sum);
    return kRoVars;
  });
}

CellResult wl_write_heavy(ExecMode mode, double secs) {
  auto vars = std::make_unique<tm_var<long>[]>(kWrVars);
  elidable_mutex mu;
  long seq = 0;
  CellResult r = run_cell("write_heavy", mode, 1, secs, [&](int) -> std::uint64_t {
    ++seq;
    critical(mu, TLE_TX_SITE("abl/write_heavy"), [&](TxContext& tx) {
      for (int i = 0; i < kWrVars; ++i) tx.write(vars[i], seq + i);
    });
    return kWrVars;
  });
  for (int i = 0; i < kWrVars; ++i)
    check(vars[i].unsafe_get() == seq + i, "write_heavy final state");
  return r;
}

CellResult wl_read_own_write(ExecMode mode, double secs) {
  auto vars = std::make_unique<tm_var<long>[]>(kRowVars);
  elidable_mutex mu;
  long seq = 0;
  // Expected read-back sum per txn: kRowRounds * sum(seq+i).
  CellResult r = run_cell("read_own_write", mode, 1, secs,
                          [&](int) -> std::uint64_t {
    ++seq;
    long acc = 0;
    critical(mu, TLE_TX_SITE("abl/read_own_write"), [&](TxContext& tx) {
      acc = 0;
      for (int i = 0; i < kRowVars; ++i) tx.write(vars[i], seq + i);
      for (int rnd = 0; rnd < kRowRounds; ++rnd)
        for (int i = 0; i < kRowVars; ++i) acc += tx.read(vars[i]);
    });
    const long expect =
        kRowRounds * (kRowVars * seq +
                      static_cast<long>(kRowVars) * (kRowVars - 1) / 2);
    check(acc == expect, "read_own_write buffered read-back");
    benchmark::DoNotOptimize(acc);
    return static_cast<std::uint64_t>(kRowVars) * (1 + kRowRounds);
  });
  return r;
}

CellResult wl_large_read_set(ExecMode mode, double secs) {
  // Two threads over disjoint halves of one contiguous (orec-disjoint)
  // array. Each transaction re-reads its working set kLrsRounds times and
  // then rewrites it, so (a) the undeduplicated read set reaches
  // kLrsVars*kLrsRounds entries, (b) every logged orec is self-owned by
  // commit time (the O(R x W) validation worst case), and (c) the peer's
  // commits move the global clock so commit-time validation actually runs.
  // The working set is sized so a transaction outlasts a scheduler
  // timeslice even on a single-core host: the peer then commits inside
  // most transactions, defeating ml_wt's "clock did not move" validation
  // skip without relying on yield() being honored.
  constexpr int kThreads = 2;
  auto vars = std::make_unique<tm_var<long>[]>(kThreads * kLrsVars);
  for (int i = 0; i < kThreads * kLrsVars; ++i) vars[i].unsafe_set(1);
  elidable_mutex mu;
  return run_cell("large_read_set", mode, kThreads, secs,
                  [&](int tid) -> std::uint64_t {
    tm_var<long>* mine = &vars[tid * kLrsVars];
    long acc = 0, first = 0;
    critical(mu, TLE_TX_SITE("abl/large_read_set"), [&](TxContext& tx) {
      acc = 0;
      first = 0;
      for (int rnd = 0; rnd < kLrsRounds; ++rnd) {
        long s = 0;
        for (int i = 0; i < kLrsVars; ++i) s += tx.read(mine[i]);
        if (rnd == 0) first = s;
        acc += s;
      }
      for (int i = 0; i < kLrsVars; ++i)
        tx.write(mine[i], (acc % 1024) + i + 1);
    });
    // Snapshot atomicity: every round must have seen the same values.
    check(acc == first * kLrsRounds, "large_read_set snapshot atomicity");
    benchmark::DoNotOptimize(acc);
    return static_cast<std::uint64_t>(kLrsVars) * (kLrsRounds + 1);
  });
}

// ---------------------------------------------------------------------------
// JSON emission (schema "tle-tm-ops/v1" — documented in bench_support.hpp)
// ---------------------------------------------------------------------------

void emit_json(const char* path, const std::vector<CellResult>& cells,
               double secs) {
  JsonWriter j;
  j.begin_obj();
  j.kv("schema", "tle-tm-ops/v1");
  j.kv("secs_per_cell", secs);
  j.key("results");
  j.begin_arr();
  double htm_row = 0, mlwt_lrs = 0;
  for (const CellResult& c : cells) {
    j.begin_obj();
    j.kv("workload", c.workload.c_str());
    j.kv("mode", mode_tag(c.mode));
    j.kv("threads", static_cast<std::uint64_t>(c.threads));
    j.kv("txns", c.txns);
    j.kv("ops_per_sec", c.ops_per_sec());
    j.kv("accesses_per_sec", c.accesses_per_sec());
    j.kv("abort_pct", 100.0 * c.stats.abort_rate());
    j.kv("serial_pct", 100.0 * c.stats.serial_fraction());
    j.kv("quiesce_waits", c.stats.quiesce_waits);
    j.kv("quiesce_spins", c.stats.quiesce_spins);
    j.kv("stm_read_dedup", c.stats.stm_read_dedup);
    j.kv("htm_read_dedup", c.stats.htm_read_dedup);
    j.kv("htm_rw_hits", c.stats.htm_rw_hits);
    j.kv("htm_routed_frees", c.stats.htm_routed_frees);
    j.kv("priv_immediate_frees", c.stats.priv_immediate_frees);
    j.kv("priv_limbo_routed", c.stats.priv_limbo_routed);
    j.end_obj();
    if (c.workload == "read_own_write" && c.mode == ExecMode::Htm)
      htm_row = c.ops_per_sec();
    if (c.workload == "large_read_set" && c.mode == ExecMode::StmCondVar)
      mlwt_lrs = c.ops_per_sec();
  }
  j.end_arr();
  // The two acceptance cells of the hot-path overhaul PR, pinned against the
  // pre-PR (seed) engine measured with this same harness.
  j.key("baseline_prepr");
  j.begin_obj();
  j.kv("htm_read_own_write_ops", kPrePrHtmRowOps);
  j.kv("mlwt_large_read_set_ops", kPrePrMlwtLargeReadOps);
  j.kv("note",
       "seed engine @5325171, ABL_OVERHEAD_SECS=0.5, single-core CI box");
  j.end_obj();
  j.key("speedup_vs_prepr");
  j.begin_obj();
  j.kv("htm_read_own_write",
       kPrePrHtmRowOps > 0 ? htm_row / kPrePrHtmRowOps : 0.0);
  j.kv("mlwt_large_read_set",
       kPrePrMlwtLargeReadOps > 0 ? mlwt_lrs / kPrePrMlwtLargeReadOps : 0.0);
  j.end_obj();
  j.end_obj();

  if (!j.write_file(path)) {
    std::fprintf(stderr, "abl_overhead: cannot write %s\n", path);
    g_check_failures.fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const double secs = env_double("ABL_OVERHEAD_SECS", env_double("MICRO_SECS", 0.3));
  const char* out = argc > 1 ? argv[1] : "BENCH_tm_ops.json";

  // ABL_OBS=1 turns on the full observability stack (per-site profiling +
  // flight recorder) for the duration of the run — this is the knob used to
  // measure the enabled-vs-disabled overhead acceptance numbers.
  if (env_long("ABL_OBS", 0)) {
    obs::profile_enable(true);
    trace::enable(true);
    std::printf("abl_overhead: observability ON (profiling + trace)\n");
  }

  // ABL_METRICS=1 additionally arms the interval sampler (background thread
  // ticking at config().metrics_period_ms), so the live-telemetry A/B
  // overhead can be measured against the same cells: run once with the knob
  // off and once with it on, and compare ops/s.
  if (env_long("ABL_METRICS", 0)) {
    obs::metrics_start();
    std::printf("abl_overhead: interval metrics sampler ON (period=%u ms)\n",
                config().metrics_period_ms);
  }

  std::vector<CellResult> cells;
  for (ExecMode mode : kPaperModes) {
    cells.push_back(wl_read_only(mode, secs));
    cells.push_back(wl_write_heavy(mode, secs));
    cells.push_back(wl_read_own_write(mode, secs));
    cells.push_back(wl_large_read_set(mode, secs));
  }

  std::printf("%-16s %-16s %9s %12s %12s %9s %10s %10s %10s\n", "workload",
              "mode", "threads", "ops/s", "access/s", "abort%", "stm_dedup",
              "htm_dedup", "rw_hits");
  for (const CellResult& c : cells) {
    std::printf("%-16s %-16s %9d %12.0f %12.0f %9.3f %10llu %10llu %10llu\n",
                c.workload.c_str(), mode_tag(c.mode), c.threads,
                c.ops_per_sec(), c.accesses_per_sec(),
                100.0 * c.stats.abort_rate(),
                static_cast<unsigned long long>(c.stats.stm_read_dedup),
                static_cast<unsigned long long>(c.stats.htm_read_dedup),
                static_cast<unsigned long long>(c.stats.htm_rw_hits));
  }
  emit_json(out, cells, secs);
  std::printf("wrote %s\n", out);

  const auto failures = g_check_failures.load();
  if (failures) {
    std::fprintf(stderr, "abl_overhead: %llu check failure(s)\n",
                 static_cast<unsigned long long>(failures));
    return 1;
  }
  return 0;
}
