// Ablation A2 — HTM retry policy (§VII-A's closing suggestion).
//
// The paper's HTM runs fell back to serial after 2 failures and reported
// 13–18% serial execution on PBZip2, concluding that per-transaction retry
// tuning "would offer even better performance". We sweep the retry budget
// on a contended queue-metadata kernel and report throughput and the serial
// fraction — the trade the paper describes.
//
// Benchmark name format: abl_htm_retry/retries:<R>/threads:<N>
#include <benchmark/benchmark.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "bench_support.hpp"
#include "sync/bounded_queue.hpp"
#include "util/barrier.hpp"
#include "util/timing.hpp"

namespace {

using namespace tle;
using namespace tle::bench;

void run_case(benchmark::State& state, int retries, int threads) {
  set_exec_mode(ExecMode::Htm);
  config().htm_max_retries = retries;
  const double secs = env_double("MICRO_SECS", 0.3);

  for (auto _ : state) {
    bounded_queue<long> queue(128);
    reset_stats();
    std::atomic<bool> stop{false};
    std::atomic<std::uint64_t> ops{0};
    SpinBarrier gate(static_cast<std::size_t>(threads) + 1);
    std::vector<std::thread> workers;
    for (int t = 0; t < threads; ++t) {
      workers.emplace_back([&, t] {
        gate.arrive_and_wait();
        std::uint64_t local = 0;
        long v = t;
        while (!stop.load(std::memory_order_relaxed)) {
          // Alternate try_push/try_pop: pure queue-metadata transactions,
          // the PBZip2 critical-section shape.
          if (local & 1)
            benchmark::DoNotOptimize(queue.try_pop());
          else
            benchmark::DoNotOptimize(queue.try_push(v++));
          ++local;
        }
        ops.fetch_add(local);
      });
    }
    Stopwatch sw;
    gate.arrive_and_wait();
    while (sw.seconds() < secs) std::this_thread::yield();
    stop.store(true);
    for (auto& w : workers) w.join();
    state.SetIterationTime(sw.seconds());
    state.counters["ops_per_sec"] = static_cast<double>(ops.load()) / sw.seconds();
  }
  attach_tm_counters(state, aggregate_stats());
  config().htm_max_retries = 2;
  set_exec_mode(ExecMode::Lock);
}

void register_all() {
  for (int retries : {1, 2, 4, 8, 16}) {
    for (int threads : {2, 4, 8}) {
      const std::string name = "abl_htm_retry/retries:" +
                               std::to_string(retries) +
                               "/threads:" + std::to_string(threads);
      benchmark::RegisterBenchmark(name.c_str(),
                                   [retries, threads](benchmark::State& st) {
                                     run_case(st, retries, threads);
                                   })
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1)
          ->UseManualTime();
    }
  }
}

const int dummy = (register_all(), 0);

}  // namespace

BENCHMARK_MAIN();
