// Ablation A2 — HTM retry policy and the lemming effect (§VII-A).
//
// The paper's HTM runs fell back to serial after 2 failures and reported
// 13–18% serial execution on PBZip2, concluding that per-transaction retry
// tuning "would offer even better performance". Two experiments here:
//
//  1. Retry-budget sweep: the original contended queue-metadata kernel over
//     retries x threads, reporting throughput and the serial fraction.
//
//  2. Lemming effect A/B: the same queue kernel with one interferer thread
//     periodically entering a serial (synchronized) section. Under the
//     cause-blind legacy policy every serial window burns worker retry
//     budget, workers escalate to serial themselves, and each escalation
//     aborts the other workers — the convoy feeds itself ("one lemming
//     jumps, they all jump"). The contention governor drains serial windows
//     budget-free instead, so speculation resumes when the interferer
//     leaves. The A/B gap (elided commits/s and serial_fallbacks) is the
//     measured value of cause-awareness.
//
// Metric note: the headline rate is ELIDED commits/s — the runtime's
// `commits` counter, which counts only speculative (lock-elided) commits;
// serial executions land in `serial_commits`. On real multicore hardware the
// elision rate is what multiplies into parallel speedup: a convoy that runs
// every transaction under the serial lock caps throughput at one core. This
// harness's simulated HTM shares one machine, so total wall-clock txns/s
// cannot show the parallelism loss — it is reported alongside
// (total_txns_per_sec) to show the governor costs nothing end-to-end, but
// the acceptance ratio is taken on the elision rate the convoy destroys.
//
// Emits BENCH_governor.json (schema "tle-governor/v1", ingested by
// scripts/summarize_bench.py):
//
//   {
//     "schema": "tle-governor/v1",
//     "secs_per_cell": <double>,
//     "sweep": [                         // omitted under --smoke
//       { "retries": <int>, "threads": <int>, "txns": <uint>,
//         "ops_per_sec": <double>, "serial_fallbacks": <uint>,
//         "htm_retries": <uint>, "serial_pct": <double> }, ... ],
//     "lemming": [
//       { "governor": "on|off", "threads": <int>, "txns": <uint>,
//         "elided_commits_per_sec": <double>,
//         "total_txns_per_sec": <double>,
//         "serial_entries": <uint>,      // interferer serial sections
//         "serial_fallbacks": <uint>,    // worker speculation giving up
//         "convoy_depth": <double>,      // serial_fallbacks / serial_entries
//         "aborts_serial_pending": <uint>,
//         "gov_drain_waits": <uint>, "gov_drain_timeouts": <uint>,
//         "gov_serial_immediate": <uint>, "gov_storm_enters": <uint>,
//         "gov_storm_gated": <uint>,
//         "gov_watchdog_escalations": <uint> }, ... ],
//     "acceptance": {                    // on-vs-off at the widest cell
//       "threads": <int>,
//       "commits_ratio": <double>,       // elided-rate ratio, >= 2.0 expected
//       "total_ratio": <double>,         // wall-clock txns/s ratio (context)
//       "fallback_drop": <double>,       // >= 0.5 expected
//       "convoy_depth_on": <double>, "convoy_depth_off": <double> }
//   }
//
// `--smoke` runs two tiny lemming cells plus self-checks and is wired into
// the tier-1 ctest suite; the full run also executes the sweep and checks
// the acceptance ratios above.
#include <atomic>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_support.hpp"
#include "sync/bounded_queue.hpp"
#include "tm/governor/governor.hpp"
#include "util/barrier.hpp"
#include "util/env.hpp"
#include "util/timing.hpp"

namespace {

using namespace tle;
using namespace tle::bench;

std::atomic<std::uint64_t> g_check_failures{0};

void check(bool ok, const char* what) {
  if (!ok) {
    g_check_failures.fetch_add(1, std::memory_order_relaxed);
    std::fprintf(stderr, "abl_htm_retry: CHECK FAILED: %s\n", what);
  }
}

// ---------------------------------------------------------------------------
// Experiment 1: retry-budget sweep (the original A2 kernel)
// ---------------------------------------------------------------------------

struct SweepResult {
  int retries = 0;
  int threads = 0;
  double secs = 0;
  std::uint64_t ops = 0;
  StatsSnapshot stats;

  double ops_per_sec() const {
    return secs > 0 ? static_cast<double>(ops) / secs : 0;
  }
};

SweepResult run_sweep_cell(int retries, int threads, double secs) {
  set_exec_mode(ExecMode::Htm);
  config().htm_max_retries = retries;
  reset_stats();
  gov::reset();

  bounded_queue<long> queue(128);
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> ops{0};
  SpinBarrier gate(static_cast<std::size_t>(threads) + 1);
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      gate.arrive_and_wait();
      std::uint64_t local = 0;
      long v = t;
      while (!stop.load(std::memory_order_relaxed)) {
        // Alternate try_push/try_pop: pure queue-metadata transactions,
        // the PBZip2 critical-section shape.
        if (local & 1)
          benchmark::DoNotOptimize(queue.try_pop());
        else
          benchmark::DoNotOptimize(queue.try_push(v++));
        ++local;
      }
      ops.fetch_add(local);
    });
  }
  Stopwatch sw;
  gate.arrive_and_wait();
  while (sw.seconds() < secs) std::this_thread::yield();
  stop.store(true);
  const double measured = sw.seconds();
  for (auto& w : workers) w.join();

  SweepResult r;
  r.retries = retries;
  r.threads = threads;
  r.secs = measured;
  r.ops = ops.load();
  r.stats = aggregate_stats();
  check(r.ops > 0, "sweep cell made progress");
  config().htm_max_retries = 2;
  set_exec_mode(ExecMode::Lock);
  return r;
}

// ---------------------------------------------------------------------------
// Experiment 2: the lemming effect, governor on vs off
// ---------------------------------------------------------------------------

struct LemmingResult {
  bool governor = false;
  int threads = 0;
  double secs = 0;
  std::uint64_t txns = 0;           // completed worker operations
  std::uint64_t serial_entries = 0;  // interferer serial sections
  StatsSnapshot stats;

  /// Speculative (lock-elided) commits/s — the rate the convoy destroys.
  double elided_commits_per_sec() const {
    return secs > 0 ? static_cast<double>(stats.commits) / secs : 0;
  }
  /// All completed worker operations/s, elided or serial.
  double total_txns_per_sec() const {
    return secs > 0 ? static_cast<double>(txns) / secs : 0;
  }
  double convoy_depth() const {
    return serial_entries
               ? static_cast<double>(stats.serial_fallbacks) /
                     static_cast<double>(serial_entries)
               : 0.0;
  }
};

/// ~`iters` of abort-proof private work (xorshift64 chain).
inline std::uint64_t private_spin(std::uint64_t x, int iters) {
  for (int i = 0; i < iters; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
  }
  return x;
}

// Worker transactions do ~10 us of private work before their queue
// accesses, so at any instant nearly every preempted worker is
// mid-transaction: each serial entry aborts them all, and the instrumented
// accesses land at the end of the body where a freshly-arrived serial
// request is most likely to be pending. Both are what makes the convoy
// self-sustaining under the cause-blind policy.
constexpr int kWorkerTxnIters = 10000;
constexpr int kInterfererHoldIters = 2000;
constexpr int kInterfererGapIters = 20000;

LemmingResult run_lemming_cell(bool governor, int threads, double secs) {
  set_exec_mode(ExecMode::Htm);
  config().governor = governor;
  // A tight budget makes the cause-blind pathology absorbing: one
  // serial-pending abort escalates, every escalation's own serial entry
  // aborts the other workers, and the convoy feeds itself. Both cells run
  // the SAME budget — the only difference is cause-awareness, which drains
  // serial windows without consuming it.
  config().htm_max_retries = 1;
  reset_stats();
  gov::reset();

  bounded_queue<long> queue(128);
  elidable_mutex work_lock;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> ops{0};
  std::atomic<std::uint64_t> serials{0};
  SpinBarrier gate(static_cast<std::size_t>(threads) + 2);

  // The interferer: a short serial section (a logging/IO stand-in) with a
  // breather between entries. Every entry kills all in-flight speculation —
  // the seed of the convoy.
  std::thread interferer([&] {
    gate.arrive_and_wait();
    std::uint64_t local = 0;
    std::uint64_t x = 0x9E3779B97F4A7C15ULL;
    while (!stop.load(std::memory_order_relaxed)) {
      synchronized_do(TLE_TX_SITE("lemming/interferer"), [&](TxContext&) {
        x = private_spin(x, kInterfererHoldIters);
      });
      ++local;
      x = private_spin(x, kInterfererGapIters);
      benchmark::DoNotOptimize(x);
    }
    serials.fetch_add(local);
  });

  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      gate.arrive_and_wait();
      std::uint64_t local = 0;
      std::uint64_t x = 0x9E3779B97F4A7C15ULL + static_cast<std::uint64_t>(t);
      long v = t;
      while (!stop.load(std::memory_order_relaxed)) {
        critical(work_lock, TLE_TX_SITE("lemming/worker"), [&](TxContext&) {
          x = private_spin(x, kWorkerTxnIters);
          // Queue metadata at the end of the body (nested, flat-subsumed):
          // the PBZip2 critical-section shape.
          if (local & 1)
            benchmark::DoNotOptimize(queue.try_pop());
          else
            benchmark::DoNotOptimize(queue.try_push(v++));
        });
        benchmark::DoNotOptimize(x);
        ++local;
      }
      ops.fetch_add(local);
    });
  }
  Stopwatch sw;
  gate.arrive_and_wait();
  while (sw.seconds() < secs) std::this_thread::yield();
  stop.store(true);
  const double measured = sw.seconds();
  interferer.join();
  for (auto& w : workers) w.join();

  LemmingResult r;
  r.governor = governor;
  r.threads = threads;
  r.secs = measured;
  r.txns = ops.load();
  r.serial_entries = serials.load();
  r.stats = aggregate_stats();
  check(r.txns > 0, "lemming cell made progress");
  check(r.serial_entries > 0, "interferer entered serial");
  if (!governor)
    check(r.stats.gov_drain_waits == 0, "legacy policy never drains");

  config().governor = true;
  config().htm_max_retries = 2;
  gov::reset();
  set_exec_mode(ExecMode::Lock);
  return r;
}

// ---------------------------------------------------------------------------
// Output
// ---------------------------------------------------------------------------

void emit_json(const char* path, const std::vector<SweepResult>& sweep,
               const std::vector<LemmingResult>& lemming, double secs,
               int accept_threads) {
  JsonWriter j;
  j.begin_obj();
  j.kv("schema", "tle-governor/v1");
  j.kv("secs_per_cell", secs);

  j.key("sweep");
  j.begin_arr();
  for (const SweepResult& c : sweep) {
    j.begin_obj();
    j.kv("retries", static_cast<std::uint64_t>(c.retries));
    j.kv("threads", static_cast<std::uint64_t>(c.threads));
    j.kv("txns", c.stats.commits + c.stats.serial_commits);
    j.kv("ops_per_sec", c.ops_per_sec());
    j.kv("serial_fallbacks", c.stats.serial_fallbacks);
    j.kv("htm_retries", c.stats.htm_retries);
    j.kv("serial_pct", 100.0 * c.stats.serial_fraction());
    j.end_obj();
  }
  j.end_arr();

  const LemmingResult* on = nullptr;
  const LemmingResult* off = nullptr;
  j.key("lemming");
  j.begin_arr();
  for (const LemmingResult& c : lemming) {
    j.begin_obj();
    j.kv("governor", c.governor ? "on" : "off");
    j.kv("threads", static_cast<std::uint64_t>(c.threads));
    j.kv("txns", c.txns);
    j.kv("elided_commits_per_sec", c.elided_commits_per_sec());
    j.kv("total_txns_per_sec", c.total_txns_per_sec());
    j.kv("serial_entries", c.serial_entries);
    j.kv("serial_fallbacks", c.stats.serial_fallbacks);
    j.kv("convoy_depth", c.convoy_depth());
    j.kv("aborts_serial_pending",
         c.stats.aborts[static_cast<int>(AbortCause::SerialPending)]);
    j.kv("gov_drain_waits", c.stats.gov_drain_waits);
    j.kv("gov_drain_timeouts", c.stats.gov_drain_timeouts);
    j.kv("gov_serial_immediate", c.stats.gov_serial_immediate);
    j.kv("gov_storm_enters", c.stats.gov_storm_enters);
    j.kv("gov_storm_gated", c.stats.gov_storm_gated);
    j.kv("gov_watchdog_escalations", c.stats.gov_watchdog_escalations);
    j.end_obj();
    if (c.threads == accept_threads) (c.governor ? on : off) = &c;
  }
  j.end_arr();

  j.key("acceptance");
  j.begin_obj();
  j.kv("threads", static_cast<std::uint64_t>(accept_threads));
  if (on && off) {
    const double ratio =
        off->elided_commits_per_sec() > 0
            ? on->elided_commits_per_sec() / off->elided_commits_per_sec()
            : 0.0;
    const double total_ratio =
        off->total_txns_per_sec() > 0
            ? on->total_txns_per_sec() / off->total_txns_per_sec()
            : 0.0;
    const double drop =
        off->stats.serial_fallbacks > 0
            ? 1.0 - static_cast<double>(on->stats.serial_fallbacks) /
                        static_cast<double>(off->stats.serial_fallbacks)
            : 0.0;
    j.kv("commits_ratio", ratio);
    j.kv("total_ratio", total_ratio);
    j.kv("fallback_drop", drop);
    j.kv("convoy_depth_on", on->convoy_depth());
    j.kv("convoy_depth_off", off->convoy_depth());
  }
  j.end_obj();
  j.end_obj();

  if (!j.write_file(path)) {
    std::fprintf(stderr, "abl_htm_retry: cannot write %s\n", path);
    g_check_failures.fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  const char* out = "BENCH_governor.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0)
      smoke = true;
    else
      out = argv[i];
  }
  const double secs = env_double("ABL_HTM_RETRY_SECS", smoke ? 0.05 : 1.0);
  const int threads =
      static_cast<int>(env_long("ABL_HTM_RETRY_THREADS", 8));

  std::vector<SweepResult> sweep;
  if (!smoke)
    for (int retries : {1, 2, 4, 8, 16})
      for (int t : {2, 4, 8}) sweep.push_back(run_sweep_cell(retries, t, secs));

  // Off first, on second: the interesting number is the recovery.
  std::vector<LemmingResult> lemming;
  for (bool governor : {false, true})
    lemming.push_back(run_lemming_cell(governor, threads, secs));

  if (!sweep.empty()) {
    std::printf("%8s %8s %14s %12s %12s %10s\n", "retries", "threads",
                "ops/s", "fallbacks", "htm_retries", "serial%");
    for (const SweepResult& c : sweep)
      std::printf("%8d %8d %14.0f %12llu %12llu %9.2f%%\n", c.retries,
                  c.threads, c.ops_per_sec(),
                  static_cast<unsigned long long>(c.stats.serial_fallbacks),
                  static_cast<unsigned long long>(c.stats.htm_retries),
                  100.0 * c.stats.serial_fraction());
  }
  std::printf("%-9s %8s %14s %14s %10s %12s %8s %12s %10s\n", "governor",
              "threads", "elided/s", "total/s", "serials", "fallbacks",
              "convoy", "drains", "watchdog");
  for (const LemmingResult& c : lemming)
    std::printf("%-9s %8d %14.0f %14.0f %10llu %12llu %8.1f %12llu %10llu\n",
                c.governor ? "on" : "off", c.threads,
                c.elided_commits_per_sec(), c.total_txns_per_sec(),
                static_cast<unsigned long long>(c.serial_entries),
                static_cast<unsigned long long>(c.stats.serial_fallbacks),
                c.convoy_depth(),
                static_cast<unsigned long long>(c.stats.gov_drain_waits),
                static_cast<unsigned long long>(
                    c.stats.gov_watchdog_escalations));

  emit_json(out, sweep, lemming, secs, threads);
  std::printf("wrote %s\n", out);

  if (!smoke && lemming.size() == 2) {
    const LemmingResult& off = lemming[0];
    const LemmingResult& on = lemming[1];
    const double ratio =
        off.elided_commits_per_sec() > 0
            ? on.elided_commits_per_sec() / off.elided_commits_per_sec()
            : 0.0;
    std::printf("acceptance: elided commits ratio %.2fx (need >= 2.0), "
                "total txns ratio %.2fx, fallbacks "
                "%llu -> %llu (need >= 50%% drop)\n",
                ratio,
                off.total_txns_per_sec() > 0
                    ? on.total_txns_per_sec() / off.total_txns_per_sec()
                    : 0.0,
                static_cast<unsigned long long>(off.stats.serial_fallbacks),
                static_cast<unsigned long long>(on.stats.serial_fallbacks));
    check(ratio >= 2.0, "governor >= 2x cause-blind elided commits/s");
    check(on.stats.serial_fallbacks * 2 <= off.stats.serial_fallbacks,
          "governor halves serial fallbacks");
  }

  const auto failures = g_check_failures.load();
  if (failures) {
    std::fprintf(stderr, "abl_htm_retry: %llu check failure(s)\n",
                 static_cast<unsigned long long>(failures));
    return 1;
  }
  return 0;
}
