// Ablation A5 — slices versus wavefront parallelism (x265's parallelism
// menu from paper §III). Slices remove cross-row dependencies (more
// parallelism, fewer waits) but forfeit boundary prediction (more bits,
// lower PSNR for the same qp). The counters expose both sides of the trade.
//
// Benchmark name format: abl_slices/slices:<S>/threads:<N>
#include <benchmark/benchmark.h>

#include <string>

#include "bench_support.hpp"
#include "videnc/encoder.hpp"

namespace {

using namespace tle;
using namespace tle::bench;

void run_case(benchmark::State& state, int slices, int threads) {
  set_exec_mode(ExecMode::StmCondVar);
  videnc::EncoderConfig cfg;
  cfg.width = 160;
  cfg.height = 96;  // 6 CTU rows: slices 1/2/3 partition meaningfully
  cfg.frames = static_cast<int>(env_long("ABL_SLICE_FRAMES", 6));
  cfg.worker_threads = threads;
  cfg.frame_threads = 2;
  cfg.search_range = 6;
  cfg.slices = slices;

  videnc::EncodeStats stats{};
  for (auto _ : state) {
    reset_stats();
    const auto r = videnc::encode(cfg);
    stats = r.stats;
    benchmark::DoNotOptimize(stats.bits);
  }
  attach_tm_counters(state, aggregate_stats());
  state.counters["bits"] = static_cast<double>(stats.bits);
  state.counters["psnr_db"] = stats.psnr;
  state.counters["cv_waits"] =
      static_cast<double>(aggregate_stats().condvar_waits);
  set_exec_mode(ExecMode::Lock);
}

void register_all() {
  for (int slices : {1, 2, 3}) {
    for (int threads : {2, 4, 8}) {
      const std::string name = "abl_slices/slices:" + std::to_string(slices) +
                               "/threads:" + std::to_string(threads);
      benchmark::RegisterBenchmark(name.c_str(),
                                   [slices, threads](benchmark::State& st) {
                                     run_case(st, slices, threads);
                                   })
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1)
          ->UseRealTime();
    }
  }
}

const int dummy = (register_all(), 0);

}  // namespace

BENCHMARK_MAIN();
