// Figure 3 reproduction: x265 (videnc) speedup relative to the 1-thread
// pthread execution, for three input sizes (the paper used 38 MB / 735 MB /
// 3810 MB clips), worker threads 1..8, under the five algorithms.
//
// Sizes here are synthetic presets scaled by VIDENC_SCALE (default 1).
// The speedup_vs_pthread1 counter is the paper's y-axis.
//
// Benchmark name format: fig3/<size>/threads:<N>/<mode>
#include <benchmark/benchmark.h>

#include <map>
#include <string>

#include "bench_support.hpp"
#include "videnc/encoder.hpp"

namespace {

using namespace tle;
using namespace tle::bench;

struct SizePreset {
  const char* name;
  int width, height, frames;
};

const SizePreset kSizes[] = {
    {"small", 96, 64, 6},
    {"medium", 160, 96, 8},
    {"large", 240, 144, 10},
};

videnc::EncoderConfig make_cfg(const SizePreset& s, int threads) {
  const int scale = static_cast<int>(env_long("VIDENC_SCALE", 1));
  videnc::EncoderConfig cfg;
  cfg.width = s.width;
  cfg.height = s.height;
  cfg.frames = s.frames * scale;
  cfg.worker_threads = threads;
  cfg.frame_threads = 3;  // the paper's x265 default
  cfg.search_range = 6;
  return cfg;
}

/// 1-thread pthread baseline seconds per size (the Figure-3 denominator).
double baseline_seconds(const SizePreset& s) {
  static std::map<std::string, double> cache;
  auto it = cache.find(s.name);
  if (it == cache.end()) {
    set_exec_mode(ExecMode::Lock);
    videnc::EncoderConfig cfg = make_cfg(s, 1);
    cfg.frame_threads = 1;
    const auto r = videnc::encode(cfg);
    it = cache.emplace(s.name, r.stats.seconds).first;
  }
  return it->second;
}

void run_case(benchmark::State& state, const SizePreset& size, int threads,
              ExecMode mode) {
  const double base = baseline_seconds(size);
  set_exec_mode(mode);
  config().htm_spurious_abort_rate = env_double("HTM_SPURIOUS", 0.40);
  const videnc::EncoderConfig cfg = make_cfg(size, threads);
  double secs = 0;
  for (auto _ : state) {
    reset_stats();
    const auto r = videnc::encode(cfg);
    secs = r.stats.seconds;
    benchmark::DoNotOptimize(r.stats.bits);
  }
  attach_tm_counters(state, aggregate_stats());
  state.counters["speedup_vs_pthread1"] = secs > 0 ? base / secs : 0;
  config().htm_spurious_abort_rate = 0.0;
  set_exec_mode(ExecMode::Lock);
}

void register_all() {
  for (const SizePreset& size : kSizes) {
    for (int threads : {1, 2, 4, 8}) {
      for (ExecMode mode : kPaperModes) {
        const std::string name = std::string("fig3/") + size.name +
                                 "/threads:" + std::to_string(threads) + "/" +
                                 mode_tag(mode);
        benchmark::RegisterBenchmark(
            name.c_str(), [size, threads, mode](benchmark::State& st) {
              run_case(st, size, threads, mode);
            })
            ->Unit(benchmark::kMillisecond)
            ->Iterations(1)
            ->UseRealTime();
      }
    }
  }
}

const int dummy = (register_all(), 0);

}  // namespace

BENCHMARK_MAIN();
