// Figure 5 reproduction: data-structure microbenchmarks under three
// quiescence regimes —
//   STM        : quiesce after every transaction (GCC >= 2016 default),
//   NoQ        : no transaction quiesces (unsafe in general; kept faithful
//                except that frees still wait, as GCC's allocator demands),
//   SelectNoQ  : the paper's TM_NoQuiesce — reads/inserts skip quiescence,
//                freeing removals quiesce.
//
// Structures/keyspaces are the paper's: list with 6-bit keys, hash and
// red-black tree with 8-bit keys, initialized 50% full. Two mixes per
// structure: 50/50 insert/remove, and 50% lookup + 25/25 insert/remove.
// Trials are timed (MICRO_SECS, default 0.3 s each; the paper used 10 s).
//
// Benchmark name format: fig5/<struct>/<mix>/threads:<N>/<regime>
#include <benchmark/benchmark.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "bench_support.hpp"
#include "dstruct/tm_hash_set.hpp"
#include "dstruct/tm_list_set.hpp"
#include "dstruct/tm_rbtree_set.hpp"
#include "dstruct/tm_skiplist_set.hpp"
#include "util/barrier.hpp"
#include "util/rng.hpp"
#include "util/timing.hpp"

namespace {

using namespace tle;
using namespace tle::bench;

struct Regime {
  const char* name;
  QuiescePolicy policy;
  bool honor_noquiesce;
};

const Regime kRegimes[] = {
    {"STM", QuiescePolicy::Always, false},
    {"NoQ", QuiescePolicy::Never, false},
    {"SelectNoQ", QuiescePolicy::Always, true},
};

const double kTrialSecs = env_double("MICRO_SECS", 0.3);

template <typename SetT>
void run_case(benchmark::State& state, long keyspace, int lookup_pct,
              int threads, const Regime& regime) {
  set_exec_mode(ExecMode::StmCondVar);
  config().quiesce = regime.policy;
  config().honor_noquiesce = regime.honor_noquiesce;

  for (auto _ : state) {
    SetT set;
    for (long k = 0; k < keyspace; k += 2) set.insert(k);  // 50% full
    reset_stats();

    std::atomic<bool> stop{false};
    std::atomic<std::uint64_t> ops{0};
    SpinBarrier gate(static_cast<std::size_t>(threads) + 1);
    std::vector<std::thread> workers;
    for (int t = 0; t < threads; ++t) {
      workers.emplace_back([&, t] {
        Xoshiro256 rng(9000 + static_cast<unsigned>(t));
        gate.arrive_and_wait();
        std::uint64_t local = 0;
        while (!stop.load(std::memory_order_relaxed)) {
          const long key =
              static_cast<long>(rng.below(static_cast<std::uint64_t>(keyspace)));
          const int dice = static_cast<int>(rng.below(100));
          if (dice < lookup_pct) {
            benchmark::DoNotOptimize(set.contains(key));
          } else if (dice < lookup_pct + (100 - lookup_pct) / 2) {
            benchmark::DoNotOptimize(set.insert(key));
          } else {
            benchmark::DoNotOptimize(set.remove(key));
          }
          ++local;
        }
        ops.fetch_add(local, std::memory_order_relaxed);
      });
    }
    Stopwatch sw;
    gate.arrive_and_wait();
    while (sw.seconds() < kTrialSecs) std::this_thread::yield();
    stop.store(true);
    for (auto& w : workers) w.join();

    state.SetIterationTime(sw.seconds());
    state.counters["ops_per_sec"] = static_cast<double>(ops.load()) / sw.seconds();
  }
  attach_tm_counters(state, aggregate_stats());
  set_exec_mode(ExecMode::Lock);
}

template <typename SetT>
void register_structure(const char* sname, long keyspace) {
  struct Mix {
    const char* name;
    int lookup_pct;
  };
  const Mix mixes[] = {{"ins50rem50", 0}, {"lookup50", 50}};
  for (const Mix& mix : mixes) {
    for (int threads : {1, 2, 4, 8}) {
      for (const Regime& regime : kRegimes) {
        const std::string name = std::string("fig5/") + sname + "/" +
                                 mix.name + "/threads:" +
                                 std::to_string(threads) + "/" + regime.name;
        const int lookup_pct = mix.lookup_pct;
        const Regime reg = regime;
        benchmark::RegisterBenchmark(
            name.c_str(),
            [keyspace, lookup_pct, threads, reg](benchmark::State& st) {
              run_case<SetT>(st, keyspace, lookup_pct, threads, reg);
            })
            ->Unit(benchmark::kMillisecond)
            ->Iterations(1)
            ->UseManualTime();
      }
    }
  }
}

void register_all() {
  register_structure<TmListSet>("list", 64);      // 6-bit keys
  register_structure<TmHashSet>("hash", 256);     // 8-bit keys
  register_structure<TmRbTreeSet>("tree", 256);   // 8-bit keys
  // Extension series (not in the paper): a fourth classic TM structure.
  register_structure<TmSkipListSet>("fig5x-skiplist", 256);
}

const int dummy = (register_all(), 0);

}  // namespace

BENCHMARK_MAIN();
