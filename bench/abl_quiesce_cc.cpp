// Ablation A1 — quiescence as implicit congestion control (§VII-C).
//
// The paper observed that on the high-contention list, *some* quiescence
// outperforms none: a quiescing thread backs off, giving long traversals a
// chance to commit. We sweep the quiescence regime on the list benchmark at
// fixed high contention and report both throughput and the abort rate — the
// abort-rate column is the congestion-control mechanism made visible.
//
// Benchmark name format: abl_quiesce_cc/<regime>/threads:<N>
#include <benchmark/benchmark.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "bench_support.hpp"
#include "dstruct/tm_list_set.hpp"
#include "util/barrier.hpp"
#include "util/rng.hpp"
#include "util/timing.hpp"

namespace {

using namespace tle;
using namespace tle::bench;

struct Regime {
  const char* name;
  QuiescePolicy policy;
  bool honor;
};

const Regime kRegimes[] = {
    {"Always", QuiescePolicy::Always, false},
    {"WriterOnly", QuiescePolicy::WriterOnly, false},
    {"Selective", QuiescePolicy::Always, true},
    {"Never", QuiescePolicy::Never, false},
};

void run_case(benchmark::State& state, const Regime& regime, int threads) {
  set_exec_mode(ExecMode::StmCondVar);
  config().quiesce = regime.policy;
  config().honor_noquiesce = regime.honor;
  const double secs = env_double("MICRO_SECS", 0.3);

  for (auto _ : state) {
    TmListSet set;
    for (long k = 0; k < 64; k += 2) set.insert(k);
    reset_stats();
    std::atomic<bool> stop{false};
    std::atomic<std::uint64_t> ops{0};
    SpinBarrier gate(static_cast<std::size_t>(threads) + 1);
    std::vector<std::thread> workers;
    for (int t = 0; t < threads; ++t) {
      workers.emplace_back([&, t] {
        Xoshiro256 rng(31 + static_cast<unsigned>(t));
        gate.arrive_and_wait();
        std::uint64_t local = 0;
        while (!stop.load(std::memory_order_relaxed)) {
          const long key = static_cast<long>(rng.below(64));
          if (rng.chance(0.5))
            benchmark::DoNotOptimize(set.insert(key));
          else
            benchmark::DoNotOptimize(set.remove(key));
          ++local;
        }
        ops.fetch_add(local);
      });
    }
    Stopwatch sw;
    gate.arrive_and_wait();
    while (sw.seconds() < secs) std::this_thread::yield();
    stop.store(true);
    for (auto& w : workers) w.join();
    state.SetIterationTime(sw.seconds());
    state.counters["ops_per_sec"] = static_cast<double>(ops.load()) / sw.seconds();
  }
  attach_tm_counters(state, aggregate_stats());
  set_exec_mode(ExecMode::Lock);
}

void register_all() {
  for (const Regime& r : kRegimes) {
    for (int threads : {2, 4, 8}) {
      const std::string name = std::string("abl_quiesce_cc/") + r.name +
                               "/threads:" + std::to_string(threads);
      const Regime reg = r;
      benchmark::RegisterBenchmark(name.c_str(),
                                   [reg, threads](benchmark::State& st) {
                                     run_case(st, reg, threads);
                                   })
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1)
          ->UseManualTime();
    }
  }
}

const int dummy = (register_all(), 0);

}  // namespace

BENCHMARK_MAIN();
