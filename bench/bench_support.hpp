// Shared helpers for the figure-reproduction benchmarks.
#pragma once

#include <benchmark/benchmark.h>

#include <cinttypes>
#include <cstdio>
#include <string>

#include "tm/tm.hpp"
#include "util/env.hpp"

namespace tle::bench {

/// Attach the paper's evaluation counters (Figure 4 / §VII-A style) to a
/// benchmark state from a stats snapshot delta.
inline void attach_tm_counters(benchmark::State& state,
                               const StatsSnapshot& s) {
  state.counters["txns"] =
      static_cast<double>(s.commits + s.serial_commits);
  state.counters["abort_pct"] = 100.0 * s.abort_rate();
  state.counters["serial_pct"] = 100.0 * s.serial_fraction();
  state.counters["conflicts"] =
      static_cast<double>(s.aborts[static_cast<int>(AbortCause::Conflict)] +
                          s.aborts[static_cast<int>(AbortCause::Validation)]);
  state.counters["capacity"] =
      static_cast<double>(s.aborts[static_cast<int>(AbortCause::Capacity)]);
  state.counters["spurious"] =
      static_cast<double>(s.aborts[static_cast<int>(AbortCause::Spurious)]);
  state.counters["quiesce"] = static_cast<double>(s.quiesce_calls);
  state.counters["q_waits"] = static_cast<double>(s.quiesce_waits);
}

/// The five paper configurations, in presentation order.
inline const ExecMode kPaperModes[] = {
    ExecMode::Lock, ExecMode::StmSpin, ExecMode::StmCondVar,
    ExecMode::StmCondVarNoQ, ExecMode::Htm};

/// Short mode tags for benchmark names.
inline const char* mode_tag(ExecMode m) {
  switch (m) {
    case ExecMode::Lock: return "pthread";
    case ExecMode::StmSpin: return "STM+Spin";
    case ExecMode::StmCondVar: return "STM+CondVar";
    case ExecMode::StmCondVarNoQ: return "STM+CondVar+NoQ";
    case ExecMode::Htm: return "HTM+CondVar";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// BENCH_tm_ops.json ("tle-tm-ops/v1")
// ---------------------------------------------------------------------------
//
// abl_overhead emits a machine-readable per-op overhead record so perf PRs
// have a diffable trajectory. scripts/summarize_bench.py ingests it. Schema:
//
//   {
//     "schema": "tle-tm-ops/v1",
//     "secs_per_cell": <double>,           // wall seconds per (workload,mode)
//     "results": [                         // one cell per workload x ExecMode
//       { "workload": "read_only|write_heavy|read_own_write|large_read_set",
//         "mode": <mode_tag string>,       // "pthread", "STM+CondVar", ...
//         "threads": <int>,
//         "txns": <uint>,                  // committed logical transactions
//         "ops_per_sec": <double>,         // txns / wall-sec
//         "accesses_per_sec": <double>,    // tm reads+writes / wall-sec
//         "abort_pct": <double>, "serial_pct": <double>,
//         "quiesce_waits": <uint>, "quiesce_spins": <uint>,
//         "stm_read_dedup": <uint>,        // repeat ml_wt reads filtered
//         "htm_read_dedup": <uint>,        // repeat HTM reads from value log
//         "htm_rw_hits": <uint> },         // HTM reads from write buffer
//       ... ],
//     "baseline_prepr": {                  // pre-overhaul (seed) reference
//       "htm_read_own_write_ops": <double>,
//       "mlwt_large_read_set_ops": <double>, "note": <string> },
//     "speedup_vs_prepr": {                // this run vs. that baseline
//       "htm_read_own_write": <double>, "mlwt_large_read_set": <double> }
//   }

/// Minimal JSON emitter for the bench artifacts above. Handles commas and
/// nesting; callers pass identifier-safe strings (no escaping performed).
class JsonWriter {
 public:
  void begin_obj() { open('{'); }
  void end_obj() { close('}'); }
  void begin_arr() { open('['); }
  void end_arr() { close(']'); }

  /// Emit `"k":` and leave the value to a following begin_obj/begin_arr.
  void key(const char* k) {
    comma();
    out_ += '"';
    out_ += k;
    out_ += "\":";
    value_pending_ = true;
  }

  void kv(const char* k, const char* v) {
    key(k);
    out_ += '"';
    out_ += v;
    out_ += '"';
    value_pending_ = false;
  }
  void kv(const char* k, double v) {
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.6g", v);
    key(k);
    out_ += buf;
    value_pending_ = false;
  }
  void kv(const char* k, std::uint64_t v) {
    char buf[24];
    std::snprintf(buf, sizeof buf, "%" PRIu64, v);
    key(k);
    out_ += buf;
    value_pending_ = false;
  }

  const std::string& str() const { return out_; }

  bool write_file(const char* path) const {
    std::FILE* f = std::fopen(path, "w");
    if (!f) return false;
    const bool ok = std::fwrite(out_.data(), 1, out_.size(), f) == out_.size();
    return std::fclose(f) == 0 && ok;
  }

 private:
  void comma() {
    if (!first_ && !value_pending_) out_ += ',';
    first_ = false;
  }
  void open(char c) {
    comma();
    out_ += c;
    first_ = true;
    value_pending_ = false;
  }
  void close(char c) {
    out_ += c;
    first_ = false;
    value_pending_ = false;
  }

  std::string out_;
  bool first_ = true;
  bool value_pending_ = false;
};

}  // namespace tle::bench
