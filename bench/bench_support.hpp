// Shared helpers for the figure-reproduction benchmarks.
#pragma once

#include <benchmark/benchmark.h>

#include "tm/tm.hpp"
#include "util/env.hpp"

namespace tle::bench {

/// Attach the paper's evaluation counters (Figure 4 / §VII-A style) to a
/// benchmark state from a stats snapshot delta.
inline void attach_tm_counters(benchmark::State& state,
                               const StatsSnapshot& s) {
  state.counters["txns"] =
      static_cast<double>(s.commits + s.serial_commits);
  state.counters["abort_pct"] = 100.0 * s.abort_rate();
  state.counters["serial_pct"] = 100.0 * s.serial_fraction();
  state.counters["conflicts"] =
      static_cast<double>(s.aborts[static_cast<int>(AbortCause::Conflict)] +
                          s.aborts[static_cast<int>(AbortCause::Validation)]);
  state.counters["capacity"] =
      static_cast<double>(s.aborts[static_cast<int>(AbortCause::Capacity)]);
  state.counters["spurious"] =
      static_cast<double>(s.aborts[static_cast<int>(AbortCause::Spurious)]);
  state.counters["quiesce"] = static_cast<double>(s.quiesce_calls);
  state.counters["q_waits"] = static_cast<double>(s.quiesce_waits);
}

/// The five paper configurations, in presentation order.
inline const ExecMode kPaperModes[] = {
    ExecMode::Lock, ExecMode::StmSpin, ExecMode::StmCondVar,
    ExecMode::StmCondVarNoQ, ExecMode::Htm};

/// Short mode tags for benchmark names.
inline const char* mode_tag(ExecMode m) {
  switch (m) {
    case ExecMode::Lock: return "pthread";
    case ExecMode::StmSpin: return "STM+Spin";
    case ExecMode::StmCondVar: return "STM+CondVar";
    case ExecMode::StmCondVarNoQ: return "STM+CondVar+NoQ";
    case ExecMode::Htm: return "HTM+CondVar";
  }
  return "?";
}

}  // namespace tle::bench
