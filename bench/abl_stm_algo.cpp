// Ablation A4 — commit-protocol shoot-out across the StmProtocol seam:
// ml_wt (encounter-time orec locks, the paper's algorithm), gl_wt (GCC's
// global-versioned-lock group), and tictoc (timestamped OCC, write-back).
//
// Three mixes, chosen to expose the structural differences rather than to
// flatter any one protocol:
//
//  1. read_mostly — every transaction reads a few HOT cells plus a long
//     tail of cold data; one in eight also increments a hot cell FIRST.
//     Under ml_wt that writer holds the hot orec's encounter lock across
//     its whole read tail, conflict-aborting every concurrent reader of the
//     cell; tictoc buffers the write and locks only inside its commit
//     window. This is the headline cell: tictoc's write-back is expected to
//     win by >= 1.5x at high thread counts (full run enforces it).
//
//  2. write_heavy — every transaction increments half the hot set: dense
//     write-write conflict, where ml_wt's early conflict detection is the
//     stronger design and tictoc pays for discovering conflicts at commit.
//     Reported as the honest control; no ratio is enforced.
//
//  3. long_reader — one thread repeatedly sums a large block while the
//     rest increment random cells in it. The block sum is monotone
//     nondecreasing under increments, so each scan self-checks snapshot
//     consistency (a torn/zombie snapshot can go backwards); the cell
//     reports how each protocol's validation machinery (clock extension vs
//     rts extension vs global-lock retry) carries a big footprint through
//     writer churn.
//
// Emits BENCH_stm_algo.json (schema "tle-stm-algo/v1", ingested by
// scripts/summarize_bench.py):
//
//   {
//     "schema": "tle-stm-algo/v1",
//     "secs_per_cell": <double>,
//     "cells": [                        // algo x mix x threads
//       { "algo": "ml_wt|gl_wt|tictoc", "mix": "<name>",
//         "threads": <int>, "txns": <uint>,
//         "commits_per_sec": <double>, "total_txns_per_sec": <double>,
//         "aborts_conflict": <uint>, "aborts_validation": <uint>,
//         "tictoc_extensions": <uint>, "tictoc_extension_fails": <uint>,
//         "tictoc_wts_waits": <uint>, "tictoc_lock_timeouts": <uint>,
//         "gclock_advances": <uint>, "serial_pct": <double> }, ... ],
//     "acceptance": {                   // tictoc vs ml_wt, read_mostly
//       "mix": "read_mostly", "threads": <int>,
//       "tictoc_commits_per_sec": <double>,
//       "ml_wt_commits_per_sec": <double>,
//       "commits_ratio": <double> }     // >= 1.5 expected (full run)
//   }
//
// `--smoke` runs one tiny cell per algo x mix at 2 threads with the
// accounting and snapshot self-checks, and is wired into the tier-1 ctest
// suite; the 1.5x ratio is only enforced by the full (non-smoke) run on
// real multicore — this harness's STM shares one machine, so on few-core
// containers the encounter-lock penalty shows up as aborts, not lost
// parallelism.
#include <atomic>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_support.hpp"
#include "tm/governor/governor.hpp"
#include "tm/obs/metrics.hpp"
#include "util/barrier.hpp"
#include "util/env.hpp"
#include "util/rng.hpp"
#include "util/timing.hpp"

namespace {

using namespace tle;
using namespace tle::bench;

std::atomic<std::uint64_t> g_check_failures{0};

void check(bool ok, const char* what) {
  if (!ok) {
    g_check_failures.fetch_add(1, std::memory_order_relaxed);
    std::fprintf(stderr, "abl_stm_algo: CHECK FAILED: %s\n", what);
  }
}

enum class Mix { ReadMostly, WriteHeavy, LongReader };

const char* mix_name(Mix m) {
  switch (m) {
    case Mix::ReadMostly: return "read_mostly";
    case Mix::WriteHeavy: return "write_heavy";
    case Mix::LongReader: return "long_reader";
  }
  return "?";
}

constexpr std::size_t kHot = 8;     // contended cells
constexpr std::size_t kData = 512;  // cold tail / long-reader block
constexpr std::size_t kTail = 28;   // cold reads per read_mostly txn

struct AlgoResult {
  StmAlgo algo = StmAlgo::MlWt;
  Mix mix = Mix::ReadMostly;
  int threads = 0;
  double secs = 0;
  std::uint64_t txns = 0;
  StatsSnapshot stats;

  /// Speculative commits/s — serial fallbacks are excluded on purpose: the
  /// shoot-out compares the protocols, not the serial escape hatch.
  double commits_per_sec() const {
    return secs > 0 ? static_cast<double>(stats.commits) / secs : 0;
  }
  double total_txns_per_sec() const {
    return secs > 0 ? static_cast<double>(txns) / secs : 0;
  }
};

AlgoResult run_algo_cell(StmAlgo algo, Mix mix, int threads, double secs) {
  set_exec_mode(ExecMode::StmCondVar);
  config().stm_algo = algo;
  reset_stats();
  gov::reset();

  std::vector<tm_var<long>> hot(kHot);
  std::vector<tm_var<long>> data(kData);
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> ops{0}, adds{0};
  std::atomic<std::uint64_t> torn{0};
  SpinBarrier gate(static_cast<std::size_t>(threads) + 1);
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      Xoshiro256 rng(0xA19 + static_cast<std::uint64_t>(t) * 7919);
      gate.arrive_and_wait();
      std::uint64_t local = 0, local_adds = 0;
      long floor = 0;  // long_reader: last committed block sum
      while (!stop.load(std::memory_order_relaxed)) {
        switch (mix) {
          case Mix::ReadMostly: {
            // Write FIRST so ml_wt's encounter lock spans the read tail.
            const bool writer = rng.below(8) == 0;
            const std::size_t w = rng.below(kHot);
            long sink = 0;
            atomic_do([&](TxContext& tx) {
              sink = 0;
              if (writer) tx.fetch_add(hot[w], 1L);
              for (std::size_t i = 0; i < 4; ++i)
                sink += tx.read(hot[(w + 1 + i) % kHot]);
              for (std::size_t i = 0; i < kTail; ++i)
                sink += tx.read(data[rng.below(kData)]);
            });
            if (writer) ++local_adds;
            break;
          }
          case Mix::WriteHeavy: {
            const std::size_t base = rng.below(kHot);
            atomic_do([&](TxContext& tx) {
              for (std::size_t i = 0; i < kHot / 2; ++i)
                tx.fetch_add(hot[(base + i) % kHot], 1L);
            });
            local_adds += kHot / 2;
            break;
          }
          case Mix::LongReader: {
            if (t == 0) {
              long sum = 0;
              atomic_do([&](TxContext& tx) {
                sum = 0;
                for (auto& d : data) sum += tx.read(d);
              });
              // Cells only ever grow: a committed scan whose sum went
              // backwards read a torn snapshot.
              if (sum < floor) torn.fetch_add(1, std::memory_order_relaxed);
              floor = sum;
            } else {
              const std::size_t w = rng.below(kData);
              atomic_do([&](TxContext& tx) { tx.fetch_add(data[w], 1L); });
              ++local_adds;
            }
            break;
          }
        }
        ++local;
      }
      ops.fetch_add(local);
      adds.fetch_add(local_adds);
    });
  }
  Stopwatch sw;
  gate.arrive_and_wait();
  while (sw.seconds() < secs) std::this_thread::yield();
  stop.store(true);
  const double measured = sw.seconds();
  for (auto& w : workers) w.join();

  AlgoResult r;
  r.algo = algo;
  r.mix = mix;
  r.threads = threads;
  r.secs = measured;
  r.txns = ops.load();
  r.stats = aggregate_stats();
  check(r.txns > 0, "algo cell made progress");

  // Every committed increment landed exactly once, whatever the protocol.
  long long sum = 0;
  for (auto& v : hot)
    sum += static_cast<long>(v.raw().load(std::memory_order_relaxed));
  for (auto& v : data)
    sum += static_cast<long>(v.raw().load(std::memory_order_relaxed));
  check(static_cast<std::uint64_t>(sum) == adds.load(),
        "pool sum equals committed increments");
  check(torn.load() == 0, "long-reader snapshots are never torn");
  // Counter hygiene across the seam: tictoc rows move only under tictoc.
  if (algo != StmAlgo::TicToc) {
    check(r.stats.tictoc_extensions == 0 &&
              r.stats.tictoc_extension_fails == 0 &&
              r.stats.tictoc_wts_waits == 0 &&
              r.stats.tictoc_lock_timeouts == 0,
          "tictoc counters stay zero under ml_wt/gl_wt");
  } else {
    check(r.stats.gclock_advances == 0,
          "tictoc never advances the global clock");
  }

  config().stm_algo = StmAlgo::MlWt;
  set_exec_mode(ExecMode::Lock);
  return r;
}

void emit_json(const char* path, const std::vector<AlgoResult>& cells,
               double secs, int accept_threads) {
  JsonWriter j;
  j.begin_obj();
  j.kv("schema", "tle-stm-algo/v1");
  j.kv("secs_per_cell", secs);

  const AlgoResult* tictoc = nullptr;
  const AlgoResult* mlwt = nullptr;
  j.key("cells");
  j.begin_arr();
  for (const AlgoResult& c : cells) {
    j.begin_obj();
    j.kv("algo", to_string(c.algo));
    j.kv("mix", mix_name(c.mix));
    j.kv("threads", static_cast<std::uint64_t>(c.threads));
    j.kv("txns", c.txns);
    j.kv("commits_per_sec", c.commits_per_sec());
    j.kv("total_txns_per_sec", c.total_txns_per_sec());
    j.kv("aborts_conflict",
         c.stats.aborts[static_cast<int>(AbortCause::Conflict)]);
    j.kv("aborts_validation",
         c.stats.aborts[static_cast<int>(AbortCause::Validation)]);
    j.kv("tictoc_extensions", c.stats.tictoc_extensions);
    j.kv("tictoc_extension_fails", c.stats.tictoc_extension_fails);
    j.kv("tictoc_wts_waits", c.stats.tictoc_wts_waits);
    j.kv("tictoc_lock_timeouts", c.stats.tictoc_lock_timeouts);
    j.kv("gclock_advances", c.stats.gclock_advances);
    j.kv("serial_pct", 100.0 * c.stats.serial_fraction());
    j.end_obj();
    if (c.mix == Mix::ReadMostly && c.threads == accept_threads) {
      if (c.algo == StmAlgo::TicToc) tictoc = &c;
      if (c.algo == StmAlgo::MlWt) mlwt = &c;
    }
  }
  j.end_arr();

  j.key("acceptance");
  j.begin_obj();
  j.kv("mix", "read_mostly");
  j.kv("threads", static_cast<std::uint64_t>(accept_threads));
  if (tictoc && mlwt) {
    const double ratio =
        mlwt->commits_per_sec() > 0
            ? tictoc->commits_per_sec() / mlwt->commits_per_sec()
            : 0.0;
    j.kv("tictoc_commits_per_sec", tictoc->commits_per_sec());
    j.kv("ml_wt_commits_per_sec", mlwt->commits_per_sec());
    j.kv("commits_ratio", ratio);
  }
  j.end_obj();
  j.end_obj();

  if (!j.write_file(path)) {
    std::fprintf(stderr, "abl_stm_algo: cannot write %s\n", path);
    g_check_failures.fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  const char* out = "BENCH_stm_algo.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0)
      smoke = true;
    else
      out = argv[i];
  }
  const double secs = env_double("ABL_STM_ALGO_SECS", smoke ? 0.05 : 1.0);
  const int accept_threads =
      static_cast<int>(env_long("ABL_STM_ALGO_THREADS", 8));

  // ABL_METRICS=1 arms the interval sampler for the run (same knob as
  // abl_overhead), so algorithm sweeps can stream tle-metrics/v1 windows.
  if (env_long("ABL_METRICS", 0)) {
    obs::metrics_start();
    std::printf("abl_stm_algo: interval metrics sampler ON (period=%u ms)\n",
                config().metrics_period_ms);
  }

  const StmAlgo algos[] = {StmAlgo::MlWt, StmAlgo::GlWt, StmAlgo::TicToc};
  const Mix mixes[] = {Mix::ReadMostly, Mix::WriteHeavy, Mix::LongReader};
  std::vector<AlgoResult> cells;
  for (StmAlgo algo : algos)
    for (Mix mix : mixes) {
      if (smoke) {
        cells.push_back(run_algo_cell(algo, mix, 2, secs));
      } else {
        for (int t : {1, 2, 4, 8})
          cells.push_back(run_algo_cell(algo, mix, t, secs));
      }
    }

  std::printf("%-7s %-12s %8s %14s %14s %10s %10s %10s %8s\n", "algo", "mix",
              "threads", "commits/s", "total/s", "conflict", "validate",
              "tt_ext", "serial%");
  for (const AlgoResult& c : cells)
    std::printf(
        "%-7s %-12s %8d %14.0f %14.0f %10llu %10llu %10llu %7.2f%%\n",
        to_string(c.algo), mix_name(c.mix), c.threads, c.commits_per_sec(),
        c.total_txns_per_sec(),
        static_cast<unsigned long long>(
            c.stats.aborts[static_cast<int>(AbortCause::Conflict)]),
        static_cast<unsigned long long>(
            c.stats.aborts[static_cast<int>(AbortCause::Validation)]),
        static_cast<unsigned long long>(c.stats.tictoc_extensions),
        100.0 * c.stats.serial_fraction());

  emit_json(out, cells, secs, accept_threads);
  std::printf("wrote %s\n", out);

  if (!smoke) {
    const AlgoResult* tictoc = nullptr;
    const AlgoResult* mlwt = nullptr;
    for (const AlgoResult& c : cells)
      if (c.mix == Mix::ReadMostly && c.threads == accept_threads) {
        if (c.algo == StmAlgo::TicToc) tictoc = &c;
        if (c.algo == StmAlgo::MlWt) mlwt = &c;
      }
    if (tictoc && mlwt) {
      const double ratio =
          mlwt->commits_per_sec() > 0
              ? tictoc->commits_per_sec() / mlwt->commits_per_sec()
              : 0.0;
      std::printf("acceptance: read_mostly %dT tictoc/ml_wt commits ratio "
                  "%.2fx (need >= 1.5)\n",
                  accept_threads, ratio);
      check(ratio >= 1.5,
            "tictoc >= 1.5x ml_wt commits/s on read_mostly at the "
            "acceptance thread count");
    }
  }

  const auto failures = g_check_failures.load();
  if (failures) {
    std::fprintf(stderr, "abl_stm_algo: %llu check failure(s)\n",
                 static_cast<unsigned long long>(failures));
    return 1;
  }
  return 0;
}
