// Ablation A4 — STM method group: ml_wt (the paper's algorithm) versus
// gl_wt (GCC's global-versioned-lock group). gl_wt has near-zero read
// instrumentation but serializes all writers, so it wins on read-dominated
// low-thread workloads and collapses under write concurrency — the
// trade-off that motivates libitm's method-group dispatch.
//
// Benchmark name format: abl_stm_algo/<algo>/<mix>/threads:<N>
#include <benchmark/benchmark.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "bench_support.hpp"
#include "dstruct/tm_hash_set.hpp"
#include "util/barrier.hpp"
#include "util/rng.hpp"
#include "util/timing.hpp"

namespace {

using namespace tle;
using namespace tle::bench;

void run_case(benchmark::State& state, StmAlgo algo, int lookup_pct,
              int threads) {
  set_exec_mode(ExecMode::StmCondVar);
  config().stm_algo = algo;
  const double secs = env_double("MICRO_SECS", 0.3);

  for (auto _ : state) {
    TmHashSet set;
    for (long k = 0; k < 256; k += 2) set.insert(k);
    reset_stats();
    std::atomic<bool> stop{false};
    std::atomic<std::uint64_t> ops{0};
    SpinBarrier gate(static_cast<std::size_t>(threads) + 1);
    std::vector<std::thread> workers;
    for (int t = 0; t < threads; ++t) {
      workers.emplace_back([&, t] {
        Xoshiro256 rng(41 + static_cast<unsigned>(t));
        gate.arrive_and_wait();
        std::uint64_t local = 0;
        while (!stop.load(std::memory_order_relaxed)) {
          const long key = static_cast<long>(rng.below(256));
          const int dice = static_cast<int>(rng.below(100));
          if (dice < lookup_pct)
            benchmark::DoNotOptimize(set.contains(key));
          else if (dice < lookup_pct + (100 - lookup_pct) / 2)
            benchmark::DoNotOptimize(set.insert(key));
          else
            benchmark::DoNotOptimize(set.remove(key));
          ++local;
        }
        ops.fetch_add(local);
      });
    }
    Stopwatch sw;
    gate.arrive_and_wait();
    while (sw.seconds() < secs) std::this_thread::yield();
    stop.store(true);
    for (auto& w : workers) w.join();
    state.SetIterationTime(sw.seconds());
    state.counters["ops_per_sec"] = static_cast<double>(ops.load()) / sw.seconds();
  }
  attach_tm_counters(state, aggregate_stats());
  config().stm_algo = StmAlgo::MlWt;
  set_exec_mode(ExecMode::Lock);
}

void register_all() {
  struct Mix {
    const char* name;
    int lookup_pct;
  };
  const Mix mixes[] = {{"ins50rem50", 0}, {"lookup90", 90}};
  for (StmAlgo algo : {StmAlgo::MlWt, StmAlgo::GlWt}) {
    for (const Mix& mix : mixes) {
      for (int threads : {1, 2, 4, 8}) {
        const std::string name = std::string("abl_stm_algo/") +
                                 to_string(algo) + "/" + mix.name +
                                 "/threads:" + std::to_string(threads);
        const int lookup_pct = mix.lookup_pct;
        benchmark::RegisterBenchmark(
            name.c_str(),
            [algo, lookup_pct, threads](benchmark::State& st) {
              run_case(st, algo, lookup_pct, threads);
            })
            ->Unit(benchmark::kMillisecond)
            ->Iterations(1)
            ->UseManualTime();
      }
    }
  }
}

const int dummy = (register_all(), 0);

}  // namespace

BENCHMARK_MAIN();
