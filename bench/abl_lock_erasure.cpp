// Ablation A3 — lock erasure granularity (§IV-A).
//
// The paper's example: a queue under lock L1 and a stack under lock L2 are
// disjoint, but TMTS-based elision erases both locks into one transaction
// domain, so quiescence couples them ("the granularity of quiescence
// becomes unnecessarily coarse"). We run two disjoint list structures under
// two elidable locks and compare the single erased domain against per-lock
// quiescence domains (multi_domain). The q_waits counter shows the
// cross-structure coupling disappear.
//
// Benchmark name format: abl_lock_erasure/<domains>/threads:<N>
#include <benchmark/benchmark.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "bench_support.hpp"
#include "dstruct/tm_list_set.hpp"
#include "util/barrier.hpp"
#include "util/rng.hpp"
#include "util/timing.hpp"

namespace {

using namespace tle;
using namespace tle::bench;

void run_case(benchmark::State& state, bool multi_domain, int threads) {
  set_exec_mode(ExecMode::StmCondVar);
  config().multi_domain = multi_domain;
  const double secs = env_double("MICRO_SECS", 0.3);

  for (auto _ : state) {
    // Two disjoint structures; under multi_domain their critical sections
    // quiesce independently. Domains are keyed by the mutexes.
    elidable_mutex queue_lock(1), stack_lock(2);
    TmListSet queue_set, stack_set;
    for (long k = 0; k < 64; k += 2) {
      queue_set.insert(k);
      stack_set.insert(k);
    }
    reset_stats();

    std::atomic<bool> stop{false};
    std::atomic<std::uint64_t> ops{0};
    SpinBarrier gate(static_cast<std::size_t>(threads) + 1);
    std::vector<std::thread> workers;
    for (int t = 0; t < threads; ++t) {
      workers.emplace_back([&, t] {
        // Even threads use the queue, odd threads the stack: disjoint.
        TmListSet& mine = (t % 2 == 0) ? queue_set : stack_set;
        elidable_mutex& lock = (t % 2 == 0) ? queue_lock : stack_lock;
        Xoshiro256 rng(77 + static_cast<unsigned>(t));
        gate.arrive_and_wait();
        std::uint64_t local = 0;
        while (!stop.load(std::memory_order_relaxed)) {
          const long key = static_cast<long>(rng.below(64));
          // Route through critical() so the mutex's domain applies.
          critical(lock, [&](TxContext&) {
            if (key & 1)
              benchmark::DoNotOptimize(mine.insert(key));
            else
              benchmark::DoNotOptimize(mine.remove(key));
          });
          ++local;
        }
        ops.fetch_add(local);
      });
    }
    Stopwatch sw;
    gate.arrive_and_wait();
    while (sw.seconds() < secs) std::this_thread::yield();
    stop.store(true);
    for (auto& w : workers) w.join();
    state.SetIterationTime(sw.seconds());
    state.counters["ops_per_sec"] = static_cast<double>(ops.load()) / sw.seconds();
  }
  attach_tm_counters(state, aggregate_stats());
  config().multi_domain = false;
  set_exec_mode(ExecMode::Lock);
}

void register_all() {
  for (bool multi : {false, true}) {
    for (int threads : {2, 4, 8}) {
      const std::string name = std::string("abl_lock_erasure/") +
                               (multi ? "per-lock-domains" : "erased-single") +
                               "/threads:" + std::to_string(threads);
      benchmark::RegisterBenchmark(name.c_str(),
                                   [multi, threads](benchmark::State& st) {
                                     run_case(st, multi, threads);
                                   })
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1)
          ->UseManualTime();
    }
  }
}

const int dummy = (register_all(), 0);

}  // namespace

BENCHMARK_MAIN();
