// Figure 2 reproduction: PBZip2 (pipez) Compress and Decompress execution
// time for block sizes 100K / 300K / 900K, worker threads 1..8, under the
// five algorithms (pthread baseline, STM+Spin, STM+CondVar,
// STM+CondVar+NoQuiesce, HTM+CondVar).
//
// The paper used a 650 MB file on a 4C/8T i7; the corpus here defaults to
// 2 MB so the whole sweep completes in CI — scale with PIPEZ_MB=650 to run
// at paper scale. Counters reproduce the §VII-A in-text statistics
// (transaction counts, abort %, HTM serial-fallback %).
//
// Benchmark name format: fig2/<op>/block:<K>/threads:<N>/<mode>
#include <benchmark/benchmark.h>

#include <map>
#include <string>
#include <vector>

#include "bench_support.hpp"
#include "pipez/pipeline.hpp"

namespace {

using namespace tle;
using namespace tle::bench;

const std::size_t kCorpusBytes =
    static_cast<std::size_t>(env_long("PIPEZ_MB", 2)) * 1000 * 1000;

const std::vector<std::uint8_t>& corpus() {
  static const std::vector<std::uint8_t> c =
      pipez::make_corpus(kCorpusBytes, 650);
  return c;
}

/// Pre-compressed stream per block size (input for the Decompress runs).
const std::vector<std::uint8_t>& compressed_with_block(std::size_t block) {
  static std::map<std::size_t, std::vector<std::uint8_t>> cache;
  auto it = cache.find(block);
  if (it == cache.end()) {
    set_exec_mode(ExecMode::Lock);
    pipez::Config cfg;
    cfg.worker_threads = 2;
    cfg.block_size = block;
    it = cache.emplace(block, pipez::compress(corpus(), cfg)).first;
  }
  return it->second;
}

void run_case(benchmark::State& state, bool is_compress, std::size_t block,
              int threads, ExecMode mode) {
  set_exec_mode(mode);
  // Calibrated TSX environmental-abort rate: with the paper's 2-retry
  // fallback policy this reproduces its 13-18% HTM serial-fallback band.
  config().htm_spurious_abort_rate = env_double("HTM_SPURIOUS", 0.40);
  pipez::Config cfg;
  cfg.worker_threads = threads;
  cfg.block_size = block;
  if (!is_compress) (void)compressed_with_block(block);  // build outside timing

  for (auto _ : state) {
    reset_stats();
    if (is_compress) {
      auto out = pipez::compress(corpus(), cfg);
      benchmark::DoNotOptimize(out.data());
    } else {
      auto out = pipez::decompress(compressed_with_block(block), cfg);
      if (!out.ok) state.SkipWithError(out.error.c_str());
      benchmark::DoNotOptimize(out.data.data());
    }
  }
  attach_tm_counters(state, aggregate_stats());
  state.SetBytesProcessed(
      static_cast<std::int64_t>(corpus().size()) * state.iterations());
  config().htm_spurious_abort_rate = 0.0;
  set_exec_mode(ExecMode::Lock);
}

void register_all() {
  for (bool compress : {true, false}) {
    for (std::size_t block : {100000u, 300000u, 900000u}) {
      for (int threads : {1, 2, 4, 8}) {
        for (ExecMode mode : kPaperModes) {
          std::string name = std::string("fig2/") +
                             (compress ? "Compress" : "Decompress") +
                             "/block:" + std::to_string(block / 1000) + "K" +
                             "/threads:" + std::to_string(threads) + "/" +
                             mode_tag(mode);
          benchmark::RegisterBenchmark(
              name.c_str(),
              [compress, block, threads, mode](benchmark::State& st) {
                run_case(st, compress, block, threads, mode);
              })
              ->Unit(benchmark::kMillisecond)
              ->Iterations(1)
              ->MeasureProcessCPUTime()
              ->UseRealTime();
        }
      }
    }
  }
}

/// One-time warmup so the first timed row does not absorb corpus
/// generation and cold-cache effects.
void warmup() {
  set_exec_mode(ExecMode::Lock);
  pipez::Config cfg;
  cfg.worker_threads = 2;
  cfg.block_size = 100000;
  auto out = pipez::compress(corpus(), cfg);
  benchmark::DoNotOptimize(out.data());
}

const int dummy = (register_all(), warmup(), 0);

}  // namespace

BENCHMARK_MAIN();
