// Ablation A7 — adaptive controller vs. static configurations.
//
// The paper picks ONE execution mode per run and shows no single choice wins
// everywhere: HTM dominates small critical sections but collapses on
// capacity overflow (13–18% serial fallback on PBZip2), STM absorbs large
// footprints but pays per-access instrumentation, and the plain lock never
// speculates at all. This shoot-out runs one PHASED workload — the dominant
// failure mode shifts mid-run — under each static configuration and under
// the adaptive controller (src/tm/control/), which starts in HTM and is
// expected to ride each phase on the right mode:
//
//   hot_small  small read-modify-write txns; HTM territory.
//   capacity   every txn writes far past the (shrunk) HTM write-set model;
//              static HTM serializes every txn, STM commits speculatively,
//              the controller trips Degraded on the capacity-dominated storm
//              and performs the drained HTM->STM global switch.
//   spurious   hot_small body again, but htm_spurious_abort_rate makes a
//              large fraction of hardware attempts die for environmental
//              reasons; STM (and the controller, once switched) is immune.
//   recovery   hot_small again, clean: the controller probes its way out of
//              Degraded and restores HTM for the tail.
//
// The adaptive cell drives the controller exactly like production: metrics
// windows tick periodically and feed ctl::on_window(); per-attempt routing
// happens through ctl::apply() inside atomic_do.
//
// Emits BENCH_adapt.json (schema "tle-adapt/v1", ingested by
// scripts/summarize_bench.py):
//
//   {
//     "schema": "tle-adapt/v1",
//     "secs_per_phase": <double>, "threads": <int>,
//     "cells": [
//       { "config": "static-htm|static-stm|static-lock|adaptive",
//         "phases": [
//           { "phase": "hot_small|capacity|spurious|recovery",
//             "txns": <uint>, "ops_per_sec": <double>,
//             "abort_pct": <double>, "serial_pct": <double>,
//             "capacity_aborts": <uint>, "spurious_aborts": <uint> }, ... ],
//         "total_txns": <uint>, "total_ops_per_sec": <double>,
//         "ctl": { "evals": <uint>, "plan_changes": <uint>,
//                  "degraded_enters": <uint>, "degraded_exits": <uint>,
//                  "mode_switches": <uint>, "flaps": <uint>,
//                  "forced_serial": <uint>, "final_mode": <string> } }, ... ],
//     "acceptance": {
//       "adaptive_ops_per_sec": <double>,
//       "best_static": <string>,  "best_static_ops_per_sec": <double>,
//       "worst_static": <string>, "worst_static_ops_per_sec": <double>,
//       "vs_best": <double>,      // >= 1.0 expected (full run)
//       "vs_worst": <double> }    // >= 1.5 expected (full run)
//   }
//
// `--smoke` runs every cell for a few milliseconds per phase and asserts
// SHAPE and CONSERVATION only (every phase made progress, logical txns ==
// commits + serial + lock sections, the controller actually evaluated and
// switched); it is wired into the tier-1 ctest suite. The >= 1.0x-best /
// >= 1.5x-worst throughput ratios are only enforced by the full run on real
// multicore, per the abl_htm_retry / abl_commit_scale precedent.
#include <atomic>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_support.hpp"
#include "tm/control/control.hpp"
#include "tm/governor/governor.hpp"
#include "tm/obs/metrics.hpp"
#include "tm/obs/site.hpp"
#include "util/barrier.hpp"
#include "util/env.hpp"
#include "util/timing.hpp"

namespace {

using namespace tle;
using namespace tle::bench;

std::atomic<std::uint64_t> g_check_failures{0};

void check(bool ok, const char* what) {
  if (!ok) {
    g_check_failures.fetch_add(1, std::memory_order_relaxed);
    std::fprintf(stderr, "abl_adapt: CHECK FAILED: %s\n", what);
  }
}

// ---------------------------------------------------------------------------
// Phased workload
// ---------------------------------------------------------------------------

enum class Phase { HotSmall, Capacity, Spurious, Recovery };

const char* phase_name(Phase p) {
  switch (p) {
    case Phase::HotSmall: return "hot_small";
    case Phase::Capacity: return "capacity";
    case Phase::Spurious: return "spurious";
    case Phase::Recovery: return "recovery";
  }
  return "?";
}

constexpr Phase kPhases[] = {Phase::HotSmall, Phase::Capacity,
                             Phase::Spurious, Phase::Recovery};

// The capacity phase writes this many consecutive cache lines per txn.
// run_cell() shrinks the simulated HTM write-set model (4 sets x 2 ways = 8
// lines) so these writes overflow it decisively while hot_small's single
// line never does.
constexpr int kBigLines = 64;
constexpr int kVarsPerLine = 8;  // 8-byte tm_var<long> cells per 64 B line

/// ~`iters` of abort-proof private work (xorshift64 chain).
inline std::uint64_t private_spin(std::uint64_t x, int iters) {
  for (int i = 0; i < iters; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
  }
  return x;
}

enum class Config { StaticHtm, StaticStm, StaticLock, Adaptive };

const char* config_name(Config c) {
  switch (c) {
    case Config::StaticHtm: return "static-htm";
    case Config::StaticStm: return "static-stm";
    case Config::StaticLock: return "static-lock";
    case Config::Adaptive: return "adaptive";
  }
  return "?";
}

struct PhaseResult {
  Phase phase = Phase::HotSmall;
  double secs = 0;
  std::uint64_t ops = 0;
  // Per-phase deltas of the interesting lifetime counters.
  std::uint64_t commits = 0, serial_commits = 0, lock_sections = 0;
  std::uint64_t aborts = 0, capacity_aborts = 0, spurious_aborts = 0;

  double ops_per_sec() const {
    return secs > 0 ? static_cast<double>(ops) / secs : 0;
  }
  std::uint64_t logical() const {
    return commits + serial_commits + lock_sections;
  }
  double abort_pct() const {
    const std::uint64_t att = commits + aborts;
    return att ? 100.0 * static_cast<double>(aborts) /
                     static_cast<double>(att)
               : 0.0;
  }
  double serial_pct() const {
    const std::uint64_t l = logical();
    return l ? 100.0 * static_cast<double>(serial_commits) /
                   static_cast<double>(l)
             : 0.0;
  }
};

struct CellResult {
  Config cfg = Config::StaticHtm;
  std::vector<PhaseResult> phases;
  StatsSnapshot stats;   // lifetime totals at cell end
  ctl::Status ctl;       // zeroed for static cells
  std::string final_mode;

  std::uint64_t total_ops() const {
    std::uint64_t n = 0;
    for (const PhaseResult& p : phases) n += p.ops;
    return n;
  }
  double total_secs() const {
    double s = 0;
    for (const PhaseResult& p : phases) s += p.secs;
    return s;
  }
  double total_ops_per_sec() const {
    const double s = total_secs();
    return s > 0 ? static_cast<double>(total_ops()) / s : 0;
  }
};

PhaseResult run_phase(Phase phase, int threads, double secs,
                      bool adaptive) {
  // Phase-scoped knobs. Spurious aborts only bite speculating HTM; the
  // other modes (and the controller after its switch) shrug them off.
  config().htm_spurious_abort_rate =
      phase == Phase::Spurious ? 0.6 : 0.0;

  const StatsSnapshot before = aggregate_stats();

  static tm_var<long> hot(0);
  static std::vector<tm_var<long>> big(kBigLines * kVarsPerLine);

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> ops{0};
  SpinBarrier gate(static_cast<std::size_t>(threads) + 1);
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      gate.arrive_and_wait();
      std::uint64_t local = 0;
      std::uint64_t x = 0x9E3779B97F4A7C15ULL + static_cast<std::uint64_t>(t);
      while (!stop.load(std::memory_order_relaxed)) {
        if (phase == Phase::Capacity) {
          atomic_do(TLE_TX_SITE("adapt/big"), [&](TxContext& tx) {
            // One write per cache line, far past the shrunk HTM model.
            for (int i = 0; i < kBigLines; ++i)
              tx.write(big[static_cast<std::size_t>(i) * kVarsPerLine],
                       static_cast<long>(local + static_cast<std::uint64_t>(i)));
          });
        } else {
          atomic_do(TLE_TX_SITE("adapt/hot"), [&](TxContext& tx) {
            x = private_spin(x, 64);
            tx.fetch_add(hot, 1L);
          });
        }
        ++local;
      }
      benchmark::DoNotOptimize(x);
      ops.fetch_add(local);
    });
  }

  Stopwatch sw;
  gate.arrive_and_wait();
  if (adaptive) {
    // Production shape: windows close periodically and feed the controller
    // while the workload runs. Short windows keep the control loop's
    // reaction time well inside even a smoke-sized phase.
    while (sw.seconds() < secs) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      ctl::on_window(obs::metrics_tick());
    }
  } else {
    while (sw.seconds() < secs) std::this_thread::yield();
  }
  stop.store(true);
  const double measured = sw.seconds();
  for (auto& w : workers) w.join();
  if (adaptive) ctl::on_window(obs::metrics_tick());  // settle the tail

  const StatsSnapshot after = aggregate_stats();
  PhaseResult r;
  r.phase = phase;
  r.secs = measured;
  r.ops = ops.load();
  r.commits = after.commits - before.commits;
  r.serial_commits = after.serial_commits - before.serial_commits;
  r.lock_sections = after.lock_sections - before.lock_sections;
  for (int c = 0; c < kAbortCauseCount; ++c)
    r.aborts += after.aborts[c] - before.aborts[c];
  r.capacity_aborts =
      after.aborts[static_cast<int>(AbortCause::Capacity)] -
      before.aborts[static_cast<int>(AbortCause::Capacity)];
  r.spurious_aborts =
      after.aborts[static_cast<int>(AbortCause::Spurious)] -
      before.aborts[static_cast<int>(AbortCause::Spurious)];

  check(r.ops > 0, "phase made progress");
  // Conservation: every completed op committed exactly once, somewhere.
  // The controller's drained mode switches each run one synchronized
  // section of their own, which also lands in serial_commits.
  const std::uint64_t switches =
      after.ctl_mode_switches - before.ctl_mode_switches;
  check(r.logical() == r.ops + switches,
        "ops == commits + serial + lock sections");
  config().htm_spurious_abort_rate = 0.0;
  return r;
}

CellResult run_cell(Config cfg, int threads, double secs) {
  // Shrunk HTM write-set model: capacity-phase txns must overflow it.
  config().htm_write_sets = 4;
  config().htm_write_ways = 2;
  config().controller = cfg == Config::Adaptive;
  set_exec_mode(cfg == Config::StaticStm    ? ExecMode::StmCondVar
                : cfg == Config::StaticLock ? ExecMode::Lock
                                            : ExecMode::Htm);
  reset_stats();
  gov::reset();
  ctl::reset();
  if (cfg == Config::Adaptive) {
    // Bench-sized control knobs: evaluate every window, settle fast.
    config().ctl_period_windows = 1;
    config().ctl_min_samples = 32;
    config().ctl_confidence = 2;
    config().ctl_hold_windows = 2;
    config().ctl_trip_windows = 2;
    config().ctl_probe_shift = 3;
    config().ctl_mode_switch = true;
    obs::metrics_enable(true);
    obs::profile_enable(true);
    obs::metrics_reset();
  }

  CellResult r;
  r.cfg = cfg;
  for (Phase p : kPhases)
    r.phases.push_back(run_phase(p, threads, secs, cfg == Config::Adaptive));
  r.stats = aggregate_stats();
  if (cfg == Config::Adaptive) {
    r.ctl = ctl::status();
    check(r.ctl.evals > 0, "adaptive cell evaluated windows");
    obs::profile_enable(false);
    obs::metrics_enable(false);
  }
  r.final_mode = to_string(live_mode());

  config().controller = false;
  ctl::reset();
  gov::reset();
  config().htm_write_sets = 64;
  config().htm_write_ways = 8;
  set_exec_mode(ExecMode::Lock);
  return r;
}

// ---------------------------------------------------------------------------
// Output
// ---------------------------------------------------------------------------

void emit_json(const char* path, const std::vector<CellResult>& cells,
               double secs, int threads) {
  const CellResult* adaptive = nullptr;
  const CellResult* best = nullptr;
  const CellResult* worst = nullptr;
  for (const CellResult& c : cells) {
    if (c.cfg == Config::Adaptive) {
      adaptive = &c;
      continue;
    }
    if (!best || c.total_ops_per_sec() > best->total_ops_per_sec()) best = &c;
    if (!worst || c.total_ops_per_sec() < worst->total_ops_per_sec())
      worst = &c;
  }

  JsonWriter j;
  j.begin_obj();
  j.kv("schema", "tle-adapt/v1");
  j.kv("secs_per_phase", secs);
  j.kv("threads", static_cast<std::uint64_t>(threads));
  j.key("cells");
  j.begin_arr();
  for (const CellResult& c : cells) {
    j.begin_obj();
    j.kv("config", config_name(c.cfg));
    j.key("phases");
    j.begin_arr();
    for (const PhaseResult& p : c.phases) {
      j.begin_obj();
      j.kv("phase", phase_name(p.phase));
      j.kv("txns", p.ops);
      j.kv("ops_per_sec", p.ops_per_sec());
      j.kv("abort_pct", p.abort_pct());
      j.kv("serial_pct", p.serial_pct());
      j.kv("capacity_aborts", p.capacity_aborts);
      j.kv("spurious_aborts", p.spurious_aborts);
      j.end_obj();
    }
    j.end_arr();
    j.kv("total_txns", c.total_ops());
    j.kv("total_ops_per_sec", c.total_ops_per_sec());
    j.key("ctl");
    j.begin_obj();
    j.kv("evals", c.ctl.evals);
    j.kv("plan_changes", c.ctl.plan_changes);
    j.kv("degraded_enters", c.ctl.degraded_enters);
    j.kv("degraded_exits", c.ctl.degraded_exits);
    j.kv("mode_switches", c.ctl.mode_switches);
    j.kv("flaps", c.ctl.flaps);
    j.kv("forced_serial", c.stats.ctl_forced_serial);
    j.kv("final_mode", c.final_mode.c_str());
    j.end_obj();
    j.end_obj();
  }
  j.end_arr();

  j.key("acceptance");
  j.begin_obj();
  if (adaptive && best && worst) {
    const double a = adaptive->total_ops_per_sec();
    j.kv("adaptive_ops_per_sec", a);
    j.kv("best_static", config_name(best->cfg));
    j.kv("best_static_ops_per_sec", best->total_ops_per_sec());
    j.kv("worst_static", config_name(worst->cfg));
    j.kv("worst_static_ops_per_sec", worst->total_ops_per_sec());
    j.kv("vs_best",
         best->total_ops_per_sec() > 0 ? a / best->total_ops_per_sec() : 0.0);
    j.kv("vs_worst", worst->total_ops_per_sec() > 0
                         ? a / worst->total_ops_per_sec()
                         : 0.0);
  }
  j.end_obj();
  j.end_obj();

  if (!j.write_file(path)) {
    std::fprintf(stderr, "abl_adapt: cannot write %s\n", path);
    g_check_failures.fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  const char* out = "BENCH_adapt.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0)
      smoke = true;
    else
      out = argv[i];
  }
  const double secs = env_double("ABL_ADAPT_SECS", smoke ? 0.05 : 1.0);
  const int threads = static_cast<int>(
      env_long("ABL_ADAPT_THREADS", smoke ? 2 : 8));

  std::vector<CellResult> cells;
  for (Config cfg : {Config::StaticHtm, Config::StaticStm, Config::StaticLock,
                     Config::Adaptive})
    cells.push_back(run_cell(cfg, threads, secs));

  std::printf("%-12s %12s %12s | per-phase ops/s:", "config", "total/s",
              "final-mode");
  for (Phase p : kPhases) std::printf(" %10s", phase_name(p));
  std::printf("\n");
  for (const CellResult& c : cells) {
    std::printf("%-12s %12.0f %12s |", config_name(c.cfg),
                c.total_ops_per_sec(), c.final_mode.c_str());
    for (const PhaseResult& p : c.phases)
      std::printf(" %10.0f", p.ops_per_sec());
    std::printf("\n");
  }
  const CellResult& a = cells.back();
  std::printf("controller: evals=%llu plan_changes=%llu degraded=%llu/%llu "
              "mode_switches=%llu flaps=%llu forced_serial=%llu\n",
              static_cast<unsigned long long>(a.ctl.evals),
              static_cast<unsigned long long>(a.ctl.plan_changes),
              static_cast<unsigned long long>(a.ctl.degraded_enters),
              static_cast<unsigned long long>(a.ctl.degraded_exits),
              static_cast<unsigned long long>(a.ctl.mode_switches),
              static_cast<unsigned long long>(a.ctl.flaps),
              static_cast<unsigned long long>(a.stats.ctl_forced_serial));

  emit_json(out, cells, secs, threads);
  std::printf("wrote %s\n", out);

  if (!smoke) {
    // Full-run acceptance (real multicore): the controller must match the
    // best single static choice and beat the worst decisively.
    const CellResult* best = nullptr;
    const CellResult* worst = nullptr;
    for (const CellResult& c : cells) {
      if (c.cfg == Config::Adaptive) continue;
      if (!best || c.total_ops_per_sec() > best->total_ops_per_sec())
        best = &c;
      if (!worst || c.total_ops_per_sec() < worst->total_ops_per_sec())
        worst = &c;
    }
    const double vs_best = best && best->total_ops_per_sec() > 0
                               ? a.total_ops_per_sec() /
                                     best->total_ops_per_sec()
                               : 0.0;
    const double vs_worst = worst && worst->total_ops_per_sec() > 0
                                ? a.total_ops_per_sec() /
                                      worst->total_ops_per_sec()
                                : 0.0;
    std::printf("acceptance: adaptive vs best static (%s) %.2fx "
                "(need >= 1.0), vs worst static (%s) %.2fx (need >= 1.5)\n",
                best ? config_name(best->cfg) : "?", vs_best,
                worst ? config_name(worst->cfg) : "?", vs_worst);
    check(vs_best >= 1.0, "adaptive >= 1.0x best static configuration");
    check(vs_worst >= 1.5, "adaptive >= 1.5x worst static configuration");
    check(a.ctl.mode_switches >= 1, "capacity phase forced a mode switch");
    check(a.ctl.degraded_exits >= 1, "controller recovered from degraded");
  }

  const auto failures = g_check_failures.load();
  if (failures) {
    std::fprintf(stderr, "abl_adapt: %llu check failure(s)\n",
                 static_cast<unsigned long long>(failures));
    return 1;
  }
  return 0;
}
