// Heavier stress for the synchronization layer: many waiters and notifiers
// across several condvars, queue churn with frequent full/empty boundary
// crossings, the new fetch_add helper, and quiescence wait-time accounting.
#include <gtest/gtest.h>

#include <atomic>

#include "sync/bounded_queue.hpp"
#include "sync/tx_condvar.hpp"
#include "test_support.hpp"
#include "util/rng.hpp"

namespace tle {
namespace {

using testing::kAllModes;
using testing::ModeGuard;
using testing::run_threads;

class StressModes : public ::testing::TestWithParam<ExecMode> {};

INSTANTIATE_TEST_SUITE_P(SyncStress, StressModes, ::testing::ValuesIn(kAllModes),
                         [](const auto& info) {
                           std::string s = to_string(info.param);
                           for (auto& c : s)
                             if (!isalnum(static_cast<unsigned char>(c))) c = '_';
                           return s;
                         });

TEST_P(StressModes, TokenRingAcrossCondvars) {
  // A token circulates through N stations, each with its own condvar —
  // every hop is a wait/notify pair. Total hops must be exact.
  ModeGuard g(GetParam());
  constexpr int kStations = 4;
  constexpr int kRounds = 200;
  elidable_mutex m;
  tx_condvar cvs[kStations];
  tm_var<int> station(0);
  tm_var<int> hops(0);

  run_threads(kStations, [&](int id) {
    for (;;) {
      bool done = false, mine = false;
      critical(m, [&](TxContext& tx) {
        const int total = tx.read(hops);
        if (total >= kStations * kRounds) {
          done = true;
          // Wake everyone so all stations can observe completion.
          for (auto& cv : cvs) cv.notify_all(tx);
          return;
        }
        if (tx.read(station) == id) {
          tx.write(station, (id + 1) % kStations);
          tx.fetch_add(hops, 1);
          cvs[(id + 1) % kStations].notify_one(tx);
          mine = true;
        } else {
          cvs[id].wait_for(tx, std::chrono::milliseconds(2));
        }
      });
      if (done) break;
      (void)mine;
    }
  });
  EXPECT_EQ(hops.unsafe_get(), kStations * kRounds);
}

TEST_P(StressModes, TinyQueueConstantBoundaryCrossings) {
  // Capacity-2 queue: producers and consumers hit full/empty constantly,
  // maximizing wait/notify traffic.
  ModeGuard g(GetParam());
  bounded_queue<long> q(2);
  constexpr long kItems = 2000;
  std::atomic<long> sum{0};
  run_threads(4, [&](int t) {
    if (t < 2) {
      for (long i = t; i < kItems; i += 2) ASSERT_TRUE(q.push(i + 1));
      return;
    }
    for (;;) {
      auto v = q.pop();
      if (!v.has_value()) break;
      if (sum.fetch_add(*v) + *v == kItems * (kItems + 1) / 2) q.close();
    }
  });
  EXPECT_EQ(sum.load(), kItems * (kItems + 1) / 2);
}

TEST_P(StressModes, FetchAddIsAtomicSugar) {
  ModeGuard g(GetParam());
  tm_var<long> counter(100);
  std::atomic<long> observed_olds{0};
  run_threads(4, [&](int) {
    for (int i = 0; i < 500; ++i) {
      long old = 0;
      atomic_do([&](TxContext& tx) { old = tx.fetch_add(counter, 2L); });
      observed_olds.fetch_add(old >= 100 ? 1 : 0);
    }
  });
  EXPECT_EQ(counter.unsafe_get(), 100 + 4 * 500 * 2);
  EXPECT_EQ(observed_olds.load(), 2000) << "old values must never undershoot";
}

TEST(QuiesceAccounting, BlockedTimeIsRecorded) {
  ModeGuard g(ExecMode::StmCondVar);  // Always quiesce
  reset_stats();
  tm_var<long> v(0);
  std::atomic<bool> peer_open{false}, release{false};
  std::thread peer([&] {
    atomic_do([&](TxContext& tx) {
      (void)tx.read(v);
      peer_open.store(true);
      while (!release.load(std::memory_order_relaxed))
        std::this_thread::yield();
    });
  });
  while (!peer_open.load()) std::this_thread::yield();

  std::thread committer([&] {
    // This commit must quiesce and block on the open peer.
    atomic_do([&](TxContext& tx) { tx.write(v, 1L); });
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  release.store(true);
  peer.join();
  committer.join();
  const auto s = aggregate_stats();
  EXPECT_GE(s.quiesce_waits, 1u);
  EXPECT_GE(s.quiesce_wait_ns, 10u * 1000 * 1000)
      << "~30ms of blocking must be visible in the counter";
}

TEST(CondVarChurn, ManyCondvarsManyThreads) {
  ModeGuard g(ExecMode::StmCondVarNoQ);
  constexpr int kCvs = 8;
  elidable_mutex m;
  tx_condvar cvs[kCvs];
  tm_var<int> turn(0);
  std::atomic<int> completed{0};
  run_threads(6, [&](int t) {
    Xoshiro256 rng(300 + static_cast<unsigned>(t));
    for (int i = 0; i < 300; ++i) {
      const int cv = static_cast<int>(rng.below(kCvs));
      critical(m, [&](TxContext& tx) {
        tx.fetch_add(turn, 1);
        if (rng.chance(0.3))
          cvs[cv].notify_all(tx);
        else if (rng.chance(0.2))
          cvs[cv].wait_for(tx, std::chrono::microseconds(200));
        else
          cvs[cv].notify_one(tx);
        tx.no_quiesce();
      });
    }
    completed.fetch_add(1);
  });
  EXPECT_EQ(completed.load(), 6);
  EXPECT_EQ(turn.unsafe_get(), 6 * 300);
}

}  // namespace
}  // namespace tle
