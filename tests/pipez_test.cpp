// Integration tests for the pipez pipeline: round-trips across every
// execution mode × thread count × block size, ordering, corruption handling,
// deferred logging, and the paper's in-text transaction-count expectations.
#include <gtest/gtest.h>

#include <algorithm>

#include "pipez/pipeline.hpp"
#include "test_support.hpp"

namespace tle::pipez {
namespace {

using tle::testing::kAllModes;
using tle::testing::ModeGuard;

struct Case {
  ExecMode mode;
  int threads;
  std::size_t block;
};

class PipezMatrix : public ::testing::TestWithParam<Case> {};

std::vector<Case> matrix() {
  std::vector<Case> cases;
  for (ExecMode m : kAllModes)
    for (int t : {1, 4})
      for (std::size_t b : {16384u, 100000u})
        cases.push_back({m, t, b});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Pipez, PipezMatrix, ::testing::ValuesIn(matrix()),
    [](const ::testing::TestParamInfo<Case>& info) {
      std::string s = to_string(info.param.mode);
      for (auto& c : s)
        if (!isalnum(static_cast<unsigned char>(c))) c = '_';
      return s + "_t" + std::to_string(info.param.threads) + "_b" +
             std::to_string(info.param.block);
    });

TEST_P(PipezMatrix, RoundTrip) {
  const Case c = GetParam();
  ModeGuard g(c.mode);
  const auto input = make_corpus(400000, 42);
  Config cfg;
  cfg.worker_threads = c.threads;
  cfg.block_size = c.block;
  RunStats cs{}, ds{};
  const auto compressed = compress(input, cfg, &cs);
  EXPECT_LT(compressed.size(), input.size()) << "corpus must compress";
  EXPECT_EQ(cs.blocks, (input.size() + c.block - 1) / c.block);
  const auto back = decompress(compressed, cfg, &ds);
  ASSERT_TRUE(back.ok) << back.error;
  EXPECT_EQ(back.data, input);
}

TEST(Pipez, EmptyInput) {
  ModeGuard g(ExecMode::StmCondVar);
  Config cfg;
  cfg.worker_threads = 2;
  const auto compressed = compress({}, cfg);
  const auto back = decompress(compressed, cfg);
  ASSERT_TRUE(back.ok) << back.error;
  EXPECT_TRUE(back.data.empty());
}

TEST(Pipez, SingleBlockSmallerThanBlockSize) {
  ModeGuard g(ExecMode::Htm);
  Config cfg;
  cfg.worker_threads = 2;
  cfg.block_size = 1 << 20;
  const auto input = make_corpus(1000, 1);
  const auto back = decompress(compress(input, cfg), cfg);
  ASSERT_TRUE(back.ok) << back.error;
  EXPECT_EQ(back.data, input);
}

TEST(Pipez, MoreThreadsThanBlocks) {
  ModeGuard g(ExecMode::StmCondVarNoQ);
  Config cfg;
  cfg.worker_threads = 8;
  cfg.block_size = 64 * 1024;
  const auto input = make_corpus(100000, 2);  // 2 blocks, 8 workers
  const auto back = decompress(compress(input, cfg), cfg);
  ASSERT_TRUE(back.ok) << back.error;
  EXPECT_EQ(back.data, input);
}

TEST(Pipez, CorruptStreamIsRejectedNotCrashed) {
  ModeGuard g(ExecMode::Lock);
  Config cfg;
  cfg.worker_threads = 2;
  cfg.block_size = 32768;
  const auto input = make_corpus(200000, 3);
  auto compressed = compress(input, cfg);
  // Flip a byte inside a block payload (past the 16-byte stream header and
  // 4-byte frame length).
  compressed[compressed.size() / 2] ^= 0x40;
  const auto back = decompress(compressed, cfg);
  EXPECT_FALSE(back.ok);
  EXPECT_FALSE(back.error.empty());
}

TEST(Pipez, TruncatedStreamIsRejected) {
  ModeGuard g(ExecMode::Lock);
  Config cfg;
  cfg.worker_threads = 2;
  const auto input = make_corpus(50000, 4);
  auto compressed = compress(input, cfg);
  compressed.resize(compressed.size() / 3);
  EXPECT_FALSE(decompress(compressed, cfg).ok);
  compressed.resize(7);
  EXPECT_FALSE(decompress(compressed, cfg).ok);
}

TEST(Pipez, OutputIsDeterministicAcrossModesAndThreads) {
  // The compressed stream must be bit-identical regardless of execution
  // mode or parallelism (ordered reassembly).
  const auto input = make_corpus(300000, 5);
  Config cfg;
  cfg.block_size = 50000;
  cfg.worker_threads = 1;
  ModeGuard base(ExecMode::Lock);
  const auto reference = compress(input, cfg);
  for (ExecMode m : kAllModes) {
    ModeGuard g(m);
    for (int threads : {1, 4}) {
      Config c2 = cfg;
      c2.worker_threads = threads;
      EXPECT_EQ(compress(input, c2), reference)
          << to_string(m) << " threads=" << threads;
    }
  }
}

TEST(Pipez, DeferredLoggingCapturesEveryBlock) {
  ModeGuard g(ExecMode::StmCondVar);
  Config cfg;
  cfg.worker_threads = 2;
  cfg.block_size = 25000;
  cfg.verbose_log = true;
  const auto input = make_corpus(200000, 6);
  drain_log();  // clear residue
  (void)compress(input, cfg);
  const auto log = drain_log();
  EXPECT_EQ(log.size(), 8u) << "one deferred line per produced block";
  for (const auto& line : log)
    EXPECT_NE(line.find("produce block="), std::string::npos) << line;
}

TEST(Pipez, TransactionCountsMatchPipelineShape) {
  // Paper §VII-A: PBZip2's critical sections guard queue metadata only, so
  // the transaction count scales with blocks, and STM abort rates are tiny.
  ModeGuard g(ExecMode::StmCondVar);
  Config cfg;
  cfg.worker_threads = 4;
  cfg.block_size = 20000;
  const auto input = make_corpus(400000, 7);  // 20 blocks
  reset_stats();
  (void)compress(input, cfg);
  const auto s = aggregate_stats();
  // Each block passes: producer push + consumer pop + deliver + writer await
  // = >= 4 sections; waits add more. Conflicts should be rare.
  EXPECT_GE(s.commits + s.serial_commits, 4 * 20u);
  EXPECT_LT(s.abort_rate(), 0.5) << "queue transactions mostly succeed";
}

TEST(Pipez, CorpusIsDeterministicAndCompressible) {
  const auto a = make_corpus(100000, 9);
  const auto b = make_corpus(100000, 9);
  EXPECT_EQ(a, b);
  const auto c = make_corpus(100000, 10);
  EXPECT_NE(a, c);
}

}  // namespace
}  // namespace tle::pipez
