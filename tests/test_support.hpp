// Shared helpers for the test suites.
#pragma once

#include <functional>
#include <thread>
#include <vector>

#include "tm/tm.hpp"

namespace tle::testing {

/// RAII mode switch: sets the paper-style ExecMode and restores the previous
/// configuration on scope exit. Must not be used while transactions run.
class ModeGuard {
 public:
  explicit ModeGuard(ExecMode m) : saved_(config()) { set_exec_mode(m); }
  ModeGuard(ExecMode m, QuiescePolicy q, bool honor_noq) : saved_(config()) {
    set_exec_mode(m);
    config().quiesce = q;
    config().honor_noquiesce = honor_noq;
  }
  ~ModeGuard() { config() = saved_; }

  ModeGuard(const ModeGuard&) = delete;
  ModeGuard& operator=(const ModeGuard&) = delete;

 private:
  RuntimeConfig saved_;
};

/// Run `fn(thread_index)` on `n` threads and join them all.
inline void run_threads(int n, const std::function<void(int)>& fn) {
  std::vector<std::thread> ts;
  ts.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) ts.emplace_back(fn, i);
  for (auto& t : ts) t.join();
}

/// Every execution mode the paper evaluates.
inline const ExecMode kAllModes[] = {
    ExecMode::Lock, ExecMode::StmSpin, ExecMode::StmCondVar,
    ExecMode::StmCondVarNoQ, ExecMode::Htm};

/// The speculative (elided) modes only.
inline const ExecMode kElisionModes[] = {
    ExecMode::StmSpin, ExecMode::StmCondVar, ExecMode::StmCondVarNoQ,
    ExecMode::Htm};

}  // namespace tle::testing
