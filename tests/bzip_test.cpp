// Tests for the from-scratch bzip2-style codec: each pipeline stage has unit
// tests plus known vectors, and the whole block codec has round-trip property
// tests and corruption detection tests.
#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "bzip/bitio.hpp"
#include "bzip/block_codec.hpp"
#include "bzip/bwt.hpp"
#include "bzip/crc32.hpp"
#include "bzip/huffman.hpp"
#include "bzip/mtf_rle.hpp"
#include "util/rng.hpp"

namespace tle::bzip {
namespace {

std::vector<std::uint8_t> bytes(const std::string& s) {
  return {s.begin(), s.end()};
}

std::string str(const std::vector<std::uint8_t>& v) {
  return {v.begin(), v.end()};
}

// ---------------------------------------------------------------------------
// Bit I/O
// ---------------------------------------------------------------------------

TEST(BitIo, RoundTripMixedWidths) {
  BitWriter w;
  w.put(0b101, 3);
  w.put(0xDEAD, 16);
  w.put(1, 1);
  w.put(0x3FFFFFFFF, 34);
  auto buf = w.finish();
  BitReader r(buf.data(), buf.size());
  std::uint64_t v;
  ASSERT_TRUE(r.get(3, &v));
  EXPECT_EQ(v, 0b101u);
  ASSERT_TRUE(r.get(16, &v));
  EXPECT_EQ(v, 0xDEADu);
  ASSERT_TRUE(r.get(1, &v));
  EXPECT_EQ(v, 1u);
  ASSERT_TRUE(r.get(34, &v));
  EXPECT_EQ(v, 0x3FFFFFFFFull);
}

TEST(BitIo, ReaderDetectsUnderrun) {
  BitWriter w;
  w.put(0xF, 4);
  auto buf = w.finish();  // one byte
  BitReader r(buf.data(), buf.size());
  std::uint64_t v;
  EXPECT_TRUE(r.get(8, &v));  // padded byte is readable
  EXPECT_FALSE(r.get(8, &v));
}

TEST(BitIo, ManySingleBits) {
  BitWriter w;
  for (int i = 0; i < 1000; ++i) w.put(static_cast<std::uint64_t>(i % 2), 1);
  auto buf = w.finish();
  BitReader r(buf.data(), buf.size());
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(r.get_bit(), i % 2) << i;
}

// ---------------------------------------------------------------------------
// CRC32 known vectors
// ---------------------------------------------------------------------------

TEST(Crc32, KnownVectors) {
  const auto v = bytes("123456789");
  EXPECT_EQ(crc32(v.data(), v.size()), 0xCBF43926u);  // IEEE check value
  EXPECT_EQ(crc32(nullptr, 0), 0x00000000u);
  const auto a = bytes("a");
  EXPECT_EQ(crc32(a.data(), 1), 0xE8B7BE43u);
}

TEST(Crc32, DetectsSingleBitFlip) {
  auto v = bytes("the quick brown fox");
  const auto base = crc32(v.data(), v.size());
  v[3] ^= 1;
  EXPECT_NE(crc32(v.data(), v.size()), base);
}

// ---------------------------------------------------------------------------
// BWT
// ---------------------------------------------------------------------------

TEST(Bwt, BananaKnownVector) {
  const auto in = bytes("banana");
  const auto r = bwt_forward(in.data(), in.size());
  EXPECT_EQ(str(r.last_column), "nnbaaa");
  EXPECT_EQ(r.primary_index, 3u);
}

TEST(Bwt, InverseRecoversBanana) {
  const auto in = bytes("banana");
  const auto f = bwt_forward(in.data(), in.size());
  const auto back = bwt_inverse(f.last_column.data(), f.last_column.size(),
                                f.primary_index);
  EXPECT_EQ(str(back), "banana");
}

TEST(Bwt, EdgeCases) {
  // Empty.
  auto e = bwt_forward(nullptr, 0);
  EXPECT_TRUE(e.last_column.empty());
  EXPECT_TRUE(bwt_inverse(nullptr, 0, 0).empty());
  // Single byte.
  const std::uint8_t one = 'x';
  auto s = bwt_forward(&one, 1);
  ASSERT_EQ(s.last_column.size(), 1u);
  EXPECT_EQ(s.last_column[0], 'x');
  // All-equal (degenerate rotations).
  const auto all = bytes("aaaaaaaa");
  auto a = bwt_forward(all.data(), all.size());
  EXPECT_EQ(str(bwt_inverse(a.last_column.data(), 8, a.primary_index)),
            "aaaaaaaa");
  // Periodic.
  const auto per = bytes("abababab");
  auto p = bwt_forward(per.data(), per.size());
  EXPECT_EQ(str(bwt_inverse(p.last_column.data(), 8, p.primary_index)),
            "abababab");
}

TEST(Bwt, RandomRoundTripProperty) {
  Xoshiro256 rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 1 + rng.below(5000);
    std::vector<std::uint8_t> in(n);
    // Mix of random and structured content.
    const int alpha = trial % 2 ? 4 : 256;
    for (auto& b : in)
      b = static_cast<std::uint8_t>(rng.below(static_cast<std::uint64_t>(alpha)));
    const auto f = bwt_forward(in.data(), n);
    const auto back =
        bwt_inverse(f.last_column.data(), n, f.primary_index);
    ASSERT_EQ(back, in) << "trial " << trial;
  }
}

// ---------------------------------------------------------------------------
// RLE1
// ---------------------------------------------------------------------------

TEST(Rle1, ShortRunsPassThrough) {
  const auto in = bytes("aabbccdd");
  EXPECT_EQ(rle1_encode(in.data(), in.size()), in);
}

TEST(Rle1, LongRunCompresses) {
  std::vector<std::uint8_t> in(100, 'x');
  const auto enc = rle1_encode(in.data(), in.size());
  EXPECT_LT(enc.size(), in.size());
  EXPECT_EQ(rle1_decode(enc.data(), enc.size()), in);
}

TEST(Rle1, ExactRunBoundaries) {
  for (std::size_t run : {3u, 4u, 5u, 253u, 254u, 255u, 600u}) {
    std::vector<std::uint8_t> in(run, 'q');
    in.push_back('z');
    const auto enc = rle1_encode(in.data(), in.size());
    EXPECT_EQ(rle1_decode(enc.data(), enc.size()), in) << "run " << run;
  }
}

TEST(Rle1, CountByteEqualToRunByte) {
  // Run of 4 + 'a' extra repeats: the count byte equals the run byte in the
  // encoded stream — the decoder must not misparse it.
  std::vector<std::uint8_t> in(4 + 'a', 'a');
  const auto enc = rle1_encode(in.data(), in.size());
  EXPECT_EQ(rle1_decode(enc.data(), enc.size()), in);
}

TEST(Rle1, RandomRoundTrip) {
  Xoshiro256 rng(7);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<std::uint8_t> in;
    const std::size_t runs = rng.below(50);
    for (std::size_t i = 0; i < runs; ++i) {
      const auto b = static_cast<std::uint8_t>(rng.below(4));
      in.insert(in.end(), 1 + rng.below(600), b);
    }
    const auto enc = rle1_encode(in.data(), in.size());
    ASSERT_EQ(rle1_decode(enc.data(), enc.size()), in) << "trial " << trial;
  }
}

// ---------------------------------------------------------------------------
// MTF
// ---------------------------------------------------------------------------

TEST(Mtf, KnownBehaviour) {
  // First occurrence of byte b encodes as its current table index; repeats
  // of the same byte encode as 0.
  const auto in = bytes("aaabbb");
  const auto enc = mtf_encode(in.data(), in.size());
  EXPECT_EQ(enc[0], 'a');  // 'a' starts at index 97
  EXPECT_EQ(enc[1], 0);
  EXPECT_EQ(enc[2], 0);
  EXPECT_EQ(enc[3], 'b');  // 'b' is at 98 but 'a' moved ahead: index 98
  EXPECT_EQ(enc[4], 0);
  EXPECT_EQ(enc[5], 0);
}

TEST(Mtf, RoundTripAllBytes) {
  std::vector<std::uint8_t> in(512);
  for (std::size_t i = 0; i < in.size(); ++i)
    in[i] = static_cast<std::uint8_t>(i * 37);
  const auto enc = mtf_encode(in.data(), in.size());
  EXPECT_EQ(mtf_decode(enc.data(), enc.size()), in);
}

// ---------------------------------------------------------------------------
// ZRLE
// ---------------------------------------------------------------------------

TEST(Zrle, ZeroRunsEncodeCompactly) {
  std::vector<std::uint8_t> in(1000, 0);
  const auto sym = zrle_encode(in.data(), in.size());
  EXPECT_LE(sym.size(), 12u);  // ~log2(1000) digits + EOB
  std::vector<std::uint8_t> out;
  ASSERT_TRUE(zrle_decode(sym.data(), sym.size(), &out));
  EXPECT_EQ(out, in);
}

TEST(Zrle, AllRunLengthsRoundTrip) {
  for (std::size_t len = 0; len <= 70; ++len) {
    std::vector<std::uint8_t> in(len, 0);
    in.push_back(42);
    const auto sym = zrle_encode(in.data(), in.size());
    std::vector<std::uint8_t> out;
    ASSERT_TRUE(zrle_decode(sym.data(), sym.size(), &out)) << len;
    ASSERT_EQ(out, in) << len;
  }
}

TEST(Zrle, RejectsMissingEob) {
  const std::uint16_t syms[] = {kRunA, 5};
  std::vector<std::uint8_t> out;
  EXPECT_FALSE(zrle_decode(syms, 2, &out));
}

TEST(Zrle, RejectsTrailingGarbageAfterEob) {
  const std::uint16_t syms[] = {kEob, kRunA};
  std::vector<std::uint8_t> out;
  EXPECT_FALSE(zrle_decode(syms, 2, &out));
}

// ---------------------------------------------------------------------------
// Huffman
// ---------------------------------------------------------------------------

TEST(Huffman, SkewedFrequenciesGiveShortCodesToCommonSymbols) {
  std::vector<std::uint64_t> freqs(8, 0);
  freqs[0] = 1000;
  freqs[1] = 10;
  freqs[2] = 1;
  const auto lens = huffman_code_lengths(freqs);
  EXPECT_LE(lens[0], lens[1]);
  EXPECT_LE(lens[1], lens[2]);
  EXPECT_EQ(lens[5], 0) << "unused symbols get no code";
}

TEST(Huffman, SingleSymbolAlphabet) {
  std::vector<std::uint64_t> freqs(4, 0);
  freqs[2] = 5;
  const auto lens = huffman_code_lengths(freqs);
  EXPECT_EQ(lens[2], 1);
  HuffmanDecoder dec;
  ASSERT_TRUE(dec.init(lens));
  const auto codes = canonical_codes(lens);
  BitWriter w;
  for (int i = 0; i < 5; ++i) w.put(codes[2], lens[2]);
  auto buf = w.finish();
  BitReader r(buf.data(), buf.size());
  for (int i = 0; i < 5; ++i) EXPECT_EQ(dec.decode(r), 2);
}

TEST(Huffman, DepthLimitRespected) {
  // Fibonacci-like frequencies force deep trees; limiting must kick in.
  std::vector<std::uint64_t> freqs(40);
  std::uint64_t a = 1, b = 1;
  for (auto& f : freqs) {
    f = a;
    const auto t = a + b;
    a = b;
    b = t;
  }
  const auto lens = huffman_code_lengths(freqs);
  for (auto l : lens) EXPECT_LE(l, kMaxCodeLen);
}

TEST(Huffman, EncodeDecodeRandomStream) {
  Xoshiro256 rng(3);
  std::vector<std::uint64_t> freqs(kSymbolAlphabet, 0);
  std::vector<std::uint16_t> stream(5000);
  for (auto& s : stream) {
    // Zipf-flavoured distribution.
    const auto z = rng.below(100);
    s = static_cast<std::uint16_t>(z < 60 ? rng.below(4)
                                          : rng.below(kSymbolAlphabet));
    ++freqs[s];
  }
  const auto lens = huffman_code_lengths(freqs);
  const auto codes = canonical_codes(lens);
  BitWriter w;
  for (auto s : stream) w.put(codes[s], lens[s]);
  auto buf = w.finish();
  HuffmanDecoder dec;
  ASSERT_TRUE(dec.init(lens));
  BitReader r(buf.data(), buf.size());
  for (std::size_t i = 0; i < stream.size(); ++i)
    ASSERT_EQ(dec.decode(r), stream[i]) << "symbol " << i;
}

TEST(Huffman, DecoderRejectsOvercompleteCode) {
  std::vector<std::uint8_t> lens = {1, 1, 1};  // Kraft sum 1.5 > 1
  HuffmanDecoder dec;
  EXPECT_FALSE(dec.init(lens));
}

// ---------------------------------------------------------------------------
// Block codec end-to-end
// ---------------------------------------------------------------------------

std::vector<std::uint8_t> compressible_corpus(std::size_t n, std::uint64_t seed) {
  // Markov-ish text: long repeated phrases with occasional noise.
  static const char* words[] = {"the ",     "quick ", "brown ",  "fox ",
                                "jumps ",   "over ",  "lazy ",   "dog ",
                                "streams ", "block ", "cipher ", "memory "};
  Xoshiro256 rng(seed);
  std::vector<std::uint8_t> out;
  out.reserve(n);
  while (out.size() < n) {
    const char* w = words[rng.below(12)];
    out.insert(out.end(), w, w + std::strlen(w));
    if (rng.chance(0.02)) out.push_back(static_cast<std::uint8_t>(rng.below(256)));
  }
  out.resize(n);
  return out;
}

TEST(BlockCodec, RoundTripText) {
  const auto in = compressible_corpus(50000, 1);
  const auto comp = compress_block(in);
  EXPECT_LT(comp.size(), in.size() / 2) << "text must compress well";
  const auto dec = decompress_block(comp);
  ASSERT_TRUE(dec.ok) << dec.error;
  EXPECT_EQ(dec.data, in);
}

TEST(BlockCodec, RoundTripEmpty) {
  const auto comp = compress_block(nullptr, 0);
  const auto dec = decompress_block(comp);
  ASSERT_TRUE(dec.ok) << dec.error;
  EXPECT_TRUE(dec.data.empty());
}

TEST(BlockCodec, RoundTripIncompressibleRandom) {
  Xoshiro256 rng(2);
  std::vector<std::uint8_t> in(20000);
  for (auto& b : in) b = static_cast<std::uint8_t>(rng());
  const auto comp = compress_block(in);
  const auto dec = decompress_block(comp);
  ASSERT_TRUE(dec.ok) << dec.error;
  EXPECT_EQ(dec.data, in);
}

TEST(BlockCodec, RoundTripHighlyRepetitive) {
  std::vector<std::uint8_t> in(100000, 'A');
  for (std::size_t i = 0; i < in.size(); i += 1000) in[i] = 'B';
  const auto comp = compress_block(in);
  EXPECT_LT(comp.size(), 2000u);
  const auto dec = decompress_block(comp);
  ASSERT_TRUE(dec.ok) << dec.error;
  EXPECT_EQ(dec.data, in);
}

TEST(BlockCodec, RandomSizesProperty) {
  Xoshiro256 rng(77);
  for (int trial = 0; trial < 15; ++trial) {
    const std::size_t n = rng.below(9000);
    auto in = compressible_corpus(n, 100 + static_cast<std::uint64_t>(trial));
    const auto comp = compress_block(in);
    const auto dec = decompress_block(comp);
    ASSERT_TRUE(dec.ok) << "trial " << trial << ": " << dec.error;
    ASSERT_EQ(dec.data, in) << "trial " << trial;
  }
}

TEST(BlockCodec, DetectsCorruption) {
  const auto in = compressible_corpus(8000, 5);
  auto comp = compress_block(in);
  int detected = 0;
  Xoshiro256 rng(8);
  for (int trial = 0; trial < 40; ++trial) {
    auto bad = comp;
    bad[rng.below(bad.size())] ^=
        static_cast<std::uint8_t>(1 + rng.below(255));
    const auto dec = decompress_block(bad);
    if (!dec.ok)
      ++detected;
    else if (dec.data != in)
      ADD_FAILURE() << "silent corruption accepted at trial " << trial;
  }
  EXPECT_EQ(detected, 40) << "every single-byte corruption must be caught";
}

TEST(BlockCodec, DetectsTruncation) {
  const auto in = compressible_corpus(4000, 6);
  const auto comp = compress_block(in);
  for (std::size_t cut : {0u, 3u, 10u, 19u, 21u}) {
    const auto dec = decompress_block(comp.data(), std::min(cut, comp.size()));
    EXPECT_FALSE(dec.ok) << "cut " << cut;
  }
  const auto dec = decompress_block(comp.data(), comp.size() - 5);
  EXPECT_FALSE(dec.ok);
}

TEST(BlockCodec, RejectsGarbageInput) {
  std::vector<std::uint8_t> junk(100, 0xCD);
  EXPECT_FALSE(decompress_block(junk).ok);
  EXPECT_FALSE(decompress_block(nullptr, 0).ok);
}

}  // namespace
}  // namespace tle::bzip
