// Regression test for the site-registry overflow path. It deliberately
// fills the 128-entry registry past capacity, so it lives in its own binary:
// the registry is process-global and stays full for the life of the process.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "tm/obs/export.hpp"
#include "tm/obs/site.hpp"
#include "tm/stats.hpp"

namespace tle {
namespace {

// Registered names must outlive the process-global registry.
char g_names[obs::kMaxSites + 8][32];

TEST(SiteOverflow, RegistrationsPastCapacityFoldIntoIdZero) {
  ASSERT_EQ(obs::site_overflow_count(), 0u)
      << "this binary must start with a non-overflowed registry";
  const int before = obs::site_count();
  ASSERT_GE(before, 1);  // id 0 is always reserved

  // kMaxSites + 8 registrations guarantees > kMaxSites total even from an
  // empty registry (the issue's 129-site scenario and then some).
  int folded = 0;
  std::uint16_t last_named = 0;
  for (int i = 0; i < obs::kMaxSites + 8; ++i) {
    std::snprintf(g_names[i], sizeof g_names[i], "overflow/site_%03d", i);
    const obs::TxSite s(g_names[i], __FILE__, i + 1);
    if (s.id == 0)
      ++folded;
    else
      last_named = s.id;
  }

  // The registry clamps at capacity; every late arrival folded into id 0.
  EXPECT_EQ(obs::site_count(), obs::kMaxSites);
  const int expected_folded = before + obs::kMaxSites + 8 - obs::kMaxSites;
  EXPECT_EQ(folded, expected_folded);
  EXPECT_EQ(obs::site_overflow_count(),
            static_cast<std::uint64_t>(expected_folded));
  EXPECT_EQ(static_cast<int>(last_named), obs::kMaxSites - 1);
  EXPECT_STREQ(obs::site_info(0).name, "(unnamed)");

  // The ids that did register still resolve to their own names.
  const obs::SiteInfo in = obs::site_info(last_named);
  EXPECT_STREQ(in.name, g_names[obs::kMaxSites - 1 - before]);

  // One more registration keeps counting.
  const obs::TxSite extra("overflow/extra", __FILE__, __LINE__);
  EXPECT_EQ(extra.id, 0);
  EXPECT_EQ(obs::site_overflow_count(),
            static_cast<std::uint64_t>(expected_folded) + 1);
}

TEST(SiteOverflow, SurfacesInStatsSnapshotAndReport) {
  // Self-sufficient under per-case sharding (ctest runs each case in its
  // own process): overflow the registry here if the first test has not.
  if (obs::site_overflow_count() == 0) {
    static char names[obs::kMaxSites + 1][32];
    for (int i = 0; i <= obs::kMaxSites; ++i) {
      std::snprintf(names[i], sizeof names[i], "overflow2/site_%03d", i);
      const obs::TxSite s(names[i], __FILE__, i + 1);
      (void)s;
    }
  }
  const std::uint64_t ov = obs::site_overflow_count();
  ASSERT_GT(ov, 0u);

  const StatsSnapshot s = aggregate_stats();
  EXPECT_EQ(s.obs_site_overflow, ov);

  const std::string r = s.report();
  EXPECT_NE(r.find("WARNING"), std::string::npos);
  EXPECT_NE(r.find("overflowed"), std::string::npos);
  EXPECT_NE(r.find("(unnamed)"), std::string::npos);

  // Process-level by design: a stats reset must not erase the evidence.
  reset_stats();
  EXPECT_EQ(aggregate_stats().obs_site_overflow, ov);

  // The tle-obs/v1 dump names the counter too (schema completeness).
  const std::string json = obs::obs_json();
  EXPECT_NE(json.find("\"obs_site_overflow\""), std::string::npos);
}

}  // namespace
}  // namespace tle
