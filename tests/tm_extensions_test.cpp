// Tests for the runtime extensions beyond the paper's baseline:
//   * the gl_wt STM algorithm (GCC's global-lock method group),
//   * per-transaction retry attributes (the paper's §VII-A suggestion),
//   * the §IV-C privatization-race auditor.
#include <gtest/gtest.h>

#include <atomic>

#include "test_support.hpp"
#include "tm/audit.hpp"
#include "tm/tm_obj.hpp"
#include "tm/trace.hpp"

namespace tle {
namespace {

using testing::ModeGuard;
using testing::run_threads;

// ---------------------------------------------------------------------------
// gl_wt
// ---------------------------------------------------------------------------

class GlwtGuard : public ModeGuard {
 public:
  explicit GlwtGuard(ExecMode m) : ModeGuard(m) {
    config().stm_algo = StmAlgo::GlWt;
  }
};

TEST(GlWt, ReadWriteRoundTrip) {
  GlwtGuard g(ExecMode::StmCondVar);
  tm_var<int> v(1);
  atomic_do([&](TxContext& tx) {
    EXPECT_EQ(tx.read(v), 1);
    tx.write(v, 2);
    EXPECT_EQ(tx.read(v), 2);
  });
  EXPECT_EQ(v.unsafe_get(), 2);
}

TEST(GlWt, ConcurrentCounterIsExact) {
  GlwtGuard g(ExecMode::StmCondVar);
  tm_var<long> counter(0);
  run_threads(4, [&](int) {
    for (int i = 0; i < 2000; ++i)
      atomic_do([&](TxContext& tx) { tx.write(counter, tx.read(counter) + 1); });
  });
  EXPECT_EQ(counter.unsafe_get(), 8000);
}

TEST(GlWt, BankInvariantHolds) {
  GlwtGuard g(ExecMode::StmCondVarNoQ);
  constexpr int kAccounts = 8;
  static tm_var<long> accounts[kAccounts];
  for (auto& a : accounts) a.unsafe_set(100);
  run_threads(3, [&](int t) {
    Xoshiro256 rng(5 + static_cast<unsigned>(t));
    for (int i = 0; i < 2000; ++i) {
      const int from = static_cast<int>(rng.below(kAccounts));
      const int to = static_cast<int>(rng.below(kAccounts));
      atomic_do([&](TxContext& tx) {
        tx.write(accounts[from], tx.read(accounts[from]) - 1);
        tx.write(accounts[to], tx.read(accounts[to]) + 1);
      });
    }
  });
  long total = 0;
  for (auto& a : accounts) total += a.unsafe_get();
  EXPECT_EQ(total, 800);
}

TEST(GlWt, ReadersNeverSeeTornPair) {
  GlwtGuard g(ExecMode::StmCondVar);
  tm_var<long> x(0), y(0);
  std::atomic<bool> stop{false};
  std::atomic<long> bad{0};
  std::thread writer([&] {
    for (long i = 1; i <= 3000; ++i)
      atomic_do([&](TxContext& tx) {
        tx.write(x, i);
        tx.write(y, i);
      });
    stop.store(true);
  });
  run_threads(2, [&](int) {
    while (!stop.load()) {
      long a = 0, b = 0;
      atomic_do([&](TxContext& tx) {
        a = tx.read(x);
        b = tx.read(y);
      });
      if (a != b) bad.fetch_add(1);
    }
  });
  writer.join();
  EXPECT_EQ(bad.load(), 0);
}

TEST(GlWt, RollbackRestoresValues) {
  GlwtGuard g(ExecMode::StmCondVar);
  tm_var<int> v(5);
  EXPECT_THROW(atomic_do([&](TxContext& tx) {
                 tx.write(v, 99);
                 throw std::runtime_error("cancel");
               }),
               std::runtime_error);
  EXPECT_EQ(v.unsafe_get(), 5);
}

TEST(GlWt, AlgoNameStrings) {
  EXPECT_STREQ(to_string(StmAlgo::MlWt), "ml_wt");
  EXPECT_STREQ(to_string(StmAlgo::GlWt), "gl_wt");
}

// ---------------------------------------------------------------------------
// Per-transaction retry attributes
// ---------------------------------------------------------------------------

TEST(TxnAttrs, PreferSerialSkipsSpeculation) {
  ModeGuard g(ExecMode::StmCondVar);
  reset_stats();
  elidable_mutex m;
  tm_var<int> v(0);
  TxnAttrs attrs;
  attrs.prefer_serial = true;
  critical(m, attrs, [&](TxContext& tx) {
    EXPECT_TRUE(tx.is_irrevocable());
    tx.write(v, 1);
  });
  EXPECT_EQ(v.unsafe_get(), 1);
  const auto s = aggregate_stats();
  EXPECT_EQ(s.commits, 0u);
  EXPECT_EQ(s.serial_commits, 1u);
}

TEST(TxnAttrs, MaxRetriesOneFallsBackAfterFirstAbort) {
  ModeGuard g(ExecMode::StmCondVar);
  config().stm_max_retries = 1000;  // global would retry ~forever
  reset_stats();
  tm_var<int> v(0);
  int executions = 0;
  TxnAttrs attrs;
  attrs.max_retries = 1;
  atomic_do(attrs, [&](TxContext& tx) {
    ++executions;
    tx.write(v, executions);
    if (executions == 1) tx.restart();  // force one abort
  });
  // attempt 1 aborted; per-section limit 1 -> attempt 2 runs serial.
  EXPECT_EQ(executions, 2);
  const auto s = aggregate_stats();
  EXPECT_EQ(s.serial_commits, 1u);
  EXPECT_EQ(s.serial_fallbacks, 1u);
}

TEST(TxnAttrs, AttributesDoNotLeakToLaterTransactions) {
  ModeGuard g(ExecMode::StmCondVar);
  tm_var<int> v(0);
  TxnAttrs attrs;
  attrs.prefer_serial = true;
  atomic_do(attrs, [&](TxContext& tx) { tx.write(v, 1); });
  reset_stats();
  atomic_do([&](TxContext& tx) { tx.write(v, 2); });  // plain: speculative
  const auto s = aggregate_stats();
  EXPECT_EQ(s.commits, 1u);
  EXPECT_EQ(s.serial_commits, 0u);
}

TEST(TxnAttrs, LockModeIgnoresAttrs) {
  ModeGuard g(ExecMode::Lock);
  elidable_mutex m;
  tm_var<int> v(0);
  TxnAttrs attrs;
  attrs.max_retries = 7;
  critical(m, attrs, [&](TxContext& tx) { tx.write(v, 3); });
  EXPECT_EQ(v.unsafe_get(), 3);
}

// ---------------------------------------------------------------------------
// Auditor (§IV-C)
// ---------------------------------------------------------------------------

struct AuditGuard {
  AuditGuard() {
    audit::reset();
    audit::enable(true);
  }
  ~AuditGuard() { audit::enable(false); }
};

TEST(Audit, FlagsUnsafeAccessOverlappingUnquiescedCommit) {
  ModeGuard g(ExecMode::StmCondVarNoQ);
  AuditGuard a;
  tm_var<long> data(0);
  tm_var<long> unrelated(0);

  std::atomic<bool> peer_in_txn{false};
  std::atomic<bool> release_peer{false};
  std::thread peer([&] {
    atomic_do([&](TxContext& tx) {
      (void)tx.read(unrelated);
      peer_in_txn.store(true);
      while (!release_peer.load(std::memory_order_relaxed)) {
        std::this_thread::yield();  // hold the transaction open
      }
    });
  });
  while (!peer_in_txn.load()) std::this_thread::yield();

  // Misuse: privatize `data` but skip quiescence, then touch it unsafely
  // while the peer's transaction is still live.
  atomic_do([&](TxContext& tx) {
    tx.no_quiesce();
    tx.write(data, 42L);
  });
  (void)data.unsafe_get();

  const auto rep = audit::report();
  EXPECT_GE(rep.unquiesced_commits, 1u);
  EXPECT_GE(rep.flagged_accesses, 1u);
  ASSERT_FALSE(rep.samples.empty());

  release_peer.store(true);
  peer.join();
}

TEST(Audit, QuiescedCommitIsNotFlagged) {
  ModeGuard g(ExecMode::StmCondVar);  // NoQuiesce NOT honored: always quiesce
  AuditGuard a;
  tm_var<long> data(0);
  atomic_do([&](TxContext& tx) { tx.write(data, 1L); });
  (void)data.unsafe_get();
  const auto rep = audit::report();
  EXPECT_EQ(rep.flagged_accesses, 0u);
  EXPECT_EQ(rep.unquiesced_commits, 0u);
}

TEST(Audit, HazardExpiresWhenPeersFinish) {
  ModeGuard g(ExecMode::StmCondVarNoQ);
  AuditGuard a;
  tm_var<long> data(0);
  std::atomic<bool> peer_in_txn{false};
  std::atomic<bool> release_peer{false};
  std::thread peer([&] {
    atomic_do([&](TxContext& tx) {
      (void)tx.read(data);
      peer_in_txn.store(true);
      while (!release_peer.load(std::memory_order_relaxed))
        std::this_thread::yield();
    });
  });
  while (!peer_in_txn.load()) std::this_thread::yield();
  atomic_do([&](TxContext& tx) {
    tx.no_quiesce();
    tx.write(data, 7L);
  });
  release_peer.store(true);
  peer.join();
  // The overlapping transaction is gone: accesses are safe and unflagged.
  (void)data.unsafe_get();
  EXPECT_EQ(audit::report().flagged_accesses, 0u);
}

TEST(Audit, DisabledAuditorCostsNothingAndReportsNothing) {
  ModeGuard g(ExecMode::StmCondVarNoQ);
  audit::reset();
  audit::enable(false);
  tm_var<long> data(0);
  atomic_do([&](TxContext& tx) {
    tx.no_quiesce();
    tx.write(data, 1L);
  });
  (void)data.unsafe_get();
  EXPECT_EQ(audit::report().flagged_accesses, 0u);
  EXPECT_EQ(audit::report().unquiesced_commits, 0u);
}

TEST(Audit, UnrelatedAddressIsNotFlagged) {
  // Address filter: the hazard only covers what the unquiesced commit wrote.
  ModeGuard g(ExecMode::StmCondVarNoQ);
  AuditGuard a;
  tm_var<long> written(0), untouched(7);
  std::atomic<bool> peer_in{false}, release{false};
  std::thread peer([&] {
    atomic_do([&](TxContext& tx) {
      (void)tx.read(written);
      peer_in.store(true);
      while (!release.load(std::memory_order_relaxed))
        std::this_thread::yield();
    });
  });
  while (!peer_in.load()) std::this_thread::yield();
  atomic_do([&](TxContext& tx) {
    tx.no_quiesce();
    tx.write(written, 1L);
  });
  (void)untouched.unsafe_get();  // different cell: must NOT be flagged
  EXPECT_EQ(audit::report().flagged_accesses, 0u);
  (void)written.unsafe_get();  // the privatized cell: flagged
  EXPECT_GE(audit::report().flagged_accesses, 1u);
  release.store(true);
  peer.join();
}

// ---------------------------------------------------------------------------
// Simulated-HTM environmental abort model
// ---------------------------------------------------------------------------

TEST(HtmSpurious, RateOneForcesSerialFallback) {
  ModeGuard g(ExecMode::Htm);
  config().htm_spurious_abort_rate = 1.0;
  reset_stats();
  tm_var<int> v(0);
  for (int i = 0; i < 20; ++i)
    atomic_do([&](TxContext& tx) { tx.write(v, i); });
  const auto s = aggregate_stats();
  EXPECT_EQ(s.commits, 0u) << "every speculative attempt must die";
  EXPECT_EQ(s.serial_commits, 20u);
  EXPECT_GE(s.aborts[static_cast<int>(AbortCause::Spurious)], 40u)
      << "2 attempts per transaction";
  EXPECT_EQ(v.unsafe_get(), 19);
}

TEST(HtmSpurious, CalibratedRateLandsInPaperBand) {
  // p = 0.4 with 2 retries: expected fallback = p^2 = 16%, the middle of
  // the paper's observed 13-18% TSX band.
  ModeGuard g(ExecMode::Htm);
  config().htm_spurious_abort_rate = 0.4;
  reset_stats();
  tm_var<long> v(0);
  constexpr int kTxns = 4000;
  for (int i = 0; i < kTxns; ++i)
    atomic_do([&](TxContext& tx) { tx.fetch_add(v, 1L); });
  EXPECT_EQ(v.unsafe_get(), kTxns);
  const auto s = aggregate_stats();
  const double fallback = s.serial_fraction();
  EXPECT_GT(fallback, 0.12);
  EXPECT_LT(fallback, 0.20);
}

TEST(HtmSpurious, ZeroRateIsDeterministicallyQuiet) {
  ModeGuard g(ExecMode::Htm);  // default rate is 0
  reset_stats();
  tm_var<int> v(0);
  for (int i = 0; i < 50; ++i) atomic_do([&](TxContext& tx) { tx.write(v, i); });
  EXPECT_EQ(aggregate_stats().aborts[static_cast<int>(AbortCause::Spurious)],
            0u);
}

// ---------------------------------------------------------------------------
// tm_obj
// ---------------------------------------------------------------------------

struct Triple {
  long a, b, c;
};

TEST(TmObj, RoundTripAndSize) {
  static_assert(tm_obj<Triple>::kWords == 3);
  ModeGuard g(ExecMode::StmCondVar);
  tm_obj<Triple> obj(Triple{1, 2, 3});
  Triple got{};
  atomic_do([&](TxContext& tx) { got = obj.get(tx); });
  EXPECT_EQ(got.a, 1);
  EXPECT_EQ(got.c, 3);
  atomic_do([&](TxContext& tx) { obj.set(tx, Triple{4, 5, 6}); });
  EXPECT_EQ(obj.unsafe_get().b, 5);
}

TEST(TmObj, SnapshotsAreNeverTorn) {
  // Writer keeps a == b == c; multi-word reads must never mix versions.
  for (ExecMode m : {ExecMode::StmCondVar, ExecMode::Htm}) {
    ModeGuard g(m);
    tm_obj<Triple> obj(Triple{0, 0, 0});
    std::atomic<bool> stop{false};
    std::atomic<long> torn{0};
    std::thread writer([&] {
      for (long i = 1; i <= 3000; ++i)
        atomic_do([&](TxContext& tx) { obj.set(tx, Triple{i, i, i}); });
      stop.store(true);
    });
    run_threads(2, [&](int) {
      while (!stop.load()) {
        Triple t{};
        atomic_do([&](TxContext& tx) { t = obj.get(tx); });
        if (t.a != t.b || t.b != t.c) torn.fetch_add(1);
      }
    });
    writer.join();
    EXPECT_EQ(torn.load(), 0) << to_string(m);
  }
}

TEST(TmObj, RollbackRestoresAllWords) {
  ModeGuard g(ExecMode::StmCondVar);
  tm_obj<Triple> obj(Triple{9, 9, 9});
  EXPECT_THROW(atomic_do([&](TxContext& tx) {
                 obj.set(tx, Triple{1, 2, 3});
                 throw std::runtime_error("x");
               }),
               std::runtime_error);
  const Triple t = obj.unsafe_get();
  EXPECT_EQ(t.a, 9);
  EXPECT_EQ(t.b, 9);
  EXPECT_EQ(t.c, 9);
}

// ---------------------------------------------------------------------------
// Trace ring
// ---------------------------------------------------------------------------

struct TraceGuard {
  TraceGuard() {
    trace::reset();
    trace::enable(true);
  }
  ~TraceGuard() { trace::enable(false); }
};

TEST(Trace, RecordsBeginCommitPairs) {
  ModeGuard g(ExecMode::StmCondVar);
  TraceGuard t;
  tm_var<int> v(0);
  for (int i = 0; i < 10; ++i)
    atomic_do([&](TxContext& tx) { tx.write(v, i); });
  const auto events = trace::snapshot();
  int begins = 0, commits = 0, quiesces = 0;
  for (const auto& e : events) {
    begins += e.event == trace::Event::Begin;
    commits += e.event == trace::Event::Commit;
    quiesces += e.event == trace::Event::Quiesce;
  }
  EXPECT_GE(begins, 10);
  EXPECT_GE(commits, 10);
  EXPECT_GE(quiesces, 10) << "Always policy quiesces each commit";
  // Timestamps are sorted.
  for (std::size_t i = 1; i < events.size(); ++i)
    ASSERT_LE(events[i - 1].ts_ns, events[i].ts_ns);
}

TEST(Trace, RecordsAbortCause) {
  ModeGuard g(ExecMode::StmCondVar);
  TraceGuard t;
  tm_var<int> v(0);
  int runs = 0;
  atomic_do([&](TxContext& tx) {
    tx.write(v, ++runs);
    if (runs == 1) tx.restart();
  });
  bool saw_user_abort = false;
  for (const auto& e : trace::snapshot())
    if (e.event == trace::Event::Abort &&
        e.cause == AbortCause::UserExplicit)
      saw_user_abort = true;
  EXPECT_TRUE(saw_user_abort);
}

TEST(Trace, SerialEventsBracketIrrevocableRuns) {
  ModeGuard g(ExecMode::Htm);
  TraceGuard t;
  tm_var<int> v(0);
  synchronized_do([&](TxContext& tx) { tx.write(v, 1); });
  int enters = 0, exits = 0;
  for (const auto& e : trace::snapshot()) {
    enters += e.event == trace::Event::SerialEnter;
    exits += e.event == trace::Event::SerialExit;
  }
  EXPECT_EQ(enters, 1);
  EXPECT_EQ(exits, 1);
}

TEST(Trace, DisabledMeansEmpty) {
  trace::reset();
  trace::enable(false);
  ModeGuard g(ExecMode::StmCondVar);
  tm_var<int> v(0);
  atomic_do([&](TxContext& tx) { tx.write(v, 1); });
  EXPECT_TRUE(trace::snapshot().empty());
}

TEST(Trace, RingWrapsKeepingNewest) {
  ModeGuard g(ExecMode::StmCondVar);
  config().quiesce = QuiescePolicy::Never;  // 2 events per txn
  TraceGuard t;
  tm_var<int> v(0);
  const int txns = static_cast<int>(trace::kRingSize);  // 2x ring capacity
  for (int i = 0; i < txns; ++i)
    atomic_do([&](TxContext& tx) { tx.write(v, i); });
  const auto events = trace::snapshot();
  EXPECT_EQ(events.size(), trace::kRingSize) << "ring keeps the newest window";
}

TEST(Trace, EventNames) {
  EXPECT_STREQ(trace::to_string(trace::Event::Begin), "begin");
  EXPECT_STREQ(trace::to_string(trace::Event::Quiesce), "quiesce");
}

}  // namespace
}  // namespace tle
