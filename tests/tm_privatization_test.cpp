// Privatization-safety stress tests (paper Section IV, Listings 1–2).
//
// The scenario quiescence exists for: a thread transactionally detaches
// ("privatizes") shared data, then accesses it non-transactionally. Without
// quiescence, a concurrently-running doomed transaction could still perform
// write-through speculative stores or undo stores into the privatized
// memory, racing with the private accesses. With quiescence (GCC's
// post-2016 behaviour, our QuiescePolicy::Always), the privatizer's commit
// waits until every concurrent transaction has committed or fully undone.
#include <gtest/gtest.h>

#include <atomic>

#include "sync/bounded_queue.hpp"
#include "test_support.hpp"

namespace tle {
namespace {

using testing::ModeGuard;
using testing::run_threads;

/// Optimizer-proof value sink.
inline void sink(long v) { asm volatile("" : : "r"(v) : "memory"); }

/// A pair kept equal by transactional updaters; privatizers detach the box
/// and verify/mutate it non-transactionally.
struct Box {
  tm_var<long> a{0};
  tm_var<long> b{0};
};

class PrivatizationStress : public ::testing::TestWithParam<ExecMode> {};

INSTANTIATE_TEST_SUITE_P(
    Tm, PrivatizationStress,
    ::testing::Values(ExecMode::StmCondVar, ExecMode::StmCondVarNoQ,
                      ExecMode::Htm),
    [](const auto& info) {
      std::string s = to_string(info.param);
      for (auto& c : s)
        if (!isalnum(static_cast<unsigned char>(c))) c = '_';
      return s;
    });

TEST_P(PrivatizationStress, DetachedBoxNeverRacesWithZombies) {
  ModeGuard g(GetParam());
  tm_var<Box*> current(new Box);
  std::atomic<bool> stop{false};
  std::atomic<long> violations{0};

  // Updaters: keep (a == b) inside the currently-installed box.
  auto updater = [&] {
    while (!stop.load(std::memory_order_relaxed)) {
      atomic_do([&](TxContext& tx) {
        Box* box = tx.read(current);
        const long v = tx.read(box->a) + 1;
        tx.write(box->a, v);
        tx.write(box->b, v);
      });
    }
  };

  // Privatizer: swap in a fresh box, then use the old one privately.
  auto privatizer = [&] {
    for (int i = 0; i < 300 && !stop.load(); ++i) {
      Box* fresh = new Box;
      Box* old = nullptr;
      atomic_do([&](TxContext& tx) {
        old = tx.read(current);
        tx.write(current, fresh);
      });
      // Post-commit (and post-quiescence): `old` is private. Any zombie
      // write-through or undo store arriving now would break a == b or
      // clobber our private mutations.
      for (int k = 0; k < 50; ++k) {
        const long a = old->a.unsafe_get();
        const long b = old->b.unsafe_get();
        if (a != b) violations.fetch_add(1);
        old->a.unsafe_set(a + 1);
        old->b.unsafe_set(a + 1);
      }
      delete old;  // memory reuse makes latent zombie writes crash loudly
    }
    stop.store(true);
  };

  std::thread t1(updater), t2(updater), t3(privatizer);
  t1.join();
  t2.join();
  t3.join();
  delete current.unsafe_get();
  EXPECT_EQ(violations.load(), 0);
}

TEST_P(PrivatizationStress, TransactionalFreeOfHotNodeIsSafe) {
  // Remove-and-free under contention: the committing remover must quiesce
  // before the node is recycled (the §IV-B allocator rule), even in the
  // NoQuiesce-honoring mode.
  ModeGuard g(GetParam());
  struct Node {
    tm_var<long> value{0};
  };
  tm_var<Node*> slot(nullptr);
  std::atomic<bool> stop{false};

  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      atomic_do([&](TxContext& tx) {
        tx.no_quiesce();
        Node* n = tx.read(slot);
        if (n) {
          // Dereference inside the transaction: if a free raced ahead of a
          // zombie, ASan/valgrind (and likely a crash) would catch it.
          sink(tx.read(n->value));
        }
      });
    }
  });

  for (int i = 0; i < 2000; ++i) {
    atomic_do([&](TxContext& tx) {
      Node* n = tx.create<Node>();
      n->value.unsafe_set(i);
      tx.write(slot, n);
    });
    atomic_do([&](TxContext& tx) {
      Node* n = tx.read(slot);
      tx.write(slot, static_cast<Node*>(nullptr));
      if (n) tx.destroy(n);  // forces quiescence before the free
    });
  }
  stop.store(true);
  reader.join();
  SUCCEED();
}

TEST(Privatization, FenceAllowsManualPublication) {
  ModeGuard g(ExecMode::StmCondVar);
  tm_var<int> flag(0);
  atomic_do([&](TxContext& tx) { tx.write(flag, 1); });
  tm_fence();  // all transactions drained: non-tx access is now safe
  EXPECT_EQ(flag.unsafe_get(), 1);
}

TEST(Privatization, Listing2QueueShapeHonorsNoQuiesceAsymmetry) {
  // Producer transactions request NoQuiesce (never privatize); consumer
  // pops do not (they privatize). Verify via counters in the honoring mode.
  ModeGuard g(ExecMode::StmCondVarNoQ);
  bounded_queue<long> q(8);
  reset_stats();
  for (long i = 0; i < 4; ++i) q.push(i);
  const auto after_push = aggregate_stats();
  EXPECT_EQ(after_push.quiesce_calls, 0u) << "producers must not quiesce";
  EXPECT_GE(after_push.noquiesce_honored, 4u);
  for (long i = 0; i < 4; ++i) ASSERT_TRUE(q.pop().has_value());
  const auto after_pop = aggregate_stats();
  EXPECT_GE(after_pop.quiesce_calls, 4u)
      << "successful pops privatize and must quiesce";
}

}  // namespace
}  // namespace tle
