// Privatization-safety stress tests (paper Section IV, Listings 1–2).
//
// The scenario quiescence exists for: a thread transactionally detaches
// ("privatizes") shared data, then accesses it non-transactionally. Without
// quiescence, a concurrently-running doomed transaction could still perform
// write-through speculative stores or undo stores into the privatized
// memory, racing with the private accesses. With quiescence (GCC's
// post-2016 behaviour, our QuiescePolicy::Always), the privatizer's commit
// waits until every concurrent transaction has committed or fully undone.
//
// The simulated-HTM half of the story is different: on real silicon a
// privatizing commit coherence-aborts speculative readers instantly, so HTM
// needs no quiescence — but our simulation validates lazily, leaving a
// window where a zombie reader issues one more load of the detached block.
// The PrivatizationZombie tests below pin that window open deterministically
// and prove the mode-aware routing (tm_private_delete + htm_readers_possible)
// keeps the storage alive through it. The stress suites run across the full
// exec-mode × commit-protocol matrix so the routing decision is protocol-
// independent by construction.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "sync/bounded_queue.hpp"
#include "test_support.hpp"
#include "tm/fault/fault.hpp"
#include "tm/meta.hpp"

namespace tle {
namespace {

using testing::ModeGuard;

/// Optimizer-proof value sink.
inline void sink(long v) { asm volatile("" : : "r"(v) : "memory"); }

/// A pair kept equal by transactional updaters; privatizers detach the box
/// and verify/mutate it non-transactionally.
struct Box {
  tm_var<long> a{0};
  tm_var<long> b{0};
};

// Exec-mode × commit-protocol matrix: the reclamation-routing decision must
// be identical whichever protocol instance (ml_wt / gl_wt / tictoc) sits
// behind the seam, and in HTM mode must not depend on the (unused) STM
// algorithm at all.
using PrivParam = std::tuple<ExecMode, StmAlgo>;

class PrivatizationStress : public ::testing::TestWithParam<PrivParam> {};

INSTANTIATE_TEST_SUITE_P(
    Tm, PrivatizationStress,
    ::testing::Combine(::testing::Values(ExecMode::StmCondVar,
                                         ExecMode::StmCondVarNoQ,
                                         ExecMode::Htm),
                       ::testing::Values(StmAlgo::MlWt, StmAlgo::GlWt,
                                         StmAlgo::TicToc)),
    [](const auto& info) {
      std::string s = std::string(to_string(std::get<0>(info.param))) + "_" +
                      to_string(std::get<1>(info.param));
      for (auto& c : s)
        if (!isalnum(static_cast<unsigned char>(c))) c = '_';
      return s;
    });

TEST_P(PrivatizationStress, DetachedBoxNeverRacesWithZombies) {
  ModeGuard g(std::get<0>(GetParam()));
  config().stm_algo = std::get<1>(GetParam());
  tm_var<Box*> current(new Box);
  std::atomic<bool> stop{false};
  std::atomic<long> violations{0};

  // Updaters: keep (a == b) inside the currently-installed box.
  auto updater = [&] {
    while (!stop.load(std::memory_order_relaxed)) {
      atomic_do([&](TxContext& tx) {
        Box* box = tx.read(current);
        const long v = tx.read(box->a) + 1;
        tx.write(box->a, v);
        tx.write(box->b, v);
      });
    }
  };

  // Privatizer: swap in a fresh box, then use the old one privately.
  auto privatizer = [&] {
    for (int i = 0; i < 300 && !stop.load(); ++i) {
      Box* fresh = new Box;
      Box* old = nullptr;
      atomic_do([&](TxContext& tx) {
        old = tx.read(current);
        tx.write(current, fresh);
      });
      // Post-commit (and post-quiescence): `old` is private. Any zombie
      // write-through or undo store arriving now would break a == b or
      // clobber our private mutations.
      for (int k = 0; k < 50; ++k) {
        const long a = old->a.unsafe_get();
        const long b = old->b.unsafe_get();
        if (a != b) violations.fetch_add(1);
        old->a.unsafe_set(a + 1);
        old->b.unsafe_set(a + 1);
      }
      // Mode-aware routed free: under HTM mode a lazily-validating reader
      // may still be in flight, so the block must ride the limbo machinery
      // instead of returning to the allocator immediately.
      tm_private_delete(old);
    }
    stop.store(true);
  };

  std::thread t1(updater), t2(updater), t3(privatizer);
  t1.join();
  t2.join();
  t3.join();
  tm_private_delete(current.unsafe_get());
  EXPECT_EQ(violations.load(), 0);
}

TEST_P(PrivatizationStress, TransactionalFreeOfHotNodeIsSafe) {
  // Remove-and-free under contention: the committing remover must quiesce
  // before the node is recycled (the §IV-B allocator rule), even in the
  // NoQuiesce-honoring mode.
  ModeGuard g(std::get<0>(GetParam()));
  config().stm_algo = std::get<1>(GetParam());
  struct Node {
    tm_var<long> value{0};
  };
  tm_var<Node*> slot(nullptr);
  std::atomic<bool> stop{false};

  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      atomic_do([&](TxContext& tx) {
        tx.no_quiesce();
        Node* n = tx.read(slot);
        if (n) {
          // Dereference inside the transaction: if a free raced ahead of a
          // zombie, ASan/valgrind (and likely a crash) would catch it.
          sink(tx.read(n->value));
        }
      });
    }
  });

  for (int i = 0; i < 2000; ++i) {
    atomic_do([&](TxContext& tx) {
      Node* n = tx.create<Node>();
      n->value.unsafe_set(i);
      tx.write(slot, n);
    });
    atomic_do([&](TxContext& tx) {
      Node* n = tx.read(slot);
      tx.write(slot, static_cast<Node*>(nullptr));
      if (n) tx.destroy(n);  // forces quiescence before the free
    });
  }
  stop.store(true);
  reader.join();
  SUCCEED();
}

TEST(Privatization, FenceAllowsManualPublication) {
  ModeGuard g(ExecMode::StmCondVar);
  tm_var<int> flag(0);
  atomic_do([&](TxContext& tx) { tx.write(flag, 1); });
  tm_fence();  // all transactions drained: non-tx access is now safe
  EXPECT_EQ(flag.unsafe_get(), 1);
}

TEST(Privatization, Listing2QueueShapeHonorsNoQuiesceAsymmetry) {
  // Producer transactions request NoQuiesce (never privatize); consumer
  // pops do not (they privatize). Verify via counters in the honoring mode.
  ModeGuard g(ExecMode::StmCondVarNoQ);
  bounded_queue<long> q(8);
  reset_stats();
  for (long i = 0; i < 4; ++i) q.push(i);
  const auto after_push = aggregate_stats();
  EXPECT_EQ(after_push.quiesce_calls, 0u) << "producers must not quiesce";
  EXPECT_GE(after_push.noquiesce_honored, 4u);
  for (long i = 0; i < 4; ++i) ASSERT_TRUE(q.pop().has_value());
  const auto after_pop = aggregate_stats();
  EXPECT_GE(after_pop.quiesce_calls, 4u)
      << "successful pops privatize and must quiesce";
}

// ---------------------------------------------------------------------------
// The simulated-HTM privatization gap (deterministic reproductions)
// ---------------------------------------------------------------------------

/// Holds one simulated-HTM reader open mid-transaction: the spawned thread
/// enters a transaction, reads `cell`, then parks inside the body until
/// release() — giving the main thread a guaranteed htm_readers_possible()
/// window to act in.
class HtmReaderHold {
 public:
  explicit HtmReaderHold(tm_var<long>& cell) {
    thread_ = std::thread([this, &cell] {
      atomic_do([&](TxContext& tx) {
        sink(tx.read(cell));
        entered_.store(true, std::memory_order_release);
        while (!released_.load(std::memory_order_acquire)) {
        }
      });
    });
    while (!entered_.load(std::memory_order_acquire)) {
    }
  }

  void release() { released_.store(true, std::memory_order_release); }

  ~HtmReaderHold() {
    release();
    thread_.join();
  }

 private:
  std::atomic<bool> entered_{false};
  std::atomic<bool> released_{false};
  std::thread thread_;
};

TEST(PrivatizationZombie, ZombieHtmReaderSurvivesPrivatizingFree) {
  // The §IV identity "HTM needs no quiescence" assumes coherence aborts.
  // Our simulated HTM validates lazily, so a reader that cut a clean
  // snapshot can issue one more fast-path load of a privatized block after
  // the privatizer committed. This test pins that exact interleaving open
  // with an in-body rendezvous and proves tm_private_delete keeps the block
  // alive through it. With an immediate free instead of routing, the
  // sentinel allocation below recycles the storage and the zombie reads
  // 2222 (or ASan reports heap-use-after-free) — the pre-fix failure.
  ModeGuard g(ExecMode::Htm);
  reset_stats();

  // Place the victim box on a different commit stripe than the `current`
  // cell: the privatizing swap then bumps only current's stripe, so the
  // zombie's later read of box->b takes the unsubscribed single-load fast
  // path — the narrowest form of the window.
  tm_var<Box*> current(nullptr);
  Box* victim = nullptr;
  std::vector<Box*> rejects;
  for (int i = 0; i < 256 && !victim; ++i) {
    Box* b = new Box;
    if (htm_stripe_index(&b->a) != htm_stripe_index(&current))
      victim = b;
    else
      rejects.push_back(b);
  }
  for (Box* b : rejects) delete b;
  ASSERT_NE(victim, nullptr) << "could not place box off current's stripe";
  victim->a.unsafe_set(41);
  victim->b.unsafe_set(41);
  current.unsafe_set(victim);

  std::atomic<int> stage{0};       // 0 = start, 1 = reader mid-txn, 2 = freed
  std::atomic<long> zombie_b{-1};  // what the zombie load returned

  std::thread reader([&] {
    atomic_do([&](TxContext& tx) {
      Box* box = tx.read(current);
      sink(tx.read(box->a));
      int expect0 = 0;
      stage.compare_exchange_strong(expect0, 1, std::memory_order_acq_rel);
      while (stage.load(std::memory_order_acquire) < 2) {
      }
      const long b = tx.read(box->b);  // the zombie load
      long unset = -1;  // record the first attempt only; retries see `fresh`
      zombie_b.compare_exchange_strong(unset, b, std::memory_order_acq_rel);
    });
  });

  while (stage.load(std::memory_order_acquire) < 1) {
  }
  // Privatize: swap the box out and commit. HTM commits never quiesce, so
  // control returns here while the reader still holds its snapshot.
  Box* fresh = new Box;
  atomic_do([&](TxContext& tx) { tx.write(current, fresh); });
  // Mode-aware routed free: the reader's slot is odd + htm_active, so this
  // must park `victim` in limbo rather than freeing it.
  tm_private_delete(victim);
  // Try to recycle the storage: with an (incorrect) immediate free the
  // allocator hands victim's block straight back and these sentinel writes
  // become the zombie's view of box->b.
  Box* sentinel = new Box;
  sentinel->a.unsafe_set(1111);
  sentinel->b.unsafe_set(2222);
  stage.store(2, std::memory_order_release);
  reader.join();

  EXPECT_EQ(zombie_b.load(), 41)
      << "zombie HTM reader observed recycled storage: the privatizing free "
         "was not routed through limbo";
  const auto s = aggregate_stats();
  EXPECT_GE(s.priv_limbo_routed, 1u);

  // Cleanup: drain the routed block now that the reader is gone.
  tm_private_delete(sentinel);
  current.unsafe_set(nullptr);
  tm_private_delete(fresh);
  tm_fence();
  tm_private_delete(new long(0));  // immediate path: opportunistic drain
}

TEST(PrivatizationZombie, RoutedBlocksDrainOnNextGracePeriod) {
  // Accounting proof for the routing seam: a free issued while an HTM
  // reader is in flight is routed (priv_limbo_routed), stays parked while
  // the reader lives, and drains back to the allocator on the next grace
  // period (limbo_drained / tm_frees).
  ModeGuard g(ExecMode::Htm);
  tm_var<long> cell(7);
  reset_stats();

  {
    HtmReaderHold hold(cell);
    tm_private_delete(new long(42));  // reader in flight: must route
    const auto mid = aggregate_stats();
    EXPECT_EQ(mid.priv_limbo_routed, 1u);
    EXPECT_EQ(mid.priv_immediate_frees, 0u);
  }  // reader released and joined

  // One full grace period certifies the batch; the next reclamation touch
  // (an immediate-path free) opportunistically drains it.
  tm_fence();
  tm_private_delete(new long(0));
  const auto after = aggregate_stats();
  EXPECT_GE(after.priv_immediate_frees, 1u);
  EXPECT_GE(after.limbo_drained, 1u) << "routed batch failed to drain";
  EXPECT_GE(after.tm_frees, 1u);
}

TEST(PrivatizationZombie, NoQuiesceIgnoredWhileHtmReadersInFlight) {
  // no_quiesce() is a claim that the section never privatizes; under the
  // simulated HTM that claim must not license anything downstream while
  // lazily-validating peers are in flight. The runtime ignores the request
  // with accounting instead of honoring it.
  ModeGuard g(ExecMode::Htm);
  tm_var<long> cell(0);
  tm_var<long> other(0);
  reset_stats();

  {
    HtmReaderHold hold(cell);
    atomic_do([&](TxContext& tx) {
      tx.no_quiesce();
      tx.write(other, 1L);
    });
  }

  const auto s = aggregate_stats();
  EXPECT_GE(s.noquiesce_ignored_htm, 1u)
      << "no_quiesce honored while an HTM reader was in flight";
}

TEST(PrivatizationZombie, HtmZombieFaultHookWidensWindowSafely) {
  // The htm_zombie perturbation hook sits exactly in the zombie window: a
  // simulated-HTM read that subscribed its stripe but has not yet issued
  // the load. Delaying there stretches every reader's exposure to a
  // concurrent privatizing free. With routing in place the stress must
  // stay violation-free; the snapshot proves the hook actually fired.
  ModeGuard g(ExecMode::Htm);
  ASSERT_TRUE(fault::install_spec("delay@htm_zombie=0.25/20000", 20260809));

  tm_var<Box*> current(new Box);
  std::atomic<bool> stop{false};
  std::atomic<long> violations{0};

  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      atomic_do([&](TxContext& tx) {
        Box* box = tx.read(current);
        const long a = tx.read(box->a);
        const long b = tx.read(box->b);  // delayed by the plan
        if (a != b) violations.fetch_add(1);
      });
    }
  });

  for (int i = 0; i < 400; ++i) {
    Box* fresh = new Box;
    fresh->a.unsafe_set(i);
    fresh->b.unsafe_set(i);
    Box* old = nullptr;
    atomic_do([&](TxContext& tx) {
      old = tx.read(current);
      tx.write(current, fresh);
    });
    tm_private_delete(old);  // reader likely mid-window: routes
  }
  stop.store(true);
  reader.join();

  const fault::Counts counts = fault::snapshot();
  fault::clear();
  EXPECT_GT(counts.delays[static_cast<int>(fault::Hook::HtmZombieLoad)], 0u)
      << "htm_zombie hook never fired";
  EXPECT_EQ(violations.load(), 0);
  tm_private_delete(current.unsafe_get());
  tm_fence();
  tm_private_delete(new long(0));  // drain whatever the loop routed
}

}  // namespace
}  // namespace tle
