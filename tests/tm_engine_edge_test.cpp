// Edge-path tests for the TM engines: timestamp extension (success and
// failure), serial-pending aborts, orec aliasing, HTM revalidation aborts,
// nested restart semantics, and Listing-1 proxy privatization.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "test_support.hpp"
#include "util/rng.hpp"
#include "tm/meta.hpp"
#include "tm/serial_lock.hpp"

namespace tle {
namespace {

using testing::ModeGuard;

// Helper: spin until a plain flag flips (safe inside transactions: plain
// atomic reads of non-tm state do not touch TM metadata).
void await_flag(const std::atomic<bool>& f) {
  while (!f.load(std::memory_order_acquire)) std::this_thread::yield();
}

// ---------------------------------------------------------------------------
// ml_wt timestamp extension
// ---------------------------------------------------------------------------

TEST(MlWtExtension, ExtensionSucceedsWhenReadSetStillValid) {
  // Quiescence off: the helper's commit would otherwise block on the
  // deliberately-held-open transaction under test.
  ModeGuard g(ExecMode::StmCondVar, QuiescePolicy::Never, false);
  reset_stats();
  tm_var<long> a(1), b(10);
  std::atomic<bool> t1_read_a{false}, t2_wrote_b{false};

  std::thread t1([&] {
    long got_a = 0, got_b = 0;
    atomic_do([&](TxContext& tx) {
      got_a = tx.read(a);
      t1_read_a.store(true);
      await_flag(t2_wrote_b);
      // b's orec now carries a timestamp newer than our snapshot: this read
      // triggers a timestamp extension, which validates `a` (unchanged) and
      // succeeds.
      got_b = tx.read(b);
    });
    EXPECT_EQ(got_a, 1);
    EXPECT_EQ(got_b, 20);
  });

  await_flag(t1_read_a);
  atomic_do([&](TxContext& tx) { tx.write(b, 20L); });
  t2_wrote_b.store(true);
  t1.join();
  const auto s = aggregate_stats();
  EXPECT_EQ(s.aborts_total(), 0u) << "extension must avoid the abort";
}

TEST(MlWtExtension, ExtensionFailsWhenReadSetInvalidated) {
  ModeGuard g(ExecMode::StmCondVar, QuiescePolicy::Never, false);
  reset_stats();
  tm_var<long> a(1), b(10);
  std::atomic<bool> t1_read_a{false}, t2_wrote_both{false};
  std::atomic<int> attempts{0};

  std::thread t1([&] {
    long got_a = 0, got_b = 0;
    atomic_do([&](TxContext& tx) {
      const int n = attempts.fetch_add(1) + 1;
      got_a = tx.read(a);
      if (n == 1) {
        t1_read_a.store(true);
        await_flag(t2_wrote_both);
      }
      got_b = tx.read(b);  // first attempt: extension validates `a`, fails
    });
    // The retry reads the post-update values consistently.
    EXPECT_EQ(got_a, 2);
    EXPECT_EQ(got_b, 20);
  });

  await_flag(t1_read_a);
  atomic_do([&](TxContext& tx) {
    tx.write(a, 2L);
    tx.write(b, 20L);
  });
  t2_wrote_both.store(true);
  t1.join();
  EXPECT_EQ(attempts.load(), 2);
  const auto s = aggregate_stats();
  EXPECT_GE(s.aborts[static_cast<int>(AbortCause::Validation)], 1u);
}

// ---------------------------------------------------------------------------
// Serial-pending interception
// ---------------------------------------------------------------------------

TEST(SerialPending, RunningTxnAbortsWhenSerialRequested) {
  ModeGuard g(ExecMode::StmCondVar);
  reset_stats();
  tm_var<long> v(0);
  std::atomic<bool> t1_in_txn{false};
  std::atomic<int> attempts{0};

  std::thread t1([&] {
    atomic_do([&](TxContext& tx) {
      const int n = attempts.fetch_add(1) + 1;
      (void)tx.read(v);
      if (n == 1) {
        t1_in_txn.store(true);
        // Hold the transaction open until the main thread's serial request
        // is actually pending, then touch TM state: the access must poll the
        // pending bit and abort (releasing the read side so the serial
        // writer can proceed — the lock-subscription protocol).
        while (!serial_lock().serial_requested()) std::this_thread::yield();
      }
      (void)tx.read(v);  // aborts with SerialPending on attempt 1
    });
  });

  await_flag(t1_in_txn);
  synchronized_do([&](TxContext& tx) { tx.write(v, 5L); });
  t1.join();
  EXPECT_GE(attempts.load(), 2);
  const auto s = aggregate_stats();
  EXPECT_GE(s.aborts[static_cast<int>(AbortCause::SerialPending)], 1u);
  EXPECT_EQ(v.unsafe_get(), 5);
}

// ---------------------------------------------------------------------------
// Orec aliasing
// ---------------------------------------------------------------------------

TEST(OrecAliasing, SameOrecTwoVariablesStillAtomic) {
  // Find two array slots whose addresses hash to the same orec, then write
  // both in one transaction: the second write must take the owned-orec
  // fast path, and commit must release it exactly once.
  ModeGuard g(ExecMode::StmCondVar);
  // The hash walks a full cycle over consecutive words (no neighbour ever
  // collides — by design), and fixed-stride allocators lay heap candidates
  // on the same cycle, so use the pigeonhole principle instead: more
  // contiguous words than orecs guarantees a colliding pair.
  constexpr int kN = kOrecCount + 4096;
  auto pool = std::make_unique<tm_var<long>[]>(kN);
  std::map<const void*, int> seen;
  int i1 = -1, i2 = -1;
  for (int i = 0; i < static_cast<int>(kN) && i2 < 0; ++i) {
    const void* o = &orec_for(&pool[i].raw());
    auto [it, fresh] = seen.emplace(o, i);
    if (!fresh) {
      i1 = it->second;
      i2 = i;
    }
  }
  ASSERT_GE(i2, 0) << "pigeonhole violated: >64K words with no orec reuse";
  auto& vars = pool;
  atomic_do([&](TxContext& tx) {
    tx.write(vars[i1], 111L);
    tx.write(vars[i2], 222L);
    EXPECT_EQ(tx.read(vars[i1]), 111);  // read-own-write through shared orec
  });
  EXPECT_EQ(vars[i1].unsafe_get(), 111);
  EXPECT_EQ(vars[i2].unsafe_get(), 222);
}

// ---------------------------------------------------------------------------
// Simulated-HTM revalidation
// ---------------------------------------------------------------------------

TEST(HtmRevalidation, ConcurrentCommitAbortsStaleReader) {
  ModeGuard g(ExecMode::Htm);
  reset_stats();
  tm_var<long> a(1), b(10);
  std::atomic<bool> t1_read_a{false}, t2_committed{false};
  std::atomic<int> attempts{0};

  std::thread t1([&] {
    long ga = 0, gb = 0;
    atomic_do([&](TxContext& tx) {
      const int n = attempts.fetch_add(1) + 1;
      ga = tx.read(a);
      if (n == 1) {
        t1_read_a.store(true);
        await_flag(t2_committed);
      }
      gb = tx.read(b);  // sequence moved: revalidate -> value of `a` changed
    });
    EXPECT_EQ(ga, 2);
    EXPECT_EQ(gb, 20);
  });

  await_flag(t1_read_a);
  atomic_do([&](TxContext& tx) {
    tx.write(a, 2L);
    tx.write(b, 20L);
  });
  t2_committed.store(true);
  t1.join();
  EXPECT_EQ(attempts.load(), 2);
  const auto s = aggregate_stats();
  EXPECT_GE(s.aborts[static_cast<int>(AbortCause::Validation)], 1u);
}

TEST(HtmRevalidation, SilentValueRestorationIsHarmless) {
  // A peer commits a different value and then commits the original back;
  // NOrec's value-based validation legitimately accepts the final state.
  ModeGuard g(ExecMode::Htm);
  tm_var<long> a(1);
  std::atomic<bool> ready{false}, done{false};
  std::thread t1([&] {
    long v1 = 0, v2 = 0;
    atomic_do([&](TxContext& tx) {
      v1 = tx.read(a);
      if (!ready.exchange(true)) await_flag(done);
      v2 = tx.read(a);
      EXPECT_EQ(v1, v2) << "reads within one txn must agree";
    });
  });
  await_flag(ready);
  atomic_do([&](TxContext& tx) { tx.write(a, 7L); });
  atomic_do([&](TxContext& tx) { tx.write(a, 1L); });
  done.store(true);
  t1.join();
  SUCCEED();
}

// ---------------------------------------------------------------------------
// Nested restart
// ---------------------------------------------------------------------------

TEST(NestedRestart, InnerRestartReexecutesWholeOuter) {
  ModeGuard g(ExecMode::StmCondVar);
  int outer_runs = 0;
  tm_var<int> v(0);
  atomic_do([&](TxContext&) {
    ++outer_runs;
    atomic_do([&](TxContext& inner) {
      inner.write(v, outer_runs);
      if (outer_runs == 1) inner.restart();  // flat nesting: outer restarts
    });
  });
  EXPECT_EQ(outer_runs, 2);
  EXPECT_EQ(v.unsafe_get(), 2);
}

// ---------------------------------------------------------------------------
// Listing-1 proxy privatization
// ---------------------------------------------------------------------------

TEST(ProxyPrivatization, SafeUnderAlwaysQuiescencePolicy) {
  // The paper's Listing 1: an updater publishes messages into a vector; a
  // privatizer nulls a slot; a *proxy* thread (not the privatizer) then
  // reads the message transactionally and uses it non-transactionally.
  // Post-2016 GCC quiesces after EVERY transaction (including read-only
  // ones) precisely to make this safe — our QuiescePolicy::Always.
  ModeGuard g(ExecMode::StmCondVar);  // Always quiesce
  struct Msg {
    long payload;
    long check;
  };
  constexpr int kSlots = 4;
  static tm_var<Msg*> vec[kSlots];
  for (auto& s : vec) s.unsafe_set(nullptr);
  std::atomic<bool> stop{false};
  std::atomic<long> corrupt{0};

  std::thread updater([&] {
    long seq = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      const int k = static_cast<int>(seq % kSlots);
      auto* m = new Msg{seq, seq ^ 0x77L};
      Msg* old = nullptr;
      atomic_do([&](TxContext& tx) {
        old = tx.read(vec[k]);
        tx.write(vec[k], m);
      });
      delete old;  // safe: commit quiesced, and olds are only reached via TM
      ++seq;
    }
  });

  std::thread proxy([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      Msg* got = nullptr;
      const int k = 1;
      atomic_do([&](TxContext& tx) {
        got = tx.read(vec[k]);
        if (got) tx.write(vec[k], static_cast<Msg*>(nullptr));
      });
      if (got) {
        // Non-transactional use by the proxy.
        if ((got->payload ^ 0x77L) != got->check) corrupt.fetch_add(1);
        delete got;
      }
    }
  });

  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  stop.store(true);
  updater.join();
  proxy.join();
  for (auto& s : vec) delete s.unsafe_get();
  EXPECT_EQ(corrupt.load(), 0);
}

// ---------------------------------------------------------------------------
// Hot-path data structures (the O(1) read-own-write / read-filter overhaul)
// ---------------------------------------------------------------------------

TEST(AddrIndex, GrowthAndGenerationReset) {
  AddrIndex idx;
  constexpr int kN = 5000;  // forces several doublings past the initial 64
  std::vector<std::uint64_t> words(kN);
  for (int i = 0; i < kN; ++i)
    idx.insert(&words[static_cast<std::size_t>(i)],
               static_cast<std::uint32_t>(i));
  for (int i = 0; i < kN; ++i)
    EXPECT_EQ(idx.find(&words[static_cast<std::size_t>(i)]),
              static_cast<std::uint32_t>(i));
  // In-place overwrite within one transaction.
  idx.insert(&words[3], 777);
  EXPECT_EQ(idx.find(&words[3]), 777u);
  // O(1) reset: everything from the old generation is stale.
  idx.new_txn();
  EXPECT_EQ(idx.find(&words[0]), AddrIndex::kNone);
  EXPECT_EQ(idx.find(&words[kN - 1]), AddrIndex::kNone);
  idx.insert(&words[7], 42);
  EXPECT_EQ(idx.find(&words[7]), 42u);
  EXPECT_EQ(idx.find(&words[8]), AddrIndex::kNone);
}

TEST(HtmReadOwnWrite, NewestOfManyBufferedWritesWins) {
  ModeGuard g(ExecMode::Htm);
  reset_stats();
  tm_var<long> x(0), y(0);
  atomic_do([&](TxContext& tx) {
    for (long k = 1; k <= 100; ++k) {
      tx.write(x, k);
      // Must come from the write buffer (memory still holds 0) and must be
      // the newest buffered value, not an earlier one.
      EXPECT_EQ(tx.read(x), k);
    }
    tx.write(y, tx.read(x) * 2);
  });
  EXPECT_EQ(x.unsafe_get(), 100);
  EXPECT_EQ(y.unsafe_get(), 200);
  const auto s = aggregate_stats();
  EXPECT_GE(s.htm_rw_hits, 101u);
}

TEST(MlWtDedupValidation, SelfOwnedIncarnationMismatchStillAborts) {
  // The repeat-read filter must not weaken validation: a transaction that
  // read x, then locked x's orec AFTER a peer's abort-release bumped its
  // incarnation, stashes prev != seen and must fail commit validation even
  // though the duplicate read of x was absorbed by the filter.
  ModeGuard g(ExecMode::StmCondVar, QuiescePolicy::Never, false);
  reset_stats();
  // Contiguous words are orec-disjoint, so the clock mover cannot alias x.
  auto pool = std::make_unique<tm_var<long>[]>(2);
  pool[0].unsafe_set(1);  // x
  pool[1].unsafe_set(0);  // clock mover
  std::atomic<bool> a_read{false}, peer_done{false};
  std::atomic<int> a_attempts{0};

  std::thread a([&] {
    long got = 0;
    atomic_do([&](TxContext& tx) {
      const int n = a_attempts.fetch_add(1) + 1;
      got = tx.read(pool[0]);
      // Duplicate read: same orec, same observation -> one logged entry.
      EXPECT_EQ(tx.read(pool[0]), got);
      if (n == 1) {
        a_read.store(true);
        await_flag(peer_done);
      }
      tx.write(pool[0], got + 10);
    });
    EXPECT_EQ(got, 1);
  });

  await_flag(a_read);
  // Peer speculatively writes x and restarts: the abort-release restores
  // the value but bumps the orec's incarnation (ABA protection).
  std::atomic<int> peer_runs{0};
  atomic_do([&](TxContext& tx) {
    if (peer_runs.fetch_add(1) == 0) {
      tx.write(pool[0], 99L);
      tx.restart();
    }
  });
  // Move the clock so A's commit cannot take the "nobody committed since
  // our snapshot" validation shortcut.
  atomic_do([&](TxContext& tx) { tx.write(pool[1], 1L); });
  peer_done.store(true);
  a.join();

  EXPECT_EQ(a_attempts.load(), 2);
  const auto s = aggregate_stats();
  EXPECT_GE(s.aborts[static_cast<int>(AbortCause::Validation)], 1u);
  EXPECT_GE(s.stm_read_dedup, 2u);  // the repeat read deduped on both attempts
  EXPECT_EQ(pool[0].unsafe_get(), 11);
}

TEST(MlWtLargeReadSet, TenKDistinctWordReadSetCommits) {
  ModeGuard g(ExecMode::StmCondVar, QuiescePolicy::Never, false);
  reset_stats();
  // > 10k distinct words but < kOrecCount, and contiguous: every word maps
  // to its own orec, including the clock-mover word at the end.
  constexpr int kN = 12000;
  auto pool = std::make_unique<tm_var<long>[]>(kN + 1);
  for (int i = 0; i <= kN; ++i) pool[i].unsafe_set(1);
  tm_var<long>& mover = pool[kN];
  std::atomic<bool> read_done{false}, clock_moved{false};
  std::atomic<int> attempts{0};

  std::thread helper([&] {
    await_flag(read_done);
    atomic_do([&](TxContext& tx) { tx.write(mover, 2L); });
    clock_moved.store(true);
  });

  long sum1 = 0, sum2 = 0;
  atomic_do([&](TxContext& tx) {
    attempts.fetch_add(1);
    sum1 = sum2 = 0;
    for (int i = 0; i < kN; ++i) sum1 += tx.read(pool[i]);
    // Second pass is fully absorbed by the repeat-read filter.
    for (int i = 0; i < kN; ++i) sum2 += tx.read(pool[i]);
    // The helper's disjoint commit moves the clock, so our commit runs full
    // validation over all 12000 entries.
    if (!read_done.exchange(true)) await_flag(clock_moved);
    tx.write(pool[0], sum1);
    tx.write(pool[kN - 1], sum2);
  });
  helper.join();

  EXPECT_EQ(attempts.load(), 1) << "disjoint clock movement must not abort";
  EXPECT_EQ(sum1, kN);
  EXPECT_EQ(sum2, kN);
  EXPECT_EQ(pool[0].unsafe_get(), kN);
  EXPECT_EQ(pool[kN - 1].unsafe_get(), kN);
  EXPECT_EQ(mover.unsafe_get(), 2);
  const auto s = aggregate_stats();
  EXPECT_GE(s.stm_read_dedup, static_cast<std::uint64_t>(kN));
  EXPECT_EQ(s.aborts_total(), 0u);
}

// ---------------------------------------------------------------------------
// Bookkeeping invariants
// ---------------------------------------------------------------------------

TEST(StatsInvariant, StartsEqualCommitsPlusAborts) {
  ModeGuard g(ExecMode::StmCondVar);
  reset_stats();
  tm_var<long> v(0);
  testing::run_threads(4, [&](int) {
    for (int i = 0; i < 1000; ++i)
      atomic_do([&](TxContext& tx) { tx.write(v, tx.read(v) + 1); });
  });
  const auto s = aggregate_stats();
  EXPECT_EQ(s.txn_starts, s.commits + s.aborts_total());
}

}  // namespace
}  // namespace tle
