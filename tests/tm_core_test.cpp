// Unit tests for the TM runtime core: metadata encodings, single-thread
// transactional semantics, rollback, allocation logs, deferred actions,
// NoQuiesce accounting, serial fallback, and multi-threaded atomicity in
// every execution mode.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>

#include "test_support.hpp"
#include "tm/meta.hpp"
#include "tm/serial_lock.hpp"

namespace tle {
namespace {

using testing::kAllModes;
using testing::kElisionModes;
using testing::ModeGuard;
using testing::run_threads;

// ---------------------------------------------------------------------------
// Metadata encodings
// ---------------------------------------------------------------------------

TEST(OrecEncoding, TimestampRoundTrip) {
  for (std::uint64_t ts : {0ULL, 1ULL, 42ULL, (1ULL << 40)}) {
    for (std::uint64_t inc : {0ULL, 1ULL, 2046ULL}) {
      const std::uint64_t v = orec_make(ts, inc);
      EXPECT_FALSE(orec_locked(v));
      EXPECT_EQ(orec_timestamp(v), ts);
      EXPECT_EQ(orec_incarnation(v), inc);
    }
  }
}

TEST(OrecEncoding, LockWordRoundTrip) {
  alignas(8) char dummy[sizeof(TxDesc)];
  auto* tx = reinterpret_cast<TxDesc*>(dummy);
  const std::uint64_t w = orec_lockword(tx);
  EXPECT_TRUE(orec_locked(w));
  EXPECT_EQ(orec_owner(w), tx);
}

TEST(OrecEncoding, AbortReleaseBumpsIncarnation) {
  const std::uint64_t v = orec_make(7, 5);
  const std::uint64_t a = orec_abort_release(v);
  EXPECT_EQ(orec_timestamp(a), 7u);
  EXPECT_EQ(orec_incarnation(a), 6u);
}

TEST(OrecEncoding, CommitReleaseKeepsIncarnation) {
  const std::uint64_t v = orec_make(7, 5);
  const std::uint64_t c = orec_commit_release(v, 99);
  EXPECT_EQ(orec_timestamp(c), 99u);
  EXPECT_EQ(orec_incarnation(c), 5u);
}

TEST(OrecTable, DistinctWordsUsuallyMapToDistinctOrecs) {
  std::uint64_t words[16];
  std::set<const void*> orecs;
  for (auto& w : words) orecs.insert(&orec_for(&w));
  // 16 consecutive words over 64K orecs: collisions should be rare.
  EXPECT_GE(orecs.size(), 14u);
}

TEST(TmVar, EncodesSmallTypes) {
  tm_var<int> i(-7);
  EXPECT_EQ(i.unsafe_get(), -7);
  tm_var<double> d(3.25);
  EXPECT_EQ(d.unsafe_get(), 3.25);
  int x = 0;
  tm_var<int*> p(&x);
  EXPECT_EQ(p.unsafe_get(), &x);
  tm_var<bool> b(true);
  EXPECT_TRUE(b.unsafe_get());
}

// ---------------------------------------------------------------------------
// Line tracker (HTM capacity model)
// ---------------------------------------------------------------------------

TEST(LineTracker, SameLineNeverOverflows) {
  LineTracker t;
  t.configure(4, 2);
  t.new_txn();
  alignas(64) char buf[64];
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(t.touch(buf + (i % 8)));
  EXPECT_EQ(t.distinct_lines(), 1u);
}

TEST(LineTracker, OverflowsWhenSetIsFull) {
  LineTracker t;
  t.configure(1, 2);  // one set, two ways: third distinct line must fail
  t.new_txn();
  std::vector<char> arena(64 * 16);
  int ok = 0;
  for (int i = 0; i < 16; ++i)
    if (t.touch(arena.data() + 64 * i)) ++ok;
  EXPECT_EQ(ok, 2);
}

TEST(LineTracker, NewTxnResetsTracking) {
  LineTracker t;
  t.configure(1, 1);
  t.new_txn();
  std::vector<char> arena(128);
  EXPECT_TRUE(t.touch(arena.data()));
  EXPECT_FALSE(t.touch(arena.data() + 64));
  t.new_txn();
  EXPECT_TRUE(t.touch(arena.data() + 64));
}

// ---------------------------------------------------------------------------
// Single-thread transactional semantics (parameterized over modes)
// ---------------------------------------------------------------------------

class AllModes : public ::testing::TestWithParam<ExecMode> {};

INSTANTIATE_TEST_SUITE_P(Tm, AllModes, ::testing::ValuesIn(kAllModes),
                         [](const auto& info) {
                           std::string s = to_string(info.param);
                           for (auto& c : s)
                             if (!isalnum(static_cast<unsigned char>(c))) c = '_';
                           return s;
                         });

TEST_P(AllModes, ReadWriteRoundTrip) {
  ModeGuard g(GetParam());
  tm_var<int> v(1);
  atomic_do([&](TxContext& tx) {
    EXPECT_EQ(tx.read(v), 1);
    tx.write(v, 2);
    EXPECT_EQ(tx.read(v), 2);  // read-own-write
  });
  EXPECT_EQ(v.unsafe_get(), 2);
}

TEST_P(AllModes, MultipleWritesLastWins) {
  ModeGuard g(GetParam());
  tm_var<int> v(0);
  atomic_do([&](TxContext& tx) {
    for (int i = 1; i <= 5; ++i) tx.write(v, i);
  });
  EXPECT_EQ(v.unsafe_get(), 5);
}

TEST_P(AllModes, FlatNestingSubsumes) {
  ModeGuard g(GetParam());
  tm_var<int> v(0);
  atomic_do([&](TxContext&) {
    atomic_do([&](TxContext& inner) { inner.write(v, 41); });
    atomic_do([&](TxContext& inner) { inner.write(v, inner.read(v) + 1); });
  });
  EXPECT_EQ(v.unsafe_get(), 42);
}

TEST_P(AllModes, ExceptionCancelsAndThrows) {
  ModeGuard g(GetParam());
  tm_var<int> v(10);
  EXPECT_THROW(atomic_do([&](TxContext& tx) {
                 tx.write(v, 99);
                 throw std::runtime_error("cancel");
               }),
               std::runtime_error);
  if (GetParam() == ExecMode::Lock) {
    // Lock mode is not speculative: like a real critical section, effects
    // before the throw are NOT undone.
    EXPECT_EQ(v.unsafe_get(), 99);
  } else {
    EXPECT_EQ(v.unsafe_get(), 10) << "speculative write must be rolled back";
  }
}

TEST_P(AllModes, DeferredActionRunsAfterCommit) {
  ModeGuard g(GetParam());
  tm_var<int> v(0);
  int log = 0;
  atomic_do([&](TxContext& tx) {
    tx.write(v, 1);
    tx.defer([&] {
      // By deferral time the transaction is committed and visible.
      EXPECT_EQ(v.unsafe_get(), 1);
      ++log;
    });
    EXPECT_EQ(log, 0) << "deferred action must not run inside the txn";
  });
  EXPECT_EQ(log, 1);
}

TEST_P(AllModes, DeferredActionsRunInFifoOrder) {
  ModeGuard g(GetParam());
  std::vector<int> order;
  atomic_do([&](TxContext& tx) {
    tx.defer([&] { order.push_back(1); });
    tx.defer([&] { order.push_back(2); });
    tx.defer([&] { order.push_back(3); });
  });
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST_P(AllModes, DeferredActionDroppedOnExceptionCancel) {
  ModeGuard g(GetParam());
  if (GetParam() == ExecMode::Lock) GTEST_SKIP() << "no cancel in Lock mode";
  int ran = 0;
  EXPECT_THROW(atomic_do([&](TxContext& tx) {
                 tx.defer([&] { ++ran; });
                 throw std::logic_error("x");
               }),
               std::logic_error);
  EXPECT_EQ(ran, 0);
}

TEST_P(AllModes, SynchronizedBlockIsIrrevocable) {
  ModeGuard g(GetParam());
  bool was_irrevocable = false;
  synchronized_do([&](TxContext& tx) { was_irrevocable = tx.is_irrevocable(); });
  EXPECT_TRUE(was_irrevocable);
}

TEST_P(AllModes, SynchronizedNestedInAtomicForcesSerial) {
  ModeGuard g(GetParam());
  reset_stats();
  tm_var<int> v(0);
  atomic_do([&](TxContext& tx) {
    tx.write(v, 5);
    synchronized_do([&](TxContext& inner) {
      EXPECT_TRUE(inner.is_irrevocable());
      inner.write(v, inner.read(v) + 1);
    });
  });
  EXPECT_EQ(v.unsafe_get(), 6);
  if (GetParam() != ExecMode::Lock) {
    const auto s = aggregate_stats();
    EXPECT_GE(s.serial_commits, 1u) << "must have fallen back to serial";
    EXPECT_GE(s.aborts[static_cast<int>(AbortCause::Unsafe)], 1u);
  }
}

TEST_P(AllModes, AllocSurvivesCommit) {
  ModeGuard g(GetParam());
  struct Node {
    int payload;
  };
  Node* made = nullptr;
  tm_var<Node*> slot(nullptr);
  atomic_do([&](TxContext& tx) {
    made = tx.create<Node>(Node{7});
    tx.write(slot, made);
  });
  ASSERT_NE(slot.unsafe_get(), nullptr);
  EXPECT_EQ(slot.unsafe_get()->payload, 7);
  atomic_do([&](TxContext& tx) {
    tx.destroy(tx.read(slot));
    tx.write(slot, static_cast<Node*>(nullptr));
  });
  EXPECT_EQ(slot.unsafe_get(), nullptr);
}

TEST_P(AllModes, AllocRolledBackOnCancel) {
  ModeGuard g(GetParam());
  if (GetParam() == ExecMode::Lock) GTEST_SKIP() << "no cancel in Lock mode";
  struct Node {
    int payload;
  };
  // ASan/valgrind would catch the leak if rollback failed to free.
  EXPECT_THROW(atomic_do([&](TxContext& tx) {
                 (void)tx.create<Node>(Node{1});
                 throw std::bad_alloc();
               }),
               std::bad_alloc);
}

TEST_P(AllModes, RestartRetriesFromTop) {
  ModeGuard g(GetParam());
  if (GetParam() == ExecMode::Lock) GTEST_SKIP() << "no speculation to restart";
  int attempts = 0;
  tm_var<int> v(0);
  atomic_do([&](TxContext& tx) {
    ++attempts;
    tx.write(v, attempts);
    if (attempts < 3) tx.restart();
  });
  EXPECT_EQ(attempts, 3);
  EXPECT_EQ(v.unsafe_get(), 3);
}

// ---------------------------------------------------------------------------
// NoQuiesce accounting (Section IV-B semantics)
// ---------------------------------------------------------------------------

TEST(NoQuiesce, HonoredOnlyWhenPolicyAllows) {
  tm_var<int> v(0);
  {
    ModeGuard g(ExecMode::StmCondVar);  // policy does NOT honor requests
    reset_stats();
    atomic_do([&](TxContext& tx) {
      tx.no_quiesce();
      tx.write(v, 1);
    });
    const auto s = aggregate_stats();
    EXPECT_EQ(s.noquiesce_requests, 1u);
    EXPECT_EQ(s.noquiesce_honored, 0u);
    EXPECT_GE(s.quiesce_calls, 1u);
  }
  {
    ModeGuard g(ExecMode::StmCondVarNoQ);  // honoring mode
    reset_stats();
    atomic_do([&](TxContext& tx) {
      tx.no_quiesce();
      tx.write(v, 2);
    });
    const auto s = aggregate_stats();
    EXPECT_EQ(s.noquiesce_honored, 1u);
    EXPECT_EQ(s.quiesce_calls, 0u);
  }
}

TEST(NoQuiesce, IgnoredWhenNested) {
  ModeGuard g(ExecMode::StmCondVarNoQ);
  reset_stats();
  tm_var<int> v(0);
  atomic_do([&](TxContext& tx) {
    tx.write(v, 1);
    atomic_do([&](TxContext& inner) { inner.no_quiesce(); });
  });
  const auto s = aggregate_stats();
  EXPECT_EQ(s.noquiesce_ignored_nested, 1u);
  EXPECT_EQ(s.noquiesce_honored, 0u);
  EXPECT_GE(s.quiesce_calls, 1u) << "outer txn must still quiesce";
}

TEST(NoQuiesce, DeniedWhenTransactionFreesMemory) {
  ModeGuard g(ExecMode::StmCondVarNoQ);
  reset_stats();
  tm_var<int*> slot(nullptr);
  atomic_do([&](TxContext& tx) {
    tx.write(slot, tx.create<int>(5));
  });
  atomic_do([&](TxContext& tx) {
    tx.no_quiesce();
    tx.destroy(tx.read(slot));
    tx.write(slot, static_cast<int*>(nullptr));
  });
  const auto s = aggregate_stats();
  EXPECT_EQ(s.noquiesce_ignored_free, 1u)
      << "freeing transactions must quiesce (allocator rule)";
  EXPECT_GE(s.quiesce_calls, 1u);
  EXPECT_EQ(s.tm_frees, 1u);
}

TEST(NoQuiesce, ReadOnlySkipsQuiesceUnderWriterOnlyPolicy) {
  ModeGuard g(ExecMode::StmCondVar, QuiescePolicy::WriterOnly, false);
  reset_stats();
  tm_var<int> v(3);
  int out = 0;
  atomic_do([&](TxContext& tx) { out = tx.read(v); });
  EXPECT_EQ(out, 3);
  EXPECT_EQ(aggregate_stats().quiesce_calls, 0u);
}

TEST(NoQuiesce, NeverPolicySkipsAllQuiesce) {
  ModeGuard g(ExecMode::StmCondVar, QuiescePolicy::Never, false);
  reset_stats();
  tm_var<int> v(0);
  atomic_do([&](TxContext& tx) { tx.write(v, 1); });
  EXPECT_EQ(aggregate_stats().quiesce_calls, 0u);
}

TEST(NoQuiesce, HtmNeverQuiesces) {
  ModeGuard g(ExecMode::Htm);
  reset_stats();
  tm_var<int> v(0);
  atomic_do([&](TxContext& tx) { tx.write(v, 1); });
  EXPECT_EQ(aggregate_stats().quiesce_calls, 0u)
      << "strongly isolated HTM requires no quiescence (paper §IV)";
}

// ---------------------------------------------------------------------------
// HTM capacity + fallback
// ---------------------------------------------------------------------------

TEST(HtmCapacity, LargeWriteSetFallsBackToSerial) {
  ModeGuard g(ExecMode::Htm);
  config().htm_write_sets = 2;
  config().htm_write_ways = 2;  // at most 4 written lines speculative
  reset_stats();
  constexpr int kN = 64;
  static tm_var<int> vars[kN];  // static: spread over many cache lines
  atomic_do([&](TxContext& tx) {
    for (int i = 0; i < kN; ++i) tx.write(vars[i], i);
  });
  for (int i = 0; i < kN; ++i) EXPECT_EQ(vars[i].unsafe_get(), i);
  const auto s = aggregate_stats();
  EXPECT_GE(s.aborts[static_cast<int>(AbortCause::Capacity)], 1u);
  EXPECT_GE(s.serial_commits, 1u);
}

TEST(HtmCapacity, SmallTransactionsStaySpeculative) {
  ModeGuard g(ExecMode::Htm);
  reset_stats();
  tm_var<int> v(0);
  for (int i = 0; i < 100; ++i)
    atomic_do([&](TxContext& tx) { tx.write(v, tx.read(v) + 1); });
  EXPECT_EQ(v.unsafe_get(), 100);
  const auto s = aggregate_stats();
  EXPECT_EQ(s.serial_commits, 0u);
  EXPECT_EQ(s.commits, 100u);
}

// ---------------------------------------------------------------------------
// Multi-threaded atomicity (the classic invariants), all modes
// ---------------------------------------------------------------------------

TEST_P(AllModes, ConcurrentCounterIsExact) {
  ModeGuard g(GetParam());
  tm_var<long> counter(0);
  constexpr int kThreads = 4;
  constexpr int kIncrements = 2000;
  run_threads(kThreads, [&](int) {
    for (int i = 0; i < kIncrements; ++i)
      atomic_do([&](TxContext& tx) { tx.write(counter, tx.read(counter) + 1); });
  });
  EXPECT_EQ(counter.unsafe_get(), long{kThreads} * kIncrements);
}

TEST_P(AllModes, BankTransferPreservesTotal) {
  ModeGuard g(GetParam());
  constexpr int kAccounts = 16;
  constexpr long kInitial = 1000;
  static tm_var<long> accounts[kAccounts];
  for (auto& a : accounts) a.unsafe_set(kInitial);
  run_threads(4, [&](int t) {
    Xoshiro256 rng(1000 + static_cast<unsigned>(t));
    for (int i = 0; i < 2000; ++i) {
      const int from = static_cast<int>(rng.below(kAccounts));
      const int to = static_cast<int>(rng.below(kAccounts));
      const long amt = static_cast<long>(rng.below(20));
      atomic_do([&](TxContext& tx) {
        tx.write(accounts[from], tx.read(accounts[from]) - amt);
        tx.write(accounts[to], tx.read(accounts[to]) + amt);
      });
    }
  });
  long total = 0;
  for (auto& a : accounts) total += a.unsafe_get();
  EXPECT_EQ(total, kInitial * kAccounts);
}

TEST_P(AllModes, ReadersNeverSeeTornInvariant) {
  // Writer keeps x == y; readers must never observe x != y.
  ModeGuard g(GetParam());
  tm_var<long> x(0), y(0);
  std::atomic<bool> stop{false};
  std::atomic<long> violations{0};
  std::thread writer([&] {
    for (int i = 1; i <= 4000; ++i) {
      atomic_do([&](TxContext& tx) {
        tx.write(x, static_cast<long>(i));
        tx.write(y, static_cast<long>(i));
      });
    }
    stop.store(true);
  });
  run_threads(2, [&](int) {
    while (!stop.load()) {
      long a = 0, b = 0;
      atomic_do([&](TxContext& tx) {
        a = tx.read(x);
        b = tx.read(y);
      });
      if (a != b) violations.fetch_add(1);
    }
  });
  writer.join();
  EXPECT_EQ(violations.load(), 0);
}

// ---------------------------------------------------------------------------
// Serial lock
// ---------------------------------------------------------------------------

TEST(SerialLock, WriterExcludesWriters) {
  std::atomic<int> inside{0};
  std::atomic<bool> overlap{false};
  run_threads(4, [&](int) {
    ThreadSlot& me = my_slot();
    for (int i = 0; i < 500; ++i) {
      serial_lock().write_lock(me);
      if (inside.fetch_add(1) != 0) overlap.store(true);
      inside.fetch_sub(1);
      serial_lock().write_unlock(me);
    }
  });
  EXPECT_FALSE(overlap.load());
}

TEST(SerialLock, WriterExcludesReaders) {
  std::atomic<bool> writer_in{false};
  std::atomic<bool> raced{false};
  std::atomic<bool> stop{false};
  std::thread readers([&] {
    ThreadSlot& me = my_slot();
    while (!stop.load()) {
      serial_lock().read_lock(me);
      if (writer_in.load()) raced.store(true);
      serial_lock().read_unlock(me);
    }
  });
  {
    ThreadSlot& me = my_slot();
    for (int i = 0; i < 300; ++i) {
      serial_lock().write_lock(me);
      writer_in.store(true);
      for (int k = 0; k < 50; ++k) std::atomic_signal_fence(std::memory_order_seq_cst);
      writer_in.store(false);
      serial_lock().write_unlock(me);
    }
  }
  stop.store(true);
  readers.join();
  EXPECT_FALSE(raced.load());
}

// ---------------------------------------------------------------------------
// Stats plumbing
// ---------------------------------------------------------------------------

TEST(Stats, SnapshotCountsCommitsAndReadOnly) {
  ModeGuard g(ExecMode::StmCondVar);
  reset_stats();
  tm_var<int> v(1);
  atomic_do([&](TxContext& tx) { (void)tx.read(v); });
  atomic_do([&](TxContext& tx) { tx.write(v, 2); });
  const auto s = aggregate_stats();
  EXPECT_EQ(s.commits, 2u);
  EXPECT_EQ(s.commits_readonly, 1u);
  EXPECT_EQ(s.txn_starts, 2u);
}

TEST(Stats, ReportIsNonEmptyAndMentionsAborts) {
  const auto s = aggregate_stats();
  const std::string r = s.report();
  EXPECT_NE(r.find("aborts"), std::string::npos);
  EXPECT_NE(r.find("quiesce"), std::string::npos);
}

TEST(Stats, LockModeCountsSections) {
  ModeGuard g(ExecMode::Lock);
  reset_stats();
  elidable_mutex m;
  for (int i = 0; i < 5; ++i) critical(m, [](TxContext&) {});
  EXPECT_EQ(aggregate_stats().lock_sections, 5u);
}

// ---------------------------------------------------------------------------
// critical() — the TLE entry point
// ---------------------------------------------------------------------------

TEST_P(AllModes, CriticalSectionCounterIsExact) {
  ModeGuard g(GetParam());
  elidable_mutex m;
  tm_var<long> counter(0);
  run_threads(4, [&](int) {
    for (int i = 0; i < 1500; ++i)
      critical(m, [&](TxContext& tx) { tx.write(counter, tx.read(counter) + 1); });
  });
  EXPECT_EQ(counter.unsafe_get(), 6000);
}

TEST_P(AllModes, TwoMutexesTwoStructuresStayConsistent) {
  // The Section IV-A queue+stack example: two disjoint structures guarded by
  // two locks; under elision both become transactions on one heap.
  ModeGuard g(GetParam());
  elidable_mutex mq, ms;
  tm_var<long> queue_size(0), stack_size(0);
  run_threads(4, [&](int t) {
    for (int i = 0; i < 1000; ++i) {
      if ((t + i) % 2 == 0)
        critical(mq, [&](TxContext& tx) {
          tx.write(queue_size, tx.read(queue_size) + 1);
        });
      else
        critical(ms, [&](TxContext& tx) {
          tx.write(stack_size, tx.read(stack_size) + 1);
        });
    }
  });
  EXPECT_EQ(queue_size.unsafe_get() + stack_size.unsafe_get(), 4000);
}

TEST(Critical, NestedLockSectionsRunInline) {
  ModeGuard g(ExecMode::Lock);
  elidable_mutex outer, inner;
  int result = 0;
  critical(outer, [&](TxContext&) {
    critical(inner, [&](TxContext&) { result = 42; });
  });
  EXPECT_EQ(result, 42);
}

TEST(Fence, TmFenceReturnsWhenIdle) {
  tm_fence();  // no transactions in flight: must not block
  SUCCEED();
}

}  // namespace
}  // namespace tle
