// Tests for the util module: RNG determinism and distribution, running
// statistics, histograms, the text table renderer, the spin barrier, and
// environment knobs.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <set>
#include <thread>
#include <vector>

#include "util/barrier.hpp"
#include "util/env.hpp"
#include "util/rng.hpp"
#include "util/summary.hpp"
#include "util/table.hpp"
#include "util/timing.hpp"

namespace tle {
namespace {

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

TEST(Rng, DeterministicForSeed) {
  Xoshiro256 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a() == b();
  EXPECT_LT(same, 2);
}

TEST(Rng, BelowStaysInRange) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.below(17), 17u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BelowCoversAllBuckets) {
  Xoshiro256 rng(8);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, UniformInUnitInterval) {
  Xoshiro256 rng(9);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ChanceMatchesProbability) {
  Xoshiro256 rng(10);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.chance(0.25);
  EXPECT_NEAR(hits / 20000.0, 0.25, 0.02);
}

TEST(Rng, SplitmixAdvancesState) {
  std::uint64_t s = 5;
  const auto a = splitmix64(s);
  const auto b = splitmix64(s);
  EXPECT_NE(a, b);
}

// ---------------------------------------------------------------------------
// RunningStat / histogram
// ---------------------------------------------------------------------------

TEST(RunningStat, BasicMoments) {
  RunningStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 0.01);  // sample stddev
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(RunningStat, MergeEqualsCombinedStream) {
  RunningStat a, b, all;
  Xoshiro256 rng(11);
  for (int i = 0; i < 500; ++i) {
    const double x = rng.uniform() * 100;
    (i % 2 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(RunningStat, EmptyIsZero) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(Log2Histogram, BucketsAndQuantiles) {
  Log2Histogram h;
  for (std::uint64_t i = 0; i < 1000; ++i) h.add(i);
  EXPECT_EQ(h.total(), 1000u);
  EXPECT_LE(h.quantile(0.5), 1024u);
  EXPECT_GE(h.quantile(0.99), 512u);
}

// ---------------------------------------------------------------------------
// TextTable
// ---------------------------------------------------------------------------

TEST(TextTable, AlignsColumns) {
  TextTable t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer-name", "23456"});
  const std::string out = t.render();
  EXPECT_NE(out.find("longer-name"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
  // Every line trims trailing spaces.
  for (std::size_t pos = 0; (pos = out.find(" \n", pos)) != std::string::npos;)
    FAIL() << "trailing whitespace in rendered table";
}

TEST(TextTable, StrfFormats) {
  EXPECT_EQ(strf("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(strf("%.2f", 1.005), "1.00");
}

// ---------------------------------------------------------------------------
// SpinBarrier
// ---------------------------------------------------------------------------

TEST(SpinBarrier, PhasesStaySynchronized) {
  constexpr int kThreads = 4;
  constexpr int kPhases = 50;
  SpinBarrier barrier(kThreads);
  std::atomic<int> phase_counts[kPhases] = {};
  std::vector<std::thread> ts;
  std::atomic<bool> violation{false};
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&] {
      for (int p = 0; p < kPhases; ++p) {
        phase_counts[p].fetch_add(1);
        barrier.arrive_and_wait();
        // After the barrier, the whole phase must be accounted for.
        if (phase_counts[p].load() != kThreads) violation.store(true);
        barrier.arrive_and_wait();
      }
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_FALSE(violation.load());
}

// ---------------------------------------------------------------------------
// Env knobs
// ---------------------------------------------------------------------------

TEST(Env, ParsesAndDefaults) {
  ::setenv("TLE_TEST_KNOB", "123", 1);
  EXPECT_EQ(env_long("TLE_TEST_KNOB", 7), 123);
  ::setenv("TLE_TEST_KNOB", "not-a-number", 1);
  EXPECT_EQ(env_long("TLE_TEST_KNOB", 7), 7);
  ::unsetenv("TLE_TEST_KNOB");
  EXPECT_EQ(env_long("TLE_TEST_KNOB", 7), 7);
  ::setenv("TLE_TEST_KNOB", "2.5", 1);
  EXPECT_DOUBLE_EQ(env_double("TLE_TEST_KNOB", 1.0), 2.5);
  ::setenv("TLE_TEST_KNOB", "abc", 1);
  EXPECT_EQ(env_str("TLE_TEST_KNOB", "z"), "abc");
  ::unsetenv("TLE_TEST_KNOB");
  EXPECT_EQ(env_str("TLE_TEST_KNOB", "z"), "z");
}

// ---------------------------------------------------------------------------
// Stopwatch
// ---------------------------------------------------------------------------

TEST(Stopwatch, MeasuresElapsedTime) {
  Stopwatch sw;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_GE(sw.seconds(), 0.015);
  EXPECT_GE(sw.nanos(), 15u * 1000 * 1000);
  sw.reset();
  EXPECT_LT(sw.seconds(), 0.015);
}

}  // namespace
}  // namespace tle
