// Cross-module integration: both applications running back-to-back in one
// process under every mode, algorithm switches between runs (including the
// gl_wt method group on a real application), and encoder→decoder→codec
// interplay.
#include <gtest/gtest.h>

#include "pipez/pipeline.hpp"
#include "test_support.hpp"
#include "videnc/decoder.hpp"
#include "videnc/encoder.hpp"

namespace tle {
namespace {

using testing::kAllModes;
using testing::ModeGuard;

videnc::EncoderConfig small_video() {
  videnc::EncoderConfig cfg;
  cfg.width = 96;
  cfg.height = 64;
  cfg.frames = 4;
  cfg.gop = 4;
  cfg.search_range = 4;
  cfg.worker_threads = 2;
  cfg.frame_threads = 2;
  return cfg;
}

TEST(AppsIntegration, BothAppsRunConsecutivelyInEveryMode) {
  const auto corpus = pipez::make_corpus(150000, 99);
  pipez::Config pcfg;
  pcfg.worker_threads = 3;
  pcfg.block_size = 40000;

  std::vector<std::uint8_t> video_ref;
  std::vector<std::uint8_t> pipez_ref;
  for (ExecMode m : kAllModes) {
    ModeGuard g(m);
    // pipez roundtrip.
    const auto compressed = pipez::compress(corpus, pcfg);
    const auto back = pipez::decompress(compressed, pcfg);
    ASSERT_TRUE(back.ok) << to_string(m) << ": " << back.error;
    ASSERT_EQ(back.data, corpus) << to_string(m);
    if (pipez_ref.empty())
      pipez_ref = compressed;
    else
      EXPECT_EQ(compressed, pipez_ref) << to_string(m);
    // videnc encode.
    const auto enc = videnc::encode(small_video());
    ASSERT_FALSE(enc.bitstream.empty()) << to_string(m);
    if (video_ref.empty())
      video_ref = enc.bitstream;
    else
      EXPECT_EQ(enc.bitstream, video_ref) << to_string(m);
  }
}

TEST(AppsIntegration, GlWtRunsBothApplications) {
  // The gl_wt method group driving real applications, not just counters.
  ModeGuard g(ExecMode::StmCondVar);
  config().stm_algo = StmAlgo::GlWt;

  const auto corpus = pipez::make_corpus(100000, 5);
  pipez::Config pcfg;
  pcfg.worker_threads = 2;
  pcfg.block_size = 30000;
  const auto back = pipez::decompress(pipez::compress(corpus, pcfg), pcfg);
  ASSERT_TRUE(back.ok) << back.error;
  EXPECT_EQ(back.data, corpus);

  const auto enc = videnc::encode(small_video());
  EXPECT_GT(enc.stats.bits, 0u);

  // gl_wt output must equal ml_wt output (algorithms are interchangeable).
  config().stm_algo = StmAlgo::MlWt;
  const auto enc2 = videnc::encode(small_video());
  EXPECT_EQ(enc.bitstream, enc2.bitstream);
}

TEST(AppsIntegration, EncodeCompressDecodePipeline) {
  // Feed the video bitstream through the pipez compressor and back, then
  // decode it — two substrates composed end-to-end.
  ModeGuard g(ExecMode::Htm);
  videnc::EncoderConfig vcfg = small_video();
  vcfg.keep_recon = true;
  const auto enc = videnc::encode(vcfg);

  pipez::Config pcfg;
  pcfg.worker_threads = 2;
  pcfg.block_size = 8192;
  const auto compressed = pipez::compress(enc.bitstream, pcfg);
  const auto restored = pipez::decompress(compressed, pcfg);
  ASSERT_TRUE(restored.ok) << restored.error;
  ASSERT_EQ(restored.data, enc.bitstream);

  const auto dec = videnc::decode_video(restored.data, vcfg.width, vcfg.height);
  ASSERT_TRUE(dec.ok) << dec.error;
  ASSERT_EQ(dec.frames.size(), enc.recon.size());
  for (std::size_t i = 0; i < dec.frames.size(); ++i)
    EXPECT_EQ(dec.frames[i], enc.recon[i]);
}

TEST(AppsIntegration, RepeatedModeSwitchesLeaveNoResidue) {
  // Rapid mode flips between small workloads: stale descriptor state or
  // metadata (orecs, gl lock, htm sequence) would surface as aborts or
  // wrong results.
  const auto corpus = pipez::make_corpus(30000, 17);
  pipez::Config pcfg;
  pcfg.worker_threads = 2;
  pcfg.block_size = 10000;
  for (int round = 0; round < 3; ++round) {
    for (ExecMode m : kAllModes) {
      ModeGuard g(m);
      config().stm_algo = (round % 2) ? StmAlgo::GlWt : StmAlgo::MlWt;
      const auto back = pipez::decompress(pipez::compress(corpus, pcfg), pcfg);
      ASSERT_TRUE(back.ok) << "round " << round << " " << to_string(m);
      ASSERT_EQ(back.data, corpus);
    }
  }
}

}  // namespace
}  // namespace tle
