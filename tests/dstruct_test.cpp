// Tests for the transactional set data structures: reference-model property
// tests, structural invariants, and concurrent linearizability checks across
// every execution mode.
#include <gtest/gtest.h>

#include <atomic>
#include <set>

#include "dstruct/tm_hash_set.hpp"
#include "dstruct/tm_list_set.hpp"
#include "dstruct/tm_rbtree_set.hpp"
#include "dstruct/tm_skiplist_set.hpp"
#include "test_support.hpp"
#include "util/rng.hpp"

namespace tle {
namespace {

using testing::kAllModes;
using testing::ModeGuard;
using testing::run_threads;

// ---------------------------------------------------------------------------
// Generic checkers
// ---------------------------------------------------------------------------

/// Random single-threaded op sequence cross-checked against std::set.
template <typename SetT>
void reference_check(ExecMode mode, int ops, long keyspace, std::uint64_t seed) {
  ModeGuard g(mode);
  SetT s;
  std::set<long> ref;
  Xoshiro256 rng(seed);
  for (int i = 0; i < ops; ++i) {
    const long key = static_cast<long>(rng.below(static_cast<std::uint64_t>(keyspace)));
    switch (rng.below(3)) {
      case 0:
        ASSERT_EQ(s.insert(key), ref.insert(key).second) << "op " << i;
        break;
      case 1:
        ASSERT_EQ(s.remove(key), ref.erase(key) > 0) << "op " << i;
        break;
      default:
        ASSERT_EQ(s.contains(key), ref.count(key) > 0) << "op " << i;
        break;
    }
  }
  ASSERT_EQ(s.size_unsafe(), ref.size());
  for (long k = 0; k < keyspace; ++k) ASSERT_EQ(s.contains(k), ref.count(k) > 0);
}

/// Concurrent smoke: per-thread disjoint key ranges; every thread's inserts
/// must all be present, removals all absent, and sizes must add up.
template <typename SetT>
void disjoint_threads_check(ExecMode mode) {
  ModeGuard g(mode);
  SetT s;
  constexpr int kThreads = 4;
  constexpr long kPerThread = 64;
  run_threads(kThreads, [&](int t) {
    const long base = t * kPerThread;
    for (long i = 0; i < kPerThread; ++i) ASSERT_TRUE(s.insert(base + i));
    for (long i = 0; i < kPerThread; i += 2) ASSERT_TRUE(s.remove(base + i));
  });
  EXPECT_EQ(s.size_unsafe(),
            static_cast<std::size_t>(kThreads * kPerThread / 2));
  for (int t = 0; t < kThreads; ++t) {
    const long base = t * kPerThread;
    for (long i = 0; i < kPerThread; ++i)
      EXPECT_EQ(s.contains(base + i), i % 2 == 1);
  }
}

/// Contended stress: all threads hammer a small keyspace; afterwards the
/// net insert/remove effect per key must match a sequential replay invariant
/// (we verify a weaker but telling property: the structure's size equals the
/// count of keys reported present, and no operation result was impossible).
template <typename SetT>
void contended_stress(ExecMode mode, long keyspace, int ops_per_thread) {
  ModeGuard g(mode);
  SetT s;
  std::atomic<long> net{0};  // inserts-succeeded minus removes-succeeded
  run_threads(4, [&](int t) {
    Xoshiro256 rng(777 + static_cast<unsigned>(t));
    for (int i = 0; i < ops_per_thread; ++i) {
      const long key = static_cast<long>(rng.below(static_cast<std::uint64_t>(keyspace)));
      if (rng.chance(0.5)) {
        if (s.insert(key)) net.fetch_add(1);
      } else {
        if (s.remove(key)) net.fetch_sub(1);
      }
    }
  });
  // Successful inserts minus successful removes must equal the final size:
  // this catches lost updates, double-inserts, and phantom removals.
  EXPECT_EQ(static_cast<long>(s.size_unsafe()), net.load());
  long present = 0;
  for (long k = 0; k < keyspace; ++k) present += s.contains(k) ? 1 : 0;
  EXPECT_EQ(present, net.load());
}

// ---------------------------------------------------------------------------
// Parameterized over modes × structures
// ---------------------------------------------------------------------------

class DsModes : public ::testing::TestWithParam<ExecMode> {};

INSTANTIATE_TEST_SUITE_P(Dstruct, DsModes, ::testing::ValuesIn(kAllModes),
                         [](const auto& info) {
                           std::string s = to_string(info.param);
                           for (auto& c : s)
                             if (!isalnum(static_cast<unsigned char>(c))) c = '_';
                           return s;
                         });

TEST_P(DsModes, ListMatchesReferenceModel) {
  reference_check<TmListSet>(GetParam(), 3000, 64, 11);
}

TEST_P(DsModes, HashMatchesReferenceModel) {
  reference_check<TmHashSet>(GetParam(), 3000, 256, 22);
}

TEST_P(DsModes, RbTreeMatchesReferenceModel) {
  reference_check<TmRbTreeSet>(GetParam(), 3000, 256, 33);
}

TEST_P(DsModes, SkipListMatchesReferenceModel) {
  reference_check<TmSkipListSet>(GetParam(), 3000, 256, 44);
}

TEST_P(DsModes, ListDisjointThreads) { disjoint_threads_check<TmListSet>(GetParam()); }
TEST_P(DsModes, HashDisjointThreads) { disjoint_threads_check<TmHashSet>(GetParam()); }
TEST_P(DsModes, RbTreeDisjointThreads) {
  disjoint_threads_check<TmRbTreeSet>(GetParam());
}
TEST_P(DsModes, SkipListDisjointThreads) {
  disjoint_threads_check<TmSkipListSet>(GetParam());
}

TEST_P(DsModes, ListContendedStress) {
  contended_stress<TmListSet>(GetParam(), 64, 1500);
}
TEST_P(DsModes, HashContendedStress) {
  contended_stress<TmHashSet>(GetParam(), 256, 1500);
}
TEST_P(DsModes, RbTreeContendedStress) {
  contended_stress<TmRbTreeSet>(GetParam(), 256, 1500);
}
TEST_P(DsModes, SkipListContendedStress) {
  contended_stress<TmSkipListSet>(GetParam(), 256, 1500);
}

TEST_P(DsModes, SkipListInvariantsHoldAfterConcurrentOps) {
  ModeGuard g(GetParam());
  TmSkipListSet s;
  run_threads(4, [&](int t) {
    Xoshiro256 rng(70 + static_cast<unsigned>(t));
    for (int i = 0; i < 800; ++i) {
      const long key = static_cast<long>(rng.below(256));
      if (rng.chance(0.5))
        s.insert(key);
      else
        s.remove(key);
    }
  });
  EXPECT_TRUE(s.valid_unsafe());
}

// gl_wt method group driving every structure (the engines must be
// interchangeable under the same data-structure code).
TEST(GlWtStructures, AllFourSetsMatchReference) {
  ModeGuard g(ExecMode::StmCondVar);
  config().stm_algo = StmAlgo::GlWt;
  reference_check<TmListSet>(ExecMode::StmCondVar, 1500, 64, 101);
  config().stm_algo = StmAlgo::GlWt;
  reference_check<TmHashSet>(ExecMode::StmCondVar, 1500, 256, 102);
  config().stm_algo = StmAlgo::GlWt;
  reference_check<TmRbTreeSet>(ExecMode::StmCondVar, 1500, 256, 103);
  config().stm_algo = StmAlgo::GlWt;
  reference_check<TmSkipListSet>(ExecMode::StmCondVar, 1500, 256, 104);
}

TEST(GlWtStructures, ConcurrentRbTreeStress) {
  ModeGuard g(ExecMode::StmCondVar);
  config().stm_algo = StmAlgo::GlWt;
  TmRbTreeSet s;
  run_threads(4, [&](int t) {
    Xoshiro256 rng(90 + static_cast<unsigned>(t));
    for (int i = 0; i < 600; ++i) {
      const long key = static_cast<long>(rng.below(256));
      if (rng.chance(0.5))
        s.insert(key);
      else
        s.remove(key);
    }
  });
  EXPECT_TRUE(s.valid_unsafe());
}

TEST(SkipList, DeterministicShape) {
  ModeGuard g(ExecMode::Lock);
  TmSkipListSet a, b;
  // Same key set in different orders: identical structure by construction.
  for (long k = 0; k < 128; ++k) a.insert(k);
  for (long k = 127; k >= 0; --k) b.insert(k);
  EXPECT_TRUE(a.valid_unsafe());
  EXPECT_TRUE(b.valid_unsafe());
  EXPECT_EQ(a.size_unsafe(), b.size_unsafe());
}

// ---------------------------------------------------------------------------
// Structure-specific invariants
// ---------------------------------------------------------------------------

TEST_P(DsModes, ListStaysSorted) {
  ModeGuard g(GetParam());
  TmListSet s;
  Xoshiro256 rng(5);
  for (int i = 0; i < 500; ++i) s.insert(static_cast<long>(rng.below(64)));
  for (int i = 0; i < 200; ++i) s.remove(static_cast<long>(rng.below(64)));
  EXPECT_TRUE(s.sorted_unsafe());
}

TEST_P(DsModes, RbTreeInvariantsHoldAfterRandomOps) {
  ModeGuard g(GetParam());
  TmRbTreeSet s;
  Xoshiro256 rng(6);
  for (int round = 0; round < 20; ++round) {
    for (int i = 0; i < 100; ++i) s.insert(static_cast<long>(rng.below(256)));
    for (int i = 0; i < 60; ++i) s.remove(static_cast<long>(rng.below(256)));
    ASSERT_TRUE(s.valid_unsafe()) << "round " << round;
  }
}

TEST_P(DsModes, RbTreeInvariantsHoldAfterConcurrentOps) {
  ModeGuard g(GetParam());
  TmRbTreeSet s;
  run_threads(4, [&](int t) {
    Xoshiro256 rng(60 + static_cast<unsigned>(t));
    for (int i = 0; i < 800; ++i) {
      const long key = static_cast<long>(rng.below(256));
      if (rng.chance(0.5))
        s.insert(key);
      else
        s.remove(key);
    }
  });
  EXPECT_TRUE(s.valid_unsafe());
}

TEST(RbTree, AscendingAndDescendingInsertionsBalance) {
  ModeGuard g(ExecMode::Lock);
  {
    TmRbTreeSet s;
    for (long k = 0; k < 512; ++k) ASSERT_TRUE(s.insert(k));
    EXPECT_TRUE(s.valid_unsafe());
    EXPECT_EQ(s.size_unsafe(), 512u);
  }
  {
    TmRbTreeSet s;
    for (long k = 511; k >= 0; --k) ASSERT_TRUE(s.insert(k));
    EXPECT_TRUE(s.valid_unsafe());
    for (long k = 0; k < 512; ++k) ASSERT_TRUE(s.remove(k));
    EXPECT_EQ(s.size_unsafe(), 0u);
    EXPECT_TRUE(s.valid_unsafe());
  }
}

TEST(RbTree, RemoveFromEmptyAndDoubleInsert) {
  ModeGuard g(ExecMode::StmCondVar);
  TmRbTreeSet s;
  EXPECT_FALSE(s.remove(5));
  EXPECT_TRUE(s.insert(5));
  EXPECT_FALSE(s.insert(5));
  EXPECT_TRUE(s.remove(5));
  EXPECT_FALSE(s.remove(5));
  EXPECT_TRUE(s.valid_unsafe());
}

TEST(HashSet, SingleBucketDegeneratesToList) {
  ModeGuard g(ExecMode::StmCondVar);
  TmHashSet s(1);
  for (long k = 0; k < 32; ++k) EXPECT_TRUE(s.insert(k));
  EXPECT_EQ(s.size_unsafe(), 32u);
  for (long k = 0; k < 32; ++k) EXPECT_TRUE(s.contains(k));
  for (long k = 0; k < 32; k += 2) EXPECT_TRUE(s.remove(k));
  EXPECT_EQ(s.size_unsafe(), 16u);
}

// The Figure-5 SelectNoQ behaviour: reads and inserts skip quiescence, but
// successful removals (which free memory) still quiesce.
TEST(SelectNoQ, RemovalQuiescesInsertDoesNot) {
  ModeGuard g(ExecMode::StmCondVarNoQ);
  TmListSet s;
  reset_stats();
  s.insert(1);
  s.contains(1);
  auto mid = aggregate_stats();
  EXPECT_EQ(mid.quiesce_calls, 0u) << "insert/contains must skip quiescence";
  s.remove(1);
  auto fin = aggregate_stats();
  EXPECT_GE(fin.quiesce_calls, 1u) << "freeing removal must quiesce";
  EXPECT_GE(fin.noquiesce_honored, 2u);
}

}  // namespace
}  // namespace tle
