// Tests for the observability layer (PR: per-site profiler + enriched
// flight recorder + exports):
//   * StatsSnapshot/aggregate_stats cover every TxStats counter (X-macro),
//   * log2 latency histogram bucket boundaries,
//   * site registry identity and the id-clamp for out-of-range sites,
//   * per-site abort attribution for every AbortCause,
//   * trace ring wrap-around, field round-trip, and a concurrent
//     emit/snapshot/reset stress (TSan-clean),
//   * export smoke: tle-obs/v1 JSON, the ranked site table, Chrome trace.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "test_support.hpp"
#include "tm/obs/export.hpp"
#include "tm/obs/histogram.hpp"
#include "tm/obs/site.hpp"
#include "tm/registry.hpp"
#include "tm/trace.hpp"

namespace tle {
namespace {

using testing::ModeGuard;
using testing::run_threads;

/// Enables per-site profiling for the scope, starting from zeroed tables.
struct ProfileGuard {
  ProfileGuard() {
    obs::reset_site_profiles();
    obs::profile_enable(true);
  }
  ~ProfileGuard() { obs::profile_enable(false); }
};

struct TraceGuard {
  TraceGuard() {
    trace::reset();
    trace::enable(true);
  }
  ~TraceGuard() {
    trace::enable(false);
    trace::reset();
  }
};

/// Aggregated profile for the site named `name` ({} when it never ran).
obs::SiteProfile profile_of(const char* name) {
  for (const obs::SiteProfile& p : obs::collect_site_profiles())
    if (p.info.name && std::strcmp(p.info.name, name) == 0) return p;
  return {};
}

/// Live (mid-transaction-safe) sum of one site's aborts for one cause.
std::uint64_t live_site_aborts(std::uint16_t site, AbortCause c) {
  std::uint64_t t = 0;
  for (int s = 0; s < kMaxThreads; ++s)
    if (obs::SiteCounters* tbl = obs::peek_site_table(s))
      t += tbl[site].aborts[static_cast<int>(c)].load(
          std::memory_order_relaxed);
  return t;
}

// ---------------------------------------------------------------------------
// Stats coverage: the X-macro keeps TxStats, StatsSnapshot and aggregation
// in lockstep
// ---------------------------------------------------------------------------

TEST(ObsStats, AggregationCoversEveryCounter) {
  ModeGuard g(ExecMode::StmCondVar);
  reset_stats();

  // Give every counter of this thread's slot a distinct nonzero value.
  TxStats& mine = my_slot().stats;
  std::vector<std::string> tx_names;
  std::uint64_t seed = 1;
  mine.for_each_counter([&](const char* name, TxStats::Counter& c) {
    tx_names.push_back(name);
    c.store(seed++, std::memory_order_relaxed);
  });
  for (int a = 0; a < kAbortCauseCount; ++a)
    mine.aborts[a].store(1000 + static_cast<std::uint64_t>(a),
                         std::memory_order_relaxed);

  EXPECT_EQ(static_cast<int>(tx_names.size()), kTxStatsCounterCount);

  // The snapshot must visit the same counters, same order, same values.
  const StatsSnapshot s = aggregate_stats();
  std::vector<std::string> snap_names;
  std::uint64_t expect = 1;
  s.for_each_counter([&](const char* name, std::uint64_t v, const char* desc) {
    snap_names.push_back(name);
    EXPECT_EQ(v, expect) << "counter " << name << " lost by aggregation";
    EXPECT_NE(desc, nullptr);
    ++expect;
  });
  EXPECT_EQ(snap_names, tx_names);
  for (int a = 0; a < kAbortCauseCount; ++a)
    EXPECT_EQ(s.aborts[a], 1000 + static_cast<std::uint64_t>(a));

  reset_stats();
  const StatsSnapshot z = aggregate_stats();
  z.for_each_counter(
      [&](const char* name, std::uint64_t v, const char*) {
        EXPECT_EQ(v, 0u) << "reset_stats missed " << name;
      });
  EXPECT_EQ(z.aborts_total(), 0u);
}

// ---------------------------------------------------------------------------
// Histogram bucket boundaries
// ---------------------------------------------------------------------------

TEST(ObsHistogram, BucketBoundaries) {
  using obs::LatencyHist;
  // Bucket 0 holds [0, 2); bucket b >= 1 holds [2^b, 2^(b+1)).
  EXPECT_EQ(LatencyHist::bucket_of(0), 0);
  EXPECT_EQ(LatencyHist::bucket_of(1), 0);
  EXPECT_EQ(LatencyHist::bucket_of(2), 1);
  EXPECT_EQ(LatencyHist::bucket_of(3), 1);
  EXPECT_EQ(LatencyHist::bucket_of(4), 2);
  EXPECT_EQ(LatencyHist::bucket_of(7), 2);
  EXPECT_EQ(LatencyHist::bucket_of(8), 3);
  EXPECT_EQ(LatencyHist::bucket_of((1ull << 31) - 1), 30);
  EXPECT_EQ(LatencyHist::bucket_of(1ull << 31), 31);
  EXPECT_EQ(LatencyHist::bucket_of(~0ull), 31);  // clamped top bucket

  EXPECT_EQ(LatencyHist::bucket_floor(0), 0u);
  EXPECT_EQ(LatencyHist::bucket_floor(1), 2u);
  EXPECT_EQ(LatencyHist::bucket_floor(5), 32u);
  EXPECT_EQ(LatencyHist::bucket_floor(31), 1ull << 31);

  LatencyHist h;
  h.add(0);
  h.add(1);
  h.add(2);
  h.add(3);
  h.add(1000);
  h.add(~0ull);
  EXPECT_EQ(h.buckets[0].load(std::memory_order_relaxed), 2u);
  EXPECT_EQ(h.buckets[1].load(std::memory_order_relaxed), 2u);
  EXPECT_EQ(h.buckets[9].load(std::memory_order_relaxed), 1u);  // 512..1023
  EXPECT_EQ(h.buckets[31].load(std::memory_order_relaxed), 1u);
  EXPECT_EQ(h.total(), 6u);
}

// ---------------------------------------------------------------------------
// Site registry
// ---------------------------------------------------------------------------

TEST(ObsSite, RegistryIdentityAndInfo) {
  std::uint16_t first = 0;
  for (int i = 0; i < 3; ++i) {
    const obs::TxSite& s = TLE_TX_SITE("obs/registry_identity");
    if (i == 0) first = s.id;
    EXPECT_EQ(s.id, first) << "same lexical site must register once";
  }
  ASSERT_NE(first, 0) << "named sites never get the reserved id 0";
  const obs::SiteInfo info = obs::site_info(first);
  EXPECT_STREQ(info.name, "obs/registry_identity");
  EXPECT_NE(info.file, nullptr);
  EXPECT_GT(info.line, 0);
  EXPECT_GE(obs::site_count(), 2);
  EXPECT_STREQ(obs::site_info(0).name, "(unnamed)");
}

TEST(ObsSite, OutOfRangeSiteIdsClampToSlotZero) {
  const int slot = my_slot_id();
  EXPECT_EQ(&obs::site_counters(slot, obs::kMaxSites),
            &obs::site_counters(slot, 0));
  EXPECT_EQ(&obs::site_counters(slot, 0xFFFF), &obs::site_counters(slot, 0));
}

// ---------------------------------------------------------------------------
// Per-site abort attribution — one test per AbortCause
// ---------------------------------------------------------------------------

TEST(ObsProfile, AttributesUserExplicitRestart) {
  ModeGuard g(ExecMode::StmCondVar);
  ProfileGuard pg;
  tm_var<long> v(0);
  int execs = 0;
  atomic_do(TLE_TX_SITE("obs/user_explicit"), [&](TxContext& tx) {
    tx.write(v, tx.read(v) + 1);
    if (execs++ == 0) tx.restart();
  });
  const obs::SiteProfile p = profile_of("obs/user_explicit");
  EXPECT_EQ(p.attempts, 2u);
  EXPECT_EQ(p.commits, 1u);
  EXPECT_EQ(p.aborts[static_cast<int>(AbortCause::UserExplicit)], 1u);
  EXPECT_EQ(p.aborts_total(), 1u);
  EXPECT_EQ(v.unsafe_get(), 1);
}

TEST(ObsProfile, AttributesUnsafeAndSerialRerun) {
  ModeGuard g(ExecMode::StmCondVar);
  ProfileGuard pg;
  int ran = 0;
  atomic_do(TLE_TX_SITE("obs/unsafe"), [&](TxContext&) {
    // Nested irrevocable request inside a speculative txn: aborts with
    // Unsafe and re-runs the whole section serially.
    synchronized_do([&](TxContext&) { ++ran; });
  });
  EXPECT_EQ(ran, 1);
  const obs::SiteProfile p = profile_of("obs/unsafe");
  EXPECT_EQ(p.attempts, 1u);
  EXPECT_EQ(p.commits, 0u);
  EXPECT_EQ(p.aborts[static_cast<int>(AbortCause::Unsafe)], 1u);
  EXPECT_EQ(p.serial_fallbacks, 1u);
  EXPECT_EQ(p.serial_commits, 1u);
}

TEST(ObsProfile, AttributesHtmCapacityOverflow) {
  ModeGuard g(ExecMode::Htm);
  config().htm_write_sets = 1;  // capacity model: exactly one 64B line
  config().htm_write_ways = 1;
  ProfileGuard pg;
  // Two stores >= 64 bytes apart always hit two distinct cache lines.
  static tm_var<long> vars[16];
  atomic_do(TLE_TX_SITE("obs/htm_capacity"), [&](TxContext& tx) {
    tx.write(vars[0], 1L);
    tx.write(vars[8], 2L);
  });
  const obs::SiteProfile p = profile_of("obs/htm_capacity");
  // The governor knows a capacity overflow can never succeed on retry: one
  // speculative attempt, straight to serial, no retry counted.
  EXPECT_EQ(p.attempts, 1u);
  EXPECT_EQ(p.aborts[static_cast<int>(AbortCause::Capacity)], 1u);
  EXPECT_EQ(p.htm_retries, 0u);
  EXPECT_EQ(p.serial_fallbacks, 1u);
  EXPECT_EQ(p.serial_commits, 1u);
  EXPECT_EQ(vars[0].unsafe_get(), 1);
  EXPECT_EQ(vars[8].unsafe_get(), 2);
}

TEST(ObsProfile, AttributesHtmSpuriousAborts) {
  ModeGuard g(ExecMode::Htm);
  config().htm_spurious_abort_rate = 1.0;  // every hardware attempt dies
  ProfileGuard pg;
  tm_var<long> v(0);
  atomic_do(TLE_TX_SITE("obs/htm_spurious"), [&](TxContext& tx) {
    tx.write(v, tx.read(v) + 1);
  });
  const obs::SiteProfile p = profile_of("obs/htm_spurious");
  EXPECT_GE(p.aborts[static_cast<int>(AbortCause::Spurious)], 1u);
  EXPECT_EQ(p.serial_fallbacks, 1u);
  EXPECT_EQ(p.serial_commits, 1u);
  EXPECT_EQ(v.unsafe_get(), 1);
}

TEST(ObsProfile, AttributesValidationFailure) {
  // NoQ mode + no_quiesce: the peer's commit must not quiesce-wait on the
  // transaction we deliberately hold open.
  ModeGuard g(ExecMode::StmCondVarNoQ);
  ProfileGuard pg;
  tm_var<long> v1(0), v2(0);
  std::atomic<int> stage{0};
  std::atomic<int> execs{0};

  std::thread peer([&] {
    while (stage.load(std::memory_order_acquire) < 1)
      std::this_thread::yield();
    atomic_do(TLE_TX_SITE("obs/validation_peer"), [&](TxContext& tx) {
      tx.no_quiesce();
      tx.write(v1, 1L);
      tx.write(v2, 1L);
    });
    stage.store(2, std::memory_order_release);
  });

  long a = 0, b = 0;
  atomic_do(TLE_TX_SITE("obs/validation"), [&](TxContext& tx) {
    tx.no_quiesce();
    const int e = execs.fetch_add(1, std::memory_order_relaxed);
    a = tx.read(v1);
    if (e == 0) {
      // First execution: logged v1, now let the peer commit new versions
      // of both words. The subsequent read of v2 forces a snapshot extend
      // that re-validates v1 — and fails.
      stage.store(1, std::memory_order_release);
      while (stage.load(std::memory_order_acquire) < 2)
        std::this_thread::yield();
    }
    b = tx.read(v2);
  });
  peer.join();

  EXPECT_EQ(a, 1);  // the retry saw the peer's committed state
  EXPECT_EQ(b, 1);
  const obs::SiteProfile p = profile_of("obs/validation");
  EXPECT_GE(p.aborts[static_cast<int>(AbortCause::Validation)], 1u);
  EXPECT_EQ(p.commits, 1u);
  EXPECT_EQ(profile_of("obs/validation_peer").commits, 1u);
}

TEST(ObsProfile, AttributesOrecConflict) {
  ModeGuard g(ExecMode::StmCondVarNoQ);
  config().stm_max_retries = 1000;  // the peer must outlast our hold
  ProfileGuard pg;
  const obs::TxSite& peer_site = TLE_TX_SITE("obs/conflict");
  tm_var<long> w(0);
  std::atomic<bool> held{false};
  std::atomic<int> execs{0};

  std::thread peer([&] {
    while (!held.load(std::memory_order_acquire)) std::this_thread::yield();
    atomic_do(peer_site, [&](TxContext& tx) {
      tx.no_quiesce();
      tx.write(w, 2L);  // the holder owns w's orec: Conflict abort
    });
  });

  atomic_do(TLE_TX_SITE("obs/conflict_holder"), [&](TxContext& tx) {
    tx.no_quiesce();
    const int e = execs.fetch_add(1, std::memory_order_relaxed);
    tx.write(w, 1L);  // ml_wt write-through: acquires the orec here
    if (e == 0) {
      held.store(true, std::memory_order_release);
      // Hold the orec until the peer has demonstrably hit it.
      while (live_site_aborts(peer_site.id, AbortCause::Conflict) == 0)
        std::this_thread::yield();
    }
  });
  peer.join();

  EXPECT_EQ(w.unsafe_get(), 2);  // the peer's write landed last
  const obs::SiteProfile p = profile_of("obs/conflict");
  EXPECT_GE(p.aborts[static_cast<int>(AbortCause::Conflict)], 1u);
  EXPECT_GE(p.attempts, 2u);
}

TEST(ObsProfile, AttributesSerialPendingBackout) {
  ModeGuard g(ExecMode::StmCondVarNoQ);
  ProfileGuard pg;
  tm_var<long> v(0);
  std::atomic<int> stage{0};
  std::atomic<int> execs{0};

  std::thread peer([&] {
    while (stage.load(std::memory_order_acquire) < 1)
      std::this_thread::yield();
    synchronized_do(TLE_TX_SITE("obs/serial_section"), [](TxContext&) {});
    stage.store(2, std::memory_order_release);
  });

  long acc = 0;
  atomic_do(TLE_TX_SITE("obs/serial_pending"), [&](TxContext& tx) {
    tx.no_quiesce();
    const int e = execs.fetch_add(1, std::memory_order_relaxed);
    if (e == 0) {
      stage.store(1, std::memory_order_release);
      // Keep reading while the peer requests the serial token; the next
      // instrumented read observes the pending writer and backs out.
      // Bounded so a missed abort fails assertions instead of hanging.
      for (long i = 0;
           i < 2000000000L && stage.load(std::memory_order_acquire) < 2; ++i)
        acc += tx.read(v);
    } else {
      acc = tx.read(v);
    }
  });
  peer.join();
  volatile long sink = acc;
  (void)sink;

  const obs::SiteProfile p = profile_of("obs/serial_pending");
  EXPECT_GE(p.aborts[static_cast<int>(AbortCause::SerialPending)], 1u);
  EXPECT_EQ(p.commits, 1u);
  EXPECT_EQ(profile_of("obs/serial_section").serial_commits, 1u);
}

// ---------------------------------------------------------------------------
// Flight recorder
// ---------------------------------------------------------------------------

TEST(ObsTrace, FieldRoundTrip) {
  TraceGuard tg;
  trace::emit(trace::Event::Abort, AbortCause::Capacity, /*site=*/7,
              /*retry=*/3, /*rset=*/11, /*wset=*/5, /*dur_ns=*/1234);
  const auto recs = trace::snapshot();
  ASSERT_EQ(recs.size(), 1u);
  const trace::Record& r = recs[0];
  EXPECT_EQ(r.event, trace::Event::Abort);
  EXPECT_EQ(r.cause, AbortCause::Capacity);
  EXPECT_EQ(r.site, 7);
  EXPECT_EQ(r.retry, 3);
  EXPECT_EQ(r.rset, 11u);
  EXPECT_EQ(r.wset, 5u);
  EXPECT_EQ(r.dur_ns, 1234u);
  EXPECT_EQ(r.slot, my_slot_id());
  EXPECT_GT(r.ts_ns, 0u);
}

TEST(ObsTrace, RingWrapsKeepingNewestWithNewFields) {
  TraceGuard tg;
  const std::size_t total = trace::kRingSize + 100;
  for (std::size_t i = 0; i < total; ++i)
    trace::emit(trace::Event::Commit, AbortCause::None, /*site=*/1,
                static_cast<std::uint16_t>(i & 0xFFFF),
                static_cast<std::uint32_t>(i), 0, i);
  const auto recs = trace::snapshot();
  ASSERT_EQ(recs.size(), trace::kRingSize);
  // Oldest kRingSize records were lapped; the survivors are the newest.
  std::uint64_t min_dur = ~0ull;
  for (const trace::Record& r : recs) {
    EXPECT_EQ(r.event, trace::Event::Commit);
    EXPECT_EQ(r.site, 1);
    min_dur = std::min(min_dur, r.dur_ns);
  }
  EXPECT_EQ(min_dur, 100u);
}

TEST(ObsTrace, ResetIsSafeAndEmptiesSnapshot) {
  TraceGuard tg;
  for (int i = 0; i < 64; ++i) trace::emit(trace::Event::Begin);
  EXPECT_FALSE(trace::snapshot().empty());
  trace::reset();
  EXPECT_TRUE(trace::snapshot().empty());
  trace::emit(trace::Event::Quiesce);
  EXPECT_EQ(trace::snapshot().size(), 1u);
}

TEST(ObsTrace, ConcurrentEmitSnapshotResetStress) {
  TraceGuard tg;
  constexpr int kWriters = 4;
  constexpr int kPerWriter = 60000;
  std::atomic<bool> done{false};

  std::thread reader([&] {
    int rounds = 0;
    while (!done.load(std::memory_order_acquire)) {
      const auto recs = trace::snapshot();
      for (const trace::Record& r : recs) {
        // Decoded fields must always be in-range: a torn cell would show
        // up here (and as a TSan report under the sanitizer preset).
        ASSERT_LE(static_cast<int>(r.event),
                  static_cast<int>(trace::Event::Quiesce));
        ASSERT_LT(static_cast<int>(r.cause), kAbortCauseCount);
        ASSERT_LT(r.slot, kMaxThreads);
        ASSERT_EQ(r.site, 2);
        ASSERT_EQ(r.rset, r.wset + 1);
      }
      if (++rounds % 16 == 0) trace::reset();
    }
  });

  run_threads(kWriters, [&](int t) {
    for (int i = 0; i < kPerWriter; ++i)
      trace::emit(static_cast<trace::Event>(i % 6),
                  static_cast<AbortCause>(i % kAbortCauseCount), /*site=*/2,
                  static_cast<std::uint16_t>(t),
                  static_cast<std::uint32_t>(i) + 1,
                  static_cast<std::uint32_t>(i),
                  static_cast<std::uint64_t>(i));
  });
  done.store(true, std::memory_order_release);
  reader.join();
  EXPECT_LE(trace::snapshot().size(), trace::kRingSize * kWriters);
}

// ---------------------------------------------------------------------------
// Exports
// ---------------------------------------------------------------------------

TEST(ObsExport, JsonTableAndChromeTraceSmoke) {
  ModeGuard g(ExecMode::StmCondVar);
  ProfileGuard pg;
  TraceGuard tg;
  reset_stats();
  tm_var<long> v(0);
  for (int i = 0; i < 10; ++i)
    atomic_do(TLE_TX_SITE("obs/export_smoke"), [&](TxContext& tx) {
      tx.write(v, tx.read(v) + 1);
    });
  synchronized_do(TLE_TX_SITE("obs/export_serial"), [](TxContext&) {});

  const std::string json = obs::obs_json();
  EXPECT_NE(json.find("\"schema\":\"tle-obs/v1\""), std::string::npos);
  EXPECT_NE(json.find("\"obs/export_smoke\""), std::string::npos);
  // Schema-completeness: every X-macro counter appears by name.
  StatsSnapshot().for_each_counter(
      [&](const char* name, std::uint64_t, const char*) {
        EXPECT_NE(json.find("\"" + std::string(name) + "\""),
                  std::string::npos)
            << "tle-obs/v1 stats missing " << name;
      });
  for (int a = 1; a < kAbortCauseCount; ++a)
    EXPECT_NE(json.find("\"" + std::string(to_string(
                            static_cast<AbortCause>(a))) + "\""),
              std::string::npos);

  const std::string table =
      obs::site_table(obs::collect_site_profiles());
  EXPECT_NE(table.find("obs/export_smoke"), std::string::npos);

  const std::string chrome = obs::chrome_trace_json(trace::snapshot());
  EXPECT_NE(chrome.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(chrome.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(chrome.find("obs/export_smoke"), std::string::npos);
  EXPECT_EQ(profile_of("obs/export_smoke").commits, 10u);
}

}  // namespace
}  // namespace tle
