// Tests for the transaction-friendly condition variables, the TLE bounded
// queue, and the thread pool — including the producer/consumer wait/notify
// protocol in every execution mode.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <numeric>
#include <set>

#include "sync/bounded_queue.hpp"
#include "sync/thread_pool.hpp"
#include "sync/tx_condvar.hpp"
#include "test_support.hpp"
#include "util/timing.hpp"

namespace tle {
namespace {

using testing::kAllModes;
using testing::ModeGuard;
using testing::run_threads;

class AllModes : public ::testing::TestWithParam<ExecMode> {};

INSTANTIATE_TEST_SUITE_P(Sync, AllModes, ::testing::ValuesIn(kAllModes),
                         [](const auto& info) {
                           std::string s = to_string(info.param);
                           for (auto& c : s)
                             if (!isalnum(static_cast<unsigned char>(c))) c = '_';
                           return s;
                         });

// ---------------------------------------------------------------------------
// tx_condvar
// ---------------------------------------------------------------------------

TEST_P(AllModes, WaitWakesOnNotify) {
  ModeGuard g(GetParam());
  elidable_mutex m;
  tx_condvar cv;
  tm_var<int> flag(0);
  std::atomic<int> observed{-1};

  std::thread waiter([&] {
    for (;;) {
      bool done = false;
      critical(m, [&](TxContext& tx) {
        if (tx.read(flag) != 0) {
          observed.store(tx.read(flag));
          done = true;
        } else {
          cv.wait(tx);
        }
      });
      if (done) break;
    }
  });

  // Give the waiter a chance to actually park.
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  critical(m, [&](TxContext& tx) {
    tx.write(flag, 7);
    cv.notify_one(tx);
  });
  waiter.join();
  EXPECT_EQ(observed.load(), 7);
}

TEST_P(AllModes, NotifyBeforeWaitIsNotLost) {
  // The deferred-action race the pending counter exists for: the notify's
  // deferred signal may run before the waiter's deferred enqueue.
  ModeGuard g(GetParam());
  elidable_mutex m;
  tx_condvar cv;
  tm_var<int> flag(0);

  // Notify first, then wait: the banked signal (or the re-checked
  // predicate) must let the waiter through.
  critical(m, [&](TxContext& tx) {
    tx.write(flag, 1);
    cv.notify_one(tx);
  });
  bool done = false;
  for (int iter = 0; !done && iter < 100; ++iter) {
    critical(m, [&](TxContext& tx) {
      if (tx.read(flag) != 0)
        done = true;
      else
        cv.wait(tx);
    });
  }
  EXPECT_TRUE(done);
}

TEST_P(AllModes, TimedWaitTimesOut) {
  ModeGuard g(GetParam());
  if (GetParam() == ExecMode::StmSpin)
    GTEST_SKIP() << "spin mode never parks";
  elidable_mutex m;
  tx_condvar cv;
  tm_var<int> flag(0);
  Stopwatch sw;
  int loops = 0;
  bool done = false;
  while (!done && loops < 50) {
    ++loops;
    critical(m, [&](TxContext& tx) {
      if (tx.read(flag) != 0)
        done = true;
      else
        cv.wait_for(tx, std::chrono::milliseconds(5));
    });
    if (sw.seconds() > 0.1) break;  // several timeouts observed: enough
  }
  EXPECT_FALSE(done);
  EXPECT_GE(loops, 2) << "timed wait must wake without a notify";
}

TEST_P(AllModes, NotifyAllWakesEveryWaiter) {
  ModeGuard g(GetParam());
  elidable_mutex m;
  tx_condvar cv;
  tm_var<int> gate(0);
  std::atomic<int> released{0};
  constexpr int kWaiters = 4;

  run_threads(kWaiters + 1, [&](int t) {
    if (t < kWaiters) {
      for (;;) {
        bool done = false;
        critical(m, [&](TxContext& tx) {
          if (tx.read(gate) != 0)
            done = true;
          else
            cv.wait(tx);
        });
        if (done) break;
      }
      released.fetch_add(1);
    } else {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      critical(m, [&](TxContext& tx) {
        tx.write(gate, 1);
        cv.notify_all(tx);
      });
    }
  });
  EXPECT_EQ(released.load(), kWaiters);
}

TEST(TxCondVar, WaiterCountReflectsParkedThreads) {
  ModeGuard g(ExecMode::Lock);
  elidable_mutex m;
  tx_condvar cv;
  tm_var<int> gate(0);
  std::thread t([&] {
    for (;;) {
      bool done = false;
      critical(m, [&](TxContext& tx) {
        if (tx.read(gate) != 0)
          done = true;
        else
          cv.wait(tx);
      });
      if (done) break;
    }
  });
  // Wait until parked.
  for (int i = 0; i < 1000 && cv.waiter_count() == 0; ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_EQ(cv.waiter_count(), 1);
  critical(m, [&](TxContext& tx) {
    tx.write(gate, 1);
    cv.notify_one(tx);
  });
  t.join();
  EXPECT_EQ(cv.waiter_count(), 0);
}

TEST(TxCondVar, NotifyNowFromPlainCode) {
  ModeGuard g(ExecMode::StmCondVar);
  elidable_mutex m;
  tx_condvar cv;
  tm_var<int> gate(0);
  std::thread t([&] {
    for (;;) {
      bool done = false;
      critical(m, [&](TxContext& tx) {
        if (tx.read(gate) != 0)
          done = true;
        else
          cv.wait(tx);
      });
      if (done) break;
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  gate.unsafe_set(0);  // no-op; the real publish happens transactionally:
  critical(m, [&](TxContext& tx) { tx.write(gate, 1); });
  cv.notify_all_now();
  t.join();
  SUCCEED();
}

// ---------------------------------------------------------------------------
// bounded_queue
// ---------------------------------------------------------------------------

TEST(BoundedQueue, CapacityRoundsToPowerOfTwo) {
  bounded_queue<int> q(5);
  EXPECT_EQ(q.capacity(), 8u);
  bounded_queue<int> q2(1);
  EXPECT_EQ(q2.capacity(), 2u);
}

TEST_P(AllModes, QueueFifoSingleThread) {
  ModeGuard g(GetParam());
  bounded_queue<int> q(16);
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(q.push(i));
  for (int i = 0; i < 10; ++i) {
    auto v = q.pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_FALSE(q.try_pop().has_value());
}

TEST_P(AllModes, QueueCloseDrainsThenStops) {
  ModeGuard g(GetParam());
  bounded_queue<int> q(8);
  EXPECT_TRUE(q.push(1));
  EXPECT_TRUE(q.push(2));
  q.close();
  EXPECT_FALSE(q.push(3)) << "push after close must fail";
  EXPECT_EQ(q.pop().value(), 1);
  EXPECT_EQ(q.pop().value(), 2);
  EXPECT_FALSE(q.pop().has_value()) << "drained + closed returns nullopt";
}

TEST_P(AllModes, QueueMpmcDeliversEachItemExactlyOnce) {
  ModeGuard g(GetParam());
  bounded_queue<long> q(8);  // small: forces both full and empty waits
  constexpr int kProducers = 2;
  constexpr int kConsumers = 2;
  constexpr long kPerProducer = 1000;

  std::atomic<long> sum{0};
  std::atomic<long> count{0};
  run_threads(kProducers + kConsumers, [&](int t) {
    if (t < kProducers) {
      for (long i = 0; i < kPerProducer; ++i)
        ASSERT_TRUE(q.push(t * kPerProducer + i + 1));
      return;
    }
    for (;;) {
      auto v = q.pop();
      if (!v.has_value()) break;
      sum.fetch_add(*v);
      if (count.fetch_add(1) + 1 == kProducers * kPerProducer) q.close();
    }
  });
  // Sum of 1..N over both producer ranges identifies exactly-once delivery.
  long expected = 0;
  for (long t = 0; t < kProducers; ++t)
    for (long i = 0; i < kPerProducer; ++i) expected += t * kPerProducer + i + 1;
  EXPECT_EQ(count.load(), kProducers * kPerProducer);
  EXPECT_EQ(sum.load(), expected);
}

TEST_P(AllModes, QueuePointerPayloadPrivatization) {
  // Consumers privatize heap payloads through the queue, then read them
  // non-transactionally — the paper's Section IV privatization pattern.
  ModeGuard g(GetParam());
  struct Payload {
    long value;
    long check;
  };
  bounded_queue<Payload*> q(4);
  constexpr long kItems = 400;
  std::atomic<long> bad{0};
  run_threads(3, [&](int t) {
    if (t == 0) {
      for (long i = 0; i < kItems; ++i) {
        auto* p = new Payload{i, i ^ 0x5a5aL};
        ASSERT_TRUE(q.push(p));
      }
      q.close();
      return;
    }
    for (;;) {
      auto v = q.pop();
      if (!v.has_value()) break;
      Payload* p = *v;
      // Non-transactional use of privatized data.
      if ((p->value ^ 0x5a5aL) != p->check) bad.fetch_add(1);
      delete p;
    }
  });
  EXPECT_EQ(bad.load(), 0);
}

TEST(BoundedQueue, TryPushFailsWhenFull) {
  ModeGuard g(ExecMode::Lock);
  bounded_queue<int> q(2);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_FALSE(q.try_push(3));
  EXPECT_EQ(q.size_unsafe(), 2u);
}

// ---------------------------------------------------------------------------
// thread_pool
// ---------------------------------------------------------------------------

TEST(ThreadPool, RunsAllJobs) {
  thread_pool pool(3);
  std::atomic<int> ran{0};
  for (int i = 0; i < 50; ++i) pool.submit([&] { ran.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(ran.load(), 50);
}

TEST(ThreadPool, JobsMaySubmitJobs) {
  thread_pool pool(2);
  std::atomic<int> ran{0};
  pool.submit([&] {
    for (int i = 0; i < 10; ++i) pool.submit([&] { ran.fetch_add(1); });
  });
  pool.wait_idle();
  EXPECT_EQ(ran.load(), 10);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturns) {
  thread_pool pool(1);
  pool.wait_idle();
  SUCCEED();
}

}  // namespace
}  // namespace tle
