// Tests for the pipez streaming file interface.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "pipez/pipeline.hpp"
#include "test_support.hpp"

namespace tle::pipez {
namespace {

using tle::testing::kAllModes;
using tle::testing::ModeGuard;

class TempFile {
 public:
  explicit TempFile(const char* tag) {
    static int counter = 0;
    path_ = ::testing::TempDir() + "pipez_" + tag + "_" +
            std::to_string(::getpid()) + "_" + std::to_string(counter++);
  }
  ~TempFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

void write_file(const std::string& path, const std::vector<std::uint8_t>& data) {
  std::ofstream out(path, std::ios::binary);
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
  ASSERT_TRUE(out.good());
}

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

class FileModes : public ::testing::TestWithParam<ExecMode> {};

INSTANTIATE_TEST_SUITE_P(PipezFile, FileModes, ::testing::ValuesIn(kAllModes),
                         [](const auto& info) {
                           std::string s = to_string(info.param);
                           for (auto& c : s)
                             if (!isalnum(static_cast<unsigned char>(c))) c = '_';
                           return s;
                         });

TEST_P(FileModes, FileRoundTrip) {
  ModeGuard g(GetParam());
  const auto corpus = make_corpus(200000, 31);
  TempFile input("in"), packed("pz"), restored("out");
  write_file(input.path(), corpus);

  Config cfg;
  cfg.worker_threads = 3;
  cfg.block_size = 30000;
  const auto c = compress_file(input.path(), packed.path(), cfg);
  ASSERT_TRUE(c.ok) << c.error;
  EXPECT_EQ(c.stats.blocks, 7u);  // ceil(200000/30000)
  EXPECT_EQ(c.stats.in_bytes, corpus.size());
  EXPECT_LT(c.stats.out_bytes, corpus.size());

  const auto d = decompress_file(packed.path(), restored.path(), cfg);
  ASSERT_TRUE(d.ok) << d.error;
  EXPECT_EQ(read_file(restored.path()), corpus);
}

TEST(PipezFile, ExactBlockMultiple) {
  ModeGuard g(ExecMode::StmCondVar);
  const auto corpus = make_corpus(4 * 25000, 32);
  TempFile input("in"), packed("pz"), restored("out");
  write_file(input.path(), corpus);
  Config cfg;
  cfg.worker_threads = 2;
  cfg.block_size = 25000;
  const auto c = compress_file(input.path(), packed.path(), cfg);
  ASSERT_TRUE(c.ok) << c.error;
  EXPECT_EQ(c.stats.blocks, 4u);
  const auto d = decompress_file(packed.path(), restored.path(), cfg);
  ASSERT_TRUE(d.ok) << d.error;
  EXPECT_EQ(read_file(restored.path()), corpus);
}

TEST(PipezFile, EmptyFile) {
  ModeGuard g(ExecMode::Htm);
  TempFile input("in"), packed("pz"), restored("out");
  write_file(input.path(), {});
  Config cfg;
  cfg.worker_threads = 2;
  const auto c = compress_file(input.path(), packed.path(), cfg);
  ASSERT_TRUE(c.ok) << c.error;
  EXPECT_EQ(c.stats.blocks, 0u);
  const auto d = decompress_file(packed.path(), restored.path(), cfg);
  ASSERT_TRUE(d.ok) << d.error;
  EXPECT_TRUE(read_file(restored.path()).empty());
}

TEST(PipezFile, MissingInputFails) {
  Config cfg;
  const auto c = compress_file("/nonexistent/nope", "/tmp/x", cfg);
  EXPECT_FALSE(c.ok);
  const auto d = decompress_file("/nonexistent/nope", "/tmp/x", cfg);
  EXPECT_FALSE(d.ok);
}

TEST(PipezFile, CorruptedArchiveRejected) {
  ModeGuard g(ExecMode::Lock);
  const auto corpus = make_corpus(80000, 33);
  TempFile input("in"), packed("pz"), restored("out");
  write_file(input.path(), corpus);
  Config cfg;
  cfg.worker_threads = 2;
  cfg.block_size = 20000;
  ASSERT_TRUE(compress_file(input.path(), packed.path(), cfg).ok);

  auto bytes = read_file(packed.path());
  bytes[bytes.size() / 2] ^= 0x10;  // flip inside a frame
  write_file(packed.path(), bytes);
  const auto d = decompress_file(packed.path(), restored.path(), cfg);
  EXPECT_FALSE(d.ok);
  EXPECT_FALSE(d.error.empty());
}

TEST(PipezFile, TruncatedArchiveRejected) {
  ModeGuard g(ExecMode::Lock);
  const auto corpus = make_corpus(60000, 34);
  TempFile input("in"), packed("pz"), restored("out");
  write_file(input.path(), corpus);
  Config cfg;
  cfg.worker_threads = 2;
  cfg.block_size = 20000;
  ASSERT_TRUE(compress_file(input.path(), packed.path(), cfg).ok);
  auto bytes = read_file(packed.path());
  bytes.resize(bytes.size() - 10);  // lose the trailer
  write_file(packed.path(), bytes);
  EXPECT_FALSE(decompress_file(packed.path(), restored.path(), cfg).ok);
}

TEST(PipezFile, FileAndMemoryFormatsCompressEqually) {
  // Both paths use the same block codec: per-block payloads are identical.
  ModeGuard g(ExecMode::StmCondVarNoQ);
  const auto corpus = make_corpus(50000, 35);
  TempFile input("in"), packed("pz");
  write_file(input.path(), corpus);
  Config cfg;
  cfg.worker_threads = 2;
  cfg.block_size = 50000;  // single block
  ASSERT_TRUE(compress_file(input.path(), packed.path(), cfg).ok);
  const auto filed = read_file(packed.path());
  const auto memory = compress(corpus, cfg);
  // Skip the format headers (8B file / 16B memory) and frame length words;
  // compare the single block payload.
  const std::vector<std::uint8_t> p1(filed.begin() + 12, filed.end() - 16);
  const std::vector<std::uint8_t> p2(memory.begin() + 20, memory.end());
  EXPECT_EQ(p1, p2);
}

}  // namespace
}  // namespace tle::pipez
