// Tests for the adaptive exec-mode controller (PR: self-tuning control loop):
//   * validate_config() rejection of every nonsensical controller knob,
//   * the per-site decision table against hand-built synthetic windows:
//     conflict -> Boost, capacity -> Serial, healthy -> Auto,
//   * confidence scoring (one anomalous interval never moves a plan) and
//     post-change holds,
//   * per-site recovery probes: Serial -> probe start -> widen -> Auto,
//   * the global degraded state machine: sustained storm -> Degraded ->
//     Probing -> widen -> DegradedExit, watchdog-triggered entry, and the
//     flap bound (a re-trip goes back through the full hold),
//   * the drained global HTM->STM switch on capacity-dominated degradation
//     and its restore on recovery,
//   * ctl::apply() routing: degraded overlay, probe admission fractions,
//     Boost budget/disposition stamping, attr-override precedence,
//   * real-engine phase-shift chaos (capacity -> conflict -> spurious ->
//     healthy) with per-phase convergence and a byte-identical decision
//     trace across two pinned-seed runs,
//   * shutdown ordering: metrics_stop() joins the controller thread before
//     the residual final window, and evaluations stay frozen afterwards.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "test_support.hpp"
#include "tm/control/control.hpp"
#include "tm/fault/fault.hpp"
#include "tm/governor/governor.hpp"
#include "tm/obs/export.hpp"
#include "tm/obs/metrics.hpp"
#include "tm/obs/site.hpp"
#include "tm/registry.hpp"
#include "tm/tm.hpp"

namespace tle {
namespace {

using testing::ModeGuard;

constexpr int kCap = static_cast<int>(AbortCause::Capacity);
constexpr int kConf = static_cast<int>(AbortCause::Conflict);
constexpr int kSpur = static_cast<int>(AbortCause::Spurious);

/// Clean controller scope with fast, test-sized knobs: evaluate on every
/// window, 10-sample significance floor, 2-window confidence, 2-window
/// holds/trips, probes starting at 1/8. Restores everything on exit.
struct CtlGuard {
  RuntimeConfig saved = config();
  CtlGuard() {
    fault::clear();
    reset_stats();
    gov::reset();
    config().controller = true;
    config().ctl_period_windows = 1;
    config().ctl_min_samples = 10;
    config().ctl_confidence = 2;
    config().ctl_hold_windows = 2;
    config().ctl_trip_windows = 2;
    config().ctl_probe_shift = 3;
    ctl::reset();
  }
  ~CtlGuard() {
    ctl::reset();
    fault::clear();
    config() = saved;
  }
};

/// A deterministic synthetic window: tests feed these straight to
/// ctl::on_window(), no sampler or engine involved.
obs::MetricsWindow mkwin(std::uint64_t index) {
  obs::MetricsWindow w;
  w.index = index;
  w.deterministic = true;
  return w;
}

void add_site(obs::MetricsWindow& w, int id, std::uint64_t attempts,
              std::uint64_t commits, int cause = 0, std::uint64_t n = 0) {
  obs::SiteWindow s;
  s.id = id;
  s.attempts = attempts;
  s.commits = commits;
  if (n) s.aborts[cause] = n;
  w.sites.push_back(s);
  w.txn_starts += attempts;
  w.commits += commits;
  w.aborts += n;
}

/// Feed `n` copies of a window shape, bumping the index each time.
void feed(std::uint64_t& idx, int n,
          const std::function<void(obs::MetricsWindow&)>& fill) {
  for (int i = 0; i < n; ++i) {
    obs::MetricsWindow w = mkwin(idx++);
    fill(w);
    ctl::on_window(w);
  }
}

/// A TxDesc wired up just enough for ctl::apply().
TxDesc make_tx(std::uint16_t site) {
  TxDesc tx;
  tx.stats = &my_slot().stats;
  tx.site = site;
  return tx;
}

// ---------------------------------------------------------------------------
// validate_config
// ---------------------------------------------------------------------------

TEST(ControlConfig, ValidateRejectsNonsensicalKnobs) {
  EXPECT_EQ(validate_config(RuntimeConfig{}), nullptr);

  RuntimeConfig ok;
  ok.controller = true;
  EXPECT_EQ(validate_config(ok), nullptr);

  // A controller without its instrument panel is flying blind.
  RuntimeConfig c;
  c.controller = true;
  c.metrics = false;
  EXPECT_NE(validate_config(c), nullptr);

  // ... and without the governor it has no actuator.
  c = RuntimeConfig{};
  c.controller = true;
  c.governor = false;
  EXPECT_NE(validate_config(c), nullptr);

  c = RuntimeConfig{};
  c.ctl_period_windows = 0;
  EXPECT_NE(validate_config(c), nullptr);

  c = RuntimeConfig{};
  c.ctl_period_windows = -3;
  EXPECT_NE(validate_config(c), nullptr);

  c = RuntimeConfig{};
  c.ctl_min_samples = 0;
  EXPECT_NE(validate_config(c), nullptr);

  c = RuntimeConfig{};
  c.ctl_confidence = 0;
  EXPECT_NE(validate_config(c), nullptr);

  c = RuntimeConfig{};
  c.ctl_trip_ratio = 1.5;
  EXPECT_NE(validate_config(c), nullptr);

  c = RuntimeConfig{};
  c.ctl_release_ratio = -0.1;
  EXPECT_NE(validate_config(c), nullptr);

  // Hysteresis is an open interval: release == trip would flap on the
  // boundary, release > trip would never converge at all.
  c = RuntimeConfig{};
  c.ctl_trip_ratio = 0.7;
  c.ctl_release_ratio = 0.7;
  EXPECT_NE(validate_config(c), nullptr);

  c = RuntimeConfig{};
  c.ctl_trip_ratio = 0.4;
  c.ctl_release_ratio = 0.6;
  EXPECT_NE(validate_config(c), nullptr);

  c = RuntimeConfig{};
  c.ctl_trip_windows = 0;
  EXPECT_NE(validate_config(c), nullptr);

  c = RuntimeConfig{};
  c.ctl_probe_shift = 0;
  EXPECT_NE(validate_config(c), nullptr);

  c = RuntimeConfig{};
  c.ctl_probe_shift = 17;
  EXPECT_NE(validate_config(c), nullptr);

  c = RuntimeConfig{};
  c.ctl_boost_retries = -1;
  EXPECT_NE(validate_config(c), nullptr);
}

// ---------------------------------------------------------------------------
// Per-site decision table (synthetic windows)
// ---------------------------------------------------------------------------

TEST(ControlPlan, ConflictDominatedSiteGetsBoost) {
  CtlGuard cg;
  std::uint64_t idx = 0;
  // 60% conflict aborts: above release, below trip, conflict-dominated.
  feed(idx, 2, [](obs::MetricsWindow& w) {
    add_site(w, 3, 100, 40, kConf, 60);
  });
  const ctl::SitePlanView p = ctl::site_plan(3);
  EXPECT_EQ(p.action, ctl::SiteAction::Boost);
  EXPECT_EQ(p.retries, config().ctl_boost_retries);
  EXPECT_EQ(p.dominant, AbortCause::Conflict);
  EXPECT_EQ(ctl::status().plan_changes, 1u);
}

TEST(ControlPlan, CapacityDominatedSiteGoesSerial) {
  CtlGuard cg;
  std::uint64_t idx = 0;
  feed(idx, 2, [](obs::MetricsWindow& w) {
    add_site(w, 4, 100, 20, kCap, 80);
  });
  const ctl::SitePlanView p = ctl::site_plan(4);
  EXPECT_EQ(p.action, ctl::SiteAction::Serial);
  EXPECT_EQ(p.dominant, AbortCause::Capacity);
}

TEST(ControlPlan, SpuriousDominatedSiteBoostsWithImmediateDisposition) {
  CtlGuard cg;
  std::uint64_t idx = 0;
  feed(idx, 2, [](obs::MetricsWindow& w) {
    add_site(w, 5, 100, 40, kSpur, 60);
  });
  EXPECT_EQ(ctl::site_plan(5).action, ctl::SiteAction::Boost);
  TxDesc tx = make_tx(5);
  ctl::apply(tx);
  EXPECT_FALSE(tx.force_serial);
  EXPECT_EQ(tx.ctl_retries, config().ctl_boost_retries);
  EXPECT_EQ(tx.ctl_disp[kSpur],
            static_cast<std::uint8_t>(gov::Disposition::Immediate));
  EXPECT_EQ(tx.ctl_disp[kConf], 0u);  // Inherit
}

// One anomalous interval must never move a plan: confidence requires the
// same changed classification on consecutive evaluations.
TEST(ControlPlan, SingleBadWindowDoesNotChangeThePlan) {
  CtlGuard cg;
  std::uint64_t idx = 0;
  feed(idx, 1, [](obs::MetricsWindow& w) {
    add_site(w, 6, 100, 20, kCap, 80);
  });
  EXPECT_EQ(ctl::site_plan(6).action, ctl::SiteAction::Auto);
  // A healthy window resets the streak; another single spike changes nothing.
  feed(idx, 1, [](obs::MetricsWindow& w) { add_site(w, 6, 100, 100); });
  feed(idx, 1, [](obs::MetricsWindow& w) {
    add_site(w, 6, 100, 20, kCap, 80);
  });
  EXPECT_EQ(ctl::site_plan(6).action, ctl::SiteAction::Auto);
  EXPECT_EQ(ctl::status().plan_changes, 0u);
}

// Below the significance floor the controller must not react at all.
TEST(ControlPlan, BelowMinSamplesIsIgnored) {
  CtlGuard cg;
  std::uint64_t idx = 0;
  feed(idx, 4, [](obs::MetricsWindow& w) {
    add_site(w, 7, 5, 0, kCap, 5);  // 100% aborts, but only 5 samples
  });
  EXPECT_EQ(ctl::site_plan(7).action, ctl::SiteAction::Auto);
}

TEST(ControlPlan, SerialSiteProbesItsWayBackToAuto) {
  CtlGuard cg;
  std::uint64_t idx = 0;
  feed(idx, 2, [](obs::MetricsWindow& w) {
    add_site(w, 8, 100, 20, kCap, 80);
  });
  ASSERT_EQ(ctl::site_plan(8).action, ctl::SiteAction::Serial);

  // Hold (2 evals, empty windows), then the probe starts at 1/8.
  feed(idx, 2, [](obs::MetricsWindow&) {});
  EXPECT_EQ(ctl::site_plan(8).probe_shift, 0u);
  feed(idx, 1, [](obs::MetricsWindow&) {});
  EXPECT_EQ(ctl::site_plan(8).action, ctl::SiteAction::Serial);
  EXPECT_EQ(ctl::site_plan(8).probe_shift, 3u);

  // apply(): with shift 3 exactly one of 8 consecutive attempts speculates.
  int speculated = 0;
  for (int i = 0; i < 8; ++i) {
    TxDesc tx = make_tx(8);
    ctl::apply(tx);
    if (!tx.force_serial) ++speculated;
  }
  EXPECT_EQ(speculated, 1);

  // Healthy probe intervals widen 3 -> 2 -> 1, then restore Auto.
  feed(idx, 1, [](obs::MetricsWindow& w) { add_site(w, 8, 4, 4); });
  EXPECT_EQ(ctl::site_plan(8).probe_shift, 2u);
  feed(idx, 1, [](obs::MetricsWindow& w) { add_site(w, 8, 4, 4); });
  EXPECT_EQ(ctl::site_plan(8).probe_shift, 1u);
  feed(idx, 1, [](obs::MetricsWindow& w) { add_site(w, 8, 4, 4); });
  EXPECT_EQ(ctl::site_plan(8).action, ctl::SiteAction::Auto);
  EXPECT_EQ(ctl::status().plan_changes, 2u);  // ->Serial, ->Auto
}

// A probe interval that re-trips resets the probe fraction and re-holds
// instead of widening into a storm.
TEST(ControlPlan, SiteProbeRetripResets) {
  CtlGuard cg;
  std::uint64_t idx = 0;
  feed(idx, 2, [](obs::MetricsWindow& w) {
    add_site(w, 9, 100, 20, kCap, 80);
  });
  feed(idx, 3, [](obs::MetricsWindow&) {});  // hold + probe start
  ASSERT_EQ(ctl::site_plan(9).probe_shift, 3u);
  feed(idx, 1, [](obs::MetricsWindow& w) { add_site(w, 9, 4, 4); });
  ASSERT_EQ(ctl::site_plan(9).probe_shift, 2u);
  // Probe interval dies hard: back to 1/8 and a fresh hold.
  feed(idx, 1, [](obs::MetricsWindow& w) {
    add_site(w, 9, 4, 0, kCap, 4);
  });
  EXPECT_EQ(ctl::site_plan(9).probe_shift, 3u);
  EXPECT_EQ(ctl::site_plan(9).action, ctl::SiteAction::Serial);
  bool saw_reset = false;
  for (const ctl::Decision& d : ctl::decisions())
    if (d.kind == ctl::DecisionKind::SiteProbeReset) saw_reset = true;
  EXPECT_TRUE(saw_reset);
}

// ---------------------------------------------------------------------------
// Global degraded mode
// ---------------------------------------------------------------------------

TEST(ControlDegraded, SustainedStormEntersAndRecoveryExits) {
  CtlGuard cg;
  std::uint64_t idx = 0;

  // One storm window is not enough (trip_windows = 2)...
  feed(idx, 1, [](obs::MetricsWindow& w) {
    add_site(w, 2, 100, 5, kConf, 95);
  });
  EXPECT_EQ(ctl::status().state, ctl::State::Normal);
  // ... a second one is.
  feed(idx, 1, [](obs::MetricsWindow& w) {
    add_site(w, 2, 100, 5, kConf, 95);
  });
  ASSERT_EQ(ctl::status().state, ctl::State::Degraded);
  EXPECT_EQ(ctl::status().degraded_enters, 1u);

  // Degraded overlay forces every attempt serial, regardless of site.
  {
    TxDesc tx = make_tx(0);
    ctl::apply(tx);
    EXPECT_TRUE(tx.force_serial);
  }

  // Hold expires -> probing at 1/8.
  feed(idx, 2, [](obs::MetricsWindow&) {});
  ASSERT_EQ(ctl::status().state, ctl::State::Probing);
  EXPECT_EQ(ctl::status().probe_shift, 3u);

  // Probing admits 1 in 8 attempts globally.
  int speculated = 0;
  for (int i = 0; i < 8; ++i) {
    TxDesc tx = make_tx(0);
    ctl::apply(tx);
    if (!tx.force_serial) ++speculated;
  }
  EXPECT_EQ(speculated, 1);

  // Healthy probe intervals widen 3 -> 2 -> 1, then full recovery. The
  // significance floor scales with the admitted fraction (min_samples >>
  // shift), so each probe window must carry enough traffic for its rung.
  feed(idx, 2, [](obs::MetricsWindow& w) { add_site(w, 2, 8, 8); });
  ASSERT_EQ(ctl::status().probe_shift, 1u);
  feed(idx, 1, [](obs::MetricsWindow& w) { add_site(w, 2, 8, 8); });
  EXPECT_EQ(ctl::status().state, ctl::State::Normal);
  EXPECT_EQ(ctl::status().degraded_exits, 1u);
  EXPECT_EQ(ctl::status().flaps, 0u);

  TxDesc tx = make_tx(0);
  ctl::apply(tx);
  EXPECT_FALSE(tx.force_serial);
}

TEST(ControlDegraded, WatchdogEscalationsTriggerEntry) {
  CtlGuard cg;
  std::uint64_t idx = 0;
  feed(idx, 2, [](obs::MetricsWindow& w) {
    w.gauges.watchdog_escalations = 3;  // storm signal without abort volume
  });
  EXPECT_EQ(ctl::status().state, ctl::State::Degraded);
}

// A probe interval that re-trips flaps back to Degraded — and the flap is
// BOUNDED: each round trip costs a full hold, so k storm rounds can produce
// at most k flaps, never a tight oscillation inside one round.
TEST(ControlDegraded, FlapsAreCountedAndBounded) {
  CtlGuard cg;
  std::uint64_t idx = 0;
  auto storm = [](obs::MetricsWindow& w) {
    add_site(w, 2, 100, 5, kConf, 95);
  };
  feed(idx, 2, storm);
  ASSERT_EQ(ctl::status().state, ctl::State::Degraded);
  for (int round = 0; round < 3; ++round) {
    feed(idx, 2, [](obs::MetricsWindow&) {});  // hold -> probing
    ASSERT_EQ(ctl::status().state, ctl::State::Probing);
    feed(idx, 1, storm);  // probe re-trips
    ASSERT_EQ(ctl::status().state, ctl::State::Degraded);
  }
  EXPECT_EQ(ctl::status().flaps, 3u);
  EXPECT_EQ(ctl::status().degraded_enters, 1u);  // flaps are not re-entries
}

TEST(ControlDegraded, CapacityStormSwitchesModeAndRecoveryRestoresIt) {
  ModeGuard mg(ExecMode::Htm);
  CtlGuard cg;
  ASSERT_EQ(live_mode(), ExecMode::Htm);
  std::uint64_t idx = 0;
  feed(idx, 2, [](obs::MetricsWindow& w) {
    add_site(w, 2, 100, 2, kCap, 98);
  });
  ASSERT_EQ(ctl::status().state, ctl::State::Degraded);
  // Capacity-dominated: these footprints never fit HTM, so the controller
  // moved the whole runtime to STM under a drained serial section.
  EXPECT_EQ(live_mode(), ExecMode::StmCondVar);
  EXPECT_EQ(ctl::status().mode_switches, 1u);

  feed(idx, 2, [](obs::MetricsWindow&) {});
  feed(idx, 3, [](obs::MetricsWindow& w) { add_site(w, 2, 8, 8); });
  ASSERT_EQ(ctl::status().state, ctl::State::Normal);
  EXPECT_EQ(live_mode(), ExecMode::Htm);
  EXPECT_EQ(ctl::status().mode_switches, 2u);
}

TEST(ControlDegraded, ModeSwitchDisabledByKnob) {
  ModeGuard mg(ExecMode::Htm);
  CtlGuard cg;
  config().ctl_mode_switch = false;
  std::uint64_t idx = 0;
  feed(idx, 2, [](obs::MetricsWindow& w) {
    add_site(w, 2, 100, 2, kCap, 98);
  });
  ASSERT_EQ(ctl::status().state, ctl::State::Degraded);
  EXPECT_EQ(live_mode(), ExecMode::Htm);
  EXPECT_EQ(ctl::status().mode_switches, 0u);
}

// ---------------------------------------------------------------------------
// apply() precedence and inertness
// ---------------------------------------------------------------------------

TEST(ControlApply, DisabledControllerLeavesNoTrace) {
  CtlGuard cg;
  std::uint64_t idx = 0;
  feed(idx, 2, [](obs::MetricsWindow& w) {
    add_site(w, 3, 100, 20, kCap, 80);
  });
  ASSERT_EQ(ctl::site_plan(3).action, ctl::SiteAction::Serial);
  // run_transaction consults apply() only under cfg.controller, and the
  // governor reads ctl_retries/ctl_disp only under the same gate — so a
  // stale plan is inert the moment the controller is switched off.
  config().controller = false;
  obs::MetricsWindow w = mkwin(idx);
  add_site(w, 3, 100, 20, kCap, 80);
  ctl::on_window(w);  // must be a no-op now
  EXPECT_EQ(ctl::status().evals, 2u);
}

TEST(ControlApply, PreSetForceSerialIsRespected) {
  CtlGuard cg;
  TxDesc tx = make_tx(0);
  tx.force_serial = true;  // user attr / fault plan decided first
  ctl::apply(tx);
  EXPECT_TRUE(tx.force_serial);
  EXPECT_EQ(aggregate_stats().ctl_forced_serial, 0u);
}

// ---------------------------------------------------------------------------
// Determinism
// ---------------------------------------------------------------------------

// The same synthetic window sequence must produce a byte-identical decision
// trace — decisions are pure functions of counter deltas.
TEST(ControlDeterminism, SyntheticFeedTraceIsByteIdentical) {
  std::string traces[2];
  for (int run = 0; run < 2; ++run) {
    CtlGuard cg;
    std::uint64_t idx = 0;
    feed(idx, 2, [](obs::MetricsWindow& w) {
      add_site(w, 3, 100, 40, kConf, 60);
      add_site(w, 4, 100, 20, kCap, 80);
    });
    feed(idx, 2, [](obs::MetricsWindow& w) {
      add_site(w, 2, 100, 5, kConf, 95);
    });
    feed(idx, 4, [](obs::MetricsWindow& w) { add_site(w, 2, 8, 8); });
    traces[run] = ctl::decision_trace_json();
  }
  EXPECT_FALSE(traces[0].empty());
  EXPECT_NE(traces[0].find("\"schema\":\"tle-ctl-trace/v1\""),
            std::string::npos);
  EXPECT_EQ(traces[0], traces[1]);
}

// ---------------------------------------------------------------------------
// Real-engine phase-shift chaos
// ---------------------------------------------------------------------------

/// One phase: run `txns` single-thread transactions at a dedicated site
/// under the given fault spec, then close a metrics window and feed it to
/// the controller. Returns the site's plan afterwards.
struct ChaosHarness {
  std::uint64_t seed;
  explicit ChaosHarness(std::uint64_t s) : seed(s) {
    reset_stats();
    obs::reset_site_profiles();
    obs::metrics_enable(true);
    // Per-site engine counters (the controller's planning input) only tick
    // with site profiling on; ctl::start() enables it the same way.
    obs::profile_enable(true);
    obs::metrics_set_deterministic(true);
    obs::metrics_reset();
    ctl::reset();
    fault::set_thread_stream(1);
  }
  ~ChaosHarness() {
    fault::clear();
    obs::metrics_set_deterministic(false);
    obs::metrics_enable(false);
    obs::profile_enable(false);
  }

  void run_phase(const obs::TxSite& site, const char* spec, int rounds,
                 int txns_per_round) {
    // Union in an externally-supplied perturbation plan (the sanitizer
    // matrix parks delay/yield on ctl_tick) and fold its seed in. Decisions
    // are pure functions of counter deltas, so perturbation-only plans must
    // not change any assertion below — that invariance is the point.
    std::string full = spec ? spec : "";
    std::uint64_t s = seed;
    if (const char* extra = std::getenv("TLE_FAULT_PLAN")) {
      if (!full.empty()) full += ',';
      full += extra;
      if (const char* es = std::getenv("TLE_FAULT_SEED"))
        s ^= std::strtoull(es, nullptr, 10);
    }
    if (!full.empty())
      ASSERT_TRUE(fault::install_spec(full.c_str(), s));
    else
      fault::clear();
    fault::set_thread_stream(1);
    tm_var<long> v(0);
    for (int r = 0; r < rounds; ++r) {
      for (int t = 0; t < txns_per_round; ++t)
        atomic_do(site, [&](TxContext& tx) { tx.fetch_add(v, 1L); });
      ctl::on_window(obs::metrics_tick());
    }
  }
};

TEST(ControlChaos, PhaseShiftConvergesPerPhaseAndRecovers) {
  ModeGuard mg(ExecMode::StmCondVar);
  CtlGuard cg;
  config().ctl_mode_switch = false;  // phases probe plans, not global mode
  config().stm_max_retries = 4;
  // A pure capacity storm has a global speculative abort ratio of 1.0
  // (serial fallbacks commit outside the attempt accounting), which would
  // trip the GLOBAL machine -- and per-site replanning, the thing this test
  // exercises, only runs in the Normal state. Push the global trip streak
  // out of reach; the degraded machinery has its own tests below.
  config().ctl_trip_windows = 100;
  // ... and sideline the governor's storm gate for the same reason: its
  // serial-forcing would distort the per-site attempt mix.
  config().storm_on_rate = 1.1;
  ChaosHarness h(42);
  const obs::TxSite& site = TLE_TX_SITE("ctl_chaos/phase");

  // Phase 1 — capacity-dominated: every speculative attempt dies on
  // capacity and the governor sends it serial in one attempt, so the site's
  // speculative abort ratio is 1.0 with capacity >= half of aborts: plan
  // goes Serial.
  h.run_phase(site, "capacity@write=1", 4, 64);
  EXPECT_EQ(ctl::site_plan(site.id).action, ctl::SiteAction::Serial);
  EXPECT_EQ(ctl::site_plan(site.id).dominant, AbortCause::Capacity);

  // Phase 2 — healthy: probes widen and the plan returns to Auto.
  h.run_phase(site, nullptr, 8, 64);
  EXPECT_EQ(ctl::site_plan(site.id).action, ctl::SiteAction::Auto);

  // Phase 3 — conflict-dominated: the abort ratio lands between release
  // and trip, so the plan is Boost with a backoff disposition, not Serial.
  h.run_phase(site, "conflict@read=0.7", 6, 64);
  EXPECT_EQ(ctl::site_plan(site.id).action, ctl::SiteAction::Boost);
  EXPECT_EQ(ctl::site_plan(site.id).dominant, AbortCause::Conflict);

  // Phase 4 — healthy again: Boost is re-classified straight to Auto (no
  // probe ladder needed for a non-serial plan).
  h.run_phase(site, nullptr, 4, 64);
  EXPECT_EQ(ctl::site_plan(site.id).action, ctl::SiteAction::Auto);

  // Flaps stay bounded across all four phases (no global trip even
  // happened: per-site plans moved, the state machine stayed Normal).
  EXPECT_EQ(ctl::status().state, ctl::State::Normal);
  EXPECT_EQ(ctl::status().flaps, 0u);
  EXPECT_LE(ctl::status().plan_changes, 6u);
}

TEST(ControlChaos, DegradedEntryAndExitUnderRealStorm) {
  ModeGuard mg(ExecMode::StmCondVar);
  CtlGuard cg;
  config().ctl_mode_switch = false;
  config().stm_max_retries = 6;
  // Raise the governor's own storm thresholds out of the way so the test
  // exercises the controller's degraded machinery, not the storm gate.
  config().storm_on_rate = 1.1;
  ChaosHarness h(7);
  const obs::TxSite& site = TLE_TX_SITE("ctl_chaos/storm");

  // Spurious storm: nearly every speculative attempt dies, immediate
  // retries burn the budget, abort ratio ~1 -> sustained trip.
  h.run_phase(site, "spurious@commit=0.97", 3, 80);
  EXPECT_EQ(ctl::status().state, ctl::State::Degraded);
  EXPECT_EQ(ctl::status().degraded_enters, 1u);
  EXPECT_GE(aggregate_stats().ctl_forced_serial, 0u);

  // Storm clears: hold, probes, widen, full recovery — all on live traffic.
  h.run_phase(site, nullptr, 12, 80);
  EXPECT_EQ(ctl::status().state, ctl::State::Normal);
  EXPECT_EQ(ctl::status().degraded_exits, 1u);
  // Recovery probes actually speculated on the way out.
  EXPECT_GT(aggregate_stats().ctl_probe_attempts, 0u);
}

// The whole chaos scenario, run twice under the same seed with single-
// threaded traffic and deterministic windows, must produce a byte-identical
// decision trace.
TEST(ControlChaos, PinnedSeedDoubleRunTraceIsByteIdentical) {
  std::string traces[2];
  for (int run = 0; run < 2; ++run) {
    ModeGuard mg(ExecMode::StmCondVar);
    CtlGuard cg;
    config().ctl_mode_switch = false;
    config().stm_max_retries = 4;
    config().storm_on_rate = 1.1;
    ChaosHarness h(0xF417);
    const obs::TxSite& site = TLE_TX_SITE("ctl_chaos/replay");
    h.run_phase(site, "capacity@write=1", 4, 64);
    h.run_phase(site, nullptr, 8, 64);
    h.run_phase(site, "spurious@commit=0.97", 3, 80);
    h.run_phase(site, nullptr, 12, 80);
    traces[run] = ctl::decision_trace_json();
  }
  EXPECT_FALSE(traces[0].empty());
  EXPECT_GT(traces[0].size(), 2u + sizeof("tle-ctl-trace/v1"));
  EXPECT_EQ(traces[0], traces[1]);
}

// ---------------------------------------------------------------------------
// Controller state in the metrics export
// ---------------------------------------------------------------------------

TEST(ControlExport, MetricsJsonCarriesControllerBlockAndDecisions) {
  CtlGuard cg;
  reset_stats();
  obs::reset_site_profiles();
  obs::metrics_enable(true);
  obs::metrics_set_deterministic(true);
  obs::metrics_reset();
  std::uint64_t idx = 0;
  feed(idx, 2, [](obs::MetricsWindow& w) {
    add_site(w, 2, 100, 5, kConf, 95);
  });
  ASSERT_EQ(ctl::status().state, ctl::State::Degraded);
  const obs::MetricsWindow w = obs::metrics_tick();
  EXPECT_TRUE(w.ctl.enabled);
  EXPECT_STREQ(w.ctl.state, "degraded");
  EXPECT_EQ(w.ctl.degraded_enters, 1u);
  ASSERT_FALSE(w.ctl.decisions.empty());
  const std::string json = obs::metrics_json(w);
  EXPECT_NE(json.find("\"ctl\":{\"enabled\":true"), std::string::npos);
  EXPECT_NE(json.find("\"state\":\"degraded\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"degraded-enter\""), std::string::npos);
  EXPECT_NE(json.find("\"starved_sites\":["), std::string::npos);

  // A second tick must not re-emit the same decisions (cursor advanced).
  const obs::MetricsWindow w2 = obs::metrics_tick();
  EXPECT_TRUE(w2.ctl.decisions.empty());

  obs::metrics_set_deterministic(false);
  obs::metrics_enable(false);
  obs::profile_enable(false);
}

TEST(ControlExport, CtlBlockPresentEvenWhenDisabled) {
  // No CtlGuard: controller off. The block must still be in every record so
  // stream checkers can require it unconditionally.
  reset_stats();
  obs::metrics_enable(true);
  obs::metrics_reset();
  const std::string json = obs::metrics_json(obs::metrics_tick());
  EXPECT_NE(json.find("\"ctl\":{\"enabled\":false"), std::string::npos);
  obs::metrics_enable(false);
  obs::profile_enable(false);
}

TEST(ControlExport, PrometheusCarriesControllerFamilies) {
  CtlGuard cg;
  const std::string prom = obs::prometheus_text();
  EXPECT_NE(prom.find("tle_ctl_evals_total"), std::string::npos);
  EXPECT_NE(prom.find("tle_ctl_flaps_total"), std::string::npos);
  EXPECT_NE(prom.find("tle_ctl_state"), std::string::npos);
}

TEST(ControlExport, StarvedSitesRankWatchdogVictims) {
  CtlGuard cg;
  reset_stats();
  obs::reset_site_profiles();
  obs::metrics_enable(true);
  obs::metrics_reset();
  const obs::TxSite& site = TLE_TX_SITE("ctl_export/starved");
  // Manufacture a watchdog escalation at a known site.
  obs::site_counters(my_slot_id(), site.id)
      .watchdog_escalations.fetch_add(2, std::memory_order_relaxed);
  const obs::MetricsWindow w = obs::metrics_tick();
  const std::string json = obs::metrics_json(w);
  EXPECT_NE(json.find("\"starved_sites\":[{\"id\":"), std::string::npos);
  EXPECT_NE(json.find("ctl_export/starved"), std::string::npos);
  EXPECT_NE(json.find("\"watchdog_total\":2"), std::string::npos);
  obs::metrics_enable(false);
  obs::profile_enable(false);
}

// ---------------------------------------------------------------------------
// Shutdown ordering (the sampler/controller teardown contract)
// ---------------------------------------------------------------------------

TEST(ControlShutdown, MetricsStopJoinsControllerBeforeFinalFlush) {
  CtlGuard cg;
  config().metrics_period_ms = 5;
  ctl::start();
  ASSERT_TRUE(ctl::running());
  ASSERT_TRUE(obs::metrics_sampler_running());  // start() pulled metrics up
  std::this_thread::sleep_for(std::chrono::milliseconds(30));

  // metrics_stop() must join the controller thread BEFORE the residual
  // final window, so no evaluation can land after the stream's last record.
  obs::metrics_stop();
  EXPECT_FALSE(ctl::running());
  EXPECT_FALSE(obs::metrics_sampler_running());

  const std::uint64_t evals_at_stop = ctl::status().evals;
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_EQ(ctl::status().evals, evals_at_stop);

  // Idempotence both ways, and a clean restart still works.
  obs::metrics_stop();
  ctl::stop();
  ctl::start();
  EXPECT_TRUE(ctl::running());
  obs::metrics_stop();
  EXPECT_FALSE(ctl::running());
  obs::metrics_enable(false);
  obs::profile_enable(false);
}

// The controller thread never re-plans from the shutdown residue: a
// final_flush window is skipped even when fed directly.
TEST(ControlShutdown, FinalFlushWindowNeverReplans) {
  CtlGuard cg;
  std::uint64_t idx = 0;
  obs::MetricsWindow w = mkwin(idx++);
  add_site(w, 3, 100, 5, kConf, 95);
  w.final_flush = true;
  ctl::on_window(w);
  EXPECT_EQ(ctl::status().evals, 0u);
  EXPECT_EQ(ctl::status().state, ctl::State::Normal);
}

}  // namespace
}  // namespace tle
