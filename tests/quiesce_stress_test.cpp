// Stress and regression coverage for the quiescence substrate: shared grace
// periods, spin-then-park waiting, and epoch-based limbo reclamation.
//
//   * A multi-threaded churn test where writers free memory under the
//     NoQuiesce policy while readers hold long transactions — run under
//     ASan (scripts/run_sanitizers.sh) it proves limbo frees never release
//     storage a zombie reader can still touch, and the privatization
//     auditor must agree (zero flagged accesses).
//   * Regression tests that a quiescer parked on a straggler's epoch word
//     wakes when the straggler commits AND when it aborts (both exits go
//     through epoch_exit's parked-guarded notify).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "test_support.hpp"
#include "tm/audit.hpp"

namespace tle {
namespace {

using testing::ModeGuard;
using testing::run_threads;

struct Node {
  tm_var<long> val;
  explicit Node(long v) noexcept : val(v) {}
};

// Writers churn nodes through shared slots (create + destroy per commit)
// under TM_NoQuiesce, while readers hold long transactions dereferencing
// the slot pointers — the §IV-B scenario where premature reclamation hands
// a zombie reader freed storage. multi_domain puts readers in a DIFFERENT
// quiescence domain than the writers, so the writers' ordering quiesce
// never waits for them: only the limbo list's all-domain grace period
// stands between a freed node and a use-after-free. A small
// limbo_max_pending forces mid-run flushes so the forced-grace path runs
// against live readers, not just the thread-exit drain.
TEST(QuiesceStress, NoUseAfterFreeWithNoQuiesceFreesAndLongReaders) {
  ModeGuard g(ExecMode::StmCondVarNoQ);
  config().multi_domain = true;
  config().limbo_max_pending = 64;
  reset_stats();

  constexpr int kSlots = 8;
  constexpr int kWriters = 2;
  constexpr int kReaders = 2;
  constexpr long kItersPerWriter = 400;

  elidable_mutex wlock(/*domain=*/1);
  elidable_mutex rlock(/*domain=*/2);
  tm_var<Node*> slots[kSlots];
  for (int i = 0; i < kSlots; ++i)
    slots[i].unsafe_set(::new (::operator new(sizeof(Node))) Node(0));
  audit::reset();
  audit::enable(true);

  std::atomic<int> writers_done{0};

  run_threads(kWriters + kReaders, [&](int id) {
    if (id < kWriters) {
      for (long it = 0; it < kItersPerWriter; ++it) {
        critical(wlock, [&](TxContext& tx) {
          tx.no_quiesce();  // denied: the transaction frees memory
          const int s = static_cast<int>((id + it) % kSlots);
          Node* old = tx.read(slots[s]);
          Node* fresh = tx.create<Node>(it);
          tx.write(slots[s], fresh);
          tx.destroy(old);
        });
      }
      writers_done.fetch_add(1);
    } else {
      while (writers_done.load(std::memory_order_acquire) < kWriters) {
        critical(rlock, [&](TxContext& tx) {
          // A long reader: several full sweeps inside ONE transaction, so
          // writers commit (and free) while this epoch is still open.
          long sum = 0;
          for (int round = 0; round < 4; ++round)
            for (int s = 0; s < kSlots; ++s) {
              Node* p = tx.read(slots[s]);
              sum += tx.read(p->val);  // UAF here if reclamation is broken
            }
          EXPECT_GE(sum, 0);
        });
      }
    }
  });

  const auto s = aggregate_stats();
  const auto rep = audit::report();
  audit::enable(false);
  EXPECT_EQ(rep.flagged_accesses, 0u)
      << "limbo reclamation must leave no privatization hazard";
  // Every free was released exactly once: speculative commits routed theirs
  // through limbo (each one denied its NoQuiesce skip), and any commit that
  // fell back to serial mode freed directly under the write lock.
  const auto total = static_cast<std::uint64_t>(kWriters * kItersPerWriter);
  EXPECT_EQ(s.tm_frees, total);
  EXPECT_GE(s.limbo_enqueued, 1u);
  EXPECT_EQ(s.limbo_drained, s.limbo_enqueued)
      << "thread exit must flush every limbo batch";
  EXPECT_EQ(s.noquiesce_ignored_free, s.limbo_enqueued);

  for (int i = 0; i < kSlots; ++i) ::operator delete(slots[i].unsafe_get());
}

// A quiescing committer that exhausts its bounded spin parks on the
// straggler's epoch word; the straggler's COMMIT must wake it.
TEST(ParkedQuiescer, WakesWhenStragglerCommits) {
  ModeGuard g(ExecMode::StmCondVar);  // Always quiesce
  config().park_spin_limit = 4;       // park almost immediately
  reset_stats();
  tm_var<long> v(0);
  std::atomic<bool> peer_open{false}, release{false};

  std::thread peer([&] {
    atomic_do([&](TxContext& tx) {
      (void)tx.read(v);
      peer_open.store(true);
      while (!release.load(std::memory_order_relaxed))
        std::this_thread::yield();
    });
  });
  while (!peer_open.load()) std::this_thread::yield();

  std::thread committer([&] {
    atomic_do([&](TxContext& tx) { tx.write(v, 1L); });  // quiesce blocks
  });
  // Wait until the committer is provably parked (the counter is bumped
  // immediately before the wait; atomic::wait re-checks the value, so a
  // notify landing inside that window still releases it).
  while (aggregate_stats().parked_waits < 1) std::this_thread::yield();

  release.store(true);  // peer commits -> epoch_exit must notify
  peer.join();
  committer.join();  // hangs here (until the test timeout) on a lost wake

  const auto s = aggregate_stats();
  EXPECT_GE(s.parked_waits, 1u);
  EXPECT_GE(s.quiesce_waits, 1u);
}

// Same parked committer, but the straggler ABORTS instead of committing —
// the rollback path's epoch_exit must deliver the same wake-up.
TEST(ParkedQuiescer, WakesWhenStragglerAborts) {
  ModeGuard g(ExecMode::StmCondVar);
  config().park_spin_limit = 4;
  reset_stats();
  tm_var<long> v(0);
  std::atomic<bool> peer_open{false}, do_abort{false};
  std::atomic<int> attempts{0};

  std::thread peer([&] {
    atomic_do([&](TxContext& tx) {
      (void)tx.read(v);
      if (attempts.fetch_add(1) == 0) {
        peer_open.store(true);
        while (!do_abort.load(std::memory_order_relaxed))
          std::this_thread::yield();
        tx.restart();  // user abort: rollback runs epoch_exit
      }
      // The retry attempt commits immediately.
    });
  });
  while (!peer_open.load()) std::this_thread::yield();

  std::thread committer([&] {
    atomic_do([&](TxContext& tx) { tx.write(v, 1L); });
  });
  while (aggregate_stats().parked_waits < 1) std::this_thread::yield();

  do_abort.store(true);  // peer aborts -> epoch_exit must notify
  peer.join();
  committer.join();

  const auto s = aggregate_stats();
  EXPECT_GE(s.parked_waits, 1u);
  EXPECT_GE(s.aborts[static_cast<int>(AbortCause::UserExplicit)], 1u);
}

}  // namespace
}  // namespace tle
