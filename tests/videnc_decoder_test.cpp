// Decoder tests: the parallel encoder's bitstream must decode to the
// encoder's reconstruction planes bit-exactly, in every execution mode —
// the strongest end-to-end check of the wavefront implementation.
#include <gtest/gtest.h>

#include "test_support.hpp"
#include "videnc/decoder.hpp"
#include "videnc/encoder.hpp"
#include "videnc/transform.hpp"

namespace tle::videnc {
namespace {

using tle::testing::kAllModes;
using tle::testing::ModeGuard;

EncoderConfig cfg_for(int w, int h, int frames) {
  EncoderConfig cfg;
  cfg.width = w;
  cfg.height = h;
  cfg.frames = frames;
  cfg.gop = 4;
  cfg.search_range = 4;
  cfg.worker_threads = 2;
  cfg.frame_threads = 2;
  cfg.keep_recon = true;
  return cfg;
}

TEST(ExpGolomb, UnsignedRoundTrip) {
  bzip::BitWriter bw;
  for (std::uint32_t v : {0u, 1u, 2u, 7u, 8u, 255u, 65535u, 1000000u})
    put_ue(bw, v);
  auto buf = bw.finish();
  bzip::BitReader br(buf.data(), buf.size());
  for (std::uint32_t v : {0u, 1u, 2u, 7u, 8u, 255u, 65535u, 1000000u}) {
    std::uint32_t got;
    ASSERT_TRUE(get_ue(br, &got));
    EXPECT_EQ(got, v);
  }
}

TEST(ExpGolomb, SignedRoundTrip) {
  bzip::BitWriter bw;
  for (std::int32_t v : {0, 1, -1, 2, -2, 100, -100, 32767, -32768})
    put_se(bw, v);
  auto buf = bw.finish();
  bzip::BitReader br(buf.data(), buf.size());
  for (std::int32_t v : {0, 1, -1, 2, -2, 100, -100, 32767, -32768}) {
    std::int32_t got;
    ASSERT_TRUE(get_se(br, &got));
    EXPECT_EQ(got, v);
  }
}

class DecModes : public ::testing::TestWithParam<ExecMode> {};

INSTANTIATE_TEST_SUITE_P(Videnc, DecModes, ::testing::ValuesIn(kAllModes),
                         [](const auto& info) {
                           std::string s = to_string(info.param);
                           for (auto& c : s)
                             if (!isalnum(static_cast<unsigned char>(c))) c = '_';
                           return s;
                         });

TEST_P(DecModes, DecodeReproducesEncoderReconExactly) {
  ModeGuard g(GetParam());
  const EncoderConfig cfg = cfg_for(96, 64, 6);
  const EncodeResult enc = encode(cfg);
  ASSERT_EQ(enc.recon.size(), 6u);
  const DecodedVideo dec = decode_video(enc.bitstream, cfg.width, cfg.height);
  ASSERT_TRUE(dec.ok) << dec.error;
  ASSERT_EQ(dec.frames.size(), enc.recon.size());
  for (std::size_t i = 0; i < dec.frames.size(); ++i)
    EXPECT_EQ(dec.frames[i], enc.recon[i]) << "frame " << i << " mismatch";
}

TEST(VidencDecoder, OddDimensionsRoundTrip) {
  // Partial CTUs / partial blocks at the right and bottom edges.
  ModeGuard g(ExecMode::StmCondVar);
  const EncoderConfig cfg = cfg_for(100, 52, 4);
  const EncodeResult enc = encode(cfg);
  const DecodedVideo dec = decode_video(enc.bitstream, 100, 52);
  ASSERT_TRUE(dec.ok) << dec.error;
  ASSERT_EQ(dec.frames.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(dec.frames[i], enc.recon[i]);
}

TEST(VidencDecoder, AllIntraStreamDecodes) {
  ModeGuard g(ExecMode::Lock);
  EncoderConfig cfg = cfg_for(96, 64, 3);
  cfg.gop = 1;  // all intra
  const EncodeResult enc = encode(cfg);
  const DecodedVideo dec = decode_video(enc.bitstream, 96, 64);
  ASSERT_TRUE(dec.ok) << dec.error;
  for (std::size_t i = 0; i < 3; ++i) EXPECT_EQ(dec.frames[i], enc.recon[i]);
}

TEST(VidencDecoder, DecodedQualityMatchesReportedPsnr) {
  ModeGuard g(ExecMode::Htm);
  const EncoderConfig cfg = cfg_for(96, 64, 4);
  const EncodeResult enc = encode(cfg);
  const DecodedVideo dec = decode_video(enc.bitstream, 96, 64);
  ASSERT_TRUE(dec.ok) << dec.error;
  // Recompute SSE against the original source frames.
  std::uint64_t sse = 0;
  for (int i = 0; i < cfg.frames; ++i) {
    const Plane src = synth_frame(cfg.width, cfg.height, i, cfg.seed);
    sse += plane_sse(src, dec.frames[static_cast<std::size_t>(i)]);
  }
  EXPECT_EQ(sse, enc.stats.sse) << "decoder must reproduce reported quality";
}

TEST(VidencDecoder, SlicedStreamDecodesExactly) {
  // Multiple independent slices per frame: the decoder must mirror the
  // slice partition and boundary prediction rules.
  for (int slices : {2, 3}) {
    ModeGuard g(ExecMode::StmCondVar);
    EncoderConfig cfg = cfg_for(96, 64, 4);  // 4 CTU rows
    cfg.slices = slices;
    const EncodeResult enc = encode(cfg);
    const DecodedVideo dec = decode_video(enc.bitstream, 96, 64);
    ASSERT_TRUE(dec.ok) << "slices=" << slices << ": " << dec.error;
    ASSERT_EQ(dec.frames.size(), enc.recon.size());
    for (std::size_t i = 0; i < dec.frames.size(); ++i)
      EXPECT_EQ(dec.frames[i], enc.recon[i])
          << "slices=" << slices << " frame " << i;
  }
}

TEST(VidencDecoder, SlicedEncodeIsDeterministicAcrossThreads) {
  EncoderConfig cfg = cfg_for(96, 64, 4);
  cfg.slices = 2;
  std::vector<std::uint8_t> baseline;
  for (ExecMode m : kAllModes) {
    ModeGuard g(m);
    for (int workers : {1, 4}) {
      EncoderConfig c2 = cfg;
      c2.worker_threads = workers;
      const auto r = encode(c2);
      if (baseline.empty())
        baseline = r.bitstream;
      else
        ASSERT_EQ(r.bitstream, baseline)
            << to_string(m) << " workers=" << workers;
    }
  }
}

TEST(VidencDecoder, SlicesChangeTheBitstream) {
  // Boundary prediction loss: sliced output differs from unsliced.
  ModeGuard g(ExecMode::Lock);
  EncoderConfig one = cfg_for(96, 64, 3);
  EncoderConfig two = cfg_for(96, 64, 3);
  two.slices = 2;
  EXPECT_NE(encode(one).bitstream, encode(two).bitstream);
}

TEST(VidencDecoder, RejectsTruncation) {
  ModeGuard g(ExecMode::Lock);
  const EncoderConfig cfg = cfg_for(96, 64, 2);
  const EncodeResult enc = encode(cfg);
  for (std::size_t cut : {1u, 2u, 5u, 40u}) {
    std::vector<std::uint8_t> clipped(enc.bitstream.begin(),
                                      enc.bitstream.begin() + cut);
    EXPECT_FALSE(decode_video(clipped, 96, 64).ok) << "cut " << cut;
  }
}

TEST(VidencDecoder, RejectsBadDimensions) {
  EXPECT_FALSE(decode_video({}, 0, 64).ok);
  EXPECT_FALSE(decode_video({}, 96, -1).ok);
}

TEST(VidencDecoder, EmptyStreamIsZeroFrames) {
  const DecodedVideo dec = decode_video({}, 96, 64);
  EXPECT_TRUE(dec.ok);
  EXPECT_TRUE(dec.frames.empty());
}

}  // namespace
}  // namespace tle::videnc
