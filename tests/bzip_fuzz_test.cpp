// Adversarial/structured-input property tests for the bzip codec: inputs
// chosen to stress each pipeline stage's edge behaviour.
#include <gtest/gtest.h>

#include <numeric>

#include "bzip/block_codec.hpp"
#include "util/rng.hpp"

namespace tle::bzip {
namespace {

void expect_roundtrip(const std::vector<std::uint8_t>& in, const char* what) {
  const auto comp = compress_block(in);
  const auto dec = decompress_block(comp);
  ASSERT_TRUE(dec.ok) << what << ": " << dec.error;
  ASSERT_EQ(dec.data, in) << what;
}

TEST(BzipFuzz, SingleRepeatedByteAllValues) {
  for (int b : {0, 1, 0x41, 0xFE, 0xFF}) {
    std::vector<std::uint8_t> in(5000, static_cast<std::uint8_t>(b));
    expect_roundtrip(in, "repeated byte");
  }
}

TEST(BzipFuzz, SawtoothPatterns) {
  for (int period : {2, 3, 17, 255, 256, 257}) {
    std::vector<std::uint8_t> in(8192);
    for (std::size_t i = 0; i < in.size(); ++i)
      in[i] = static_cast<std::uint8_t>(i % period);
    expect_roundtrip(in, "sawtooth");
  }
}

TEST(BzipFuzz, AllByteValuesCyclic) {
  std::vector<std::uint8_t> in(256 * 16);
  std::iota(in.begin(), in.begin() + 256, 0);
  for (int k = 1; k < 16; ++k)
    std::copy(in.begin(), in.begin() + 256, in.begin() + k * 256);
  expect_roundtrip(in, "cyclic alphabet");
}

TEST(BzipFuzz, RunsAtRle1Boundaries) {
  // Runs hitting RLE1's 4- and 254-run thresholds back to back, with the
  // count byte equal to the run byte where possible.
  std::vector<std::uint8_t> in;
  for (std::size_t run : {3u, 4u, 5u, 100u, 253u, 254u, 255u, 300u, 508u}) {
    in.insert(in.end(), run, static_cast<std::uint8_t>(run & 0xFF));
    in.push_back('#');
  }
  expect_roundtrip(in, "rle boundaries");
}

TEST(BzipFuzz, TinySizes) {
  Xoshiro256 rng(1);
  for (std::size_t n = 0; n <= 16; ++n) {
    std::vector<std::uint8_t> in(n);
    for (auto& b : in) b = static_cast<std::uint8_t>(rng());
    expect_roundtrip(in, "tiny");
  }
}

TEST(BzipFuzz, AlternatingCompressibleAndNoise) {
  Xoshiro256 rng(2);
  std::vector<std::uint8_t> in;
  for (int seg = 0; seg < 24; ++seg) {
    if (seg % 2 == 0) {
      in.insert(in.end(), 400, static_cast<std::uint8_t>('a' + seg % 26));
    } else {
      for (int i = 0; i < 400; ++i)
        in.push_back(static_cast<std::uint8_t>(rng()));
    }
  }
  expect_roundtrip(in, "mixed");
}

TEST(BzipFuzz, PeriodicInputsStressRotationSort) {
  // Highly periodic data creates maximal ties in the BWT rotation sort.
  for (int period : {1, 2, 4, 8}) {
    std::vector<std::uint8_t> in(4096);
    for (std::size_t i = 0; i < in.size(); ++i)
      in[i] = static_cast<std::uint8_t>((i / static_cast<std::size_t>(period)) & 1 ? 'x' : 'y');
    expect_roundtrip(in, "periodic");
  }
}

TEST(BzipFuzz, RandomSizedRandomContent) {
  Xoshiro256 rng(3);
  for (int trial = 0; trial < 25; ++trial) {
    const std::size_t n = rng.below(20000);
    std::vector<std::uint8_t> in(n);
    // Mix distribution widths: narrow alphabets produce long MTF zero runs.
    const std::uint64_t width = 1 + rng.below(256);
    for (auto& b : in) b = static_cast<std::uint8_t>(rng.below(width));
    expect_roundtrip(in, "random");
  }
}

TEST(BzipFuzz, HeaderFieldCorruptionAlwaysDetected) {
  const auto in = std::vector<std::uint8_t>(3000, 'q');
  const auto comp = compress_block(in);
  // Corrupt each of the five header words in turn.
  for (std::size_t field = 0; field < 5; ++field) {
    auto bad = comp;
    bad[field * 4 + 1] ^= 0x5A;
    const auto dec = decompress_block(bad);
    EXPECT_FALSE(dec.ok && dec.data == in) << "field " << field;
  }
}

}  // namespace
}  // namespace tle::bzip
