// Tests for the striped simulated-HTM commit sequence, subscription
// policy, and the GV5-style deferred STM clock:
//
//   * stripe mapping determinism, config validation, stripe_of() agreement;
//   * the intersection matrix: a commit on a foreign stripe is invisible to
//     a reader, an aliased commit on a subscribed stripe costs exactly one
//     false revalidation, a true conflict still aborts and retries;
//   * htm_seq_stripes=1 reproduces the old single-sequence protocol;
//   * stripe_bumps accounting per distinct write stripe;
//   * the lazy-subscription unsafety: a serial-writer window that starts
//     and finishes inside a lazy HTM transaction yields the forbidden
//     mixed-snapshot (zombie) commit, while eager per-access subscription
//     provably aborts the reader instead;
//   * StripeBusy is injectable by name, drained budget-free, and bounded
//     by the watchdog;
//   * seeded fault plans replay byte-identically over this scenario;
//   * the deferred (GV5) clock mode keeps counter workloads exact.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "test_support.hpp"
#include "tm/fault/fault.hpp"
#include "tm/tm.hpp"

namespace {

using tle::AbortCause;
using tle::aggregate_stats;
using tle::atomic_do;
using tle::config;
using tle::ExecMode;
using tle::HtmSubscription;
using tle::htm_stripe_index;
using tle::kHtmStripeMax;
using tle::reset_stats;
using tle::StatsSnapshot;
using tle::StmClockMode;
using tle::stripe_of;
using tle::synchronized_do;
using tle::tm_var;
using tle::TxContext;
using tle::validate_config;
using tle::testing::ModeGuard;
using tle::testing::run_threads;
namespace fault = tle::fault;

std::uint64_t aborts_of(const StatsSnapshot& s, AbortCause c) {
  return s.aborts[static_cast<int>(c)];
}

/// Find an index in `vars` whose stripe satisfies `pred`; -1 if none.
template <typename Pred>
int find_var(const std::vector<tm_var<long>>& vars, Pred pred) {
  for (std::size_t i = 0; i < vars.size(); ++i)
    if (pred(stripe_of(vars[i]), i)) return static_cast<int>(i);
  return -1;
}

// ---------------------------------------------------------------------------
// Mapping & config
// ---------------------------------------------------------------------------

TEST(StripeMapping, DeterministicBoundedAndAgreesWithStripeOf) {
  ModeGuard mode(ExecMode::Htm);
  config().htm_seq_stripes = 16;
  std::vector<tm_var<long>> vars(64);
  for (const auto& v : vars) {
    const unsigned s = stripe_of(v);
    EXPECT_LT(s, config().htm_seq_stripes);
    EXPECT_EQ(s, htm_stripe_index(&v.raw()));
    EXPECT_EQ(s, stripe_of(v));  // stable across calls
  }
}

TEST(StripeMapping, SingleStripeCollapsesToZero) {
  ModeGuard mode(ExecMode::Htm);
  config().htm_seq_stripes = 1;
  std::vector<tm_var<long>> vars(32);
  for (const auto& v : vars) EXPECT_EQ(stripe_of(v), 0u);
}

TEST(StripeConfig, ValidateRejectsNonPowerOfTwoAndOutOfRange) {
  tle::RuntimeConfig cfg;
  for (unsigned good : {1u, 2u, 16u, kHtmStripeMax}) {
    cfg.htm_seq_stripes = good;
    EXPECT_EQ(validate_config(cfg), nullptr) << good;
  }
  for (unsigned bad : {0u, 3u, 24u, kHtmStripeMax * 2}) {
    cfg.htm_seq_stripes = bad;
    EXPECT_NE(validate_config(cfg), nullptr) << bad;
  }
}

// ---------------------------------------------------------------------------
// Intersection matrix
// ---------------------------------------------------------------------------

/// Rendezvous scaffold: a reader transaction that logs `first`, lets the
/// writer thread run `writer_fn` to completion, then touches `after` and
/// commits. Returns the reader's two observed values.
struct MatrixResult {
  long first = -1;
  long again = -1;
};

template <typename WriterFn>
MatrixResult run_matrix_cell(tm_var<long>& first, tm_var<long>& after,
                             WriterFn writer_fn) {
  // Monotonic flags, not a phase counter: an aborted reader re-runs its
  // body, and a re-store must not rewind the rendezvous.
  std::atomic<bool> reader_in{false}, writer_done{false};
  MatrixResult out;
  std::thread writer([&] {
    while (!reader_in.load(std::memory_order_acquire))
      std::this_thread::yield();
    writer_fn();
    writer_done.store(true, std::memory_order_release);
  });
  atomic_do([&](TxContext& ctx) {
    out.first = ctx.read(first);
    reader_in.store(true, std::memory_order_release);
    while (!writer_done.load(std::memory_order_acquire))
      std::this_thread::yield();
    (void)ctx.read(after);       // fresh address: subscribes + revalidates
    out.again = ctx.read(first);  // served from the value log
  });
  writer.join();
  return out;
}

TEST(StripeMatrix, ForeignStripeCommitIsInvisibleToReader) {
  ModeGuard mode(ExecMode::Htm);
  config().htm_seq_stripes = 16;
  reset_stats();
  std::vector<tm_var<long>> vars(2048);
  const int a = find_var(vars, [](unsigned, std::size_t) { return true; });
  const unsigned sa = stripe_of(vars[a]);
  // Writer target on a different stripe; second reader address on stripe sa
  // so the new subscription re-checks only the unmoved home stripe.
  const int b = find_var(vars, [&](unsigned s, std::size_t i) {
    return s != sa && static_cast<int>(i) != a;
  });
  const int a2 = find_var(vars, [&](unsigned s, std::size_t i) {
    return s == sa && static_cast<int>(i) != a;
  });
  ASSERT_GE(b, 0);
  ASSERT_GE(a2, 0);

  const MatrixResult r = run_matrix_cell(vars[a], vars[a2], [&] {
    atomic_do([&](TxContext& ctx) { ctx.write(vars[b], 7L); });
  });
  EXPECT_EQ(r.first, 0);
  EXPECT_EQ(r.again, 0);
  const StatsSnapshot s = aggregate_stats();
  EXPECT_EQ(aborts_of(s, AbortCause::Validation), 0u);
  EXPECT_EQ(s.stripe_false_revalidations, 0u);
  EXPECT_EQ(vars[b].unsafe_get(), 7);
}

TEST(StripeMatrix, AliasedCommitCostsOneFalseRevalidationNotAnAbort) {
  ModeGuard mode(ExecMode::Htm);
  config().htm_seq_stripes = 16;
  reset_stats();
  std::vector<tm_var<long>> vars(2048);
  const int a = find_var(vars, [](unsigned, std::size_t) { return true; });
  const unsigned sa = stripe_of(vars[a]);
  // A different address that aliases onto the reader's subscribed stripe.
  const int alias = find_var(vars, [&](unsigned s, std::size_t i) {
    return s == sa && static_cast<int>(i) != a;
  });
  const int other = find_var(vars, [&](unsigned s, std::size_t i) {
    return static_cast<int>(i) != a && static_cast<int>(i) != alias &&
           s != sa;
  });
  ASSERT_GE(alias, 0);
  ASSERT_GE(other, 0);

  const MatrixResult r = run_matrix_cell(vars[a], vars[other], [&] {
    atomic_do([&](TxContext& ctx) { ctx.write(vars[alias], 9L); });
  });
  EXPECT_EQ(r.first, 0);
  EXPECT_EQ(r.again, 0);
  const StatsSnapshot s = aggregate_stats();
  EXPECT_EQ(aborts_of(s, AbortCause::Validation), 0u);
  EXPECT_GE(s.stripe_false_revalidations, 1u);
  EXPECT_EQ(vars[alias].unsafe_get(), 9);
}

TEST(StripeMatrix, TrueConflictOnSubscribedStripeAbortsAndRetries) {
  ModeGuard mode(ExecMode::Htm);
  config().htm_seq_stripes = 16;
  reset_stats();
  std::vector<tm_var<long>> vars(2048);
  const int a = find_var(vars, [](unsigned, std::size_t) { return true; });
  const int other = find_var(vars, [&](unsigned, std::size_t i) {
    return static_cast<int>(i) != a;
  });
  ASSERT_GE(other, 0);

  // The writer overwrites the very word the reader logged; once the retry
  // re-reads it the rendezvous phases are already past, so attempt 2 runs
  // straight through and must observe the new value.
  const MatrixResult r = run_matrix_cell(vars[a], vars[other], [&] {
    atomic_do([&](TxContext& ctx) { ctx.write(vars[a], 11L); });
  });
  EXPECT_EQ(r.first, 11);
  EXPECT_EQ(r.again, 11);
  const StatsSnapshot s = aggregate_stats();
  EXPECT_GE(aborts_of(s, AbortCause::Validation), 1u);
}

// ---------------------------------------------------------------------------
// Accounting & the 1-stripe ablation config
// ---------------------------------------------------------------------------

TEST(StripeAccounting, BumpsCountDistinctWriteStripes) {
  ModeGuard mode(ExecMode::Htm);
  config().htm_seq_stripes = 16;
  std::vector<tm_var<long>> vars(2048);
  const int a = find_var(vars, [](unsigned, std::size_t) { return true; });
  const unsigned sa = stripe_of(vars[a]);
  const int same = find_var(vars, [&](unsigned s, std::size_t i) {
    return s == sa && static_cast<int>(i) != a;
  });
  const int diff = find_var(vars, [&](unsigned s, std::size_t) {
    return s != sa;
  });
  ASSERT_GE(same, 0);
  ASSERT_GE(diff, 0);

  reset_stats();
  atomic_do([&](TxContext& ctx) {  // two writes, one stripe
    ctx.write(vars[a], 1L);
    ctx.write(vars[same], 1L);
  });
  EXPECT_EQ(aggregate_stats().stripe_bumps, 1u);

  reset_stats();
  atomic_do([&](TxContext& ctx) {  // two writes, two stripes
    ctx.write(vars[a], 2L);
    ctx.write(vars[diff], 2L);
  });
  EXPECT_EQ(aggregate_stats().stripe_bumps, 2u);

  reset_stats();
  atomic_do([&](TxContext& ctx) { (void)ctx.read(vars[a]); });  // read-only
  EXPECT_EQ(aggregate_stats().stripe_bumps, 0u);
}

TEST(StripeAccounting, SingleStripeConfigStaysCorrectUnderContention) {
  ModeGuard mode(ExecMode::Htm);
  config().htm_seq_stripes = 1;
  reset_stats();
  tm_var<long> counter{0};
  constexpr int kThreads = 4;
  constexpr int kIters = 500;
  run_threads(kThreads, [&](int) {
    for (int i = 0; i < kIters; ++i)
      atomic_do([&](TxContext& ctx) { ctx.fetch_add(counter, 1L); });
  });
  EXPECT_EQ(counter.unsafe_get(), kThreads * kIters);
  const StatsSnapshot s = aggregate_stats();
  // Every writing commit bumps exactly the one stripe; serial fallbacks
  // (watchdog escalations under extreme schedules) bump none.
  EXPECT_EQ(s.stripe_bumps, s.commits - s.commits_readonly);
}

TEST(StripeAccounting, StripedConfigStaysCorrectUnderContention) {
  ModeGuard mode(ExecMode::Htm);
  config().htm_seq_stripes = 16;
  reset_stats();
  std::vector<tm_var<long>> counters(64);
  constexpr int kThreads = 4;
  constexpr int kIters = 400;
  run_threads(kThreads, [&](int t) {
    for (int i = 0; i < kIters; ++i) {
      const int j = (t * 17 + i * 5) % 64;
      atomic_do([&](TxContext& ctx) { ctx.fetch_add(counters[j], 1L); });
    }
  });
  long total = 0;
  for (auto& c : counters) total += c.unsafe_get();
  EXPECT_EQ(total, kThreads * kIters);
}

// ---------------------------------------------------------------------------
// Subscription policy: the lazy zombie commit vs eager immunity
// ---------------------------------------------------------------------------

/// Drive the Dice et al. interleaving: an HTM reader logs `x`, then a
/// serial writer window updates BOTH `x` and `y` start-to-finish while the
/// reader is still live, then the reader takes its first look at `y`.
struct ZombieResult {
  long r1 = -1;  ///< reader's view of x (logged before the serial window)
  long r2 = -1;  ///< reader's view of y (first read after the window)
};

ZombieResult run_zombie_scenario() {
  tm_var<long> x{0}, y{0}, z{0};
  std::atomic<bool> reader_in{false}, writer_done{false};
  ZombieResult out;
  std::thread writer([&] {
    while (!reader_in.load(std::memory_order_acquire))
      std::this_thread::yield();
    synchronized_do([&](TxContext& ctx) {
      ctx.write(x, 1L);
      ctx.write(y, 1L);
    });
    writer_done.store(true, std::memory_order_release);
  });
  atomic_do([&](TxContext& ctx) {
    out.r1 = ctx.read(x);
    reader_in.store(true, std::memory_order_release);
    while (!writer_done.load(std::memory_order_acquire)) {
      // The poll point: each transactional access checks the fallback lock
      // in eager mode. In lazy mode this read is absorbed by the dedup log
      // and checks nothing — exactly the hazard under test. (In eager mode
      // the spin cannot deadlock the writer: the pending-writer poll below
      // aborts this reader, releasing its read-side hold on the lock.)
      (void)ctx.read(z);
      std::this_thread::yield();
    }
    out.r2 = ctx.read(y);
  });
  writer.join();
  return out;
}

TEST(SubscriptionPolicy, LazyCommitsTheForbiddenMixedSnapshot) {
  ModeGuard mode(ExecMode::Htm);
  config().htm_seq_stripes = 16;
  config().htm_subscription = HtmSubscription::Lazy;
  reset_stats();
  const ZombieResult r = run_zombie_scenario();
  // The zombie: x from before the serial window, y from after it. A single
  // consistent snapshot can only be (0,0) or (1,1).
  EXPECT_EQ(r.r1, 0);
  EXPECT_EQ(r.r2, 1);
  const StatsSnapshot s = aggregate_stats();
  EXPECT_GE(s.lazy_sub_commits, 1u);
  EXPECT_EQ(aborts_of(s, AbortCause::SerialPending), 0u);
}

TEST(SubscriptionPolicy, EagerAbortsTheReaderInsteadOfCommittingIt) {
  ModeGuard mode(ExecMode::Htm);
  config().htm_seq_stripes = 16;
  config().htm_subscription = HtmSubscription::Eager;
  reset_stats();
  const ZombieResult r = run_zombie_scenario();
  // The reader held the fallback lock read-side, so the serial window could
  // not complete inside its transaction: the per-access poll killed the
  // first attempt and the retry saw the whole window's effects.
  EXPECT_EQ(r.r1, 1);
  EXPECT_EQ(r.r2, 1);
  const StatsSnapshot s = aggregate_stats();
  EXPECT_GE(aborts_of(s, AbortCause::SerialPending), 1u);
  EXPECT_EQ(s.lazy_sub_commits, 0u);
}

// ---------------------------------------------------------------------------
// StripeBusy: injectable, budget-free, watchdog-bounded
// ---------------------------------------------------------------------------

TEST(StripeBusy, InjectedCauseDrainsBudgetFreeUntilTheWatchdog) {
  ModeGuard mode(ExecMode::Htm);
  config().htm_seq_stripes = 16;
  // Only the attempt cap may end the drain loop: under a loaded machine
  // (parallel ctest) the wall-clock watchdog leg could fire first and leave
  // fewer than watchdog_max_attempts - 1 StripeBusy aborts.
  config().watchdog_deadline_ns = 0;
  ASSERT_TRUE(fault::install_spec("stripe-busy@commit=1.0", 7));
  reset_stats();
  tm_var<long> v{0};
  atomic_do([&](TxContext& ctx) { ctx.write(v, 5L); });
  fault::clear();
  EXPECT_EQ(v.unsafe_get(), 5);
  const StatsSnapshot s = aggregate_stats();
  // Every speculative attempt died StripeBusy; the drain path retried them
  // without charging the retry budget until the watchdog went serial.
  EXPECT_GE(aborts_of(s, AbortCause::StripeBusy),
            config().watchdog_max_attempts - 1);
  EXPECT_EQ(s.serial_commits, 1u);
  EXPECT_GE(s.gov_watchdog_escalations, 1u);
  EXPECT_EQ(s.gov_drain_timeouts, 0u);  // budget-free: no drain timeouts
}

// ---------------------------------------------------------------------------
// Seeded replay
// ---------------------------------------------------------------------------

/// One deterministic pass of a faulted striped-HTM workload. Single
/// threaded with a pinned stream: the consultation sequence then depends
/// only on the plan, never on scheduling, so two same-seed passes consult
/// identical (stream, hook, n) triples. (A multi-thread pass would not be
/// byte-stable: one organic cross-thread abort shifts a thread's event
/// counters and every later draw with them.)
void run_faulted_workload() {
  tle::reset_stats();
  std::vector<tm_var<long>> vars(32);
  run_threads(1, [&](int) {
    fault::set_thread_stream(1);
    for (int i = 0; i < 400; ++i)
      atomic_do([&](TxContext& ctx) { ctx.fetch_add(vars[(i * 3) % 32], 1L); });
  });
}

TEST(SeededReplay, SameSeedYieldsByteIdenticalInjectionReport) {
  ModeGuard mode(ExecMode::Htm);
  config().htm_seq_stripes = 16;
  const char* spec =
      "stripe-busy@commit=0.05,validation@read=0.02,spurious@commit=0.02";

  ASSERT_TRUE(fault::install_spec(spec, 20260806));
  run_faulted_workload();
  const fault::Counts first = fault::snapshot();
  const std::string first_report = fault::report();

  ASSERT_TRUE(fault::install_spec(spec, 20260806));
  run_faulted_workload();
  const fault::Counts second = fault::snapshot();
  const std::string second_report = fault::report();
  fault::clear();

  EXPECT_GT(first.injected_total(), 0u);
  EXPECT_TRUE(first == second);
  EXPECT_EQ(first_report, second_report);  // byte-identical replay
}

// ---------------------------------------------------------------------------
// Deferred (GV5) STM clock
// ---------------------------------------------------------------------------

TEST(DeferredClock, CounterWorkloadStaysExact) {
  ModeGuard mode(ExecMode::StmCondVar);
  config().stm_clock_mode = StmClockMode::Deferred;
  reset_stats();
  tm_var<long> a{0}, b{0};
  constexpr int kThreads = 4;
  constexpr int kIters = 500;
  run_threads(kThreads, [&](int) {
    for (int i = 0; i < kIters; ++i)
      atomic_do([&](TxContext& ctx) {
        const long v = ctx.read(a);
        ctx.write(a, v + 1);
        ctx.write(b, v + 1);  // invariant: a == b at every commit point
      });
  });
  EXPECT_EQ(a.unsafe_get(), kThreads * kIters);
  EXPECT_EQ(b.unsafe_get(), kThreads * kIters);
}

TEST(DeferredClock, ReadersSeeTheInvariantAndMayAdvanceTheClock) {
  ModeGuard mode(ExecMode::StmCondVar);
  config().stm_clock_mode = StmClockMode::Deferred;
  reset_stats();
  tm_var<long> a{0}, b{0};
  std::atomic<bool> stop{false};
  std::atomic<int> torn{0};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      long ra = -1, rb = -1;
      atomic_do([&](TxContext& ctx) {
        ra = ctx.read(a);
        rb = ctx.read(b);
      });
      if (ra != rb) torn.fetch_add(1, std::memory_order_relaxed);
    }
  });
  for (int i = 0; i < 2000; ++i)
    atomic_do([&](TxContext& ctx) {
      const long v = ctx.read(a);
      ctx.write(a, v + 1);
      ctx.write(b, v + 1);
    });
  stop.store(true, std::memory_order_release);
  reader.join();
  // Deferred wv assignment never hands a reader a mixed a/b pair: read-only
  // commits validate, and stale orecs CAS-advance the clock before extend.
  EXPECT_EQ(torn.load(), 0);
  EXPECT_EQ(a.unsafe_get(), 2000);
}

TEST(DeferredClock, EagerModeUnchangedByTheKnob) {
  ModeGuard mode(ExecMode::StmCondVar);
  config().stm_clock_mode = StmClockMode::Eager;
  reset_stats();
  tm_var<long> a{0};
  run_threads(2, [&](int) {
    for (int i = 0; i < 300; ++i)
      atomic_do([&](TxContext& ctx) { ctx.fetch_add(a, 1L); });
  });
  EXPECT_EQ(a.unsafe_get(), 600);
  EXPECT_EQ(aggregate_stats().gclock_advances, 0u);  // deferred-only counter
}

}  // namespace
