// Tests for the interval-telemetry pipeline (PR: windowed metrics sampler):
//   * midpoint-rule percentile selection at exact bucket boundaries,
//   * window deltas against hand-driven metrics_tick() calls, and the
//     cumulative total_commits conservation anchor,
//   * the saturating delta rule across a mid-run counter reset,
//   * ring retention: eviction at config().metrics_history, monotone indices,
//   * health-gauge plumbing: in-flight age, limbo backlog, serial hold,
//   * flag discipline: kMetricsBit gating of the txn_begin_ns stamp and the
//     profile-bit independence contract,
//   * a concurrent tick-vs-commit stress (TSan-clean) whose summed window
//     deltas must equal the lifetime total exactly,
//   * deterministic mode: two identical seeded runs produce byte-identical
//     tle-metrics/v1 window records.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "test_support.hpp"
#include "tm/fault/fault.hpp"
#include "tm/obs/export.hpp"
#include "tm/obs/histogram.hpp"
#include "tm/obs/metrics.hpp"
#include "tm/obs/site.hpp"
#include "tm/registry.hpp"
#include "util/timing.hpp"

namespace tle {
namespace {

using testing::ModeGuard;
using testing::run_threads;

/// Enables interval metrics for the scope from zeroed counters and window 0;
/// restores the fully-disabled flag word on exit.
struct MetricsGuard {
  MetricsGuard() {
    reset_stats();
    obs::reset_site_profiles();
    obs::metrics_enable(true);
    obs::metrics_reset();
  }
  ~MetricsGuard() {
    obs::metrics_enable(false);
    obs::metrics_set_deterministic(false);
    obs::profile_enable(false);
  }
};

/// The site's interval record inside `w`, or nullptr when it was inactive.
const obs::SiteWindow* find_site(const obs::MetricsWindow& w,
                                 const char* name) {
  for (const obs::SiteWindow& s : w.sites)
    if (s.name && std::strcmp(s.name, name) == 0) return &s;
  return nullptr;
}

/// Lifetime speculative commits of the site named `name`.
std::uint64_t lifetime_commits(const char* name) {
  for (const obs::SiteProfile& p : obs::collect_site_profiles())
    if (p.info.name && std::strcmp(p.info.name, name) == 0) return p.commits;
  return 0;
}

// ---------------------------------------------------------------------------
// Midpoint percentile rule
// ---------------------------------------------------------------------------

TEST(MetricsPercentile, BucketMidpoints) {
  using obs::LatencyHist;
  // Bucket 0 holds [0, 2): report 1. Bucket b >= 1 holds [2^b, 2^(b+1)):
  // report the midpoint 2^b + 2^(b-1).
  EXPECT_EQ(LatencyHist::bucket_midpoint(0), 1u);
  EXPECT_EQ(LatencyHist::bucket_midpoint(1), 3u);
  EXPECT_EQ(LatencyHist::bucket_midpoint(2), 6u);
  EXPECT_EQ(LatencyHist::bucket_midpoint(5), 48u);
  EXPECT_EQ(LatencyHist::bucket_midpoint(31), (1ull << 31) + (1ull << 30));
}

TEST(MetricsPercentile, SelectionAtExactBoundaries) {
  std::uint64_t b[obs::LatencyHist::kBuckets] = {};
  EXPECT_EQ(obs::percentile_from_buckets(b, 0.5), 0u) << "empty -> 0";

  // 99 samples in bucket 1, one in bucket 9 (total 100).
  b[1] = 99;
  b[9] = 1;
  // q=0.99 -> target 99; the cumulative count at bucket 1 reaches it exactly.
  EXPECT_EQ(obs::percentile_from_buckets(b, 0.50), 3u);
  EXPECT_EQ(obs::percentile_from_buckets(b, 0.99), 3u);
  // q=0.999 -> target 99.9; only the tail bucket covers it.
  EXPECT_EQ(obs::percentile_from_buckets(b, 0.999), 768u);  // 512 + 256

  // Out-of-range quantiles clamp to the extremes.
  EXPECT_EQ(obs::percentile_from_buckets(b, -1.0), 3u);
  EXPECT_EQ(obs::percentile_from_buckets(b, 2.0), 768u);

  // One-past-exact: cum(1) == 1 < target(1.02) pushes selection up.
  std::uint64_t c[obs::LatencyHist::kBuckets] = {};
  c[0] = 1;
  c[3] = 1;
  EXPECT_EQ(obs::percentile_from_buckets(c, 0.50), 1u);
  EXPECT_EQ(obs::percentile_from_buckets(c, 0.51), 12u);  // 8 + 4
}

TEST(MetricsPercentile, HistogramWrapperSnapshots) {
  obs::LatencyHist h;
  for (int i = 0; i < 10; ++i) h.add(1000);  // bucket 9: [512, 1024)
  h.add(1u << 20);                           // bucket 20
  EXPECT_EQ(obs::percentile(h, 0.50), 768u);
  EXPECT_EQ(obs::percentile(h, 0.999), (1u << 20) + (1u << 19));
}

// ---------------------------------------------------------------------------
// Window deltas
// ---------------------------------------------------------------------------

TEST(MetricsWindows, DeltasMatchHandDrivenTicks) {
  ModeGuard g(ExecMode::StmCondVar);
  MetricsGuard mg;
  tm_var<long> v(0);
  auto bump = [&](int n) {
    for (int i = 0; i < n; ++i)
      atomic_do(TLE_TX_SITE("metrics/delta"), [&](TxContext& tx) {
        tx.write(v, tx.read(v) + 1);
      });
  };

  bump(10);
  const obs::MetricsWindow w0 = obs::metrics_tick();
  EXPECT_EQ(w0.index, 0u);
  EXPECT_FALSE(w0.final_flush);
  EXPECT_EQ(w0.commits, 10u);
  EXPECT_EQ(w0.txn_starts, 10u);
  EXPECT_EQ(w0.aborts, 0u);
  EXPECT_GT(w0.t_end_ns, 0u);
  const obs::SiteWindow* s0 = find_site(w0, "metrics/delta");
  ASSERT_NE(s0, nullptr);
  EXPECT_EQ(s0->attempts, 10u);
  EXPECT_EQ(s0->commits, 10u);
  EXPECT_EQ(s0->total_commits, 10u);
  EXPECT_GT(s0->p50_ns, 0u) << "non-deterministic windows carry percentiles";

  bump(5);
  const obs::MetricsWindow w1 = obs::metrics_tick();
  EXPECT_EQ(w1.index, 1u);
  EXPECT_EQ(w1.commits, 5u);
  const obs::SiteWindow* s1 = find_site(w1, "metrics/delta");
  ASSERT_NE(s1, nullptr);
  EXPECT_EQ(s1->commits, 5u);
  EXPECT_EQ(s1->total_commits, 15u)
      << "total_commits is the cumulative conservation anchor";

  // A quiet interval: the site must not be materialized.
  const obs::MetricsWindow w2 = obs::metrics_tick();
  EXPECT_EQ(w2.index, 2u);
  EXPECT_EQ(w2.commits, 0u);
  EXPECT_EQ(find_site(w2, "metrics/delta"), nullptr);

  // Accessors agree with the last tick.
  EXPECT_EQ(obs::metrics_window().index, 2u);
  EXPECT_EQ(obs::metrics_history().size(), 3u);

  // The final-flush variant closes a residual window.
  bump(2);
  const obs::MetricsWindow wf = obs::metrics_tick_final();
  EXPECT_TRUE(wf.final_flush);
  EXPECT_EQ(wf.commits, 2u);
  ASSERT_NE(find_site(wf, "metrics/delta"), nullptr);
  EXPECT_EQ(find_site(wf, "metrics/delta")->total_commits, 17u);
}

TEST(MetricsWindows, SaturatingDeltaSurvivesMidRunReset) {
  ModeGuard g(ExecMode::StmCondVar);
  MetricsGuard mg;
  tm_var<long> v(0);
  auto bump = [&](int n) {
    for (int i = 0; i < n; ++i)
      atomic_do(TLE_TX_SITE("metrics/reset"), [&](TxContext& tx) {
        tx.write(v, tx.read(v) + 1);
      });
  };

  bump(8);
  obs::metrics_tick();  // baseline now sits at 8

  // Counters restart from zero mid-run: the next window must report the
  // post-reset activity, not a huge wrapped difference.
  reset_stats();
  obs::reset_site_profiles();
  bump(3);
  const obs::MetricsWindow w = obs::metrics_tick();
  EXPECT_EQ(w.commits, 3u);
  const obs::SiteWindow* s = find_site(w, "metrics/reset");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->commits, 3u);
  EXPECT_EQ(s->total_commits, 3u);
}

TEST(MetricsWindows, RingEvictsOldestAtConfiguredDepth) {
  ModeGuard g(ExecMode::StmCondVar);  // saves/restores the whole config
  config().metrics_history = 4;
  MetricsGuard mg;
  for (int i = 0; i < 10; ++i) obs::metrics_tick();
  const std::vector<obs::MetricsWindow> h = obs::metrics_history();
  ASSERT_EQ(h.size(), 4u);
  for (std::size_t i = 0; i < h.size(); ++i)
    EXPECT_EQ(h[i].index, 6u + i) << "ring must keep the newest, in order";
  EXPECT_EQ(obs::metrics_window().index, 9u);

  // metrics_reset drops the ring and restarts numbering.
  obs::metrics_reset();
  EXPECT_TRUE(obs::metrics_history().empty());
  EXPECT_EQ(obs::metrics_tick().index, 0u);
}

// ---------------------------------------------------------------------------
// Health gauges
// ---------------------------------------------------------------------------

TEST(MetricsGauges, InflightTxnAgeIsVisible) {
  ModeGuard g(ExecMode::StmCondVarNoQ);
  MetricsGuard mg;
  std::atomic<bool> inside{false}, release{false};

  std::thread peer([&] {
    atomic_do(TLE_TX_SITE("metrics/inflight"), [&](TxContext& tx) {
      tx.no_quiesce();
      inside.store(true, std::memory_order_release);
      while (!release.load(std::memory_order_acquire))
        std::this_thread::yield();
    });
  });
  while (!inside.load(std::memory_order_acquire)) std::this_thread::yield();

  const obs::MetricsWindow w = obs::metrics_tick();
  EXPECT_GE(w.gauges.inflight_txns, 1u);
  EXPECT_GT(w.gauges.oldest_txn_age_ns, 0u)
      << "the held-open peer transaction must age the gauge";

  release.store(true, std::memory_order_release);
  peer.join();
}

TEST(MetricsGauges, LimboBacklogIsVisible) {
  ModeGuard g(ExecMode::Htm);
  MetricsGuard mg;
  // An HTM commit has no ordering quiesce, so a transactional free parks in
  // limbo awaiting a grace period — exactly the backlog the gauge reports.
  void* p = ::operator new(64);
  atomic_do(TLE_TX_SITE("metrics/limbo"), [&](TxContext& tx) { tx.free(p); });

  const obs::MetricsWindow w = obs::metrics_tick();
  EXPECT_GE(w.gauges.limbo_pending, 1u);
  EXPECT_GE(w.limbo_enqueued, 1u);

  // A serial section drains this thread's limbo (the write lock is a full
  // grace period); leave the slot clean for later tests.
  synchronized_do([](TxContext&) {});
  const obs::MetricsWindow w2 = obs::metrics_tick();
  EXPECT_EQ(w2.gauges.limbo_pending, 0u);
  EXPECT_GE(w2.limbo_drained, 1u);
}

TEST(MetricsGauges, SerialLockHoldIsMetered) {
  ModeGuard g(ExecMode::StmCondVar);
  MetricsGuard mg;
  synchronized_do(TLE_TX_SITE("metrics/serial"), [](TxContext&) {
    const std::uint64_t t0 = now_ns();
    while (now_ns() - t0 < 200'000) {
    }  // hold the write lock for a measurable ~0.2 ms
  });
  const obs::MetricsWindow w = obs::metrics_tick();
  EXPECT_EQ(w.serial_commits, 1u);
  EXPECT_GE(w.gauges.serial_hold_ns, 200'000u);
  EXPECT_EQ(w.gauges.serial_held_age_ns, 0u) << "nobody holds it now";
}

// ---------------------------------------------------------------------------
// Flag discipline
// ---------------------------------------------------------------------------

TEST(MetricsFlags, EnableComposesWithProfilerAndGatesStamps) {
  ModeGuard g(ExecMode::StmCondVar);
  obs::metrics_enable(false);
  obs::profile_enable(false);
  EXPECT_EQ(obs::flags() & (obs::kMetricsBit | obs::kProfileBit), 0u);

  // Disabled: the engine must not publish begin timestamps.
  atomic_do([](TxContext&) {
    EXPECT_EQ(my_slot().txn_begin_ns.load(std::memory_order_relaxed), 0u);
  });

  obs::metrics_enable(true);
  EXPECT_TRUE(obs::metrics_enabled());
  EXPECT_TRUE(obs::profiling_enabled())
      << "metrics needs the site counters it diffs";

  atomic_do([](TxContext&) {
    EXPECT_GT(my_slot().txn_begin_ns.load(std::memory_order_relaxed), 0u);
  });
  EXPECT_EQ(my_slot().txn_begin_ns.load(std::memory_order_relaxed), 0u)
      << "commit must clear the in-flight stamp";

  // Disabling metrics leaves an (independently usable) profiler running.
  obs::metrics_enable(false);
  EXPECT_FALSE(obs::metrics_enabled());
  EXPECT_TRUE(obs::profiling_enabled());
  obs::profile_enable(false);
  EXPECT_EQ(obs::flags() & (obs::kMetricsBit | obs::kProfileBit), 0u);
}

// ---------------------------------------------------------------------------
// JSON shape
// ---------------------------------------------------------------------------

TEST(MetricsJson, RecordShapeFollowsDeterminism) {
  ModeGuard g(ExecMode::StmCondVar);
  MetricsGuard mg;
  tm_var<long> v(0);
  // One lexical site used for both phases (two TLE_TX_SITE expansions with
  // the same name would register two distinct ids).
  const obs::TxSite& site = TLE_TX_SITE("metrics/json");
  atomic_do(site, [&](TxContext& tx) { tx.write(v, tx.read(v) + 1); });

  const std::string live = obs::metrics_json(obs::metrics_tick());
  EXPECT_NE(live.find("\"schema\":\"tle-metrics/v1\""), std::string::npos);
  EXPECT_NE(live.find("\"t_start_ns\""), std::string::npos);
  EXPECT_NE(live.find("\"commit_rate\""), std::string::npos);
  EXPECT_NE(live.find("\"p99_ns\""), std::string::npos);
  EXPECT_NE(live.find("\"metrics/json\""), std::string::npos);
  EXPECT_EQ(live.find('\n'), std::string::npos) << "JSONL: one line";

  obs::metrics_set_deterministic(true);
  atomic_do(site, [&](TxContext& tx) { tx.write(v, tx.read(v) + 1); });
  const std::string det = obs::metrics_json(obs::metrics_tick());
  EXPECT_NE(det.find("\"deterministic\":true"), std::string::npos);
  EXPECT_EQ(det.find("\"t_start_ns\""), std::string::npos)
      << "deterministic records carry no wall-clock bytes";
  EXPECT_EQ(det.find("\"commit_rate\""), std::string::npos);
  EXPECT_EQ(det.find("\"p99_ns\""), std::string::npos);
  EXPECT_NE(det.find("\"total_commits\":2"), std::string::npos);

  const std::string prom = obs::prometheus_text();
  EXPECT_NE(prom.find("# TYPE tle_commits_total counter"), std::string::npos);
  EXPECT_NE(prom.find("tle_site_commits_total{site=\"metrics/json\"} 2"),
            std::string::npos);
  EXPECT_NE(prom.find("# TYPE tle_inflight_txns gauge"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Concurrent conservation stress (TSan-clean)
// ---------------------------------------------------------------------------

TEST(MetricsStress, ConcurrentTicksConserveCommitCounts) {
  ModeGuard g(ExecMode::StmCondVar);
  config().metrics_history = 8;  // exercise eviction under load too
  MetricsGuard mg;
  constexpr int kWriters = 4;
  constexpr int kPerWriter = 5000;
  static tm_var<long> v;
  v.unsafe_set(0);
  std::atomic<bool> done{false};
  std::uint64_t ticked_commits = 0;

  std::thread ticker([&] {
    int rounds = 0;
    while (!done.load(std::memory_order_acquire)) {
      const obs::MetricsWindow w = obs::metrics_tick();
      if (const obs::SiteWindow* s = find_site(w, "metrics/stress"))
        ticked_commits += s->commits;
      if (++rounds % 8 == 0) {
        obs::metrics_json(w);     // exercise the exporters concurrently
        obs::prometheus_text();
      }
      std::this_thread::yield();
    }
  });

  run_threads(kWriters, [&](int) {
    for (int i = 0; i < kPerWriter; ++i)
      atomic_do(TLE_TX_SITE("metrics/stress"), [&](TxContext& tx) {
        tx.write(v, tx.read(v) + 1);
      });
  });
  done.store(true, std::memory_order_release);
  ticker.join();

  const obs::MetricsWindow wf = obs::metrics_tick_final();
  if (const obs::SiteWindow* s = find_site(wf, "metrics/stress"))
    ticked_commits += s->commits;

  const std::uint64_t total =
      static_cast<std::uint64_t>(kWriters) * kPerWriter;
  EXPECT_EQ(v.unsafe_get(), static_cast<long>(total));
  EXPECT_EQ(lifetime_commits("metrics/stress"), total);
  EXPECT_EQ(ticked_commits, total)
      << "window deltas must sum exactly to the lifetime total";
}

// ---------------------------------------------------------------------------
// Deterministic double-run
// ---------------------------------------------------------------------------

TEST(MetricsDeterministic, SameSeedRunsAreByteIdentical) {
  ModeGuard g(ExecMode::StmCondVar);
  config().governor = false;  // legacy retry policy: no timing-fed state
  MetricsGuard mg;
  obs::metrics_set_deterministic(true);

  auto one_run = [&] {
    reset_stats();
    obs::reset_site_profiles();
    obs::metrics_reset();
    EXPECT_TRUE(fault::install_spec(
        "conflict@commit=0.05,validation@read=0.02", 42));
    std::vector<std::string> records;
    std::thread worker([&] {
      fault::set_thread_stream(1);
      static tm_var<long> a, b;
      a.unsafe_set(0);
      b.unsafe_set(0);
      for (int phase = 0; phase < 3; ++phase) {
        for (int i = 0; i < 200; ++i)
          atomic_do(TLE_TX_SITE("metrics/det"), [&](TxContext& tx) {
            tx.write(a, tx.read(a) + 1);
            tx.write(b, tx.read(b) - 1);
          });
        records.push_back(obs::metrics_json(obs::metrics_tick()));
      }
    });
    worker.join();
    fault::clear();
    return records;
  };

  std::vector<std::string> first, second;
  {
    SCOPED_TRACE("run 1");
    first = one_run();
  }
  {
    SCOPED_TRACE("run 2");
    second = one_run();
  }
  ASSERT_EQ(first.size(), 3u);
  ASSERT_EQ(second.size(), 3u);
  for (int i = 0; i < 3; ++i)
    EXPECT_EQ(first[i], second[i]) << "window " << i;
  // The injected plan really fired (otherwise this test proves nothing).
  EXPECT_NE(first[0].find("\"aborts\":{"), std::string::npos);
}

}  // namespace
}  // namespace tle
