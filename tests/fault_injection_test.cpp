// Tests for the deterministic fault-injection & schedule-perturbation
// harness (tm/fault): plan parsing, the ExecMode × AbortCause injection
// matrix with recovery assertions, seed determinism, forced serial/flush,
// and the condvar regressions the perturbation hooks make drivable — the
// monotonic-clock timed wait, the intent-bounded signal bank, the
// commit->enqueue and timeout->withdraw race windows, and the serial lock's
// read back-out missed-wakeup.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "sync/tx_condvar.hpp"
#include "test_support.hpp"
#include "tm/fault/fault.hpp"
#include "tm/registry.hpp"
#include "tm/tm.hpp"

namespace {

using namespace std::chrono_literals;
using tle::AbortCause;
using tle::aggregate_stats;
using tle::atomic_do;
using tle::config;
using tle::critical;
using tle::elidable_mutex;
using tle::ExecMode;
using tle::synchronized_do;
using tle::tm_var;
using tle::tx_condvar;
using tle::TxContext;
using tle::testing::kElisionModes;
using tle::testing::ModeGuard;
using tle::testing::run_threads;
namespace fault = tle::fault;

/// Every test starts disarmed with zeroed stats (the binary may be launched
/// with TLE_FAULT_SEED in the env) and leaves no plan behind.
struct PlanGuard {
  PlanGuard() {
    fault::clear();
    tle::reset_stats();
  }
  ~PlanGuard() { fault::clear(); }
};

int hook_index(fault::Hook h) { return static_cast<int>(h); }

std::uint64_t injected_for_cause(const fault::Counts& c, AbortCause cause) {
  std::uint64_t t = 0;
  for (int h = 0; h < fault::kHookCount; ++h)
    t += c.injected[h][static_cast<int>(cause)];
  return t;
}

long read_plain(tm_var<long>& v) {
  long out = 0;
  atomic_do([&](TxContext& tx) { out = tx.read(v); });
  return out;
}

// ---------------------------------------------------------------------------
// Plan parsing & activation
// ---------------------------------------------------------------------------

TEST(FaultPlanTest, SpecParsingAcceptsDefaultRejectsMalformed) {
  PlanGuard pg;
  EXPECT_FALSE(fault::active());
  EXPECT_TRUE(fault::install_spec(fault::default_spec(), 1));
  EXPECT_TRUE(fault::active());
  fault::clear();
  EXPECT_FALSE(fault::active());

  EXPECT_FALSE(fault::install_spec("bogus@commit=0.1", 1));
  EXPECT_FALSE(fault::install_spec("spurious@nowhere=0.1", 1));
  EXPECT_FALSE(fault::install_spec("spurious@commit=1.5", 1));
  EXPECT_FALSE(fault::install_spec("spurious@commit", 1));
  // Semantic restrictions: forced serial is a begin decision, forced flush a
  // post-commit one, aborts fire only at speculative decision points, and
  // only Delay rules take a /delay_ns suffix.
  EXPECT_FALSE(fault::install_spec("serial@read=0.1", 1));
  EXPECT_FALSE(fault::install_spec("flush@begin=0.1", 1));
  EXPECT_FALSE(fault::install_spec("spurious@epoch_scan=0.1", 1));
  EXPECT_FALSE(fault::install_spec("spurious@commit=0.1/500", 1));
  EXPECT_FALSE(fault::active());

  EXPECT_TRUE(fault::install_spec(
      "yield@epoch_scan=0.5,delay@grace_wait=1/1000,conflict@read=0.25", 1));
  EXPECT_TRUE(fault::active());
  fault::clear();

  // tt_commit is a speculative decision point despite sitting past Commit in
  // the hook enum: abort rules are legal there (and perturbations, as at any
  // hook); the non-speculative hooks still reject aborts.
  EXPECT_TRUE(fault::install_spec(
      "validation@tt_commit=0.5,conflict@tt_commit=0.1,delay@tt_commit=1/500",
      1));
  EXPECT_TRUE(fault::active());
  fault::clear();
  EXPECT_FALSE(fault::install_spec("validation@post=0.5", 1));
  EXPECT_FALSE(fault::install_spec("serial@tt_commit=0.5", 1));
  EXPECT_FALSE(fault::install_spec("flush@tt_commit=0.5", 1));
}

// ---------------------------------------------------------------------------
// Injection matrix: every elision mode recovers from every injectable cause
// ---------------------------------------------------------------------------

TEST(FaultInjectTest, EveryModeEveryCauseRecoversAndCounts) {
  struct CauseSpec {
    AbortCause cause;
    const char* spec;
  };
  const CauseSpec kCases[] = {
      {AbortCause::Spurious, "spurious@commit=0.05,spurious@begin=0.01"},
      {AbortCause::Conflict, "conflict@read=0.05"},
      {AbortCause::Validation, "validation@commit=0.05"},
      {AbortCause::Capacity, "capacity@write=0.05"},
      {AbortCause::SerialPending, "serial-pending@begin=0.05"},
  };
  for (ExecMode mode : kElisionModes) {
    for (const CauseSpec& c : kCases) {
      SCOPED_TRACE(std::string(tle::to_string(mode)) + " / " + c.spec);
      ModeGuard g(mode);
      PlanGuard pg;
      tm_var<long> counter{0};
      ASSERT_TRUE(fault::install_spec(c.spec, 0xF417));
      run_threads(4, [&](int tid) {
        fault::set_thread_stream(static_cast<std::uint32_t>(100 + tid));
        for (int i = 0; i < 300; ++i)
          atomic_do([&](TxContext& tx) { tx.fetch_add(counter, 1L); });
      });
      const fault::Counts counts = fault::snapshot();
      fault::clear();
      const auto s = aggregate_stats();
      // Recovery: every logical transaction still committed exactly once.
      EXPECT_EQ(s.commits + s.serial_commits, 4u * 300u);
      EXPECT_EQ(read_plain(counter), 4 * 300);
      // Accounting: the plan fired, only the requested cause was injected,
      // the global and TxStats views agree, and every injected abort shows
      // up in the ordinary per-cause abort breakdown.
      EXPECT_GT(counts.injected_total(), 0u);
      EXPECT_EQ(injected_for_cause(counts, c.cause), counts.injected_total());
      EXPECT_EQ(s.faults_injected, counts.injected_total());
      EXPECT_GE(s.aborts[static_cast<int>(c.cause)],
                injected_for_cause(counts, c.cause));
    }
  }
}

TEST(FaultInjectTest, LockModeHasNoSpeculativeDecisionPoints) {
  ModeGuard g(ExecMode::Lock);
  PlanGuard pg;
  ASSERT_TRUE(fault::install_spec(
      "spurious@commit=1,conflict@read=1,capacity@write=1,"
      "serial-pending@begin=1",
      7));
  elidable_mutex m;
  tm_var<long> v{0};
  for (int i = 0; i < 50; ++i)
    critical(m, [&](TxContext& tx) { tx.fetch_add(v, 1L); });
  const fault::Counts counts = fault::snapshot();
  fault::clear();
  const auto s = aggregate_stats();
  EXPECT_EQ(counts.injected_total(), 0u);
  EXPECT_EQ(s.faults_injected, 0u);
  EXPECT_EQ(s.lock_sections, 50u);
  EXPECT_EQ(read_plain(v), 50);
}

TEST(FaultInjectTest, ForceSerialRunsIrrevocably) {
  ModeGuard g(ExecMode::StmCondVar);
  PlanGuard pg;
  ASSERT_TRUE(fault::install_spec("serial@begin=1", 11));
  tm_var<long> v{0};
  for (int i = 0; i < 50; ++i)
    atomic_do([&](TxContext& tx) { tx.fetch_add(v, 1L); });
  const fault::Counts counts = fault::snapshot();
  fault::clear();
  const auto s = aggregate_stats();
  EXPECT_EQ(s.serial_commits, 50u);
  EXPECT_EQ(s.commits, 0u);
  EXPECT_EQ(s.txn_starts, 0u);  // never even began speculating
  EXPECT_EQ(s.fault_forced_serial, 50u);
  EXPECT_EQ(counts.forced_serial, 50u);
  EXPECT_EQ(read_plain(v), 50);
}

TEST(FaultInjectTest, ForceFlushDrainsLimboEveryCommit) {
  ModeGuard g(ExecMode::StmCondVar);
  PlanGuard pg;
  ASSERT_TRUE(fault::install_spec("flush@post=1", 12));
  std::vector<void*> blocks;
  for (int i = 0; i < 20; ++i) blocks.push_back(::operator new(64));
  tm_var<long> v{0};
  for (void* p : blocks)
    atomic_do([&](TxContext& tx) {
      tx.write(v, 1L);
      tx.free(p);
    });
  const fault::Counts counts = fault::snapshot();
  fault::clear();
  const auto s = aggregate_stats();
  EXPECT_EQ(s.tm_frees, 20u);
  EXPECT_EQ(s.fault_forced_flush, 20u);
  EXPECT_EQ(counts.forced_flush, 20u);
  EXPECT_GT(s.limbo_drained, 0u);
}

// ---------------------------------------------------------------------------
// TicToc commit-window hook (tt_commit)
// ---------------------------------------------------------------------------

TEST(FaultInjectTest, TtCommitWindowInjectsOnlyUnderTicToc) {
  // The hook sits inside tictoc's lock->certify->publish window, so an
  // injected Validation abort there exercises the locked-orec rollback path:
  // recovery must be exact (each increment lands once, pre-lock orec words
  // restored so later readers are unharmed).
  ModeGuard g(ExecMode::StmCondVar);
  PlanGuard pg;
  config().stm_algo = tle::StmAlgo::TicToc;
  tm_var<long> v{0};
  ASSERT_TRUE(fault::install_spec("validation@tt_commit=0.3", 0x71C70C));
  run_threads(4, [&](int tid) {
    fault::set_thread_stream(static_cast<std::uint32_t>(300 + tid));
    for (int i = 0; i < 200; ++i)
      atomic_do([&](TxContext& tx) { tx.fetch_add(v, 1L); });
  });
  const fault::Counts counts = fault::snapshot();
  fault::clear();
  auto s = aggregate_stats();
  EXPECT_EQ(s.commits + s.serial_commits, 4u * 200u);
  EXPECT_EQ(read_plain(v), 4 * 200);
  EXPECT_GT(counts.injected_total(), 0u);
  EXPECT_EQ(counts.injected[hook_index(fault::Hook::TtCommit)]
                           [static_cast<int>(AbortCause::Validation)],
            counts.injected_total());
  EXPECT_GE(s.aborts[static_cast<int>(AbortCause::Validation)],
            counts.injected_total());

  // The other protocols never reach the window: the same plan is inert.
  for (tle::StmAlgo algo : {tle::StmAlgo::MlWt, tle::StmAlgo::GlWt}) {
    config().stm_algo = algo;
    tle::reset_stats();
    ASSERT_TRUE(fault::install_spec("validation@tt_commit=1", 0x71C70C));
    for (int i = 0; i < 100; ++i)
      atomic_do([&](TxContext& tx) { tx.fetch_add(v, 1L); });
    const fault::Counts inert = fault::snapshot();
    fault::clear();
    s = aggregate_stats();
    EXPECT_EQ(inert.injected_total(), 0u) << tle::to_string(algo);
    EXPECT_EQ(s.faults_injected, 0u) << tle::to_string(algo);
  }
}

TEST(FaultDeterminismTest, TtCommitSeededReplayIsByteIdentical) {
  ModeGuard g(ExecMode::StmCondVar);
  PlanGuard pg;
  config().stm_algo = tle::StmAlgo::TicToc;
  tm_var<long> v{0};
  auto run = [&]() -> fault::Counts {
    EXPECT_TRUE(fault::install_spec(
        "validation@tt_commit=0.1,conflict@tt_commit=0.05,"
        "delay@tt_commit=0.02/1000,conflict@read=0.02",
        0x7EED));
    fault::set_thread_stream(9);
    for (int i = 0; i < 2000; ++i)
      atomic_do([&](TxContext& tx) { tx.fetch_add(v, 1L); });
    const fault::Counts c = fault::snapshot();
    fault::clear();
    return c;
  };
  const fault::Counts first = run();
  const fault::Counts second = run();
  EXPECT_GT(first.injected_total(), 0u);
  EXPECT_GT(first.delays[hook_index(fault::Hook::TtCommit)], 0u);
  EXPECT_TRUE(first == second);
}

// ---------------------------------------------------------------------------
// Determinism: same seed, same workload -> byte-identical event counts
// ---------------------------------------------------------------------------

TEST(FaultDeterminismTest, SameSeedSameSequenceSingleThreadStm) {
  ModeGuard g(ExecMode::StmCondVar);
  PlanGuard pg;
  tm_var<long> v{0};
  auto run = [&]() -> fault::Counts {
    EXPECT_TRUE(fault::install_spec(
        "spurious@commit=0.05,conflict@read=0.02,validation@commit=0.01,"
        "capacity@write=0.01,serial-pending@begin=0.01",
        0xDE7));
    fault::set_thread_stream(7);
    for (int i = 0; i < 3000; ++i)
      atomic_do([&](TxContext& tx) { tx.fetch_add(v, 1L); });
    const fault::Counts c = fault::snapshot();
    fault::clear();
    return c;
  };
  const fault::Counts first = run();
  const fault::Counts second = run();
  EXPECT_GT(first.injected_total(), 0u);
  EXPECT_TRUE(first == second);
}

TEST(FaultDeterminismTest, SameSeedSameSequenceDisjointThreadsHtm) {
  ModeGuard g(ExecMode::Htm);
  PlanGuard pg;
  config().htm_spurious_abort_rate = 0.0;
  // Keep every retry speculative: with no serial fallback and disjoint data
  // there are no organic aborts, so cross-thread timing cannot change the
  // per-thread event counts and the two runs must match exactly. The
  // governor would route the injected capacity aborts to serial (and its
  // serial entries would abort the other threads), so it stays off here.
  config().htm_max_retries = 1 << 20;
  config().governor = false;
  tm_var<long> vars[4];
  auto run = [&]() -> fault::Counts {
    EXPECT_TRUE(fault::install_spec(
        "spurious@commit=0.05,conflict@read=0.02,capacity@write=0.01",
        0xBEEF));
    run_threads(4, [&](int tid) {
      fault::set_thread_stream(static_cast<std::uint32_t>(200 + tid));
      for (int i = 0; i < 1500; ++i)
        atomic_do([&](TxContext& tx) { tx.fetch_add(vars[tid], 1L); });
    });
    const fault::Counts c = fault::snapshot();
    fault::clear();
    return c;
  };
  const fault::Counts first = run();
  const fault::Counts second = run();
  EXPECT_GT(first.injected_total(), 0u);
  EXPECT_TRUE(first == second);
}

// ---------------------------------------------------------------------------
// Schedule perturbation: the serial lock's read back-out window
// ---------------------------------------------------------------------------

// Deterministic re-trigger of the missed-wakeup the back-out path used to
// have: a backing-out reader dropped its flag with a plain store and no
// notify, so a writer that had just parked on it slept forever. The plan
// widens the raise-flag -> see-writer -> back-out window to 2ms and the tiny
// spin limit makes the writer park inside it; without the back-out's
// release-store + notify handshake this deadlocks (and times out).
TEST(FaultPerturbTest, SerialWriterSurvivesDelayedReaderBackout) {
  ModeGuard g(ExecMode::StmCondVar);
  PlanGuard pg;
  config().park_spin_limit = 1;
  ASSERT_TRUE(fault::install_spec("delay@sl_read_backout=1/2000000", 13));
  tm_var<long> v{0};
  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r)
    readers.emplace_back([&, r] {
      fault::set_thread_stream(static_cast<std::uint32_t>(50 + r));
      while (!stop.load(std::memory_order_relaxed))
        atomic_do([&](TxContext& tx) { (void)tx.read(v); });
    });
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  long iter = 0;
  while (std::chrono::steady_clock::now() < deadline &&
         fault::snapshot().delays_total() < 8) {
    synchronized_do([&](TxContext& tx) { tx.write(v, ++iter); });
  }
  stop.store(true);
  for (auto& t : readers) t.join();
  EXPECT_GT(fault::snapshot().delays_total(), 0u);
  EXPECT_GT(aggregate_stats().fault_delays, 0u);
}

// ---------------------------------------------------------------------------
// tx_condvar regressions
// ---------------------------------------------------------------------------

TEST(FaultCondvarTest, TimedWaitMeasuresMonotonicClockWhereAvailable) {
#if defined(__GLIBC__) && \
    (__GLIBC__ > 2 || (__GLIBC__ == 2 && __GLIBC_MINOR__ >= 30))
  EXPECT_EQ(tx_condvar::timed_wait_clock(), CLOCK_MONOTONIC);
#else
  EXPECT_EQ(tx_condvar::timed_wait_clock(), CLOCK_REALTIME);
#endif
}

// Regression for the unbounded signal bank: notify_all used to bank
// kPendingCap pending signals even with nobody committed-but-not-enqueued,
// so a later unrelated wait consumed one and returned without ever
// blocking. Now the bank is bounded by announced-minus-enqueued intents: a
// notify with nobody in flight banks nothing and the next timed wait really
// blocks and really times out.
TEST(FaultCondvarTest, NotifyWithNoWaitersBanksNothing) {
  const ExecMode kModes[] = {ExecMode::Lock, ExecMode::StmCondVar,
                             ExecMode::StmCondVarNoQ, ExecMode::Htm};
  for (ExecMode mode : kModes) {
    SCOPED_TRACE(tle::to_string(mode));
    ModeGuard g(mode);
    PlanGuard pg;
    elidable_mutex m;
    tx_condvar cv;
    cv.notify_all_now();
    cv.notify_one_now();
    critical(m, [&](TxContext& tx) { cv.notify_all(tx); });
    const auto before = aggregate_stats();
    const auto t0 = std::chrono::steady_clock::now();
    critical(m, [&](TxContext& tx) { cv.wait_for(tx, 30ms); });
    const auto elapsed = std::chrono::steady_clock::now() - t0;
    const auto after = aggregate_stats();
    EXPECT_EQ(after.condvar_waits, before.condvar_waits + 1);
    EXPECT_EQ(after.condvar_timeouts, before.condvar_timeouts + 1);
    EXPECT_GE(elapsed, 25ms);
    EXPECT_EQ(cv.waiter_count(), 0);
  }
}

// The bound must not reintroduce the lost-wakeup the bank exists for: pin a
// waiter inside the committed-but-not-yet-enqueued window and let the
// notify land there. Exactly one signal banks (one intent is in flight) and
// the waiter consumes it at enqueue instead of sleeping forever.
TEST(FaultCondvarTest, SignalLandingBeforeEnqueueIsBankedNotLost) {
  ModeGuard g(ExecMode::StmCondVar);
  PlanGuard pg;
  ASSERT_TRUE(fault::install_spec("delay@cv_enqueue=1/300000000", 14));
  elidable_mutex m;
  tx_condvar cv;
  tm_var<int> ready{0};
  std::atomic<bool> woke{false};
  std::thread waiter([&] {
    fault::set_thread_stream(1);
    for (;;) {
      bool done = false;
      critical(m, [&](TxContext& tx) {
        if (tx.read(ready) != 0)
          done = true;
        else
          cv.wait(tx);
      });
      if (done) break;
    }
    woke.store(true);
  });
  // The delay counter bumps at the top of the window, before the sleep: once
  // it reads 1 the wait has committed (intent announced) but not enqueued.
  while (fault::snapshot().delays[hook_index(fault::Hook::CvEnqueue)] == 0)
    std::this_thread::sleep_for(1ms);
  critical(m, [&](TxContext& tx) {
    tx.write(ready, 1);
    cv.notify_all(tx);
  });
  waiter.join();
  EXPECT_TRUE(woke.load());
  EXPECT_EQ(cv.waiter_count(), 0);
  // The banked signal was consumed at enqueue; the waiter never slept.
  EXPECT_EQ(aggregate_stats().condvar_waits, 0u);
}

// The timeout -> withdraw window: a signal that claims the waiter after its
// sem_clockwait expired but before it withdrew must be absorbed (the wake
// counts as a notify, not a timeout) and must leave the per-thread
// semaphore balanced for the next wait.
TEST(FaultCondvarTest, SignalInTimeoutWithdrawWindowIsAbsorbed) {
  ModeGuard g(ExecMode::StmCondVar);
  PlanGuard pg;
  ASSERT_TRUE(fault::install_spec("delay@cv_timeout=1/300000000", 15));
  elidable_mutex m;
  tx_condvar cv;
  std::thread waiter([&] {
    fault::set_thread_stream(1);
    critical(m, [&](TxContext& tx) { cv.wait_for(tx, 10ms); });
  });
  while (fault::snapshot().delays[hook_index(fault::Hook::CvTimeout)] == 0)
    std::this_thread::sleep_for(1ms);
  cv.notify_one_now();  // lands inside the 300ms-wide withdraw window
  waiter.join();
  fault::clear();
  auto s = aggregate_stats();
  EXPECT_EQ(s.condvar_waits, 1u);
  EXPECT_EQ(s.condvar_timeouts, 0u);  // the signal claimed it
  EXPECT_EQ(cv.waiter_count(), 0);
  critical(m, [&](TxContext& tx) { cv.wait_for(tx, 10ms); });
  s = aggregate_stats();
  EXPECT_EQ(s.condvar_waits, 2u);
  EXPECT_EQ(s.condvar_timeouts, 1u);
}

// ---------------------------------------------------------------------------
// HTM revalidation: a moved stripe must not skip a changed prefix
// ---------------------------------------------------------------------------

// ABA-shaped guard for the documented-unsound optimization of resuming
// revalidation past already-checked entries: pause a reader between its two
// reads while a writer changes both halves of an invariant pair. The
// already-validated prefix (A) went stale, so the read of B must revalidate
// every logged entry in the moved stripes and abort — skipping the
// "already validated" prefix would let the transaction see the torn pair
// {old A, new B}.
TEST(FaultHtmTest, RevalidateNeverSkipsChangedPrefix) {
  ModeGuard g(ExecMode::Htm);
  PlanGuard pg;
  config().htm_spurious_abort_rate = 0.0;
  tm_var<long> a{0}, b{0};
  std::atomic<int> phase{0};
  std::thread writer([&] {
    while (phase.load() != 1) std::this_thread::yield();
    atomic_do([&](TxContext& tx) {
      tx.write(a, 1L);
      tx.write(b, 1L);
    });
    phase.store(2);
  });
  long a_seen = -1, b_seen = -1;
  int attempt = 0;
  atomic_do([&](TxContext& tx) {
    const long av = tx.read(a);
    if (++attempt == 1) {  // handshake only on the first attempt
      phase.store(1);
      while (phase.load() != 2) std::this_thread::yield();
    }
    const long bv = tx.read(b);
    a_seen = av;
    b_seen = bv;
  });
  writer.join();
  EXPECT_EQ(a_seen, b_seen);  // never the torn {0, 1} view
  EXPECT_EQ(a_seen, 1);
  EXPECT_GE(attempt, 2);
  EXPECT_GE(aggregate_stats().aborts[static_cast<int>(AbortCause::Validation)],
            1u);
}

// ---------------------------------------------------------------------------
// Observability integration: injected aborts attribute to their site
// ---------------------------------------------------------------------------

TEST(FaultObsTest, InjectedAbortsAttributedToSite) {
  ModeGuard g(ExecMode::StmCondVar);
  PlanGuard pg;
  tle::obs::profile_enable(true);
  tle::obs::reset_site_profiles();
  ASSERT_TRUE(fault::install_spec("spurious@commit=0.2", 16));
  tm_var<long> v{0};
  for (int i = 0; i < 200; ++i)
    atomic_do(TLE_TX_SITE("fault_test/injected"),
              [&](TxContext& tx) { tx.fetch_add(v, 1L); });
  const fault::Counts counts = fault::snapshot();
  fault::clear();
  tle::obs::profile_enable(false);
  ASSERT_GT(counts.injected_total(), 0u);

  int site_id = -1;
  for (int i = 0; i < tle::obs::site_count(); ++i)
    if (std::string(tle::obs::site_info(i).name) == "fault_test/injected")
      site_id = i;
  ASSERT_GE(site_id, 0);
  std::uint64_t spurious = 0;
  for (int slot = 0; slot < tle::slot_high_water(); ++slot)
    if (tle::obs::SiteCounters* t = tle::obs::peek_site_table(slot))
      spurious +=
          t[site_id].aborts[static_cast<int>(AbortCause::Spurious)].load();
  EXPECT_EQ(spurious, counts.injected_total());
}

}  // namespace
