// Tests for the contention governor (PR: cause-aware retry policy,
// abort-storm throttle, starvation watchdog):
//   * the default disposition table and every TxnAttrs override,
//   * capacity/unsafe -> serial in ONE attempt (no futile retries),
//   * serial-pending drains that consume no retry budget (lemming fix),
//   * drain timeouts that do charge budget,
//   * retry-limit semantics: 0 = one attempt then serial, -1 = inherit,
//   * the htm_retries fix (aborts followed by another hardware attempt),
//   * storm gate trip/release with hysteresis and token-based admission,
//   * watchdog escalation by attempts cap and by wall-clock deadline,
//   * validate_config() rejection of malformed governor knobs,
//   * byte-identical governor counters across two same-seed runs.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>

#include "test_support.hpp"
#include "tm/fault/fault.hpp"
#include "tm/governor/governor.hpp"
#include "tm/obs/export.hpp"
#include "tm/obs/site.hpp"
#include "tm/registry.hpp"
#include "tm/serial_lock.hpp"
#include "tm/tm.hpp"

namespace tle {
namespace {

using testing::kElisionModes;
using testing::ModeGuard;

/// Every governor test starts with a clean slate: no fault plan, zeroed
/// stats, and the global storm window / gate reset. Restores on exit too so
/// a tripped storm cannot leak into the next suite.
struct GovGuard {
  GovGuard() {
    fault::clear();
    reset_stats();
    gov::reset();
  }
  ~GovGuard() {
    fault::clear();
    gov::reset();
  }
};

StatsSnapshot stats() { return aggregate_stats(); }

// ---------------------------------------------------------------------------
// Policy table
// ---------------------------------------------------------------------------

TEST(GovernorPolicy, DefaultDispositionTable) {
  using gov::Disposition;
  EXPECT_EQ(gov::default_disposition(AbortCause::Capacity),
            Disposition::Serial);
  EXPECT_EQ(gov::default_disposition(AbortCause::Unsafe), Disposition::Serial);
  EXPECT_EQ(gov::default_disposition(AbortCause::SerialPending),
            Disposition::Drain);
  EXPECT_EQ(gov::default_disposition(AbortCause::Spurious),
            Disposition::Immediate);
  EXPECT_EQ(gov::default_disposition(AbortCause::Conflict),
            Disposition::Backoff);
  EXPECT_EQ(gov::default_disposition(AbortCause::Validation),
            Disposition::Backoff);
  EXPECT_EQ(gov::default_disposition(AbortCause::UserExplicit),
            Disposition::Backoff);
}

// A capacity abort escalates after exactly one speculative attempt in every
// elision mode: retrying a too-big footprint is futile by definition.
TEST(GovernorPolicy, CapacitySerialInOneAttemptAllModes) {
  for (ExecMode mode : kElisionModes) {
    ModeGuard g(mode);
    GovGuard gg;
    config().htm_max_retries = 8;  // plenty of budget the policy must ignore
    config().stm_max_retries = 8;
    ASSERT_TRUE(fault::install_spec("capacity@write=1", 42));
    tm_var<long> v(0);
    atomic_do([&](TxContext& tx) { tx.write(v, 1L); });
    const StatsSnapshot s = stats();
    EXPECT_EQ(s.aborts[static_cast<int>(AbortCause::Capacity)], 1u)
        << to_string(mode);
    EXPECT_EQ(s.gov_serial_immediate, 1u) << to_string(mode);
    EXPECT_EQ(s.serial_fallbacks, 1u) << to_string(mode);
    EXPECT_EQ(s.serial_commits, 1u) << to_string(mode);
    EXPECT_EQ(s.htm_retries, 0u) << to_string(mode);
    EXPECT_EQ(v.unsafe_get(), 1);
  }
}

// Spurious aborts retry immediately but still consume budget; with
// htm_max_retries = N the transaction makes exactly N hardware attempts.
// Also the htm_retries fix: the abort that goes serial is NOT a retry.
TEST(GovernorPolicy, SpuriousImmediateRetriesConsumeBudget) {
  ModeGuard g(ExecMode::Htm);
  GovGuard gg;
  config().htm_max_retries = 3;
  config().htm_spurious_abort_rate = 1.0;  // every hardware attempt dies
  tm_var<long> v(0);
  atomic_do([&](TxContext& tx) { tx.fetch_add(v, 1L); });
  const StatsSnapshot s = stats();
  EXPECT_EQ(s.aborts[static_cast<int>(AbortCause::Spurious)], 3u);
  EXPECT_EQ(s.gov_immediate_retries, 2u);  // aborts 1 and 2; abort 3 -> serial
  EXPECT_EQ(s.htm_retries, 2u);            // retries = aborts - the fallback
  EXPECT_EQ(s.serial_fallbacks, 1u);
  EXPECT_EQ(s.serial_commits, 1u);
  EXPECT_EQ(v.unsafe_get(), 1);
}

TEST(GovernorPolicy, ConflictBacksOffThenSerial) {
  ModeGuard g(ExecMode::StmSpin);
  GovGuard gg;
  config().stm_max_retries = 2;
  ASSERT_TRUE(fault::install_spec("conflict@read=1", 42));
  tm_var<long> v(0);
  atomic_do([&](TxContext& tx) { (void)tx.read(v); });
  const StatsSnapshot s = stats();
  EXPECT_EQ(s.aborts[static_cast<int>(AbortCause::Conflict)], 2u);
  EXPECT_EQ(s.gov_backoffs, 1u);  // abort 1 backs off; abort 2 -> serial
  EXPECT_EQ(s.serial_fallbacks, 1u);
  EXPECT_EQ(s.serial_commits, 1u);
}

// ---------------------------------------------------------------------------
// Retry-limit semantics (the clamp fix)
// ---------------------------------------------------------------------------

// Global limit 0 = one speculative attempt, then serial — not "retry
// forever" (the old `limit > 0 ? limit : 1` clamp made 0 behave like 1).
TEST(GovernorPolicy, ZeroGlobalLimitMeansOneAttempt) {
  ModeGuard g(ExecMode::StmSpin);
  GovGuard gg;
  config().stm_max_retries = 0;
  ASSERT_TRUE(fault::install_spec("conflict@read=1", 42));
  tm_var<long> v(0);
  atomic_do([&](TxContext& tx) { (void)tx.read(v); });
  const StatsSnapshot s = stats();
  EXPECT_EQ(s.aborts_total(), 1u);
  EXPECT_EQ(s.gov_backoffs, 0u);  // no budget left: no backoff, no retry
  EXPECT_EQ(s.serial_fallbacks, 1u);
  EXPECT_EQ(s.serial_commits, 1u);
}

// Same semantics through TxnAttrs, and with the governor OFF (the legacy
// path honours the -1 sentinel and the 0 clamp identically).
TEST(GovernorPolicy, AttrMaxRetriesZeroBothPolicies) {
  for (bool governor : {true, false}) {
    ModeGuard g(ExecMode::StmSpin);
    GovGuard gg;
    config().governor = governor;
    config().stm_max_retries = 8;  // the attr must override this
    ASSERT_TRUE(fault::install_spec("conflict@read=1", 42));
    tm_var<long> v(0);
    TxnAttrs attrs;
    attrs.max_retries = 0;
    atomic_do(attrs, [&](TxContext& tx) { (void)tx.read(v); });
    const StatsSnapshot s = stats();
    EXPECT_EQ(s.aborts_total(), 1u) << "governor=" << governor;
    EXPECT_EQ(s.serial_fallbacks, 1u) << "governor=" << governor;
    EXPECT_EQ(s.serial_commits, 1u) << "governor=" << governor;
  }
}

// htm_retries counting with the governor off: N aborts with limit N means
// N-1 retries plus one serial fallback (the old code counted N).
TEST(GovernorPolicy, LegacyHtmRetriesExcludeTheFallbackAbort) {
  ModeGuard g(ExecMode::Htm);
  GovGuard gg;
  config().governor = false;
  config().htm_max_retries = 2;
  config().htm_spurious_abort_rate = 1.0;
  tm_var<long> v(0);
  atomic_do([&](TxContext& tx) { tx.fetch_add(v, 1L); });
  const StatsSnapshot s = stats();
  EXPECT_EQ(s.aborts[static_cast<int>(AbortCause::Spurious)], 2u);
  EXPECT_EQ(s.htm_retries, 1u);
  EXPECT_EQ(s.serial_fallbacks, 1u);
  EXPECT_EQ(v.unsafe_get(), 1);
}

// ---------------------------------------------------------------------------
// TxnAttrs disposition overrides
// ---------------------------------------------------------------------------

TEST(GovernorPolicy, AttrOverridesCapacityBackToBackoff) {
  ModeGuard g(ExecMode::StmSpin);
  GovGuard gg;
  config().stm_max_retries = 2;
  ASSERT_TRUE(fault::install_spec("capacity@write=1", 42));
  tm_var<long> v(0);
  TxnAttrs attrs;
  attrs.with(AbortCause::Capacity, gov::Disposition::Backoff);
  atomic_do(attrs, [&](TxContext& tx) { tx.write(v, 1L); });
  const StatsSnapshot s = stats();
  EXPECT_EQ(s.aborts[static_cast<int>(AbortCause::Capacity)], 2u);
  EXPECT_EQ(s.gov_serial_immediate, 0u);
  EXPECT_EQ(s.gov_backoffs, 1u);
  EXPECT_EQ(s.serial_fallbacks, 1u);
}

TEST(GovernorPolicy, AttrOverridesConflictToSerial) {
  ModeGuard g(ExecMode::StmSpin);
  GovGuard gg;
  config().stm_max_retries = 8;
  ASSERT_TRUE(fault::install_spec("conflict@read=1", 42));
  tm_var<long> v(0);
  TxnAttrs attrs;
  attrs.with(AbortCause::Conflict, gov::Disposition::Serial);
  atomic_do(attrs, [&](TxContext& tx) { (void)tx.read(v); });
  const StatsSnapshot s = stats();
  EXPECT_EQ(s.aborts_total(), 1u);
  EXPECT_EQ(s.gov_serial_immediate, 1u);
  EXPECT_EQ(s.serial_fallbacks, 1u);
  EXPECT_EQ(s.serial_commits, 1u);
}

// The attrs are scoped: the next plain transaction is back on the defaults.
TEST(GovernorPolicy, AttrsDoNotLeakToNextTransaction) {
  ModeGuard g(ExecMode::StmSpin);
  GovGuard gg;
  config().stm_max_retries = 8;
  ASSERT_TRUE(fault::install_spec("capacity@write=1", 42));
  tm_var<long> v(0);
  TxnAttrs attrs;
  attrs.with(AbortCause::Capacity, gov::Disposition::Backoff);
  attrs.max_retries = 1;
  atomic_do(attrs, [&](TxContext& tx) { tx.write(v, 1L); });
  atomic_do([&](TxContext& tx) { tx.write(v, 2L); });  // default policy again
  const StatsSnapshot s = stats();
  // First txn: 1 capacity abort, backoff path skipped (budget 1 >= 1).
  // Second txn: capacity -> serial at once. Two aborts total, none retried.
  EXPECT_EQ(s.aborts[static_cast<int>(AbortCause::Capacity)], 2u);
  EXPECT_EQ(s.gov_serial_immediate, 1u);
  EXPECT_EQ(s.serial_fallbacks, 2u);
  EXPECT_EQ(v.unsafe_get(), 2);
}

// ---------------------------------------------------------------------------
// Serial-pending drain (the lemming fix)
// ---------------------------------------------------------------------------

// A transaction aborted by a serial writer waits the serial window out
// without consuming retry budget: even with stm_max_retries = 1 it commits
// SPECULATIVELY once the writer leaves, never falling back to serial.
TEST(GovernorDrain, SerialPendingDrainsWithoutBudgetBurn) {
  ModeGuard g(ExecMode::StmSpin);
  GovGuard gg;
  config().stm_max_retries = 1;  // ANY budget-consuming abort would go serial
  config().serial_drain_timeout_ns = 1'000'000'000;  // don't time out
  config().watchdog_deadline_ns = 0;  // the orchestrated pause must not trip it
  tm_var<long> v(0);
  std::atomic<bool> reader_in{false};
  std::atomic<bool> saw_pending{false};
  std::atomic<bool> release{false};
  std::atomic<bool> reader_done{false};

  // Begin blocks in read_lock while serial is held, so the abort we need
  // only happens when the writer arrives MID-transaction: the reader parks
  // inside its body until it can see the writer's pending flag, and its
  // next instrumented access dies with SerialPending.
  std::thread reader([&] {
    atomic_do([&](TxContext& tx) {
      tx.fetch_add(v, 10L);
      reader_in.store(true, std::memory_order_release);
      while (!saw_pending.load(std::memory_order_acquire)) {
        if (serial_lock().serial_requested())
          saw_pending.store(true, std::memory_order_release);
        else
          std::this_thread::yield();
      }
      (void)tx.read(v);  // first attempt: SerialPending abort fires here
    });
    reader_done.store(true, std::memory_order_release);
  });
  while (!reader_in.load(std::memory_order_acquire)) std::this_thread::yield();

  std::thread writer([&] {
    synchronized_do([&](TxContext& tx) {
      tx.fetch_add(v, 1L);
      while (!release.load(std::memory_order_acquire))
        std::this_thread::yield();
    });
  });
  // The reader must be parked in a drain wait, not running serial (it
  // cannot: the writer holds the token) and not burning budget.
  while (stats().gov_drain_waits == 0) std::this_thread::yield();
  EXPECT_FALSE(reader_done.load(std::memory_order_acquire));
  release.store(true, std::memory_order_release);
  writer.join();
  reader.join();

  const StatsSnapshot s = stats();
  EXPECT_GE(s.gov_drain_waits, 1u);
  EXPECT_EQ(s.gov_drain_timeouts, 0u);
  EXPECT_GE(s.aborts[static_cast<int>(AbortCause::SerialPending)], 1u);
  EXPECT_EQ(s.serial_fallbacks, 0u);  // the reader stayed speculative
  EXPECT_EQ(s.commits, 1u);           // and committed as a transaction
  EXPECT_EQ(s.serial_commits, 1u);    // the synchronized_do writer
  EXPECT_EQ(v.unsafe_get(), 11);
}

// When the serial window outlives serial_drain_timeout_ns the drain charges
// the abort like any other, so a pathological writer stream still drives the
// waiter to its own serial slot instead of parking it forever.
TEST(GovernorDrain, DrainTimeoutChargesBudget) {
  ModeGuard g(ExecMode::StmSpin);
  GovGuard gg;
  config().stm_max_retries = 1;
  config().serial_drain_timeout_ns = 1;  // time out effectively immediately
  config().watchdog_deadline_ns = 0;  // the orchestrated pause must not trip it
  tm_var<long> v(0);
  std::atomic<bool> reader_in{false};
  std::atomic<bool> saw_pending{false};
  std::atomic<bool> release{false};

  std::thread reader([&] {
    atomic_do([&](TxContext& tx) {
      tx.fetch_add(v, 10L);
      reader_in.store(true, std::memory_order_release);
      while (!saw_pending.load(std::memory_order_acquire)) {
        if (serial_lock().serial_requested())
          saw_pending.store(true, std::memory_order_release);
        else
          std::this_thread::yield();
      }
      (void)tx.read(v);  // first attempt: SerialPending abort fires here
    });
  });
  while (!reader_in.load(std::memory_order_acquire)) std::this_thread::yield();

  std::thread writer([&] {
    synchronized_do([&](TxContext& tx) {
      tx.fetch_add(v, 1L);
      while (!release.load(std::memory_order_acquire))
        std::this_thread::yield();
    });
  });
  // The reader times out of its drain, burns its only budget unit, and
  // queues for the serial token; release the writer so it can have it.
  while (stats().gov_drain_timeouts == 0) std::this_thread::yield();
  release.store(true, std::memory_order_release);
  writer.join();
  reader.join();

  const StatsSnapshot s = stats();
  EXPECT_GE(s.gov_drain_timeouts, 1u);
  EXPECT_EQ(s.serial_fallbacks, 1u);
  EXPECT_EQ(s.serial_commits, 2u);  // writer + the fallen-back reader
  EXPECT_EQ(v.unsafe_get(), 11);
}

// ---------------------------------------------------------------------------
// Starvation watchdog
// ---------------------------------------------------------------------------

// Injected serial-pending aborts with nothing actually pending are the
// governor's blind spot: every drain succeeds instantly and budget-free, so
// without the watchdog the loop runs forever. The attempts cap breaks it
// deterministically: exactly watchdog_max_attempts aborts, then serial.
TEST(GovernorWatchdog, AttemptsCapBreaksBudgetFreeLivelock) {
  ModeGuard g(ExecMode::StmSpin);
  GovGuard gg;
  config().stm_max_retries = 1000;
  config().watchdog_max_attempts = 5;
  ASSERT_TRUE(fault::install_spec("serial-pending@begin=1", 42));
  tm_var<long> v(0);
  atomic_do(TLE_TX_SITE("gov/starved"),
            [&](TxContext& tx) { tx.write(v, 1L); });
  const StatsSnapshot s = stats();
  EXPECT_EQ(s.aborts[static_cast<int>(AbortCause::SerialPending)], 5u);
  EXPECT_EQ(s.gov_drain_waits, 4u);  // aborts 1-4 drained; abort 5 escalated
  EXPECT_EQ(s.gov_watchdog_escalations, 1u);
  EXPECT_EQ(s.serial_fallbacks, 1u);
  EXPECT_EQ(s.serial_commits, 1u);
  EXPECT_EQ(v.unsafe_get(), 1);
}

// The wall-clock deadline catches the same livelock when the attempts cap is
// off; and the starvation report ranks the site that needed rescuing.
TEST(GovernorWatchdog, DeadlineEscalatesAndReportNamesTheSite) {
  ModeGuard g(ExecMode::StmSpin);
  GovGuard gg;
  obs::reset_site_profiles();
  obs::profile_enable(true);
  config().stm_max_retries = 1 << 20;
  config().watchdog_max_attempts = 0;      // attempts cap disabled
  config().watchdog_deadline_ns = 2'000'000;  // 2 ms
  ASSERT_TRUE(fault::install_spec("serial-pending@begin=1", 42));
  tm_var<long> v(0);
  atomic_do(TLE_TX_SITE("gov/deadline_starved"),
            [&](TxContext& tx) { tx.write(v, 1L); });
  const StatsSnapshot s = stats();
  EXPECT_GE(s.gov_watchdog_escalations, 1u);
  EXPECT_EQ(s.serial_commits, 1u);
  EXPECT_EQ(v.unsafe_get(), 1);
  const std::string report = gov::starvation_report();
  EXPECT_NE(report.find("gov/deadline_starved"), std::string::npos) << report;
  obs::profile_enable(false);
}

// ---------------------------------------------------------------------------
// Abort-storm gate
// ---------------------------------------------------------------------------

// Saturating aborts trip the gate at storm_on_rate; a commit-only phase
// lowers the estimate past storm_off_rate and releases it (hysteresis).
TEST(GovernorStorm, TripsOnAbortsReleasesOnCommits) {
  ModeGuard g(ExecMode::StmSpin);
  GovGuard gg;
  config().stm_max_retries = 2;
  config().storm_window = 4;
  config().storm_on_rate = 0.85;
  config().storm_off_rate = 0.50;
  tm_var<long> v(0);

  // Fresh thread: its private fold window starts at phase 0.
  std::thread t([&] {
    fault::set_thread_stream(7);
    ASSERT_TRUE(fault::install_spec("conflict@read=1", 42));
    for (int i = 0; i < 8 && !gov::storm_active(); ++i)
      atomic_do([&](TxContext& tx) { (void)tx.read(v); });
    EXPECT_TRUE(gov::storm_active());
    EXPECT_GE(gov::abort_rate_estimate(), config().storm_on_rate);

    fault::clear();
    // Commit-only traffic dilutes the estimate until the gate releases.
    for (int i = 0; i < 4096 && gov::storm_active(); ++i)
      atomic_do([&](TxContext& tx) { tx.fetch_add(v, 1L); });
    EXPECT_FALSE(gov::storm_active());
  });
  t.join();

  const StatsSnapshot s = stats();
  EXPECT_GE(s.gov_storm_enters, 1u);
  EXPECT_GE(s.gov_storm_exits, 1u);
  EXPECT_LE(gov::abort_rate_estimate(), config().storm_off_rate);
}

// With the gate engaged and one token, a second speculator is held at the
// gate until the token holder commits — the concurrency throttle itself.
TEST(GovernorStorm, GateAdmitsOneTokenHolderAtATime) {
  ModeGuard g(ExecMode::StmSpin);
  GovGuard gg;
  config().stm_max_retries = 2;
  config().storm_window = 4;
  config().storm_tokens = 1;
  config().watchdog_max_attempts = 0;  // the gated thread waits as long as
  config().watchdog_deadline_ns = 0;   // the orchestration needs it to
  // Huge windows for the two worker threads: their handful of attempts
  // never folds, so the storm cannot release mid-test.
  tm_var<long> v(0);

  // Trip the storm from a throwaway thread.
  std::thread trip([&] {
    fault::set_thread_stream(7);
    ASSERT_TRUE(fault::install_spec("conflict@read=1", 42));
    for (int i = 0; i < 8 && !gov::storm_active(); ++i)
      atomic_do([&](TxContext& tx) { (void)tx.read(v); });
    fault::clear();
  });
  trip.join();
  ASSERT_TRUE(gov::storm_active());
  config().storm_window = 1 << 30;  // freeze the estimate for the main act

  std::atomic<bool> a_in{false}, go{false}, b_done{false};
  std::thread a([&] {
    atomic_do([&](TxContext& tx) {
      tx.fetch_add(v, 1L);
      a_in.store(true, std::memory_order_release);
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
    });
  });
  while (!a_in.load(std::memory_order_acquire)) std::this_thread::yield();

  std::thread b([&] {
    atomic_do([&](TxContext& tx) { tx.fetch_add(v, 1L); });
    b_done.store(true, std::memory_order_release);
  });
  // b must be held at the gate: the only token is inside a's transaction.
  while (stats().gov_storm_gated == 0) std::this_thread::yield();
  EXPECT_FALSE(b_done.load(std::memory_order_acquire));
  go.store(true, std::memory_order_release);
  a.join();
  b.join();

  const StatsSnapshot s = stats();
  EXPECT_GE(s.gov_storm_gated, 1u);
  EXPECT_EQ(s.commits, 2u);
  EXPECT_EQ(v.unsafe_get(), 2);
}

// ---------------------------------------------------------------------------
// validate_config
// ---------------------------------------------------------------------------

TEST(GovernorConfig, ValidateRejectsMalformedKnobs) {
  EXPECT_EQ(validate_config(RuntimeConfig{}), nullptr);

  RuntimeConfig c;
  c.htm_max_retries = -1;
  EXPECT_NE(validate_config(c), nullptr);

  c = RuntimeConfig{};
  c.stm_max_retries = -7;
  EXPECT_NE(validate_config(c), nullptr);

  c = RuntimeConfig{};
  c.storm_on_rate = 1.5;
  EXPECT_NE(validate_config(c), nullptr);

  c = RuntimeConfig{};
  c.storm_on_rate = 0.4;
  c.storm_off_rate = 0.6;  // hysteresis inverted
  EXPECT_NE(validate_config(c), nullptr);

  c = RuntimeConfig{};
  c.storm_window = 0;
  EXPECT_NE(validate_config(c), nullptr);

  c = RuntimeConfig{};
  c.storm_tokens = 0;  // a zero throttle would deadlock the gate
  EXPECT_NE(validate_config(c), nullptr);
}

// ---------------------------------------------------------------------------
// Determinism
// ---------------------------------------------------------------------------

/// The governor-decision fingerprint of one run.
struct GovTrace {
  std::uint64_t serial_immediate, backoffs, immediate_retries, drain_waits;
  std::uint64_t watchdog, aborts, fallbacks, commits;
  bool operator==(const GovTrace&) const = default;
};

GovTrace fingerprint() {
  const StatsSnapshot s = aggregate_stats();
  return {s.gov_serial_immediate, s.gov_backoffs,   s.gov_immediate_retries,
          s.gov_drain_waits,      s.gov_watchdog_escalations,
          s.aborts_total(),       s.serial_fallbacks, s.commits};
}

// Same seed, same per-thread workload => the governor makes the identical
// decision sequence. Fresh threads pin the fault stream and start with a
// zeroed fold window; a huge storm_window keeps the global estimate out of
// the picture (its phase survives runs by design).
TEST(GovernorDeterminism, SameSeedSameDecisions) {
  ModeGuard g(ExecMode::Htm);
  GovGuard gg;
  config().htm_max_retries = 4;
  config().storm_window = 1 << 30;
  tm_var<long> v(0);

  auto run = [&] {
    reset_stats();
    gov::reset();
    ASSERT_TRUE(fault::install_spec(
        "conflict@read=0.2,spurious@commit=0.1,capacity@write=0.02", 1234));
    std::thread t([&] {
      fault::set_thread_stream(9);
      for (int i = 0; i < 800; ++i)
        atomic_do([&](TxContext& tx) { tx.fetch_add(v, 1L); });
    });
    t.join();
    fault::clear();
  };

  GovTrace first{}, second{};
  run();
  first = fingerprint();
  run();
  second = fingerprint();
  EXPECT_GT(first.aborts, 0u);
  EXPECT_EQ(first.commits + first.fallbacks, 800u);
  EXPECT_TRUE(first == second);
}

}  // namespace
}  // namespace tle
