// Tests for the videnc encoder substrate: transform/entropy unit tests,
// prediction correctness, wavefront scheduling order, encoder determinism
// across modes and thread counts, and quality sanity.
#include <gtest/gtest.h>

#include <cstring>

#include "test_support.hpp"
#include "videnc/encoder.hpp"
#include "videnc/predict.hpp"
#include "videnc/transform.hpp"
#include "util/rng.hpp"

namespace tle::videnc {
namespace {

using tle::testing::kAllModes;
using tle::testing::ModeGuard;

// ---------------------------------------------------------------------------
// Transform
// ---------------------------------------------------------------------------

TEST(Transform, DctOfFlatBlockIsDcOnly) {
  std::int16_t in[kBlockSize];
  std::fill(in, in + kBlockSize, std::int16_t{100});
  std::int32_t out[kBlockSize];
  fdct8x8(in, out);
  EXPECT_NEAR(out[0], 800, 2);  // DC = 8 * value for orthonormal DCT
  for (int i = 1; i < kBlockSize; ++i) EXPECT_LE(std::abs(out[i]), 1) << i;
}

TEST(Transform, DctIdctRoundTripIsNearLossless) {
  Xoshiro256 rng(1);
  for (int trial = 0; trial < 50; ++trial) {
    std::int16_t in[kBlockSize];
    for (auto& v : in)
      v = static_cast<std::int16_t>(static_cast<int>(rng.below(511)) - 255);
    std::int32_t freq[kBlockSize];
    fdct8x8(in, freq);
    std::int16_t back[kBlockSize];
    idct8x8(freq, back);
    for (int i = 0; i < kBlockSize; ++i)
      ASSERT_NEAR(back[i], in[i], 2) << "trial " << trial << " i " << i;
  }
}

TEST(Transform, QuantStepGrowsWithQp) {
  EXPECT_GE(quant_step(0), 1);
  EXPECT_LT(quant_step(10), quant_step(22));
  EXPECT_LT(quant_step(22), quant_step(34));
  EXPECT_EQ(quant_step(22) * 4, quant_step(34)) << "doubles every 6 qp";
}

TEST(Transform, QuantizeDequantizeBoundsError) {
  Xoshiro256 rng(2);
  const std::int32_t step = quant_step(28);
  for (int trial = 0; trial < 20; ++trial) {
    std::int32_t c[kBlockSize], orig[kBlockSize];
    for (int i = 0; i < kBlockSize; ++i)
      orig[i] = c[i] = static_cast<std::int32_t>(rng.below(4000)) - 2000;
    quantize(c, step);
    dequantize(c, step);
    for (int i = 0; i < kBlockSize; ++i)
      ASSERT_LE(std::abs(c[i] - orig[i]), step / 2 + 1);
  }
}

TEST(Transform, ZigzagIsAPermutation) {
  bool seen[kBlockSize] = {};
  for (int i = 0; i < kBlockSize; ++i) {
    ASSERT_LT(kZigzag[i], kBlockSize);
    ASSERT_FALSE(seen[kZigzag[i]]) << "duplicate at " << i;
    seen[kZigzag[i]] = true;
  }
  // Low-frequency coefficients come first.
  EXPECT_EQ(kZigzag[0], 0);
  EXPECT_EQ(kZigzag[1], 1);
  EXPECT_EQ(kZigzag[2], 8);
}

TEST(Transform, EntropyRoundTripSparseAndDense) {
  Xoshiro256 rng(3);
  for (int trial = 0; trial < 40; ++trial) {
    std::int32_t coeffs[kBlockSize] = {};
    const int nz = static_cast<int>(rng.below(trial % 2 ? 64 : 6));
    for (int k = 0; k < nz; ++k)
      coeffs[rng.below(kBlockSize)] =
          static_cast<std::int32_t>(rng.below(199)) - 99;
    // Note: values may be 0 — that is fine, they are just not coded.
    bzip::BitWriter bw;
    const std::size_t bits = entropy_encode_block(coeffs, bw);
    EXPECT_GT(bits, 0u);
    auto buf = bw.finish();
    bzip::BitReader br(buf.data(), buf.size());
    std::int32_t back[kBlockSize];
    ASSERT_TRUE(entropy_decode_block(br, back)) << trial;
    for (int i = 0; i < kBlockSize; ++i)
      ASSERT_EQ(back[i], coeffs[i]) << "trial " << trial << " i " << i;
  }
}

TEST(Transform, EntropyAllZeroBlockIsTiny) {
  std::int32_t coeffs[kBlockSize] = {};
  bzip::BitWriter bw;
  const std::size_t bits = entropy_encode_block(coeffs, bw);
  EXPECT_LE(bits, 16u) << "empty block must cost only the EOB";
}

TEST(Transform, EntropyDecodeRejectsGarbage) {
  // All-ones bitstream decodes runs of 0 forever -> position overrun.
  std::vector<std::uint8_t> junk(16, 0xFF);
  bzip::BitReader br(junk.data(), junk.size());
  std::int32_t c[kBlockSize];
  EXPECT_FALSE(entropy_decode_block(br, c));
}

// ---------------------------------------------------------------------------
// Prediction
// ---------------------------------------------------------------------------

TEST(Predict, DcModeAveragesNeighbours) {
  Plane recon(32, 32);
  for (int x = 0; x < 32; ++x) recon.set(x, 7, 100);   // row above y0=8
  for (int y = 0; y < 32; ++y) recon.set(7, y, 200);   // column left of x0=8
  std::uint8_t pred[kBlockSize];
  intra_predict(recon, 8, 8, IntraMode::Dc, pred);
  for (auto p : pred) EXPECT_EQ(p, 150);
}

TEST(Predict, VerticalCopiesTopRow) {
  Plane recon(32, 32);
  for (int x = 0; x < 32; ++x) recon.set(x, 7, static_cast<std::uint8_t>(x));
  std::uint8_t pred[kBlockSize];
  intra_predict(recon, 8, 8, IntraMode::Vertical, pred);
  for (int y = 0; y < kBlock; ++y)
    for (int x = 0; x < kBlock; ++x)
      EXPECT_EQ(pred[y * kBlock + x], 8 + x);
}

TEST(Predict, HorizontalCopiesLeftColumn) {
  Plane recon(32, 32);
  for (int y = 0; y < 32; ++y) recon.set(7, y, static_cast<std::uint8_t>(2 * y));
  std::uint8_t pred[kBlockSize];
  intra_predict(recon, 8, 8, IntraMode::Horizontal, pred);
  for (int y = 0; y < kBlock; ++y)
    for (int x = 0; x < kBlock; ++x)
      EXPECT_EQ(pred[y * kBlock + x], 2 * (8 + y));
}

TEST(Predict, BorderBlocksDefaultTo128) {
  Plane recon(32, 32);
  std::uint8_t pred[kBlockSize];
  intra_predict(recon, 0, 0, IntraMode::Dc, pred);
  for (auto p : pred) EXPECT_EQ(p, 128);
}

TEST(Predict, MotionSearchFindsExactShift) {
  // ref shifted by (+3, -2) must be found with zero SAD.
  Plane ref(64, 64), src(64, 64);
  Xoshiro256 rng(4);
  for (int y = 0; y < 64; ++y)
    for (int x = 0; x < 64; ++x)
      ref.set(x, y, static_cast<std::uint8_t>(rng()));
  for (int y = 0; y < 64; ++y)
    for (int x = 0; x < 64; ++x)
      src.set(x, y, ref.at_clamped(x + 3, y - 2));
  const MotionResult mr = motion_search(src, ref, 24, 24, 0, 0, 8);
  EXPECT_EQ(mr.mvx, 3);
  EXPECT_EQ(mr.mvy, -2);
  EXPECT_EQ(mr.sad, 0u);
}

TEST(Predict, SadIsZeroForPerfectPrediction) {
  Plane src(16, 16);
  for (int y = 0; y < 16; ++y)
    for (int x = 0; x < 16; ++x) src.set(x, y, 55);
  std::uint8_t pred[kBlockSize];
  std::fill(pred, pred + kBlockSize, std::uint8_t{55});
  EXPECT_EQ(block_sad(src, 0, 0, pred), 0u);
  pred[0] = 60;
  EXPECT_EQ(block_sad(src, 0, 0, pred), 5u);
}

// ---------------------------------------------------------------------------
// Frame source
// ---------------------------------------------------------------------------

TEST(FrameSource, DeterministicPerFrame) {
  const Plane a = synth_frame(64, 48, 3, 7);
  const Plane b = synth_frame(64, 48, 3, 7);
  EXPECT_EQ(a, b);
  const Plane c = synth_frame(64, 48, 4, 7);
  EXPECT_NE(a, c);
}

TEST(FrameSource, PsnrMath) {
  EXPECT_EQ(psnr_from_sse(0, 100), 99.0);
  const double p1 = psnr_from_sse(100, 10000);
  const double p2 = psnr_from_sse(1000, 10000);
  EXPECT_GT(p1, p2);
}

// ---------------------------------------------------------------------------
// Encoder end-to-end
// ---------------------------------------------------------------------------

EncoderConfig small_cfg() {
  EncoderConfig cfg;
  cfg.width = 96;
  cfg.height = 64;
  cfg.frames = 6;
  cfg.gop = 4;
  cfg.search_range = 4;
  cfg.worker_threads = 2;
  cfg.frame_threads = 2;
  return cfg;
}

class EncModes : public ::testing::TestWithParam<ExecMode> {};

INSTANTIATE_TEST_SUITE_P(Videnc, EncModes, ::testing::ValuesIn(kAllModes),
                         [](const auto& info) {
                           std::string s = to_string(info.param);
                           for (auto& c : s)
                             if (!isalnum(static_cast<unsigned char>(c))) c = '_';
                           return s;
                         });

TEST_P(EncModes, EncodeCompletesAndReportsSaneStats) {
  ModeGuard g(GetParam());
  const EncodeResult r = encode(small_cfg());
  EXPECT_EQ(r.stats.frames, 6u);
  EXPECT_GT(r.stats.bits, 0u);
  EXPECT_FALSE(r.bitstream.empty());
  EXPECT_GT(r.stats.psnr, 25.0) << "reconstruction quality sanity";
  EXPECT_LT(r.stats.psnr, 99.0);
}

TEST_P(EncModes, OutputMatchesLockModeBaseline) {
  // THE integration property: bit-exact output regardless of mode/threads.
  EncodeResult baseline;
  {
    ModeGuard g(ExecMode::Lock);
    EncoderConfig cfg = small_cfg();
    cfg.worker_threads = 1;
    cfg.frame_threads = 1;
    baseline = encode(cfg);
  }
  ModeGuard g(GetParam());
  for (int workers : {1, 4}) {
    EncoderConfig cfg = small_cfg();
    cfg.worker_threads = workers;
    cfg.frame_threads = 3;
    const EncodeResult r = encode(cfg);
    EXPECT_EQ(r.bitstream, baseline.bitstream)
        << to_string(GetParam()) << " workers=" << workers;
    EXPECT_EQ(r.stats.bits, baseline.stats.bits);
    EXPECT_EQ(r.stats.sse, baseline.stats.sse);
  }
}

TEST(Videnc, InterFramesCostFewerBitsThanIntra) {
  ModeGuard g(ExecMode::Lock);
  EncoderConfig all_intra = small_cfg();
  all_intra.gop = 1;
  EncoderConfig with_inter = small_cfg();
  with_inter.gop = 6;
  const auto a = encode(all_intra);
  const auto b = encode(with_inter);
  EXPECT_LT(b.stats.bits, a.stats.bits)
      << "motion compensation must pay for itself on a moving scene";
}

TEST(Videnc, HigherQpCostsFewerBitsAndLowerPsnr) {
  ModeGuard g(ExecMode::Lock);
  EncoderConfig lo = small_cfg();
  lo.qp = 16;
  EncoderConfig hi = small_cfg();
  hi.qp = 40;
  const auto a = encode(lo);
  const auto b = encode(hi);
  EXPECT_GT(a.stats.bits, b.stats.bits);
  EXPECT_GT(a.stats.psnr, b.stats.psnr);
}

TEST(Videnc, EncodePlanesMatchesSynthPath) {
  ModeGuard g(ExecMode::StmCondVar);
  EncoderConfig cfg = small_cfg();
  std::vector<Plane> planes;
  for (int i = 0; i < cfg.frames; ++i)
    planes.push_back(synth_frame(cfg.width, cfg.height, i, cfg.seed));
  const auto a = encode(cfg);
  const auto b = encode_planes(planes, cfg);
  EXPECT_EQ(a.bitstream, b.bitstream);
}

TEST(Videnc, ZeroFramesIsEmptyResult) {
  ModeGuard g(ExecMode::Lock);
  EncoderConfig cfg = small_cfg();
  cfg.frames = 0;
  const auto r = encode(cfg);
  EXPECT_TRUE(r.bitstream.empty());
  EXPECT_EQ(r.stats.frames, 0u);
}

TEST(Videnc, ManyWorkersOnTinyFrame) {
  // More workers than rows: claim_row must hand out each row exactly once.
  ModeGuard g(ExecMode::Htm);
  EncoderConfig cfg = small_cfg();
  cfg.worker_threads = 8;
  cfg.frames = 3;
  const auto r = encode(cfg);
  EXPECT_EQ(r.stats.frames, 3u);
  EXPECT_GT(r.stats.bits, 0u);
}

TEST(Videnc, StatsShowWavefrontTransactions) {
  ModeGuard g(ExecMode::StmCondVar);
  reset_stats();
  (void)encode(small_cfg());
  const auto s = aggregate_stats();
  // 6 frames x 4 rows x 6 CTUs of publish + deps + claims: hundreds of
  // transactions must have run speculatively.
  EXPECT_GT(s.commits, 100u);
}

}  // namespace
}  // namespace tle::videnc
