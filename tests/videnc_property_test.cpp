// Property sweeps for the encoder: parameter monotonicity, degenerate
// geometries, and configuration-space robustness.
#include <gtest/gtest.h>

#include "test_support.hpp"
#include "videnc/decoder.hpp"
#include "videnc/encoder.hpp"

namespace tle::videnc {
namespace {

using tle::testing::ModeGuard;

EncoderConfig base_cfg() {
  EncoderConfig cfg;
  cfg.width = 96;
  cfg.height = 64;
  cfg.frames = 4;
  cfg.gop = 4;
  cfg.search_range = 4;
  cfg.worker_threads = 2;
  cfg.frame_threads = 2;
  return cfg;
}

TEST(VidencProperty, BitsDecreaseMonotonicallyWithQp) {
  ModeGuard g(ExecMode::Lock);
  std::uint64_t last_bits = ~0ull;
  double last_psnr = 1e9;
  for (int qp : {12, 20, 28, 36, 44}) {
    EncoderConfig cfg = base_cfg();
    cfg.qp = qp;
    const auto r = encode(cfg);
    EXPECT_LT(r.stats.bits, last_bits) << "qp " << qp;
    EXPECT_LT(r.stats.psnr, last_psnr + 0.01) << "qp " << qp;
    last_bits = r.stats.bits;
    last_psnr = r.stats.psnr;
  }
}

class GeometrySweep
    : public ::testing::TestWithParam<std::pair<int, int>> {};

INSTANTIATE_TEST_SUITE_P(
    Videnc, GeometrySweep,
    ::testing::Values(std::pair{16, 16},   // single CTU
                      std::pair{8, 8},     // smaller than a CTU
                      std::pair{24, 16},   // partial CTU column
                      std::pair{16, 40},   // partial CTU row
                      std::pair{176, 144}, // QCIF
                      std::pair{33, 17}),  // awkward odd sizes
    [](const auto& info) {
      return "w" + std::to_string(info.param.first) + "h" +
             std::to_string(info.param.second);
    });

TEST_P(GeometrySweep, EncodesAndDecodesExactly) {
  ModeGuard g(ExecMode::StmCondVar);
  EncoderConfig cfg = base_cfg();
  cfg.width = GetParam().first;
  cfg.height = GetParam().second;
  cfg.frames = 3;
  cfg.keep_recon = true;
  const auto enc = encode(cfg);
  EXPECT_EQ(enc.stats.frames, 3u);
  const auto dec = decode_video(enc.bitstream, cfg.width, cfg.height);
  ASSERT_TRUE(dec.ok) << dec.error;
  for (std::size_t i = 0; i < 3; ++i)
    EXPECT_EQ(dec.frames[i], enc.recon[i]) << "frame " << i;
}

TEST(VidencProperty, GopOneMeansEveryFrameIntra) {
  ModeGuard g(ExecMode::Lock);
  EncoderConfig cfg = base_cfg();
  cfg.gop = 1;
  cfg.keep_recon = true;
  const auto enc = encode(cfg);
  // All-intra streams never reference the previous frame: decoding a
  // middle frame's payload standalone must work. Find frame 1's payload by
  // decoding progressively (cheap check: full decode works and matches).
  const auto dec = decode_video(enc.bitstream, cfg.width, cfg.height);
  ASSERT_TRUE(dec.ok);
  EXPECT_EQ(dec.frames.size(), 4u);
}

TEST(VidencProperty, LargerSearchRangeNeverWorsensSad) {
  ModeGuard g(ExecMode::Lock);
  EncoderConfig small = base_cfg();
  small.search_range = 1;
  EncoderConfig big = base_cfg();
  big.search_range = 8;
  const auto a = encode(small);
  const auto b = encode(big);
  EXPECT_LE(b.stats.sad, a.stats.sad)
      << "wider search must find predictions at least as good";
}

TEST(VidencProperty, FrameThreadSweepKeepsOutputIdentical) {
  EncoderConfig cfg = base_cfg();
  cfg.frames = 6;
  std::vector<std::uint8_t> baseline;
  ModeGuard g(ExecMode::Htm);
  for (int ft : {1, 2, 4}) {
    EncoderConfig c2 = cfg;
    c2.frame_threads = ft;
    const auto r = encode(c2);
    if (baseline.empty())
      baseline = r.bitstream;
    else
      EXPECT_EQ(r.bitstream, baseline) << "frame_threads=" << ft;
  }
}

TEST(VidencProperty, StaticSceneCompressesBetterThanMotion) {
  ModeGuard g(ExecMode::Lock);
  EncoderConfig cfg = base_cfg();
  std::vector<Plane> still(4, synth_frame(cfg.width, cfg.height, 0, 1));
  std::vector<Plane> moving;
  for (int i = 0; i < 4; ++i)
    moving.push_back(synth_frame(cfg.width, cfg.height, i * 5, 1));
  const auto a = encode_planes(still, cfg);
  const auto b = encode_planes(moving, cfg);
  EXPECT_LT(a.stats.bits, b.stats.bits);
}

}  // namespace
}  // namespace tle::videnc
