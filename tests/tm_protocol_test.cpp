// Tests for the StmProtocol seam (src/tm/protocol/) and the TicToc
// timestamped-OCC backend.
//
//   * Seam parity: every protocol behind the seam (ml_wt, gl_wt, tictoc)
//     preserves the engine contracts — commit/abort accounting, honest
//     abort causes, counter hygiene (no protocol bumps another's rows), and
//     byte-identical seeded fault replay.
//   * TicToc semantics: write-back isolation, read-own-write, rts extension
//     committing schedules ml_wt's encounter locks abort, same-value
//     adoption, opacity of in-flight snapshots, address-ordered commit
//     locking under write-set overlap, and privatization + limbo safety.
//   * Config surface: stm_algo=tictoc rejects the ml_wt-only
//     stm_clock_mode=deferred knob.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "test_support.hpp"
#include "tm/fault/fault.hpp"
#include "util/rng.hpp"

namespace tle {
namespace {

using testing::ModeGuard;
using testing::run_threads;
namespace fault = tle::fault;

/// ModeGuard plus the protocol under test; quiescence defaults to the
/// engine default (Always) unless the test says otherwise.
struct AlgoGuard {
  AlgoGuard(StmAlgo algo, ExecMode mode = ExecMode::StmCondVar)
      : g(mode) {
    config().stm_algo = algo;
    reset_stats();
  }
  ModeGuard g;
};

long read_plain(tm_var<long>& v) {
  long out = 0;
  atomic_do([&](TxContext& tx) { out = tx.read(v); });
  return out;
}

void await_flag(const std::atomic<bool>& f) {
  while (!f.load(std::memory_order_acquire)) std::this_thread::yield();
}

// ---------------------------------------------------------------------------
// Seam parity matrix
// ---------------------------------------------------------------------------

class ProtocolMatrix : public ::testing::TestWithParam<StmAlgo> {};

INSTANTIATE_TEST_SUITE_P(Tm, ProtocolMatrix,
                         ::testing::Values(StmAlgo::MlWt, StmAlgo::GlWt,
                                           StmAlgo::TicToc),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

TEST_P(ProtocolMatrix, ContendedCounterCommitsExactlyOnce) {
  AlgoGuard g(GetParam());
  tm_var<long> counter{0};
  constexpr int kThreads = 4, kIters = 500;
  run_threads(kThreads, [&](int) {
    for (int i = 0; i < kIters; ++i)
      atomic_do([&](TxContext& tx) { tx.fetch_add(counter, 1L); });
  });
  const auto s = aggregate_stats();
  EXPECT_EQ(s.commits + s.serial_commits, 1u * kThreads * kIters);
  EXPECT_EQ(read_plain(counter), kThreads * kIters);
  // Honest causes only: a protocol may abort with Conflict, Validation, or
  // SerialPending (plus the governor's serial windows); nothing in this
  // workload can produce HTM-only causes.
  EXPECT_EQ(s.aborts[static_cast<int>(AbortCause::Capacity)], 0u);
  EXPECT_EQ(s.aborts[static_cast<int>(AbortCause::Spurious)], 0u);
  EXPECT_EQ(s.aborts[static_cast<int>(AbortCause::StripeBusy)], 0u);
}

TEST_P(ProtocolMatrix, CounterRowsStayInTheirLane) {
  AlgoGuard g(GetParam());
  tm_var<long> a{0}, b{0};
  run_threads(2, [&](int) {
    for (int i = 0; i < 300; ++i)
      atomic_do([&](TxContext& tx) {
        tx.fetch_add(a, 1L);
        tx.fetch_add(b, 1L);
      });
  });
  const auto s = aggregate_stats();
  if (GetParam() == StmAlgo::TicToc) {
    // No global clock: the GV5 row cannot move, whatever stm_clock_mode's
    // default is doing for ml_wt.
    EXPECT_EQ(s.gclock_advances, 0u);
  } else {
    // The tictoc rows move only under tictoc.
    EXPECT_EQ(s.tictoc_extensions, 0u);
    EXPECT_EQ(s.tictoc_extension_fails, 0u);
    EXPECT_EQ(s.tictoc_wts_waits, 0u);
    EXPECT_EQ(s.tictoc_lock_timeouts, 0u);
  }
  EXPECT_EQ(read_plain(a), 600);
  EXPECT_EQ(read_plain(b), 600);
}

TEST_P(ProtocolMatrix, SeededFaultReplayIsByteIdentical) {
  // One thread, one seed, two runs: the fault harness must consult the same
  // (hook, event) stream through the protocol's read/write/commit/rollback
  // paths both times — any protocol-internal nondeterminism (extra hook
  // consults, order changes) shows up as a Counts mismatch.
  AlgoGuard g(GetParam());
  const char* spec =
      "conflict@read=0.1,validation@commit=0.15,spurious@begin=0.02";
  auto run_once = [&] {
    fault::set_thread_stream(42);
    tm_var<long> v{0};
    for (int i = 0; i < 400; ++i)
      atomic_do([&](TxContext& tx) { tx.fetch_add(v, 1L); });
    EXPECT_EQ(read_plain(v), 400);
  };
  ASSERT_TRUE(fault::install_spec(spec, 0xABCD1234));
  run_once();
  const fault::Counts first = fault::snapshot();
  ASSERT_TRUE(fault::install_spec(spec, 0xABCD1234));
  run_once();
  const fault::Counts second = fault::snapshot();
  fault::clear();
  EXPECT_GT(first.injected_total(), 0u);
  EXPECT_EQ(first, second);
}

// ---------------------------------------------------------------------------
// TicToc vs ml_wt: the schedules the write-back/extension design exists for
// ---------------------------------------------------------------------------

// Writer holds an uncommitted write to `b` while a reader reads it. ml_wt
// locked b at encounter time, so the read is a Conflict abort; tictoc only
// buffered it, so the reader commits the pre-state without a single abort.
void run_in_flight_writer_schedule(StmAlgo algo, long expect_b,
                                   std::uint64_t min_aborts) {
  AlgoGuard g(algo, ExecMode::StmCondVar);
  config().quiesce = QuiescePolicy::Never;  // writer parks mid-transaction
  reset_stats();
  tm_var<long> a{1}, b{10};
  std::atomic<bool> writer_in_flight{false}, release_writer{false};
  std::atomic<bool> reader_done{false};

  std::thread writer([&] {
    atomic_do([&](TxContext& tx) {
      tx.write(b, 20L);
      writer_in_flight.store(true);
      await_flag(release_writer);
    });
  });
  long got_a = 0, got_b = 0;
  std::thread reader([&] {
    await_flag(writer_in_flight);
    atomic_do([&](TxContext& tx) {
      got_a = tx.read(a);
      got_b = tx.read(b);
    });
    reader_done.store(true);
  });

  // Release the writer once the schedule has played out: under tictoc the
  // reader sails past the buffered write and finishes first; under ml_wt it
  // conflict-aborts on the encounter lock and can only finish AFTER the
  // writer commits, so waiting for the reader here would deadlock.
  await_flag(writer_in_flight);
  while (!reader_done.load(std::memory_order_acquire) &&
         (min_aborts == 0 ||
          aggregate_stats().aborts[static_cast<int>(AbortCause::Conflict)] <
              min_aborts))
    std::this_thread::yield();
  release_writer.store(true);
  writer.join();
  reader.join();

  EXPECT_EQ(got_a, 1);
  EXPECT_EQ(got_b, expect_b);
  const auto s = aggregate_stats();
  EXPECT_GE(s.aborts[static_cast<int>(AbortCause::Conflict)], min_aborts);
  if (min_aborts == 0) {
    EXPECT_EQ(s.aborts_total(), 0u);
  }
  EXPECT_EQ(read_plain(b), 20);
}

TEST(TicTocSemantics, ReaderPassesThroughInFlightWriterMlWtAborts) {
  run_in_flight_writer_schedule(StmAlgo::MlWt, 20, 1);
}

TEST(TicTocSemantics, ReaderPassesThroughInFlightWriterTicTocCommits) {
  run_in_flight_writer_schedule(StmAlgo::TicToc, 10, 0);
}

TEST(TicTocSemantics, ExtensionCommitsAfterConcurrentDisjointCommit) {
  // t1 reads a; t2 commits a write to b; t1 then reads b. The fresher wts on
  // b forces t1 to advance its coverage timestamp and re-certify a — the rts
  // CAS extension — after which the transaction commits with the new b.
  AlgoGuard g(StmAlgo::TicToc);
  config().quiesce = QuiescePolicy::Never;
  reset_stats();
  tm_var<long> a{1}, b{10};
  std::atomic<bool> t1_read_a{false}, t2_committed{false};

  std::thread t1([&] {
    long got_a = 0, got_b = 0;
    atomic_do([&](TxContext& tx) {
      got_a = tx.read(a);
      t1_read_a.store(true);
      await_flag(t2_committed);
      got_b = tx.read(b);
    });
    EXPECT_EQ(got_a, 1);
    EXPECT_EQ(got_b, 20);
  });

  await_flag(t1_read_a);
  atomic_do([&](TxContext& tx) { tx.write(b, 20L); });
  t2_committed.store(true);
  t1.join();
  const auto s = aggregate_stats();
  EXPECT_EQ(s.aborts_total(), 0u) << "extension must avoid the abort";
  EXPECT_GE(s.tictoc_extensions, 1u);
}

TEST(TicTocSemantics, SameValueRewriteIsAdoptedNotAborted) {
  // t2 overwrites a with its CURRENT value (plus a real change to b). The
  // version under t1's read of a is replaced, but the data is not: tictoc's
  // value-based adoption accepts the new version and t1 commits — the same
  // schedule aborts under ml_wt, whose extension validates orec words.
  AlgoGuard g(StmAlgo::TicToc);
  config().quiesce = QuiescePolicy::Never;
  reset_stats();
  tm_var<long> a{5}, b{10};
  std::atomic<bool> t1_read_a{false}, t2_committed{false};

  std::thread t1([&] {
    long got_a = 0, got_b = 0;
    atomic_do([&](TxContext& tx) {
      got_a = tx.read(a);
      t1_read_a.store(true);
      await_flag(t2_committed);
      got_b = tx.read(b);  // forces certification of a at b's new wts
    });
    EXPECT_EQ(got_a, 5);
    EXPECT_EQ(got_b, 20);
  });

  await_flag(t1_read_a);
  atomic_do([&](TxContext& tx) {
    tx.write(a, 5L);  // same value, new version
    tx.write(b, 20L);
  });
  t2_committed.store(true);
  t1.join();
  const auto s = aggregate_stats();
  EXPECT_EQ(s.aborts_total(), 0u);
  EXPECT_EQ(s.tictoc_extension_fails, 0u);
}

TEST(TicTocSemantics, ChangedValueFailsCertification) {
  // Same shape, but t2 genuinely changes a: certification must abort the
  // reader's first attempt (Validation) and the retry sees both updates.
  AlgoGuard g(StmAlgo::TicToc);
  config().quiesce = QuiescePolicy::Never;
  reset_stats();
  tm_var<long> a{5}, b{10};
  std::atomic<bool> t1_read_a{false}, t2_committed{false};
  std::atomic<int> attempts{0};

  std::thread t1([&] {
    long got_a = 0, got_b = 0;
    atomic_do([&](TxContext& tx) {
      const int n = attempts.fetch_add(1) + 1;
      got_a = tx.read(a);
      if (n == 1) {
        t1_read_a.store(true);
        await_flag(t2_committed);
      }
      got_b = tx.read(b);
    });
    EXPECT_EQ(got_a, 6);
    EXPECT_EQ(got_b, 20);
  });

  await_flag(t1_read_a);
  atomic_do([&](TxContext& tx) {
    tx.write(a, 6L);
    tx.write(b, 20L);
  });
  t2_committed.store(true);
  t1.join();
  EXPECT_EQ(attempts.load(), 2);
  const auto s = aggregate_stats();
  EXPECT_GE(s.aborts[static_cast<int>(AbortCause::Validation)], 1u);
  EXPECT_GE(s.tictoc_extension_fails, 1u);
}

TEST(TicTocSemantics, ReadOwnWriteAndLastWriteWins) {
  AlgoGuard g(StmAlgo::TicToc);
  tm_var<long> x{0}, y{7};
  long seen1 = -1, seen2 = -1, y1 = -1, y2 = -1;
  atomic_do([&](TxContext& tx) {
    tx.write(x, 1L);
    seen1 = tx.read(x);  // served from the write buffer
    tx.write(x, 2L);
    seen2 = tx.read(x);
    y1 = tx.read(y);
    y2 = tx.read(y);  // repeat read: served from the read log
  });
  EXPECT_EQ(seen1, 1);
  EXPECT_EQ(seen2, 2);
  EXPECT_EQ(y1, 7);
  EXPECT_EQ(y2, 7);
  EXPECT_EQ(read_plain(x), 2);
  const auto s = aggregate_stats();
  EXPECT_GE(s.stm_read_dedup, 1u);
}

TEST(TicTocSemantics, InFlightSnapshotsStayOpaque) {
  // Writers keep (a + b) constant; readers assert the invariant INSIDE the
  // transaction body. An in-flight reader with a torn snapshot — the zombie
  // opacity exists to prevent — trips the EXPECT even if that attempt would
  // later abort.
  AlgoGuard g(StmAlgo::TicToc);
  constexpr long kTotal = 1000;
  tm_var<long> a{kTotal}, b{0};
  std::atomic<bool> stop{false};
  std::atomic<long> torn{0};

  std::thread writer([&] {
    Xoshiro256 rng(0x5EED);
    while (!stop.load(std::memory_order_relaxed)) {
      const long d = static_cast<long>(rng.below(10)) + 1;
      atomic_do([&](TxContext& tx) {
        const long av = tx.read(a);
        tx.write(a, av - d);
        tx.write(b, kTotal - (av - d));
      });
    }
  });
  run_threads(3, [&](int) {
    for (int i = 0; i < 4000; ++i)
      atomic_do([&](TxContext& tx) {
        const long av = tx.read(a);
        const long bv = tx.read(b);
        if (av + bv != kTotal) torn.fetch_add(1);
      });
  });
  stop.store(true);
  writer.join();
  EXPECT_EQ(torn.load(), 0) << "a zombie observed a torn snapshot";
}

TEST(TicTocSemantics, OverlappingWriteSetsCommitDeadlockFree) {
  // Heavy write-set overlap with randomized footprints: address-ordered
  // commit locking plus bounded waits must always make progress, and every
  // increment must land exactly once.
  AlgoGuard g(StmAlgo::TicToc);
  constexpr int kThreads = 8, kIters = 1500, kCells = 32, kPick = 4;
  std::vector<tm_var<long>> cells(kCells);
  run_threads(kThreads, [&](int tid) {
    Xoshiro256 rng(0xC0FFEE + static_cast<std::uint64_t>(tid));
    for (int i = 0; i < kIters; ++i)
      atomic_do([&](TxContext& tx) {
        for (int k = 0; k < kPick; ++k)
          tx.fetch_add(cells[rng.below(kCells)], 1L);
      });
  });
  long sum = 0;
  atomic_do([&](TxContext& tx) {
    sum = 0;  // re-run safe
    for (auto& c : cells) sum += tx.read(c);
  });
  EXPECT_EQ(sum, 1L * kThreads * kIters * kPick);
  const auto s = aggregate_stats();
  EXPECT_EQ(s.commits + s.serial_commits, 1u * kThreads * kIters + 1u);
}

TEST(TicTocSemantics, LockWaitCountersMoveWhenCommitWindowWidens) {
  // A perturbation delay inside the lock->certify->publish window holds the
  // write-set orecs locked long enough that concurrent readers observably
  // wait (and, with the short default spin budget, time out into Conflict).
  AlgoGuard g(StmAlgo::TicToc);
  ASSERT_TRUE(fault::install_spec("delay@tt_commit=1/2000000", 77));
  tm_var<long> hot{0};
  run_threads(4, [&](int tid) {
    fault::set_thread_stream(static_cast<std::uint32_t>(tid));
    for (int i = 0; i < 40; ++i) {
      if (tid == 0)
        atomic_do([&](TxContext& tx) { tx.fetch_add(hot, 1L); });
      else
        atomic_do([&](TxContext& tx) { (void)tx.read(hot); });
    }
  });
  fault::clear();
  const auto s = aggregate_stats();
  EXPECT_GT(s.tictoc_wts_waits, 0u);
  EXPECT_EQ(read_plain(hot), 40);
}

// ---------------------------------------------------------------------------
// Privatization + limbo under tictoc
// ---------------------------------------------------------------------------

TEST(TicTocPrivatization, DetachAndFreeIsQuiesceSafe) {
  // The Listing-1 pattern on the tictoc backend: privatize a box, mutate it
  // non-transactionally, and tx.free it so reclamation rides the limbo
  // list. Zombie readers must keep landing on live storage (ASan-visible if
  // not) and must never observe the private mutations as committed state.
  AlgoGuard g(StmAlgo::TicToc);
  struct Box {
    tm_var<long> a{0};
    tm_var<long> b{0};
  };
  tm_var<Box*> current{new Box};
  std::atomic<bool> stop{false};
  std::atomic<long> violations{0};

  std::thread updater([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      atomic_do([&](TxContext& tx) {
        Box* box = tx.read(current);
        const long v = tx.read(box->a) + 1;
        tx.write(box->a, v);
        tx.write(box->b, v);
      });
    }
  });
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      atomic_do([&](TxContext& tx) {
        Box* box = tx.read(current);
        if (tx.read(box->a) != tx.read(box->b)) violations.fetch_add(1);
      });
    }
  });
  for (int i = 0; i < 200; ++i) {
    Box* fresh = new Box;
    Box* old = nullptr;
    atomic_do([&](TxContext& tx) {
      old = tx.read(current);
      tx.write(current, fresh);
    });
    // Post-commit + post-quiescence: private. Scribble, then free through
    // the TM so the storage waits out its grace period in limbo.
    old->a.unsafe_set(-1);
    old->b.unsafe_set(-2);
    atomic_do([&](TxContext& tx) { tx.free(old); });
  }
  stop.store(true);
  updater.join();
  reader.join();
  EXPECT_EQ(violations.load(), 0);
  const auto s = aggregate_stats();
  EXPECT_GE(s.tm_frees, 200u);
  atomic_do([&](TxContext& tx) { tx.free(tx.read(current)); });
}

// ---------------------------------------------------------------------------
// Config surface
// ---------------------------------------------------------------------------

TEST(TicTocConfig, RejectsDeferredClockMode) {
  RuntimeConfig cfg = config();
  cfg.stm_algo = StmAlgo::TicToc;
  cfg.stm_clock_mode = StmClockMode::Deferred;
  const char* err = validate_config(cfg);
  ASSERT_NE(err, nullptr);
  EXPECT_NE(std::string(err).find("tictoc"), std::string::npos);
  cfg.stm_clock_mode = StmClockMode::Eager;
  EXPECT_EQ(validate_config(cfg), nullptr);
  // The ml_wt protocols keep both clock modes.
  cfg.stm_algo = StmAlgo::MlWt;
  cfg.stm_clock_mode = StmClockMode::Deferred;
  EXPECT_EQ(validate_config(cfg), nullptr);
}

TEST(TicTocConfig, ToStringRoundTrip) {
  EXPECT_STREQ(to_string(StmAlgo::TicToc), "tictoc");
  EXPECT_STREQ(to_string(StmAlgo::MlWt), "ml_wt");
  EXPECT_STREQ(to_string(StmAlgo::GlWt), "gl_wt");
}

}  // namespace
}  // namespace tle
