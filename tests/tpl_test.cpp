// Tests for the two-phase-locking discipline monitor, including the paper's
// Listing-3 (violating) and Listing-4 (ready-flag fix) producer patterns.
#include <gtest/gtest.h>

#include <optional>
#include <thread>

#include "test_support.hpp"
#include "tpl/discipline.hpp"

namespace tle::tpl {
namespace {

TEST(Discipline, SingleLockSessionIsClean) {
  DisciplineMonitor mon;
  MonitoredMutex a(mon, "A");
  for (int i = 0; i < 3; ++i) {
    a.lock();
    a.unlock();
  }
  EXPECT_TRUE(mon.clean());
  const auto r = mon.report();
  EXPECT_EQ(r.sessions, 3u);
  EXPECT_EQ(r.acquires, 3u);
  EXPECT_EQ(r.max_nesting, 1u);
}

TEST(Discipline, ProperNestingIsTwoPhase) {
  DisciplineMonitor mon;
  MonitoredMutex a(mon, "A"), b(mon, "B");
  a.lock();
  b.lock();
  b.unlock();
  a.unlock();
  EXPECT_TRUE(mon.clean());
  EXPECT_EQ(mon.report().max_nesting, 2u);
}

TEST(Discipline, HandOverHandViolates) {
  // A+ B+ A- C+ ... : acquiring C after releasing A breaks 2PL.
  DisciplineMonitor mon;
  MonitoredMutex a(mon, "A"), b(mon, "B"), c(mon, "C");
  a.lock();
  b.lock();
  a.unlock();
  c.lock();  // violation: acquire in the shrinking phase
  c.unlock();
  b.unlock();
  EXPECT_FALSE(mon.clean());
  const auto r = mon.report();
  EXPECT_EQ(r.violations, 1u);
  ASSERT_EQ(r.samples.size(), 1u);
  EXPECT_EQ(r.samples[0].lock_name, "C");
}

TEST(Discipline, SessionBoundaryResetsPhase) {
  // Release-all then acquire again is a NEW session, not a violation.
  DisciplineMonitor mon;
  MonitoredMutex a(mon, "A"), b(mon, "B");
  a.lock();
  a.unlock();
  b.lock();
  b.unlock();
  EXPECT_TRUE(mon.clean());
  EXPECT_EQ(mon.report().sessions, 2u);
}

TEST(Discipline, ReacquireSameLockAfterReleaseWithinSessionViolates) {
  DisciplineMonitor mon;
  MonitoredMutex a(mon, "A"), b(mon, "B");
  a.lock();
  b.lock();
  b.unlock();
  b.lock();  // second growing phase: violation
  b.unlock();
  a.unlock();
  EXPECT_EQ(mon.report().violations, 1u);
}

TEST(Discipline, ResetClearsEverything) {
  DisciplineMonitor mon;
  MonitoredMutex a(mon, "A"), b(mon, "B");
  a.lock();
  b.lock();
  a.unlock();
  b.unlock();
  b.lock();  // trigger bookkeeping
  b.unlock();
  mon.reset();
  const auto r = mon.report();
  EXPECT_EQ(r.sessions, 0u);
  EXPECT_EQ(r.acquires, 0u);
  EXPECT_EQ(r.violations, 0u);
}

TEST(Discipline, PerThreadSessionsAreIndependent) {
  DisciplineMonitor mon;
  MonitoredMutex a(mon, "A"), b(mon, "B");
  // Two threads interleaving their own clean sessions must not produce
  // cross-thread false positives.
  tle::testing::run_threads(2, [&](int t) {
    for (int i = 0; i < 200; ++i) {
      if (t == 0) {
        a.lock();
        a.unlock();
      } else {
        b.lock();
        b.unlock();
      }
    }
  });
  EXPECT_TRUE(mon.clean());
  EXPECT_EQ(mon.report().sessions, 400u);
}

// ---------------------------------------------------------------------------
// The paper's Listing 3 vs Listing 4 — a producer filling a queue while
// communicating through inner critical sections.
// ---------------------------------------------------------------------------

struct MiniQueue {
  int items[16] = {};
  bool ready[16] = {};
  int tail = 0;
  int head = 0;
};

TEST(Discipline, Listing3NonTwoPhaseProducerIsFlagged) {
  // Listing 3: the producer holds the output-queue lock across the entire
  // produce stage, taking inner locks meanwhile — and the inner
  // communication releases/reacquires, breaking 2PL.
  DisciplineMonitor mon;
  MonitoredMutex out_queue(mon, "outQ"), comm(mon, "comm");
  MiniQueue q;

  out_queue.lock();         // growing
  q.items[q.tail] = 42;     // produce element under the queue lock
  comm.lock();              // inner critical section (still growing)
  comm.unlock();            // shrinking begins
  comm.lock();              // inter-thread communication re-acquires: NOT 2PL
  comm.unlock();
  q.tail++;
  out_queue.unlock();

  EXPECT_FALSE(mon.clean());
  EXPECT_GE(mon.report().violations, 1u);
}

TEST(Discipline, Listing4ReadyFlagRefactoringIsTwoPhase) {
  // Listing 4: enqueue a not-ready element, unlock, produce outside the
  // lock, then re-lock to set the ready flag. Every session is 2PL.
  DisciplineMonitor mon;
  MonitoredMutex out_queue(mon, "outQ"), comm(mon, "comm");
  MiniQueue q;

  int slot = 0;
  out_queue.lock();
  slot = q.tail++;
  q.ready[slot] = false;
  out_queue.unlock();

  comm.lock();  // produce stage communicates via its own sessions
  comm.unlock();
  q.items[slot] = 42;

  out_queue.lock();
  q.ready[slot] = true;
  out_queue.unlock();

  // Consumer side: dequeue only if head element is ready.
  std::optional<int> got;
  out_queue.lock();
  if (q.head < q.tail && q.ready[q.head]) got = q.items[q.head++];
  out_queue.unlock();

  EXPECT_TRUE(mon.clean());
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, 42);
  EXPECT_EQ(mon.report().sessions, 4u);
}

}  // namespace
}  // namespace tle::tpl
