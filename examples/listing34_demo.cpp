// listing34_demo — the paper's Section V story, runnable.
//
// x265's most important critical section violated two-phase locking
// (Listing 3): a producer held its output-queue lock across the entire
// produce stage, communicating through inner critical sections meanwhile.
// Such code cannot be naively transactionalized — the whole outer section
// becomes one transaction, so the inner communication never becomes visible
// to the consumer it is waiting on.
//
// Part 1 runs the Listing-3 pattern under plain locks with the dynamic 2PL
// discipline monitor attached, and prints the violation it detects.
// Part 2 runs the paper's ready-flag refactoring (Listing 4), shows the
// monitor is clean, and then executes the refactored pipeline under all
// five TLE configurations, verifying identical results.
#include <cstdio>
#include <optional>
#include <thread>
#include <vector>

#include "sync/tx_condvar.hpp"
#include "tm/tm.hpp"
#include "tpl/discipline.hpp"

namespace {

using namespace tle;

// --- Part 1: Listing 3 under plain locks + the discipline monitor ----------

void run_listing3(tpl::DisciplineMonitor& mon) {
  tpl::MonitoredMutex out_queue(mon, "outQ");
  tpl::MonitoredMutex comm(mon, "comm");
  int queue[8];
  int tail = 0;
  bool consumer_hint = false;

  // Producer: Listing 3 — the queue lock is held across produce(), which
  // itself communicates via the inner `comm` lock.
  out_queue.lock();
  queue[tail] = 0;
  for (int step = 0; step < 3; ++step) {
    comm.lock();  // inner critical section while outer lock held
    consumer_hint = !consumer_hint;
    comm.unlock();  // ...release + later re-acquire: the 2PL violation
    queue[tail] += step;
  }
  tail++;
  out_queue.unlock();
}

// --- Part 2: Listing 4 (ready flag) under TLE -------------------------------

struct ReadyQueue {
  elidable_mutex lock;
  tx_condvar ready_cv;
  tm_var<int> items[64];
  tm_var<bool> ready[64];
  tm_var<int> tail{0};
  tm_var<int> head{0};
};

int run_listing4_pipeline() {
  ReadyQueue q;
  constexpr int kItems = 200;

  std::thread producer([&] {
    for (int i = 0; i < kItems; ++i) {
      int slot = -1;
      // Stage 1: enqueue a not-ready placeholder (tiny, two-phase),
      // waiting politely while the ring is full.
      while (slot < 0) {
        critical(q.lock, [&](TxContext& tx) {
          const int t = tx.read(q.tail);
          if (t - tx.read(q.head) >= 64) {
            tx.no_quiesce();
            q.ready_cv.wait_for(tx, std::chrono::milliseconds(1));
            return;
          }
          slot = t;
          tx.write(q.tail, t + 1);
          tx.write(q.ready[t % 64], false);
          tx.no_quiesce();
        });
      }
      // Produce OUTSIDE any lock (the refactoring's point).
      const int value = i * 3 + 1;
      // Stage 2: publish the ready flag.
      critical(q.lock, [&](TxContext& tx) {
        tx.write(q.items[slot % 64], value);
        tx.write(q.ready[slot % 64], true);
        q.ready_cv.notify_all(tx);
        tx.no_quiesce();
      });
    }
  });

  long sum = 0;
  for (int consumed = 0; consumed < kItems;) {
    std::optional<int> got;
    critical(q.lock, [&](TxContext& tx) {
      got.reset();
      const int h = tx.read(q.head);
      if (h < tx.read(q.tail) && tx.read(q.ready[h % 64])) {
        got = tx.read(q.items[h % 64]);
        tx.write(q.head, h + 1);
        q.ready_cv.notify_all(tx);  // wake a producer waiting for space
      } else {
        tx.no_quiesce();
        q.ready_cv.wait_for(tx, std::chrono::milliseconds(1));
      }
    });
    if (got) {
      sum += *got;
      ++consumed;
    }
  }
  producer.join();
  return static_cast<int>(sum);
}

}  // namespace

int main() {
  std::printf("== Part 1: Listing 3 (non-two-phase) under the 2PL monitor ==\n");
  tpl::DisciplineMonitor mon;
  run_listing3(mon);
  const auto rep = mon.report();
  std::printf("sessions=%llu acquires=%llu violations=%llu\n",
              (unsigned long long)rep.sessions, (unsigned long long)rep.acquires,
              (unsigned long long)rep.violations);
  for (const auto& v : rep.samples)
    std::printf("  VIOLATION: lock '%s' acquired in shrinking phase; trail: %s\n",
                v.lock_name.c_str(), v.session_trace.c_str());
  std::printf("=> this critical section cannot be naively transactionalized\n\n");

  std::printf("== Part 2: Listing 4 (ready flag) under every TLE mode ==\n");
  tpl::DisciplineMonitor mon4;
  {
    // Monitor the refactored locking discipline once, under plain locks.
    tpl::MonitoredMutex out_queue(mon4, "outQ");
    out_queue.lock();
    out_queue.unlock();  // (shape shown in tests/tpl_test.cpp in full)
  }
  const ExecMode modes[] = {ExecMode::Lock, ExecMode::StmSpin,
                            ExecMode::StmCondVar, ExecMode::StmCondVarNoQ,
                            ExecMode::Htm};
  int expected = -1;
  bool all_equal = true;
  for (ExecMode m : modes) {
    tle::set_exec_mode(m);
    const int sum = run_listing4_pipeline();
    if (expected < 0) expected = sum;
    all_equal &= (sum == expected);
    std::printf("  %-22s checksum=%d\n", tle::to_string(m), sum);
  }
  std::printf("=> ready-flag pipeline %s under all five configurations\n",
              all_equal ? "produces identical results" : "DIVERGED (bug!)");
  return all_equal ? 0 : 1;
}
