// videnc_tool — the x265-style encoder driver.
//
//   ./videnc_tool [-w width] [-h height] [-f frames] [-p workers]
//                 [-F frame_threads] [-q qp] [-g gop] [-m mode]
//
// Encodes a synthetic clip under the chosen TLE configuration and prints
// bitrate, PSNR, timing, and the TM statistics the paper's Figure 4 reports.
#include <cstdio>
#include <cstring>
#include <string>

#include "tm/control/control.hpp"
#include "tm/obs/metrics.hpp"
#include "tm/tm.hpp"
#include "videnc/encoder.hpp"

namespace {

// When TLE_METRICS_OUT/TLE_METRICS_PROM armed the interval sampler, close
// the console report with a rollup of the retained windows.
void report_live_metrics() {
  if (!tle::obs::metrics_enabled()) return;
  const auto hist = tle::obs::metrics_history();
  if (hist.empty()) return;
  std::uint64_t commits = 0, aborts = 0, peak_limbo = 0;
  std::uint32_t peak_inflight = 0;
  for (const auto& w : hist) {
    commits += w.commits;
    aborts += w.aborts;
    if (w.gauges.inflight_txns > peak_inflight)
      peak_inflight = w.gauges.inflight_txns;
    if (w.gauges.limbo_pending > peak_limbo)
      peak_limbo = w.gauges.limbo_pending;
  }
  std::printf(
      "\nlive metrics: %zu window(s) retained (last #%llu): %llu commits, "
      "%llu aborts; peak inflight=%u, peak limbo=%llu\n",
      hist.size(), (unsigned long long)hist.back().index,
      (unsigned long long)commits, (unsigned long long)aborts, peak_inflight,
      (unsigned long long)peak_limbo);
  // TLE_CTL=1 armed the adaptive controller: say what it decided, so a
  // degraded run is explicable from the console alone.
  const tle::ctl::Status cs = tle::ctl::status();
  if (cs.evals) {
    std::printf(
        "controller: state=%s mode=%s evals=%llu plan_changes=%llu "
        "degraded=%llu/%llu mode_switches=%llu flaps=%llu\n",
        tle::ctl::to_string(cs.state), to_string(tle::live_mode()),
        (unsigned long long)cs.evals, (unsigned long long)cs.plan_changes,
        (unsigned long long)cs.degraded_enters,
        (unsigned long long)cs.degraded_exits,
        (unsigned long long)cs.mode_switches, (unsigned long long)cs.flaps);
  }
}

tle::ExecMode parse_mode(const std::string& s) {
  if (s == "lock") return tle::ExecMode::Lock;
  if (s == "spin") return tle::ExecMode::StmSpin;
  if (s == "stm") return tle::ExecMode::StmCondVar;
  if (s == "noq") return tle::ExecMode::StmCondVarNoQ;
  if (s == "htm") return tle::ExecMode::Htm;
  std::fprintf(stderr, "unknown mode '%s', using stm\n", s.c_str());
  return tle::ExecMode::StmCondVar;
}

}  // namespace

int main(int argc, char** argv) {
  tle::videnc::EncoderConfig cfg;
  tle::set_exec_mode(tle::ExecMode::StmCondVar);
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : ""; };
    if (a == "-w")
      cfg.width = std::atoi(next());
    else if (a == "-h")
      cfg.height = std::atoi(next());
    else if (a == "-f")
      cfg.frames = std::atoi(next());
    else if (a == "-p")
      cfg.worker_threads = std::atoi(next());
    else if (a == "-F")
      cfg.frame_threads = std::atoi(next());
    else if (a == "-q")
      cfg.qp = std::atoi(next());
    else if (a == "-g")
      cfg.gop = std::atoi(next());
    else if (a == "-S")
      cfg.slices = std::atoi(next());
    else if (a == "-m")
      tle::set_exec_mode(parse_mode(next()));
    else {
      std::fprintf(stderr,
                   "usage: videnc_tool [-w W] [-h H] [-f frames] [-p workers] "
                   "[-F frame_threads] [-q qp] [-g gop] [-S slices] [-m mode]\n");
      return 2;
    }
  }

  std::printf("mode=%s %dx%d frames=%d workers=%d frame_threads=%d qp=%d\n",
              tle::to_string(tle::config().mode), cfg.width, cfg.height,
              cfg.frames, cfg.worker_threads, cfg.frame_threads, cfg.qp);

  tle::reset_stats();
  const auto r = tle::videnc::encode(cfg);
  const double fps =
      r.stats.seconds > 0 ? double(r.stats.frames) / r.stats.seconds : 0;
  std::printf(
      "encoded %llu frames: %llu bits (%.1f kb/frame), PSNR %.2f dB, "
      "%.3f s (%.1f fps)\n",
      (unsigned long long)r.stats.frames, (unsigned long long)r.stats.bits,
      r.stats.frames ? double(r.stats.bits) / 1000.0 / double(r.stats.frames)
                     : 0,
      r.stats.psnr, r.stats.seconds, fps);
  std::printf("\nTM statistics:\n%s", tle::aggregate_stats().report().c_str());
  report_live_metrics();
  return 0;
}
