// pipez_tool — the PBZip2-style command-line compressor.
//
//   ./pipez_tool compress   <in> <out> [-p threads] [-b block_kb] [-m mode]
//   ./pipez_tool decompress <in> <out> [-p threads] [-m mode]
//   ./pipez_tool selftest   [-s size_mb] [-p threads] [-b block_kb] [-m mode]
//
// mode = lock | spin | stm | noq | htm (default stm). selftest generates a
// synthetic corpus, compresses, decompresses, verifies, and prints the
// paper-style TM statistics.
#include <cstdio>
#include <cstring>
#include <string>

#include "pipez/pipeline.hpp"
#include "tm/control/control.hpp"
#include "tm/obs/metrics.hpp"
#include "tm/tm.hpp"

namespace {

// When TLE_METRICS_OUT/TLE_METRICS_PROM armed the interval sampler, close
// the console report with a rollup of the retained windows.
void report_live_metrics() {
  if (!tle::obs::metrics_enabled()) return;
  const auto hist = tle::obs::metrics_history();
  if (hist.empty()) return;
  std::uint64_t commits = 0, aborts = 0, peak_limbo = 0;
  std::uint32_t peak_inflight = 0;
  for (const auto& w : hist) {
    commits += w.commits;
    aborts += w.aborts;
    if (w.gauges.inflight_txns > peak_inflight)
      peak_inflight = w.gauges.inflight_txns;
    if (w.gauges.limbo_pending > peak_limbo)
      peak_limbo = w.gauges.limbo_pending;
  }
  std::printf(
      "\nlive metrics: %zu window(s) retained (last #%llu): %llu commits, "
      "%llu aborts; peak inflight=%u, peak limbo=%llu\n",
      hist.size(), (unsigned long long)hist.back().index,
      (unsigned long long)commits, (unsigned long long)aborts, peak_inflight,
      (unsigned long long)peak_limbo);
  // TLE_CTL=1 armed the adaptive controller: say what it decided, so a
  // degraded run is explicable from the console alone.
  const tle::ctl::Status cs = tle::ctl::status();
  if (cs.evals) {
    std::printf(
        "controller: state=%s mode=%s evals=%llu plan_changes=%llu "
        "degraded=%llu/%llu mode_switches=%llu flaps=%llu\n",
        tle::ctl::to_string(cs.state), to_string(tle::live_mode()),
        (unsigned long long)cs.evals, (unsigned long long)cs.plan_changes,
        (unsigned long long)cs.degraded_enters,
        (unsigned long long)cs.degraded_exits,
        (unsigned long long)cs.mode_switches, (unsigned long long)cs.flaps);
  }
}

tle::ExecMode parse_mode(const std::string& s) {
  if (s == "lock") return tle::ExecMode::Lock;
  if (s == "spin") return tle::ExecMode::StmSpin;
  if (s == "stm") return tle::ExecMode::StmCondVar;
  if (s == "noq") return tle::ExecMode::StmCondVarNoQ;
  if (s == "htm") return tle::ExecMode::Htm;
  std::fprintf(stderr, "unknown mode '%s', using stm\n", s.c_str());
  return tle::ExecMode::StmCondVar;
}

void report(const char* what, const tle::pipez::RunStats& s) {
  std::printf("%s: %llu blocks, %llu -> %llu bytes (%.2fx) in %.3f s\n", what,
              (unsigned long long)s.blocks, (unsigned long long)s.in_bytes,
              (unsigned long long)s.out_bytes,
              s.out_bytes ? double(s.in_bytes) / double(s.out_bytes) : 0.0,
              s.seconds);
}

int usage() {
  std::fprintf(stderr,
               "usage: pipez_tool compress|decompress <in> <out> [-p N] "
               "[-b KB] [-m mode]\n"
               "       pipez_tool selftest [-s MB] [-p N] [-b KB] [-m mode]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];

  tle::pipez::Config cfg;
  long selftest_mb = 4;
  std::vector<std::string> positional;
  for (int i = 2; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : ""; };
    if (a == "-p")
      cfg.worker_threads = std::atoi(next());
    else if (a == "-b")
      cfg.block_size = static_cast<std::size_t>(std::atol(next())) * 1000;
    else if (a == "-m")
      tle::set_exec_mode(parse_mode(next()));
    else if (a == "-s")
      selftest_mb = std::atol(next());
    else
      positional.push_back(a);
  }
  std::printf("mode=%s threads=%d block=%zu\n",
              tle::to_string(tle::config().mode), cfg.worker_threads,
              cfg.block_size);

  if (cmd == "selftest") {
    const auto input = tle::pipez::make_corpus(
        static_cast<std::size_t>(selftest_mb) * 1000 * 1000, 42);
    tle::reset_stats();
    tle::pipez::RunStats cs{}, ds{};
    const auto compressed = tle::pipez::compress(input, cfg, &cs);
    report("compress", cs);
    const auto back = tle::pipez::decompress(compressed, cfg, &ds);
    report("decompress", ds);
    if (!back.ok || back.data != input) {
      std::fprintf(stderr, "SELFTEST FAILED: %s\n", back.error.c_str());
      return 1;
    }
    std::printf("roundtrip verified OK\n\nTM statistics:\n%s",
                tle::aggregate_stats().report().c_str());
    report_live_metrics();
    return 0;
  }

  if (positional.size() != 2) return usage();

  // The file commands use the streaming interface: blocks are read, worked
  // on, and written concurrently, PBZip2-style.
  if (cmd == "compress") {
    const auto r = tle::pipez::compress_file(positional[0], positional[1], cfg);
    if (!r.ok) {
      std::fprintf(stderr, "compress failed: %s\n", r.error.c_str());
      return 1;
    }
    report("compress", r.stats);
    return 0;
  }
  if (cmd == "decompress") {
    const auto r = tle::pipez::decompress_file(positional[0], positional[1], cfg);
    if (!r.ok) {
      std::fprintf(stderr, "decompress failed: %s\n", r.error.c_str());
      return 1;
    }
    report("decompress", r.stats);
    return 0;
  }
  return usage();
}
