// Quickstart: the TLE API in ~80 lines.
//
// A tiny bank with an elidable lock. The same critical-section code runs as
// a real lock, as STM (with or without selective quiescence), or as
// simulated HTM — switched with one call, exactly how the paper compares
// its five configurations.
//
//   ./quickstart [mode]   where mode = lock | spin | stm | noq | htm
#include <cstdio>
#include <cstring>
#include <thread>
#include <vector>

#include "tm/tm.hpp"

namespace {

constexpr int kAccounts = 8;
constexpr long kInitialBalance = 1000;

struct Bank {
  tle::elidable_mutex lock;                // one lock for all accounts
  tle::tm_var<long> balance[kAccounts];
};

void transfer(Bank& bank, int from, int to, long amount) {
  // The critical section: with ExecMode::Lock this takes bank.lock; in the
  // other modes the lock is *elided* and the body runs as a transaction.
  tle::critical(bank.lock, [&](tle::TxContext& tx) {
    tx.write(bank.balance[from], tx.read(bank.balance[from]) - amount);
    tx.write(bank.balance[to], tx.read(bank.balance[to]) + amount);
    // This transaction publishes but never privatizes, so it may ask to
    // skip quiescence (a no-op unless the NoQuiesce mode honors it).
    tx.no_quiesce();
    // Irrevocable effects (logging, I/O) go through deferred actions:
    tx.defer([from, to, amount] {
      if (amount > 900)
        std::printf("  [deferred log] big transfer %d -> %d: %ld\n", from, to,
                    amount);
    });
  });
}

tle::ExecMode parse_mode(const char* s) {
  if (!std::strcmp(s, "lock")) return tle::ExecMode::Lock;
  if (!std::strcmp(s, "spin")) return tle::ExecMode::StmSpin;
  if (!std::strcmp(s, "stm")) return tle::ExecMode::StmCondVar;
  if (!std::strcmp(s, "noq")) return tle::ExecMode::StmCondVarNoQ;
  if (!std::strcmp(s, "htm")) return tle::ExecMode::Htm;
  std::fprintf(stderr, "unknown mode '%s', using stm\n", s);
  return tle::ExecMode::StmCondVar;
}

}  // namespace

int main(int argc, char** argv) {
  tle::set_exec_mode(argc > 1 ? parse_mode(argv[1]) : tle::ExecMode::StmCondVar);
  std::printf("mode: %s\n", tle::to_string(tle::config().mode));

  Bank bank;
  for (auto& b : bank.balance) b.unsafe_set(kInitialBalance);

  // Hammer the bank from four threads.
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&bank, t] {
      tle::Xoshiro256 rng(100 + static_cast<unsigned>(t));
      for (int i = 0; i < 20000; ++i) {
        const int from = static_cast<int>(rng.below(kAccounts));
        const int to = static_cast<int>(rng.below(kAccounts));
        transfer(bank, from, to, static_cast<long>(rng.below(50)));
      }
    });
  }
  for (auto& t : threads) t.join();

  long total = 0;
  for (auto& b : bank.balance) total += b.unsafe_get();
  std::printf("total balance: %ld (expected %ld) — %s\n", total,
              long{kAccounts} * kInitialBalance,
              total == kAccounts * kInitialBalance ? "ATOMIC" : "BROKEN");

  std::printf("\nruntime statistics:\n%s",
              tle::aggregate_stats().report().c_str());
  return total == kAccounts * kInitialBalance ? 0 : 1;
}
