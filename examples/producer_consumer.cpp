// producer_consumer — the paper's Listing 2 scenario, runnable.
//
// A single producer feeds per-consumer work through a TLE bounded queue.
// The producer never privatizes data, so its transactions request
// TM_NoQuiesce; consumers privatize the payloads they extract, so their
// successful pops must quiesce. Run it in "stm" vs "noq" mode and compare
// the quiesce counters in the report.
//
//   ./producer_consumer [mode] [items]
#include <cstdio>
#include <cstring>
#include <thread>
#include <vector>

#include "sync/bounded_queue.hpp"
#include "tm/tm.hpp"

namespace {

struct WorkItem {
  long id;
  long payload[16];  // privatized and read non-transactionally by consumers
};

tle::ExecMode parse_mode(const char* s) {
  if (!std::strcmp(s, "lock")) return tle::ExecMode::Lock;
  if (!std::strcmp(s, "spin")) return tle::ExecMode::StmSpin;
  if (!std::strcmp(s, "stm")) return tle::ExecMode::StmCondVar;
  if (!std::strcmp(s, "noq")) return tle::ExecMode::StmCondVarNoQ;
  if (!std::strcmp(s, "htm")) return tle::ExecMode::Htm;
  return tle::ExecMode::StmCondVar;
}

}  // namespace

int main(int argc, char** argv) {
  tle::set_exec_mode(argc > 1 ? parse_mode(argv[1]) : tle::ExecMode::StmCondVar);
  const long items = argc > 2 ? std::atol(argv[2]) : 50000;
  std::printf("mode: %s, items: %ld\n", tle::to_string(tle::config().mode),
              items);
  tle::reset_stats();

  tle::bounded_queue<WorkItem*> queue(64);
  constexpr int kConsumers = 3;
  std::vector<long> consumed(kConsumers, 0);
  std::vector<long> checksum(kConsumers, 0);

  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&, c] {
      for (;;) {
        auto item = queue.pop();  // quiesces on success (privatization)
        if (!item.has_value()) break;
        WorkItem* w = *item;
        // Non-transactional use of the privatized item — the access the
        // quiescence protocol exists to make safe.
        for (long v : w->payload) checksum[c] += v;
        ++consumed[c];
        delete w;
      }
    });
  }

  // Single producer: publish-only transactions, NoQuiesce requested inside
  // the queue implementation (Listing 2's producer rule).
  for (long i = 0; i < items; ++i) {
    auto* w = new WorkItem;
    w->id = i;
    for (int k = 0; k < 16; ++k) w->payload[k] = i + k;
    queue.push(w);
  }
  queue.close();
  for (auto& t : consumers) t.join();

  long total = 0, check = 0;
  for (int c = 0; c < kConsumers; ++c) {
    total += consumed[c];
    check += checksum[c];
  }
  long expected_check = 0;
  for (long i = 0; i < items; ++i)
    for (int k = 0; k < 16; ++k) expected_check += i + k;
  std::printf("consumed %ld/%ld items, checksum %s\n", total, items,
              check == expected_check ? "OK" : "CORRUPT");

  std::printf("\nTM statistics (note quiesce vs noquiesce counters):\n%s",
              tle::aggregate_stats().report().c_str());
  return (total == items && check == expected_check) ? 0 : 1;
}
