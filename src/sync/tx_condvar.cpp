#include "sync/tx_condvar.hpp"

#include <semaphore.h>
#include <time.h>

#include <atomic>
#include <cerrno>
#include <deque>
#include <mutex>

#include "tm/config.hpp"
#include "tm/registry.hpp"

namespace tle {

namespace {

/// Per-thread wait slot: one semaphore a thread parks on. A thread waits on
/// at most one condvar at a time (waits are the last action of a section).
struct WaitSlot {
  sem_t sem;
  bool removed_by_timeout = false;

  WaitSlot() { sem_init(&sem, 0, 0); }
  ~WaitSlot() { sem_destroy(&sem); }
};

WaitSlot& my_wait_slot() {
  thread_local WaitSlot slot;
  return slot;
}

constexpr int kPendingCap = kMaxThreads;

}  // namespace

struct tx_condvar::Impl {
  // Touched only from post-commit deferred actions and plain code — never
  // inside a speculative region — so an ordinary mutex is safe and simple.
  mutable std::mutex m;
  std::deque<WaitSlot*> waiters;
  int pending = 0;

  /// Returns true if the caller should actually block (it was enqueued);
  /// false if a banked signal was consumed.
  bool enqueue(WaitSlot* s) {
    std::lock_guard<std::mutex> g(m);
    if (pending > 0) {
      --pending;
      return false;
    }
    waiters.push_back(s);
    return true;
  }

  /// Try to withdraw after a timeout. True if we removed ourselves (real
  /// timeout); false if a signal already claimed us (must absorb the post).
  bool withdraw(WaitSlot* s) {
    std::lock_guard<std::mutex> g(m);
    for (auto it = waiters.begin(); it != waiters.end(); ++it) {
      if (*it == s) {
        waiters.erase(it);
        return true;
      }
    }
    return false;
  }

  void signal_one() {
    WaitSlot* target = nullptr;
    {
      std::lock_guard<std::mutex> g(m);
      if (!waiters.empty()) {
        target = waiters.front();
        waiters.pop_front();
      } else if (pending < kPendingCap) {
        ++pending;
      }
    }
    if (target) sem_post(&target->sem);
  }

  void signal_all() {
    std::deque<WaitSlot*> grabbed;
    {
      std::lock_guard<std::mutex> g(m);
      grabbed.swap(waiters);
      pending = kPendingCap;  // bank for committed-but-not-yet-enqueued waiters
    }
    for (WaitSlot* s : grabbed) sem_post(&s->sem);
  }
};

tx_condvar::tx_condvar() : impl_(new Impl) {}
tx_condvar::~tx_condvar() { delete impl_; }

void tx_condvar::block(bool timed, std::chrono::nanoseconds timeout) {
  WaitSlot& slot = my_wait_slot();
  if (!impl_->enqueue(&slot)) return;  // consumed a banked signal
  TxStats& stats = my_slot().stats;
  stats.bump(stats.condvar_waits);
  if (!timed) {
    while (sem_wait(&slot.sem) != 0 && errno == EINTR) {
    }
    return;
  }
  timespec abs;
  clock_gettime(CLOCK_REALTIME, &abs);
  const auto total = std::chrono::nanoseconds(abs.tv_nsec) + timeout;
  abs.tv_sec += static_cast<time_t>(
      std::chrono::duration_cast<std::chrono::seconds>(total).count());
  abs.tv_nsec = static_cast<long>((total % std::chrono::seconds(1)).count());
  int rc;
  while ((rc = sem_timedwait(&slot.sem, &abs)) != 0 && errno == EINTR) {
  }
  if (rc == 0) return;
  // Timed out — withdraw, unless a signal claimed us in the race window, in
  // which case the post must be absorbed so the slot stays balanced.
  if (impl_->withdraw(&slot)) {
    stats.bump(stats.condvar_timeouts);
    return;
  }
  while (sem_wait(&slot.sem) != 0 && errno == EINTR) {
  }
}

void tx_condvar::wait(TxContext& tx) {
  if (config().mode == ExecMode::StmSpin) {
    // The paper's STM+Spin configuration: no sleeping, just re-poll.
    tx.defer([] { std::this_thread::yield(); });
    return;
  }
  tx.defer([this] { block(false, {}); });
}

void tx_condvar::wait_for(TxContext& tx, std::chrono::nanoseconds timeout) {
  if (config().mode == ExecMode::StmSpin) {
    tx.defer([] { std::this_thread::yield(); });
    return;
  }
  tx.defer([this, timeout] { block(true, timeout); });
}

void tx_condvar::notify_one(TxContext& tx) {
  tx.defer([this] { impl_->signal_one(); });
}

void tx_condvar::notify_all(TxContext& tx) {
  tx.defer([this] { impl_->signal_all(); });
}

void tx_condvar::notify_one_now() { impl_->signal_one(); }

void tx_condvar::notify_all_now() { impl_->signal_all(); }

int tx_condvar::waiter_count() const {
  std::lock_guard<std::mutex> g(impl_->m);
  return static_cast<int>(impl_->waiters.size());
}

}  // namespace tle
