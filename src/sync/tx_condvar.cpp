#include "sync/tx_condvar.hpp"

#include <semaphore.h>
#include <time.h>

#include <atomic>
#include <cerrno>
#include <deque>
#include <mutex>

#include "tm/config.hpp"
#include "tm/fault/fault.hpp"
#include "tm/registry.hpp"

// sem_clockwait appeared in glibc 2.30; with it, timed waits measure
// against CLOCK_MONOTONIC, so a wall-clock step (NTP, settimeofday) can
// neither fire a wait_for early nor stall it for the step duration. Older
// libcs fall back to the POSIX-portable CLOCK_REALTIME + sem_timedwait and
// keep that (documented) sensitivity.
#if defined(__GLIBC__) && \
    (__GLIBC__ > 2 || (__GLIBC__ == 2 && __GLIBC_MINOR__ >= 30))
#define TLE_HAVE_SEM_CLOCKWAIT 1
#else
#define TLE_HAVE_SEM_CLOCKWAIT 0
#endif

namespace tle {

namespace {

/// Per-thread wait slot: one semaphore a thread parks on. A thread waits on
/// at most one condvar at a time (waits are the last action of a section).
struct WaitSlot {
  sem_t sem;

  WaitSlot() { sem_init(&sem, 0, 0); }
  ~WaitSlot() { sem_destroy(&sem); }
};

WaitSlot& my_wait_slot() {
  thread_local WaitSlot slot;
  return slot;
}

constexpr int kPendingCap = kMaxThreads;

constexpr clockid_t kWaitClock =
    TLE_HAVE_SEM_CLOCKWAIT ? CLOCK_MONOTONIC : CLOCK_REALTIME;

timespec deadline_after(std::chrono::nanoseconds timeout) {
  timespec abs;
  clock_gettime(kWaitClock, &abs);
  const auto total = std::chrono::nanoseconds(abs.tv_nsec) + timeout;
  abs.tv_sec += static_cast<time_t>(
      std::chrono::duration_cast<std::chrono::seconds>(total).count());
  abs.tv_nsec = static_cast<long>((total % std::chrono::seconds(1)).count());
  return abs;
}

int sem_wait_until(sem_t* sem, const timespec* abs) {
#if TLE_HAVE_SEM_CLOCKWAIT
  return sem_clockwait(sem, kWaitClock, abs);
#else
  return sem_timedwait(sem, abs);
#endif
}

}  // namespace

struct tx_condvar::Impl {
  // Touched only from post-commit deferred actions and plain code — never
  // inside a speculative region — so an ordinary mutex is safe and simple.
  mutable std::mutex m;
  std::deque<WaitSlot*> waiters;
  int pending = 0;

  /// Commit-ordered count of waits announced by wait()/wait_for(). Written
  /// transactionally by waiters; the signal paths read the raw cell under
  /// `m`. Because announcing makes the waiter a WRITER, TM serialization
  /// orders it against the notifier's predicate write: a waiter whose
  /// predicate read went stale aborts and re-checks instead of committing a
  /// doomed wait, and a waiter that did commit before the notifier is
  /// ordered before the notifier's commit-clock RMW — so by the time the
  /// notifier's deferred signal runs, its load below observes the intent.
  tm_var<std::uint64_t> intents_{0};

  /// Announced waits that have since reached enqueue() (guarded by m).
  std::uint64_t absorbed_ = 0;

  /// Waiters committed but not yet enqueued — the only threads a banked
  /// signal can be for. Call with `m` held. The raw() read may run
  /// concurrently with a speculative (not-yet-committed) announce; at worst
  /// that overcounts in-flight waiters by the speculation, banking a signal
  /// that becomes a spurious wakeup — absorbed by the re-check loop, never
  /// a lost one.
  int bank_limit_locked() const noexcept {
    const std::uint64_t announced =
        intents_.raw().load(std::memory_order_acquire);
    const std::uint64_t in_flight =
        announced > absorbed_ ? announced - absorbed_ : 0;
    return static_cast<int>(
        in_flight < static_cast<std::uint64_t>(kPendingCap)
            ? in_flight
            : static_cast<std::uint64_t>(kPendingCap));
  }

  /// Returns true if the caller should actually block (it was enqueued);
  /// false if a banked signal was consumed.
  bool enqueue(WaitSlot* s) {
    std::lock_guard<std::mutex> g(m);
    ++absorbed_;
    if (pending > 0) {
      --pending;
      return false;
    }
    waiters.push_back(s);
    return true;
  }

  /// Try to withdraw after a timeout. True if we removed ourselves (real
  /// timeout); false if a signal already claimed us (must absorb the post).
  bool withdraw(WaitSlot* s) {
    std::lock_guard<std::mutex> g(m);
    for (auto it = waiters.begin(); it != waiters.end(); ++it) {
      if (*it == s) {
        waiters.erase(it);
        return true;
      }
    }
    return false;
  }

  void signal_one() {
    WaitSlot* target = nullptr;
    {
      std::lock_guard<std::mutex> g(m);
      if (!waiters.empty()) {
        target = waiters.front();
        waiters.pop_front();
      } else if (pending < bank_limit_locked()) {
        ++pending;
      }
    }
    if (target) sem_post(&target->sem);
  }

  void signal_all() {
    std::deque<WaitSlot*> grabbed;
    {
      std::lock_guard<std::mutex> g(m);
      grabbed.swap(waiters);
      // Re-bank exactly one signal per committed-but-not-yet-enqueued
      // waiter (every such waiter is counted by bank_limit_locked, and any
      // previously banked signal was for a waiter still in that set — so
      // replacing the old bank cannot drop a needed signal). A notify_all
      // with nobody in flight banks nothing.
      pending = bank_limit_locked();
    }
    for (WaitSlot* s : grabbed) sem_post(&s->sem);
  }
};

tx_condvar::tx_condvar() : impl_(new Impl) {}
tx_condvar::~tx_condvar() { delete impl_; }

clockid_t tx_condvar::timed_wait_clock() noexcept { return kWaitClock; }

/// Transactionally record that this transaction will block after commit.
/// Part of the wait()'s transaction, so it commits atomically with the
/// predicate check — see Impl::intents_.
void tx_condvar::announce(TxContext& tx) {
  tx.fetch_add(impl_->intents_, std::uint64_t{1});
}

void tx_condvar::block(bool timed, std::chrono::nanoseconds timeout) {
  TxStats& stats = my_slot().stats;
  // Perturbation point: the committed-but-not-yet-enqueued window a racing
  // notify must bank for.
  if (fault::active() && fault::perturb(fault::Hook::CvEnqueue))
    stats.bump(stats.fault_delays);
  WaitSlot& slot = my_wait_slot();
  if (!impl_->enqueue(&slot)) return;  // consumed a banked signal
  stats.bump(stats.condvar_waits);
  if (!timed) {
    while (sem_wait(&slot.sem) != 0 && errno == EINTR) {
    }
    return;
  }
  const timespec abs = deadline_after(timeout);
  int rc;
  while ((rc = sem_wait_until(&slot.sem, &abs)) != 0 && errno == EINTR) {
  }
  if (rc == 0) return;
  // Timed out — withdraw, unless a signal claimed us in the race window, in
  // which case the post must be absorbed so the slot stays balanced.
  // Perturbation point: that timeout->withdraw window.
  if (fault::active() && fault::perturb(fault::Hook::CvTimeout))
    stats.bump(stats.fault_delays);
  if (impl_->withdraw(&slot)) {
    stats.bump(stats.condvar_timeouts);
    return;
  }
  while (sem_wait(&slot.sem) != 0 && errno == EINTR) {
  }
}

void tx_condvar::wait(TxContext& tx) {
  if (live_mode() == ExecMode::StmSpin) {
    // The paper's STM+Spin configuration: no sleeping, just re-poll.
    tx.defer([] { std::this_thread::yield(); });
    return;
  }
  announce(tx);
  tx.defer([this] { block(false, {}); });
}

void tx_condvar::wait_for(TxContext& tx, std::chrono::nanoseconds timeout) {
  if (live_mode() == ExecMode::StmSpin) {
    tx.defer([] { std::this_thread::yield(); });
    return;
  }
  announce(tx);
  tx.defer([this, timeout] { block(true, timeout); });
}

void tx_condvar::notify_one(TxContext& tx) {
  tx.defer([this] { impl_->signal_one(); });
}

void tx_condvar::notify_all(TxContext& tx) {
  tx.defer([this] { impl_->signal_all(); });
}

void tx_condvar::notify_one_now() { impl_->signal_one(); }

void tx_condvar::notify_all_now() { impl_->signal_all(); }

int tx_condvar::waiter_count() const {
  std::lock_guard<std::mutex> g(impl_->m);
  return static_cast<int>(impl_->waiters.size());
}

}  // namespace tle
