// A bounded MPMC FIFO built on an elidable mutex and transaction-friendly
// condition variables — the synchronization shape of PBZip2's inter-stage
// queues (the paper's main source of critical sections) and of x265's
// lookahead/output queues.
//
// The TM_NoQuiesce placement follows the paper's Listing 2 exactly:
//   * a producer never privatizes, so it always requests NoQuiesce;
//   * a consumer privatizes the element it extracts, so it must quiesce on a
//     successful pop, but requests NoQuiesce when it found the queue empty.
// (The requests only take effect in the StmCondVarNoQ configuration.)
#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "sync/tx_condvar.hpp"
#include "tm/api.hpp"

namespace tle {

template <typename T>
class bounded_queue {
  static_assert(std::is_trivially_copyable_v<T> && sizeof(T) <= 8,
                "queue elements must fit a tm_var (use pointers for payloads)");

 public:
  explicit bounded_queue(std::size_t capacity)
      : cap_(round_up_pow2(capacity)),
        mask_(cap_ - 1),
        slots_(new tm_var<T>[cap_]) {}

  /// Blocking push. Returns false iff the queue was closed.
  bool push(T item) {
    for (;;) {
      Outcome r = Outcome::Blocked;
      critical(m_, [&](TxContext& tx) {
        tx.no_quiesce();  // producers never privatize (Listing 2)
        if (tx.read(closed_)) {
          r = Outcome::Closed;
          return;
        }
        const std::uint64_t h = tx.read(head_);
        const std::uint64_t t = tx.read(tail_);
        if (t - h >= cap_) {
          r = Outcome::Blocked;
          not_full_.wait(tx);  // wait is the section's last action
          return;
        }
        tx.write(slots_[t & mask_], item);
        tx.write(tail_, t + 1);
        not_empty_.notify_one(tx);
        r = Outcome::Done;
      });
      if (r == Outcome::Done) return true;
      if (r == Outcome::Closed) return false;
    }
  }

  /// Non-blocking push; false when full or closed.
  bool try_push(T item) {
    bool ok = false;
    critical(m_, [&](TxContext& tx) {
      tx.no_quiesce();
      if (tx.read(closed_)) return;
      const std::uint64_t h = tx.read(head_);
      const std::uint64_t t = tx.read(tail_);
      if (t - h >= cap_) return;
      tx.write(slots_[t & mask_], item);
      tx.write(tail_, t + 1);
      not_empty_.notify_one(tx);
      ok = true;
    });
    return ok;
  }

  /// Blocking pop. Empty optional iff the queue is closed and drained.
  std::optional<T> pop() {
    for (;;) {
      Outcome r = Outcome::Blocked;
      T out{};
      critical(m_, [&](TxContext& tx) {
        const std::uint64_t h = tx.read(head_);
        const std::uint64_t t = tx.read(tail_);
        if (h != t) {
          out = tx.read(slots_[h & mask_]);
          tx.write(head_, h + 1);
          not_full_.notify_one(tx);
          // Successful extraction privatizes `out`: quiescence required, so
          // no TM_NoQuiesce here.
          r = Outcome::Done;
          return;
        }
        if (tx.read(closed_)) {
          r = Outcome::Closed;
          return;
        }
        tx.no_quiesce();  // nothing privatized on the empty path (Listing 2)
        r = Outcome::Blocked;
        not_empty_.wait(tx);
      });
      if (r == Outcome::Done) return out;
      if (r == Outcome::Closed) return std::nullopt;
    }
  }

  /// Non-blocking pop.
  std::optional<T> try_pop() {
    std::optional<T> out;
    critical(m_, [&](TxContext& tx) {
      const std::uint64_t h = tx.read(head_);
      const std::uint64_t t = tx.read(tail_);
      if (h == t) {
        tx.no_quiesce();
        return;
      }
      out = tx.read(slots_[h & mask_]);
      tx.write(head_, h + 1);
      not_full_.notify_one(tx);
    });
    return out;
  }

  /// Close the queue: producers start failing, consumers drain then stop.
  void close() {
    critical(m_, [&](TxContext& tx) {
      tx.write(closed_, true);
      not_empty_.notify_all(tx);
      not_full_.notify_all(tx);
    });
  }

  std::size_t capacity() const noexcept { return cap_; }

  /// Approximate size; only exact when no concurrent operations run.
  std::size_t size_unsafe() const noexcept {
    return static_cast<std::size_t>(tail_.unsafe_get() - head_.unsafe_get());
  }

  bool closed_unsafe() const noexcept { return closed_.unsafe_get(); }

 private:
  enum class Outcome { Done, Closed, Blocked };

  static std::size_t round_up_pow2(std::size_t n) noexcept {
    std::size_t p = 1;
    while (p < n) p <<= 1;
    return p < 2 ? 2 : p;
  }

  const std::size_t cap_;
  const std::size_t mask_;
  std::unique_ptr<tm_var<T>[]> slots_;
  tm_var<std::uint64_t> head_{0};
  tm_var<std::uint64_t> tail_{0};
  tm_var<bool> closed_{false};
  elidable_mutex m_;
  tx_condvar not_full_;
  tx_condvar not_empty_;
};

}  // namespace tle
