// A plain worker pool for orchestration (frame threads, benchmark drivers).
//
// Deliberately built on ordinary std primitives: the pool is scaffolding,
// not a measured critical section — the application-level locks (lookahead,
// CTU rows, queues) are the elidable ones, as in the paper's x265 study.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace tle {

class thread_pool {
 public:
  explicit thread_pool(int workers) {
    threads_.reserve(static_cast<std::size_t>(workers));
    for (int i = 0; i < workers; ++i)
      threads_.emplace_back([this, i] { worker_loop(i); });
  }

  ~thread_pool() {
    {
      std::lock_guard<std::mutex> g(m_);
      stop_ = true;
    }
    cv_.notify_all();
    for (auto& t : threads_) t.join();
  }

  thread_pool(const thread_pool&) = delete;
  thread_pool& operator=(const thread_pool&) = delete;

  /// Enqueue a job. Jobs may submit further jobs.
  void submit(std::function<void()> job) {
    {
      std::lock_guard<std::mutex> g(m_);
      jobs_.push_back(std::move(job));
    }
    cv_.notify_one();
  }

  /// Block until the queue is empty and every worker is idle.
  void wait_idle() {
    std::unique_lock<std::mutex> g(m_);
    idle_cv_.wait(g, [this] { return jobs_.empty() && active_ == 0; });
  }

  int size() const noexcept { return static_cast<int>(threads_.size()); }

 private:
  void worker_loop(int /*index*/) {
    for (;;) {
      std::function<void()> job;
      {
        std::unique_lock<std::mutex> g(m_);
        cv_.wait(g, [this] { return stop_ || !jobs_.empty(); });
        if (stop_ && jobs_.empty()) return;
        job = std::move(jobs_.front());
        jobs_.pop_front();
        ++active_;
      }
      job();
      {
        std::lock_guard<std::mutex> g(m_);
        --active_;
        if (jobs_.empty() && active_ == 0) idle_cv_.notify_all();
      }
    }
  }

  std::mutex m_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  std::deque<std::function<void()>> jobs_;
  int active_ = 0;
  bool stop_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace tle
