// Transaction-friendly condition variables (Wang et al.), extended with the
// timed waits the paper added for x265 (Section VI-d).
//
// The classic condvar is incompatible with transactions: a waiter would
// sleep inside a critical section. The transactional refactoring (which the
// paper applies to both programs) requires:
//
//   * the wait is the transaction's LAST action, and
//   * the whole check-or-wait runs in a loop that re-executes the
//     transaction after wakeup.
//
// Usage pattern (identical in all five ExecModes):
//
//   for (;;) {
//     bool done = false;
//     tle::critical(m, [&](TxContext& tx) {
//       if (predicate(tx)) { consume(tx); done = true; }
//       else cv.wait(tx);                       // registered, runs post-commit
//     });
//     if (done) break;
//   }
//
// Implementation: the wait/notify are deferred actions. The waiter enqueues
// itself on the condvar's waiter list and blocks on its per-thread POSIX
// semaphore *after* its transaction commits (after unlock, in Lock mode).
// Because a notifier's deferred signal can race ahead of a committed
// waiter's deferred enqueue, the condvar holds a pending-signal counter: a
// signal arriving in that window is banked and consumed by the next
// enqueue. The bank is bounded by the number of waiters actually inside the
// window — wait() transactionally announces the intent to block, and a
// signal only banks up to announced-minus-enqueued — so a notify with
// nobody in flight banks nothing and cannot make later unrelated waits
// return without blocking. Whatever is banked is at worst a spurious
// wakeup, which the re-check loop absorbs — never a lost wakeup.
//
// In StmSpin mode wait() degenerates to a yield, reproducing the paper's
// "STM + Spin" configuration (threads repeatedly poll their condition in a
// small transaction).
#pragma once

#include <time.h>

#include <chrono>
#include <cstdint>

#include "tm/api.hpp"

namespace tle {

class tx_condvar {
 public:
  tx_condvar();
  ~tx_condvar();

  tx_condvar(const tx_condvar&) = delete;
  tx_condvar& operator=(const tx_condvar&) = delete;

  /// Register this transaction's post-commit wait. Must be (logically) the
  /// last action of the critical section; the enclosing code must loop.
  void wait(TxContext& tx);

  /// Timed variant: wakes spuriously after `timeout` if not notified
  /// (x265's soft-real-time waits). The loop re-checks either way.
  void wait_for(TxContext& tx, std::chrono::nanoseconds timeout);

  /// Register a post-commit wake of one / all waiters.
  void notify_one(TxContext& tx);
  void notify_all(TxContext& tx);

  /// Immediate variants for plain (non-critical-section) code, e.g. a
  /// shutdown path.
  void notify_one_now();
  void notify_all_now();

  /// Waiters currently blocked (approximate; for tests/monitoring).
  int waiter_count() const;

  /// The clock timed waits measure against: CLOCK_MONOTONIC where the libc
  /// provides sem_clockwait (glibc >= 2.30), else the CLOCK_REALTIME +
  /// sem_timedwait fallback. Exposed so tests can pin the no-wall-clock
  /// guarantee on platforms that have it.
  static clockid_t timed_wait_clock() noexcept;

 private:
  struct Impl;
  Impl* impl_;

  void announce(TxContext& tx);
  void block(bool timed, std::chrono::nanoseconds timeout);
};

}  // namespace tle
