// Intra prediction (DC / horizontal / vertical / planar) from reconstructed
// neighbours, SAD cost, and full-search motion estimation against the
// previous reconstructed frame.
#pragma once

#include <cstdint>

#include "videnc/frame.hpp"
#include "videnc/transform.hpp"

namespace tle::videnc {

enum class IntraMode : std::uint8_t { Dc = 0, Horizontal, Vertical, Planar };
inline constexpr int kIntraModes = 4;

/// Predict the 8x8 block at (x0, y0) from `recon`'s already-reconstructed
/// top/left neighbours. Out-of-frame neighbours read as 128 (DC default).
/// `min_y`/`max_y` bound the enclosing slice's pixel rows: samples outside
/// [min_y, max_y) belong to other (independently processed) slices and are
/// treated as unavailable — required both for slice independence and for
/// schedule-independent (deterministic) output.
void intra_predict(const Plane& recon, int x0, int y0, IntraMode mode,
                   std::uint8_t pred[kBlockSize], int min_y = 0,
                   int max_y = 1 << 28);

/// Fetch the motion-compensated 8x8 block at (x0+mvx, y0+mvy) from `ref`
/// (edge-clamped).
void motion_compensate(const Plane& ref, int x0, int y0, int mvx, int mvy,
                       std::uint8_t pred[kBlockSize]);

/// Sum of absolute differences between the source block and a prediction.
std::uint32_t block_sad(const Plane& src, int x0, int y0,
                        const std::uint8_t pred[kBlockSize]);

struct MotionResult {
  int mvx = 0;
  int mvy = 0;
  std::uint32_t sad = ~0u;
};

/// Full search in [-range, range]² around (predx, predy).
MotionResult motion_search(const Plane& src, const Plane& ref, int x0, int y0,
                           int predx, int predy, int range);

}  // namespace tle::videnc
