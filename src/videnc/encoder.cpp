#include "videnc/encoder.hpp"

#include <cstdio>
#include <memory>
#include <semaphore>
#include <thread>

#include "bzip/bitio.hpp"
#include "sync/bounded_queue.hpp"
#include "sync/thread_pool.hpp"
#include "sync/tx_condvar.hpp"
#include "tm/api.hpp"
#include "util/timing.hpp"
#include "videnc/predict.hpp"
#include "videnc/transform.hpp"

namespace tle::videnc {

namespace {

constexpr int kCtu = 16;                       // 16x16 CTUs (4 8x8 blocks)
constexpr auto kDepWait = std::chrono::microseconds(500);  // x265-ish timeout

inline long pack_mv(int mvx, int mvy) {
  return (static_cast<long>(mvx) << 16) | (mvy & 0xFFFF);
}
inline void unpack_mv(long v, int* mvx, int* mvy) {
  *mvx = static_cast<int>(v >> 16);
  *mvy = static_cast<std::int16_t>(v & 0xFFFF);
}

/// A frame's reconstructed plane plus the row-availability state that
/// downstream (inter-predicting) frames wait on. With slices, rows complete
/// out of order, so completion is tracked per row and exposed as the
/// contiguous done-prefix (`frontier`).
struct ReconRef {
  Plane recon;
  int rows;
  std::unique_ptr<tm_var<bool>[]> row_flags;
  tm_var<int> frontier{0};  // rows [0, frontier) are all reconstructed
  elidable_mutex m;
  tx_condvar cv;

  ReconRef(int w, int h, int nrows)
      : recon(w, h), rows(nrows), row_flags(new tm_var<bool>[nrows ? nrows : 1]) {}

  /// Mark row r complete and advance the contiguous frontier.
  void publish_row(int r) {
    critical(m, TLE_TX_SITE("videnc/recon_publish"), [&](TxContext& tx) {
      tx.no_quiesce();
      tx.write(row_flags[r], true);
      int f = tx.read(frontier);
      while (f < rows && tx.read(row_flags[f])) ++f;
      tx.write(frontier, f);
      cv.notify_all(tx);
    });
  }
};

/// Global (per-encode) accumulators guarded by the cost lock.
struct CostBoard {
  elidable_mutex cost_lock;
  tm_var<std::uint64_t> bits{0};
  tm_var<std::uint64_t> sad{0};
  tm_var<std::uint64_t> sse{0};
};

// --------------------------------------------------------------------------
// Listing-4 output queue: placeholders are enqueued when a frame is
// submitted (ready = false), the producer fills the payload OUTSIDE the
// lock, then a tiny critical section flips the ready flag. The consumer
// dequeues only ready heads. Every critical section is two-phase.
// --------------------------------------------------------------------------
class FrameOutputQueue {
 public:
  explicit FrameOutputQueue(std::size_t n)
      : payloads_(n),
        ready_(new tm_var<bool>[n]) {}

  std::vector<std::uint8_t>* payload(std::size_t f) { return &payloads_[f]; }

  /// Producer, final stage: mark frame `f` complete.
  void mark_ready(std::size_t f) {
    critical(m_, TLE_TX_SITE("videnc/out_mark_ready"), [&](TxContext& tx) {
      tx.no_quiesce();  // publishing
      tx.write(ready_[f], true);
      cv_.notify_all(tx);
    });
  }

  /// Consumer: block until frame `f` is ready.
  void await(std::size_t f) {
    for (;;) {
      bool ok = false;
      critical(m_, TLE_TX_SITE("videnc/out_await"), [&](TxContext& tx) {
        ok = tx.read(ready_[f]);
        if (!ok) {
          tx.no_quiesce();
          cv_.wait_for(tx, kDepWait);
        }
      });
      if (ok) return;
    }
  }

 private:
  std::vector<std::vector<std::uint8_t>> payloads_;
  std::unique_ptr<tm_var<bool>[]> ready_;
  elidable_mutex m_;  // the "output queue lock" of Listings 3/4
  tx_condvar cv_;
};

// --------------------------------------------------------------------------
// One frame's encode job: WPP rows over the CTU grid.
// --------------------------------------------------------------------------
class FrameJob {
 public:
  FrameJob(Frame frame, std::shared_ptr<ReconRef> ref, int search_range,
           int slices, CostBoard* costs)
      : src_(std::move(frame)),
        ref_(std::move(ref)),
        range_(search_range),
        slices_(slices < 1 ? 1 : (slices > 255 ? 255 : slices)),
        costs_(costs),
        cols_((src_.luma.width() + kCtu - 1) / kCtu),
        rows_((src_.luma.height() + kCtu - 1) / kCtu),
        recon_(std::make_shared<ReconRef>(src_.luma.width(),
                                          src_.luma.height(), rows_)),
        row_progress_(new tm_var<int>[rows_]),
        row_bits_(static_cast<std::size_t>(rows_)),
        ctu_mv_(new tm_var<long>[static_cast<std::size_t>(rows_) * cols_]) {}

  int rows() const noexcept { return rows_; }
  int slices() const noexcept { return slices_; }
  const std::shared_ptr<ReconRef>& recon_ref() const noexcept { return recon_; }
  const Frame& source() const noexcept { return src_; }

  /// Slice partition: slice s covers rows [s*rows/S, (s+1)*rows/S).
  int slice_first_row(int r) const noexcept {
    const int s = slice_of_row(r);
    return s * rows_ / slices_;
  }
  int slice_end_row(int r) const noexcept {
    const int s = slice_of_row(r);
    return (s + 1) * rows_ / slices_;
  }
  int slice_of_row(int r) const noexcept {
    // Inverse of the balanced partition; S is tiny, a scan is clearest.
    for (int s = slices_ - 1; s > 0; --s)
      if (r >= s * rows_ / slices_) return s;
    return 0;
  }

  /// Claim the next unowned row (bonded-task-group lock). -1 when none left.
  int claim_row() {
    int row = -1;
    critical(btg_lock_, TLE_TX_SITE("videnc/btg_claim_row"),
             [&](TxContext& tx) {
      tx.no_quiesce();
      const int next = tx.read(next_row_);
      if (next < rows_) {
        tx.write(next_row_, next + 1);
        row = next;
      }
    });
    return row;
  }

  /// Encode one full CTU row (the claimed job). Returns true if this call
  /// completed the frame.
  bool encode_row(int r) {
    bzip::BitWriter& bw = row_bits_[static_cast<std::size_t>(r)];
    std::uint64_t bits = 0, sad = 0;
    for (int c = 0; c < cols_; ++c) {
      wait_for_dependencies(r, c);
      encode_ctu(r, c, bw, &bits, &sad);
      publish_ctu_done(r, c);
    }
    publish_recon_row(r);
    // Cost lock: accumulate metrics once per row.
    critical(costs_->cost_lock, TLE_TX_SITE("videnc/cost_row"),
             [&](TxContext& tx) {
      tx.no_quiesce();
      tx.write(costs_->bits, tx.read(costs_->bits) + bits);
      tx.write(costs_->sad, tx.read(costs_->sad) + sad);
    });
    // EncoderRow lock: shared frame-completion state.
    bool frame_done = false;
    critical(encoder_row_lock_, TLE_TX_SITE("videnc/row_done"),
             [&](TxContext& tx) {
      const int done = tx.read(rows_completed_) + 1;
      tx.write(rows_completed_, done);
      frame_done = done == rows_;
    });
    return frame_done;
  }

  /// Assemble the frame payload (serial; called once, by the row worker
  /// that completed the frame) and account reconstruction quality.
  void finalize(std::vector<std::uint8_t>* out) {
    out->clear();
    out->push_back(static_cast<std::uint8_t>(src_.number));
    out->push_back(static_cast<std::uint8_t>(src_.qp));
    out->push_back(src_.intra_only ? 1 : 0);
    out->push_back(static_cast<std::uint8_t>(slices_));
    for (auto& bw : row_bits_) {
      auto bytes = bw.finish();
      const std::uint32_t n = static_cast<std::uint32_t>(bytes.size());
      out->push_back(static_cast<std::uint8_t>(n));
      out->push_back(static_cast<std::uint8_t>(n >> 8));
      out->push_back(static_cast<std::uint8_t>(n >> 16));
      out->insert(out->end(), bytes.begin(), bytes.end());
    }
    const std::uint64_t sse = plane_sse(src_.luma, recon_->recon);
    critical(costs_->cost_lock, TLE_TX_SITE("videnc/cost_sse"),
             [&](TxContext& tx) {
      tx.no_quiesce();
      tx.write(costs_->sse, tx.read(costs_->sse) + sse);
    });
  }

 private:
  bool deps_satisfied(TxContext& tx, int r, int c) {
    // Wavefront: left CTU is ours (sequential in the row); top-right CTU of
    // the row above must be finished — unless this row starts a slice
    // (slices are independent).
    if (r > slice_first_row(r) &&
        tx.read(row_progress_[r - 1]) < std::min(c + 2, cols_))
      return false;
    // Inter frames: the reference rows this CTU's motion search can touch
    // must be reconstructed (one extra CTU row covers the search range).
    // The frontier is the contiguous done-prefix, valid under slices too.
    if (!src_.intra_only && ref_) {
      const int needed = std::min(r + 2, ref_->rows);
      if (tx.read(ref_->frontier) < needed) return false;
    }
    return true;
  }

  void wait_for_dependencies(int r, int c) {
    if (r == slice_first_row(r) && (src_.intra_only || !ref_)) return;
    for (long spins = 0;; ++spins) {
      bool ok = false;
      critical(ctu_rows_lock_, TLE_TX_SITE("videnc/ctu_deps_wait"),
               [&](TxContext& tx) {
        ok = deps_satisfied(tx, r, c);
        if (!ok) {
          tx.no_quiesce();
          ctu_rows_cv_.wait_for(tx, kDepWait);
        }
      });
      if (ok) return;
      if (spins == 8000) {  // ~4 s of 500 us waits: report the stall
        std::fprintf(stderr,
                     "[videnc stall] frame=%d row=%d ctu=%d: above_progress=%d "
                     "ref_rows_done=%d intra=%d\n",
                     src_.number, r, c,
                     r > 0 ? row_progress_[r - 1].unsafe_get() : -1,
                     ref_ ? ref_->frontier.unsafe_get() : -1,
                     src_.intra_only ? 1 : 0);
      }
    }
  }

  void publish_ctu_done(int r, int c) {
    critical(ctu_rows_lock_, TLE_TX_SITE("videnc/ctu_publish"),
             [&](TxContext& tx) {
      tx.no_quiesce();
      tx.write(row_progress_[r], c + 1);
      ctu_rows_cv_.notify_all(tx);
    });
  }

  void publish_recon_row(int r) { recon_->publish_row(r); }

  /// Motion-vector hint from the CTU above (PME lock): its row completed
  /// that CTU before our wavefront dependency released us, so the hint is
  /// deterministic.
  long read_mv_hint(int r, int c) {
    long hint = 0;
    critical(pme_lock_, TLE_TX_SITE("videnc/pme_read"), [&](TxContext& tx) {
      tx.no_quiesce();
      hint = tx.read(ctu_mv_[static_cast<std::size_t>(r - 1) * cols_ + c]);
    });
    return hint;
  }

  void write_mv_hint(int r, int c, long mv) {
    critical(pme_lock_, TLE_TX_SITE("videnc/pme_write"), [&](TxContext& tx) {
      tx.no_quiesce();
      tx.write(ctu_mv_[static_cast<std::size_t>(r) * cols_ + c], mv);
    });
  }

  void encode_ctu(int r, int c, bzip::BitWriter& bw, std::uint64_t* bits,
                  std::uint64_t* sad) {
    const int x1 = std::min((c + 1) * kCtu, src_.luma.width());
    const int y1 = std::min((r + 1) * kCtu, src_.luma.height());
    // Motion hint for this CTU (inter frames, non-slice-top rows: the CTU
    // above is only guaranteed complete within the same slice).
    int hx = 0, hy = 0;
    if (!src_.intra_only && ref_ && r > slice_first_row(r))
      unpack_mv(read_mv_hint(r, c), &hx, &hy);
    long best_mv = 0;

    for (int y0 = r * kCtu; y0 < y1; y0 += kBlock) {
      for (int x0 = c * kCtu; x0 < x1; x0 += kBlock) {
        std::uint8_t pred[kBlockSize];
        std::uint8_t best_pred[kBlockSize];
        std::uint32_t best_sad = ~0u;
        IntraMode best_mode = IntraMode::Dc;
        bool use_inter = false;
        MotionResult best_motion;
        // The prediction/transform kernels are the §VI-e "pure" vector math.
        const int min_y = slice_first_row(r) * kCtu;
        const int max_y = std::min(slice_end_row(r) * kCtu,
                                   src_.luma.height());
        tm_pure([&] {
          for (int m = 0; m < kIntraModes; ++m) {
            intra_predict(recon_->recon, x0, y0, static_cast<IntraMode>(m),
                          pred, min_y, max_y);
            const std::uint32_t s = block_sad(src_.luma, x0, y0, pred);
            if (s < best_sad) {
              best_sad = s;
              best_mode = static_cast<IntraMode>(m);
              use_inter = false;
              std::copy(pred, pred + kBlockSize, best_pred);
            }
          }
          if (!src_.intra_only && ref_) {
            const MotionResult mr = motion_search(src_.luma, ref_->recon, x0,
                                                  y0, hx, hy, range_);
            if (mr.sad < best_sad) {
              best_sad = mr.sad;
              use_inter = true;
              best_motion = mr;
              motion_compensate(ref_->recon, x0, y0, mr.mvx, mr.mvy,
                                best_pred);
              best_mv = pack_mv(mr.mvx, mr.mvy);
            }
          }
          // Prediction side-info: the stream is fully decodable (decoder.cpp
          // replays these decisions to rebuild the reconstruction exactly).
          bw.put(use_inter ? 1 : 0, 1);
          *bits += 1;
          if (use_inter) {
            *bits += put_se(bw, best_motion.mvx);
            *bits += put_se(bw, best_motion.mvy);
          } else {
            bw.put(static_cast<std::uint64_t>(best_mode), 2);
            *bits += 2;
          }
          // Residual -> transform -> quantize -> entropy; then reconstruct.
          std::int16_t residual[kBlockSize];
          for (int y = 0; y < kBlock; ++y)
            for (int x = 0; x < kBlock; ++x)
              residual[y * kBlock + x] = static_cast<std::int16_t>(
                  src_.luma.at_clamped(x0 + x, y0 + y) -
                  best_pred[y * kBlock + x]);
          std::int32_t coeffs[kBlockSize];
          fdct8x8(residual, coeffs);
          const std::int32_t step = quant_step(src_.qp);
          quantize(coeffs, step);
          *bits += entropy_encode_block(coeffs, bw);
          dequantize(coeffs, step);
          std::int16_t rec[kBlockSize];
          idct8x8(coeffs, rec);
          for (int y = 0; y < kBlock; ++y)
            for (int x = 0; x < kBlock; ++x) {
              if (x0 + x >= src_.luma.width() || y0 + y >= src_.luma.height())
                continue;
              const int v = best_pred[y * kBlock + x] + rec[y * kBlock + x];
              recon_->recon.set(x0 + x, y0 + y,
                                static_cast<std::uint8_t>(
                                    v < 0 ? 0 : (v > 255 ? 255 : v)));
            }
          *sad += best_sad;
        });
      }
    }
    if (!src_.intra_only && ref_) write_mv_hint(r, c, best_mv);
  }

  Frame src_;
  std::shared_ptr<ReconRef> ref_;  // previous frame's recon (may be null)
  const int range_;
  const int slices_;
  CostBoard* costs_;
  const int cols_;
  const int rows_;
  std::shared_ptr<ReconRef> recon_;

  elidable_mutex ctu_rows_lock_;   // paper: "CTURows lock"
  tx_condvar ctu_rows_cv_;
  elidable_mutex encoder_row_lock_;  // paper: "EncoderRow lock"
  elidable_mutex btg_lock_;          // paper: "bonded task group"
  elidable_mutex pme_lock_;          // paper: "parallel motion estimation"

  tm_var<int> next_row_{0};
  tm_var<int> rows_completed_{0};
  std::unique_ptr<tm_var<int>[]> row_progress_;
  std::vector<bzip::BitWriter> row_bits_;
  std::unique_ptr<tm_var<long>[]> ctu_mv_;
};

EncodeResult run_encode(std::vector<Frame> frames, const EncoderConfig& cfg) {
  Stopwatch sw;
  EncodeResult result;
  const std::size_t n = frames.size();
  if (n == 0) return result;

  CostBoard costs;
  FrameOutputQueue output(n);

  // --- lookahead stage -----------------------------------------------------
  // A producer thread feeds raw frames through the lookahead queue (the
  // "lookahead lock"); the lookahead thread estimates per-frame cost from
  // the previous raw frame and tweaks qp deterministically.
  bounded_queue<Frame*> lookahead_q(
      static_cast<std::size_t>(cfg.lookahead_depth));
  bounded_queue<Frame*> encode_q(static_cast<std::size_t>(cfg.lookahead_depth));

  std::thread source([&] {
    for (auto& f : frames) lookahead_q.push(&f);
    lookahead_q.close();
  });
  std::thread lookahead([&] {
    // Keep a private copy of the previous raw plane: once a frame is handed
    // to the encode queue the submitter may move it away.
    Plane prev;
    bool have_prev = false;
    for (;;) {
      auto f = lookahead_q.pop();
      if (!f.has_value()) break;
      Frame* frame = *f;
      std::uint64_t cost = 0;
      if (have_prev) cost = plane_sse(prev, frame->luma);
      frame->cost_estimate = cost;
      // Deterministic adaptive quantization: busy frames get a coarser qp.
      const std::uint64_t pixels =
          static_cast<std::uint64_t>(frame->luma.width()) *
          static_cast<std::uint64_t>(frame->luma.height());
      if (have_prev && cost > 400 * pixels / 10) frame->qp += 1;
      prev = frame->luma;
      have_prev = true;
      encode_q.push(frame);
    }
    encode_q.close();
  });

  // --- frame encoders over the worker pool ---------------------------------
  thread_pool pool(cfg.worker_threads);
  std::counting_semaphore<64> frame_slots(
      std::max(1, std::min(cfg.frame_threads, 64)));
  std::vector<std::shared_ptr<FrameJob>> jobs(n);  // keep recon refs alive
  std::shared_ptr<ReconRef> prev_recon;

  std::thread submitter([&] {
    std::size_t next = 0;
    for (;;) {
      auto f = encode_q.pop();
      if (!f.has_value()) break;
      Frame* frame = *f;
      frame_slots.acquire();
      const bool is_intra = frame->intra_only;  // read before the move below
      auto job = std::make_shared<FrameJob>(std::move(*frame),
                                            is_intra ? nullptr : prev_recon,
                                            cfg.search_range, cfg.slices,
                                            &costs);
      prev_recon = job->recon_ref();
      const std::size_t idx = next++;
      jobs[idx] = job;
      // One pool task per WPP row (the bonded task group hands out rows).
      for (int rj = 0; rj < job->rows(); ++rj) {
        pool.submit([job, idx, &output, &frame_slots] {
          const int row = job->claim_row();
          if (row < 0) return;
          if (job->encode_row(row)) {
            job->finalize(output.payload(idx));
            output.mark_ready(idx);
            frame_slots.release();
          }
        });
      }
    }
  });

  // --- serial writer ---------------------------------------------------------
  if (cfg.keep_recon) result.recon.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    output.await(i);
    const auto* payload = output.payload(i);
    result.bitstream.insert(result.bitstream.end(), payload->begin(),
                            payload->end());
    if (cfg.keep_recon) result.recon[i] = jobs[i]->recon_ref()->recon;
  }

  source.join();
  lookahead.join();
  submitter.join();
  pool.wait_idle();

  result.stats.frames = n;
  result.stats.bits = costs.bits.unsafe_get();
  result.stats.sad = costs.sad.unsafe_get();
  result.stats.sse = costs.sse.unsafe_get();
  result.stats.psnr = psnr_from_sse(
      result.stats.sse,
      n * static_cast<std::uint64_t>(cfg.width) * cfg.height);
  result.stats.seconds = sw.seconds();
  return result;
}

}  // namespace

EncodeResult encode(const EncoderConfig& cfg) {
  std::vector<Frame> frames(static_cast<std::size_t>(cfg.frames));
  for (int i = 0; i < cfg.frames; ++i) {
    frames[static_cast<std::size_t>(i)].number = i;
    frames[static_cast<std::size_t>(i)].luma =
        synth_frame(cfg.width, cfg.height, i, cfg.seed);
    frames[static_cast<std::size_t>(i)].intra_only =
        cfg.gop <= 1 || i % cfg.gop == 0;
    frames[static_cast<std::size_t>(i)].qp = cfg.qp;
  }
  return run_encode(std::move(frames), cfg);
}

EncodeResult encode_planes(const std::vector<Plane>& planes,
                           const EncoderConfig& cfg) {
  std::vector<Frame> frames(planes.size());
  for (std::size_t i = 0; i < planes.size(); ++i) {
    frames[i].number = static_cast<int>(i);
    frames[i].luma = planes[i];
    frames[i].intra_only = cfg.gop <= 1 || i % static_cast<std::size_t>(cfg.gop) == 0;
    frames[i].qp = cfg.qp;
  }
  return run_encode(std::move(frames), cfg);
}

}  // namespace tle::videnc
