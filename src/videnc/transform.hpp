// 8×8 integer transform, quantization, zigzag scan, and Exp-Golomb entropy
// coding — the pixel-math substrate of the encoder. All integer arithmetic:
// encode results are bit-exact regardless of thread schedule.
//
// The butterfly-free matrix DCT below is the kind of kernel x265 vectorizes
// with SSE; in the paper those calls needed the transaction_pure annotation
// (Section VI-e). Here they run inside tle::tm_pure for the same reason:
// they touch only private data and need no instrumentation.
#pragma once

#include <cstdint>

#include "bzip/bitio.hpp"

namespace tle::videnc {

inline constexpr int kBlock = 8;
inline constexpr int kBlockSize = kBlock * kBlock;

/// Forward 8x8 integer DCT (scaled); in/out are row-major 64-element arrays.
void fdct8x8(const std::int16_t in[kBlockSize], std::int32_t out[kBlockSize]);

/// Inverse of fdct8x8 (including the scale compensation).
void idct8x8(const std::int32_t in[kBlockSize], std::int16_t out[kBlockSize]);

/// Quantization step for a qp (H.26x-flavoured: step doubles every 6 qp).
std::int32_t quant_step(int qp);

/// Quantize/dequantize coefficient arrays in place.
void quantize(std::int32_t coeffs[kBlockSize], std::int32_t step);
void dequantize(std::int32_t coeffs[kBlockSize], std::int32_t step);

/// Zigzag scan order for 8x8 blocks.
extern const std::uint8_t kZigzag[kBlockSize];

/// Write the quantized coefficients of one block: zigzag order, zero-run +
/// signed Exp-Golomb level coding, terminated by an end-of-block run.
/// Returns the number of bits written.
std::size_t entropy_encode_block(const std::int32_t coeffs[kBlockSize],
                                 bzip::BitWriter& bw);

/// Inverse of entropy_encode_block. Returns false on malformed input.
bool entropy_decode_block(bzip::BitReader& br, std::int32_t coeffs[kBlockSize]);

// --- Exp-Golomb primitives (shared by block and header coding) --------------

/// Unsigned Exp-Golomb code; returns bits written.
std::size_t put_ue(bzip::BitWriter& bw, std::uint32_t v);
bool get_ue(bzip::BitReader& br, std::uint32_t* v);

/// Signed Exp-Golomb (zigzag-mapped); returns bits written.
std::size_t put_se(bzip::BitWriter& bw, std::int32_t v);
bool get_se(bzip::BitReader& br, std::int32_t* v);

}  // namespace tle::videnc
