#include "videnc/transform.hpp"

#include <algorithm>
#include <cmath>

namespace tle::videnc {

namespace {

constexpr int kShift = 13;  // fixed-point scale of the cosine matrix

/// Fixed-point orthonormal DCT-II matrix, built once.
struct CosTable {
  std::int32_t c[kBlock][kBlock];
  CosTable() {
    for (int u = 0; u < kBlock; ++u) {
      const double a = u == 0 ? std::sqrt(1.0 / kBlock) : std::sqrt(2.0 / kBlock);
      for (int y = 0; y < kBlock; ++y)
        c[u][y] = static_cast<std::int32_t>(std::lround(
            a * std::cos((2 * y + 1) * u * M_PI / (2 * kBlock)) * (1 << kShift)));
    }
  }
};
const CosTable kCos;

std::int32_t descale(std::int64_t v) {
  return static_cast<std::int32_t>((v + (1 << (kShift - 1))) >> kShift);
}

}  // namespace

// --- Exp-Golomb ---------------------------------------------------------------

std::size_t put_ue(bzip::BitWriter& bw, std::uint32_t v) {
  const std::uint32_t x = v + 1;
  int bits = 0;
  while ((2u << bits) <= x) ++bits;  // bits = floor(log2(x))
  bw.put(0, static_cast<unsigned>(bits));
  bw.put(x, static_cast<unsigned>(bits) + 1);
  return static_cast<std::size_t>(2 * bits + 1);
}

bool get_ue(bzip::BitReader& br, std::uint32_t* v) {
  int zeros = 0;
  for (;;) {
    const int b = br.get_bit();
    if (b < 0) return false;
    if (b) break;
    if (++zeros > 31) return false;
  }
  std::uint64_t rest = 0;
  if (zeros > 0 && !br.get(static_cast<unsigned>(zeros), &rest)) return false;
  *v = static_cast<std::uint32_t>(((1ULL << zeros) | rest) - 1);
  return true;
}

std::size_t put_se(bzip::BitWriter& bw, std::int32_t v) {
  // Zigzag map: 0 -> 0, 1 -> 1, -1 -> 2, 2 -> 3, -2 -> 4, ...
  const std::uint32_t u =
      v > 0 ? 2u * static_cast<std::uint32_t>(v) - 1
            : 2u * static_cast<std::uint32_t>(-v);
  return put_ue(bw, u);
}

bool get_se(bzip::BitReader& br, std::int32_t* v) {
  std::uint32_t u;
  if (!get_ue(br, &u)) return false;
  *v = (u & 1) ? static_cast<std::int32_t>((u + 1) / 2)
               : -static_cast<std::int32_t>(u / 2);
  return true;
}

void fdct8x8(const std::int16_t in[kBlockSize], std::int32_t out[kBlockSize]) {
  std::int32_t tmp[kBlockSize];
  for (int u = 0; u < kBlock; ++u)
    for (int x = 0; x < kBlock; ++x) {
      std::int64_t s = 0;
      for (int y = 0; y < kBlock; ++y)
        s += static_cast<std::int64_t>(kCos.c[u][y]) * in[y * kBlock + x];
      tmp[u * kBlock + x] = descale(s);
    }
  for (int u = 0; u < kBlock; ++u)
    for (int v = 0; v < kBlock; ++v) {
      std::int64_t s = 0;
      for (int x = 0; x < kBlock; ++x)
        s += static_cast<std::int64_t>(kCos.c[v][x]) * tmp[u * kBlock + x];
      out[u * kBlock + v] = descale(s);
    }
}

void idct8x8(const std::int32_t in[kBlockSize], std::int16_t out[kBlockSize]) {
  std::int32_t tmp[kBlockSize];
  for (int y = 0; y < kBlock; ++y)
    for (int v = 0; v < kBlock; ++v) {
      std::int64_t s = 0;
      for (int u = 0; u < kBlock; ++u)
        s += static_cast<std::int64_t>(kCos.c[u][y]) * in[u * kBlock + v];
      tmp[y * kBlock + v] = descale(s);
    }
  for (int y = 0; y < kBlock; ++y)
    for (int x = 0; x < kBlock; ++x) {
      std::int64_t s = 0;
      for (int v = 0; v < kBlock; ++v)
        s += static_cast<std::int64_t>(kCos.c[v][x]) * tmp[y * kBlock + v];
      const std::int32_t r = descale(s);
      out[y * kBlock + x] = static_cast<std::int16_t>(
          std::clamp(r, -32768, 32767));
    }
}

std::int32_t quant_step(int qp) {
  static const int base[6] = {10, 11, 13, 14, 16, 18};
  qp = std::clamp(qp, 0, 51);
  return std::max(1, (base[qp % 6] << (qp / 6)) / 4);
}

void quantize(std::int32_t coeffs[kBlockSize], std::int32_t step) {
  for (int i = 0; i < kBlockSize; ++i) {
    const std::int32_t c = coeffs[i];
    const std::int32_t q = (std::abs(c) + step / 2) / step;
    coeffs[i] = c < 0 ? -q : q;
  }
}

void dequantize(std::int32_t coeffs[kBlockSize], std::int32_t step) {
  for (int i = 0; i < kBlockSize; ++i) coeffs[i] *= step;
}

const std::uint8_t kZigzag[kBlockSize] = {
    0,  1,  8,  16, 9,  2,  3,  10, 17, 24, 32, 25, 18, 11, 4,  5,
    12, 19, 26, 33, 40, 48, 41, 34, 27, 20, 13, 6,  7,  14, 21, 28,
    35, 42, 49, 56, 57, 50, 43, 36, 29, 22, 15, 23, 30, 37, 44, 51,
    58, 59, 52, 45, 38, 31, 39, 46, 53, 60, 61, 54, 47, 55, 62, 63};

std::size_t entropy_encode_block(const std::int32_t coeffs[kBlockSize],
                                 bzip::BitWriter& bw) {
  std::size_t bits = 0;
  std::uint32_t run = 0;
  for (int i = 0; i < kBlockSize; ++i) {
    const std::int32_t c = coeffs[kZigzag[i]];
    if (c == 0) {
      ++run;
      continue;
    }
    bits += put_ue(bw, run);
    const std::uint32_t mag = static_cast<std::uint32_t>(std::abs(c)) - 1;
    bits += put_ue(bw, mag);
    bw.put(c < 0 ? 1 : 0, 1);
    bits += 1;
    run = 0;
  }
  bits += put_ue(bw, kBlockSize);  // EOB sentinel (legit runs are <= 63)
  return bits;
}

bool entropy_decode_block(bzip::BitReader& br, std::int32_t coeffs[kBlockSize]) {
  std::fill(coeffs, coeffs + kBlockSize, 0);
  int pos = 0;
  for (;;) {
    std::uint32_t run;
    if (!get_ue(br, &run)) return false;
    if (run == kBlockSize) return true;  // EOB
    pos += static_cast<int>(run);
    if (pos >= kBlockSize) return false;
    std::uint32_t mag;
    if (!get_ue(br, &mag)) return false;
    const int sign = br.get_bit();
    if (sign < 0) return false;
    const std::int32_t level = static_cast<std::int32_t>(mag) + 1;
    coeffs[kZigzag[pos]] = sign ? -level : level;
    ++pos;
  }
}

}  // namespace tle::videnc
