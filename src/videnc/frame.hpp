// Frames, planes, and the deterministic synthetic video source that stands
// in for the paper's x265 input files (38 MB / 735 MB / 3810 MB clips).
#pragma once

#include <cstdint>
#include <vector>

namespace tle::videnc {

/// A luma plane (8-bit). Encoding works on luma only — chroma adds bulk,
/// not synchronization structure.
class Plane {
 public:
  Plane() = default;
  Plane(int width, int height)
      : w_(width), h_(height), data_(static_cast<std::size_t>(width) * height) {}

  int width() const noexcept { return w_; }
  int height() const noexcept { return h_; }

  std::uint8_t at(int x, int y) const noexcept {
    return data_[static_cast<std::size_t>(y) * w_ + x];
  }
  void set(int x, int y, std::uint8_t v) noexcept {
    data_[static_cast<std::size_t>(y) * w_ + x] = v;
  }

  /// Clamped read: out-of-bounds coordinates are clipped to the edge
  /// (used by motion compensation at frame borders).
  std::uint8_t at_clamped(int x, int y) const noexcept {
    x = x < 0 ? 0 : (x >= w_ ? w_ - 1 : x);
    y = y < 0 ? 0 : (y >= h_ ? h_ - 1 : y);
    return at(x, y);
  }

  const std::uint8_t* row(int y) const noexcept {
    return data_.data() + static_cast<std::size_t>(y) * w_;
  }
  std::uint8_t* row(int y) noexcept {
    return data_.data() + static_cast<std::size_t>(y) * w_;
  }

  bool operator==(const Plane& o) const = default;

 private:
  int w_ = 0, h_ = 0;
  std::vector<std::uint8_t> data_;
};

struct Frame {
  int number = 0;
  Plane luma;
  bool intra_only = false;  ///< force I-frame (GOP boundary)
  int qp = 28;              ///< quantizer (lookahead may adjust)
  std::uint64_t cost_estimate = 0;  ///< filled by the lookahead stage
};

/// Deterministic synthetic clip: a moving gradient, a moving block, and
/// seeded per-frame noise. Same (w, h, seed, frame number) -> same pixels.
Plane synth_frame(int width, int height, int frame_number, std::uint64_t seed);

/// Sum of squared errors between two planes (integer, order-independent).
std::uint64_t plane_sse(const Plane& a, const Plane& b);

/// PSNR in dB from SSE.
double psnr_from_sse(std::uint64_t sse, std::uint64_t samples);

}  // namespace tle::videnc
