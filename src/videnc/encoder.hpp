// videnc — an x265-shaped wavefront video encoder (the paper's second
// application). It reproduces the synchronization structure Section III
// describes, with the same lock inventory:
//
//   * lookahead lock     — the raw-frame input queue and cost estimation
//   * CTURows lock       — wavefront progress: each finished CTU wakes the
//                          CTUs that depend on it (left / top-right)
//   * EncoderRow lock    — shared per-row state while multiple threads work
//                          within a frame (bits/progress publication)
//   * bonded-task-group  — row-job allocation to worker threads
//   * PME lock           — shared motion-vector candidates between rows
//   * cost lock          — performance metadata/metrics accumulation
//
// plus frame-level parallelism (several frames in flight, inter prediction
// waiting on the previous frame's reconstructed rows) and the paper's
// Listing-4 ready-flag output queue (the refactoring that made the encoder
// two-phase and hence transactionalizable).
//
// Everything synchronizes through tle::critical / tx_condvar, so the whole
// encoder runs under all five paper configurations. Encoding is bit-exact
// across modes and thread counts (integer math, deterministic decisions).
#pragma once

#include <cstdint>
#include <vector>

#include "videnc/frame.hpp"

namespace tle::videnc {

struct EncoderConfig {
  int width = 320;
  int height = 192;
  int frames = 16;
  int worker_threads = 4;  ///< WPP row workers (x265 "pool threads")
  int frame_threads = 3;   ///< concurrent frames (x265 default in the paper)
  int qp = 28;
  int gop = 8;             ///< I-frame every `gop` frames
  int slices = 1;          ///< independent slices per frame (§III parallelism)
  int search_range = 8;    ///< motion search window (±pixels)
  int lookahead_depth = 8; ///< lookahead queue capacity
  std::uint64_t seed = 1;  ///< synthetic source seed
  bool keep_recon = false; ///< retain per-frame reconstructions in the result
};

struct EncodeStats {
  std::uint64_t frames = 0;
  std::uint64_t bits = 0;          ///< total entropy-coded bits
  std::uint64_t sad = 0;           ///< total prediction SAD
  std::uint64_t sse = 0;           ///< total reconstruction SSE
  double psnr = 0;                 ///< global PSNR (dB)
  double seconds = 0;              ///< wall-clock encode time
};

struct EncodeResult {
  std::vector<std::uint8_t> bitstream;  ///< concatenated frame payloads
  EncodeStats stats;
  std::vector<Plane> recon;  ///< filled when EncoderConfig::keep_recon
};

/// Encode `cfg.frames` synthetic frames.
EncodeResult encode(const EncoderConfig& cfg);

/// Encode caller-supplied planes (must all match cfg.width/height).
EncodeResult encode_planes(const std::vector<Plane>& planes,
                           const EncoderConfig& cfg);

}  // namespace tle::videnc
