#include "videnc/predict.hpp"

namespace tle::videnc {

namespace {

/// Neighbour sample above the block, or 128 when unavailable (frame edge or
/// slice boundary).
std::uint8_t top_sample(const Plane& recon, int x, int y0, int min_y) {
  if (y0 <= min_y || x < 0 || x >= recon.width()) return 128;
  return recon.at(x, y0 - 1);
}

std::uint8_t left_sample(const Plane& recon, int x0, int y) {
  if (x0 == 0 || y < 0 || y >= recon.height()) return 128;
  return recon.at(x0 - 1, y);
}

}  // namespace

void intra_predict(const Plane& recon, int x0, int y0, IntraMode mode,
                   std::uint8_t pred[kBlockSize], int min_y, int max_y) {
  switch (mode) {
    case IntraMode::Dc: {
      int sum = 0, n = 0;
      for (int i = 0; i < kBlock; ++i) {
        if (y0 > min_y) {
          sum += top_sample(recon, x0 + i, y0, min_y);
          ++n;
        }
        if (x0 > 0) {
          sum += left_sample(recon, x0, y0 + i);
          ++n;
        }
      }
      const std::uint8_t dc =
          n ? static_cast<std::uint8_t>((sum + n / 2) / n) : 128;
      for (int i = 0; i < kBlockSize; ++i) pred[i] = dc;
      break;
    }
    case IntraMode::Horizontal:
      for (int y = 0; y < kBlock; ++y) {
        const std::uint8_t l = left_sample(recon, x0, y0 + y);
        for (int x = 0; x < kBlock; ++x) pred[y * kBlock + x] = l;
      }
      break;
    case IntraMode::Vertical:
      for (int x = 0; x < kBlock; ++x) {
        const std::uint8_t t = top_sample(recon, x0 + x, y0, min_y);
        for (int y = 0; y < kBlock; ++y) pred[y * kBlock + x] = t;
      }
      break;
    case IntraMode::Planar:
      for (int y = 0; y < kBlock; ++y) {
        for (int x = 0; x < kBlock; ++x) {
          const int t = top_sample(recon, x0 + x, y0, min_y);
          const int l = left_sample(recon, x0, y0 + y);
          const int tr = top_sample(recon, x0 + kBlock, y0, min_y);
          const int bl = y0 + kBlock >= max_y
                             ? 128
                             : left_sample(recon, x0, y0 + kBlock);
          const int h = (kBlock - 1 - x) * l + (x + 1) * tr;
          const int v = (kBlock - 1 - y) * t + (y + 1) * bl;
          pred[y * kBlock + x] =
              static_cast<std::uint8_t>((h + v + kBlock) / (2 * kBlock));
        }
      }
      break;
  }
}

void motion_compensate(const Plane& ref, int x0, int y0, int mvx, int mvy,
                       std::uint8_t pred[kBlockSize]) {
  for (int y = 0; y < kBlock; ++y)
    for (int x = 0; x < kBlock; ++x)
      pred[y * kBlock + x] = ref.at_clamped(x0 + mvx + x, y0 + mvy + y);
}

std::uint32_t block_sad(const Plane& src, int x0, int y0,
                        const std::uint8_t pred[kBlockSize]) {
  std::uint32_t sad = 0;
  for (int y = 0; y < kBlock; ++y) {
    const std::uint8_t* row = src.row(y0 + y) + x0;
    for (int x = 0; x < kBlock; ++x) {
      const int d = static_cast<int>(row[x]) - pred[y * kBlock + x];
      sad += static_cast<std::uint32_t>(d < 0 ? -d : d);
    }
  }
  return sad;
}

MotionResult motion_search(const Plane& src, const Plane& ref, int x0, int y0,
                           int predx, int predy, int range) {
  MotionResult best;
  std::uint8_t pred[kBlockSize];
  for (int dy = -range; dy <= range; ++dy) {
    for (int dx = -range; dx <= range; ++dx) {
      const int mvx = predx + dx, mvy = predy + dy;
      motion_compensate(ref, x0, y0, mvx, mvy, pred);
      const std::uint32_t sad = block_sad(src, x0, y0, pred);
      // Deterministic tie-break: strictly better wins; raster order decides.
      if (sad < best.sad) {
        best.sad = sad;
        best.mvx = mvx;
        best.mvy = mvy;
      }
    }
  }
  return best;
}

}  // namespace tle::videnc
