#include "videnc/frame.hpp"

#include <cmath>

#include "util/rng.hpp"

namespace tle::videnc {

Plane synth_frame(int width, int height, int frame_number, std::uint64_t seed) {
  Plane p(width, height);
  // Per-frame RNG: identical regardless of which thread generates it.
  Xoshiro256 rng(seed * 1000003ULL + static_cast<std::uint64_t>(frame_number));
  const int dx = (frame_number * 3) % width;
  const int dy = (frame_number * 2) % height;
  const int bx = (frame_number * 7) % (width > 32 ? width - 32 : 1);
  const int by = (frame_number * 5) % (height > 32 ? height - 32 : 1);
  for (int y = 0; y < height; ++y) {
    for (int x = 0; x < width; ++x) {
      // A diagonally scrolling gradient...
      int v = ((x + dx) * 2 + (y + dy) * 3) & 0xFF;
      // ...with a bright moving block (motion for inter prediction to find)...
      if (x >= bx && x < bx + 32 && y >= by && y < by + 32) v = (v + 96) & 0xFF;
      // ...and low-amplitude noise so entropy coding has real work.
      v += static_cast<int>(rng.below(8));
      p.set(x, y, static_cast<std::uint8_t>(v > 255 ? 255 : v));
    }
  }
  return p;
}

std::uint64_t plane_sse(const Plane& a, const Plane& b) {
  std::uint64_t sse = 0;
  const int h = a.height(), w = a.width();
  for (int y = 0; y < h; ++y) {
    const std::uint8_t* ra = a.row(y);
    const std::uint8_t* rb = b.row(y);
    for (int x = 0; x < w; ++x) {
      const int d = static_cast<int>(ra[x]) - static_cast<int>(rb[x]);
      sse += static_cast<std::uint64_t>(d * d);
    }
  }
  return sse;
}

double psnr_from_sse(std::uint64_t sse, std::uint64_t samples) {
  if (sse == 0) return 99.0;
  const double mse =
      static_cast<double>(sse) / static_cast<double>(samples ? samples : 1);
  return 10.0 * std::log10(255.0 * 255.0 / mse);
}

}  // namespace tle::videnc
