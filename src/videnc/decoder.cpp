#include "videnc/decoder.hpp"

#include <algorithm>

#include "bzip/bitio.hpp"
#include "videnc/predict.hpp"
#include "videnc/transform.hpp"

namespace tle::videnc {

namespace {

constexpr int kCtu = 16;

struct Cursor {
  const std::uint8_t* data;
  std::size_t size;
  std::size_t pos = 0;

  bool take(std::size_t n, const std::uint8_t** out) {
    if (pos + n > size) return false;
    *out = data + pos;
    pos += n;
    return true;
  }
  bool byte(std::uint8_t* out) {
    const std::uint8_t* p;
    if (!take(1, &p)) return false;
    *out = *p;
    return true;
  }
  bool done() const { return pos == size; }
};

/// Decode one 8x8 block into `recon` at (x0, y0).
bool decode_block(bzip::BitReader& br, Plane& recon, const Plane* ref,
                  bool frame_is_inter, int x0, int y0, std::int32_t step,
                  int min_y, int max_y) {
  std::uint8_t pred[kBlockSize];
  std::uint64_t is_inter = 0;
  if (!br.get(1, &is_inter)) return false;
  if (is_inter) {
    if (!frame_is_inter || !ref) return false;  // inter block in an I-frame
    std::int32_t mvx, mvy;
    if (!get_se(br, &mvx) || !get_se(br, &mvy)) return false;
    motion_compensate(*ref, x0, y0, mvx, mvy, pred);
  } else {
    std::uint64_t mode = 0;
    if (!br.get(2, &mode)) return false;
    intra_predict(recon, x0, y0, static_cast<IntraMode>(mode), pred, min_y,
                  max_y);
  }

  std::int32_t coeffs[kBlockSize];
  if (!entropy_decode_block(br, coeffs)) return false;
  dequantize(coeffs, step);
  std::int16_t rec[kBlockSize];
  idct8x8(coeffs, rec);
  for (int y = 0; y < kBlock; ++y)
    for (int x = 0; x < kBlock; ++x) {
      if (x0 + x >= recon.width() || y0 + y >= recon.height()) continue;
      const int v = pred[y * kBlock + x] + rec[y * kBlock + x];
      recon.set(x0 + x, y0 + y,
                static_cast<std::uint8_t>(v < 0 ? 0 : (v > 255 ? 255 : v)));
    }
  return true;
}

}  // namespace

DecodedVideo decode_video(const std::vector<std::uint8_t>& bitstream,
                          int width, int height) {
  DecodedVideo out;
  if (width <= 0 || height <= 0) {
    out.error = "bad dimensions";
    return out;
  }
  const int cols = (width + kCtu - 1) / kCtu;
  const int rows = (height + kCtu - 1) / kCtu;

  Cursor cur{bitstream.data(), bitstream.size()};
  while (!cur.done()) {
    // Re-take the reference pointer each frame: push_back below may have
    // reallocated the vector.
    const Plane* ref = out.frames.empty() ? nullptr : &out.frames.back();
    std::uint8_t number, qp, intra_flag, slices;
    if (!cur.byte(&number) || !cur.byte(&qp) || !cur.byte(&intra_flag) ||
        !cur.byte(&slices)) {
      out.error = "truncated frame header";
      return out;
    }
    if (slices == 0) {
      out.error = "bad slice count";
      return out;
    }
    const bool frame_is_inter = intra_flag == 0 && ref != nullptr;
    // Balanced slice partition — must mirror the encoder's.
    auto slice_first = [&](int r) {
      for (int s = slices - 1; s > 0; --s)
        if (r >= s * rows / slices) return s * rows / slices;
      return 0;
    };
    auto slice_end = [&](int r) {
      for (int s = slices - 1; s > 0; --s)
        if (r >= s * rows / slices) return (s + 1) * rows / slices;
      return rows / slices;
    };
    const std::int32_t step = quant_step(qp);
    Plane recon(width, height);

    for (int r = 0; r < rows; ++r) {
      std::uint8_t b0, b1, b2;
      if (!cur.byte(&b0) || !cur.byte(&b1) || !cur.byte(&b2)) {
        out.error = "truncated row header";
        return out;
      }
      const std::size_t row_len = static_cast<std::size_t>(b0) |
                                  (static_cast<std::size_t>(b1) << 8) |
                                  (static_cast<std::size_t>(b2) << 16);
      const std::uint8_t* row_bytes;
      if (!cur.take(row_len, &row_bytes)) {
        out.error = "truncated row payload";
        return out;
      }
      bzip::BitReader br(row_bytes, row_len);
      const int y_top = r * kCtu;
      const int y_bot = std::min((r + 1) * kCtu, height);
      const int min_y = slice_first(r) * kCtu;
      const int max_y = std::min(slice_end(r) * kCtu, height);
      for (int c = 0; c < cols; ++c) {
        const int x_left = c * kCtu;
        const int x_right = std::min((c + 1) * kCtu, width);
        for (int y0 = y_top; y0 < y_bot; y0 += kBlock)
          for (int x0 = x_left; x0 < x_right; x0 += kBlock)
            if (!decode_block(br, recon, ref, frame_is_inter, x0, y0, step,
                              min_y, max_y)) {
              out.error = "malformed block stream (frame " +
                          std::to_string(number) + ")";
              return out;
            }
      }
    }
    out.frames.push_back(std::move(recon));
  }
  out.ok = true;
  return out;
}

}  // namespace tle::videnc
