// Bitstream decoder for videnc streams.
//
// The encoder writes full prediction side-info (intra mode or motion
// vector per 8x8 block), so the stream is completely decodable: this
// decoder replays the prediction decisions serially in raster order and
// reproduces the encoder's reconstruction planes BIT-EXACTLY — the
// strongest possible end-to-end check of the parallel encoder (any
// wavefront ordering bug, torn recon write, or entropy desync breaks the
// equality).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "videnc/frame.hpp"

namespace tle::videnc {

struct DecodedVideo {
  bool ok = false;
  std::string error;
  std::vector<Plane> frames;  ///< reconstructed planes, in frame order
};

/// Decode a bitstream produced by encode()/encode_planes(). `width` and
/// `height` must match the encoder configuration.
DecodedVideo decode_video(const std::vector<std::uint8_t>& bitstream,
                          int width, int height);

}  // namespace tle::videnc
