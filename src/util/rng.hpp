// Small, fast, deterministic RNGs for workload generation.
//
// Benchmarks and tests must be reproducible across runs, so everything is
// seeded explicitly; nothing reads the wall clock.
#pragma once

#include <cstdint>

namespace tle {

/// splitmix64: used to expand a user seed into well-mixed state.
inline std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// xoshiro256** — the workhorse generator. Satisfies the subset of
/// UniformRandomBitGenerator the code needs.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x1234abcdULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    for (auto& word : s_) word = splitmix64(seed);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). Bound must be nonzero.
  std::uint64_t below(std::uint64_t bound) noexcept {
    // Lemire's multiply-shift; bias is negligible for bench purposes.
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(operator()()) * bound) >> 64);
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>(operator()() >> 11) * 0x1.0p-53;
  }

  /// True with probability `p`.
  bool chance(double p) noexcept { return uniform() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

}  // namespace tle
