// Running statistics and fixed-bucket histograms for benchmark reporting.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

namespace tle {

/// Streaming mean / min / max / stddev (Welford).
class RunningStat {
 public:
  void add(double x) noexcept {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  std::uint64_t count() const noexcept { return n_; }
  double mean() const noexcept { return mean_; }
  double min() const noexcept { return n_ ? min_ : 0.0; }
  double max() const noexcept { return n_ ? max_ : 0.0; }
  double variance() const noexcept {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const noexcept { return std::sqrt(variance()); }

  void merge(const RunningStat& other) noexcept {
    if (other.n_ == 0) return;
    if (n_ == 0) {
      *this = other;
      return;
    }
    const double total = static_cast<double>(n_ + other.n_);
    const double delta = other.mean_ - mean_;
    m2_ += other.m2_ + delta * delta * static_cast<double>(n_) *
                           static_cast<double>(other.n_) / total;
    mean_ += delta * static_cast<double>(other.n_) / total;
    n_ += other.n_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 1e300;
  double max_ = -1e300;
};

/// Power-of-two bucketed histogram (bucket i counts values in [2^i, 2^(i+1))).
class Log2Histogram {
 public:
  static constexpr int kBuckets = 64;

  void add(std::uint64_t v) noexcept {
    const int b = v == 0 ? 0 : 64 - __builtin_clzll(v);
    ++buckets_[std::min(b, kBuckets - 1)];
    ++total_;
  }

  std::uint64_t total() const noexcept { return total_; }
  std::uint64_t bucket(int i) const noexcept { return buckets_[i]; }

  /// Approximate quantile (returns upper bound of the containing bucket).
  std::uint64_t quantile(double q) const noexcept {
    std::uint64_t target = static_cast<std::uint64_t>(q * static_cast<double>(total_));
    std::uint64_t seen = 0;
    for (int i = 0; i < kBuckets; ++i) {
      seen += buckets_[i];
      if (seen > target) return i >= 63 ? ~0ULL : (1ULL << i);
    }
    return ~0ULL;
  }

 private:
  std::uint64_t buckets_[kBuckets] = {};
  std::uint64_t total_ = 0;
};

}  // namespace tle
