// A reusable sense-reversing barrier that yields while waiting.
//
// std::barrier spins aggressively in some libstdc++ versions; on the
// oversubscribed single-core machines this repo targets, yielding is
// essential for forward progress in benchmarks.
#pragma once

#include <atomic>
#include <cstddef>

#include "util/align.hpp"

namespace tle {

class SpinBarrier {
 public:
  explicit SpinBarrier(std::size_t parties) noexcept
      : parties_(parties), remaining_(parties) {}

  SpinBarrier(const SpinBarrier&) = delete;
  SpinBarrier& operator=(const SpinBarrier&) = delete;

  /// Blocks until `parties` threads have arrived; reusable across phases.
  void arrive_and_wait() noexcept {
    const bool my_sense = !sense_.load(std::memory_order_relaxed);
    if (remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      remaining_.store(parties_, std::memory_order_relaxed);
      sense_.store(my_sense, std::memory_order_release);
    } else {
      unsigned spin = 0;
      while (sense_.load(std::memory_order_acquire) != my_sense) spin_pause(spin++);
    }
  }

 private:
  const std::size_t parties_;
  std::atomic<std::size_t> remaining_;
  std::atomic<bool> sense_{false};
};

}  // namespace tle
