// Plain-text table printer used by the benchmark harnesses to emit
// paper-style result tables.
#pragma once

#include <cstdarg>
#include <cstdio>
#include <string>
#include <vector>

namespace tle {

/// Accumulates rows of strings and prints them with aligned columns.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header) : header_(std::move(header)) {}

  void add_row(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

  /// Render to a string (columns padded with two-space gutters).
  std::string render() const {
    std::vector<std::size_t> width(header_.size(), 0);
    auto widen = [&](const std::vector<std::string>& cells) {
      for (std::size_t i = 0; i < cells.size() && i < width.size(); ++i)
        if (cells[i].size() > width[i]) width[i] = cells[i].size();
    };
    widen(header_);
    for (const auto& r : rows_) widen(r);

    std::string out;
    auto emit = [&](const std::vector<std::string>& cells) {
      for (std::size_t i = 0; i < width.size(); ++i) {
        const std::string& c = i < cells.size() ? cells[i] : std::string();
        out += c;
        out.append(width[i] - c.size() + 2, ' ');
      }
      while (!out.empty() && out.back() == ' ') out.pop_back();
      out += '\n';
    };
    emit(header_);
    std::vector<std::string> rule;
    rule.reserve(width.size());
    for (std::size_t w : width) rule.emplace_back(w, '-');
    emit(rule);
    for (const auto& r : rows_) emit(r);
    return out;
  }

  void print() const { std::fputs(render().c_str(), stdout); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// printf-style helper that returns std::string (for table cells).
inline std::string strf(const char* fmt, ...) __attribute__((format(printf, 1, 2)));
inline std::string strf(const char* fmt, ...) {
  char buf[256];
  va_list ap;
  va_start(ap, fmt);
  const int n = std::vsnprintf(buf, sizeof buf, fmt, ap);
  va_end(ap);
  return std::string(buf, buf + (n < 0 ? 0 : (n >= static_cast<int>(sizeof buf) ? static_cast<int>(sizeof buf) - 1 : n)));
}

}  // namespace tle
