// Cache-line aware building blocks shared by every module.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <thread>

namespace tle {

/// Size every concurrency-facing slot is padded to. 64 bytes on x86;
/// 128 would also cover adjacent-line prefetching, but 64 matches the
/// hardware the paper used and keeps tables compact.
inline constexpr std::size_t kCacheLine = 64;

/// An atomic counter padded to a full cache line so that per-thread slots
/// in global registries never false-share.
template <typename T>
struct alignas(kCacheLine) PaddedAtomic {
  std::atomic<T> value{};

  // Padding to a full line; alignas alone fixes the start address, the
  // explicit pad fixes the footprint inside arrays.
  char pad_[kCacheLine - sizeof(std::atomic<T>) % kCacheLine];

  T load(std::memory_order mo = std::memory_order_seq_cst) const noexcept {
    return value.load(mo);
  }
  void store(T v, std::memory_order mo = std::memory_order_seq_cst) noexcept {
    value.store(v, mo);
  }
};

/// Plain padded value (non-atomic), for per-thread scratch in arrays.
template <typename T>
struct alignas(kCacheLine) Padded {
  T value{};
  char pad_[(sizeof(T) % kCacheLine) ? kCacheLine - sizeof(T) % kCacheLine : kCacheLine];
};

/// Polite busy-wait step: on the single-core containers this repo often runs
/// in, pure spinning deadlocks progress, so after a few pause iterations we
/// yield to the scheduler.
inline void spin_pause(unsigned iteration) noexcept {
  if (iteration < 4) {
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#endif
  } else {
    std::this_thread::yield();
  }
}

}  // namespace tle
