// Wall-clock timing helpers.
#pragma once

#include <chrono>
#include <cstdint>

namespace tle {

/// Monotonic stopwatch used by benchmarks and the quiescence-wait counters.
class Stopwatch {
 public:
  Stopwatch() noexcept : start_(clock::now()) {}

  void reset() noexcept { start_ = clock::now(); }

  double seconds() const noexcept {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  std::uint64_t nanos() const noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() - start_)
            .count());
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Nanoseconds since an arbitrary epoch; cheap enough for per-event stamps.
inline std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace tle
