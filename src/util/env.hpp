// Environment-variable knobs for scaling benchmark workloads.
#pragma once

#include <cstdlib>
#include <string>

namespace tle {

/// Read an integer knob from the environment, falling back to `def`.
inline long env_long(const char* name, long def) {
  const char* v = std::getenv(name);
  if (!v || !*v) return def;
  char* end = nullptr;
  const long x = std::strtol(v, &end, 10);
  return (end && *end == '\0') ? x : def;
}

inline double env_double(const char* name, double def) {
  const char* v = std::getenv(name);
  if (!v || !*v) return def;
  char* end = nullptr;
  const double x = std::strtod(v, &end);
  return (end && *end == '\0') ? x : def;
}

inline std::string env_str(const char* name, const char* def) {
  const char* v = std::getenv(name);
  return v && *v ? std::string(v) : std::string(def);
}

}  // namespace tle
