// The serial/irrevocability lock — the mechanism GCC's libitm uses both for
// synchronized-block irrevocability and for its serialize-on-repeated-abort
// progress guarantee (paper Section II-B), and the fallback path of TLE with
// (simulated) HTM.
//
// Structure: a distributed reader–writer lock. Every speculative transaction
// holds the read side for its whole duration via a per-thread flag in its
// registry slot (so uncontended entry is a single store + load, no shared
// cache-line ping-pong). A transaction that must run irrevocably takes the
// write side, which (a) publishes a "pending" bit that running speculative
// transactions poll on every access — aborting them promptly, the analog of
// TSX's lock-subscription abort — and (b) waits for every reader flag to
// drop before proceeding in full isolation.
#pragma once

#include <atomic>
#include <cstdint>

#include "tm/registry.hpp"

namespace tle {

class SerialLock {
 public:
  /// Enter the read side (speculative transaction begin). Blocks while a
  /// writer is pending or active.
  void read_lock(ThreadSlot& me) noexcept {
    for (unsigned spin = 0;;) {
      me.sl_reader.store(1, std::memory_order_seq_cst);
      // pending_ stays nonzero for the full pending+active writer window.
      if (pending_.load(std::memory_order_seq_cst) == 0) return;
      // A writer is pending/active: back out and wait politely.
      me.sl_reader.store(0, std::memory_order_seq_cst);
      while (pending_.load(std::memory_order_acquire) != 0) spin_pause(spin++);
    }
  }

  void read_unlock(ThreadSlot& me) noexcept {
    me.sl_reader.store(0, std::memory_order_release);
  }

  /// Acquire the write side. Caller must NOT hold the read side.
  void write_lock(ThreadSlot& me) noexcept {
    pending_.fetch_add(1, std::memory_order_seq_cst);
    // Compete for the writer token.
    unsigned spin = 0;
    std::uint32_t expected = 0;
    while (!writer_.compare_exchange_weak(expected, 1,
                                          std::memory_order_acq_rel)) {
      expected = 0;
      spin_pause(spin++);
    }
    // Wait for every reader to drain. New readers see pending/writer via
    // state_ and stay out.
    const int hw = slot_high_water();
    ThreadSlot* slots = slot_table();
    for (int i = 0; i < hw; ++i) {
      if (&slots[i] == &me) continue;
      unsigned s = 0;
      while (slots[i].sl_reader.load(std::memory_order_seq_cst) != 0)
        spin_pause(s++);
    }
  }

  void write_unlock(ThreadSlot&) noexcept {
    writer_.store(0, std::memory_order_release);
    pending_.fetch_sub(1, std::memory_order_release);
  }

  /// Polled by speculative transactions on every access: true if they should
  /// abort to let a serial transaction through.
  bool serial_requested() const noexcept {
    return pending_.load(std::memory_order_relaxed) != 0;
  }

  bool writer_active() const noexcept {
    return writer_.load(std::memory_order_acquire) != 0;
  }

 private:
  alignas(kCacheLine) std::atomic<std::uint32_t> pending_{0};
  alignas(kCacheLine) std::atomic<std::uint32_t> writer_{0};
};

/// The process-wide serial lock (defined in runtime.cpp).
SerialLock& serial_lock() noexcept;

}  // namespace tle
