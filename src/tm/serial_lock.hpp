// The serial/irrevocability lock — the mechanism GCC's libitm uses both for
// synchronized-block irrevocability and for its serialize-on-repeated-abort
// progress guarantee (paper Section II-B), and the fallback path of TLE with
// (simulated) HTM.
//
// Structure: a distributed reader–writer lock. Every speculative transaction
// holds the read side for its whole duration via a per-thread flag in its
// registry slot (so uncontended entry is a single store + load, no shared
// cache-line ping-pong). A transaction that must run irrevocably takes the
// write side, which (a) publishes a "pending" bit that running speculative
// transactions poll on every access — aborting them promptly, the analog of
// TSX's lock-subscription abort — and (b) waits for every reader flag to
// drop before proceeding in full isolation.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>

#include "tm/fault/fault.hpp"
#include "tm/obs/site.hpp"
#include "tm/registry.hpp"
#include "util/timing.hpp"

namespace tle {

class SerialLock {
 public:
  /// Enter the read side (speculative transaction begin). Blocks while a
  /// writer is pending or active. Waiting is spin-then-park: after the
  /// bounded spin, excluded readers sleep on `pending_`, which every
  /// write_unlock changes (fetch_sub) and notifies when `rd_parked_` is up.
  void read_lock(ThreadSlot& me) noexcept {
    for (;;) {
      me.sl_reader.store(1, std::memory_order_seq_cst);
      // pending_ stays nonzero for the full pending+active writer window.
      if (pending_.load(std::memory_order_seq_cst) == 0) return;
      // A writer is pending/active: back out and wait politely. The
      // back-out must mirror read_unlock: a draining writer may already
      // have parked on our sl_reader (it saw the store above), so the
      // plain store alone would never wake it — missed-wakeup deadlock.
      // Perturbation point: holding the raised flag here gives a draining
      // writer time to pass its spin limit and park on it, making that
      // missed-wakeup interleaving deterministically reachable.
      if (fault::active() && fault::perturb(fault::Hook::SlReadBackout))
        me.stats.bump(me.stats.fault_delays);
      read_unlock(me);
      unsigned spin = 0;
      const unsigned spin_limit = config().park_spin_limit;
      for (;;) {
        const std::uint32_t p = pending_.load(std::memory_order_acquire);
        if (p == 0) break;
        if (spin < spin_limit) {
          spin_pause(spin++);
          continue;
        }
        // Park until pending_ moves. Dekker with write_unlock: raise
        // rd_parked_, re-read pending_ at seq_cst, then sleep — the
        // unlocking writer's fetch_sub precedes its rd_parked_ load, so
        // one side always sees the other. Any pending_ change wakes us;
        // the outer loop re-checks for zero.
        rd_parked_.fetch_add(1, std::memory_order_seq_cst);
        if (pending_.load(std::memory_order_seq_cst) == p) {
          me.stats.bump(me.stats.parked_waits);
          pending_.wait(p, std::memory_order_seq_cst);
        }
        rd_parked_.fetch_sub(1, std::memory_order_seq_cst);
      }
    }
  }

  /// Non-blocking read-side entry for HTM begin. Real hardware elision
  /// subscribes to the fallback lock inside the transaction: a pending or
  /// active serial writer aborts the speculative attempt immediately rather
  /// than being waited out. Returns false (after backing the reader flag
  /// out) when a writer holds or has requested the lock.
  bool try_read_lock(ThreadSlot& me) noexcept {
    me.sl_reader.store(1, std::memory_order_seq_cst);
    if (pending_.load(std::memory_order_seq_cst) == 0) return true;
    read_unlock(me);
    return false;
  }

  void read_unlock(ThreadSlot& me) noexcept {
    // seq_cst, not release: the Dekker edge with a draining writer's park
    // in write_lock — either this store is visible to the writer's re-read
    // of sl_reader after it raised me.parked, or the load below sees the
    // raised counter and notifies.
    me.sl_reader.store(0, std::memory_order_seq_cst);
    if (me.parked.load(std::memory_order_seq_cst) != 0)
      me.sl_reader.notify_all();
  }

  /// Acquire the write side. Caller must NOT hold the read side.
  void write_lock(ThreadSlot& me) noexcept {
    // Metrics gauges (wait/hold time) are stamped only while kMetricsBit is
    // set, so the dark path pays the one relaxed flag load and nothing else.
    const bool metered = obs::flags() & obs::kMetricsBit;
    const std::uint64_t wait_t0 = metered ? now_ns() : 0;
    pending_.fetch_add(1, std::memory_order_seq_cst);
    const unsigned spin_limit = config().park_spin_limit;
    // Compete for the writer token; losers park on writer_ (write_unlock
    // zeroes and notifies it unconditionally — writer handoff is rare).
    unsigned spin = 0;
    for (;;) {
      std::uint32_t expected = 0;
      if (writer_.compare_exchange_weak(expected, 1,
                                        std::memory_order_acq_rel))
        break;
      if (spin < spin_limit) {
        spin_pause(spin++);
        continue;
      }
      wr_parked_.fetch_add(1, std::memory_order_seq_cst);
      const std::uint32_t w = writer_.load(std::memory_order_seq_cst);
      if (w != 0) {
        me.stats.bump(me.stats.parked_waits);
        writer_.wait(w, std::memory_order_seq_cst);
      }
      wr_parked_.fetch_sub(1, std::memory_order_seq_cst);
    }
    // Wait for every reader to drain; new readers see pending_ and stay
    // out. Per straggler: bounded spin, then park on its sl_reader flag
    // (read_unlock notifies when the slot's parked counter is raised).
    const int hw = slot_high_water();
    ThreadSlot* slots = slot_table();
    for (int i = 0; i < hw; ++i) {
      if (&slots[i] == &me) continue;
      unsigned s = 0;
      while (slots[i].sl_reader.load(std::memory_order_seq_cst) != 0) {
        if (s < spin_limit) {
          spin_pause(s++);
          continue;
        }
        // Perturbation point: a delay between raising parked and the
        // re-read stretches the Dekker window against a backing-out reader.
        if (fault::active() && fault::perturb(fault::Hook::SlWriteDrain))
          me.stats.bump(me.stats.fault_delays);
        slots[i].parked.fetch_add(1, std::memory_order_seq_cst);
        if (slots[i].sl_reader.load(std::memory_order_seq_cst) != 0) {
          me.stats.bump(me.stats.parked_waits);
          slots[i].sl_reader.wait(1, std::memory_order_seq_cst);
        }
        slots[i].parked.fetch_sub(1, std::memory_order_seq_cst);
      }
    }
    if (metered) {
      const std::uint64_t now = now_ns();
      wr_wait_ns_.fetch_add(now - wait_t0, std::memory_order_relaxed);
      wr_acquires_.fetch_add(1, std::memory_order_relaxed);
      wr_held_since_.store(now, std::memory_order_relaxed);
    }
  }

  void write_unlock(ThreadSlot& me) noexcept {
    // Hold time closes against the stamp write_lock left (0 when metrics
    // were off at acquisition — then the hold is simply not accounted).
    const std::uint64_t since =
        wr_held_since_.load(std::memory_order_relaxed);
    if (since) {
      wr_hold_ns_.fetch_add(now_ns() - since, std::memory_order_relaxed);
      wr_held_since_.store(0, std::memory_order_relaxed);
    }
    writer_.store(0, std::memory_order_seq_cst);
    if (wr_parked_.load(std::memory_order_seq_cst) != 0) writer_.notify_all();
    // Perturbation point: between the writer-token release and the pending_
    // drop, a successor writer can take the token while excluded readers
    // still see pending_ != 0 — the handoff window the Dekker edges below
    // must survive.
    if (fault::active() && fault::perturb(fault::Hook::SlWriteUnlock))
      me.stats.bump(me.stats.fault_delays);
    pending_.fetch_sub(1, std::memory_order_seq_cst);
    if (rd_parked_.load(std::memory_order_seq_cst) != 0)
      pending_.notify_all();
  }

  /// Governor drain wait: block (without joining the read side) until the
  /// pending+active writer window clears or `timeout_ns` elapses. Waiting is
  /// a bounded spin followed by short timed sleeps — atomic::wait has no
  /// deadline in C++20, and the serial window we are waiting out lasts
  /// microseconds to scheduler quanta, so 50 µs slices lose nothing. Returns
  /// true iff pending_ reached zero; `waited_ns` (if non-null) receives the
  /// measured wait for the caller's stall accounting.
  bool wait_drained(std::uint64_t timeout_ns,
                    std::uint64_t* waited_ns = nullptr) noexcept {
    if (pending_.load(std::memory_order_acquire) == 0) {
      if (waited_ns) *waited_ns = 0;
      return true;
    }
    const std::uint64_t t0 = now_ns();
    const unsigned spin_limit = config().park_spin_limit;
    unsigned spin = 0;
    bool drained = false;
    for (;;) {
      if (pending_.load(std::memory_order_acquire) == 0) {
        drained = true;
        break;
      }
      if (now_ns() - t0 >= timeout_ns) break;
      if (spin < spin_limit) {
        spin_pause(spin++);
        continue;
      }
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
    if (waited_ns) *waited_ns = now_ns() - t0;
    return drained;
  }

  /// Polled by speculative transactions on every access: true if they should
  /// abort to let a serial transaction through.
  bool serial_requested() const noexcept {
    return pending_.load(std::memory_order_relaxed) != 0;
  }

  bool writer_active() const noexcept {
    return writer_.load(std::memory_order_acquire) != 0;
  }

  // --- interval-metrics gauges (obs/metrics.cpp) -------------------------
  // Write-side totals, covering only periods when obs::kMetricsBit was set
  // at acquisition. All relaxed: cold path + sampler reads.

  /// Cumulative time writers spent acquiring (pending -> all readers out).
  std::uint64_t write_wait_ns_total() const noexcept {
    return wr_wait_ns_.load(std::memory_order_relaxed);
  }

  /// Cumulative time the write side was held.
  std::uint64_t write_hold_ns_total() const noexcept {
    return wr_hold_ns_.load(std::memory_order_relaxed);
  }

  /// Metered write-side acquisitions.
  std::uint64_t write_acquires() const noexcept {
    return wr_acquires_.load(std::memory_order_relaxed);
  }

  /// now_ns() stamp of the current writer's acquisition, 0 when free (or
  /// when the hold is unmetered).
  std::uint64_t write_held_since_ns() const noexcept {
    return wr_held_since_.load(std::memory_order_relaxed);
  }

 private:
  alignas(kCacheLine) std::atomic<std::uint32_t> pending_{0};
  alignas(kCacheLine) std::atomic<std::uint32_t> writer_{0};
  /// Readers parked on pending_ / writers parked on writer_. Checked by the
  /// corresponding unlock before notify_all so the uncontended paths stay
  /// syscall-free.
  alignas(kCacheLine) std::atomic<std::uint32_t> rd_parked_{0};
  std::atomic<std::uint32_t> wr_parked_{0};

  // Metrics accumulators (see accessors above). Cold: touched only on the
  // serial write path while metering is on, read by the sampler.
  std::atomic<std::uint64_t> wr_wait_ns_{0};
  std::atomic<std::uint64_t> wr_hold_ns_{0};
  std::atomic<std::uint64_t> wr_acquires_{0};
  std::atomic<std::uint64_t> wr_held_since_{0};
};

/// The process-wide serial lock (defined in runtime.cpp).
SerialLock& serial_lock() noexcept;

}  // namespace tle
