// Per-site transaction profiling: static TxSite descriptors registered at
// lock-elision entry points, per-thread × per-site counters, and the shared
// observability flag word.
//
// Cost model: when nothing is enabled the engine pays exactly one relaxed
// load of the flag word per event site (obs::flags(), which also gates the
// flight recorder — tracing and profiling share the word). When profiling is
// on, counter bumps are owner-thread relaxed fetch_adds into a lazily
// allocated per-slot table, so there is no cross-thread contention on the
// hot path; aggregation (export.hpp) reads the tables concurrently.
#pragma once

#include <atomic>
#include <cstdint>

#include "tm/config.hpp"
#include "tm/obs/histogram.hpp"

namespace tle::obs {

/// Capacity of the static site registry. Id 0 is reserved for "(unnamed)"
/// top-level sections (and absorbs registrations past the cap).
inline constexpr int kMaxSites = 128;

// ---------------------------------------------------------------------------
// Shared observability flags (one word gates both subsystems)
// ---------------------------------------------------------------------------

inline constexpr std::uint32_t kTraceBit = 1u;    ///< flight recorder on
inline constexpr std::uint32_t kProfileBit = 2u;  ///< per-site profiling on
inline constexpr std::uint32_t kMetricsBit = 4u;  ///< interval metrics on

namespace detail {
extern std::atomic<std::uint32_t> g_flags;
}

/// The one relaxed load every engine event site pays when idle.
inline std::uint32_t flags() noexcept {
  return detail::g_flags.load(std::memory_order_relaxed);
}

inline bool profiling_enabled() noexcept { return flags() & kProfileBit; }

void set_flag(std::uint32_t bit, bool on) noexcept;

/// Turn per-site profiling on/off (trace::enable drives the other bit).
inline void profile_enable(bool on) noexcept { set_flag(kProfileBit, on); }

// ---------------------------------------------------------------------------
// Site registry
// ---------------------------------------------------------------------------

/// A named lock-elision entry point. Construct through TLE_TX_SITE so each
/// lexical site registers exactly once (function-local static) and carries
/// its file:line provenance.
struct TxSite {
  std::uint16_t id;
  TxSite(const char* name, const char* file, int line) noexcept;
};

struct SiteInfo {
  const char* name;
  const char* file;
  int line;
};

/// Number of registered sites including the reserved id 0.
int site_count() noexcept;

/// Registrations that arrived after the registry filled and were folded
/// into id 0. Surfaces in aggregate_stats() as obs_site_overflow and as a
/// warning line in StatsSnapshot::report(); never reset (the registry stays
/// full for the life of the process).
std::uint64_t site_overflow_count() noexcept;

/// Descriptor for a registered site id (valid for 0 <= id < site_count()).
SiteInfo site_info(int id) noexcept;

// ---------------------------------------------------------------------------
// Per-thread × per-site counters
// ---------------------------------------------------------------------------

struct SiteCounters {
  using Counter = std::atomic<std::uint64_t>;

  Counter attempts{0};          ///< speculative begins at this site
  Counter commits{0};           ///< speculative commits
  Counter serial_fallbacks{0};  ///< gave up speculating, took the token
  Counter serial_commits{0};    ///< irrevocable executions completed
  Counter lock_sections{0};     ///< runs under the real lock (Lock mode)
  Counter htm_retries{0};       ///< HTM re-attempts after an abort
  Counter quiesce_waits{0};     ///< post-commit quiesces that blocked
  Counter drain_waits{0};       ///< governor serial-pending drain waits
  Counter storm_gated{0};       ///< attempts held at the abort-storm gate
  Counter watchdog_escalations{0};  ///< starvation escalations to serial
  Counter stripe_bumps{0};          ///< commit stripes acquired by commits
  Counter stripe_false_revalidations{0};  ///< stripe moved, values unchanged
  Counter lazy_sub_commits{0};      ///< commits under lazy subscription
  Counter tictoc_extensions{0};       ///< tictoc rts CAS extensions
  Counter tictoc_extension_fails{0};  ///< tictoc extensions failed: value changed
  Counter tictoc_wts_waits{0};        ///< tictoc bounded waits on a locked orec
  Counter tictoc_lock_timeouts{0};    ///< tictoc lock waits that expired
  Counter htm_routed_frees{0};    ///< serial-exit frees limbo-routed: HTM risk
  Counter priv_limbo_routed{0};   ///< tm_private_free blocks parked in limbo
  Counter audit_hazard_arms{0};   ///< §IV-C hazards armed by this site's commits
  Counter aborts[static_cast<int>(AbortCause::kCount)] = {};

  LatencyHist attempt_ns;  ///< duration of each attempt (commit or abort)
  LatencyHist quiesce_ns;  ///< commit-to-quiesce-completion time
};

/// The calling slot's site-counter table, allocated on first use (never
/// freed: slots are recycled across threads, like ThreadSlot::stats).
SiteCounters* thread_site_table(int slot) noexcept;

/// Table for `slot` if it has one, else nullptr (aggregation-side accessor).
SiteCounters* peek_site_table(int slot) noexcept;

inline SiteCounters& site_counters(int slot, std::uint16_t site) noexcept {
  return thread_site_table(slot)[site < kMaxSites ? site : 0];
}

/// Zero every allocated table (benchmark harnesses; not thread-safe against
/// concurrent profiled transactions producing exact totals, same caveat as
/// reset_stats()).
void reset_site_profiles() noexcept;

}  // namespace tle::obs

/// Expands to a reference to this lexical site's registered descriptor.
/// Usage: tle::critical(m, TLE_TX_SITE("videnc/claim_row"), [&](auto& tx) ...)
#define TLE_TX_SITE(name_literal)                              \
  ([]() noexcept -> const ::tle::obs::TxSite& {                \
    static const ::tle::obs::TxSite tle_site_{                 \
        name_literal, __FILE__, __LINE__};                     \
    return tle_site_;                                          \
  }())
