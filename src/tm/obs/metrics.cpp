// Windowed-metrics delta engine: snapshots the per-slot × per-site counter
// tables and the process TxStats at every tick, diffs them against the
// previous tick, samples the health gauges, and retains the windows in a
// ring. The engine's hot paths are untouched — everything here is
// sampler-side reads of counters the profiler already maintains.
#include "tm/obs/metrics.hpp"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <memory>
#include <mutex>

#include "tm/control/control.hpp"
#include "tm/governor/governor.hpp"
#include "tm/obs/export.hpp"
#include "tm/registry.hpp"
#include "tm/serial_lock.hpp"
#include "util/timing.hpp"

namespace tle::obs {

namespace {

void append_fmt(std::string& out, const char* fmt, ...) {
  char buf[512];
  va_list ap;
  va_start(ap, fmt);
  const int n = std::vsnprintf(buf, sizeof buf, fmt, ap);
  va_end(ap);
  if (n > 0) out.append(buf, buf + std::min<int>(n, sizeof buf - 1));
}

std::string json_escape(const char* s) {
  std::string out;
  for (; s && *s; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\')
      (out += '\\') += c;
    else if (static_cast<unsigned char>(c) < 0x20)
      append_fmt(out, "\\u%04x", c);
    else
      out += c;
  }
  return out;
}

/// Saturating delta that survives a mid-run counter reset: a current value
/// below the baseline means the counter restarted from zero, so the whole
/// current value is the interval's activity.
std::uint64_t delta(std::uint64_t cur, std::uint64_t prev) noexcept {
  return cur >= prev ? cur - prev : cur;
}

/// Flat per-site snapshot — only the fields the windows expose.
struct SiteSnap {
  std::uint64_t attempts = 0;
  std::uint64_t commits = 0;
  std::uint64_t serial_fallbacks = 0;
  std::uint64_t serial_commits = 0;
  std::uint64_t htm_retries = 0;
  std::uint64_t drain_waits = 0;
  std::uint64_t storm_gated = 0;
  std::uint64_t watchdog_escalations = 0;
  std::uint64_t aborts[kAbortCauseCount] = {};
  std::uint64_t hist[LatencyHist::kBuckets] = {};
};

std::uint64_t ld(const std::atomic<std::uint64_t>& c) noexcept {
  return c.load(std::memory_order_relaxed);
}

/// Sum every slot's table into `out[0..kMaxSites)` (all sites, unfiltered —
/// the delta engine needs stable indexing, unlike collect_site_profiles).
void collect_sites(SiteSnap* out) {
  for (int id = 0; id < kMaxSites; ++id) out[id] = SiteSnap{};
  const int hw = slot_high_water();
  for (int s = 0; s < hw; ++s) {
    const SiteCounters* t = peek_site_table(s);
    if (!t) continue;
    for (int id = 0; id < kMaxSites; ++id) {
      const SiteCounters& c = t[id];
      SiteSnap& o = out[id];
      o.attempts += ld(c.attempts);
      o.commits += ld(c.commits);
      o.serial_fallbacks += ld(c.serial_fallbacks);
      o.serial_commits += ld(c.serial_commits);
      o.htm_retries += ld(c.htm_retries);
      o.drain_waits += ld(c.drain_waits);
      o.storm_gated += ld(c.storm_gated);
      o.watchdog_escalations += ld(c.watchdog_escalations);
      for (int a = 0; a < kAbortCauseCount; ++a) o.aborts[a] += ld(c.aborts[a]);
      for (int b = 0; b < LatencyHist::kBuckets; ++b)
        o.hist[b] += ld(c.attempt_ns.buckets[b]);
    }
  }
}

struct State {
  std::mutex mu;
  bool baselined = false;
  std::unique_ptr<SiteSnap[]> prev_sites{new SiteSnap[kMaxSites]};
  std::unique_ptr<SiteSnap[]> cur_sites{new SiteSnap[kMaxSites]};
  StatsSnapshot prev_stats;
  std::uint64_t prev_serial_hold = 0;
  std::uint64_t prev_serial_wait = 0;
  std::uint64_t prev_grace_scan = 0;
  std::uint64_t next_index = 0;
  std::uint64_t last_tick_ns = 0;
  std::uint64_t ctl_decisions_seen = 0;  ///< decisions_since() cursor
  std::vector<MetricsWindow> ring;
  std::atomic<bool> deterministic{false};
};

// Heap-allocated, never destroyed: ticks may run from atexit handlers and
// from the sampler thread during shutdown, after static destructors of
// other objects would already have fired.
State& state() {
  static State* s = new State();
  return *s;
}

void rebaseline_locked(State& st) {
  collect_sites(st.prev_sites.get());
  st.prev_stats = aggregate_stats();
  SerialLock& sl = serial_lock();
  st.prev_serial_hold = sl.write_hold_ns_total();
  st.prev_serial_wait = sl.write_wait_ns_total();
  st.prev_grace_scan = grace_state().scan_ns_total.load(std::memory_order_relaxed);
  st.last_tick_ns = st.deterministic.load(std::memory_order_relaxed)
                        ? 0
                        : now_ns();
  st.baselined = true;
}

void fill_gauges(State& st, MetricsWindow& w, bool det) {
  MetricsGauges& g = w.gauges;
  const int hw = slot_high_water();
  ThreadSlot* slots = slot_table();
  const std::uint64_t now = det ? 0 : now_ns();
  for (int i = 0; i < hw; ++i) {
    if (slots[i].seq.load(std::memory_order_relaxed) & 1) {
      ++g.inflight_txns;
      if (!det) {
        const std::uint64_t t0 =
            slots[i].txn_begin_ns.load(std::memory_order_relaxed);
        if (t0 && now > t0) g.oldest_txn_age_ns =
            std::max(g.oldest_txn_age_ns, now - t0);
      }
    }
    g.limbo_pending += slots[i].limbo_pending.load(std::memory_order_relaxed);
  }
  g.storm_active = gov::storm_active();
  g.storm_inflight = gov::storm_inflight();
  if (!det) {
    GraceState& gs = grace_state();
    g.grace_last_scan_ns = gs.last_scan_ns.load(std::memory_order_relaxed);
    const std::uint64_t scan_total =
        gs.scan_ns_total.load(std::memory_order_relaxed);
    g.grace_scan_ns = delta(scan_total, st.prev_grace_scan);
    st.prev_grace_scan = scan_total;
    SerialLock& sl = serial_lock();
    const std::uint64_t hold = sl.write_hold_ns_total();
    const std::uint64_t wait = sl.write_wait_ns_total();
    g.serial_hold_ns = delta(hold, st.prev_serial_hold);
    g.serial_wait_ns = delta(wait, st.prev_serial_wait);
    st.prev_serial_hold = hold;
    st.prev_serial_wait = wait;
    const std::uint64_t since = sl.write_held_since_ns();
    if (since && now > since) g.serial_held_age_ns = now - since;
    g.gov_abort_rate = gov::abort_rate_estimate();
  }
}

MetricsWindow tick_locked(State& st, bool final_flush) {
  if (!st.baselined) rebaseline_locked(st);
  const bool det = st.deterministic.load(std::memory_order_relaxed);

  MetricsWindow w;
  w.index = st.next_index++;
  w.deterministic = det;
  w.final_flush = final_flush;
  w.t_start_ns = st.last_tick_ns;
  w.t_end_ns = det ? 0 : now_ns();
  st.last_tick_ns = w.t_end_ns;

  // Process-level TxStats deltas.
  const StatsSnapshot cur = aggregate_stats();
  const StatsSnapshot& prev = st.prev_stats;
  w.txn_starts = delta(cur.txn_starts, prev.txn_starts);
  w.commits = delta(cur.commits, prev.commits);
  w.aborts = delta(cur.aborts_total(), prev.aborts_total());
  w.serial_commits = delta(cur.serial_commits, prev.serial_commits);
  w.serial_fallbacks = delta(cur.serial_fallbacks, prev.serial_fallbacks);
  w.lock_sections = delta(cur.lock_sections, prev.lock_sections);
  w.limbo_enqueued = delta(cur.limbo_enqueued, prev.limbo_enqueued);
  w.limbo_drained = delta(cur.limbo_drained, prev.limbo_drained);
  w.htm_routed_frees = delta(cur.htm_routed_frees, prev.htm_routed_frees);
  w.priv_immediate_frees =
      delta(cur.priv_immediate_frees, prev.priv_immediate_frees);
  w.priv_limbo_routed = delta(cur.priv_limbo_routed, prev.priv_limbo_routed);

  // Per-site deltas; only sites active inside the window are materialized.
  collect_sites(st.cur_sites.get());
  const int sites = site_count();
  for (int id = 0; id < sites; ++id) {
    const SiteSnap& c = st.cur_sites[id];
    const SiteSnap& p = st.prev_sites[id];
    SiteWindow sw;
    sw.id = id;
    sw.attempts = delta(c.attempts, p.attempts);
    sw.commits = delta(c.commits, p.commits);
    sw.serial_fallbacks = delta(c.serial_fallbacks, p.serial_fallbacks);
    sw.serial_commits = delta(c.serial_commits, p.serial_commits);
    sw.htm_retries = delta(c.htm_retries, p.htm_retries);
    sw.drain_waits = delta(c.drain_waits, p.drain_waits);
    sw.storm_gated = delta(c.storm_gated, p.storm_gated);
    sw.watchdog_escalations =
        delta(c.watchdog_escalations, p.watchdog_escalations);
    for (int a = 0; a < kAbortCauseCount; ++a)
      sw.aborts[a] = delta(c.aborts[a], p.aborts[a]);
    const std::uint64_t activity = sw.attempts + sw.commits +
                                   sw.serial_commits + sw.serial_fallbacks +
                                   sw.aborts_total() + sw.storm_gated +
                                   sw.watchdog_escalations;
    if (!activity) continue;
    sw.name = id == 0 ? "(unnamed)" : site_info(id).name;
    sw.total_commits = c.commits;
    sw.total_watchdog = c.watchdog_escalations;
    sw.total_gated = c.storm_gated;
    for (int b = 0; b < LatencyHist::kBuckets; ++b)
      sw.attempt_hist[b] = delta(c.hist[b], p.hist[b]);
    if (!det) {
      sw.p50_ns = percentile_from_buckets(sw.attempt_hist, 0.50);
      sw.p99_ns = percentile_from_buckets(sw.attempt_hist, 0.99);
      sw.p999_ns = percentile_from_buckets(sw.attempt_hist, 0.999);
    }
    w.sites.push_back(sw);
  }
  std::swap(st.prev_sites, st.cur_sites);

  fill_gauges(st, w, det);
  w.gauges.storm_gated = delta(cur.gov_storm_gated, prev.gov_storm_gated);
  w.gauges.watchdog_escalations =
      delta(cur.gov_watchdog_escalations, prev.gov_watchdog_escalations);
  st.prev_stats = cur;

  // Controller snapshot + the decisions landed since the previous tick.
  // Lock order is st.mu -> ctl's mutex here; the controller thread releases
  // st.mu (metrics_history copy) before on_window takes its own lock, so
  // the order never inverts.
  const ctl::Status cs = ctl::status();
  w.ctl.enabled = cs.enabled;
  w.ctl.state = ctl::to_string(cs.state);
  w.ctl.mode = to_string(live_mode());
  w.ctl.probe_shift = cs.probe_shift;
  w.ctl.evals = cs.evals;
  w.ctl.plan_changes = cs.plan_changes;
  w.ctl.flaps = cs.flaps;
  w.ctl.degraded_enters = cs.degraded_enters;
  w.ctl.degraded_exits = cs.degraded_exits;
  w.ctl.mode_switches = cs.mode_switches;
  if (st.ctl_decisions_seen > cs.decisions)
    st.ctl_decisions_seen = 0;  // ctl::reset() restarted the sequence
  for (const ctl::Decision& d : ctl::decisions_since(st.ctl_decisions_seen)) {
    CtlDecisionLite lite;
    lite.seq = d.seq;
    lite.window = d.window;
    lite.site = d.site;
    lite.kind = ctl::to_string(d.kind);
    lite.state = ctl::to_string(d.state);
    lite.shift = d.shift;
    lite.detail = d.detail;
    w.ctl.decisions.push_back(lite);
    st.ctl_decisions_seen = d.seq;
  }

  const std::size_t depth = std::max(1u, config().metrics_history);
  st.ring.push_back(w);
  if (st.ring.size() > depth)
    st.ring.erase(st.ring.begin(),
                  st.ring.begin() +
                      static_cast<std::ptrdiff_t>(st.ring.size() - depth));
  return w;
}

}  // namespace

void metrics_enable(bool on) noexcept {
  State& st = state();
  if (on) {
    set_flag(kProfileBit, true);
    {
      std::lock_guard<std::mutex> lk(st.mu);
      st.ring.clear();
      rebaseline_locked(st);
    }
    set_flag(kMetricsBit, true);
  } else {
    set_flag(kMetricsBit, false);
  }
}

void metrics_set_deterministic(bool on) noexcept {
  state().deterministic.store(on, std::memory_order_relaxed);
}

bool metrics_deterministic() noexcept {
  return state().deterministic.load(std::memory_order_relaxed);
}

MetricsWindow metrics_tick() {
  State& st = state();
  std::lock_guard<std::mutex> lk(st.mu);
  return tick_locked(st, /*final_flush=*/false);
}

MetricsWindow metrics_tick_final() {
  State& st = state();
  std::lock_guard<std::mutex> lk(st.mu);
  return tick_locked(st, /*final_flush=*/true);
}

MetricsWindow metrics_window() {
  State& st = state();
  std::lock_guard<std::mutex> lk(st.mu);
  return st.ring.empty() ? MetricsWindow{} : st.ring.back();
}

std::vector<MetricsWindow> metrics_history() {
  State& st = state();
  std::lock_guard<std::mutex> lk(st.mu);
  return st.ring;
}

void metrics_reset() noexcept {
  State& st = state();
  std::lock_guard<std::mutex> lk(st.mu);
  st.ring.clear();
  st.next_index = 0;
  rebaseline_locked(st);
}

std::string metrics_json(const MetricsWindow& w) {
  std::string out;
  out += "{\"schema\":\"tle-metrics/v1\",";
  append_fmt(out, "\"window\":%llu,\"final\":%s,\"deterministic\":%s,",
             (unsigned long long)w.index, w.final_flush ? "true" : "false",
             w.deterministic ? "true" : "false");
  const double dur_s =
      w.duration_ns() ? static_cast<double>(w.duration_ns()) / 1e9 : 0.0;
  if (!w.deterministic)
    append_fmt(out,
               "\"t_start_ns\":%llu,\"t_end_ns\":%llu,\"duration_ns\":%llu,",
               (unsigned long long)w.t_start_ns,
               (unsigned long long)w.t_end_ns,
               (unsigned long long)w.duration_ns());

  append_fmt(out,
             "\"totals\":{\"txn_starts\":%llu,\"commits\":%llu,"
             "\"aborts\":%llu,\"serial_commits\":%llu,"
             "\"serial_fallbacks\":%llu,\"lock_sections\":%llu,"
             "\"limbo_enqueued\":%llu,\"limbo_drained\":%llu,"
             "\"htm_routed_frees\":%llu,\"priv_immediate_frees\":%llu,"
             "\"priv_limbo_routed\":%llu",
             (unsigned long long)w.txn_starts, (unsigned long long)w.commits,
             (unsigned long long)w.aborts,
             (unsigned long long)w.serial_commits,
             (unsigned long long)w.serial_fallbacks,
             (unsigned long long)w.lock_sections,
             (unsigned long long)w.limbo_enqueued,
             (unsigned long long)w.limbo_drained,
             (unsigned long long)w.htm_routed_frees,
             (unsigned long long)w.priv_immediate_frees,
             (unsigned long long)w.priv_limbo_routed);
  if (!w.deterministic) {
    const double abort_ratio =
        w.txn_starts ? static_cast<double>(w.aborts) /
                           static_cast<double>(w.txn_starts)
                     : 0.0;
    append_fmt(out, ",\"commit_rate\":%.6f,\"abort_ratio\":%.6f",
               dur_s > 0.0 ? static_cast<double>(w.commits) / dur_s : 0.0,
               abort_ratio);
  }
  out += "},";

  const MetricsGauges& g = w.gauges;
  append_fmt(out,
             "\"gauges\":{\"inflight_txns\":%u,\"limbo_pending\":%llu,"
             "\"storm_active\":%s,\"storm_inflight\":%u,"
             "\"storm_gated\":%llu,\"watchdog_escalations\":%llu",
             g.inflight_txns, (unsigned long long)g.limbo_pending,
             g.storm_active ? "true" : "false", g.storm_inflight,
             (unsigned long long)g.storm_gated,
             (unsigned long long)g.watchdog_escalations);
  if (!w.deterministic)
    append_fmt(out,
               ",\"oldest_txn_age_ns\":%llu,\"grace_last_scan_ns\":%llu,"
               "\"grace_scan_ns\":%llu,\"serial_hold_ns\":%llu,"
               "\"serial_wait_ns\":%llu,\"serial_held_age_ns\":%llu,"
               "\"gov_abort_rate\":%.6f",
               (unsigned long long)g.oldest_txn_age_ns,
               (unsigned long long)g.grace_last_scan_ns,
               (unsigned long long)g.grace_scan_ns,
               (unsigned long long)g.serial_hold_ns,
               (unsigned long long)g.serial_wait_ns,
               (unsigned long long)g.serial_held_age_ns, g.gov_abort_rate);
  out += "},";

  // Controller block: always present (enabled:false when the controller is
  // off) so stream checkers can require it unconditionally. Deterministic by
  // construction — decisions are pure functions of counter deltas.
  const CtlSnapshot& c = w.ctl;
  append_fmt(out,
             "\"ctl\":{\"enabled\":%s,\"state\":\"%s\",\"mode\":\"%s\","
             "\"probe_shift\":%u,\"evals\":%llu,\"plan_changes\":%llu,"
             "\"flaps\":%llu,\"degraded_enters\":%llu,"
             "\"degraded_exits\":%llu,\"mode_switches\":%llu,\"decisions\":[",
             c.enabled ? "true" : "false", c.state, c.mode, c.probe_shift,
             (unsigned long long)c.evals, (unsigned long long)c.plan_changes,
             (unsigned long long)c.flaps,
             (unsigned long long)c.degraded_enters,
             (unsigned long long)c.degraded_exits,
             (unsigned long long)c.mode_switches);
  for (std::size_t i = 0; i < c.decisions.size(); ++i) {
    const CtlDecisionLite& d = c.decisions[i];
    if (i) out += ',';
    append_fmt(out,
               "{\"seq\":%llu,\"window\":%llu,\"site\":%d,\"kind\":\"%s\","
               "\"state\":\"%s\",\"shift\":%u,\"detail\":%u}",
               (unsigned long long)d.seq, (unsigned long long)d.window,
               (int)d.site, d.kind, d.state, (unsigned)d.shift,
               (unsigned)d.detail);
  }
  out += "]},";

  // Ranked starvation surface: sites that have EVER hit the watchdog or the
  // storm gate (cumulative counters), capped at the 8 worst.
  out += "\"starved_sites\":[";
  {
    std::vector<const SiteWindow*> starved;
    for (const SiteWindow& s : w.sites)
      if (s.total_watchdog || s.total_gated) starved.push_back(&s);
    std::sort(starved.begin(), starved.end(),
              [](const SiteWindow* a, const SiteWindow* b) {
                if (a->total_watchdog != b->total_watchdog)
                  return a->total_watchdog > b->total_watchdog;
                if (a->total_gated != b->total_gated)
                  return a->total_gated > b->total_gated;
                return a->id < b->id;
              });
    if (starved.size() > 8) starved.resize(8);
    for (std::size_t i = 0; i < starved.size(); ++i) {
      const SiteWindow& s = *starved[i];
      if (i) out += ',';
      append_fmt(out,
                 "{\"id\":%d,\"name\":\"%s\",\"watchdog_total\":%llu,"
                 "\"gated_total\":%llu}",
                 s.id, json_escape(s.name).c_str(),
                 (unsigned long long)s.total_watchdog,
                 (unsigned long long)s.total_gated);
    }
  }
  out += "],";

  out += "\"sites\":[";
  for (std::size_t i = 0; i < w.sites.size(); ++i) {
    const SiteWindow& s = w.sites[i];
    if (i) out += ',';
    append_fmt(out,
               "{\"id\":%d,\"name\":\"%s\",\"attempts\":%llu,"
               "\"commits\":%llu,\"serial_fallbacks\":%llu,"
               "\"serial_commits\":%llu,\"htm_retries\":%llu,"
               "\"drain_waits\":%llu,\"storm_gated\":%llu,"
               "\"watchdog_escalations\":%llu",
               s.id, json_escape(s.name).c_str(),
               (unsigned long long)s.attempts, (unsigned long long)s.commits,
               (unsigned long long)s.serial_fallbacks,
               (unsigned long long)s.serial_commits,
               (unsigned long long)s.htm_retries,
               (unsigned long long)s.drain_waits,
               (unsigned long long)s.storm_gated,
               (unsigned long long)s.watchdog_escalations);
    out += ",\"aborts\":{";
    bool first = true;
    for (int a = 1; a < kAbortCauseCount; ++a) {
      if (!s.aborts[a]) continue;
      append_fmt(out, "%s\"%s\":%llu", first ? "" : ",",
                 to_string(static_cast<AbortCause>(a)),
                 (unsigned long long)s.aborts[a]);
      first = false;
    }
    append_fmt(out, "},\"aborts_total\":%llu,\"total_commits\":%llu",
               (unsigned long long)s.aborts_total(),
               (unsigned long long)s.total_commits);
    if (!w.deterministic) {
      const double cr = dur_s > 0.0
                            ? static_cast<double>(s.commits) / dur_s
                            : 0.0;
      const double ar = s.attempts ? static_cast<double>(s.aborts_total()) /
                                         static_cast<double>(s.attempts)
                                   : 0.0;
      const double fr = s.attempts
                            ? static_cast<double>(s.serial_fallbacks) /
                                  static_cast<double>(s.attempts)
                            : 0.0;
      append_fmt(out,
                 ",\"commit_rate\":%.6f,\"abort_ratio\":%.6f,"
                 "\"fallback_ratio\":%.6f,\"p50_ns\":%llu,\"p99_ns\":%llu,"
                 "\"p999_ns\":%llu",
                 cr, ar, fr, (unsigned long long)s.p50_ns,
                 (unsigned long long)s.p99_ns, (unsigned long long)s.p999_ns);
    }
    out += '}';
  }
  out += "]}";
  return out;
}

std::string prometheus_text() {
  const StatsSnapshot snap = aggregate_stats();
  const std::vector<SiteProfile> profiles = collect_site_profiles();
  std::string out;
  auto counter = [&](const char* name, const char* help,
                     unsigned long long v) {
    append_fmt(out, "# HELP %s %s\n# TYPE %s counter\n%s %llu\n", name, help,
               name, name, v);
  };
  counter("tle_txn_starts_total", "Speculative attempts begun.",
          snap.txn_starts);
  counter("tle_commits_total", "Speculative commits.", snap.commits);
  counter("tle_serial_commits_total", "Irrevocable/serial executions.",
          snap.serial_commits);
  counter("tle_serial_fallbacks_total", "Attempts that went serial.",
          snap.serial_fallbacks);
  counter("tle_lock_sections_total", "Sections run under the real lock.",
          snap.lock_sections);
  counter("tle_htm_routed_frees_total",
          "Engine frees limbo-routed because HTM readers were in flight.",
          snap.htm_routed_frees);
  counter("tle_priv_immediate_frees_total",
          "tm_private_free blocks released immediately.",
          snap.priv_immediate_frees);
  counter("tle_priv_limbo_routed_total",
          "tm_private_free blocks parked in limbo.", snap.priv_limbo_routed);
  counter("tle_ctl_evals_total", "Adaptive-controller evaluation passes.",
          snap.ctl_evals);
  counter("tle_ctl_plan_changes_total",
          "Controller per-site plan changes applied.", snap.ctl_plan_changes);
  counter("tle_ctl_forced_serial_total",
          "Attempts routed serial by a controller plan.",
          snap.ctl_forced_serial);
  counter("tle_ctl_probe_attempts_total",
          "Recovery-probe attempts re-admitted to speculation.",
          snap.ctl_probe_attempts);
  counter("tle_ctl_degraded_enters_total",
          "Controller degraded-mode entries.", snap.ctl_degraded_enters);
  counter("tle_ctl_degraded_exits_total",
          "Controller degraded-mode full recoveries.",
          snap.ctl_degraded_exits);
  counter("tle_ctl_flaps_total",
          "Probing intervals that re-tripped back to degraded.",
          snap.ctl_flaps);
  counter("tle_ctl_mode_switches_total",
          "Drained global exec-mode switches by the controller.",
          snap.ctl_mode_switches);
  out +=
      "# HELP tle_aborts_total Speculative aborts by cause.\n"
      "# TYPE tle_aborts_total counter\n";
  for (int a = 1; a < kAbortCauseCount; ++a)
    append_fmt(out, "tle_aborts_total{cause=\"%s\"} %llu\n",
               to_string(static_cast<AbortCause>(a)),
               (unsigned long long)snap.aborts[a]);
  out +=
      "# HELP tle_site_commits_total Speculative commits per site.\n"
      "# TYPE tle_site_commits_total counter\n";
  for (const SiteProfile& p : profiles)
    append_fmt(out, "tle_site_commits_total{site=\"%s\"} %llu\n",
               json_escape(p.info.name).c_str(),
               (unsigned long long)p.commits);
  out +=
      "# HELP tle_site_aborts_total Speculative aborts per site.\n"
      "# TYPE tle_site_aborts_total counter\n";
  for (const SiteProfile& p : profiles)
    append_fmt(out, "tle_site_aborts_total{site=\"%s\"} %llu\n",
               json_escape(p.info.name).c_str(),
               (unsigned long long)p.aborts_total());

  // Live gauges (same sampling as a window's gauge block).
  State& st = state();
  MetricsWindow w;
  {
    std::lock_guard<std::mutex> lk(st.mu);
    if (!st.baselined) rebaseline_locked(st);
    fill_gauges(st, w, /*det=*/false);
  }
  auto gauge = [&](const char* name, const char* help,
                   unsigned long long v) {
    append_fmt(out, "# HELP %s %s\n# TYPE %s gauge\n%s %llu\n", name, help,
               name, name, v);
  };
  gauge("tle_inflight_txns", "Slots currently inside a transaction.",
        w.gauges.inflight_txns);
  gauge("tle_oldest_txn_age_ns", "Age of the oldest in-flight transaction.",
        w.gauges.oldest_txn_age_ns);
  gauge("tle_limbo_pending", "Deferred frees awaiting a grace period.",
        w.gauges.limbo_pending);
  gauge("tle_grace_last_scan_ns", "Duration of the latest grace scan pass.",
        w.gauges.grace_last_scan_ns);
  gauge("tle_serial_hold_ns_total", "Cumulative serial write-lock hold time.",
        serial_lock().write_hold_ns_total());
  gauge("tle_serial_wait_ns_total", "Cumulative serial write-lock wait time.",
        serial_lock().write_wait_ns_total());
  gauge("tle_storm_active", "1 while the abort-storm gate is engaged.",
        w.gauges.storm_active ? 1 : 0);
  gauge("tle_storm_inflight", "Tokens admitted through the storm gate.",
        w.gauges.storm_inflight);
  append_fmt(out,
             "# HELP tle_gov_abort_rate Governor abort-rate estimate.\n"
             "# TYPE tle_gov_abort_rate gauge\ntle_gov_abort_rate %.6f\n",
             gov::abort_rate_estimate());
  const ctl::Status cs = ctl::status();
  gauge("tle_ctl_enabled", "1 while the adaptive controller is enabled.",
        cs.enabled ? 1 : 0);
  gauge("tle_ctl_state",
        "Controller state (0 normal, 1 degraded, 2 probing).",
        static_cast<unsigned long long>(cs.state));
  gauge("tle_ctl_probe_shift",
        "Global recovery-probe shift (admitting 1/2^shift of attempts).",
        cs.probe_shift);
  return out;
}

}  // namespace tle::obs
