// Windowed-metrics delta engine: snapshots the per-slot × per-site counter
// tables and the process TxStats at every tick, diffs them against the
// previous tick, samples the health gauges, and retains the windows in a
// ring. The engine's hot paths are untouched — everything here is
// sampler-side reads of counters the profiler already maintains.
#include "tm/obs/metrics.hpp"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <memory>
#include <mutex>

#include "tm/governor/governor.hpp"
#include "tm/obs/export.hpp"
#include "tm/registry.hpp"
#include "tm/serial_lock.hpp"
#include "util/timing.hpp"

namespace tle::obs {

namespace {

void append_fmt(std::string& out, const char* fmt, ...) {
  char buf[512];
  va_list ap;
  va_start(ap, fmt);
  const int n = std::vsnprintf(buf, sizeof buf, fmt, ap);
  va_end(ap);
  if (n > 0) out.append(buf, buf + std::min<int>(n, sizeof buf - 1));
}

std::string json_escape(const char* s) {
  std::string out;
  for (; s && *s; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\')
      (out += '\\') += c;
    else if (static_cast<unsigned char>(c) < 0x20)
      append_fmt(out, "\\u%04x", c);
    else
      out += c;
  }
  return out;
}

/// Saturating delta that survives a mid-run counter reset: a current value
/// below the baseline means the counter restarted from zero, so the whole
/// current value is the interval's activity.
std::uint64_t delta(std::uint64_t cur, std::uint64_t prev) noexcept {
  return cur >= prev ? cur - prev : cur;
}

/// Flat per-site snapshot — only the fields the windows expose.
struct SiteSnap {
  std::uint64_t attempts = 0;
  std::uint64_t commits = 0;
  std::uint64_t serial_fallbacks = 0;
  std::uint64_t serial_commits = 0;
  std::uint64_t htm_retries = 0;
  std::uint64_t aborts[kAbortCauseCount] = {};
  std::uint64_t hist[LatencyHist::kBuckets] = {};
};

std::uint64_t ld(const std::atomic<std::uint64_t>& c) noexcept {
  return c.load(std::memory_order_relaxed);
}

/// Sum every slot's table into `out[0..kMaxSites)` (all sites, unfiltered —
/// the delta engine needs stable indexing, unlike collect_site_profiles).
void collect_sites(SiteSnap* out) {
  for (int id = 0; id < kMaxSites; ++id) out[id] = SiteSnap{};
  const int hw = slot_high_water();
  for (int s = 0; s < hw; ++s) {
    const SiteCounters* t = peek_site_table(s);
    if (!t) continue;
    for (int id = 0; id < kMaxSites; ++id) {
      const SiteCounters& c = t[id];
      SiteSnap& o = out[id];
      o.attempts += ld(c.attempts);
      o.commits += ld(c.commits);
      o.serial_fallbacks += ld(c.serial_fallbacks);
      o.serial_commits += ld(c.serial_commits);
      o.htm_retries += ld(c.htm_retries);
      for (int a = 0; a < kAbortCauseCount; ++a) o.aborts[a] += ld(c.aborts[a]);
      for (int b = 0; b < LatencyHist::kBuckets; ++b)
        o.hist[b] += ld(c.attempt_ns.buckets[b]);
    }
  }
}

struct State {
  std::mutex mu;
  bool baselined = false;
  std::unique_ptr<SiteSnap[]> prev_sites{new SiteSnap[kMaxSites]};
  std::unique_ptr<SiteSnap[]> cur_sites{new SiteSnap[kMaxSites]};
  StatsSnapshot prev_stats;
  std::uint64_t prev_serial_hold = 0;
  std::uint64_t prev_serial_wait = 0;
  std::uint64_t prev_grace_scan = 0;
  std::uint64_t next_index = 0;
  std::uint64_t last_tick_ns = 0;
  std::vector<MetricsWindow> ring;
  std::atomic<bool> deterministic{false};
};

// Heap-allocated, never destroyed: ticks may run from atexit handlers and
// from the sampler thread during shutdown, after static destructors of
// other objects would already have fired.
State& state() {
  static State* s = new State();
  return *s;
}

void rebaseline_locked(State& st) {
  collect_sites(st.prev_sites.get());
  st.prev_stats = aggregate_stats();
  SerialLock& sl = serial_lock();
  st.prev_serial_hold = sl.write_hold_ns_total();
  st.prev_serial_wait = sl.write_wait_ns_total();
  st.prev_grace_scan = grace_state().scan_ns_total.load(std::memory_order_relaxed);
  st.last_tick_ns = st.deterministic.load(std::memory_order_relaxed)
                        ? 0
                        : now_ns();
  st.baselined = true;
}

void fill_gauges(State& st, MetricsWindow& w, bool det) {
  MetricsGauges& g = w.gauges;
  const int hw = slot_high_water();
  ThreadSlot* slots = slot_table();
  const std::uint64_t now = det ? 0 : now_ns();
  for (int i = 0; i < hw; ++i) {
    if (slots[i].seq.load(std::memory_order_relaxed) & 1) {
      ++g.inflight_txns;
      if (!det) {
        const std::uint64_t t0 =
            slots[i].txn_begin_ns.load(std::memory_order_relaxed);
        if (t0 && now > t0) g.oldest_txn_age_ns =
            std::max(g.oldest_txn_age_ns, now - t0);
      }
    }
    g.limbo_pending += slots[i].limbo_pending.load(std::memory_order_relaxed);
  }
  g.storm_active = gov::storm_active();
  g.storm_inflight = gov::storm_inflight();
  if (!det) {
    GraceState& gs = grace_state();
    g.grace_last_scan_ns = gs.last_scan_ns.load(std::memory_order_relaxed);
    const std::uint64_t scan_total =
        gs.scan_ns_total.load(std::memory_order_relaxed);
    g.grace_scan_ns = delta(scan_total, st.prev_grace_scan);
    st.prev_grace_scan = scan_total;
    SerialLock& sl = serial_lock();
    const std::uint64_t hold = sl.write_hold_ns_total();
    const std::uint64_t wait = sl.write_wait_ns_total();
    g.serial_hold_ns = delta(hold, st.prev_serial_hold);
    g.serial_wait_ns = delta(wait, st.prev_serial_wait);
    st.prev_serial_hold = hold;
    st.prev_serial_wait = wait;
    const std::uint64_t since = sl.write_held_since_ns();
    if (since && now > since) g.serial_held_age_ns = now - since;
    g.gov_abort_rate = gov::abort_rate_estimate();
  }
}

MetricsWindow tick_locked(State& st, bool final_flush) {
  if (!st.baselined) rebaseline_locked(st);
  const bool det = st.deterministic.load(std::memory_order_relaxed);

  MetricsWindow w;
  w.index = st.next_index++;
  w.deterministic = det;
  w.final_flush = final_flush;
  w.t_start_ns = st.last_tick_ns;
  w.t_end_ns = det ? 0 : now_ns();
  st.last_tick_ns = w.t_end_ns;

  // Process-level TxStats deltas.
  const StatsSnapshot cur = aggregate_stats();
  const StatsSnapshot& prev = st.prev_stats;
  w.txn_starts = delta(cur.txn_starts, prev.txn_starts);
  w.commits = delta(cur.commits, prev.commits);
  w.aborts = delta(cur.aborts_total(), prev.aborts_total());
  w.serial_commits = delta(cur.serial_commits, prev.serial_commits);
  w.serial_fallbacks = delta(cur.serial_fallbacks, prev.serial_fallbacks);
  w.lock_sections = delta(cur.lock_sections, prev.lock_sections);
  w.limbo_enqueued = delta(cur.limbo_enqueued, prev.limbo_enqueued);
  w.limbo_drained = delta(cur.limbo_drained, prev.limbo_drained);
  w.htm_routed_frees = delta(cur.htm_routed_frees, prev.htm_routed_frees);
  w.priv_immediate_frees =
      delta(cur.priv_immediate_frees, prev.priv_immediate_frees);
  w.priv_limbo_routed = delta(cur.priv_limbo_routed, prev.priv_limbo_routed);

  // Per-site deltas; only sites active inside the window are materialized.
  collect_sites(st.cur_sites.get());
  const int sites = site_count();
  for (int id = 0; id < sites; ++id) {
    const SiteSnap& c = st.cur_sites[id];
    const SiteSnap& p = st.prev_sites[id];
    SiteWindow sw;
    sw.id = id;
    sw.attempts = delta(c.attempts, p.attempts);
    sw.commits = delta(c.commits, p.commits);
    sw.serial_fallbacks = delta(c.serial_fallbacks, p.serial_fallbacks);
    sw.serial_commits = delta(c.serial_commits, p.serial_commits);
    sw.htm_retries = delta(c.htm_retries, p.htm_retries);
    for (int a = 0; a < kAbortCauseCount; ++a)
      sw.aborts[a] = delta(c.aborts[a], p.aborts[a]);
    const std::uint64_t activity = sw.attempts + sw.commits +
                                   sw.serial_commits + sw.serial_fallbacks +
                                   sw.aborts_total();
    if (!activity) continue;
    sw.name = id == 0 ? "(unnamed)" : site_info(id).name;
    sw.total_commits = c.commits;
    for (int b = 0; b < LatencyHist::kBuckets; ++b)
      sw.attempt_hist[b] = delta(c.hist[b], p.hist[b]);
    if (!det) {
      sw.p50_ns = percentile_from_buckets(sw.attempt_hist, 0.50);
      sw.p99_ns = percentile_from_buckets(sw.attempt_hist, 0.99);
      sw.p999_ns = percentile_from_buckets(sw.attempt_hist, 0.999);
    }
    w.sites.push_back(sw);
  }
  std::swap(st.prev_sites, st.cur_sites);

  fill_gauges(st, w, det);
  w.gauges.storm_gated = delta(cur.gov_storm_gated, prev.gov_storm_gated);
  w.gauges.watchdog_escalations =
      delta(cur.gov_watchdog_escalations, prev.gov_watchdog_escalations);
  st.prev_stats = cur;

  const std::size_t depth = std::max(1u, config().metrics_history);
  st.ring.push_back(w);
  if (st.ring.size() > depth)
    st.ring.erase(st.ring.begin(),
                  st.ring.begin() +
                      static_cast<std::ptrdiff_t>(st.ring.size() - depth));
  return w;
}

}  // namespace

void metrics_enable(bool on) noexcept {
  State& st = state();
  if (on) {
    set_flag(kProfileBit, true);
    {
      std::lock_guard<std::mutex> lk(st.mu);
      st.ring.clear();
      rebaseline_locked(st);
    }
    set_flag(kMetricsBit, true);
  } else {
    set_flag(kMetricsBit, false);
  }
}

void metrics_set_deterministic(bool on) noexcept {
  state().deterministic.store(on, std::memory_order_relaxed);
}

bool metrics_deterministic() noexcept {
  return state().deterministic.load(std::memory_order_relaxed);
}

MetricsWindow metrics_tick() {
  State& st = state();
  std::lock_guard<std::mutex> lk(st.mu);
  return tick_locked(st, /*final_flush=*/false);
}

MetricsWindow metrics_tick_final() {
  State& st = state();
  std::lock_guard<std::mutex> lk(st.mu);
  return tick_locked(st, /*final_flush=*/true);
}

MetricsWindow metrics_window() {
  State& st = state();
  std::lock_guard<std::mutex> lk(st.mu);
  return st.ring.empty() ? MetricsWindow{} : st.ring.back();
}

std::vector<MetricsWindow> metrics_history() {
  State& st = state();
  std::lock_guard<std::mutex> lk(st.mu);
  return st.ring;
}

void metrics_reset() noexcept {
  State& st = state();
  std::lock_guard<std::mutex> lk(st.mu);
  st.ring.clear();
  st.next_index = 0;
  rebaseline_locked(st);
}

std::string metrics_json(const MetricsWindow& w) {
  std::string out;
  out += "{\"schema\":\"tle-metrics/v1\",";
  append_fmt(out, "\"window\":%llu,\"final\":%s,\"deterministic\":%s,",
             (unsigned long long)w.index, w.final_flush ? "true" : "false",
             w.deterministic ? "true" : "false");
  const double dur_s =
      w.duration_ns() ? static_cast<double>(w.duration_ns()) / 1e9 : 0.0;
  if (!w.deterministic)
    append_fmt(out,
               "\"t_start_ns\":%llu,\"t_end_ns\":%llu,\"duration_ns\":%llu,",
               (unsigned long long)w.t_start_ns,
               (unsigned long long)w.t_end_ns,
               (unsigned long long)w.duration_ns());

  append_fmt(out,
             "\"totals\":{\"txn_starts\":%llu,\"commits\":%llu,"
             "\"aborts\":%llu,\"serial_commits\":%llu,"
             "\"serial_fallbacks\":%llu,\"lock_sections\":%llu,"
             "\"limbo_enqueued\":%llu,\"limbo_drained\":%llu,"
             "\"htm_routed_frees\":%llu,\"priv_immediate_frees\":%llu,"
             "\"priv_limbo_routed\":%llu",
             (unsigned long long)w.txn_starts, (unsigned long long)w.commits,
             (unsigned long long)w.aborts,
             (unsigned long long)w.serial_commits,
             (unsigned long long)w.serial_fallbacks,
             (unsigned long long)w.lock_sections,
             (unsigned long long)w.limbo_enqueued,
             (unsigned long long)w.limbo_drained,
             (unsigned long long)w.htm_routed_frees,
             (unsigned long long)w.priv_immediate_frees,
             (unsigned long long)w.priv_limbo_routed);
  if (!w.deterministic) {
    const double abort_ratio =
        w.txn_starts ? static_cast<double>(w.aborts) /
                           static_cast<double>(w.txn_starts)
                     : 0.0;
    append_fmt(out, ",\"commit_rate\":%.6f,\"abort_ratio\":%.6f",
               dur_s > 0.0 ? static_cast<double>(w.commits) / dur_s : 0.0,
               abort_ratio);
  }
  out += "},";

  const MetricsGauges& g = w.gauges;
  append_fmt(out,
             "\"gauges\":{\"inflight_txns\":%u,\"limbo_pending\":%llu,"
             "\"storm_active\":%s,\"storm_inflight\":%u,"
             "\"storm_gated\":%llu,\"watchdog_escalations\":%llu",
             g.inflight_txns, (unsigned long long)g.limbo_pending,
             g.storm_active ? "true" : "false", g.storm_inflight,
             (unsigned long long)g.storm_gated,
             (unsigned long long)g.watchdog_escalations);
  if (!w.deterministic)
    append_fmt(out,
               ",\"oldest_txn_age_ns\":%llu,\"grace_last_scan_ns\":%llu,"
               "\"grace_scan_ns\":%llu,\"serial_hold_ns\":%llu,"
               "\"serial_wait_ns\":%llu,\"serial_held_age_ns\":%llu,"
               "\"gov_abort_rate\":%.6f",
               (unsigned long long)g.oldest_txn_age_ns,
               (unsigned long long)g.grace_last_scan_ns,
               (unsigned long long)g.grace_scan_ns,
               (unsigned long long)g.serial_hold_ns,
               (unsigned long long)g.serial_wait_ns,
               (unsigned long long)g.serial_held_age_ns, g.gov_abort_rate);
  out += "},";

  out += "\"sites\":[";
  for (std::size_t i = 0; i < w.sites.size(); ++i) {
    const SiteWindow& s = w.sites[i];
    if (i) out += ',';
    append_fmt(out,
               "{\"id\":%d,\"name\":\"%s\",\"attempts\":%llu,"
               "\"commits\":%llu,\"serial_fallbacks\":%llu,"
               "\"serial_commits\":%llu,\"htm_retries\":%llu",
               s.id, json_escape(s.name).c_str(),
               (unsigned long long)s.attempts, (unsigned long long)s.commits,
               (unsigned long long)s.serial_fallbacks,
               (unsigned long long)s.serial_commits,
               (unsigned long long)s.htm_retries);
    out += ",\"aborts\":{";
    bool first = true;
    for (int a = 1; a < kAbortCauseCount; ++a) {
      if (!s.aborts[a]) continue;
      append_fmt(out, "%s\"%s\":%llu", first ? "" : ",",
                 to_string(static_cast<AbortCause>(a)),
                 (unsigned long long)s.aborts[a]);
      first = false;
    }
    append_fmt(out, "},\"aborts_total\":%llu,\"total_commits\":%llu",
               (unsigned long long)s.aborts_total(),
               (unsigned long long)s.total_commits);
    if (!w.deterministic) {
      const double cr = dur_s > 0.0
                            ? static_cast<double>(s.commits) / dur_s
                            : 0.0;
      const double ar = s.attempts ? static_cast<double>(s.aborts_total()) /
                                         static_cast<double>(s.attempts)
                                   : 0.0;
      const double fr = s.attempts
                            ? static_cast<double>(s.serial_fallbacks) /
                                  static_cast<double>(s.attempts)
                            : 0.0;
      append_fmt(out,
                 ",\"commit_rate\":%.6f,\"abort_ratio\":%.6f,"
                 "\"fallback_ratio\":%.6f,\"p50_ns\":%llu,\"p99_ns\":%llu,"
                 "\"p999_ns\":%llu",
                 cr, ar, fr, (unsigned long long)s.p50_ns,
                 (unsigned long long)s.p99_ns, (unsigned long long)s.p999_ns);
    }
    out += '}';
  }
  out += "]}";
  return out;
}

std::string prometheus_text() {
  const StatsSnapshot snap = aggregate_stats();
  const std::vector<SiteProfile> profiles = collect_site_profiles();
  std::string out;
  auto counter = [&](const char* name, const char* help,
                     unsigned long long v) {
    append_fmt(out, "# HELP %s %s\n# TYPE %s counter\n%s %llu\n", name, help,
               name, name, v);
  };
  counter("tle_txn_starts_total", "Speculative attempts begun.",
          snap.txn_starts);
  counter("tle_commits_total", "Speculative commits.", snap.commits);
  counter("tle_serial_commits_total", "Irrevocable/serial executions.",
          snap.serial_commits);
  counter("tle_serial_fallbacks_total", "Attempts that went serial.",
          snap.serial_fallbacks);
  counter("tle_lock_sections_total", "Sections run under the real lock.",
          snap.lock_sections);
  counter("tle_htm_routed_frees_total",
          "Engine frees limbo-routed because HTM readers were in flight.",
          snap.htm_routed_frees);
  counter("tle_priv_immediate_frees_total",
          "tm_private_free blocks released immediately.",
          snap.priv_immediate_frees);
  counter("tle_priv_limbo_routed_total",
          "tm_private_free blocks parked in limbo.", snap.priv_limbo_routed);
  out +=
      "# HELP tle_aborts_total Speculative aborts by cause.\n"
      "# TYPE tle_aborts_total counter\n";
  for (int a = 1; a < kAbortCauseCount; ++a)
    append_fmt(out, "tle_aborts_total{cause=\"%s\"} %llu\n",
               to_string(static_cast<AbortCause>(a)),
               (unsigned long long)snap.aborts[a]);
  out +=
      "# HELP tle_site_commits_total Speculative commits per site.\n"
      "# TYPE tle_site_commits_total counter\n";
  for (const SiteProfile& p : profiles)
    append_fmt(out, "tle_site_commits_total{site=\"%s\"} %llu\n",
               json_escape(p.info.name).c_str(),
               (unsigned long long)p.commits);
  out +=
      "# HELP tle_site_aborts_total Speculative aborts per site.\n"
      "# TYPE tle_site_aborts_total counter\n";
  for (const SiteProfile& p : profiles)
    append_fmt(out, "tle_site_aborts_total{site=\"%s\"} %llu\n",
               json_escape(p.info.name).c_str(),
               (unsigned long long)p.aborts_total());

  // Live gauges (same sampling as a window's gauge block).
  State& st = state();
  MetricsWindow w;
  {
    std::lock_guard<std::mutex> lk(st.mu);
    if (!st.baselined) rebaseline_locked(st);
    fill_gauges(st, w, /*det=*/false);
  }
  auto gauge = [&](const char* name, const char* help,
                   unsigned long long v) {
    append_fmt(out, "# HELP %s %s\n# TYPE %s gauge\n%s %llu\n", name, help,
               name, name, v);
  };
  gauge("tle_inflight_txns", "Slots currently inside a transaction.",
        w.gauges.inflight_txns);
  gauge("tle_oldest_txn_age_ns", "Age of the oldest in-flight transaction.",
        w.gauges.oldest_txn_age_ns);
  gauge("tle_limbo_pending", "Deferred frees awaiting a grace period.",
        w.gauges.limbo_pending);
  gauge("tle_grace_last_scan_ns", "Duration of the latest grace scan pass.",
        w.gauges.grace_last_scan_ns);
  gauge("tle_serial_hold_ns_total", "Cumulative serial write-lock hold time.",
        serial_lock().write_hold_ns_total());
  gauge("tle_serial_wait_ns_total", "Cumulative serial write-lock wait time.",
        serial_lock().write_wait_ns_total());
  gauge("tle_storm_active", "1 while the abort-storm gate is engaged.",
        w.gauges.storm_active ? 1 : 0);
  gauge("tle_storm_inflight", "Tokens admitted through the storm gate.",
        w.gauges.storm_inflight);
  append_fmt(out,
             "# HELP tle_gov_abort_rate Governor abort-rate estimate.\n"
             "# TYPE tle_gov_abort_rate gauge\ntle_gov_abort_rate %.6f\n",
             gov::abort_rate_estimate());
  return out;
}

}  // namespace tle::obs
