// Background metrics sampler: one thread that ticks the window engine every
// config().metrics_period_ms and streams each window to the configured
// sinks (JSONL append + atomic Prometheus-file rewrite).
//
// Shutdown ordering: init_metrics_from_env() is called by
// obs::init_from_env() AFTER the tle-obs atexit dump is registered, so this
// unit's atexit handler runs FIRST (LIFO) — the sampler joins and the
// residual final window reaches the sinks before the lifetime dump is
// written, which is what makes per-site window deltas sum exactly to the
// dumped totals.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>

#include "tm/control/control.hpp"
#include "tm/obs/export.hpp"
#include "tm/obs/metrics.hpp"
#include "util/timing.hpp"

namespace tle::obs {

namespace {

struct Sampler {
  std::mutex mu;           // guards thread start/stop and the sinks
  std::thread th;
  std::atomic<bool> run{false};
  std::atomic<bool> running{false};
  std::FILE* jsonl = nullptr;  // owned unless it is stderr
  bool jsonl_is_stderr = false;
  std::string prom_path;
};

// Heap-allocated and never destroyed: the atexit shutdown below must not
// race static destruction of this state.
Sampler& sampler() {
  static Sampler* s = new Sampler();
  return *s;
}

void close_jsonl(Sampler& s) {
  if (s.jsonl && !s.jsonl_is_stderr) std::fclose(s.jsonl);
  s.jsonl = nullptr;
  s.jsonl_is_stderr = false;
}

/// Write one window to the sinks. Caller holds s.mu.
void emit_locked(Sampler& s, const MetricsWindow& w) {
  if (s.jsonl) {
    const std::string line = metrics_json(w) + "\n";
    std::fwrite(line.data(), 1, line.size(), s.jsonl);
    std::fflush(s.jsonl);
  }
  if (!s.prom_path.empty()) {
    // Atomic rewrite: scrapers never observe a torn exposition.
    const std::string tmp = s.prom_path + ".tmp";
    if (write_text_file(tmp, prometheus_text()))
      std::rename(tmp.c_str(), s.prom_path.c_str());
  }
}

void sampler_loop() {
  Sampler& s = sampler();
  while (s.run.load(std::memory_order_acquire)) {
    // Sleep the period in 10 ms slices so metrics_stop() never waits a full
    // window for the join.
    const std::uint64_t period_ms = std::max(1u, config().metrics_period_ms);
    const std::uint64_t deadline = now_ns() + period_ms * 1'000'000ull;
    while (s.run.load(std::memory_order_acquire) && now_ns() < deadline)
      std::this_thread::sleep_for(std::chrono::milliseconds(
          std::min<std::uint64_t>(10, period_ms)));
    if (!s.run.load(std::memory_order_acquire)) break;
    const MetricsWindow w = metrics_tick();
    std::lock_guard<std::mutex> lk(s.mu);
    emit_locked(s, w);
  }
}

void metrics_atexit() { metrics_stop(); }

}  // namespace

void metrics_set_sinks(const std::string& jsonl_path,
                       const std::string& prom_path) {
  Sampler& s = sampler();
  std::lock_guard<std::mutex> lk(s.mu);
  close_jsonl(s);
  if (!jsonl_path.empty()) {
    if (jsonl_path == "-") {
      s.jsonl = stderr;
      s.jsonl_is_stderr = true;
    } else {
      s.jsonl = std::fopen(jsonl_path.c_str(), "w");
      if (!s.jsonl)
        std::fprintf(stderr, "tle-metrics: cannot write %s\n",
                     jsonl_path.c_str());
    }
  }
  s.prom_path = prom_path;
}

void metrics_start() {
  Sampler& s = sampler();
  std::lock_guard<std::mutex> lk(s.mu);
  if (s.running.load(std::memory_order_relaxed)) return;
  if (!metrics_enabled()) metrics_enable(true);
  s.run.store(true, std::memory_order_release);
  s.th = std::thread(sampler_loop);
  s.running.store(true, std::memory_order_release);
}

void metrics_stop() {
  Sampler& s = sampler();
  // The controller consumes the window stream this sampler produces: join
  // its thread FIRST, so no evaluation (and no counter bump from one) can
  // land after the residual final window below — the stream's last record
  // must close the books. Taken before s.mu: ctl::stop() joins a thread
  // that never touches the sampler, so no lock order forms.
  ctl::stop();
  // Join outside the sink mutex: the loop's emit step takes s.mu, so
  // holding it across the join would deadlock the shutdown.
  std::thread th;
  bool was_running = false;
  {
    std::lock_guard<std::mutex> lk(s.mu);
    was_running = s.running.load(std::memory_order_relaxed);
    if (was_running) {
      s.run.store(false, std::memory_order_release);
      th = std::move(s.th);
      s.running.store(false, std::memory_order_release);
    }
  }
  if (th.joinable()) th.join();
  std::lock_guard<std::mutex> lk(s.mu);
  // Residual window: whatever accumulated since the last periodic tick.
  if (was_running) emit_locked(s, metrics_tick_final());
  close_jsonl(s);
}

bool metrics_sampler_running() noexcept {
  return sampler().running.load(std::memory_order_acquire);
}

void init_metrics_from_env() noexcept {
  static std::atomic<bool> inited{false};
  if (inited.exchange(true)) return;
  if (!config().metrics) return;  // master switch: env cannot override it
  const char* out = std::getenv("TLE_METRICS_OUT");
  const char* prom = std::getenv("TLE_METRICS_PROM");
  const char* period = std::getenv("TLE_METRICS_PERIOD_MS");
  const char* history = std::getenv("TLE_METRICS_HISTORY");
  if (period && *period) {
    const long v = std::strtol(period, nullptr, 10);
    if (v >= 1) config().metrics_period_ms = static_cast<unsigned>(v);
  }
  if (history && *history) {
    const long v = std::strtol(history, nullptr, 10);
    if (v >= 1) config().metrics_history = static_cast<unsigned>(v);
  }
  const bool want_out = out && *out;
  const bool want_prom = prom && *prom;
  if (!want_out && !want_prom) return;
  metrics_set_sinks(want_out ? out : "", want_prom ? prom : "");
  std::atexit(metrics_atexit);
  metrics_start();
}

}  // namespace tle::obs
