// Aggregation and export of the observability layer: the ranked per-site
// text table, the stable `tle-obs/v1` JSON document (process-wide TxStats +
// per-site profiles + histograms), and the Chrome-trace-event JSON that
// Perfetto (ui.perfetto.dev) and chrome://tracing load directly.
//
// Zero-friction activation (read once at startup, dumped atexit):
//   TLE_TRACE=1            enable the flight recorder
//   TLE_TRACE_OUT=FILE     where the Perfetto JSON goes (default
//                          tle_trace.json; implies TLE_TRACE)
//   TLE_STATS_DUMP=1       per-site table + stats report to stderr at exit
//   TLE_STATS_DUMP=FILE    same, plus the tle-obs/v1 JSON written to FILE
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "tm/obs/site.hpp"
#include "tm/trace.hpp"

namespace tle::obs {

/// Plain-value aggregate of one site's counters across all thread slots.
struct SiteProfile {
  int id = 0;
  SiteInfo info{};
  std::uint64_t attempts = 0;
  std::uint64_t commits = 0;
  std::uint64_t serial_fallbacks = 0;
  std::uint64_t serial_commits = 0;
  std::uint64_t lock_sections = 0;
  std::uint64_t htm_retries = 0;
  std::uint64_t quiesce_waits = 0;
  std::uint64_t drain_waits = 0;
  std::uint64_t storm_gated = 0;
  std::uint64_t watchdog_escalations = 0;
  std::uint64_t stripe_bumps = 0;
  std::uint64_t stripe_false_revalidations = 0;
  std::uint64_t lazy_sub_commits = 0;
  std::uint64_t tictoc_extensions = 0;
  std::uint64_t tictoc_extension_fails = 0;
  std::uint64_t tictoc_wts_waits = 0;
  std::uint64_t tictoc_lock_timeouts = 0;
  std::uint64_t htm_routed_frees = 0;
  std::uint64_t priv_limbo_routed = 0;
  std::uint64_t audit_hazard_arms = 0;
  std::uint64_t aborts[static_cast<int>(AbortCause::kCount)] = {};
  std::uint64_t attempt_hist[LatencyHist::kBuckets] = {};
  std::uint64_t quiesce_hist[LatencyHist::kBuckets] = {};

  std::uint64_t aborts_total() const noexcept {
    std::uint64_t t = 0;
    for (auto a : aborts) t += a;
    return t;
  }
};

/// Sum every thread's per-site counters. Sites with no activity are
/// omitted; site 0 ("(unnamed)") appears iff unnamed sections ran.
std::vector<SiteProfile> collect_site_profiles();

/// Ranked (by aborts, then attempts) fixed-width table of the profiles —
/// the Figure-4 view: per site, attempts/commits/aborts-by-cause/serial.
std::string site_table(const std::vector<SiteProfile>& profiles);

/// Ranked starvation table for the governor: sites ordered by watchdog
/// escalations, then storm-gate waits, then drain waits. Sites with none of
/// the three are omitted; empty string when nothing starved. (The public
/// alias gov::starvation_report() calls this on a fresh collection.)
std::string starvation_table(const std::vector<SiteProfile>& profiles);

/// The `tle-obs/v1` document: {schema, mode, stats{...}, sites[...]}.
/// `stats` carries every TLE_TXSTATS_COUNTERS counter by name plus the
/// per-cause abort breakdown, so it is schema-complete by construction.
std::string obs_json();

/// Chrome trace-event JSON ("traceEvents") from a flight-recorder
/// snapshot: one track per thread slot, "X" slices for commits / aborts /
/// serial sections / quiesces, instant events marking abort causes.
std::string chrome_trace_json(const std::vector<trace::Record>& records);

/// Write `body` to `path` ("-" or "" = stderr). Returns false on I/O error.
bool write_text_file(const std::string& path, const std::string& body);

/// Read TLE_TRACE / TLE_STATS_DUMP / TLE_TRACE_OUT and arm the atexit
/// dump. Runs automatically at static-init time (site.cpp); idempotent.
void init_from_env() noexcept;

/// The atexit hook body, callable directly from tools that want the dump
/// before exit (flushes table/report/JSONs per the current env settings).
void dump_now();

}  // namespace tle::obs
