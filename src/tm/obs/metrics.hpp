// Live interval telemetry: windowed deltas over the per-slot × per-site
// SiteCounters tables plus runtime health gauges, retained in a fixed-depth
// ring and exported as streaming `tle-metrics/v1` JSONL, a Prometheus-style
// text exposition, or programmatically (the interface a future self-tuning
// controller consumes).
//
// Cost model: when kMetricsBit is clear the engine pays nothing beyond the
// one relaxed obs::flags() load it already performs. Enabling metrics also
// enables per-site profiling (the counters the windows diff). Every window
// is produced by one "tick": the background sampler (sampler.cpp) ticks on
// a timer, or tests call metrics_tick() directly for thread-free,
// deterministic windows.
//
// Zero-friction activation (read once at startup):
//   TLE_METRICS_OUT=FILE        stream one tle-metrics/v1 record per window
//                               ("-" = stderr); starts the sampler
//   TLE_METRICS_PROM=FILE       rewrite FILE atomically each window with the
//                               Prometheus text exposition; starts the sampler
//   TLE_METRICS_PERIOD_MS=N     override config().metrics_period_ms
//   TLE_METRICS_HISTORY=N       override config().metrics_history
//
// Lifecycle: env activation registers its shutdown with atexit AFTER
// export.cpp armed the tle-obs dump, so (LIFO) the sampler stops and the
// residual final window flushes BEFORE the lifetime dump — per-site window
// deltas therefore sum exactly to the dumped lifetime totals.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "tm/obs/site.hpp"
#include "tm/stats.hpp"

namespace tle::obs {

/// Per-site interval activity inside one window. Counter fields are deltas
/// against the previous tick; total_commits is the cumulative value at this
/// tick (the conservation anchor: summed deltas == last total).
struct SiteWindow {
  int id = 0;
  const char* name = "(unnamed)";
  std::uint64_t attempts = 0;
  std::uint64_t commits = 0;
  std::uint64_t serial_fallbacks = 0;
  std::uint64_t serial_commits = 0;
  std::uint64_t htm_retries = 0;
  std::uint64_t drain_waits = 0;
  std::uint64_t storm_gated = 0;
  std::uint64_t watchdog_escalations = 0;
  std::uint64_t aborts[kAbortCauseCount] = {};
  std::uint64_t attempt_hist[LatencyHist::kBuckets] = {};
  std::uint64_t total_commits = 0;
  /// Cumulative starvation signals at this tick (the basis of the exported
  /// "starved_sites" ranking — windows with zero delta still surface a site
  /// that has ever starved).
  std::uint64_t total_watchdog = 0;
  std::uint64_t total_gated = 0;
  /// Attempt-latency percentiles from the window's histogram delta
  /// (midpoint rule, histogram.hpp); 0 in deterministic windows.
  std::uint64_t p50_ns = 0;
  std::uint64_t p99_ns = 0;
  std::uint64_t p999_ns = 0;

  std::uint64_t aborts_total() const noexcept {
    std::uint64_t t = 0;
    for (auto a : aborts) t += a;
    return t;
  }
};

/// Instantaneous runtime health, sampled at the closing tick of a window.
/// Time-valued fields are 0 in deterministic windows.
struct MetricsGauges {
  std::uint64_t oldest_txn_age_ns = 0;  ///< max age over in-flight slots
  std::uint32_t inflight_txns = 0;      ///< slots with an odd epoch seq
  std::uint64_t limbo_pending = 0;      ///< deferred frees awaiting grace
  std::uint64_t grace_last_scan_ns = 0;  ///< latest grace-pass scan time
  std::uint64_t grace_scan_ns = 0;       ///< scan time spent this window
  std::uint64_t serial_hold_ns = 0;      ///< serial write-hold, this window
  std::uint64_t serial_wait_ns = 0;      ///< serial write-wait, this window
  std::uint64_t serial_held_age_ns = 0;  ///< current writer's hold age
  bool storm_active = false;             ///< abort-storm gate engaged
  std::uint32_t storm_inflight = 0;      ///< tokens admitted through gate
  double gov_abort_rate = 0.0;           ///< governor's global estimate
  std::uint64_t storm_gated = 0;         ///< attempts gated, this window
  std::uint64_t watchdog_escalations = 0;  ///< escalations, this window
};

/// One adaptive-controller decision, flattened for export (plain data so
/// this header never depends on control/control.hpp; the tick fills the
/// strings from ctl::to_string, which returns static storage).
struct CtlDecisionLite {
  std::uint64_t seq = 0;
  std::uint64_t window = 0;
  std::int32_t site = -1;
  const char* kind = "?";
  const char* state = "?";
  std::uint8_t shift = 0;
  std::uint8_t detail = 0;
};

/// Adaptive-controller health captured at the closing tick, plus every
/// decision the controller made since the previous tick. Deterministic by
/// construction (the controller never consumes wall-clock input), so it is
/// exported even in deterministic windows.
struct CtlSnapshot {
  bool enabled = false;
  const char* state = "normal";
  const char* mode = "?";  ///< live ExecMode at the tick (switch-visible)
  unsigned probe_shift = 0;
  std::uint64_t evals = 0;
  std::uint64_t plan_changes = 0;
  std::uint64_t flaps = 0;
  std::uint64_t degraded_enters = 0;
  std::uint64_t degraded_exits = 0;
  std::uint64_t mode_switches = 0;
  std::vector<CtlDecisionLite> decisions;  ///< since the previous tick
};

/// One closed interval. Process-level counters are TxStats deltas; `sites`
/// holds only sites with activity inside the window.
struct MetricsWindow {
  std::uint64_t index = 0;       ///< 0-based, monotone per process
  std::uint64_t t_start_ns = 0;  ///< now_ns() of the previous tick
  std::uint64_t t_end_ns = 0;    ///< now_ns() of this tick
  bool deterministic = false;    ///< no wall-clock content (see below)
  bool final_flush = false;      ///< residual window from metrics_stop()
  std::uint64_t txn_starts = 0;
  std::uint64_t commits = 0;
  std::uint64_t aborts = 0;
  std::uint64_t serial_commits = 0;
  std::uint64_t serial_fallbacks = 0;
  std::uint64_t lock_sections = 0;
  std::uint64_t limbo_enqueued = 0;
  std::uint64_t limbo_drained = 0;
  std::uint64_t htm_routed_frees = 0;
  std::uint64_t priv_immediate_frees = 0;
  std::uint64_t priv_limbo_routed = 0;
  MetricsGauges gauges;
  CtlSnapshot ctl;
  std::vector<SiteWindow> sites;

  std::uint64_t duration_ns() const noexcept { return t_end_ns - t_start_ns; }
};

inline bool metrics_enabled() noexcept { return flags() & kMetricsBit; }

/// Enable interval metrics: sets kProfileBit (the windows diff the site
/// counters), rebaselines the delta engine at the current counter values,
/// clears the ring, then sets kMetricsBit. Disabling clears kMetricsBit
/// only — an independently enabled profiler stays on.
void metrics_enable(bool on) noexcept;

/// Deterministic mode for tests and seeded fault replays: windows carry no
/// wall-clock-derived bytes (timestamps, durations, rates, percentiles,
/// time gauges are omitted from the JSON), so two identical runs produce
/// byte-identical window sequences.
void metrics_set_deterministic(bool on) noexcept;
bool metrics_deterministic() noexcept;

/// Close the current window now: diff every counter against the previous
/// tick, sample the gauges, push the window onto the ring and return it.
/// Thread-safe (ticks serialize on an internal mutex); the background
/// sampler and manual callers may interleave, each tick owning the interval
/// since the previous one.
MetricsWindow metrics_tick();

/// metrics_tick() with final_flush set: the residual window the sampler
/// emits at shutdown so deltas sum exactly to lifetime totals.
MetricsWindow metrics_tick_final();

/// Latest closed window (default-constructed if none yet).
MetricsWindow metrics_window();

/// Ring contents, oldest first (at most config().metrics_history entries).
std::vector<MetricsWindow> metrics_history();

/// Drop the ring, rebaseline deltas at current counter values, restart
/// window numbering at 0. Test/benchmark-phase reset.
void metrics_reset() noexcept;

/// One tle-metrics/v1 JSONL record for `w` (single line, no trailing \n).
std::string metrics_json(const MetricsWindow& w);

/// Prometheus text exposition: cumulative process/site counters
/// (tle_*_total) plus the live gauges, from a fresh collection.
std::string prometheus_text();

// --- background sampler (sampler.cpp) -------------------------------------

/// Start the background sampler thread (one tick per metrics_period_ms,
/// streaming to the sinks configured via env or metrics_set_sinks).
/// Enables metrics if needed. Idempotent.
void metrics_start();

/// Stop the sampler and emit the residual final window (final_flush=true)
/// to the configured sinks. Safe to call repeatedly; also runs at exit.
void metrics_stop();

bool metrics_sampler_running() noexcept;

/// Configure the streaming sinks programmatically (same semantics as
/// TLE_METRICS_OUT / TLE_METRICS_PROM; empty string disables a sink).
/// Call before metrics_start().
void metrics_set_sinks(const std::string& jsonl_path,
                       const std::string& prom_path);

/// Read the TLE_METRICS_* environment and, if a sink is requested, start
/// the sampler and arm its atexit shutdown. Called from init_from_env()
/// after the tle-obs dump is registered (see the lifecycle note above).
/// Idempotent.
void init_metrics_from_env() noexcept;

}  // namespace tle::obs
