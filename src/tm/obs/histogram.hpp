// Log2-bucketed latency histogram for the per-site profiler.
//
// Bucket b counts samples in [2^b, 2^(b+1)) nanoseconds, except bucket 0
// which also absorbs 0 ns (so buckets 0..31 cover 0 ns to >= 2.1 s). Adds
// are relaxed fetch_adds by the owning thread; an aggregator may read the
// buckets concurrently — same contract as TxStats.
#pragma once

#include <atomic>
#include <bit>
#include <cstdint>

namespace tle::obs {

struct LatencyHist {
  static constexpr int kBuckets = 32;

  std::atomic<std::uint64_t> buckets[kBuckets] = {};

  /// floor(log2(ns)), clamped: 0/1 ns -> 0, >= 2^31 ns -> 31.
  static int bucket_of(std::uint64_t ns) noexcept {
    if (ns < 2) return 0;
    const int b = std::bit_width(ns) - 1;
    return b < kBuckets ? b : kBuckets - 1;
  }

  /// Lower bound of bucket b in nanoseconds (bucket 0 starts at 0).
  static std::uint64_t bucket_floor(int b) noexcept {
    return b == 0 ? 0 : (std::uint64_t{1} << b);
  }

  void add(std::uint64_t ns) noexcept {
    buckets[bucket_of(ns)].fetch_add(1, std::memory_order_relaxed);
  }

  std::uint64_t total() const noexcept {
    std::uint64_t t = 0;
    for (const auto& b : buckets) t += b.load(std::memory_order_relaxed);
    return t;
  }
};

}  // namespace tle::obs
