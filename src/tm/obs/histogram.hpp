// Log2-bucketed latency histogram for the per-site profiler.
//
// Bucket b counts samples in [2^b, 2^(b+1)) nanoseconds, except bucket 0
// which also absorbs 0 ns (so buckets 0..31 cover 0 ns to >= 2.1 s). Adds
// are relaxed fetch_adds by the owning thread; an aggregator may read the
// buckets concurrently — same contract as TxStats.
#pragma once

#include <atomic>
#include <bit>
#include <cstdint>

namespace tle::obs {

struct LatencyHist {
  static constexpr int kBuckets = 32;

  std::atomic<std::uint64_t> buckets[kBuckets] = {};

  /// floor(log2(ns)), clamped: 0/1 ns -> 0, >= 2^31 ns -> 31.
  static int bucket_of(std::uint64_t ns) noexcept {
    if (ns < 2) return 0;
    const int b = std::bit_width(ns) - 1;
    return b < kBuckets ? b : kBuckets - 1;
  }

  /// Lower bound of bucket b in nanoseconds (bucket 0 starts at 0).
  static std::uint64_t bucket_floor(int b) noexcept {
    return b == 0 ? 0 : (std::uint64_t{1} << b);
  }

  /// Midpoint of bucket b: the single value the whole bucket is summarized
  /// as by percentile() below. Bucket b >= 1 spans [2^b, 2^(b+1)), midpoint
  /// 2^b + 2^(b-1); bucket 0 spans [0, 2) and reports 1.
  static std::uint64_t bucket_midpoint(int b) noexcept {
    return b == 0 ? 1
                  : (std::uint64_t{1} << b) + (std::uint64_t{1} << (b - 1));
  }

  void add(std::uint64_t ns) noexcept {
    buckets[bucket_of(ns)].fetch_add(1, std::memory_order_relaxed);
  }

  std::uint64_t total() const noexcept {
    std::uint64_t t = 0;
    for (const auto& b : buckets) t += b.load(std::memory_order_relaxed);
    return t;
  }
};

/// Approximate q-quantile (q in [0,1]) of a log2 histogram given as a plain
/// bucket-count array of LatencyHist::kBuckets entries.
///
/// Bucket-midpoint rule (the one documented external contract — the C++
/// exports and scripts/summarize_bench.py both implement exactly this):
/// walk buckets in ascending order accumulating counts; the first bucket b
/// whose cumulative count reaches q * total contains the quantile, and the
/// estimate returned is bucket_midpoint(b). q <= 0 selects the first
/// non-empty bucket, q >= 1 the last. Returns 0 for an empty histogram.
inline std::uint64_t percentile_from_buckets(const std::uint64_t* buckets,
                                             double q) noexcept {
  std::uint64_t total = 0;
  for (int b = 0; b < LatencyHist::kBuckets; ++b) total += buckets[b];
  if (!total) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const double target = q * static_cast<double>(total);
  std::uint64_t cum = 0;
  int last = 0;
  for (int b = 0; b < LatencyHist::kBuckets; ++b) {
    if (!buckets[b]) continue;
    last = b;
    cum += buckets[b];
    if (static_cast<double>(cum) >= target)
      return LatencyHist::bucket_midpoint(b);
  }
  return LatencyHist::bucket_midpoint(last);
}

/// percentile_from_buckets over a live histogram (relaxed snapshot of the
/// bucket counts; same approximation contract as aggregation).
inline std::uint64_t percentile(const LatencyHist& h, double q) noexcept {
  std::uint64_t snap[LatencyHist::kBuckets];
  for (int b = 0; b < LatencyHist::kBuckets; ++b)
    snap[b] = h.buckets[b].load(std::memory_order_relaxed);
  return percentile_from_buckets(snap, q);
}

}  // namespace tle::obs
