#include "tm/obs/export.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "tm/control/control.hpp"
#include "tm/governor/governor.hpp"
#include "tm/obs/metrics.hpp"
#include "tm/registry.hpp"
#include "tm/stats.hpp"

namespace tle::gov {

std::string starvation_report() {
  return obs::starvation_table(obs::collect_site_profiles());
}

}  // namespace tle::gov

namespace tle::obs {

namespace {

std::uint64_t ld(const std::atomic<std::uint64_t>& c) noexcept {
  return c.load(std::memory_order_relaxed);
}

void append_fmt(std::string& out, const char* fmt, ...) {
  char buf[512];
  va_list ap;
  va_start(ap, fmt);
  const int n = std::vsnprintf(buf, sizeof buf, fmt, ap);
  va_end(ap);
  if (n > 0) out.append(buf, buf + std::min<int>(n, sizeof buf - 1));
}

std::string json_escape(const char* s) {
  std::string out;
  for (; s && *s; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\')
      (out += '\\') += c;
    else if (static_cast<unsigned char>(c) < 0x20)
      append_fmt(out, "\\u%04x", c);
    else
      out += c;
  }
  return out;
}

void append_hist_json(std::string& out, const char* key,
                      const std::uint64_t* h) {
  append_fmt(out, "\"%s\":[", key);
  bool first = true;
  for (int b = 0; b < LatencyHist::kBuckets; ++b) {
    if (!h[b]) continue;
    append_fmt(out, "%s[%llu,%llu]", first ? "" : ",",
               (unsigned long long)LatencyHist::bucket_floor(b),
               (unsigned long long)h[b]);
    first = false;
  }
  out += ']';
}

}  // namespace

std::vector<SiteProfile> collect_site_profiles() {
  std::vector<SiteProfile> out;
  const int sites = site_count();
  const int hw = slot_high_water();
  for (int id = 0; id < sites; ++id) {
    SiteProfile p;
    p.id = id;
    p.info = id == 0 ? SiteInfo{"(unnamed)", "", 0} : site_info(id);
    for (int s = 0; s < hw; ++s) {
      const SiteCounters* t = peek_site_table(s);
      if (!t) continue;
      const SiteCounters& c = t[id];
      p.attempts += ld(c.attempts);
      p.commits += ld(c.commits);
      p.serial_fallbacks += ld(c.serial_fallbacks);
      p.serial_commits += ld(c.serial_commits);
      p.lock_sections += ld(c.lock_sections);
      p.htm_retries += ld(c.htm_retries);
      p.quiesce_waits += ld(c.quiesce_waits);
      p.drain_waits += ld(c.drain_waits);
      p.storm_gated += ld(c.storm_gated);
      p.watchdog_escalations += ld(c.watchdog_escalations);
      p.stripe_bumps += ld(c.stripe_bumps);
      p.stripe_false_revalidations += ld(c.stripe_false_revalidations);
      p.lazy_sub_commits += ld(c.lazy_sub_commits);
      p.tictoc_extensions += ld(c.tictoc_extensions);
      p.tictoc_extension_fails += ld(c.tictoc_extension_fails);
      p.tictoc_wts_waits += ld(c.tictoc_wts_waits);
      p.tictoc_lock_timeouts += ld(c.tictoc_lock_timeouts);
      p.htm_routed_frees += ld(c.htm_routed_frees);
      p.priv_limbo_routed += ld(c.priv_limbo_routed);
      p.audit_hazard_arms += ld(c.audit_hazard_arms);
      for (int a = 0; a < kAbortCauseCount; ++a)
        p.aborts[a] += ld(c.aborts[a]);
      for (int b = 0; b < LatencyHist::kBuckets; ++b) {
        p.attempt_hist[b] += ld(c.attempt_ns.buckets[b]);
        p.quiesce_hist[b] += ld(c.quiesce_ns.buckets[b]);
      }
    }
    const std::uint64_t activity = p.attempts + p.commits + p.serial_commits +
                                   p.lock_sections + p.aborts_total();
    if (activity) out.push_back(p);
  }
  return out;
}

std::string site_table(const std::vector<SiteProfile>& profiles) {
  std::vector<SiteProfile> ranked = profiles;
  std::sort(ranked.begin(), ranked.end(),
            [](const SiteProfile& a, const SiteProfile& b) {
              if (a.aborts_total() != b.aborts_total())
                return a.aborts_total() > b.aborts_total();
              return a.attempts > b.attempts;
            });
  std::string out;
  out +=
      "== per-site transaction profile (ranked by aborts) ==\n"
      "site                           attempts    commits     aborts  abrt% "
      " conflct validat capacty  serial  p50us  p99us\n";
  for (const SiteProfile& p : ranked) {
    const double rate =
        p.attempts ? 100.0 * static_cast<double>(p.aborts_total()) /
                         static_cast<double>(p.attempts)
                   : 0.0;
    append_fmt(
        out,
        "%-28.28s %10llu %10llu %10llu %6.2f %8llu %7llu %7llu %7llu %6.1f "
        "%6.1f\n",
        p.info.name, (unsigned long long)p.attempts,
        (unsigned long long)p.commits, (unsigned long long)p.aborts_total(),
        rate,
        (unsigned long long)p.aborts[static_cast<int>(AbortCause::Conflict)],
        (unsigned long long)p.aborts[static_cast<int>(AbortCause::Validation)],
        (unsigned long long)p.aborts[static_cast<int>(AbortCause::Capacity)],
        (unsigned long long)(p.serial_fallbacks + p.serial_commits),
        percentile_from_buckets(p.attempt_hist, 0.50) / 1e3,
        percentile_from_buckets(p.attempt_hist, 0.99) / 1e3);
  }
  return out;
}

std::string starvation_table(const std::vector<SiteProfile>& profiles) {
  std::vector<SiteProfile> starved;
  for (const SiteProfile& p : profiles)
    if (p.watchdog_escalations || p.storm_gated || p.drain_waits)
      starved.push_back(p);
  if (starved.empty()) return "";
  std::sort(starved.begin(), starved.end(),
            [](const SiteProfile& a, const SiteProfile& b) {
              if (a.watchdog_escalations != b.watchdog_escalations)
                return a.watchdog_escalations > b.watchdog_escalations;
              if (a.storm_gated != b.storm_gated)
                return a.storm_gated > b.storm_gated;
              return a.drain_waits > b.drain_waits;
            });
  std::string out;
  out +=
      "== governor starvation report (ranked by watchdog escalations) ==\n"
      "site                           watchdog  gated  drains    attempts  "
      "serial\n";
  for (const SiteProfile& p : starved)
    append_fmt(out, "%-28.28s %9llu %6llu %7llu %11llu %7llu\n",
               p.info.name, (unsigned long long)p.watchdog_escalations,
               (unsigned long long)p.storm_gated,
               (unsigned long long)p.drain_waits,
               (unsigned long long)p.attempts,
               (unsigned long long)(p.serial_fallbacks + p.serial_commits));
  return out;
}

std::string obs_json() {
  const StatsSnapshot snap = aggregate_stats();
  const std::vector<SiteProfile> profiles = collect_site_profiles();
  std::string out;
  out += "{\"schema\":\"tle-obs/v1\",";
  append_fmt(out, "\"mode\":\"%s\",", to_string(live_mode()));
  append_fmt(out, "\"stm_algo\":\"%s\",", to_string(config().stm_algo));

  out += "\"stats\":{";
  bool first = true;
  snap.for_each_counter([&](const char* name, std::uint64_t v, const char*) {
    append_fmt(out, "%s\"%s\":%llu", first ? "" : ",", name,
               (unsigned long long)v);
    first = false;
  });
  out += ",\"aborts\":{";
  for (int a = 1; a < kAbortCauseCount; ++a)
    append_fmt(out, "%s\"%s\":%llu", a == 1 ? "" : ",",
               to_string(static_cast<AbortCause>(a)),
               (unsigned long long)snap.aborts[a]);
  append_fmt(out, "},\"aborts_total\":%llu},",
             (unsigned long long)snap.aborts_total());

  out += "\"sites\":[";
  for (std::size_t i = 0; i < profiles.size(); ++i) {
    const SiteProfile& p = profiles[i];
    if (i) out += ',';
    append_fmt(out, "{\"id\":%d,\"name\":\"%s\",\"file\":\"%s\",\"line\":%d,",
               p.id, json_escape(p.info.name).c_str(),
               json_escape(p.info.file).c_str(), p.info.line);
    append_fmt(out,
               "\"attempts\":%llu,\"commits\":%llu,\"serial_fallbacks\":%llu,"
               "\"serial_commits\":%llu,\"lock_sections\":%llu,"
               "\"htm_retries\":%llu,\"quiesce_waits\":%llu,"
               "\"drain_waits\":%llu,\"storm_gated\":%llu,"
               "\"watchdog_escalations\":%llu,\"stripe_bumps\":%llu,"
               "\"stripe_false_revalidations\":%llu,"
               "\"lazy_sub_commits\":%llu,",
               (unsigned long long)p.attempts, (unsigned long long)p.commits,
               (unsigned long long)p.serial_fallbacks,
               (unsigned long long)p.serial_commits,
               (unsigned long long)p.lock_sections,
               (unsigned long long)p.htm_retries,
               (unsigned long long)p.quiesce_waits,
               (unsigned long long)p.drain_waits,
               (unsigned long long)p.storm_gated,
               (unsigned long long)p.watchdog_escalations,
               (unsigned long long)p.stripe_bumps,
               (unsigned long long)p.stripe_false_revalidations,
               (unsigned long long)p.lazy_sub_commits);
    append_fmt(out,
               "\"tictoc_extensions\":%llu,"
               "\"tictoc_extension_fails\":%llu,\"tictoc_wts_waits\":%llu,"
               "\"tictoc_lock_timeouts\":%llu,",
               (unsigned long long)p.tictoc_extensions,
               (unsigned long long)p.tictoc_extension_fails,
               (unsigned long long)p.tictoc_wts_waits,
               (unsigned long long)p.tictoc_lock_timeouts);
    append_fmt(out,
               "\"htm_routed_frees\":%llu,\"priv_limbo_routed\":%llu,"
               "\"audit_hazard_arms\":%llu,",
               (unsigned long long)p.htm_routed_frees,
               (unsigned long long)p.priv_limbo_routed,
               (unsigned long long)p.audit_hazard_arms);
    out += "\"aborts\":{";
    for (int a = 1; a < kAbortCauseCount; ++a)
      append_fmt(out, "%s\"%s\":%llu", a == 1 ? "" : ",",
                 to_string(static_cast<AbortCause>(a)),
                 (unsigned long long)p.aborts[a]);
    append_fmt(out, "},\"aborts_total\":%llu,",
               (unsigned long long)p.aborts_total());
    append_hist_json(out, "attempt_ns_hist", p.attempt_hist);
    out += ',';
    append_hist_json(out, "quiesce_ns_hist", p.quiesce_hist);
    out += '}';
  }
  out += "]}";
  return out;
}

std::string chrome_trace_json(const std::vector<trace::Record>& records) {
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  auto sep = [&] {
    if (!first) out += ',';
    first = false;
  };

  // Degradation windows render on their own synthetic track so storm spans
  // are visible against every thread's slices.
  const unsigned gov_tid = kMaxThreads;
  bool gov_track_named = false;
  auto name_gov_track = [&] {
    if (gov_track_named) return;
    gov_track_named = true;
    sep();
    append_fmt(out,
               "{\"ph\":\"M\",\"pid\":1,\"tid\":%u,\"name\":\"thread_name\","
               "\"args\":{\"name\":\"governor\"}}",
               gov_tid);
  };
  std::uint64_t storm_open_ns = 0;  // ts of an unmatched StormEnter

  // Controller decisions get a second synthetic track: degraded-mode spans
  // plus instants for plan changes, probes, and mode switches.
  const unsigned ctl_tid = kMaxThreads + 1;
  bool ctl_track_named = false;
  auto name_ctl_track = [&] {
    if (ctl_track_named) return;
    ctl_track_named = true;
    sep();
    append_fmt(out,
               "{\"ph\":\"M\",\"pid\":1,\"tid\":%u,\"name\":\"thread_name\","
               "\"args\":{\"name\":\"controller\"}}",
               ctl_tid);
  };
  std::uint64_t degraded_open_ns = 0;  // ts of an unmatched CtlDegradedEnter

  bool slot_seen[kMaxThreads] = {};
  for (const trace::Record& r : records) {
    if (r.slot < kMaxThreads && !slot_seen[r.slot]) {
      slot_seen[r.slot] = true;
      sep();
      append_fmt(out,
                 "{\"ph\":\"M\",\"pid\":1,\"tid\":%u,\"name\":\"thread_name\","
                 "\"args\":{\"name\":\"slot %u\"}}",
                 r.slot, r.slot);
    }
    const char* site_name = r.site ? site_info(r.site).name : "(unnamed)";
    const double ts_us = static_cast<double>(r.ts_ns - r.dur_ns) / 1e3;
    const double dur_us = static_cast<double>(r.dur_ns) / 1e3;
    switch (r.event) {
      case trace::Event::Commit:
        sep();
        append_fmt(out,
                   "{\"ph\":\"X\",\"pid\":1,\"tid\":%u,\"cat\":\"commit\","
                   "\"name\":\"%s\",\"ts\":%.3f,\"dur\":%.3f,"
                   "\"args\":{\"retry\":%u,\"rset\":%u,\"wset\":%u}}",
                   r.slot, json_escape(site_name).c_str(), ts_us, dur_us,
                   r.retry, r.rset, r.wset);
        break;
      case trace::Event::Abort:
        sep();
        append_fmt(out,
                   "{\"ph\":\"X\",\"pid\":1,\"tid\":%u,\"cat\":\"abort\","
                   "\"name\":\"%s\",\"ts\":%.3f,\"dur\":%.3f,"
                   "\"args\":{\"cause\":\"%s\",\"retry\":%u,\"rset\":%u,"
                   "\"wset\":%u}}",
                   r.slot, json_escape(site_name).c_str(), ts_us, dur_us,
                   to_string(r.cause), r.retry, r.rset, r.wset);
        sep();
        append_fmt(out,
                   "{\"ph\":\"i\",\"pid\":1,\"tid\":%u,\"s\":\"t\","
                   "\"cat\":\"abort\",\"name\":\"abort:%s\",\"ts\":%.3f}",
                   r.slot, to_string(r.cause),
                   static_cast<double>(r.ts_ns) / 1e3);
        break;
      case trace::Event::SerialExit:
        sep();
        append_fmt(out,
                   "{\"ph\":\"X\",\"pid\":1,\"tid\":%u,\"cat\":\"serial\","
                   "\"name\":\"%s [serial]\",\"ts\":%.3f,\"dur\":%.3f}",
                   r.slot, json_escape(site_name).c_str(), ts_us, dur_us);
        break;
      case trace::Event::Quiesce:
        sep();
        append_fmt(out,
                   "{\"ph\":\"X\",\"pid\":1,\"tid\":%u,\"cat\":\"quiesce\","
                   "\"name\":\"quiesce\",\"ts\":%.3f,\"dur\":%.3f,"
                   "\"args\":{\"site\":\"%s\"}}",
                   r.slot, ts_us, dur_us, json_escape(site_name).c_str());
        break;
      case trace::Event::StormEnter:
        name_gov_track();
        storm_open_ns = r.ts_ns;
        break;
      case trace::Event::StormExit:
        name_gov_track();
        sep();
        // records is timestamp-sorted, so the open enter (if any) precedes
        // us; an exit whose enter fell off the ring renders as an instant.
        if (storm_open_ns && storm_open_ns <= r.ts_ns) {
          append_fmt(out,
                     "{\"ph\":\"X\",\"pid\":1,\"tid\":%u,\"cat\":\"governor\","
                     "\"name\":\"abort-storm\",\"ts\":%.3f,\"dur\":%.3f}",
                     gov_tid, static_cast<double>(storm_open_ns) / 1e3,
                     static_cast<double>(r.ts_ns - storm_open_ns) / 1e3);
        } else {
          append_fmt(out,
                     "{\"ph\":\"i\",\"pid\":1,\"tid\":%u,\"s\":\"g\","
                     "\"cat\":\"governor\",\"name\":\"storm-exit\","
                     "\"ts\":%.3f}",
                     gov_tid, static_cast<double>(r.ts_ns) / 1e3);
        }
        storm_open_ns = 0;
        break;
      case trace::Event::WatchdogEscalate:
        sep();
        if (r.dur_ns) {
          // Stall detection: the record carries the measured wait.
          append_fmt(out,
                     "{\"ph\":\"X\",\"pid\":1,\"tid\":%u,\"cat\":\"governor\","
                     "\"name\":\"stall\",\"ts\":%.3f,\"dur\":%.3f,"
                     "\"args\":{\"site\":\"%s\",\"cause\":\"%s\"}}",
                     r.slot, ts_us, dur_us, json_escape(site_name).c_str(),
                     to_string(r.cause));
        } else {
          append_fmt(out,
                     "{\"ph\":\"i\",\"pid\":1,\"tid\":%u,\"s\":\"t\","
                     "\"cat\":\"governor\",\"name\":\"watchdog:%s\","
                     "\"ts\":%.3f,\"args\":{\"attempts\":%u}}",
                     r.slot, json_escape(site_name).c_str(),
                     static_cast<double>(r.ts_ns) / 1e3, r.retry);
        }
        break;
      case trace::Event::StripeRevalidate:
        sep();
        append_fmt(out,
                   "{\"ph\":\"i\",\"pid\":1,\"tid\":%u,\"s\":\"t\","
                   "\"cat\":\"htm\",\"name\":\"stripe-revalidate\","
                   "\"ts\":%.3f,\"args\":{\"site\":\"%s\",\"stripe\":%u}}",
                   r.slot, static_cast<double>(r.ts_ns) / 1e3,
                   json_escape(site_name).c_str(), r.rset);
        break;
      case trace::Event::LazySubscribe:
        sep();
        append_fmt(out,
                   "{\"ph\":\"i\",\"pid\":1,\"tid\":%u,\"s\":\"t\","
                   "\"cat\":\"htm\",\"name\":\"lazy-subscribe\","
                   "\"ts\":%.3f,\"args\":{\"site\":\"%s\"}}",
                   r.slot, static_cast<double>(r.ts_ns) / 1e3,
                   json_escape(site_name).c_str());
        break;
      case trace::Event::CtlDegradedEnter:
        name_ctl_track();
        degraded_open_ns = r.ts_ns;
        sep();
        append_fmt(out,
                   "{\"ph\":\"i\",\"pid\":1,\"tid\":%u,\"s\":\"g\","
                   "\"cat\":\"controller\",\"name\":\"degraded-enter:%s\","
                   "\"ts\":%.3f}",
                   ctl_tid, to_string(r.cause),
                   static_cast<double>(r.ts_ns) / 1e3);
        break;
      case trace::Event::CtlDegradedExit:
        name_ctl_track();
        sep();
        if (degraded_open_ns && degraded_open_ns <= r.ts_ns) {
          append_fmt(out,
                     "{\"ph\":\"X\",\"pid\":1,\"tid\":%u,"
                     "\"cat\":\"controller\",\"name\":\"degraded\","
                     "\"ts\":%.3f,\"dur\":%.3f}",
                     ctl_tid, static_cast<double>(degraded_open_ns) / 1e3,
                     static_cast<double>(r.ts_ns - degraded_open_ns) / 1e3);
        } else {
          append_fmt(out,
                     "{\"ph\":\"i\",\"pid\":1,\"tid\":%u,\"s\":\"g\","
                     "\"cat\":\"controller\",\"name\":\"degraded-exit\","
                     "\"ts\":%.3f}",
                     ctl_tid, static_cast<double>(r.ts_ns) / 1e3);
        }
        degraded_open_ns = 0;
        break;
      case trace::Event::CtlPlanChange:
        name_ctl_track();
        sep();
        append_fmt(out,
                   "{\"ph\":\"i\",\"pid\":1,\"tid\":%u,\"s\":\"t\","
                   "\"cat\":\"controller\",\"name\":\"plan:%s\","
                   "\"ts\":%.3f,\"args\":{\"action\":%u,\"cause\":\"%s\"}}",
                   ctl_tid, json_escape(site_name).c_str(),
                   static_cast<double>(r.ts_ns) / 1e3, r.retry,
                   to_string(r.cause));
        break;
      case trace::Event::CtlProbe:
        name_ctl_track();
        sep();
        append_fmt(out,
                   "{\"ph\":\"i\",\"pid\":1,\"tid\":%u,\"s\":\"t\","
                   "\"cat\":\"controller\",\"name\":\"probe\",\"ts\":%.3f,"
                   "\"args\":{\"site\":\"%s\",\"shift\":%u}}",
                   ctl_tid, static_cast<double>(r.ts_ns) / 1e3,
                   json_escape(site_name).c_str(), r.retry);
        break;
      case trace::Event::CtlModeSwitch:
        name_ctl_track();
        sep();
        append_fmt(out,
                   "{\"ph\":\"i\",\"pid\":1,\"tid\":%u,\"s\":\"g\","
                   "\"cat\":\"controller\",\"name\":\"mode-switch:%s\","
                   "\"ts\":%.3f}",
                   ctl_tid,
                   to_string(static_cast<ExecMode>(r.retry)),
                   static_cast<double>(r.ts_ns) / 1e3);
        break;
      case trace::Event::Begin:
      case trace::Event::SerialEnter:
        // Interval starts: already represented by the closing event's dur.
        break;
    }
  }
  if (degraded_open_ns) {
    sep();
    append_fmt(out,
               "{\"ph\":\"i\",\"pid\":1,\"tid\":%u,\"s\":\"g\","
               "\"cat\":\"controller\",\"name\":\"degraded-open\","
               "\"ts\":%.3f}",
               ctl_tid, static_cast<double>(degraded_open_ns) / 1e3);
  }
  if (storm_open_ns) {
    // Storm still active at snapshot time: render the open window as an
    // instant so it is not silently dropped.
    sep();
    append_fmt(out,
               "{\"ph\":\"i\",\"pid\":1,\"tid\":%u,\"s\":\"g\","
               "\"cat\":\"governor\",\"name\":\"storm-enter\",\"ts\":%.3f}",
               gov_tid, static_cast<double>(storm_open_ns) / 1e3);
  }
  out += "]}";
  return out;
}

bool write_text_file(const std::string& path, const std::string& body) {
  if (path.empty() || path == "-") {
    std::fwrite(body.data(), 1, body.size(), stderr);
    return true;
  }
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  return std::fclose(f) == 0 && ok;
}

// ---------------------------------------------------------------------------
// Env-var activation + atexit dump
// ---------------------------------------------------------------------------

namespace {

// constinit + pointer fields: init_from_env() is invoked from another
// translation unit's static initializer (site.cpp), so this state must be
// constant-initialized — a dynamic initializer here could run *afterwards*
// and silently wipe the parsed settings. getenv() pointers stay valid for
// the process lifetime, so storing them raw is safe.
struct EnvSettings {
  bool stats = false;
  bool trace = false;
  const char* stats_path = nullptr;  // null/empty: table+report to stderr only
  const char* trace_path = nullptr;
};
constinit EnvSettings g_env;
constinit std::atomic<bool> g_env_inited{false};

bool flag_only(const char* v) noexcept {
  return !std::strcmp(v, "1") || !std::strcmp(v, "true") ||
         !std::strcmp(v, "yes") || !std::strcmp(v, "on");
}

bool flag_off(const char* v) noexcept {
  return !*v || !std::strcmp(v, "0") || !std::strcmp(v, "false") ||
         !std::strcmp(v, "no") || !std::strcmp(v, "off");
}

}  // namespace

void dump_now() {
  if (g_env.stats) {
    const std::vector<SiteProfile> profiles = collect_site_profiles();
    std::fputs(site_table(profiles).c_str(), stderr);
    const std::string starved = starvation_table(profiles);
    if (!starved.empty()) std::fputs(starved.c_str(), stderr);
    std::fputs(aggregate_stats().report().c_str(), stderr);
    if (g_env.stats_path && *g_env.stats_path &&
        !write_text_file(g_env.stats_path, obs_json()))
      std::fprintf(stderr, "tle-obs: cannot write %s\n", g_env.stats_path);
  }
  if (g_env.trace) {
    const std::string path = g_env.trace_path && *g_env.trace_path
                                 ? g_env.trace_path
                                 : "tle_trace.json";
    if (!write_text_file(path, chrome_trace_json(trace::snapshot())))
      std::fprintf(stderr, "tle-obs: cannot write %s\n", path.c_str());
  }
}

void init_from_env() noexcept {
  if (g_env_inited.exchange(true)) return;
  const char* sd = std::getenv("TLE_STATS_DUMP");
  const char* tr = std::getenv("TLE_TRACE");
  const char* to = std::getenv("TLE_TRACE_OUT");
  if (sd && !flag_off(sd)) {
    g_env.stats = true;
    if (!flag_only(sd)) g_env.stats_path = sd;
  }
  if ((tr && !flag_off(tr)) || (to && *to)) {
    g_env.trace = true;
    if (to && *to) g_env.trace_path = to;
  }
  if (g_env.stats) profile_enable(true);
  if (g_env.trace) trace::enable(true);
  if (g_env.stats || g_env.trace) std::atexit(dump_now);
  // After the dump registration so the metrics shutdown atexit (registered
  // inside, LIFO) stops the sampler and flushes the residual window BEFORE
  // the lifetime dump — window deltas then sum to the dumped totals exactly.
  init_metrics_from_env();
  // Last, so its atexit (LIFO: first to run) joins the controller thread
  // before the metrics shutdown flushes the residual window.
  ctl::init_from_env();
}

}  // namespace tle::obs
