#include "tm/obs/site.hpp"

#include "tm/obs/export.hpp"
#include "tm/registry.hpp"

namespace tle::obs {

namespace {
// Static-init activation: the engine references this translation unit
// (g_flags / site_counters), so this runs in every binary that links the
// TM core — which in turn pulls in export.cpp and arms the atexit dump
// when the TLE_* env vars ask for it.
struct EnvInit {
  EnvInit() noexcept { init_from_env(); }
} g_env_init;
}  // namespace

namespace detail {
std::atomic<std::uint32_t> g_flags{0};
}

void set_flag(std::uint32_t bit, bool on) noexcept {
  if (on)
    detail::g_flags.fetch_or(bit, std::memory_order_release);
  else
    detail::g_flags.fetch_and(~bit, std::memory_order_release);
}

namespace {

// Registration publishes each field individually (a site registers once,
// from whichever thread first executes it, possibly while an aggregator is
// already walking the registry).
struct SiteSlot {
  std::atomic<const char*> name{nullptr};
  std::atomic<const char*> file{nullptr};
  std::atomic<int> line{0};
};

SiteSlot g_sites[kMaxSites];
std::atomic<int> g_site_count{1};  // id 0 reserved for "(unnamed)"
std::atomic<std::uint64_t> g_site_overflow{0};

std::atomic<SiteCounters*> g_tables[kMaxThreads] = {};

}  // namespace

TxSite::TxSite(const char* name, const char* file, int line) noexcept {
  const int i = g_site_count.fetch_add(1, std::memory_order_relaxed);
  if (i >= kMaxSites) {
    // Registry full: fold into the unnamed bucket (and pin the counter so
    // site_count() stays clamped without a saturating CAS loop).
    g_site_count.store(kMaxSites, std::memory_order_relaxed);
    g_site_overflow.fetch_add(1, std::memory_order_relaxed);
    id = 0;
    return;
  }
  g_sites[i].file.store(file, std::memory_order_relaxed);
  g_sites[i].line.store(line, std::memory_order_relaxed);
  g_sites[i].name.store(name, std::memory_order_release);
  id = static_cast<std::uint16_t>(i);
}

int site_count() noexcept {
  const int n = g_site_count.load(std::memory_order_acquire);
  return n < kMaxSites ? n : kMaxSites;
}

std::uint64_t site_overflow_count() noexcept {
  return g_site_overflow.load(std::memory_order_relaxed);
}

SiteInfo site_info(int id) noexcept {
  if (id <= 0 || id >= kMaxSites) return {"(unnamed)", "", 0};
  const char* name = g_sites[id].name.load(std::memory_order_acquire);
  if (!name) return {"(registering)", "", 0};
  return {name, g_sites[id].file.load(std::memory_order_relaxed),
          g_sites[id].line.load(std::memory_order_relaxed)};
}

SiteCounters* thread_site_table(int slot) noexcept {
  SiteCounters* t = g_tables[slot].load(std::memory_order_acquire);
  if (t) return t;
  // First profiled event on this slot: allocate. value-init zeroes the
  // atomics (C++20). Lost races free their copy.
  auto* fresh = new SiteCounters[kMaxSites]();
  SiteCounters* expected = nullptr;
  if (g_tables[slot].compare_exchange_strong(expected, fresh,
                                             std::memory_order_acq_rel))
    return fresh;
  delete[] fresh;
  return expected;
}

SiteCounters* peek_site_table(int slot) noexcept {
  return g_tables[slot].load(std::memory_order_acquire);
}

void reset_site_profiles() noexcept {
  for (int s = 0; s < kMaxThreads; ++s) {
    SiteCounters* t = g_tables[s].load(std::memory_order_acquire);
    if (!t) continue;
    for (int i = 0; i < kMaxSites; ++i) {
      SiteCounters& c = t[i];
      auto zero = [](std::atomic<std::uint64_t>& a) {
        a.store(0, std::memory_order_relaxed);
      };
      zero(c.attempts);
      zero(c.commits);
      zero(c.serial_fallbacks);
      zero(c.serial_commits);
      zero(c.lock_sections);
      zero(c.htm_retries);
      zero(c.quiesce_waits);
      zero(c.drain_waits);
      zero(c.storm_gated);
      zero(c.watchdog_escalations);
      zero(c.stripe_bumps);
      zero(c.stripe_false_revalidations);
      zero(c.lazy_sub_commits);
      zero(c.tictoc_extensions);
      zero(c.tictoc_extension_fails);
      zero(c.tictoc_wts_waits);
      zero(c.tictoc_lock_timeouts);
      for (auto& a : c.aborts) zero(a);
      for (auto& b : c.attempt_ns.buckets) zero(b);
      for (auto& b : c.quiesce_ns.buckets) zero(b);
    }
  }
}

}  // namespace tle::obs
