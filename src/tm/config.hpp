// Runtime configuration for the TLE/TM runtime.
//
// The five algorithm configurations evaluated in the paper (Section VII) map
// onto ExecMode values; quiescence behaviour (Section IV) is controlled
// independently so the Figure-5 microbenchmarks can sweep it.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace tle {

/// How critical sections passed to tle::critical() are executed.
enum class ExecMode : std::uint8_t {
  Lock,           ///< baseline: the original mutex is acquired (no elision)
  StmSpin,        ///< STM elision; condition waits spin in small transactions
  StmCondVar,     ///< STM elision + transaction-friendly condition variables
  StmCondVarNoQ,  ///< as above, honoring TM_NoQuiesce requests
  Htm,            ///< simulated-HTM elision + condvars, serial fallback
};

/// Which STM algorithm the Stm* modes run. MlWt/GlWt mirror GCC libitm's
/// method groups: ml_wt (the default the paper used) and gl_wt (a single
/// global versioned lock, TML-style — cheap reads, zero write concurrency).
/// TicToc is the timestamped-OCC third instance of the commit-protocol seam
/// (src/tm/protocol/): write-back, per-orec {write_ts, read_ts}, commit-time
/// timestamp allocation with read-set extension — no global clock at all.
enum class StmAlgo : std::uint8_t {
  MlWt,    ///< multiple orec locks, write-through (TinySTM-flavoured)
  GlWt,    ///< one global versioned lock, write-through
  TicToc,  ///< timestamped OCC, write-back (TicToc-flavoured)
};

/// When a committing STM transaction performs the epoch-based quiescence wait.
enum class QuiescePolicy : std::uint8_t {
  Always,      ///< every transaction quiesces (GCC libitm since 2016)
  WriterOnly,  ///< only writing transactions quiesce (pre-2016 GCC; breaks
               ///< proxy privatization — kept for the ablation benchmark)
  Never,       ///< no transaction quiesces (the unsafe "NoQ" of Figure 5)
};

/// Why a speculative transaction aborted.
enum class AbortCause : std::uint8_t {
  None = 0,
  Conflict,       ///< encountered an orec locked by another transaction
  Validation,     ///< read-set validation failed (timestamp/value check)
  Capacity,       ///< simulated-HTM read/write set overflowed the L1 model
  Unsafe,         ///< irrevocable operation attempted speculatively
  SerialPending,  ///< another thread requested/holds the serial token
  UserExplicit,   ///< user-requested cancel
  Spurious,       ///< simulated-HTM environmental abort (interrupts, etc.)
  StripeBusy,     ///< bounded wait on an odd commit stripe expired
                  ///< (SerialPending-class: budget-free drain-style retry)
  kCount,
};

/// When a simulated-HTM transaction subscribes to the fallback (serial)
/// lock. The paper's hardware elision subscribes at xbegin and on every
/// access; Dice et al. ("Hardware extensions to make lazy subscription
/// safe", PAPERS.md) analyze why deferring the subscription to commit is
/// unsafe without hardware support. Lazy mode exists to make that hazard
/// observable, not to be used.
enum class HtmSubscription : std::uint8_t {
  Eager,  ///< subscribe at begin + per-access serial_requested() poll (safe)
  Lazy,   ///< subscribe only at commit (UNSAFE: zombie commits possible —
          ///< kept as the measurable reproduction of Dice et al.'s hazard)
};

/// How ml_wt commits interact with the global clock line.
enum class StmClockMode : std::uint8_t {
  Eager,     ///< every write commit fetch_add's gclock (TL2 GV4-style); the
             ///< unique wv enables the skip-validation fast path
  Deferred,  ///< GV5-style: wv = gclock+1 without the RMW; commits always
             ///< validate, readers advance the clock on first contact with
             ///< a fresher timestamp (de-contends the clock line)
};

const char* to_string(ExecMode m) noexcept;
const char* to_string(StmAlgo a) noexcept;
const char* to_string(QuiescePolicy p) noexcept;
const char* to_string(AbortCause c) noexcept;
const char* to_string(HtmSubscription s) noexcept;
const char* to_string(StmClockMode m) noexcept;

/// Global knobs. Mutated only between phases (never while transactions run).
struct RuntimeConfig {
  ExecMode mode = ExecMode::Lock;
  StmAlgo stm_algo = StmAlgo::MlWt;
  QuiescePolicy quiesce = QuiescePolicy::Always;

  /// Honor TxContext::no_quiesce() requests (the paper's TM_NoQuiesce API).
  bool honor_noquiesce = false;

  /// Hardware-transaction attempts before serial fallback. The paper's
  /// experiments use 2 ("fall back to a serial mode after hardware
  /// transactions fail twice").
  ///
  /// Retry-limit semantics (shared with stm_max_retries and the per-section
  /// TxnAttrs::max_retries override): the value is the number of *failed*
  /// budget-consuming speculative attempts tolerated before the section goes
  /// serial. 2 means "fall back after hardware transactions fail twice"
  /// (paper Section II-A); 0 means "one attempt, then serial". Negative
  /// values are invalid — validate_config() rejects them instead of the old
  /// behaviour of silently clamping to 1. With the governor enabled,
  /// SerialPending drain waits do not consume this budget (see
  /// serial_drain_timeout_ns).
  int htm_max_retries = 2;

  /// STM attempts before the GCC-style serialize-for-progress fallback.
  /// Same semantics as htm_max_retries.
  int stm_max_retries = 16;

  /// Simulated L1D capacity model for HTM write sets: sets × ways 64-byte
  /// lines (defaults model a 32 KB 8-way L1).
  unsigned htm_write_sets = 64;
  unsigned htm_write_ways = 8;
  /// Read-set tracking budget (TSX tracks reads beyond L1; model 4× lines).
  unsigned htm_read_sets = 256;
  unsigned htm_read_ways = 8;

  /// Probability that a hardware transaction aborts for environmental
  /// reasons (timer interrupts, TLB misses, cache pressure from other
  /// processes) — the failure class that dominated the paper's TSX runs
  /// (13–18% of PBZip2 transactions fell back after two such aborts).
  /// 0 (the default) keeps tests deterministic; benchmarks reproducing the
  /// paper's HTM statistics set it to a calibrated value. For reproducible,
  /// cause- and site-targeted failure drills use the generalization of this
  /// knob: the seeded plans of tm/fault/fault.hpp (TLE_FAULT_SEED).
  double htm_spurious_abort_rate = 0.0;

  /// Number of commit-sequence stripes the simulated HTM uses. Disjoint
  /// write sets that land on different stripes commit concurrently and do
  /// not invalidate each other's readers; 1 reproduces the old single
  /// global-sequence behaviour (the A/B baseline of bench/abl_commit_scale).
  /// Must be a power of two in [1, kHtmStripeMax] (validate_config()).
  unsigned htm_seq_stripes = 16;

  /// Fallback-lock subscription policy for the simulated HTM. Lazy is the
  /// deliberately unsafe Dice et al. reproduction — see HtmSubscription.
  HtmSubscription htm_subscription = HtmSubscription::Eager;

  /// Global-clock commit protocol for ml_wt — see StmClockMode. Meaningful
  /// only for stm_algo=ml_wt: gl_wt has its own version word and tictoc has
  /// no global clock at all, so validate_config() rejects tictoc+deferred
  /// instead of silently ignoring the knob.
  StmClockMode stm_clock_mode = StmClockMode::Eager;

  /// Ablation A3: when true, each elidable_mutex forms its own quiescence
  /// domain instead of the single erased-lock domain of Section IV-A.
  bool multi_domain = false;

  /// Spin iterations a quiescence or serial-lock waiter burns before
  /// parking on the watched word via atomic::wait. Small, because the
  /// watched transactions run for microseconds when they are short and for
  /// scheduler quanta when they are not — there is no middle worth spinning
  /// through.
  unsigned park_spin_limit = 64;

  /// Deferred frees a thread may accumulate in its limbo list before a
  /// commit forces a synchronous grace period to flush them (bounds worst
  /// case memory held back by lazy reclamation).
  std::size_t limbo_max_pending = 1024;

  // --- contention governor (src/tm/governor/) ----------------------------
  // Cause-aware retry policy, abort-storm throttling, and the starvation
  // watchdog. Off restores the cause-blind legacy policy (kept as an
  // ablation baseline for the lemming-effect benchmark).

  /// Master switch for the governor.
  bool governor = true;

  /// Bound on a SerialPending drain wait: an aborted transaction waits (spin
  /// then timed sleep slices) for the serial lock's pending window to clear
  /// before re-attempting, WITHOUT consuming retry budget — the anti-lemming
  /// rule. If the window is still busy after this many nanoseconds the wait
  /// gives up and the abort consumes budget like any other.
  std::uint64_t serial_drain_timeout_ns = 2'000'000;

  /// Abort-storm hysteresis: the storm gate engages when the sliding-window
  /// abort rate reaches storm_on_rate and releases when it falls back to
  /// storm_off_rate. Rates are aborts/attempts in [0,1]; off must not
  /// exceed on (validate_config()).
  double storm_on_rate = 0.85;
  double storm_off_rate = 0.50;

  /// Speculative attempts a thread accumulates locally before folding its
  /// window into the global abort-rate estimate (no hot-path shared writes).
  /// Must be >= 1.
  unsigned storm_window = 64;

  /// Concurrency admitted through the storm gate while a storm is active.
  /// Must be >= 1 (a zero throttle would deadlock the gate).
  unsigned storm_tokens = 2;

  /// Starvation watchdog: a logical transaction whose abort count reaches
  /// watchdog_max_attempts, or whose wall-clock age since its first abort
  /// reaches watchdog_deadline_ns, is escalated to serial mode regardless of
  /// abort cause or remaining budget. 0 disables the respective bound.
  unsigned watchdog_max_attempts = 64;
  std::uint64_t watchdog_deadline_ns = 50'000'000;

  /// Stall detector: a quiescence wait or serial-drain wait that blocks for
  /// at least this long counts as a stall (gov_stall_events + a flight
  /// recorder event). 0 disables detection.
  std::uint64_t watchdog_stall_ns = 100'000'000;

  // --- interval metrics (src/tm/obs/metrics.hpp) --------------------------

  /// Master switch for the interval-metrics subsystem. When false the env
  /// activation (TLE_METRICS_OUT & co) is ignored and the sampler refuses to
  /// start. The adaptive controller consumes metrics windows, so
  /// validate_config() rejects controller=true with metrics=false.
  bool metrics = true;

  /// Window length of the background metrics sampler in milliseconds
  /// (TLE_METRICS_PERIOD_MS overrides at startup). Must be >= 1.
  unsigned metrics_period_ms = 100;

  /// Depth of the retained window ring served by obs::metrics_history()
  /// (TLE_METRICS_HISTORY overrides at startup). Must be >= 1.
  unsigned metrics_history = 64;

  // --- adaptive mode controller (src/tm/control/) -------------------------
  // Periodic controller that closes the obs→governor loop: classifies each
  // site from its interval abort-cause mix and re-plans retry budget /
  // serial disposition through the same override seam TxnAttrs uses, with a
  // global degraded mode (sustained storms force serial) and gradual
  // recovery probes. See docs/tm-internals.md "Self-tuning control loop".

  /// Master switch for the controller. Requires governor and metrics
  /// (validate_config()). Off means zero overhead on the txn path.
  bool controller = false;

  /// Evaluate once every this many metrics windows (deltas from skipped
  /// windows are accumulated, not dropped). Must be >= 1; int so a negative
  /// period is rejected rather than wrapping.
  int ctl_period_windows = 1;

  /// Minimum speculative attempts a site must show in the accumulated
  /// interval before the controller classifies it. Must be >= 1.
  unsigned ctl_min_samples = 64;

  /// Consecutive evaluations that must propose the same (changed) action
  /// before a site's plan actually changes — the per-site confidence score.
  /// Must be >= 1.
  unsigned ctl_confidence = 2;

  /// Evaluations a freshly changed plan is held (no further change, and no
  /// recovery probing) before the controller reconsiders it.
  unsigned ctl_hold_windows = 4;

  /// Degraded-mode hysteresis on the global abort ratio (aborts / txn
  /// starts of the evaluation interval). Trip at >= ctl_trip_ratio for
  /// ctl_trip_windows consecutive evaluations; a probe interval reads
  /// healthy at <= ctl_release_ratio. The interval must be open:
  /// release strictly below trip (validate_config()).
  double ctl_trip_ratio = 0.90;
  double ctl_release_ratio = 0.50;

  /// Consecutive storm evaluations (global ratio >= trip, or watchdog
  /// escalations observed) required to enter degraded mode. Must be >= 1.
  unsigned ctl_trip_windows = 2;

  /// Initial recovery-probe fraction: 1/2^ctl_probe_shift of attempts are
  /// re-admitted to speculation while probing; each healthy probe interval
  /// halves the shift until full speculation is restored. Must be in
  /// [1, 16] — shift 0 would re-admit everything at once.
  unsigned ctl_probe_shift = 3;

  /// Retry budget granted to conflict/spurious-dominated sites (the "HTM
  /// with backoff" plan). Must be >= 0; overrides the global per-mode limit
  /// but never a per-section TxnAttrs::max_retries.
  int ctl_boost_retries = 8;

  /// Allow the controller to switch the global ExecMode (HTM <-> STM) under
  /// a drained serial section when the degraded storm is capacity-dominated.
  /// Per-site plans never switch modes — mixing per-site STM under a global
  /// HTM phase is unsound (write-through STM commits bypass the HTM commit
  /// stripes, so HTM readers would miss them).
  bool ctl_mode_switch = true;

  /// Returns true if `mode` executes critical sections as STM transactions.
  bool is_stm() const noexcept {
    return mode == ExecMode::StmSpin || mode == ExecMode::StmCondVar ||
           mode == ExecMode::StmCondVarNoQ;
  }
};

/// The process-wide configuration (defined in runtime.cpp).
RuntimeConfig& config() noexcept;

/// Relaxed atomic view of config().mode for reads that may race the adaptive
/// controller's drained mode switch — the only writer that flips the mode
/// while worker threads exist. The switch itself runs inside a serial
/// section (no transaction is live), but threads between attempts still
/// read the byte, so both sides go through atomic_ref. Everything else in
/// RuntimeConfig keeps the "mutated only between phases" contract.
inline ExecMode live_mode() noexcept {
  return std::atomic_ref<ExecMode>(config().mode)
      .load(std::memory_order_relaxed);
}

inline void set_live_mode(ExecMode m) noexcept {
  std::atomic_ref<ExecMode>(config().mode)
      .store(m, std::memory_order_relaxed);
}

/// Coherence check for a configuration about to be installed: returns
/// nullptr when `cfg` is valid, else a static string naming the first
/// violation (negative retry limits, storm rates outside [0,1] or inverted
/// hysteresis, zero storm window/tokens, spurious rate outside [0,1]).
/// Rejecting here replaces the retry loop's old silent clamping.
const char* validate_config(const RuntimeConfig& cfg) noexcept;

/// Convenience: set `mode` plus the quiescence settings the paper pairs with
/// it (NoQ mode honors TM_NoQuiesce; all STM modes quiesce Always).
void set_exec_mode(ExecMode mode) noexcept;

}  // namespace tle
