// Runtime configuration for the TLE/TM runtime.
//
// The five algorithm configurations evaluated in the paper (Section VII) map
// onto ExecMode values; quiescence behaviour (Section IV) is controlled
// independently so the Figure-5 microbenchmarks can sweep it.
#pragma once

#include <cstddef>
#include <cstdint>

namespace tle {

/// How critical sections passed to tle::critical() are executed.
enum class ExecMode : std::uint8_t {
  Lock,           ///< baseline: the original mutex is acquired (no elision)
  StmSpin,        ///< STM elision; condition waits spin in small transactions
  StmCondVar,     ///< STM elision + transaction-friendly condition variables
  StmCondVarNoQ,  ///< as above, honoring TM_NoQuiesce requests
  Htm,            ///< simulated-HTM elision + condvars, serial fallback
};

/// Which STM algorithm the Stm* modes run. Mirrors GCC libitm's method
/// groups: ml_wt (the default the paper used) and gl_wt (a single global
/// versioned lock, TML-style — cheap reads, zero write concurrency).
enum class StmAlgo : std::uint8_t {
  MlWt,  ///< multiple orec locks, write-through (TinySTM-flavoured)
  GlWt,  ///< one global versioned lock, write-through
};

/// When a committing STM transaction performs the epoch-based quiescence wait.
enum class QuiescePolicy : std::uint8_t {
  Always,      ///< every transaction quiesces (GCC libitm since 2016)
  WriterOnly,  ///< only writing transactions quiesce (pre-2016 GCC; breaks
               ///< proxy privatization — kept for the ablation benchmark)
  Never,       ///< no transaction quiesces (the unsafe "NoQ" of Figure 5)
};

/// Why a speculative transaction aborted.
enum class AbortCause : std::uint8_t {
  None = 0,
  Conflict,       ///< encountered an orec locked by another transaction
  Validation,     ///< read-set validation failed (timestamp/value check)
  Capacity,       ///< simulated-HTM read/write set overflowed the L1 model
  Unsafe,         ///< irrevocable operation attempted speculatively
  SerialPending,  ///< another thread requested/holds the serial token
  UserExplicit,   ///< user-requested cancel
  Spurious,       ///< simulated-HTM environmental abort (interrupts, etc.)
  kCount,
};

const char* to_string(ExecMode m) noexcept;
const char* to_string(StmAlgo a) noexcept;
const char* to_string(QuiescePolicy p) noexcept;
const char* to_string(AbortCause c) noexcept;

/// Global knobs. Mutated only between phases (never while transactions run).
struct RuntimeConfig {
  ExecMode mode = ExecMode::Lock;
  StmAlgo stm_algo = StmAlgo::MlWt;
  QuiescePolicy quiesce = QuiescePolicy::Always;

  /// Honor TxContext::no_quiesce() requests (the paper's TM_NoQuiesce API).
  bool honor_noquiesce = false;

  /// Hardware-transaction attempts before serial fallback. The paper's
  /// experiments use 2 ("fall back to a serial mode after hardware
  /// transactions fail twice").
  int htm_max_retries = 2;

  /// STM attempts before the GCC-style serialize-for-progress fallback.
  int stm_max_retries = 16;

  /// Simulated L1D capacity model for HTM write sets: sets × ways 64-byte
  /// lines (defaults model a 32 KB 8-way L1).
  unsigned htm_write_sets = 64;
  unsigned htm_write_ways = 8;
  /// Read-set tracking budget (TSX tracks reads beyond L1; model 4× lines).
  unsigned htm_read_sets = 256;
  unsigned htm_read_ways = 8;

  /// Probability that a hardware transaction aborts for environmental
  /// reasons (timer interrupts, TLB misses, cache pressure from other
  /// processes) — the failure class that dominated the paper's TSX runs
  /// (13–18% of PBZip2 transactions fell back after two such aborts).
  /// 0 (the default) keeps tests deterministic; benchmarks reproducing the
  /// paper's HTM statistics set it to a calibrated value. For reproducible,
  /// cause- and site-targeted failure drills use the generalization of this
  /// knob: the seeded plans of tm/fault/fault.hpp (TLE_FAULT_SEED).
  double htm_spurious_abort_rate = 0.0;

  /// Ablation A3: when true, each elidable_mutex forms its own quiescence
  /// domain instead of the single erased-lock domain of Section IV-A.
  bool multi_domain = false;

  /// Spin iterations a quiescence or serial-lock waiter burns before
  /// parking on the watched word via atomic::wait. Small, because the
  /// watched transactions run for microseconds when they are short and for
  /// scheduler quanta when they are not — there is no middle worth spinning
  /// through.
  unsigned park_spin_limit = 64;

  /// Deferred frees a thread may accumulate in its limbo list before a
  /// commit forces a synchronous grace period to flush them (bounds worst
  /// case memory held back by lazy reclamation).
  std::size_t limbo_max_pending = 1024;

  /// Returns true if `mode` executes critical sections as STM transactions.
  bool is_stm() const noexcept {
    return mode == ExecMode::StmSpin || mode == ExecMode::StmCondVar ||
           mode == ExecMode::StmCondVarNoQ;
  }
};

/// The process-wide configuration (defined in runtime.cpp).
RuntimeConfig& config() noexcept;

/// Convenience: set `mode` plus the quiescence settings the paper pairs with
/// it (NoQ mode honors TM_NoQuiesce; all STM modes quiesce Always).
void set_exec_mode(ExecMode mode) noexcept;

}  // namespace tle
