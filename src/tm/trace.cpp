#include "tm/trace.hpp"

#include <algorithm>
#include <atomic>

#include "tm/registry.hpp"
#include "util/timing.hpp"

namespace tle::trace {

namespace {

std::atomic<bool> g_enabled{false};

struct Ring {
  Record records[kRingSize];
  std::atomic<std::uint64_t> next{0};  // total emitted (head = next % size)
};

Ring g_rings[kMaxThreads];

}  // namespace

const char* to_string(Event e) noexcept {
  switch (e) {
    case Event::Begin: return "begin";
    case Event::Commit: return "commit";
    case Event::Abort: return "abort";
    case Event::SerialEnter: return "serial-enter";
    case Event::SerialExit: return "serial-exit";
    case Event::Quiesce: return "quiesce";
  }
  return "?";
}

void enable(bool on) noexcept { g_enabled.store(on, std::memory_order_release); }

bool enabled() noexcept { return g_enabled.load(std::memory_order_relaxed); }

void emit(Event e, AbortCause cause) noexcept {
  const int slot = my_slot_id();
  Ring& ring = g_rings[slot];
  const std::uint64_t i = ring.next.load(std::memory_order_relaxed);
  Record& r = ring.records[i % kRingSize];
  r.ts_ns = now_ns();
  r.slot = static_cast<std::uint32_t>(slot);
  r.event = e;
  r.cause = cause;
  ring.next.store(i + 1, std::memory_order_release);
}

std::vector<Record> snapshot() {
  std::vector<Record> out;
  for (int s = 0; s < slot_high_water(); ++s) {
    Ring& ring = g_rings[s];
    const std::uint64_t total = ring.next.load(std::memory_order_acquire);
    const std::uint64_t count = std::min<std::uint64_t>(total, kRingSize);
    for (std::uint64_t k = total - count; k < total; ++k)
      out.push_back(ring.records[k % kRingSize]);
  }
  std::sort(out.begin(), out.end(),
            [](const Record& a, const Record& b) { return a.ts_ns < b.ts_ns; });
  return out;
}

void reset() noexcept {
  for (auto& ring : g_rings) ring.next.store(0, std::memory_order_relaxed);
}

}  // namespace tle::trace
