#include "tm/trace.hpp"

#include <algorithm>
#include <atomic>

#include "tm/obs/site.hpp"
#include "tm/registry.hpp"
#include "util/timing.hpp"

namespace tle::trace {

namespace {

// One ring cell: the record packed into four atomic words plus a sequence
// counter. The seqlock makes concurrent snapshot()s safe without slowing
// the owner: the writer's stores are all relaxed atomics bracketed by an
// odd/even seq transition; a reader whose two seq loads disagree (or see an
// odd value) discards the cell. Everything is an atomic access, so a racing
// overwrite is a discarded read, not UB or a TSan report.
struct Cell {
  std::atomic<std::uint32_t> seq{0};  // odd = write in progress
  std::atomic<std::uint64_t> w0{0};   // ts_ns
  std::atomic<std::uint64_t> w1{0};   // dur_ns
  std::atomic<std::uint64_t> w2{0};   // slot | site<<16 | retry<<32 |
                                      //   event<<48 | cause<<56
  std::atomic<std::uint64_t> w3{0};   // rset | wset<<32
};

struct Ring {
  Cell cells[kRingSize];
  std::atomic<std::uint64_t> next{0};   // total emitted (head = next % size)
  std::atomic<std::uint64_t> floor{0};  // records below this are retired
};

Ring g_rings[kMaxThreads];

std::uint64_t pack_meta(std::uint16_t slot, std::uint16_t site,
                        std::uint16_t retry, Event e,
                        AbortCause cause) noexcept {
  return std::uint64_t{slot} | std::uint64_t{site} << 16 |
         std::uint64_t{retry} << 32 |
         std::uint64_t{static_cast<std::uint8_t>(e)} << 48 |
         std::uint64_t{static_cast<std::uint8_t>(cause)} << 56;
}

}  // namespace

const char* to_string(Event e) noexcept {
  switch (e) {
    case Event::Begin: return "begin";
    case Event::Commit: return "commit";
    case Event::Abort: return "abort";
    case Event::SerialEnter: return "serial-enter";
    case Event::SerialExit: return "serial-exit";
    case Event::Quiesce: return "quiesce";
    case Event::StormEnter: return "storm-enter";
    case Event::StormExit: return "storm-exit";
    case Event::WatchdogEscalate: return "watchdog-escalate";
    case Event::StripeRevalidate: return "stripe-revalidate";
    case Event::LazySubscribe: return "lazy-subscribe";
    case Event::CtlPlanChange: return "ctl-plan-change";
    case Event::CtlDegradedEnter: return "ctl-degraded-enter";
    case Event::CtlDegradedExit: return "ctl-degraded-exit";
    case Event::CtlProbe: return "ctl-probe";
    case Event::CtlModeSwitch: return "ctl-mode-switch";
  }
  return "?";
}

void enable(bool on) noexcept { obs::set_flag(obs::kTraceBit, on); }

bool enabled() noexcept { return obs::flags() & obs::kTraceBit; }

void emit(Event e, AbortCause cause, std::uint16_t site, std::uint16_t retry,
          std::uint32_t rset, std::uint32_t wset,
          std::uint64_t dur_ns) noexcept {
  const int slot = my_slot_id();
  Ring& ring = g_rings[slot];
  const std::uint64_t i = ring.next.load(std::memory_order_relaxed);
  Cell& c = ring.cells[i % kRingSize];
  const std::uint32_t s = c.seq.load(std::memory_order_relaxed);
  // Mark the cell unstable before touching the payload: a reader that
  // observes any new word is guaranteed (release fence -> its acquire
  // fence) to also observe seq != its first read, and discards the cell.
  c.seq.store(s + 1, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  c.w0.store(now_ns(), std::memory_order_relaxed);
  c.w1.store(dur_ns, std::memory_order_relaxed);
  c.w2.store(pack_meta(static_cast<std::uint16_t>(slot), site, retry, e, cause),
             std::memory_order_relaxed);
  c.w3.store(std::uint64_t{rset} | std::uint64_t{wset} << 32,
             std::memory_order_relaxed);
  c.seq.store(s + 2, std::memory_order_release);
  ring.next.store(i + 1, std::memory_order_release);
}

std::vector<Record> snapshot() {
  std::vector<Record> out;
  for (int s = 0; s < slot_high_water(); ++s) {
    Ring& ring = g_rings[s];
    const std::uint64_t total = ring.next.load(std::memory_order_acquire);
    const std::uint64_t floor = ring.floor.load(std::memory_order_acquire);
    std::uint64_t begin = total > kRingSize ? total - kRingSize : 0;
    if (begin < floor) begin = floor;
    for (std::uint64_t k = begin; k < total; ++k) {
      Cell& c = ring.cells[k % kRingSize];
      const std::uint32_t s1 = c.seq.load(std::memory_order_acquire);
      if (s1 & 1) continue;  // overwrite in progress right now
      Record r;
      r.ts_ns = c.w0.load(std::memory_order_relaxed);
      r.dur_ns = c.w1.load(std::memory_order_relaxed);
      const std::uint64_t meta = c.w2.load(std::memory_order_relaxed);
      const std::uint64_t sets = c.w3.load(std::memory_order_relaxed);
      std::atomic_thread_fence(std::memory_order_acquire);
      if (c.seq.load(std::memory_order_relaxed) != s1)
        continue;  // lapped while copying; the newer value will be seen
                   // under its own index (>= total), so just drop this one
      r.rset = static_cast<std::uint32_t>(sets);
      r.wset = static_cast<std::uint32_t>(sets >> 32);
      r.slot = static_cast<std::uint16_t>(meta);
      r.site = static_cast<std::uint16_t>(meta >> 16);
      r.retry = static_cast<std::uint16_t>(meta >> 32);
      r.event = static_cast<Event>(static_cast<std::uint8_t>(meta >> 48));
      r.cause = static_cast<AbortCause>(static_cast<std::uint8_t>(meta >> 56));
      out.push_back(r);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const Record& a, const Record& b) { return a.ts_ns < b.ts_ns; });
  return out;
}

void reset() noexcept {
  // Retire everything emitted so far by advancing the floor; rewinding
  // `next` would race live emitters (and resurrect stale cells).
  for (auto& ring : g_rings)
    ring.floor.store(ring.next.load(std::memory_order_acquire),
                     std::memory_order_release);
}

}  // namespace tle::trace
