#include "tm/registry.hpp"

#include <cstdio>
#include <cstdlib>

namespace tle {

namespace {

ThreadSlot g_slots[kMaxThreads];
std::atomic<int> g_high_water{0};
GraceState g_grace;

/// RAII holder so a thread releases its slot at exit.
struct SlotLease {
  int id = -1;

  ~SlotLease() {
    if (id >= 0) {
      // The slot's stats survive (aggregation reads claimed and unclaimed
      // slots alike); only ownership is released.
      g_slots[id].claimed.store(0, std::memory_order_release);
    }
  }
};

thread_local SlotLease t_lease;

int claim_slot() noexcept {
  for (int i = 0; i < kMaxThreads; ++i) {
    std::uint8_t expected = 0;
    if (g_slots[i].claimed.compare_exchange_strong(expected, 1,
                                                   std::memory_order_acq_rel)) {
      int hw = g_high_water.load(std::memory_order_relaxed);
      while (hw < i + 1 && !g_high_water.compare_exchange_weak(
                               hw, i + 1, std::memory_order_relaxed)) {
      }
      return i;
    }
  }
  std::fprintf(stderr, "tle: more than %d concurrent threads\n", kMaxThreads);
  std::abort();
}

}  // namespace

ThreadSlot* slot_table() noexcept { return g_slots; }

int my_slot_id() noexcept {
  if (t_lease.id < 0) t_lease.id = claim_slot();
  return t_lease.id;
}

ThreadSlot& my_slot() noexcept { return g_slots[my_slot_id()]; }

int slot_high_water() noexcept {
  return g_high_water.load(std::memory_order_acquire);
}

GraceState& grace_state() noexcept { return g_grace; }

}  // namespace tle
