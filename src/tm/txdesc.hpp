// The per-thread transaction descriptor.
//
// One TxDesc exists per thread (lazily, on first transactional operation).
// It owns the read set, write (owned-orec) set, undo log, simulated-HTM
// value log and write buffer, allocation logs, and deferred actions — plus
// the setjmp environment that abort-and-retry unwinds to.
#pragma once

#include <algorithm>
#include <csetjmp>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "tm/config.hpp"
#include "tm/meta.hpp"
#include "tm/registry.hpp"
#include "util/rng.hpp"

namespace tle {

/// How TxContext accessors touch memory for the current section.
enum class AccessMode : std::uint8_t {
  Direct,  ///< under the real lock or the serial token: plain accesses
  Stm,     ///< STM instrumented accesses (protocol chosen by TxDesc::algo)
  Htm,     ///< simulated-HTM accesses (value log + write buffer)
};

/// Dedup/capacity tracker for the simulated-HTM L1 model: a tiny
/// set-associative "cache" of 64-byte line tags. touch() returns false when
/// the structure would need to evict a transactional line — a capacity abort.
class LineTracker {
 public:
  /// (Re)size the model. O(sets*ways); called only when the config changes.
  void configure(unsigned sets, unsigned ways) {
    sets_ = sets ? sets : 1;
    ways_ = ways ? ways : 1;
    tags_.assign(static_cast<std::size_t>(sets_) * ways_, 0);
    gens_.assign(tags_.size(), 0);
    gen_ = 1;
    distinct_ = 0;
  }

  unsigned sets() const noexcept { return sets_; }
  unsigned ways() const noexcept { return ways_; }

  /// Start a new transaction: O(1) — old entries become stale via the
  /// generation stamp instead of a table wipe.
  void new_txn() noexcept {
    if (++gen_ == 0) {  // wrapped: genuinely wipe once every 2^32 txns
      std::fill(gens_.begin(), gens_.end(), 0);
      gen_ = 1;
    }
    distinct_ = 0;
  }

  /// Track the line containing `addr`. Returns false on capacity overflow
  /// (the set is full of this transaction's lines — a simulated eviction of
  /// speculative state, i.e. an HTM capacity abort).
  bool touch(const void* addr) noexcept {
    const std::uint64_t line =
        (reinterpret_cast<std::uintptr_t>(addr) >> 6) | (1ULL << 63);
    const std::size_t set =
        static_cast<std::size_t>(line * 0x9E3779B97F4A7C15ULL >> 32) % sets_;
    const std::size_t base = set * ways_;
    for (unsigned w = 0; w < ways_; ++w) {
      if (gens_[base + w] != gen_) {  // free (stale) way
        tags_[base + w] = line;
        gens_[base + w] = gen_;
        ++distinct_;
        return true;
      }
      if (tags_[base + w] == line) return true;  // already tracked
    }
    return false;
  }

  std::size_t distinct_lines() const noexcept { return distinct_; }

 private:
  unsigned sets_ = 1;
  unsigned ways_ = 1;
  std::uint32_t gen_ = 0;
  std::size_t distinct_ = 0;
  std::vector<std::uint64_t> tags_;
  std::vector<std::uint32_t> gens_;
};

/// Generation-stamped open-addressing map from an address (orec slot or
/// tm_var cell) to a 32-bit log position. Backbone of the O(1) hot paths:
/// HTM read-own-write, the read filters, and owned-orec validation all
/// consult one of these instead of scanning a log vector. Between
/// transactions reset is O(1) — stale entries expire via the same
/// generation trick as LineTracker, and the table is wiped only when the
/// 32-bit generation wraps.
class AddrIndex {
 public:
  static constexpr std::uint32_t kNone = 0xFFFFFFFFu;

  /// Start a new transaction: O(1), prior entries become stale.
  void new_txn() noexcept {
    live_ = 0;
    if (++gen_ == 0) {  // wrapped: genuinely wipe once every 2^32 txns
      std::fill(gens_.begin(), gens_.end(), 0);
      gen_ = 1;
    }
  }

  /// Position recorded for `addr` this transaction, or kNone.
  std::uint32_t find(const void* addr) const noexcept {
    if (keys_.empty()) return kNone;
    const std::size_t mask = keys_.size() - 1;
    for (std::size_t i = hash(addr) & mask;; i = (i + 1) & mask) {
      if (gens_[i] != gen_) return kNone;  // stale slot terminates the probe
      if (keys_[i] == addr) return vals_[i];
    }
  }

  /// Record `addr -> pos`, overwriting any same-transaction entry.
  void insert(const void* addr, std::uint32_t pos) {
    // Grow at 3/4 load so probes stay short and never cycle.
    if (keys_.empty() || (live_ + 1) * 4 > keys_.size() * 3) grow();
    const std::size_t mask = keys_.size() - 1;
    for (std::size_t i = hash(addr) & mask;; i = (i + 1) & mask) {
      if (gens_[i] != gen_) {
        keys_[i] = addr;
        vals_[i] = pos;
        gens_[i] = gen_;
        ++live_;
        return;
      }
      if (keys_[i] == addr) {
        vals_[i] = pos;
        return;
      }
    }
  }

  std::size_t size() const noexcept { return live_; }
  std::size_t capacity() const noexcept { return keys_.size(); }

 private:
  static std::size_t hash(const void* addr) noexcept {
    return static_cast<std::size_t>(
        (reinterpret_cast<std::uintptr_t>(addr) >> 3) *
            0x9E3779B97F4A7C15ULL >>
        32);
  }

  void grow() {
    const std::size_t cap = keys_.empty() ? 64 : keys_.size() * 2;
    std::vector<const void*> old_keys = std::move(keys_);
    std::vector<std::uint32_t> old_vals = std::move(vals_);
    std::vector<std::uint32_t> old_gens = std::move(gens_);
    keys_.assign(cap, nullptr);
    vals_.assign(cap, 0);
    gens_.assign(cap, 0);
    const std::size_t mask = cap - 1;
    // Rehash only this transaction's live entries; stale ones are garbage.
    for (std::size_t i = 0; i < old_keys.size(); ++i) {
      if (old_gens[i] != gen_) continue;
      std::size_t j = hash(old_keys[i]) & mask;
      while (gens_[j] == gen_) j = (j + 1) & mask;
      keys_[j] = old_keys[i];
      vals_[j] = old_vals[i];
      gens_[j] = gen_;
    }
  }

  std::uint32_t gen_ = 1;
  std::size_t live_ = 0;
  std::vector<const void*> keys_;
  std::vector<std::uint32_t> vals_;
  std::vector<std::uint32_t> gens_;
};

struct ReadEntry {
  std::atomic<std::uint64_t>* orec;
  std::uint64_t seen;  // unlocked orec value observed at read time
};

struct OwnedOrec {
  std::atomic<std::uint64_t>* orec;
  std::uint64_t prev;  // unlocked value replaced by our lock word
};

struct UndoEntry {
  std::atomic<std::uint64_t>* addr;
  std::uint64_t old;
};

/// TicToc read-set entry: (addr, value, timestamps) — the value makes
/// extension validation ABA-tolerant (a re-write of the same value passes),
/// `seen` carries the {wts, rts} word the read was consistent at.
struct TicTocRead {
  std::atomic<std::uint64_t>* orec;
  const std::atomic<std::uint64_t>* addr;
  std::uint64_t seen;  ///< unlocked tictoc orec word observed at read time
  std::uint64_t val;   ///< value observed (revalidated on extension)
};

/// TicToc write-buffer entry (write-back: memory is untouched until the
/// commit's lock→validate→publish window).
struct TicTocWrite {
  std::atomic<std::uint64_t>* addr;
  std::atomic<std::uint64_t>* orec;  ///< resolved at write time, once
  std::uint64_t val;
};

struct HtmRead {
  const std::atomic<std::uint64_t>* addr;
  std::uint64_t val;
  std::uint32_t stripe;  ///< commit-sequence stripe covering addr
};

struct HtmWrite {
  std::atomic<std::uint64_t>* addr;
  std::uint64_t val;
  std::uint32_t stripe;  ///< commit-sequence stripe covering addr
};

/// Integral member whose move resets the source to zero. The limbo
/// accounting scalars must track the `limbo` vector exactly: a defaulted
/// member-wise move empties the vector but would copy the counters, leaving
/// a moved-from descriptor claiming pending frees it no longer holds (and
/// spuriously force-flushing if reused). jmp_buf makes a hand-written
/// member-init move ctor for TxDesc impossible, so the fix lives here.
template <typename T>
struct ZeroOnMove {
  T v{};
  ZeroOnMove() = default;
  ZeroOnMove(const ZeroOnMove&) = default;
  ZeroOnMove& operator=(const ZeroOnMove&) = default;
  ZeroOnMove(ZeroOnMove&& o) noexcept : v(std::exchange(o.v, T{})) {}
  ZeroOnMove& operator=(ZeroOnMove&& o) noexcept {
    v = std::exchange(o.v, T{});
    return *this;
  }
  ZeroOnMove& operator=(T x) noexcept { v = x; return *this; }
  ZeroOnMove& operator+=(T x) noexcept { v += x; return *this; }
  ZeroOnMove& operator-=(T x) noexcept { v -= x; return *this; }
  T operator++() noexcept { return ++v; }
  operator T() const noexcept { return v; }
};

/// One commit's worth of deferred frees parked until a full all-domain
/// grace period elapses (epoch-based reclamation, paper Section IV-B).
/// Owner-thread access only.
struct LimboBatch {
  std::vector<void*> ptrs;
  /// Grace pass whose completion certifies release: taken as started+1 at
  /// enqueue, so any pass reaching it snapshotted the registry after the
  /// enqueue and therefore waited out every transaction that could still
  /// hold a zombie reference to these blocks.
  std::uint64_t ticket = 0;
  /// Position in this thread's enqueue order (see TxDesc::limbo_certified).
  std::uint64_t local_seq = 0;
};

struct TxDesc {
  // --- abort/retry machinery -------------------------------------------
  std::jmp_buf env;            ///< longjmp target: the retry loop
  unsigned attempts = 0;       ///< aborts of the current logical transaction
  bool force_serial = false;   ///< next attempt runs irrevocably
  int attr_retries = -1;       ///< per-section retry override (-1 = global,
                               ///< 0 = one attempt then serial)
  bool attr_prefer_serial = false;  ///< per-section straight-to-serial hint
  AbortCause last_abort = AbortCause::None;

  // --- identity ----------------------------------------------------------
  ThreadSlot* slot = nullptr;
  int slot_id = -1;
  TxStats* stats = nullptr;

  // --- current-section state ----------------------------------------------
  AccessMode access = AccessMode::Direct;
  std::uint32_t depth = 0;  ///< flat nesting depth (0 = not in a section)
  bool is_serial = false;   ///< holding the serial write token
  bool in_lock_section = false;  ///< Lock-mode critical section (no TM)
  std::uint32_t domain = 0;      ///< quiescence domain (ablation A3)
  std::uint16_t site = 0;   ///< obs::TxSite of the current top-level section
  /// Algorithm of the current attempt (StmProtocol seam dispatch tag, read
  /// on every STM access). Lives in the padding hole after `site` so it
  /// shares the hot section-state cache line without shifting any of the
  /// PR-4-placed fields below.
  StmAlgo algo = StmAlgo::MlWt;
  /// Attempt start stamp (obs enabled only). When kMetricsBit is set the
  /// begin/serial-enter paths also mirror it into slot->txn_begin_ns so the
  /// metrics sampler can compute the oldest-in-flight-transaction gauge
  /// without touching this (unsynchronized) descriptor.
  std::uint64_t obs_t0 = 0;

  // --- STM -------------------------------------------------------------
  std::uint64_t rv = 0;   ///< validity timestamp (snapshot)
  /// Deferred-clock mode (GV5): highest wv this thread ever committed at.
  /// Persists across transactions — per-thread monotonicity keeps a thread's
  /// own commit timestamps strictly increasing without touching gclock.
  std::uint64_t clock_cache = 0;
  /// Deferred-clock mode: max pre-lock timestamp among owned orecs this
  /// transaction. wv must exceed it so per-orec timestamps stay strictly
  /// increasing (two same-wv commits re-releasing one orec at an identical
  /// word would defeat readers' validation).
  std::uint64_t wv_floor = 0;
  bool gl_writer = false; ///< gl_wt: this txn holds the global write lock
  bool read_only = true;
  std::vector<ReadEntry> reads;
  std::vector<OwnedOrec> owned;
  std::vector<UndoEntry> undo;
  AddrIndex read_idx;   ///< orec -> reads[] position (repeat-read filter)
  AddrIndex owned_idx;  ///< orec -> owned[] position (O(1) validation)

  // --- TicToc (timestamped OCC, write-back) ------------------------------
  // The commit-time lock set reuses `owned`/`owned_idx` above: an entry is
  // pushed as each write orec is CAS-locked, so rollback from any abort
  // inside the commit window restores exactly the words taken so far.
  /// Coverage timestamp: every tt_reads entry is certified valid at tt_rv
  /// (in-flight extension maintains this, which is what keeps speculative
  /// snapshots opaque — zombies never see a mixed-epoch view).
  std::uint64_t tt_rv = 0;
  std::vector<TicTocRead> tt_reads;
  std::vector<TicTocWrite> tt_writes;
  AddrIndex tt_read_idx;   ///< orec -> tt_reads[] position (repeat filter)
  AddrIndex tt_write_idx;  ///< cell -> tt_writes[] position (read-own-write)
  /// Commit scratch: distinct write-set orecs, address-ordered for the
  /// deadlock-free lock phase. Member (not stack) to keep its capacity.
  std::vector<std::atomic<std::uint64_t>*> tt_lock_order;

  // --- simulated HTM -------------------------------------------------------
  std::vector<HtmRead> hreads;
  std::vector<HtmWrite> hwrites;
  AddrIndex hread_idx;      ///< cell -> hreads[] position (read-own-read)
  AddrIndex hwrite_idx;     ///< cell -> hwrites[] position (read-own-write)
  LineTracker rcap;  ///< read-set capacity model
  LineTracker wcap;  ///< write-set capacity model
  bool cap_configured = false;
  bool htm_lazy = false;  ///< this attempt uses lazy fallback subscription
  bool sl_held = false;   ///< this attempt holds a serial-lock reader slot

  // Per-stripe snapshot state. A stripe becomes "subscribed" on the first
  // read it covers: hstripe_snap[s] then holds the even sequence value the
  // logged entries of that stripe are valid at. Membership is generation-
  // stamped (same O(1)-reset trick as AddrIndex); hsub[] lists subscribed
  // stripes for O(subscribed) scans instead of O(kHtmStripeMax).
  std::uint64_t hstripe_snap[kHtmStripeMax] = {};
  std::uint32_t hstripe_gen[kHtmStripeMax] = {};
  std::uint32_t hstripe_cur_gen = 0;
  std::uint32_t hsub[kHtmStripeMax] = {};
  unsigned hsub_n = 0;
  // Last block whose stripe was computed, and that stripe: consecutive
  // accesses walk the same 512-byte block, so the hot path skips the hash.
  // Reset per transaction because the mapping depends on htm_seq_stripes.
  std::uintptr_t hblock_cache = ~std::uintptr_t{0};
  unsigned hblock_stripe = 0;
  // True until the next read re-observes ALL subscribed stripes at their
  // snaps in one pass (a "full confirmation"): that pass fixes a real
  // instant t0 at which every logged value was simultaneously live. While
  // clean, a read only has to re-check its OWN stripe — seeing it still at
  // its snap proves the loaded value already existed at t0, so the cut
  // stays consistent with one load instead of O(subscribed).
  bool hsub_dirty = true;

  bool stripe_subscribed(unsigned s) const noexcept {
    return hstripe_gen[s] == hstripe_cur_gen;
  }
  void stripe_subscribe(unsigned s, std::uint64_t snap) noexcept {
    hstripe_snap[s] = snap;
    hstripe_gen[s] = hstripe_cur_gen;
    hsub[hsub_n++] = s;
    hsub_dirty = true;  // t0 does not cover the new stripe yet
  }
  /// O(1) between-transaction reset of the subscription set.
  void stripes_new_txn() noexcept {
    hsub_n = 0;
    hsub_dirty = true;
    hblock_cache = ~std::uintptr_t{0};
    if (++hstripe_cur_gen == 0) {  // wrapped: wipe once every 2^32 txns
      std::fill(hstripe_gen, hstripe_gen + kHtmStripeMax, 0u);
      hstripe_cur_gen = 1;
    }
  }

  // --- quiescence interaction ----------------------------------------------
  bool noquiesce_req = false;  ///< TM_NoQuiesce called at top level
  bool freed_memory = false;   ///< transaction freed memory (§IV-B exception)

  // --- allocation + deferral logs -------------------------------------------
  std::vector<void*> allocs;  ///< released if the transaction aborts
  std::vector<void*> frees;   ///< released after commit (+forced quiescence)
  std::vector<std::function<void()>> deferred;  ///< run post-commit, FIFO

  // --- limbo (grace-period reclamation) -----------------------------------
  // Unlike the per-section logs above, these persist across transactions:
  // clear_logs() must never touch them — a batch lives here until a grace
  // period covers it.
  std::vector<LimboBatch> limbo;  ///< FIFO, stamps nondecreasing
  /// Total pointers across `limbo`. ZeroOnMove: must reset with the vector.
  ZeroOnMove<std::size_t> limbo_pending;
  /// Enqueue counter (stamps local_seq). ZeroOnMove: see limbo_pending.
  ZeroOnMove<std::uint64_t> limbo_seq;
  /// Highest local_seq certified by this thread's own all-domain quiesce:
  /// an ordering quiesce that happens to cover all domains doubles as the
  /// grace period for every batch enqueued before it, even when the shared
  /// counters never moved (fast-path scans and serial sections don't
  /// publish passes).
  ZeroOnMove<std::uint64_t> limbo_certified;

  // --- contention governor state ---------------------------------------
  // Touched only at attempt boundaries (begin/abort/commit), never on the
  // per-access hot path — kept out of the prefix above so the section-state
  // and read/write-set index fields keep their PR-4 cache-line placement.
  unsigned budget_used = 0;    ///< subset of `attempts` that consumed retry
                               ///< budget (drain waits are free — governor)
  /// Per-section gov::Disposition override by cause (0 = Inherit).
  std::uint8_t attr_disp[static_cast<int>(AbortCause::kCount)] = {};
  std::uint64_t txn_start_ns = 0;  ///< watchdog stamp: first abort (or first
                                   ///< gated wait) of this logical txn
  /// Controller plan applied to this logical transaction (ctl::apply, once
  /// per top-level section). Resolution order in gov::on_abort: per-section
  /// TxnAttrs override, then these, then the global defaults. Read only when
  /// config().controller is set, so stale values after a disable are inert.
  int ctl_retries = -1;            ///< controller retry budget (-1 = none)
  std::uint8_t ctl_disp[static_cast<int>(AbortCause::kCount)] = {};
  bool storm_token = false;        ///< holds a storm-gate admission token
  unsigned win_attempts = 0;       ///< storm window: attempts not yet folded
  unsigned win_aborts = 0;         ///< storm window: aborts not yet folded

  Xoshiro256 backoff_rng{0xC0FFEE};

  TxDesc() = default;
  TxDesc(TxDesc&&) = default;
  /// Flushes any still-limbo frees through a forced grace period; defined
  /// in engine.cpp. Runs at thread exit, before the slot lease is released.
  ~TxDesc();

  // ---------------------------------------------------------------------
  /// The calling thread's descriptor (created on first use).
  static TxDesc& current() noexcept;

  bool in_txn() const noexcept { return depth > 0; }

  void clear_logs() noexcept {
    reads.clear();
    owned.clear();
    undo.clear();
    hreads.clear();
    hwrites.clear();
    tt_reads.clear();
    tt_writes.clear();
    tt_lock_order.clear();
    read_idx.new_txn();
    owned_idx.new_txn();
    hread_idx.new_txn();
    hwrite_idx.new_txn();
    tt_read_idx.new_txn();
    tt_write_idx.new_txn();
    stripes_new_txn();
    wv_floor = 0;
    tt_rv = 0;
    allocs.clear();
    frees.clear();
    deferred.clear();
    noquiesce_req = false;
    freed_memory = false;
    read_only = true;
  }
};

// ---------------------------------------------------------------------------
// Engine entry points (engine.cpp). All may longjmp to tx.env on abort.
// ---------------------------------------------------------------------------

/// Begin/commit a speculative attempt in the configured mode.
void tx_begin_speculative(TxDesc& tx);
void tx_commit_speculative(TxDesc& tx);

/// Post-commit duties that never abort: quiescence (per policy and
/// TM_NoQuiesce), deferred frees, deferred actions.
void tx_post_commit(TxDesc& tx);

/// Roll back and longjmp(env, cause). Never returns.
[[noreturn]] void tx_abort(TxDesc& tx, AbortCause cause);

/// Roll back WITHOUT longjmp (used to propagate a user exception out of an
/// atomic section with cancel-and-throw semantics).
void tx_rollback_for_exception(TxDesc& tx);

/// Word accessors dispatched on tx.access.
std::uint64_t tx_read_word(TxDesc& tx, const std::atomic<std::uint64_t>& cell);
void tx_write_word(TxDesc& tx, std::atomic<std::uint64_t>& cell,
                   std::uint64_t value);

/// Serial execution bookkeeping (engine.cpp): acquire/release the serial
/// write token with epoch + stats updates.
void tx_serial_enter(TxDesc& tx);
void tx_serial_exit(TxDesc& tx);

/// Randomized-exponential backoff between retries.
void tx_backoff(TxDesc& tx);

/// Epoch-wait: block until every concurrent transaction in `tx`'s domain
/// (all domains when multi_domain is off, or when `all_domains` is set —
/// required before freeing memory, where safety is global) commits or
/// aborts. Exposed for tests and for tm_fence().
void quiesce_wait(TxDesc& tx, bool all_domains = false);

/// Mode-aware reclamation predicate: true while any OTHER thread has a
/// simulated-HTM transaction in flight. Such readers validate lazily (one
/// value-validated load can land after a privatizing commit), so a free
/// that can race them must route through limbo instead of releasing
/// storage immediately. STM-only and quiet registries return false,
/// preserving the paper's per-mode quiesce-or-free cost model.
bool htm_readers_possible() noexcept;

/// Free a privatized block from NON-transactional code (the post-detach
/// `delete` of a privatizing writer). Routes through limbo when
/// htm_readers_possible(), frees immediately otherwise; inside a section it
/// degrades to the ordinary deferred-free path. See api.hpp's
/// tm_private_delete<T>() / TM_PRIVATE_FREE for the typed wrappers.
void tm_private_free(void* p);

}  // namespace tle
