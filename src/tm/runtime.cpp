// Process-wide runtime state: configuration, the global clock, the orec
// table, the simulated-HTM commit sequence, and statistics aggregation.
#include <cstdio>

#include "tm/config.hpp"
#include "tm/meta.hpp"
#include "tm/obs/site.hpp"
#include "tm/serial_lock.hpp"
#include "tm/stats.hpp"
#include "util/align.hpp"

namespace tle {

namespace {

RuntimeConfig g_config;

struct alignas(kCacheLine) GlobalClock {
  std::atomic<std::uint64_t> value{1};
};
GlobalClock g_clock;

// The striped simulated-HTM commit sequence. One padded seqlock word per
// stripe so disjoint-footprint committers never share a cache line; the
// live stripe count is config().htm_seq_stripes (<= kHtmStripeMax).
struct alignas(kCacheLine) HtmSeqStripe {
  std::atomic<std::uint64_t> value{0};
};
HtmSeqStripe g_htm_stripes[kHtmStripeMax];

struct alignas(kCacheLine) GlLock {
  std::atomic<std::uint64_t> value{0};
};
GlLock g_gl_lock;

// The orec table. Static storage: 64K * 8 B = 512 KB, matching the order of
// libitm's table.
std::atomic<std::uint64_t> g_orecs[kOrecCount];

// TicToc's own orec table (see the design note in meta.hpp: its per-footprint
// timestamps are not coherent with ml_wt's global clock, so the tables must
// not be shared across an stm_algo switch between phases).
std::atomic<std::uint64_t> g_tictoc_orecs[kOrecCount];

SerialLock g_serial_lock;

}  // namespace

RuntimeConfig& config() noexcept { return g_config; }

const char* validate_config(const RuntimeConfig& cfg) noexcept {
  if (cfg.htm_max_retries < 0) return "htm_max_retries must be >= 0";
  if (cfg.stm_max_retries < 0) return "stm_max_retries must be >= 0";
  if (cfg.htm_spurious_abort_rate < 0.0 || cfg.htm_spurious_abort_rate > 1.0)
    return "htm_spurious_abort_rate must be in [0,1]";
  if (cfg.storm_on_rate < 0.0 || cfg.storm_on_rate > 1.0)
    return "storm_on_rate must be in [0,1]";
  if (cfg.storm_off_rate < 0.0 || cfg.storm_off_rate > 1.0)
    return "storm_off_rate must be in [0,1]";
  if (cfg.storm_off_rate > cfg.storm_on_rate)
    return "storm_off_rate must not exceed storm_on_rate (hysteresis)";
  if (cfg.storm_window == 0) return "storm_window must be >= 1";
  if (cfg.storm_tokens == 0)
    return "storm_tokens must be >= 1 (a zero throttle deadlocks the gate)";
  if (cfg.htm_seq_stripes == 0 || cfg.htm_seq_stripes > kHtmStripeMax ||
      (cfg.htm_seq_stripes & (cfg.htm_seq_stripes - 1)) != 0)
    return "htm_seq_stripes must be a power of two in [1, kHtmStripeMax]";
  if (cfg.stm_algo == StmAlgo::TicToc &&
      cfg.stm_clock_mode != StmClockMode::Eager)
    return "stm_clock_mode applies only to ml_wt: tictoc has no global "
           "clock (leave stm_clock_mode at Eager with stm_algo=tictoc)";
  if (cfg.metrics_period_ms == 0) return "metrics_period_ms must be >= 1";
  if (cfg.metrics_history == 0) return "metrics_history must be >= 1";
  if (cfg.controller && !cfg.metrics)
    return "controller requires the interval-metrics subsystem (metrics)";
  if (cfg.controller && !cfg.governor)
    return "controller requires the governor (its plans apply through the "
           "governor's disposition seam)";
  if (cfg.ctl_period_windows <= 0) return "ctl_period_windows must be >= 1";
  if (cfg.ctl_min_samples == 0) return "ctl_min_samples must be >= 1";
  if (cfg.ctl_confidence == 0) return "ctl_confidence must be >= 1";
  if (cfg.ctl_trip_ratio < 0.0 || cfg.ctl_trip_ratio > 1.0)
    return "ctl_trip_ratio must be in [0,1]";
  if (cfg.ctl_release_ratio < 0.0 || cfg.ctl_release_ratio > 1.0)
    return "ctl_release_ratio must be in [0,1]";
  if (cfg.ctl_release_ratio >= cfg.ctl_trip_ratio)
    return "ctl_release_ratio must be strictly below ctl_trip_ratio "
           "(degraded-mode hysteresis is an open interval)";
  if (cfg.ctl_trip_windows == 0) return "ctl_trip_windows must be >= 1";
  if (cfg.ctl_probe_shift == 0 || cfg.ctl_probe_shift > 16)
    return "ctl_probe_shift must be in [1,16] (0 would re-admit all "
           "attempts in one step)";
  if (cfg.ctl_boost_retries < 0) return "ctl_boost_retries must be >= 0";
  return nullptr;
}

void set_exec_mode(ExecMode mode) noexcept {
  // Through the atomic view: the adaptive controller's drained switch may
  // race transaction threads' live_mode() loads (see config.hpp).
  set_live_mode(mode);
  g_config.quiesce = QuiescePolicy::Always;
  g_config.honor_noquiesce = (mode == ExecMode::StmCondVarNoQ);
}

std::atomic<std::uint64_t>& gclock() noexcept { return g_clock.value; }

std::atomic<std::uint64_t>& gl_lock() noexcept { return g_gl_lock.value; }

std::atomic<std::uint64_t>& orec_for(const void* addr) noexcept {
  // Word-granular mapping with a Fibonacci mix so neighbouring fields hit
  // different orecs.
  const std::uintptr_t word = reinterpret_cast<std::uintptr_t>(addr) >> 3;
  const std::size_t idx =
      (word * 0x9E3779B97F4A7C15ULL) >> (64 - kOrecBits);
  return g_orecs[idx];
}

std::atomic<std::uint64_t>& tictoc_orec_for(const void* addr) noexcept {
  const std::uintptr_t word = reinterpret_cast<std::uintptr_t>(addr) >> 3;
  const std::size_t idx =
      (word * 0x9E3779B97F4A7C15ULL) >> (64 - kOrecBits);
  return g_tictoc_orecs[idx];
}

unsigned htm_stripe_index(const void* addr) noexcept {
  // Block-granular orec_for-style Fibonacci mix: addresses in the same
  // 512-byte block share a stripe, distinct blocks scatter uniformly. See
  // the design note in meta.hpp — block granularity is what keeps a small
  // contiguous write set on one or two stripes.
  const std::uintptr_t block =
      reinterpret_cast<std::uintptr_t>(addr) >> kHtmStripeBlockShift;
  const std::uint64_t mixed = block * 0x9E3779B97F4A7C15ULL;
  return static_cast<unsigned>(mixed >> 48) & (g_config.htm_seq_stripes - 1);
}

std::atomic<std::uint64_t>& htm_stripe_seq(unsigned i) noexcept {
  return g_htm_stripes[i].value;
}

SerialLock& serial_lock() noexcept { return g_serial_lock; }

// ---------------------------------------------------------------------------
// Names
// ---------------------------------------------------------------------------

const char* to_string(ExecMode m) noexcept {
  switch (m) {
    case ExecMode::Lock: return "Lock";
    case ExecMode::StmSpin: return "STM+Spin";
    case ExecMode::StmCondVar: return "STM+CondVar";
    case ExecMode::StmCondVarNoQ: return "STM+CondVar+NoQuiesce";
    case ExecMode::Htm: return "HTM+CondVar";
  }
  return "?";
}

const char* to_string(StmAlgo a) noexcept {
  switch (a) {
    case StmAlgo::MlWt: return "ml_wt";
    case StmAlgo::GlWt: return "gl_wt";
    case StmAlgo::TicToc: return "tictoc";
  }
  return "?";
}

const char* to_string(QuiescePolicy p) noexcept {
  switch (p) {
    case QuiescePolicy::Always: return "Always";
    case QuiescePolicy::WriterOnly: return "WriterOnly";
    case QuiescePolicy::Never: return "Never";
  }
  return "?";
}

const char* to_string(AbortCause c) noexcept {
  switch (c) {
    case AbortCause::None: return "none";
    case AbortCause::Conflict: return "conflict";
    case AbortCause::Validation: return "validation";
    case AbortCause::Capacity: return "capacity";
    case AbortCause::Unsafe: return "unsafe";
    case AbortCause::SerialPending: return "serial-pending";
    case AbortCause::UserExplicit: return "user-explicit";
    case AbortCause::Spurious: return "spurious";
    case AbortCause::StripeBusy: return "stripe-busy";
    case AbortCause::kCount: break;
  }
  return "?";
}

const char* to_string(HtmSubscription s) noexcept {
  switch (s) {
    case HtmSubscription::Eager: return "eager";
    case HtmSubscription::Lazy: return "lazy";
  }
  return "?";
}

const char* to_string(StmClockMode m) noexcept {
  switch (m) {
    case StmClockMode::Eager: return "eager";
    case StmClockMode::Deferred: return "deferred";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// Statistics
// ---------------------------------------------------------------------------

StatsSnapshot aggregate_stats() noexcept {
  StatsSnapshot out;
  ThreadSlot* slots = slot_table();
  const int hw = slot_high_water();
  auto get = [](const TxStats::Counter& c) {
    return c.load(std::memory_order_relaxed);
  };
  for (int i = 0; i < hw; ++i) {
    TxStats& s = slots[i].stats;
    // The X-macro guarantees every scalar counter is summed; the
    // static_assert in stats.hpp guarantees there is nothing else to sum.
#define TLE_TXSTATS_SUM(name, desc) out.name += get(s.name);
    TLE_TXSTATS_COUNTERS(TLE_TXSTATS_SUM)
#undef TLE_TXSTATS_SUM
    for (int a = 0; a < kAbortCauseCount; ++a)
      out.aborts[a] += get(s.aborts[a]);
  }
  // Registry overflow is a process-level event (no thread owns it): folded
  // in here so it reaches every consumer of the X-macro snapshot. It
  // survives reset_stats() deliberately — the registry stays full.
  out.obs_site_overflow += obs::site_overflow_count();
  return out;
}

void reset_stats() noexcept {
  ThreadSlot* slots = slot_table();
  const int hw = slot_high_water();
  for (int i = 0; i < hw; ++i) slots[i].stats.reset();
}

std::string StatsSnapshot::report() const {
  char buf[5120];
  int n = std::snprintf(
      buf, sizeof buf,
      "txn starts            %12llu\n"
      "commits               %12llu  (read-only %llu)\n"
      "serial commits        %12llu  (fallbacks %llu)\n"
      "lock sections         %12llu\n"
      "aborts                %12llu  (%.3f%% of starts)\n"
      "  conflict            %12llu\n"
      "  validation          %12llu\n"
      "  capacity            %12llu\n"
      "  unsafe              %12llu\n"
      "  serial-pending      %12llu\n"
      "  user-explicit       %12llu\n"
      "  spurious (sim)      %12llu\n"
      "  stripe-busy         %12llu\n"
      "stripe bumps/f-revals %12llu / %llu (lazy-sub commits %llu)\n"
      "gclock advances (GV5) %12llu\n"
      "tictoc ext ok/fail    %12llu / %llu (lock waits %llu, timeouts %llu)\n"
      "quiesce calls/waits   %12llu / %llu (spins %llu, blocked %.3f ms)\n"
      "grace scans/shared    %12llu / %llu (parked waits %llu)\n"
      "limbo enq/drained     %12llu / %llu (forced flushes %llu)\n"
      "noquiesce req/honored %12llu / %llu (ignored: nested %llu, free %llu)\n"
      "tm alloc/free         %12llu / %llu\n"
      "deferred actions      %12llu\n"
      "condvar waits/timeouts%12llu / %llu\n"
      "htm retries           %12llu\n"
      "read dedup stm/htm    %12llu / %llu (htm write-buffer hits %llu)\n"
      "faults inj/delays     %12llu / %llu (forced: serial %llu, flush "
      "%llu)\n"
      "gov dispositions      %12llu serial / %llu backoff / %llu immediate\n"
      "gov drains/timeouts   %12llu / %llu\n"
      "gov storm enter/exit  %12llu / %llu (gated %llu)\n"
      "gov watchdog/stalls   %12llu / %llu\n"
      "ctl evals/replans     %12llu / %llu (forced serial %llu, boosts %llu)\n"
      "ctl degraded in/out   %12llu / %llu (probes %llu, flaps %llu, mode "
      "switches %llu)\n",
      (unsigned long long)txn_starts, (unsigned long long)commits,
      (unsigned long long)commits_readonly, (unsigned long long)serial_commits,
      (unsigned long long)serial_fallbacks, (unsigned long long)lock_sections,
      (unsigned long long)aborts_total(), 100.0 * abort_rate(),
      (unsigned long long)aborts[static_cast<int>(AbortCause::Conflict)],
      (unsigned long long)aborts[static_cast<int>(AbortCause::Validation)],
      (unsigned long long)aborts[static_cast<int>(AbortCause::Capacity)],
      (unsigned long long)aborts[static_cast<int>(AbortCause::Unsafe)],
      (unsigned long long)aborts[static_cast<int>(AbortCause::SerialPending)],
      (unsigned long long)aborts[static_cast<int>(AbortCause::UserExplicit)],
      (unsigned long long)aborts[static_cast<int>(AbortCause::Spurious)],
      (unsigned long long)aborts[static_cast<int>(AbortCause::StripeBusy)],
      (unsigned long long)stripe_bumps,
      (unsigned long long)stripe_false_revalidations,
      (unsigned long long)lazy_sub_commits,
      (unsigned long long)gclock_advances,
      (unsigned long long)tictoc_extensions,
      (unsigned long long)tictoc_extension_fails,
      (unsigned long long)tictoc_wts_waits,
      (unsigned long long)tictoc_lock_timeouts,
      (unsigned long long)quiesce_calls, (unsigned long long)quiesce_waits,
      (unsigned long long)quiesce_spins, quiesce_wait_ns / 1e6,
      (unsigned long long)grace_scans, (unsigned long long)grace_shared,
      (unsigned long long)parked_waits, (unsigned long long)limbo_enqueued,
      (unsigned long long)limbo_drained,
      (unsigned long long)limbo_forced_flush,
      (unsigned long long)noquiesce_requests,
      (unsigned long long)noquiesce_honored,
      (unsigned long long)noquiesce_ignored_nested,
      (unsigned long long)noquiesce_ignored_free,
      (unsigned long long)tm_allocs, (unsigned long long)tm_frees,
      (unsigned long long)deferred_run, (unsigned long long)condvar_waits,
      (unsigned long long)condvar_timeouts, (unsigned long long)htm_retries,
      (unsigned long long)stm_read_dedup, (unsigned long long)htm_read_dedup,
      (unsigned long long)htm_rw_hits, (unsigned long long)faults_injected,
      (unsigned long long)fault_delays,
      (unsigned long long)fault_forced_serial,
      (unsigned long long)fault_forced_flush,
      (unsigned long long)gov_serial_immediate,
      (unsigned long long)gov_backoffs,
      (unsigned long long)gov_immediate_retries,
      (unsigned long long)gov_drain_waits,
      (unsigned long long)gov_drain_timeouts,
      (unsigned long long)gov_storm_enters,
      (unsigned long long)gov_storm_exits,
      (unsigned long long)gov_storm_gated,
      (unsigned long long)gov_watchdog_escalations,
      (unsigned long long)gov_stall_events, (unsigned long long)ctl_evals,
      (unsigned long long)ctl_plan_changes,
      (unsigned long long)ctl_forced_serial,
      (unsigned long long)ctl_boost_applied,
      (unsigned long long)ctl_degraded_enters,
      (unsigned long long)ctl_degraded_exits,
      (unsigned long long)ctl_probe_attempts, (unsigned long long)ctl_flaps,
      (unsigned long long)ctl_mode_switches);
  std::string out(buf, buf + (n < 0 ? 0 : n));
  if (obs_site_overflow) {
    char warn[160];
    const int w = std::snprintf(
        warn, sizeof warn,
        "WARNING: %llu TLE_TX_SITE registration(s) overflowed the %d-entry "
        "site registry; their profiles folded into \"(unnamed)\"\n",
        (unsigned long long)obs_site_overflow, obs::kMaxSites);
    if (w > 0) out.append(warn, warn + w);
  }
  return out;
}

}  // namespace tle
