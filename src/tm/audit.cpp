#include "tm/audit.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

#include "tm/obs/site.hpp"
#include "tm/registry.hpp"
#include "tm/txdesc.hpp"

namespace tle::audit {

namespace {

std::atomic<bool> g_enabled{false};

struct HazardState {
  // Epoch snapshot taken at the unquiesced commit; owner-thread access only.
  std::uint64_t snapshot[kMaxThreads] = {};
  // Sample of the unquiesced transaction's written cells: only accesses to
  // these addresses (or a full sample overflow) are hazardous.
  static constexpr int kMaxWrites = 64;
  const void* writes[kMaxWrites] = {};
  int nwrites = 0;
  bool writes_overflowed = false;
  bool armed = false;
  // TLE_TX_SITE of the commit that armed the hazard, so a finding names
  // the offending section instead of just the thread.
  std::uint16_t site = 0;
};

HazardState g_hazard[kMaxThreads];

std::mutex g_report_mutex;
Report g_report;

constexpr std::size_t kMaxSamples = 8;

}  // namespace

void enable(bool on) noexcept { g_enabled.store(on, std::memory_order_release); }

bool enabled() noexcept { return g_enabled.load(std::memory_order_relaxed); }

Report report() {
  std::lock_guard<std::mutex> g(g_report_mutex);
  return g_report;
}

void reset() {
  std::lock_guard<std::mutex> g(g_report_mutex);
  g_report = Report{};
  for (auto& h : g_hazard) h.armed = false;
}

void on_unquiesced_commit(TxDesc& tx) noexcept {
  HazardState& h = g_hazard[tx.slot_id];
  ThreadSlot* slots = slot_table();
  const int hw = slot_high_water();
  bool any_peer_running = false;
  for (int i = 0; i < hw; ++i) {
    const std::uint64_t s =
        i == tx.slot_id ? 0 : slots[i].seq.load(std::memory_order_acquire);
    h.snapshot[i] = s;
    any_peer_running |= (s & 1) != 0;
  }
  // Record (a sample of) what the transaction wrote: those are the
  // locations a privatization race through this commit can involve.
  h.nwrites = 0;
  h.writes_overflowed = false;
  for (const UndoEntry& u : tx.undo) {
    if (h.nwrites >= HazardState::kMaxWrites) {
      h.writes_overflowed = true;  // fall back to address-insensitive mode
      break;
    }
    h.writes[h.nwrites++] = u.addr;
  }
  for (const HtmWrite& w : tx.hwrites) {
    if (h.nwrites >= HazardState::kMaxWrites) {
      h.writes_overflowed = true;
      break;
    }
    h.writes[h.nwrites++] = w.addr;
  }
  h.armed = any_peer_running;
  h.site = tx.site;
  // Per-site obs attribution: the ranked site table can then name the
  // TLE_TX_SITE whose unquiesced commits arm privatization hazards.
  if (h.armed && (obs::flags() & obs::kProfileBit))
    obs::site_counters(tx.slot_id, tx.site)
        .audit_hazard_arms.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> g(g_report_mutex);
  ++g_report.unquiesced_commits;
}

void on_quiesced(TxDesc& tx) noexcept {
  g_hazard[tx.slot_id].armed = false;
}

void on_unsafe_access(const void* addr) noexcept {
  const int me = my_slot_id();
  HazardState& h = g_hazard[me];
  if (!h.armed) return;
  // Address filter: only data the unquiesced commit wrote can have been
  // privatized by it (unless the sample overflowed).
  if (!h.writes_overflowed) {
    bool mine = false;
    for (int i = 0; i < h.nwrites; ++i)
      if (h.writes[i] == addr) {
        mine = true;
        break;
      }
    if (!mine) return;
  }
  ThreadSlot* slots = slot_table();
  const int hw = slot_high_water();
  bool still_running = false;
  int witness = -1;
  for (int i = 0; i < hw; ++i) {
    const std::uint64_t snap = h.snapshot[i];
    if (!(snap & 1)) continue;  // peer was not in a transaction
    if (slots[i].seq.load(std::memory_order_acquire) == snap) {
      still_running = true;
      witness = i;
      break;
    }
  }
  if (!still_running) {
    // Every overlapping transaction has finished: the hazard has expired.
    h.armed = false;
    return;
  }
  std::lock_guard<std::mutex> g(g_report_mutex);
  ++g_report.flagged_accesses;
  if (g_report.samples.size() < kMaxSamples) {
    const char* site_name = obs::site_info(h.site).name;
    char buf[192];
    std::snprintf(buf, sizeof buf,
                  "thread %d touched %p non-transactionally while thread %d's "
                  "transaction (overlapping an unquiesced commit at site "
                  "\"%s\") still runs",
                  me, addr, witness, site_name);
    g_report.samples.emplace_back(buf);
  }
}

}  // namespace tle::audit
