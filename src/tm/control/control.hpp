// Adaptive exec-mode controller: the periodic policy loop that closes the
// obs→governor circle. It consumes the interval windows PR 8 built
// (obs::metrics_window()/metrics_history()) and re-plans, per site, the
// retry budget and serial disposition that gov::on_abort resolves below any
// per-section TxnAttrs override — the paper's "which mode wins depends on
// the workload" observation turned into a runtime policy.
//
// Decision table (per site, evaluated over the accumulated interval when it
// holds >= ctl_min_samples speculative attempts; ratios are aborts/attempts):
//
//   abort ratio <= ctl_release_ratio            -> Auto   (no overrides)
//   capacity-dominated (>= half of aborts)      -> Serial (speculation can't
//                                                  fit; probe recovery later)
//   abort ratio >= ctl_trip_ratio               -> Serial (tiny+hot thrash:
//                                                  speculation is wasted work)
//   conflict/validation-dominated               -> Boost  ("HTM with backoff":
//                                                  ctl_boost_retries budget,
//                                                  Backoff disposition)
//   spurious-dominated                          -> Boost  (Immediate disp —
//                                                  uncorrelated, retry hard)
//   otherwise (middling, mixed)                 -> keep the current plan
//
// Robustness machinery, all of it deliberately the governor's storm throttle
// generalized to mode selection:
//   * per-site confidence scoring: a changed classification must repeat for
//     ctl_confidence consecutive evaluations before the plan moves, and a
//     fresh plan holds for ctl_hold_windows evaluations — bounded flapping;
//   * degraded mode: a global abort ratio >= ctl_trip_ratio (or watchdog
//     escalations) sustained for ctl_trip_windows evaluations forces every
//     attempt serial; after the hold expires, recovery probes re-admit
//     1/2^ctl_probe_shift of attempts and each healthy interval halves the
//     shift until full speculation returns (or a re-trip flaps back);
//   * serial-planned sites recover the same way, through per-site probes;
//   * optionally (ctl_mode_switch) a capacity-dominated degraded entry
//     switches the global ExecMode HTM→STM under a drained serial section —
//     never per site: write-through STM commits bypass the HTM commit
//     stripes, so mixing per-site STM under a global HTM phase is unsound.
//
// Determinism contract: every decision is a pure function of counter deltas
// (never wall-clock durations, rates, or percentiles — exactly the fields
// deterministic metrics mode zeroes), so under a pinned TLE_FAULT_SEED with
// deterministic metrics the decision sequence — and decision_trace_json() —
// is byte-identical across runs.
//
// Threading: evaluation state lives behind one mutex, touched only by
// whoever feeds windows (the controller thread started by ctl::start(), or
// a test calling on_window() directly). The transaction path reads plans
// through lock-free per-site words (ctl::apply — one relaxed load per
// logical transaction when config().controller is set, nothing otherwise).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "tm/config.hpp"
#include "tm/obs/metrics.hpp"

namespace tle {
struct TxDesc;
}

namespace tle::ctl {

/// Global controller state machine. Degraded forces every attempt serial;
/// Probing admits 1/2^probe_shift of attempts back to speculation.
enum class State : std::uint8_t { Normal, Degraded, Probing };

/// Per-site plan. Auto = no overrides; Boost = ctl_boost_retries budget plus
/// a cause-matched disposition; Serial = force the serial path (with
/// per-site recovery probes once the hold expires).
enum class SiteAction : std::uint8_t { Auto, Boost, Serial };

enum class DecisionKind : std::uint8_t {
  SitePlan,        ///< a site's action changed (detail = new SiteAction)
  SiteProbeStart,  ///< a Serial site began recovery probing
  SiteProbeWiden,  ///< healthy probe interval: site shift halved
  SiteProbeReset,  ///< probe interval re-tripped: shift and hold reset
  DegradedEnter,   ///< global trip (detail = dominant AbortCause)
  ProbeStart,      ///< degraded hold expired: global probing began
  ProbeWiden,      ///< healthy global probe interval: shift halved
  Flap,            ///< probing re-tripped back to degraded
  DegradedExit,    ///< global probe shift reached 0: full recovery
  ModeSwitch,      ///< drained global ExecMode switch (detail = new mode)
};

/// One decision-trace record. `seq` is 1-based and monotone; `window` is the
/// metrics-window index of the evaluation that produced it; `site` is -1 for
/// global decisions. `detail` is kind-dependent (see DecisionKind).
struct Decision {
  std::uint64_t seq = 0;
  std::uint64_t eval = 0;
  std::uint64_t window = 0;
  std::int32_t site = -1;
  DecisionKind kind = DecisionKind::SitePlan;
  State state = State::Normal;
  std::uint8_t shift = 0;
  std::uint8_t detail = 0;
};

/// Snapshot of one site's live plan (what ctl::apply consults).
struct SitePlanView {
  SiteAction action = SiteAction::Auto;
  int retries = -1;              ///< -1 = inherit the global/mode limit
  unsigned probe_shift = 0;      ///< >0: Serial site probing recovery
  AbortCause dominant = AbortCause::None;
};

/// Cumulative controller health, exported into every tle-metrics/v1 record.
struct Status {
  bool enabled = false;
  State state = State::Normal;
  unsigned probe_shift = 0;
  std::uint64_t evals = 0;
  std::uint64_t decisions = 0;
  std::uint64_t plan_changes = 0;
  std::uint64_t flaps = 0;
  std::uint64_t degraded_enters = 0;
  std::uint64_t degraded_exits = 0;
  std::uint64_t mode_switches = 0;
};

const char* to_string(State s) noexcept;
const char* to_string(SiteAction a) noexcept;
const char* to_string(DecisionKind k) noexcept;

/// Clear every plan, the state machine, accumulators, and the decision
/// trace. Call between test/benchmark phases (config().controller itself is
/// the enable switch and is not touched).
void reset() noexcept;

/// Transaction-path consult: stamps tx.ctl_retries / tx.ctl_disp from the
/// site's plan and may set tx.force_serial (degraded overlay, Serial plans
/// outside their probe fraction). Called by detail::run_transaction once per
/// top-level section when config().controller is set. Lock-free.
void apply(TxDesc& tx) noexcept;

/// Feed one closed metrics window. Accumulates its deltas and, every
/// ctl_period_windows windows, runs an evaluation pass. No-op when the
/// controller is disabled or for final_flush windows (shutdown residue must
/// never re-plan). Tests call this directly for thread-free determinism.
void on_window(const obs::MetricsWindow& w);

Status status() noexcept;
SitePlanView site_plan(int site) noexcept;

/// Decision trace, oldest first (bounded ring; see control.cpp).
std::vector<Decision> decisions();

/// Decisions with seq > `after_seq` — the incremental feed the metrics
/// exporter uses to embed fresh decisions into each JSONL record.
std::vector<Decision> decisions_since(std::uint64_t after_seq);

/// The whole retained trace as one deterministic tle-ctl-trace/v1 JSON
/// document (no timestamps — byte-identical across pinned-seed runs).
std::string decision_trace_json();

// --- controller thread ------------------------------------------------------

/// Start the controller thread: polls the metrics ring every
/// metrics_period_ms and feeds every window it has not yet consumed to
/// on_window(). Ensures metrics (and the sampler) are running. Idempotent;
/// no-op unless config().controller is set.
void start();

/// Join the controller thread. Called by obs::metrics_stop() BEFORE the
/// residual final window flushes, so no evaluation — and no counter bump
/// from one — can land after the stream's final record (the shutdown
/// ordering contract pinned by ControlShutdown tests). Idempotent.
void stop();

bool running() noexcept;

/// TLE_CTL=1 enables the controller and starts its thread (requires the
/// governor; enables metrics). TLE_CTL_PERIOD_WINDOWS / TLE_CTL_MIN_SAMPLES
/// override the corresponding knobs. Called from obs::init_from_env() after
/// the metrics env activation. Idempotent.
void init_from_env() noexcept;

}  // namespace tle::ctl
