// Adaptive exec-mode controller implementation. See control.hpp for the
// decision table, state machine, and determinism contract.
#include "tm/control/control.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <mutex>
#include <thread>

#include "tm/api.hpp"
#include "tm/fault/fault.hpp"
#include "tm/registry.hpp"
#include "tm/trace.hpp"
#include "tm/txdesc.hpp"
#include "util/align.hpp"

namespace tle::ctl {

namespace {

constexpr int kSites = obs::kMaxSites;

/// Retained decision-trace depth. Old decisions are dropped in blocks so
/// the byte-identity tests (which stay far below this) never see a partial
/// window of history.
constexpr std::size_t kTraceCap = 8192;

constexpr int cause_idx(AbortCause c) noexcept { return static_cast<int>(c); }

// Per-site plan word, read lock-free by apply():
//   bits  0..7   SiteAction
//   bits  8..15  probe shift (Serial plans only)
//   bits 16..23  dominant AbortCause
//   bits 32..63  retries + 1 (0 = inherit)
std::uint64_t pack_plan(SiteAction a, unsigned shift, AbortCause dom,
                        int retries) noexcept {
  if (a == SiteAction::Auto) return 0;
  return static_cast<std::uint64_t>(a) |
         (static_cast<std::uint64_t>(shift & 0xFF) << 8) |
         (static_cast<std::uint64_t>(dom) << 16) |
         (static_cast<std::uint64_t>(retries >= 0 ? retries + 1 : 0) << 32);
}

/// Interval accumulator: counter deltas summed since the last evaluation.
struct Acc {
  std::uint64_t attempts = 0;
  std::uint64_t commits = 0;
  std::uint64_t serial_fallbacks = 0;
  std::uint64_t aborts[kAbortCauseCount] = {};

  std::uint64_t aborts_total() const noexcept {
    std::uint64_t t = 0;
    for (auto a : aborts) t += a;
    return t;
  }
  double abort_ratio() const noexcept {
    return attempts ? static_cast<double>(aborts_total()) /
                          static_cast<double>(attempts)
                    : 0.0;
  }
  void clear() noexcept { *this = Acc{}; }
};

struct SiteState {
  SiteAction action = SiteAction::Auto;
  SiteAction pending = SiteAction::Auto;
  AbortCause pending_dom = AbortCause::None;
  AbortCause dominant = AbortCause::None;
  unsigned streak = 0;
  unsigned hold = 0;
  unsigned probe_shift = 0;
  int retries = -1;
  Acc acc;
};

struct Ctl {
  // --- lock-free, read by apply() on the transaction path ---------------
  /// Global overlay: state in bits 0..7, probe shift in bits 8..15.
  std::atomic<std::uint32_t> overlay{0};
  std::atomic<std::uint64_t> plans[kSites] = {};
  alignas(kCacheLine) std::atomic<std::uint32_t> global_probe{0};
  std::atomic<std::uint32_t> site_probe[kSites] = {};

  // --- evaluation state, behind mu ---------------------------------------
  std::mutex mu;
  State state = State::Normal;
  unsigned probe_shift = 0;
  unsigned trip_streak = 0;
  unsigned hold = 0;
  bool mode_switched = false;
  ExecMode saved_mode = ExecMode::Htm;
  std::uint64_t evals = 0;
  unsigned windows_since_eval = 0;
  std::uint64_t plan_changes = 0;
  std::uint64_t flaps = 0;
  std::uint64_t degraded_enters = 0;
  std::uint64_t degraded_exits = 0;
  std::uint64_t mode_switches = 0;
  Acc global;
  std::uint64_t acc_watchdog = 0;
  SiteState sites[kSites];
  std::vector<Decision> trace;
  std::uint64_t decision_seq = 0;

  // --- controller thread --------------------------------------------------
  std::mutex lifecycle;  ///< serializes start()/stop(); never held in loop
  std::thread th;
  std::atomic<bool> run{false};
  bool started = false;
};

/// Heap-allocated and never destroyed: transaction threads may consult the
/// plan tables during static destruction.
Ctl& g() noexcept {
  static Ctl* c = new Ctl();
  return *c;
}

TxStats& ctl_stats() noexcept { return my_slot().stats; }

void set_overlay(Ctl& c) noexcept {
  c.overlay.store(static_cast<std::uint32_t>(c.state) |
                      (static_cast<std::uint32_t>(c.probe_shift & 0xFF) << 8),
                  std::memory_order_relaxed);
}

void publish(Ctl& c, int site) noexcept {
  const SiteState& ss = c.sites[site];
  c.plans[site].store(
      pack_plan(ss.action, ss.probe_shift, ss.dominant, ss.retries),
      std::memory_order_relaxed);
}

/// 1/2^shift admission: every 2^shift-th caller passes.
bool admit(std::atomic<std::uint32_t>& ctr, unsigned shift) noexcept {
  const std::uint32_t mask = (1u << (shift > 31 ? 31 : shift)) - 1;
  return (ctr.fetch_add(1, std::memory_order_relaxed) & mask) == 0;
}

AbortCause dominant_cause(const Acc& a) noexcept {
  int best = cause_idx(AbortCause::None);
  std::uint64_t best_n = 0;
  for (int i = 1; i < kAbortCauseCount; ++i) {
    if (a.aborts[i] > best_n) {  // strict: ties keep the lowest index
      best_n = a.aborts[i];
      best = i;
    }
  }
  return best_n ? static_cast<AbortCause>(best) : AbortCause::None;
}

void record(Ctl& c, std::uint64_t window, std::int32_t site, DecisionKind k,
            std::uint8_t shift, std::uint8_t detail) {
  Decision d;
  d.seq = ++c.decision_seq;
  d.eval = c.evals;
  d.window = window;
  d.site = site;
  d.kind = k;
  d.state = c.state;
  d.shift = shift;
  d.detail = detail;
  if (c.trace.size() >= kTraceCap)
    c.trace.erase(c.trace.begin(), c.trace.begin() + kTraceCap / 2);
  c.trace.push_back(d);
  if (obs::flags() & obs::kTraceBit) {
    trace::Event ev;
    AbortCause cause = AbortCause::None;
    std::uint16_t retry = shift;
    switch (k) {
      case DecisionKind::SitePlan:
        ev = trace::Event::CtlPlanChange;
        cause = c.sites[site >= 0 ? site : 0].dominant;
        retry = detail;  // the new SiteAction
        break;
      case DecisionKind::DegradedEnter:
        ev = trace::Event::CtlDegradedEnter;
        cause = static_cast<AbortCause>(detail);
        break;
      case DecisionKind::Flap:
        ev = trace::Event::CtlDegradedEnter;
        cause = static_cast<AbortCause>(detail);
        break;
      case DecisionKind::DegradedExit:
        ev = trace::Event::CtlDegradedExit;
        break;
      case DecisionKind::ModeSwitch:
        ev = trace::Event::CtlModeSwitch;
        retry = detail;  // the new ExecMode
        break;
      default:
        ev = trace::Event::CtlProbe;
        break;
    }
    trace::emit(ev, cause, static_cast<std::uint16_t>(site >= 0 ? site : 0),
                retry);
  }
}

struct Proposal {
  SiteAction action = SiteAction::Auto;
  AbortCause dominant = AbortCause::None;
  int retries = -1;
  bool keep = false;  ///< middling mixed interval: leave the plan alone
};

Proposal classify(const Acc& a, const RuntimeConfig& cfg) noexcept {
  const std::uint64_t ab = a.aborts_total();
  const double r = a.abort_ratio();
  if (r <= cfg.ctl_release_ratio) return {SiteAction::Auto, AbortCause::None,
                                          -1, false};
  const std::uint64_t cap = a.aborts[cause_idx(AbortCause::Capacity)];
  const std::uint64_t conf = a.aborts[cause_idx(AbortCause::Conflict)] +
                             a.aborts[cause_idx(AbortCause::Validation)];
  const std::uint64_t spur = a.aborts[cause_idx(AbortCause::Spurious)];
  if (2 * cap >= ab)
    return {SiteAction::Serial, AbortCause::Capacity, -1, false};
  if (r >= cfg.ctl_trip_ratio)
    return {SiteAction::Serial, dominant_cause(a), -1, false};
  if (2 * conf >= ab)
    return {SiteAction::Boost, AbortCause::Conflict, cfg.ctl_boost_retries,
            false};
  if (2 * spur >= ab)
    return {SiteAction::Boost, AbortCause::Spurious, cfg.ctl_boost_retries,
            false};
  Proposal p;
  p.keep = true;
  return p;
}

void switch_mode_drained(ExecMode to) {
  // All speculation drains behind the serial write lock; in-flight logical
  // transactions re-read live_mode() at their next attempt. Only the mode
  // byte moves: the controller switches Htm <-> StmCondVar exclusively, and
  // those share quiesce=Always / honor_noquiesce=false, so no other config
  // field needs a racing write.
  synchronized_do([to](TxContext&) { set_live_mode(to); });
}

void maybe_mode_switch(Ctl& c, std::uint64_t window) {
  const RuntimeConfig& cfg = config();
  if (!cfg.ctl_mode_switch || c.mode_switched) return;
  if (live_mode() != ExecMode::Htm) return;
  const std::uint64_t ab = c.global.aborts_total();
  const std::uint64_t cap = c.global.aborts[cause_idx(AbortCause::Capacity)];
  if (ab == 0 || 2 * cap < ab) return;
  // Capacity-dominated storm: these footprints will never fit the HTM
  // model, but STM has no capacity limit. Global and drained only — see the
  // soundness note in control.hpp.
  c.saved_mode = ExecMode::Htm;
  c.mode_switched = true;
  switch_mode_drained(ExecMode::StmCondVar);
  ++c.mode_switches;
  TxStats& s = ctl_stats();
  s.bump(s.ctl_mode_switches);
  record(c, window, -1, DecisionKind::ModeSwitch, 0,
         static_cast<std::uint8_t>(ExecMode::StmCondVar));
}

void maybe_mode_restore(Ctl& c, std::uint64_t window) {
  if (!c.mode_switched) return;
  const ExecMode back = c.saved_mode;
  c.mode_switched = false;
  switch_mode_drained(back);
  ++c.mode_switches;
  TxStats& s = ctl_stats();
  s.bump(s.ctl_mode_switches);
  record(c, window, -1, DecisionKind::ModeSwitch, 0,
         static_cast<std::uint8_t>(back));
}

void evaluate_site(Ctl& c, int i, std::uint64_t window,
                   const RuntimeConfig& cfg, TxStats& s) {
  SiteState& ss = c.sites[i];
  const Acc& a = ss.acc;
  if (ss.hold > 0) {
    --ss.hold;
    return;
  }
  if (ss.action == SiteAction::Serial) {
    // Recovery probing: the governor's storm throttle generalized to mode
    // selection. Admit 1/2^shift of attempts; widen on healthy intervals.
    if (ss.probe_shift == 0) {
      ss.probe_shift = cfg.ctl_probe_shift;
      publish(c, i);
      record(c, window, i, DecisionKind::SiteProbeStart,
             static_cast<std::uint8_t>(ss.probe_shift),
             static_cast<std::uint8_t>(ss.dominant));
    } else if (a.attempts > 0) {
      const double r = a.abort_ratio();
      if (r <= cfg.ctl_release_ratio) {
        if (ss.probe_shift > 1) {
          --ss.probe_shift;
          publish(c, i);
          record(c, window, i, DecisionKind::SiteProbeWiden,
                 static_cast<std::uint8_t>(ss.probe_shift), 0);
        } else {
          ss.action = SiteAction::Auto;
          ss.pending = SiteAction::Auto;
          ss.pending_dom = AbortCause::None;
          ss.dominant = AbortCause::None;
          ss.probe_shift = 0;
          ss.retries = -1;
          ss.streak = 0;
          publish(c, i);
          ++c.plan_changes;
          s.bump(s.ctl_plan_changes);
          record(c, window, i, DecisionKind::SitePlan, 0,
                 static_cast<std::uint8_t>(SiteAction::Auto));
        }
      } else if (r >= cfg.ctl_trip_ratio) {
        ss.probe_shift = cfg.ctl_probe_shift;
        ss.hold = cfg.ctl_hold_windows;
        publish(c, i);
        record(c, window, i, DecisionKind::SiteProbeReset,
               static_cast<std::uint8_t>(ss.probe_shift), 0);
      }
    }
    return;
  }
  if (a.attempts < cfg.ctl_min_samples) return;
  const Proposal p = classify(a, cfg);
  if (p.keep) {
    return;
  }
  if (p.action == ss.action && p.dominant == ss.dominant) {
    ss.streak = 0;
    ss.pending = ss.action;
    ss.pending_dom = ss.dominant;
    return;
  }
  // Confidence scoring: the same changed classification must repeat for
  // ctl_confidence consecutive evaluations before the plan moves.
  if (ss.pending == p.action && ss.pending_dom == p.dominant) {
    ++ss.streak;
  } else {
    ss.pending = p.action;
    ss.pending_dom = p.dominant;
    ss.streak = 1;
  }
  if (ss.streak < cfg.ctl_confidence) return;
  ss.action = p.action;
  ss.dominant = p.dominant;
  ss.retries = p.retries;
  ss.probe_shift = 0;
  ss.hold = cfg.ctl_hold_windows;
  ss.streak = 0;
  publish(c, i);
  ++c.plan_changes;
  s.bump(s.ctl_plan_changes);
  record(c, window, i, DecisionKind::SitePlan, 0,
         static_cast<std::uint8_t>(p.action));
}

void evaluate(Ctl& c, std::uint64_t window) {
  const RuntimeConfig& cfg = config();
  TxStats& s = ctl_stats();
  if (fault::active() && fault::perturb(fault::Hook::CtlTick))
    s.bump(s.fault_delays);
  ++c.evals;
  s.bump(s.ctl_evals);

  const std::uint64_t att = c.global.attempts;
  const std::uint64_t ab = c.global.aborts_total();
  const double ratio = att ? static_cast<double>(ab) / att : 0.0;
  const bool sampled = att >= cfg.ctl_min_samples;
  const bool storm =
      (sampled && ratio >= cfg.ctl_trip_ratio) || c.acc_watchdog > 0;

  switch (c.state) {
    case State::Normal:
      c.trip_streak = storm ? c.trip_streak + 1 : 0;
      if (c.trip_streak >= cfg.ctl_trip_windows) {
        c.state = State::Degraded;
        c.hold = cfg.ctl_hold_windows;
        c.trip_streak = 0;
        set_overlay(c);
        ++c.degraded_enters;
        s.bump(s.ctl_degraded_enters);
        record(c, window, -1, DecisionKind::DegradedEnter, 0,
               static_cast<std::uint8_t>(dominant_cause(c.global)));
        maybe_mode_switch(c, window);
      }
      break;

    case State::Degraded:
      // Everything runs serial; transitions are hold-driven (there is no
      // speculative signal to read).
      if (c.hold > 0) --c.hold;
      if (c.hold == 0) {
        c.state = State::Probing;
        c.probe_shift = cfg.ctl_probe_shift;
        set_overlay(c);
        record(c, window, -1, DecisionKind::ProbeStart,
               static_cast<std::uint8_t>(c.probe_shift), 0);
      }
      break;

    case State::Probing: {
      // Speculative attempts in the interval are exactly the admitted
      // probes, so the interval abort ratio IS the probe verdict.
      const std::uint64_t need =
          cfg.ctl_min_samples >> (c.probe_shift > 31 ? 31 : c.probe_shift);
      const std::uint64_t have = att;
      if (have >= (need ? need : 1)) {
        if (ratio >= cfg.ctl_trip_ratio) {
          c.state = State::Degraded;
          c.hold = cfg.ctl_hold_windows;
          c.probe_shift = 0;
          set_overlay(c);
          ++c.flaps;
          s.bump(s.ctl_flaps);
          record(c, window, -1, DecisionKind::Flap, 0,
                 static_cast<std::uint8_t>(dominant_cause(c.global)));
        } else if (ratio <= cfg.ctl_release_ratio) {
          if (c.probe_shift > 1) {
            --c.probe_shift;
            set_overlay(c);
            record(c, window, -1, DecisionKind::ProbeWiden,
                   static_cast<std::uint8_t>(c.probe_shift), 0);
          } else {
            c.probe_shift = 0;
            c.state = State::Normal;
            c.trip_streak = 0;
            set_overlay(c);
            ++c.degraded_exits;
            s.bump(s.ctl_degraded_exits);
            record(c, window, -1, DecisionKind::DegradedExit, 0, 0);
            maybe_mode_restore(c, window);
          }
        }
        // middling ratio: hold the current probe fraction
      }
      break;
    }
  }

  // Per-site replanning runs only in Normal state: while degraded/probing
  // the global overlay owns routing, and replanning from probe trickle
  // would be decisions made on starved samples.
  if (c.state == State::Normal)
    for (int i = 0; i < kSites; ++i) evaluate_site(c, i, window, cfg, s);

  c.global.clear();
  c.acc_watchdog = 0;
  for (int i = 0; i < kSites; ++i) c.sites[i].acc.clear();
}

// ---------------------------------------------------------------------------
// Controller thread
// ---------------------------------------------------------------------------

void controller_loop(Ctl& c) {
  std::uint64_t next = 0;
  bool seen_any = false;
  while (c.run.load(std::memory_order_acquire)) {
    const unsigned period = config().metrics_period_ms;
    for (unsigned slept = 0;
         slept < period && c.run.load(std::memory_order_acquire);
         slept += 10)
      std::this_thread::sleep_for(std::chrono::milliseconds(
          period - slept < 10 ? period - slept : 10));
    if (!c.run.load(std::memory_order_acquire)) break;
    const std::vector<obs::MetricsWindow> hist = obs::metrics_history();
    if (hist.empty()) continue;
    // metrics_reset() restarts window numbering: resynchronize.
    if (seen_any && hist.back().index + 1 < next) next = hist.front().index;
    for (const obs::MetricsWindow& w : hist) {
      if (w.index < next && seen_any) continue;
      on_window(w);
      next = w.index + 1;
      seen_any = true;
    }
  }
}

}  // namespace

const char* to_string(State s) noexcept {
  switch (s) {
    case State::Normal: return "normal";
    case State::Degraded: return "degraded";
    case State::Probing: return "probing";
  }
  return "?";
}

const char* to_string(SiteAction a) noexcept {
  switch (a) {
    case SiteAction::Auto: return "auto";
    case SiteAction::Boost: return "boost";
    case SiteAction::Serial: return "serial";
  }
  return "?";
}

const char* to_string(DecisionKind k) noexcept {
  switch (k) {
    case DecisionKind::SitePlan: return "site-plan";
    case DecisionKind::SiteProbeStart: return "site-probe-start";
    case DecisionKind::SiteProbeWiden: return "site-probe-widen";
    case DecisionKind::SiteProbeReset: return "site-probe-reset";
    case DecisionKind::DegradedEnter: return "degraded-enter";
    case DecisionKind::ProbeStart: return "probe-start";
    case DecisionKind::ProbeWiden: return "probe-widen";
    case DecisionKind::Flap: return "flap";
    case DecisionKind::DegradedExit: return "degraded-exit";
    case DecisionKind::ModeSwitch: return "mode-switch";
  }
  return "?";
}

void reset() noexcept {
  Ctl& c = g();
  std::lock_guard<std::mutex> lk(c.mu);
  c.state = State::Normal;
  c.probe_shift = 0;
  c.trip_streak = 0;
  c.hold = 0;
  c.mode_switched = false;
  c.evals = 0;
  c.windows_since_eval = 0;
  c.plan_changes = 0;
  c.flaps = 0;
  c.degraded_enters = 0;
  c.degraded_exits = 0;
  c.mode_switches = 0;
  c.global.clear();
  c.acc_watchdog = 0;
  c.trace.clear();
  c.decision_seq = 0;
  set_overlay(c);
  c.global_probe.store(0, std::memory_order_relaxed);
  for (int i = 0; i < kSites; ++i) {
    c.sites[i] = SiteState{};
    c.plans[i].store(0, std::memory_order_relaxed);
    c.site_probe[i].store(0, std::memory_order_relaxed);
  }
}

void apply(TxDesc& tx) noexcept {
  Ctl& c = g();
  tx.ctl_retries = -1;
  std::memset(tx.ctl_disp, 0, sizeof tx.ctl_disp);
  if (tx.force_serial) return;  // user attrs / fault plan already decided
  TxStats& s = *tx.stats;
  const std::uint32_t ov = c.overlay.load(std::memory_order_relaxed);
  const State st = static_cast<State>(ov & 0xFF);
  if (st == State::Degraded) {
    tx.force_serial = true;
    s.bump(s.ctl_forced_serial);
    return;
  }
  if (st == State::Probing) {
    if (!admit(c.global_probe, (ov >> 8) & 0xFF)) {
      tx.force_serial = true;
      s.bump(s.ctl_forced_serial);
      return;
    }
    s.bump(s.ctl_probe_attempts);
  }
  const std::uint64_t word = c.plans[tx.site].load(std::memory_order_relaxed);
  if (word == 0) return;  // Auto: no overrides (the common case)
  const SiteAction action = static_cast<SiteAction>(word & 0xFF);
  if (action == SiteAction::Boost) {
    const std::uint32_t r = static_cast<std::uint32_t>(word >> 32);
    if (r != 0) tx.ctl_retries = static_cast<int>(r - 1);
    const AbortCause dom = static_cast<AbortCause>((word >> 16) & 0xFF);
    if (dom == AbortCause::Spurious) {
      tx.ctl_disp[cause_idx(AbortCause::Spurious)] =
          static_cast<std::uint8_t>(gov::Disposition::Immediate);
    } else {
      tx.ctl_disp[cause_idx(AbortCause::Conflict)] =
          static_cast<std::uint8_t>(gov::Disposition::Backoff);
      tx.ctl_disp[cause_idx(AbortCause::Validation)] =
          static_cast<std::uint8_t>(gov::Disposition::Backoff);
    }
    s.bump(s.ctl_boost_applied);
    return;
  }
  if (action == SiteAction::Serial) {
    const unsigned shift = (word >> 8) & 0xFF;
    if (shift > 0 && admit(c.site_probe[tx.site], shift)) {
      s.bump(s.ctl_probe_attempts);
      return;  // probe: speculate under the default policy
    }
    tx.force_serial = true;
    s.bump(s.ctl_forced_serial);
  }
}

void on_window(const obs::MetricsWindow& w) {
  if (!config().controller) return;
  Ctl& c = g();
  std::lock_guard<std::mutex> lk(c.mu);
  if (w.final_flush) return;  // shutdown residue must never re-plan
  c.global.attempts += w.txn_starts;
  c.global.commits += w.commits;
  c.global.serial_fallbacks += w.serial_fallbacks;
  c.acc_watchdog += w.gauges.watchdog_escalations;
  for (const obs::SiteWindow& sw : w.sites) {
    if (sw.id < 0 || sw.id >= kSites) continue;
    Acc& sa = c.sites[sw.id].acc;
    sa.attempts += sw.attempts;
    sa.commits += sw.commits;
    sa.serial_fallbacks += sw.serial_fallbacks;
    for (int a = 0; a < kAbortCauseCount; ++a) {
      sa.aborts[a] += sw.aborts[a];
      c.global.aborts[a] += sw.aborts[a];
    }
  }
  if (++c.windows_since_eval <
      static_cast<unsigned>(config().ctl_period_windows))
    return;
  c.windows_since_eval = 0;
  evaluate(c, w.index);
}

Status status() noexcept {
  Ctl& c = g();
  std::lock_guard<std::mutex> lk(c.mu);
  Status st;
  st.enabled = config().controller;
  st.state = c.state;
  st.probe_shift = c.probe_shift;
  st.evals = c.evals;
  st.decisions = c.decision_seq;
  st.plan_changes = c.plan_changes;
  st.flaps = c.flaps;
  st.degraded_enters = c.degraded_enters;
  st.degraded_exits = c.degraded_exits;
  st.mode_switches = c.mode_switches;
  return st;
}

SitePlanView site_plan(int site) noexcept {
  SitePlanView v;
  if (site < 0 || site >= kSites) return v;
  const std::uint64_t word = g().plans[site].load(std::memory_order_relaxed);
  if (word == 0) return v;
  v.action = static_cast<SiteAction>(word & 0xFF);
  v.probe_shift = (word >> 8) & 0xFF;
  v.dominant = static_cast<AbortCause>((word >> 16) & 0xFF);
  const std::uint32_t r = static_cast<std::uint32_t>(word >> 32);
  v.retries = r ? static_cast<int>(r - 1) : -1;
  return v;
}

std::vector<Decision> decisions() {
  Ctl& c = g();
  std::lock_guard<std::mutex> lk(c.mu);
  return c.trace;
}

std::vector<Decision> decisions_since(std::uint64_t after_seq) {
  Ctl& c = g();
  std::lock_guard<std::mutex> lk(c.mu);
  std::vector<Decision> out;
  for (const Decision& d : c.trace)
    if (d.seq > after_seq) out.push_back(d);
  return out;
}

namespace {

void append_decision_json(std::string& out, const Decision& d) {
  char buf[256];
  const int n = std::snprintf(
      buf, sizeof buf,
      "{\"seq\":%llu,\"eval\":%llu,\"window\":%llu,\"site\":%d,"
      "\"kind\":\"%s\",\"state\":\"%s\",\"shift\":%u,\"detail\":%u}",
      static_cast<unsigned long long>(d.seq),
      static_cast<unsigned long long>(d.eval),
      static_cast<unsigned long long>(d.window), static_cast<int>(d.site),
      to_string(d.kind), to_string(d.state), static_cast<unsigned>(d.shift),
      static_cast<unsigned>(d.detail));
  if (n > 0) out.append(buf, buf + n);
}

}  // namespace

std::string decision_trace_json() {
  const std::vector<Decision> ds = decisions();
  std::string out = "{\"schema\":\"tle-ctl-trace/v1\",\"decisions\":[";
  for (std::size_t i = 0; i < ds.size(); ++i) {
    if (i) out += ',';
    append_decision_json(out, ds[i]);
  }
  out += "]}";
  return out;
}

void start() {
  if (!config().controller) return;
  Ctl& c = g();
  std::lock_guard<std::mutex> lk(c.lifecycle);
  if (c.started) return;
  obs::metrics_start();   // the controller is blind without windows...
  obs::profile_enable(true);  // ...and per-site planning needs site counters
  c.run.store(true, std::memory_order_release);
  c.th = std::thread(controller_loop, std::ref(c));
  c.started = true;
}

void stop() {
  Ctl& c = g();
  std::lock_guard<std::mutex> lk(c.lifecycle);
  if (!c.started) return;
  c.run.store(false, std::memory_order_release);
  if (c.th.joinable()) c.th.join();
  c.started = false;
}

bool running() noexcept {
  Ctl& c = g();
  std::lock_guard<std::mutex> lk(c.lifecycle);
  return c.started;
}

void init_from_env() noexcept {
  static bool done = false;
  if (done) return;
  done = true;
  const char* on = std::getenv("TLE_CTL");
  if (!on || on[0] == '\0' || on[0] == '0') return;
  RuntimeConfig& cfg = config();
  if (!cfg.metrics || !cfg.governor) return;  // validate_config coherence
  if (const char* p = std::getenv("TLE_CTL_PERIOD_WINDOWS")) {
    const long v = std::strtol(p, nullptr, 10);
    if (v >= 1) cfg.ctl_period_windows = static_cast<int>(v);
  }
  if (const char* p = std::getenv("TLE_CTL_MIN_SAMPLES")) {
    const long v = std::strtol(p, nullptr, 10);
    if (v >= 1) cfg.ctl_min_samples = static_cast<unsigned>(v);
  }
  cfg.controller = true;
  start();
  // Registered after the metrics shutdown atexit (we are called last from
  // obs::init_from_env), so LIFO runs this first: the controller thread is
  // joined before the residual final window flushes.
  std::atexit([] { stop(); });
}

}  // namespace tle::ctl
