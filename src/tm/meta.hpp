// Shared STM metadata: the global version clock and the ownership-record
// (orec) table of the ml_wt algorithm (multiple locks, write-through) —
// the GCC libitm default the paper's STM numbers use, itself "a
// privatization-safe version of TinySTM".
//
// Orec encoding (64-bit word):
//   bit 0        lock bit
//   if locked:   bits 63..1 = owning TxDesc* >> 1 (descriptors are 8-aligned)
//   if unlocked: bits 63..12 = commit timestamp, bits 11..1 = incarnation
//
// The incarnation counter is bumped when an aborting owner releases the orec
// after undoing its in-place writes; it prevents the ABA where a reader's
// pre/post orec check would otherwise accept a value observed mid-speculation
// (TinySTM's scheme; the 11-bit wrap is harmless because it would need 2048
// aborts on one orec inside a single reader's two-instruction window).
#pragma once

#include <atomic>
#include <cstdint>

#include "util/align.hpp"

namespace tle {

struct TxDesc;  // defined in txdesc.hpp

inline constexpr unsigned kOrecBits = 16;  // 65536 orecs (libitm uses 2^19 B)
inline constexpr std::size_t kOrecCount = std::size_t{1} << kOrecBits;

inline constexpr std::uint64_t kOrecLockBit = 1;
inline constexpr unsigned kIncarnationBits = 11;
inline constexpr std::uint64_t kIncarnationMask =
    ((std::uint64_t{1} << kIncarnationBits) - 1) << 1;

constexpr bool orec_locked(std::uint64_t v) noexcept { return v & kOrecLockBit; }

inline TxDesc* orec_owner(std::uint64_t v) noexcept {
  // Descriptors are at least 8-aligned, so clearing the lock bit suffices.
  return reinterpret_cast<TxDesc*>(v & ~kOrecLockBit);
}

inline std::uint64_t orec_lockword(const TxDesc* owner) noexcept {
  return reinterpret_cast<std::uint64_t>(owner) | kOrecLockBit;
}

constexpr std::uint64_t orec_timestamp(std::uint64_t v) noexcept {
  return v >> (kIncarnationBits + 1);
}

constexpr std::uint64_t orec_make(std::uint64_t ts, std::uint64_t inc) noexcept {
  return (ts << (kIncarnationBits + 1)) |
         ((inc << 1) & kIncarnationMask);
}

constexpr std::uint64_t orec_incarnation(std::uint64_t v) noexcept {
  return (v & kIncarnationMask) >> 1;
}

/// Unlocked word for a *committing* release at timestamp `wv`, keeping the
/// previous incarnation.
constexpr std::uint64_t orec_commit_release(std::uint64_t prev,
                                            std::uint64_t wv) noexcept {
  return orec_make(wv, orec_incarnation(prev));
}

/// Unlocked word for an *aborting* release: same timestamp, incarnation + 1.
constexpr std::uint64_t orec_abort_release(std::uint64_t prev) noexcept {
  return orec_make(orec_timestamp(prev), orec_incarnation(prev) + 1);
}

/// The global commit timestamp clock.
std::atomic<std::uint64_t>& gclock() noexcept;

/// The gl_wt global versioned lock (even = version, odd = writer active).
std::atomic<std::uint64_t>& gl_lock() noexcept;

/// The orec protecting `addr`. Consecutive words map to distinct orecs so
/// adjacent fields of a node do not gratuitously conflict.
std::atomic<std::uint64_t>& orec_for(const void* addr) noexcept;

// ---------------------------------------------------------------------------
// TicToc orec encoding (the third commit protocol, src/tm/protocol/)
//
// One word per orec, {write_ts, read_ts} packed as wts + a saturating delta
// (rts = wts + delta — rts >= wts by construction, the TicToc invariant):
//   bit 0        lock bit (held only inside a commit's lock→publish window)
//   bits 23..1   delta = rts - wts (23 bits, saturated by tt_make)
//   bits 63..24  wts (40 bits — timestamps grow by <=1 per commit process-wide,
//                so wrap is unreachable in practice)
//
// TicToc uses its OWN table (tictoc_orec_for): its timestamps are allocated
// per-footprint at commit and are NOT coherent with ml_wt's global clock, so
// sharing g_orecs across an stm_algo switch between phases would leave words
// a later ml_wt phase misreads as from-the-future snapshots.
// ---------------------------------------------------------------------------

inline constexpr std::uint64_t kTtLockBit = 1;
inline constexpr unsigned kTtDeltaBits = 23;
inline constexpr std::uint64_t kTtDeltaMax =
    (std::uint64_t{1} << kTtDeltaBits) - 1;

constexpr bool tt_locked(std::uint64_t v) noexcept { return v & kTtLockBit; }

constexpr std::uint64_t tt_wts(std::uint64_t v) noexcept {
  return v >> (kTtDeltaBits + 1);
}

constexpr std::uint64_t tt_rts(std::uint64_t v) noexcept {
  return tt_wts(v) + ((v >> 1) & kTtDeltaMax);
}

/// Unlocked word for version `wts` certified readable through `rts`. A delta
/// overflow (> 8M timestamps of extension) renews the version at `rts`
/// instead — readers of the old wts then fail the cheap wts compare and fall
/// back to value revalidation, a safe spurious cost.
constexpr std::uint64_t tt_make(std::uint64_t wts, std::uint64_t rts) noexcept {
  return rts - wts > kTtDeltaMax
             ? rts << (kTtDeltaBits + 1)
             : (wts << (kTtDeltaBits + 1)) | ((rts - wts) << 1);
}

/// The TicToc orec for `addr` (same word-granular Fibonacci mix as orec_for,
/// separate table).
std::atomic<std::uint64_t>& tictoc_orec_for(const void* addr) noexcept;

// ---------------------------------------------------------------------------
// Simulated-HTM striped commit sequence
//
// The NOrec-style commit word, sharded: each stripe is an independent
// seqlock (even = stable, odd = a committer is writing back). A committer
// bumps only the stripes its write set touches, acquired in ascending index
// order; readers snapshot stripes lazily as their footprint grows and
// revalidate only entries whose stripe moved. Stripe selection applies the
// orec_for Fibonacci mix at *block* granularity (2^kHtmStripeBlockShift
// bytes): a contiguous working set lands on a handful of stripes — so a
// small transaction's commit bumps one or two sequence words, close to the
// old single-CAS cost — while separate threads' buffers hash to different
// stripes, which is where the commit scalability comes from. Word-granular
// hashing would instead spray every footprint across the whole table,
// making each commit pay O(stripes) acquisitions for zero isolation gain.
// config().htm_seq_stripes (a power of two <= kHtmStripeMax) sets how many
// stripes are live; 1 reproduces the old single-sequence protocol.
// ---------------------------------------------------------------------------

inline constexpr unsigned kHtmStripeMax = 64;

/// Stripe granularity: addresses within the same 2^9 = 512-byte block share
/// a stripe (64 tm_var words — spatial false sharing at the same scale as a
/// handful of cache lines, the natural unit of a thread's working set).
inline constexpr unsigned kHtmStripeBlockShift = 9;

/// Stripe index for `addr` under the current htm_seq_stripes setting.
unsigned htm_stripe_index(const void* addr) noexcept;

/// The sequence word of stripe `i` (i < config().htm_seq_stripes).
std::atomic<std::uint64_t>& htm_stripe_seq(unsigned i) noexcept;

}  // namespace tle
