// tm_obj<T> — a transactional container for trivially-copyable objects
// larger than one word (small structs, fixed arrays). The object is striped
// over 64-bit cells, each accessed through the TM engines, so reads are
// consistent snapshots and writes are atomic with the enclosing transaction.
//
// For word-sized types prefer tm_var<T> (one cell, no loop).
#pragma once

#include <cstring>

#include "tm/api.hpp"

namespace tle {

template <typename T>
class tm_obj {
  static_assert(std::is_trivially_copyable_v<T>,
                "tm_obj requires a trivially copyable type");

 public:
  static constexpr std::size_t kWords = (sizeof(T) + 7) / 8;

  tm_obj() { unsafe_set(T{}); }
  explicit tm_obj(const T& v) { unsafe_set(v); }

  tm_obj(const tm_obj&) = delete;
  tm_obj& operator=(const tm_obj&) = delete;

  /// Transactional snapshot read.
  T get(TxContext& tx) const {
    std::uint64_t raw[kWords];
    for (std::size_t i = 0; i < kWords; ++i) raw[i] = tx.read_raw(cells_[i]);
    T v;
    std::memcpy(&v, raw, sizeof(T));
    return v;
  }

  /// Transactional whole-object write.
  void set(TxContext& tx, const T& v) {
    std::uint64_t raw[kWords] = {};
    std::memcpy(raw, &v, sizeof(T));
    for (std::size_t i = 0; i < kWords; ++i) tx.write_raw(cells_[i], raw[i]);
  }

  /// Non-transactional accessors — same ownership contract as tm_var's.
  T unsafe_get() const {
    std::uint64_t raw[kWords];
    for (std::size_t i = 0; i < kWords; ++i)
      raw[i] = cells_[i].load(std::memory_order_relaxed);
    T v;
    std::memcpy(&v, raw, sizeof(T));
    return v;
  }

  void unsafe_set(const T& v) {
    std::uint64_t raw[kWords] = {};
    std::memcpy(raw, &v, sizeof(T));
    for (std::size_t i = 0; i < kWords; ++i)
      cells_[i].store(raw[i], std::memory_order_relaxed);
  }

 private:
  mutable std::atomic<std::uint64_t> cells_[kWords];
};

}  // namespace tle
