// Privatization-race auditor — the Section IV-C tooling story.
//
// The paper: "We expect these errors [faulty TM_NoQuiesce assertions] to be
// easy to identify and fix using transactional race detectors", citing
// T-Rex and sketching its extension to selectively-disabled quiescence.
// This module is that extension, as a dynamic checker:
//
//   When an STM transaction commits WITHOUT quiescing (because TM_NoQuiesce
//   was honored, or the policy is Never/WriterOnly), the committing thread
//   snapshots every peer's epoch. If the thread then performs a
//   non-transactional access (tm_var::unsafe_get/unsafe_set) while any of
//   those snapshotted transactions is STILL RUNNING, the access is exactly
//   one that quiescence would have delayed — a potential privatization race
//   — and is reported.
//
// The check records the unquiesced transaction's write set (up to a bounded
// sample), so only accesses to data that transaction actually touched are
// flagged — plus it is precise in time: the flagged access is exactly one
// the skipped quiescence would have ordered. Zero overhead unless enabled.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace tle {
struct TxDesc;
}

namespace tle::audit {

/// Globally enable/disable auditing (off by default; enable in tests).
void enable(bool on) noexcept;
bool enabled() noexcept;

struct Report {
  std::uint64_t unquiesced_commits = 0;  ///< commits that skipped quiescence
  std::uint64_t flagged_accesses = 0;    ///< unsafe accesses racing a peer
  std::vector<std::string> samples;      ///< first few findings
};

Report report();
void reset();

// --- runtime hooks (called by the engine / tm_var) -------------------------

/// The calling thread committed an STM transaction without quiescing.
void on_unquiesced_commit(TxDesc& tx) noexcept;

/// The calling thread completed a quiescence wait (hazard cleared).
void on_quiesced(TxDesc& tx) noexcept;

/// The calling thread performed a non-transactional tm_var access.
void on_unsafe_access(const void* addr) noexcept;

}  // namespace tle::audit
