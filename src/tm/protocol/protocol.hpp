// The StmProtocol seam: compile-time commit-protocol policies for the STM
// slow path.
//
// Contract. A policy is a stateless struct of static members operating on the
// per-thread TxDesc; the engine (engine.cpp) owns everything OUTSIDE the
// protocol — slot/epoch lifecycle, quiescence and limbo reclamation, serial
// fallback, the governor's retry dispatch, stats aggregation and the flight
// recorder — and calls into the policy at six points:
//
//   static constexpr StmAlgo kAlgo;        // the enumerator it implements
//   static void begin(TxDesc&);            // snapshot/setup after clear_logs
//   static std::uint64_t read(TxDesc&, const std::atomic<std::uint64_t>&);
//   static void write(TxDesc&, std::atomic<std::uint64_t>&, std::uint64_t);
//   static void commit(TxDesc&);           // publish or abort (via tx_abort)
//   static void rollback(TxDesc&) noexcept;  // undo + release; longjmp-safe
//   static std::uint32_t rset_size(const TxDesc&);  // flight-recorder sizes,
//   static std::uint32_t wset_size(const TxDesc&);  // read before clear_logs
//
// Obligations on a policy:
//   * abort only via tx_abort(tx, cause) with an honest AbortCause — the
//     governor's cause dispatch and the obs per-cause rows depend on it;
//   * rollback() must be safe at ANY point read/write/commit can abort, and
//     must leave shared memory exactly as if the attempt never ran (it also
//     runs on the exception path);
//   * route fault hooks through protocol::detail::maybe_inject/maybe_perturb
//     so deterministic replay stays byte-identical;
//   * never block unboundedly while holding shared state a peer can wait on
//     (bounded waits + Conflict abort keep the governor in charge).
//
// Dispatch is a compare chain over the algo byte into a generic lambda —
// every policy body is statically known at each call site and inlines; there
// is no vtable and no function pointer anywhere on the read/write path. The
// default protocol (ml_wt) is deliberately the fallthrough arm so its inlined
// body sits on the straight-line path of tx_read_word/tx_write_word. Adding a
// protocol = one header with the eight members, one enumerator in StmAlgo,
// one branch below, one line in to_string/parse — the engine does not change.
#pragma once

#include "tm/protocol/glwt.hpp"
#include "tm/protocol/mlwt.hpp"
#include "tm/protocol/tictoc.hpp"

namespace tle::protocol {

template <typename F>
decltype(auto) stm_protocol_dispatch(StmAlgo algo, F&& f) {
  if (algo == StmAlgo::GlWt) return f(GlWt{});
  if (algo == StmAlgo::TicToc) return f(TicToc{});
  return f(MlWt{});
}

}  // namespace tle::protocol
