// gl_wt commit protocol: one global versioned lock, write-through
// (TML-style). Even value = version; odd = a writer is active. Reads are a
// load plus one global-word validation; the first write acquires the global
// lock, so writing transactions serialize (GCC's gl_wt method group). One
// instance of the StmProtocol seam (protocol.hpp).
#pragma once

#include "tm/protocol/detail.hpp"
#include "tm/serial_lock.hpp"
#include "util/align.hpp"

namespace tle::protocol {

struct GlWt {
  static constexpr StmAlgo kAlgo = StmAlgo::GlWt;

  static void begin(TxDesc& tx) {
    unsigned spin = 0;
    for (;;) {
      const std::uint64_t v = gl_lock().load(std::memory_order_acquire);
      if (!(v & 1)) {
        tx.rv = v;
        tx.gl_writer = false;
        return;
      }
      spin_pause(spin++);
    }
  }

  static std::uint64_t read(TxDesc& tx,
                            const std::atomic<std::uint64_t>& cell) {
    if (serial_lock().serial_requested())
      tx_abort(tx, AbortCause::SerialPending);
    if (tx.gl_writer) return cell.load(std::memory_order_relaxed);
    const std::uint64_t val = cell.load(std::memory_order_acquire);
    if (gl_lock().load(std::memory_order_acquire) != tx.rv)
      tx_abort(tx, AbortCause::Validation);
    return val;
  }

  static void write(TxDesc& tx, std::atomic<std::uint64_t>& cell,
                    std::uint64_t value) {
    if (serial_lock().serial_requested())
      tx_abort(tx, AbortCause::SerialPending);
    if (!tx.gl_writer) {
      std::uint64_t expected = tx.rv;
      if (!gl_lock().compare_exchange_strong(expected, tx.rv + 1,
                                             std::memory_order_acq_rel))
        tx_abort(tx, AbortCause::Conflict);
      tx.gl_writer = true;
    }
    tx.undo.push_back({&cell, cell.load(std::memory_order_relaxed)});
    cell.store(value, std::memory_order_relaxed);
    tx.read_only = false;
  }

  static void commit(TxDesc& tx) {
    if (tx.gl_writer) {
      gl_lock().store(tx.rv + 2, std::memory_order_release);
      tx.gl_writer = false;
    }
  }

  static void rollback(TxDesc& tx) noexcept {
    for (auto it = tx.undo.rbegin(); it != tx.undo.rend(); ++it)
      it->addr->store(it->old, std::memory_order_relaxed);
    if (tx.gl_writer) {
      // Bump the version so concurrent readers that saw speculative values
      // fail their per-read validation.
      gl_lock().store(tx.rv + 2, std::memory_order_release);
      tx.gl_writer = false;
    }
  }

  // gl_wt logs no read set (per-read validation against the one global
  // word); the undo log counts written words, as for ml_wt.
  static std::uint32_t rset_size(const TxDesc& tx) noexcept {
    return static_cast<std::uint32_t>(tx.reads.size());
  }
  static std::uint32_t wset_size(const TxDesc& tx) noexcept {
    return static_cast<std::uint32_t>(tx.undo.size());
  }
};

}  // namespace tle::protocol
