// ml_wt commit protocol: encounter-time orec write locks, write-through with
// an undo log, TinySTM-style global-clock snapshots with timestamp extension
// (GCC libitm's default method group — the algorithm the paper's STM numbers
// use). One instance of the StmProtocol seam (protocol.hpp).
#pragma once

#include "tm/protocol/detail.hpp"
#include "tm/serial_lock.hpp"
#include "util/align.hpp"

namespace tle::protocol {

struct MlWt {
  static constexpr StmAlgo kAlgo = StmAlgo::MlWt;

  /// Read-set validation. Aborts on any orec whose unlocked value changed or
  /// that is now owned by another transaction. An orec we ourselves own is
  /// valid iff the pre-lock value we stashed matches what the read observed.
  static void validate(TxDesc& tx) {
    for (const ReadEntry& r : tx.reads) {
      const std::uint64_t cur = r.orec->load(std::memory_order_acquire);
      if (cur == r.seen) continue;
      if (orec_locked(cur) && orec_owner(cur) == &tx) {
        const std::uint32_t i = tx.owned_idx.find(r.orec);
        if (i != AddrIndex::kNone && tx.owned[i].prev == r.seen) continue;
      }
      tx_abort(tx, AbortCause::Validation);
    }
  }

  /// TinySTM timestamp extension: adopt the current clock if the read set is
  /// still valid; abort otherwise.
  static void extend(TxDesc& tx) {
    const std::uint64_t now = gclock().load(std::memory_order_acquire);
    validate(tx);
    tx.rv = now;
  }

  /// Deferred-clock mode (GV5): a committer publishes timestamps WITHOUT
  /// bumping gclock, so the first reader to meet a fresher orec pushes the
  /// clock forward instead. The CAS-max loop races benignly with peers; only
  /// the thread whose CAS lands counts the advance. After this, extend's
  /// clock load observes >= ts and the triggering read can be accepted.
  static void note_stale(TxDesc& tx, std::uint64_t ts) {
    if (config().stm_clock_mode != StmClockMode::Deferred) return;
    std::uint64_t cur = gclock().load(std::memory_order_relaxed);
    while (cur < ts) {
      if (gclock().compare_exchange_weak(cur, ts,
                                         std::memory_order_acq_rel)) {
        detail::st(tx).bump(detail::st(tx).gclock_advances);
        return;
      }
    }
  }

  static void begin(TxDesc& tx) {
    tx.rv = gclock().load(std::memory_order_acquire);
  }

  static std::uint64_t read(TxDesc& tx,
                            const std::atomic<std::uint64_t>& cell) {
    if (serial_lock().serial_requested())
      tx_abort(tx, AbortCause::SerialPending);
    std::atomic<std::uint64_t>& o = orec_for(&cell);
    for (unsigned spin = 0;;) {
      const std::uint64_t ov = o.load(std::memory_order_acquire);
      if (orec_locked(ov)) {
        if (orec_owner(ov) == &tx) {
          // Read-own-write: write-through means memory holds the new value.
          return cell.load(std::memory_order_relaxed);
        }
        tx_abort(tx, AbortCause::Conflict);
      }
      if (orec_timestamp(ov) > tx.rv) {
        note_stale(tx, orec_timestamp(ov));
        extend(tx);
        continue;  // re-read under the extended snapshot
      }
      const std::uint64_t val = cell.load(std::memory_order_acquire);
      if (o.load(std::memory_order_acquire) != ov) {
        spin_pause(spin++);
        continue;  // concurrent lock/release between our two orec loads
      }
      // Repeat-read filter: a second read of an orec already logged with the
      // SAME observed value adds no information — validation of the first
      // entry covers it. A differing observation is still appended (superset
      // validation), so abort outcomes are unchanged.
      const std::uint32_t prior = tx.read_idx.find(&o);
      if (prior != AddrIndex::kNone && tx.reads[prior].seen == ov) {
        detail::st(tx).bump(detail::st(tx).stm_read_dedup);
        return val;
      }
      tx.read_idx.insert(&o, static_cast<std::uint32_t>(tx.reads.size()));
      tx.reads.push_back({&o, ov});
      return val;
    }
  }

  static void write(TxDesc& tx, std::atomic<std::uint64_t>& cell,
                    std::uint64_t value) {
    if (serial_lock().serial_requested())
      tx_abort(tx, AbortCause::SerialPending);
    std::atomic<std::uint64_t>& o = orec_for(&cell);
    for (;;) {
      const std::uint64_t ov = o.load(std::memory_order_acquire);
      if (orec_locked(ov)) {
        if (orec_owner(ov) != &tx) tx_abort(tx, AbortCause::Conflict);
        break;  // already own it
      }
      if (orec_timestamp(ov) > tx.rv) {
        note_stale(tx, orec_timestamp(ov));
        extend(tx);
        continue;
      }
      std::uint64_t expected = ov;
      if (o.compare_exchange_strong(expected, orec_lockword(&tx),
                                    std::memory_order_acq_rel)) {
        tx.owned_idx.insert(&o, static_cast<std::uint32_t>(tx.owned.size()));
        tx.owned.push_back({&o, ov});
        if (orec_timestamp(ov) > tx.wv_floor)
          tx.wv_floor = orec_timestamp(ov);
        break;
      }
      // Lost the race; loop re-examines the new value.
    }
    tx.undo.push_back({&cell, cell.load(std::memory_order_relaxed)});
    cell.store(value, std::memory_order_relaxed);
    tx.read_only = false;
  }

  static void commit(TxDesc& tx) {
    const bool deferred = config().stm_clock_mode == StmClockMode::Deferred;
    if (tx.read_only) {
      // Deferred mode gives up the eager clock's per-read opacity guarantee:
      // a concurrent commit can share our rv, so the snapshot must be
      // re-validated before its results escape the section (GV5's documented
      // cost — the RMW saved at every write commit is paid back only by
      // read-only commits that actually raced one).
      if (deferred && !tx.reads.empty()) validate(tx);
      return;
    }
    std::uint64_t wv;
    if (deferred) {
      // GV5: wv = gclock+1 WITHOUT the global RMW. The price of the saved
      // fetch_add is that wv is not unique, so (a) the skip-validation fast
      // path below is unsound here — always validate — and (b) wv must
      // exceed every owned orec's previous timestamp (wv_floor) so per-orec
      // timestamps stay strictly increasing, and this thread's own clock
      // cache so its commit order stays monotonic.
      wv = gclock().load(std::memory_order_acquire) + 1;
      if (tx.clock_cache + 1 > wv) wv = tx.clock_cache + 1;
      if (tx.wv_floor + 1 > wv) wv = tx.wv_floor + 1;
      validate(tx);
      tx.clock_cache = wv;
    } else {
      wv = gclock().fetch_add(1, std::memory_order_acq_rel) + 1;
      // If nobody committed since we started, the read set is trivially
      // valid.
      if (wv != tx.rv + 1) validate(tx);
    }
    for (const OwnedOrec& o : tx.owned)
      o.orec->store(orec_commit_release(o.prev, wv),
                    std::memory_order_release);
  }

  static void rollback(TxDesc& tx) noexcept {
    // Undo in reverse so multiply-written words regain their oldest value.
    for (auto it = tx.undo.rbegin(); it != tx.undo.rend(); ++it)
      it->addr->store(it->old, std::memory_order_relaxed);
    // The release on the orec publishes the restored values; the incarnation
    // bump invalidates readers racing with our speculation.
    for (const OwnedOrec& o : tx.owned)
      o.orec->store(orec_abort_release(o.prev), std::memory_order_release);
  }

  // Logged-set sizes for the flight recorder (read before clear_logs()).
  static std::uint32_t rset_size(const TxDesc& tx) noexcept {
    return static_cast<std::uint32_t>(tx.reads.size());
  }
  static std::uint32_t wset_size(const TxDesc& tx) noexcept {
    return static_cast<std::uint32_t>(tx.undo.size());
  }
};

}  // namespace tle::protocol
