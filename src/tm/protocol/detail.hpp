// Helpers shared by the commit-protocol policies (protocol.hpp) and the
// engine's shared lifecycle (engine.cpp): stats access, fault-injection
// decision points, and per-site obs attribution. Header-only so the policy
// bodies inline into the engine's dispatch sites with zero call overhead.
#pragma once

#include "tm/fault/fault.hpp"
#include "tm/obs/site.hpp"
#include "tm/stats.hpp"
#include "tm/txdesc.hpp"

namespace tle::protocol::detail {

inline TxStats& st(TxDesc& tx) noexcept { return *tx.stats; }

/// Fault-injection decision point: consult the armed plan at `h` and abort
/// with the injected cause if a rule fires. The abort takes the ordinary
/// tx_abort path, so rollback, per-cause stats, per-site obs attribution and
/// the retry/serial-fallback policy all treat it exactly like an organic
/// abort — only the extra faults_injected row distinguishes it.
inline void maybe_inject(TxDesc& tx, fault::Hook h) {
  if (!fault::active()) return;
  const AbortCause cause = fault::should_abort(h);
  if (cause == AbortCause::None) return;
  st(tx).bump(st(tx).faults_injected);
  tx_abort(tx, cause);
}

/// Schedule-perturbation point: widen the handshake window at `h` with the
/// plan's yield/sleep, accounting the delay to `stats`.
inline void maybe_perturb(TxStats& stats, fault::Hook h) {
  if (fault::active() && fault::perturb(h)) stats.bump(stats.fault_delays);
}

/// Attribute one event to the current site's profile row (no-op unless
/// per-site profiling is on — one relaxed flag load).
inline void site_bump(TxDesc& tx,
                      obs::SiteCounters::Counter obs::SiteCounters::* field) {
  if (obs::flags() & obs::kProfileBit)
    (obs::site_counters(tx.slot_id, tx.site).*field)
        .fetch_add(1, std::memory_order_relaxed);
}

}  // namespace tle::protocol::detail
