// TicToc commit protocol: timestamped OCC, write-back. The third instance of
// the StmProtocol seam (protocol.hpp) — and the one with no global clock at
// all.
//
// Data layout (meta.hpp): each orec in TicToc's own table packs a version's
// {write_ts, read_ts} into one word — wts is when the current version was
// created, rts is the latest timestamp the version is certified valid
// through (rts >= wts always). A version is an interval [wts, rts] in
// timestamp space; successive versions of a word occupy disjoint, increasing
// intervals because a committer picks cts > rts(prev).
//
// The running invariant that makes the protocol OPAQUE (safe for
// unsandboxed, longjmp-rolled-back C++ bodies, unlike commit-time-validated
// database TicToc): every logged read's version interval covers the
// transaction's coverage timestamp tt_rv. All logged values therefore equal
// the database state at the single logical time tt_rv — a consistent
// snapshot even for attempts that are already doomed. Reads maintain it two
// ways:
//   * a word with wts > tt_rv advances tt_rv to that wts and re-certifies
//     the whole read set at the new tt_rv (the "extension" — where TicToc
//     commits schedules ml_wt's encounter-time locking aborts);
//   * a word whose rts < tt_rv has its rts CAS-extended to tt_rv before the
//     entry is accepted (cheap; needed only until the version's rts catches
//     up with active readers).
// Certification of one entry at ts: same version still published (wts
// unchanged) -> CAS rts up to ts if needed; version replaced but the VALUE
// re-published unchanged with wts <= ts -> adopt the new word and retry
// (the value-based tolerance that also absorbs release-to-same-word abort
// restores); otherwise the snapshot is dead -> Validation abort.
//
// Writes buffer locally (write-back): no orec is touched until commit, so a
// writer holds no lock while the user body runs — the structural advantage
// over ml_wt under read-mostly contention. Commit: lock the write-set orecs
// in ADDRESS ORDER (deadlock-free, bounded waits), pick
// cts = max(tt_rv, rts(prev)+1 over the write set), certify the read set at
// cts (reads of own-write-set words need only wts-equality/value: the read
// saw the pre-state our cts-version directly replaces), publish the buffered
// values, release every orec at {wts=cts, rts=cts}. No fetch_add on any
// global line — timestamps are allocated entirely from the footprint.
#pragma once

#include <algorithm>

#include "tm/protocol/detail.hpp"
#include "tm/serial_lock.hpp"
#include "util/align.hpp"

namespace tle::protocol {

struct TicToc {
  static constexpr StmAlgo kAlgo = StmAlgo::TicToc;

  /// Bounded wait bookkeeping for a locked orec: first blocked pass counts a
  /// tictoc_wts_waits episode; an expired budget counts a timeout and aborts
  /// with Conflict (the governor backs off and retries — the lock holder is
  /// mid-publication and clears on its own).
  static void lock_wait(TxDesc& tx, unsigned& spin, bool& counted) {
    TxStats& s = detail::st(tx);
    if (!counted) {
      counted = true;
      s.bump(s.tictoc_wts_waits);
      detail::site_bump(tx, &obs::SiteCounters::tictoc_wts_waits);
    }
    if (spin >= config().park_spin_limit) {
      s.bump(s.tictoc_lock_timeouts);
      detail::site_bump(tx, &obs::SiteCounters::tictoc_lock_timeouts);
      tx_abort(tx, AbortCause::Conflict);
    }
    spin_pause(spin++);
  }

  [[noreturn]] static void certify_fail(TxDesc& tx) {
    TxStats& s = detail::st(tx);
    s.bump(s.tictoc_extension_fails);
    detail::site_bump(tx, &obs::SiteCounters::tictoc_extension_fails);
    tx_abort(tx, AbortCause::Validation);
  }

  /// Certify that (addr, val), read under orec word `seen`, is valid at
  /// timestamp `ts`: the published version must cover ts, CAS-extending its
  /// rts when it falls short. Returns the (possibly adopted) orec word the
  /// entry is now certified under; aborts if the value is dead at ts.
  static std::uint64_t certify(TxDesc& tx, std::atomic<std::uint64_t>& o,
                               std::uint64_t seen,
                               const std::atomic<std::uint64_t>& addr,
                               std::uint64_t val, std::uint64_t ts) {
    unsigned spin = 0;
    bool counted = false;
    std::uint64_t cur = o.load(std::memory_order_acquire);
    for (;;) {
      if (tt_locked(cur)) {
        // A committer is inside its lock->publish window; wait it out
        // (bounded) rather than guess which side of the publication we are.
        lock_wait(tx, spin, counted);
        cur = o.load(std::memory_order_acquire);
        continue;
      }
      if (tt_wts(cur) == tt_wts(seen)) {
        if (tt_rts(cur) >= ts) return cur;  // version already covers ts
        const std::uint64_t extended = tt_make(tt_wts(cur), ts);
        if (o.compare_exchange_weak(cur, extended,
                                    std::memory_order_acq_rel)) {
          TxStats& s = detail::st(tx);
          s.bump(s.tictoc_extensions);
          detail::site_bump(tx, &obs::SiteCounters::tictoc_extensions);
          return extended;
        }
        continue;  // CAS refreshed cur; re-examine
      }
      // The version was replaced since the read. If the replacement carries
      // the SAME value and exists at ts (wts <= ts), adopt it: the data the
      // body computed on is still the data at ts. The orec re-check pins the
      // value load to the adopted word (wts only grows, so no word ABA —
      // and an aborting committer restores its pre-lock word with memory
      // untouched, which this test correctly accepts).
      if (tt_wts(cur) <= ts && addr.load(std::memory_order_acquire) == val &&
          o.load(std::memory_order_acquire) == cur) {
        seen = cur;
        continue;
      }
      certify_fail(tx);
    }
  }

  /// Re-certify the whole read set at `ts` (skipping orecs the commit path
  /// already holds locked — the caller validates those against the pre-lock
  /// word). On return every entry covers ts.
  static void certify_reads(TxDesc& tx, std::uint64_t ts) {
    for (TicTocRead& r : tx.tt_reads) {
      const std::uint32_t own = tx.owned_idx.find(r.orec);
      if (own != AddrIndex::kNone) {
        // Own-locked write orec that we also read: the read saw the
        // pre-state our cts-version directly replaces, so it needs no rts
        // coverage — only proof that no foreign version intervened: same
        // version as read (wts equal), or memory still holds the value
        // (write-back leaves it clean until publication).
        const std::uint64_t prev = tx.owned[own].prev;
        if (tt_wts(prev) == tt_wts(r.seen) ||
            r.addr->load(std::memory_order_acquire) == r.val)
          continue;
        certify_fail(tx);
      }
      r.seen = certify(tx, *r.orec, r.seen, *r.addr, r.val, ts);
    }
  }

  static void begin(TxDesc& tx) {
    // clear_logs() reset tt_rv to 0; the first read establishes coverage.
  }

  // noinline: read/write instantiate inside the per-access dispatch in
  // tx_read_word/tx_write_word; keeping the OCC bodies out of line leaves
  // the default ml_wt fast path as tight as it was before the seam (the
  // call is intra-TU and fully predictable — noise next to the sandwich
  // loads these bodies perform anyway).
  [[gnu::noinline]] static std::uint64_t read(
      TxDesc& tx, const std::atomic<std::uint64_t>& cell) {
    if (serial_lock().serial_requested())
      tx_abort(tx, AbortCause::SerialPending);
    TxStats& s = detail::st(tx);
    // Read-own-write from the buffer: write-back means memory still holds
    // the pre-state, so the buffered value is the only correct answer.
    std::uint32_t idx = tx.tt_write_idx.find(&cell);
    if (idx != AddrIndex::kNone) return tx.tt_writes[idx].val;
    // Repeat read: the logged value is certified at tt_rv; re-reading shared
    // memory could only disagree with the snapshot.
    idx = tx.tt_read_idx.find(&cell);
    if (idx != AddrIndex::kNone) {
      s.bump(s.stm_read_dedup);
      return tx.tt_reads[idx].val;
    }
    std::atomic<std::uint64_t>& o = tictoc_orec_for(&cell);
    unsigned spin = 0;
    bool counted = false;
    std::uint64_t v1, val;
    for (;;) {
      v1 = o.load(std::memory_order_acquire);
      if (tt_locked(v1)) {
        lock_wait(tx, spin, counted);
        continue;
      }
      val = cell.load(std::memory_order_acquire);
      if (o.load(std::memory_order_acquire) == v1) break;
      spin_pause(spin++);  // a commit landed between the two orec loads
    }
    if (tt_wts(v1) > tx.tt_rv) {
      // Fresher version than our coverage: advance tt_rv and drag the whole
      // read set along — the in-flight face of TicToc's extension, and what
      // keeps doomed snapshots consistent (opacity).
      certify_reads(tx, tt_wts(v1));
      tx.tt_rv = tt_wts(v1);
    } else if (tt_rts(v1) < tx.tt_rv) {
      // Version predates our coverage point: extend ITS rts up to tt_rv so
      // the new entry joins the same consistent cut.
      v1 = certify(tx, o, v1, cell, val, tx.tt_rv);
    }
    tx.tt_read_idx.insert(&cell,
                          static_cast<std::uint32_t>(tx.tt_reads.size()));
    tx.tt_reads.push_back({&o, &cell, v1, val});
    return val;
  }

  [[gnu::noinline]] static void write(TxDesc& tx,
                                      std::atomic<std::uint64_t>& cell,
                                      std::uint64_t value) {
    if (serial_lock().serial_requested())
      tx_abort(tx, AbortCause::SerialPending);
    // In-place upsert: one buffer entry per cell, last write wins. No shared
    // word is touched — the write set is invisible until commit.
    const std::uint32_t idx = tx.tt_write_idx.find(&cell);
    if (idx != AddrIndex::kNone) {
      tx.tt_writes[idx].val = value;
      return;
    }
    tx.tt_write_idx.insert(&cell,
                           static_cast<std::uint32_t>(tx.tt_writes.size()));
    tx.tt_writes.push_back({&cell, &tictoc_orec_for(&cell), value});
    tx.read_only = false;
  }

  static void commit(TxDesc& tx) {
    if (tx.tt_writes.empty()) {
      // Read-only: the running invariant already certifies every read at
      // tt_rv — the commit is free, no validation pass, no shared writes.
      return;
    }
    TxStats& s = detail::st(tx);
    // Distinct write-set orecs in ADDRESS order: ordered acquisition is
    // deadlock-free among committers, and the bounded lock wait breaks the
    // residual cross-wait against a preempted lock holder.
    auto& order = tx.tt_lock_order;
    order.clear();
    for (const TicTocWrite& w : tx.tt_writes) order.push_back(w.orec);
    std::sort(order.begin(), order.end());
    order.erase(std::unique(order.begin(), order.end()), order.end());
    // Lock phase. Each acquisition is logged in owned/owned_idx BEFORE the
    // next is attempted, so an abort anywhere inside the window (lock
    // timeout, failed certification, injected fault) restores exactly the
    // words taken so far via rollback().
    for (std::atomic<std::uint64_t>* o : order) {
      unsigned spin = 0;
      bool counted = false;
      std::uint64_t v = o->load(std::memory_order_acquire);
      for (;;) {
        if (tt_locked(v)) {
          lock_wait(tx, spin, counted);
          v = o->load(std::memory_order_acquire);
          continue;
        }
        if (o->compare_exchange_weak(v, v | kTtLockBit,
                                     std::memory_order_acq_rel)) {
          tx.owned_idx.insert(o,
                              static_cast<std::uint32_t>(tx.owned.size()));
          tx.owned.push_back({o, v});
          break;
        }
      }
    }
    // The lock->certify->publish window is a first-class fault-injection
    // decision point: an injected Validation abort here exercises the
    // locked-rollback path, a delay widens the window other committers and
    // certifying readers race against.
    detail::maybe_inject(tx, fault::Hook::TtCommit);
    detail::maybe_perturb(s, fault::Hook::TtCommit);
    // Commit timestamp from the footprint alone: above every version this
    // write set replaces, and no earlier than the read set's coverage.
    std::uint64_t cts = tx.tt_rv;
    for (const OwnedOrec& o : tx.owned)
      if (tt_rts(o.prev) + 1 > cts) cts = tt_rts(o.prev) + 1;
    // Reads must hold at cts (extension happens here when cts outran rts).
    certify_reads(tx, cts);
    // Publish: values first, then each orec releases to {wts=cts, rts=cts}.
    // The release store orders the value writes before the new word, so a
    // reader's sandwich (orec, value, orec re-check) never sees a mix.
    for (const TicTocWrite& w : tx.tt_writes)
      w.addr->store(w.val, std::memory_order_relaxed);
    const std::uint64_t pub = tt_make(cts, cts);
    for (const OwnedOrec& o : tx.owned)
      o.orec->store(pub, std::memory_order_release);
  }

  static void rollback(TxDesc& tx) noexcept {
    // Write-back: memory was never touched, so rollback only releases any
    // commit-window locks by restoring the exact pre-lock words. Restoring
    // the same word is safe (no incarnation needed): concurrent certifiers
    // validate by value, and the value genuinely did not change.
    for (const OwnedOrec& o : tx.owned)
      o.orec->store(o.prev, std::memory_order_release);
  }

  static std::uint32_t rset_size(const TxDesc& tx) noexcept {
    return static_cast<std::uint32_t>(tx.tt_reads.size());
  }
  static std::uint32_t wset_size(const TxDesc& tx) noexcept {
    return static_cast<std::uint32_t>(tx.tt_writes.size());
  }
};

}  // namespace tle::protocol
