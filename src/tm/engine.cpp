// The speculative engines and the shared commit/abort/quiescence machinery.
//
//   * STM: the commit protocol is a compile-time policy behind the
//     StmProtocol seam (protocol/protocol.hpp) — ml_wt (encounter-time orec
//     locks + TinySTM extension), gl_wt (TML global versioned lock), and
//     tictoc (timestamped OCC, write-back, no global clock). This file owns
//     everything protocol-independent: epochs, quiescence (paper Section
//     IV), limbo reclamation, serial fallback, stats/obs, and the dispatch
//     into the selected policy.
//   * Simulated HTM: NOrec-shaped, with the commit sequence STRIPED — a
//     table of padded seqlock words sharded by address (meta.hpp). A
//     committer bumps only the stripes its write set touches (ascending
//     acquisition); readers subscribe stripes lazily as their footprint
//     grows and value-revalidate only entries whose stripe moved. Plus an
//     L1 capacity model and fallback-lock subscription (paper Section II-A
//     behaviours; eager per-access polling by default, commit-time lazy
//     subscription as the observable Dice-et-al. hazard).
//
// Abort is longjmp-based: speculative bodies must confine side effects to
// tm_var accesses, TxContext::alloc/free, and deferred actions (the same
// contract compiler-based TM enforces statically via transaction_safe).
#include "tm/txdesc.hpp"

#include <cstdlib>

#include "tm/audit.hpp"
#include "tm/fault/fault.hpp"
#include "tm/obs/site.hpp"
#include "tm/protocol/protocol.hpp"
#include "tm/serial_lock.hpp"
#include "tm/trace.hpp"
#include "util/align.hpp"
#include "util/timing.hpp"

namespace tle {

namespace {

using protocol::stm_protocol_dispatch;
using protocol::detail::maybe_inject;
using protocol::detail::maybe_perturb;
using protocol::detail::st;

// Observability helpers: logged-set sizes for the flight recorder, read
// while the logs are still intact (i.e. before clear_logs()). The STM sizes
// are policy-defined (e.g. tictoc counts its buffered write set, not the
// undo log it never keeps).
std::uint32_t obs_rset(const TxDesc& tx) noexcept {
  if (tx.access == AccessMode::Htm)
    return static_cast<std::uint32_t>(tx.hreads.size());
  return stm_protocol_dispatch(
      tx.algo, [&](auto p) { return decltype(p)::rset_size(tx); });
}
std::uint32_t obs_wset(const TxDesc& tx) noexcept {
  if (tx.access == AccessMode::Htm)
    return static_cast<std::uint32_t>(tx.hwrites.size());
  return stm_protocol_dispatch(
      tx.algo, [&](auto p) { return decltype(p)::wset_size(tx); });
}

// ---------------------------------------------------------------------------
// Epochs (quiescence substrate)
// ---------------------------------------------------------------------------

void epoch_enter(TxDesc& tx) noexcept {
  tx.slot->domain.store(tx.domain, std::memory_order_relaxed);
  // Mode flag for htm_readers_possible(): stored before the seq_cst seq
  // bump, so a scanner that observes the odd seq also observes the flag.
  tx.slot->htm_active.store(tx.access == AccessMode::Htm ? 1 : 0,
                            std::memory_order_relaxed);
  // seq_cst so the odd value is globally visible before any transactional
  // read — a peer that misses it could under-wait in quiescence.
  tx.slot->seq.fetch_add(1, std::memory_order_seq_cst);
}

void epoch_exit(TxDesc& tx) noexcept {
  // Perturbation point: delaying the exit keeps this slot's seq odd longer,
  // deterministically driving quiescers into their spin-then-park path.
  maybe_perturb(st(tx), fault::Hook::EpochExit);
  // The RMW orders the undo/write-back stores before the "done" signal a
  // quiescing privatizer synchronizes with. seq_cst (not release) is the
  // Dekker edge of the park protocol: a quiescer raises slot->parked, then
  // re-reads seq at seq_cst before sleeping — with both sides seq_cst,
  // either its re-read sees this increment or the load below sees its
  // parked count, so a straggler exit can never slip past a parking waiter
  // unnoticed. Uncontended cost is unchanged on x86 (an RMW is a locked op
  // at any ordering) plus one same-line load.
  tx.slot->seq.fetch_add(1, std::memory_order_seq_cst);
  if (tx.slot->parked.load(std::memory_order_seq_cst) != 0)
    tx.slot->seq.notify_all();
}

// ---------------------------------------------------------------------------
// Simulated HTM (NOrec-shaped)
// ---------------------------------------------------------------------------

void htm_configure_capacity(TxDesc& tx) {
  const RuntimeConfig& cfg = config();
  if (!tx.cap_configured || tx.wcap.sets() != cfg.htm_write_sets ||
      tx.wcap.ways() != cfg.htm_write_ways ||
      tx.rcap.sets() != cfg.htm_read_sets ||
      tx.rcap.ways() != cfg.htm_read_ways) {
    tx.wcap.configure(cfg.htm_write_sets, cfg.htm_write_ways);
    tx.rcap.configure(cfg.htm_read_sets, cfg.htm_read_ways);
    tx.cap_configured = true;
  }
  tx.wcap.new_txn();
  tx.rcap.new_txn();
}

void htm_begin(TxDesc& tx) {
  htm_configure_capacity(tx);
  // No sequence snapshot here: stripes are subscribed lazily at first
  // touch, so begin neither spins against an in-flight writeback (the old
  // unbounded htm_begin wait) nor shares a line with unrelated committers.
  tx.stripes_new_txn();
}

/// Wait out a writeback (odd sequence) on stripe `s`, bounded: after
/// park_spin_limit pauses the attempt aborts with StripeBusy instead of
/// spinning forever against a preempted committer (satellite of the old
/// unbounded htm_begin/htm_revalidate spin). The governor treats StripeBusy
/// like SerialPending — a budget-free backoff-and-retry — because the
/// blocking writeback, like a serial window, clears on its own.
std::uint64_t htm_stripe_wait_even(TxDesc& tx, unsigned s) {
  unsigned spin = 0;
  const unsigned limit = config().park_spin_limit;
  for (;;) {
    const std::uint64_t v = htm_stripe_seq(s).load(std::memory_order_acquire);
    if (!(v & 1)) return v;
    if (spin >= limit) tx_abort(tx, AbortCause::StripeBusy);
    spin_pause(spin++);
  }
}

/// Value-revalidate the logged entries of stripe `s` and adopt its newest
/// even sequence. Aborts if any value changed. A pass that completes found
/// only false invalidation (a commit to the stripe that did not overwrite
/// anything we read — aliasing within the stripe, or ABA by value), which
/// stripe_false_revalidations counts: it is the residual cost striping
/// exists to shrink.
void htm_stripe_revalidate(TxDesc& tx, unsigned s) {
  for (;;) {
    const std::uint64_t cur = htm_stripe_wait_even(tx, s);
    if (cur == tx.hstripe_snap[s]) return;
    for (const HtmRead& r : tx.hreads) {
      if (r.stripe == s && r.addr->load(std::memory_order_acquire) != r.val)
        tx_abort(tx, AbortCause::Validation);
    }
    if (htm_stripe_seq(s).load(std::memory_order_acquire) != cur)
      continue;  // another commit landed mid-pass: re-run against it
    tx.hstripe_snap[s] = cur;
    TxStats& stats = st(tx);
    stats.bump(stats.stripe_false_revalidations);
    const std::uint32_t ob = obs::flags();
    if (ob & obs::kProfileBit)
      obs::site_counters(tx.slot_id, tx.site)
          .stripe_false_revalidations.fetch_add(1, std::memory_order_relaxed);
    if (ob & obs::kTraceBit)
      trace::emit(trace::Event::StripeRevalidate, AbortCause::None, tx.site,
                  static_cast<std::uint16_t>(tx.attempts),
                  static_cast<std::uint32_t>(s));
    return;
  }
}

/// Bring every subscribed stripe whose sequence moved back to a validated
/// snapshot. O(subscribed stripes) loads when nothing moved.
void htm_revalidate_moved(TxDesc& tx) {
  for (unsigned i = 0; i < tx.hsub_n; ++i) {
    const unsigned s = tx.hsub[i];
    if (htm_stripe_seq(s).load(std::memory_order_acquire) !=
        tx.hstripe_snap[s])
      htm_stripe_revalidate(tx, s);
  }
}

/// True while every subscribed stripe still shows its snapshot value. Since
/// sequences only grow, observing snap at time t proves no commit to the
/// stripe completed (or was mid-writeback) at t — the post-read pass over
/// this predicate is what makes the per-stripe snapshots one consistent cut.
bool htm_stripes_current(const TxDesc& tx) noexcept {
  for (unsigned i = 0; i < tx.hsub_n; ++i) {
    const unsigned s = tx.hsub[i];
    if (htm_stripe_seq(s).load(std::memory_order_acquire) !=
        tx.hstripe_snap[s])
      return false;
  }
  return true;
}

/// htm_stripe_index with a per-transaction single-entry block cache:
/// consecutive accesses overwhelmingly stay in one 512-byte block, so the
/// hot path is a compare instead of the multiply/shift/mask.
inline unsigned htm_stripe_cached(TxDesc& tx, const void* addr) noexcept {
  const std::uintptr_t block =
      reinterpret_cast<std::uintptr_t>(addr) >> kHtmStripeBlockShift;
  if (block != tx.hblock_cache) {
    tx.hblock_cache = block;
    tx.hblock_stripe = htm_stripe_index(addr);
  }
  return tx.hblock_stripe;
}

/// Subscribe the stripe covering `addr` (first read it covers): snapshot
/// it and mark the cut dirty — the caller's slow path then re-checks the
/// stripes already subscribed so the new snapshot joins a globally
/// consistent cut. Without that, a commit spanning an old stripe and the
/// new one could slip between the two subscriptions unnoticed.
unsigned htm_subscribe_stripe(TxDesc& tx, const void* addr) {
  const unsigned s = htm_stripe_cached(tx, addr);
  if (tx.stripe_subscribed(s)) return s;
  tx.stripe_subscribe(s, htm_stripe_wait_even(tx, s));
  return s;
}

std::uint64_t htm_read(TxDesc& tx, const std::atomic<std::uint64_t>& cell) {
  // Real HTM transactions die the instant the fallback lock is taken; the
  // pending-writer poll is our analog of the lock-word subscription. Lazy
  // mode skips it by design — that omission IS the Dice et al. hazard.
  if (!tx.htm_lazy && serial_lock().serial_requested())
    tx_abort(tx, AbortCause::SerialPending);

  // Read-own-write from the store buffer: O(1). Last write wins because
  // htm_write updates buffered entries in place.
  std::uint32_t idx = tx.hwrite_idx.find(&cell);
  if (idx != AddrIndex::kNone) {
    st(tx).bump(st(tx).htm_rw_hits);
    return tx.hwrites[idx].val;
  }
  // Read-own-read: a repeat of a logged word is served from the value log.
  // The logged copy is exactly the snapshot-consistent value for its
  // stripe, so the repeat neither touches shared memory nor revalidates.
  idx = tx.hread_idx.find(&cell);
  if (idx != AddrIndex::kNone) {
    st(tx).bump(st(tx).htm_read_dedup);
    return tx.hreads[idx].val;
  }

  const unsigned s = htm_subscribe_stripe(tx, &cell);
  // Zombie window (deterministic reproduction): between a peer's privatizing
  // commit and this read's post-load stripe check, the load below touches
  // memory the peer may already consider private. A Delay rule at htm_zombie
  // parks the reader exactly here, so a racing free turns the next load into
  // a certain use-after-free unless the free was limbo-routed.
  maybe_perturb(st(tx), fault::Hook::HtmZombieLoad);
  std::uint64_t val;
  for (;;) {
    if (tx.hsub_dirty) {
      // Slow path (new subscription, or a stripe moved): re-sync every
      // moved stripe, then re-observe ALL subscribed stripes at their
      // snaps AFTER the load — that pass fixes the instant t0 at which
      // the logged values and `val` were simultaneously live.
      htm_revalidate_moved(tx);
      val = cell.load(std::memory_order_acquire);
      if (!htm_stripes_current(tx)) continue;
      tx.hsub_dirty = false;
      break;
    }
    // Fast path: one post-load check of the owning stripe. Seeing it still
    // at its snap — unchanged since the t0 confirmation, sequences only
    // grow — proves no commit touched this stripe in [t0, now], so `val`
    // already existed at t0 and joins the consistent cut as-is. Stripes
    // this read does not touch cannot invalidate it and are not checked.
    val = cell.load(std::memory_order_acquire);
    if (htm_stripe_seq(s).load(std::memory_order_acquire) ==
        tx.hstripe_snap[s])
      break;
    tx.hsub_dirty = true;  // own stripe moved: rebuild the full cut
  }
  if (!tx.rcap.touch(&cell)) tx_abort(tx, AbortCause::Capacity);
  tx.hread_idx.insert(&cell, static_cast<std::uint32_t>(tx.hreads.size()));
  tx.hreads.push_back({&cell, val, s});
  return val;
}

void htm_write(TxDesc& tx, std::atomic<std::uint64_t>& cell,
               std::uint64_t value) {
  if (!tx.htm_lazy && serial_lock().serial_requested())
    tx_abort(tx, AbortCause::SerialPending);
  if (!tx.wcap.touch(&cell)) tx_abort(tx, AbortCause::Capacity);
  // In-place upsert keeps the buffer at one entry per address while
  // preserving last-write-wins for both htm_read and commit write-back.
  // The stripe is resolved here, once, so commit's stripe-set build is a
  // scan of the buffer instead of a re-hash of every address.
  const std::uint32_t idx = tx.hwrite_idx.find(&cell);
  if (idx != AddrIndex::kNone) {
    tx.hwrites[idx].val = value;
  } else {
    tx.hwrite_idx.insert(&cell, static_cast<std::uint32_t>(tx.hwrites.size()));
    tx.hwrites.push_back({&cell, value, htm_stripe_cached(tx, &cell)});
  }
  tx.read_only = false;
}

void htm_commit(TxDesc& tx) {
  // Environmental abort model: real HTM transactions die to interrupts,
  // TLB misses, and cache pressure regardless of contention; the rate knob
  // reproduces the paper's observed TSX failure statistics.
  const double p = config().htm_spurious_abort_rate;
  if (p > 0 && tx.backoff_rng.chance(p)) tx_abort(tx, AbortCause::Spurious);
  TxStats& stats = st(tx);
  const std::uint32_t ob = obs::flags();
  if (tx.htm_lazy) {
    // Lazy subscription: the ONLY look at the fallback lock. A serial
    // writer that started AND finished since our begin is invisible here —
    // the zombie-commit window Dice et al. close with hardware support and
    // the fault-seeded unsafety test drives deterministically.
    if (serial_lock().serial_requested())
      tx_abort(tx, AbortCause::SerialPending);
    if (ob & obs::kTraceBit)
      trace::emit(trace::Event::LazySubscribe, AbortCause::None, tx.site,
                  static_cast<std::uint16_t>(tx.attempts));
  }
  if (tx.hwrites.empty()) {
    // Read-only: every read left the subscribed stripes on one validated
    // consistent cut, so there is nothing to publish or re-check.
    if (tx.htm_lazy) stats.bump(stats.lazy_sub_commits);
    return;
  }

  // Distinct write stripes, ascending. Ordered acquisition is deadlock-free
  // among committers; the cross-wait a committer can still hit (holding its
  // own stripes odd while validating reads against a stripe another
  // committer holds) is broken by the bounded wait + StripeBusy abort.
  bool is_write_stripe[kHtmStripeMax] = {};
  std::uint64_t prev_by_stripe[kHtmStripeMax];
  unsigned ws[kHtmStripeMax];
  unsigned nw = 0;
  for (const HtmWrite& w : tx.hwrites) {
    if (!is_write_stripe[w.stripe]) {
      is_write_stripe[w.stripe] = true;
      ws[nw++] = w.stripe;
    }
  }
  std::sort(ws, ws + nw);

  unsigned held = 0;
  const unsigned limit = config().park_spin_limit;
  // Abort with every acquired stripe restored to its original even value.
  // Nothing has been published, so the restore is invisible to readers:
  // sequences only move forward at a real commit, and a reader that
  // snapshotted prev during our odd window was already waiting it out.
  auto fail = [&](AbortCause cause) {
    while (held) {
      --held;
      htm_stripe_seq(ws[held]).store(prev_by_stripe[ws[held]],
                                     std::memory_order_release);
    }
    tx_abort(tx, cause);
  };

  for (unsigned i = 0; i < nw; ++i) {
    unsigned spin = 0;
    for (;;) {
      std::uint64_t v = htm_stripe_seq(ws[i]).load(std::memory_order_acquire);
      if (v & 1) {
        if (spin >= limit) fail(AbortCause::StripeBusy);
        spin_pause(spin++);
        continue;
      }
      if (htm_stripe_seq(ws[i]).compare_exchange_weak(
              v, v + 1, std::memory_order_acq_rel)) {
        prev_by_stripe[ws[i]] = v;
        ++held;
        break;
      }
    }
  }
  // Validate subscribed read stripes that moved since their snapshot. A
  // stripe we hold is quiescent (any competing committer is parked on its
  // odd value), so comparing its pre-lock value against the snapshot
  // suffices; a foreign stripe gets the bounded wait + value check.
  for (unsigned i = 0; i < tx.hsub_n; ++i) {
    const unsigned s = tx.hsub[i];
    std::uint64_t cur;
    if (is_write_stripe[s]) {
      cur = prev_by_stripe[s];
      if (cur == tx.hstripe_snap[s]) continue;
    } else {
      cur = htm_stripe_seq(s).load(std::memory_order_acquire);
      if (cur == tx.hstripe_snap[s]) continue;
      unsigned spin = 0;
      while (cur & 1) {
        if (spin >= limit) fail(AbortCause::StripeBusy);
        spin_pause(spin++);
        cur = htm_stripe_seq(s).load(std::memory_order_acquire);
      }
    }
    for (const HtmRead& r : tx.hreads) {
      if (r.stripe == s && r.addr->load(std::memory_order_acquire) != r.val)
        fail(AbortCause::Validation);
    }
    tx.hstripe_snap[s] = cur;
  }

  for (const HtmWrite& w : tx.hwrites)
    w.addr->store(w.val, std::memory_order_relaxed);
  for (unsigned i = 0; i < nw; ++i)
    htm_stripe_seq(ws[i]).store(prev_by_stripe[ws[i]] + 2,
                                std::memory_order_release);
  // Counted after the point of no return so stripe_bumps tallies published
  // commits only: stripe_bumps == stripes bumped visible to other readers.
  stats.bump(stats.stripe_bumps, nw);
  if (ob & obs::kProfileBit)
    obs::site_counters(tx.slot_id, tx.site)
        .stripe_bumps.fetch_add(nw, std::memory_order_relaxed);
  if (tx.htm_lazy) stats.bump(stats.lazy_sub_commits);
}

}  // namespace

// ---------------------------------------------------------------------------
// Quiescence (paper Section IV)
//
// Three cooperating layers (docs/tm-internals.md, "Quiescence and
// reclamation"):
//   * epoch_scan — one registry pass in snapshot-then-recheck form, with
//     spin-then-park waiting on each straggler's epoch word;
//   * grace_sync — RCU-style shared grace periods: concurrent all-domain
//     quiesces piggyback on a single scanner via a global ticket counter;
//   * limbo_* — epoch-based reclamation: deferred frees wait out their
//     grace period on a per-thread limbo list instead of stalling the
//     committing transaction (the §IV-B allocator exception, amortized).
// ---------------------------------------------------------------------------

namespace {

/// One grace pass: snapshot every relevant peer's epoch once, then wait
/// only for the peers caught mid-transaction (odd) to advance past their
/// snapshot. Waiting is a bounded spin followed by a park on the
/// straggler's `seq` (epoch_exit notifies when the slot's parked counter is
/// raised). With `domain_filter`, only peers in `tx.domain` count —
/// sufficient for ordering publication, never for reclamation.
void epoch_scan(TxDesc& tx, bool domain_filter) {
  const int hw = slot_high_water();
  ThreadSlot* slots = slot_table();
  int ids[kMaxThreads];
  std::uint64_t snap[kMaxThreads];
  int n = 0;
  for (int i = 0; i < hw; ++i) {
    ThreadSlot& peer = slots[i];
    if (&peer == tx.slot) continue;
    const std::uint64_t v = peer.seq.load(std::memory_order_seq_cst);
    if (!(v & 1)) continue;  // not inside a transaction
    if (domain_filter &&
        peer.domain.load(std::memory_order_acquire) != tx.domain)
      continue;  // ablation A3: other quiescence domain
    ids[n] = i;
    snap[n] = v;
    ++n;
  }
  if (n == 0) return;
  TxStats& s = st(tx);
  const std::uint64_t wait_start = now_ns();
  std::uint64_t spins = 0;
  const unsigned spin_limit = config().park_spin_limit;
  for (int k = 0; k < n; ++k) {
    ThreadSlot& peer = slots[ids[k]];
    unsigned spin = 0;
    while (peer.seq.load(std::memory_order_acquire) == snap[k]) {
      if (spin < spin_limit) {
        spin_pause(spin++);
        ++spins;
        continue;
      }
      // Park on the straggler's epoch word. Dekker with epoch_exit: raise
      // parked, re-read seq at seq_cst, and only then sleep — the exiting
      // peer bumps seq (RMW) before loading parked, so one side always
      // sees the other; atomic::wait itself re-checks the value, so a
      // stale notify cannot strand us. parked_waits is bumped BEFORE the
      // sleep so observers (stats polls, tests) can see a live park.
      maybe_perturb(s, fault::Hook::EpochScan);
      peer.parked.fetch_add(1, std::memory_order_seq_cst);
      const std::uint64_t cur = peer.seq.load(std::memory_order_seq_cst);
      if (cur == snap[k]) {
        s.bump(s.parked_waits);
        peer.seq.wait(cur, std::memory_order_seq_cst);
      }
      peer.parked.fetch_sub(1, std::memory_order_seq_cst);
    }
  }
  s.bump(s.quiesce_waits);
  if (spins) s.bump(s.quiesce_spins, spins);
  s.bump(s.quiesce_wait_ns, now_ns() - wait_start);
}

/// True if no peer is currently mid-transaction (one snapshot pass, no
/// waiting). The uncontended-commit fast path: when it holds, a quiesce is
/// vacuously complete and the shared grace machinery — several RMWs on one
/// contended line — would be pure overhead.
bool epoch_peers_quiet(TxDesc& tx) noexcept {
  const int hw = slot_high_water();
  ThreadSlot* slots = slot_table();
  for (int i = 0; i < hw; ++i) {
    if (&slots[i] == tx.slot) continue;
    if (slots[i].seq.load(std::memory_order_seq_cst) & 1) return false;
  }
  return true;
}

/// All-domain quiescence with shared grace periods. The requester takes
/// ticket started+1; any pass numbered >= the ticket began (seq_cst
/// fetch_add on `started`) after the requester's load, so its snapshot
/// postdates the request and covers every transaction the requester could
/// race with. Concurrent requesters therefore piggyback on one scanner's
/// O(threads) pass instead of each running their own. Also certifies the
/// caller's limbo batches enqueued before entry (local certification — see
/// TxDesc::limbo_certified).
void grace_sync(TxDesc& tx) {
  TxStats& s = st(tx);
  const std::uint64_t mark = tx.limbo_seq;
  if (epoch_peers_quiet(tx)) {
    tx.limbo_certified = mark;
    return;
  }
  GraceState& g = grace_state();
  const std::uint64_t target = g.started.load(std::memory_order_seq_cst) + 1;
  const unsigned spin_limit = config().park_spin_limit;
  bool scanned = false;
  // Piggyback-wait accounting, accumulated across loop iterations so one
  // logical quiesce that re-competes after a short pass counts as one wait.
  bool waited = false;
  std::uint64_t total_spins = 0;
  std::uint64_t total_wait_ns = 0;
  while (g.completed.load(std::memory_order_seq_cst) < target) {
    std::uint32_t free_token = 0;
    if (g.scanner.compare_exchange_strong(free_token, 1,
                                          std::memory_order_seq_cst)) {
      // We are the scanner. Run a full pass unconditionally, even if
      // `completed` advanced while we raced for the token: piggybackers
      // park on `completed` changing, so a token holder that skipped the
      // scan would strand them on a stale value.
      const std::uint64_t pass =
          g.started.fetch_add(1, std::memory_order_seq_cst) + 1;
      const bool metered = obs::flags() & obs::kMetricsBit;
      const std::uint64_t scan_t0 = metered ? now_ns() : 0;
      epoch_scan(tx, /*domain_filter=*/false);
      if (metered) {
        const std::uint64_t scan_ns = now_ns() - scan_t0;
        g.last_scan_ns.store(scan_ns, std::memory_order_relaxed);
        g.scan_ns_total.fetch_add(scan_ns, std::memory_order_relaxed);
      }
      g.completed.store(pass, std::memory_order_seq_cst);
      g.scanner.store(0, std::memory_order_seq_cst);
      if (g.parked.load(std::memory_order_seq_cst) != 0)
        g.completed.notify_all();
      s.bump(s.grace_scans);
      scanned = true;
      continue;  // pass >= target: the loop condition now fails
    }
    // A pass is in flight: piggyback. Spin briefly, then park on
    // `completed` — but only while a scanner is active, which guarantees
    // the word will change and be notified. If the scanner finished
    // between our checks, loop around and compete for the token instead.
    const std::uint64_t c = g.completed.load(std::memory_order_seq_cst);
    if (c >= target) break;
    waited = true;
    const std::uint64_t wait_start = now_ns();
    unsigned spin = 0;
    while (spin < spin_limit &&
           g.completed.load(std::memory_order_acquire) == c) {
      spin_pause(spin++);
      ++total_spins;
    }
    maybe_perturb(s, fault::Hook::GraceWait);
    g.parked.fetch_add(1, std::memory_order_seq_cst);
    if (g.completed.load(std::memory_order_seq_cst) == c &&
        g.scanner.load(std::memory_order_seq_cst) != 0) {
      s.bump(s.parked_waits);
      g.completed.wait(c, std::memory_order_seq_cst);
    }
    g.parked.fetch_sub(1, std::memory_order_seq_cst);
    total_wait_ns += now_ns() - wait_start;
  }
  if (waited) {
    s.bump(s.quiesce_waits);
    if (total_spins) s.bump(s.quiesce_spins, total_spins);
    s.bump(s.quiesce_wait_ns, total_wait_ns);
  }
  if (!scanned) s.bump(s.grace_shared);
  tx.limbo_certified = mark;
}

/// Move the transaction's deferred frees onto the thread-local limbo list,
/// stamped with the grace ticket whose completion makes them safe to
/// release. Runs after epoch_exit: transactions beginning later cannot
/// acquire references to the privatized blocks, so waiting out everything
/// in flight at enqueue time (what ticket certification means) is enough.
void limbo_enqueue(TxDesc& tx) {
  LimboBatch b;
  b.ptrs = std::move(tx.frees);
  tx.frees.clear();
  b.ticket = grace_state().started.load(std::memory_order_seq_cst) + 1;
  b.local_seq = ++tx.limbo_seq;
  tx.limbo_pending += b.ptrs.size();
  tx.slot->limbo_pending.store(tx.limbo_pending, std::memory_order_relaxed);
  tx.limbo.push_back(std::move(b));
  st(tx).bump(st(tx).limbo_enqueued);
}

/// Release every limbo batch already covered by a full all-domain grace
/// period: globally (a shared pass numbered >= its ticket completed) or
/// locally (this thread ran its own all-domain quiesce after the enqueue).
/// Batches are FIFO with nondecreasing stamps, so a prefix drains. With
/// `force`, a synchronous grace period is run first so everything drains —
/// the bounded-memory backstop and the thread-exit path.
void limbo_drain(TxDesc& tx, bool force) {
  if (tx.limbo.empty()) return;
  TxStats& s = st(tx);
  if (force) {
    grace_sync(tx);
    s.bump(s.limbo_forced_flush);
    // A forced flush is a genuine all-domain quiesce: it also discharges
    // any armed privatization hazard for this thread.
    if (audit::enabled()) audit::on_quiesced(tx);
  }
  const std::uint64_t completed =
      grace_state().completed.load(std::memory_order_seq_cst);
  std::size_t n = 0;
  for (LimboBatch& b : tx.limbo) {
    if (completed < b.ticket && b.local_seq > tx.limbo_certified) break;
    for (void* p : b.ptrs) ::operator delete(p);
    s.bump(s.tm_frees, b.ptrs.size());
    tx.limbo_pending -= b.ptrs.size();
    ++n;
  }
  if (n) {
    tx.limbo.erase(tx.limbo.begin(),
                   tx.limbo.begin() + static_cast<std::ptrdiff_t>(n));
    s.bump(s.limbo_drained, n);
    tx.slot->limbo_pending.store(tx.limbo_pending,
                                 std::memory_order_relaxed);
  }
}

}  // namespace

void quiesce_wait(TxDesc& tx, bool all_domains) {
  st(tx).bump(st(tx).quiesce_calls);
  const std::uint32_t ob = obs::flags();
  const RuntimeConfig& cfg = config();
  // The governor's stall detector also needs the wait measured when the
  // obs layer is dark.
  const bool stall_chk = cfg.governor && cfg.watchdog_stall_ns != 0;
  const std::uint64_t t0 = (ob || stall_chk) ? now_ns() : 0;
  const std::uint64_t waits_before =
      ob & obs::kProfileBit
          ? st(tx).quiesce_waits.load(std::memory_order_relaxed)
          : 0;
  if (config().multi_domain && !all_domains) {
    // Ordering-only quiesce, filtered to the transaction's own domain
    // (ablation A3). Doesn't go through the grace machinery: tickets are
    // all-domain by construction.
    epoch_scan(tx, /*domain_filter=*/true);
  } else {
    grace_sync(tx);
  }
  if (ob || stall_chk) {
    const std::uint64_t dur = now_ns() - t0;
    if (stall_chk && dur >= cfg.watchdog_stall_ns) {
      st(tx).bump(st(tx).gov_stall_events);
      if (ob & obs::kTraceBit)
        trace::emit(trace::Event::WatchdogEscalate, AbortCause::None, tx.site,
                    0, 0, 0, dur);
    }
    if (ob & obs::kProfileBit) {
      obs::SiteCounters& sc = obs::site_counters(tx.slot_id, tx.site);
      sc.quiesce_ns.add(dur);
      if (st(tx).quiesce_waits.load(std::memory_order_relaxed) != waits_before)
        sc.quiesce_waits.fetch_add(1, std::memory_order_relaxed);
    }
    if (ob & obs::kTraceBit)
      trace::emit(trace::Event::Quiesce, AbortCause::None, tx.site, 0, 0, 0,
                  dur);
  }
}

bool htm_readers_possible() noexcept {
  ThreadSlot* slots = slot_table();
  const int hw = slot_high_water();
  const int self = my_slot_id();
  for (int i = 0; i < hw; ++i) {
    if (i == self) continue;
    // Acquire on seq synchronizes with the seq_cst epoch-enter RMW, making
    // the program-ordered-earlier htm_active store visible whenever the odd
    // seq is. A stale flag on an even slot is never consulted.
    const std::uint64_t s = slots[i].seq.load(std::memory_order_acquire);
    if ((s & 1) != 0 &&
        slots[i].htm_active.load(std::memory_order_relaxed) != 0)
      return true;
  }
  return false;
}

void tm_private_free(void* p) {
  if (!p) return;
  TxDesc& tx = TxDesc::current();
  TxStats& s = st(tx);
  if (tx.in_txn()) {
    // Inside a section the ordinary deferred-free path already provides the
    // right lifetime (post-commit limbo, or the mode-aware serial-exit
    // routing above).
    tx.frees.push_back(p);
    tx.freed_memory = true;
    return;
  }
  // Non-transactional privatizer (detach committed, now reclaiming). An
  // in-flight simulated-HTM reader validates lazily: it can issue one more
  // value-validated load of this block before noticing the commit sequence
  // moved, so the block must outlive every transaction in flight right now.
  // Park it in limbo under the next grace ticket; STM peers (and none at
  // all) license the immediate free the paper's identity promises.
  if (htm_readers_possible()) {
    tx.frees.push_back(p);
    limbo_enqueue(tx);
    s.bump(s.priv_limbo_routed);
    if (obs::flags() & obs::kProfileBit)
      obs::site_counters(tx.slot_id, tx.site)
          .priv_limbo_routed.fetch_add(1, std::memory_order_relaxed);
    limbo_drain(tx,
                /*force=*/tx.limbo_pending > config().limbo_max_pending);
  } else {
    ::operator delete(p);
    s.bump(s.priv_immediate_frees);
    // Opportunistic drain: release whatever a grace period already covers.
    if (!tx.limbo.empty()) limbo_drain(tx, /*force=*/false);
  }
}

// ---------------------------------------------------------------------------
// Shared speculative lifecycle
// ---------------------------------------------------------------------------

namespace {

/// Abort an attempt that died at begin, before read_lock/epoch_enter: there
/// is no engine state, epoch slot, or read-side registration to undo, so
/// tx_abort's rollback sequence would corrupt state it never acquired.
[[noreturn]] void tx_abort_at_begin(TxDesc& tx, AbortCause cause) {
  st(tx).bump(st(tx).aborts[static_cast<int>(cause)]);
  const std::uint32_t ob = obs::flags();
  if (ob) {
    const std::uint64_t dur = now_ns() - tx.obs_t0;
    if (ob & obs::kProfileBit) {
      obs::SiteCounters& sc = obs::site_counters(tx.slot_id, tx.site);
      sc.aborts[static_cast<int>(cause)].fetch_add(1,
                                                   std::memory_order_relaxed);
      sc.attempt_ns.add(dur);
    }
    if (ob & obs::kTraceBit)
      trace::emit(trace::Event::Abort, cause, tx.site,
                  static_cast<std::uint16_t>(tx.attempts), 0, 0, dur);
  }
  tx.depth = 0;
  tx.last_abort = cause;
  std::longjmp(tx.env, static_cast<int>(cause));
}

}  // namespace

void tx_begin_speculative(TxDesc& tx) {
  const RuntimeConfig& cfg = config();
  tx.access = live_mode() == ExecMode::Htm ? AccessMode::Htm : AccessMode::Stm;
  tx.is_serial = false;
  tx.depth = 1;
  tx.clear_logs();
  tx.htm_lazy = tx.access == AccessMode::Htm &&
                cfg.htm_subscription == HtmSubscription::Lazy;
  tx.sl_held = false;
  if (tx.htm_lazy) {
    // Lazy subscription: the fallback lock is examined only at commit, so
    // the attempt is NOT registered as a reader. A serial writer therefore
    // neither waits for this transaction nor aborts it mid-flight — the
    // deliberate reproduction of the unsafe lazy-subscription variant.
  } else if (tx.access == AccessMode::Htm) {
    // Fallback-lock subscription: hardware elision reads the serial lock
    // inside the transaction at xbegin, so a pending writer kills the
    // attempt on the spot — it cannot be waited out the way the STM modes'
    // blocking read_lock waits it out. This is the begin-side half of the
    // lemming effect: under a cause-blind policy these instant aborts burn
    // the whole retry budget against a lock that has not been released yet.
    if (!serial_lock().try_read_lock(*tx.slot)) {
      st(tx).bump(st(tx).txn_starts);
      if (obs::flags()) tx.obs_t0 = now_ns();
      tx_abort_at_begin(tx, AbortCause::SerialPending);
    }
    tx.sl_held = true;
  } else {
    serial_lock().read_lock(*tx.slot);
    tx.sl_held = true;
  }
  epoch_enter(tx);
  st(tx).bump(st(tx).txn_starts);
  const std::uint32_t ob = obs::flags();
  if (ob) {
    tx.obs_t0 = now_ns();
    if (ob & obs::kMetricsBit)
      tx.slot->txn_begin_ns.store(tx.obs_t0, std::memory_order_relaxed);
    if (ob & obs::kProfileBit)
      obs::site_counters(tx.slot_id, tx.site)
          .attempts.fetch_add(1, std::memory_order_relaxed);
    if (ob & obs::kTraceBit)
      trace::emit(trace::Event::Begin, AbortCause::None, tx.site,
                  static_cast<std::uint16_t>(tx.attempts));
  }
  if (tx.access == AccessMode::Stm) {
    tx.algo = cfg.stm_algo;
    stm_protocol_dispatch(tx.algo, [&](auto p) { decltype(p)::begin(tx); });
  } else {
    htm_begin(tx);
  }
  // After the engine begin so the abort rolls back a fully-formed attempt.
  maybe_inject(tx, fault::Hook::Begin);
}

void tx_commit_speculative(TxDesc& tx) {
  // Before publication: the injected abort must be able to roll back. This
  // generalizes the htm_spurious_abort_rate poll in htm_commit to every
  // engine and every injectable cause.
  maybe_inject(tx, fault::Hook::Commit);
  if (tx.access == AccessMode::Stm)
    stm_protocol_dispatch(tx.algo, [&](auto p) { decltype(p)::commit(tx); });
  else
    htm_commit(tx);
  epoch_exit(tx);
  if (tx.sl_held) {
    serial_lock().read_unlock(*tx.slot);
    tx.sl_held = false;
  }
  st(tx).bump(st(tx).commits);
  const std::uint32_t ob = obs::flags();
  if (ob) {
    const std::uint64_t dur = now_ns() - tx.obs_t0;
    if (ob & obs::kMetricsBit)
      tx.slot->txn_begin_ns.store(0, std::memory_order_relaxed);
    if (ob & obs::kProfileBit) {
      obs::SiteCounters& sc = obs::site_counters(tx.slot_id, tx.site);
      sc.commits.fetch_add(1, std::memory_order_relaxed);
      sc.attempt_ns.add(dur);
    }
    if (ob & obs::kTraceBit)
      trace::emit(trace::Event::Commit, AbortCause::None, tx.site,
                  static_cast<std::uint16_t>(tx.attempts), obs_rset(tx),
                  obs_wset(tx), dur);
  }
  if (tx.read_only) st(tx).bump(st(tx).commits_readonly);
  tx.depth = 0;
  tx.attempts = 0;
  tx.budget_used = 0;
  tx.txn_start_ns = 0;
  tx.last_abort = AbortCause::None;
}

void tx_post_commit(TxDesc& tx) {
  TxStats& s = st(tx);
  // --- deferred frees: limbo enqueue (Section IV-B, amortized) -----------
  // Freed blocks must outlive every transaction that could still read them
  // (zombie reads must land on live storage), and unlike the ordering
  // quiesce that grace must cover EVERY domain — a zombie in another
  // quiescence domain can still hold a reference. Instead of the old
  // synchronous all-domain quiesce per freeing commit, the batch parks in
  // limbo stamped with a grace ticket and drains below once a covering
  // period has elapsed. Enqueue happens BEFORE the ordering quiesce so
  // that quiesce — itself a full grace period when multi_domain is off —
  // certifies the batch and the common Always-policy commit still drains
  // its own frees immediately.
  if (!tx.frees.empty()) limbo_enqueue(tx);
  // --- quiescence decision (Section IV-B) -------------------------------
  bool need_q = false;
  if (tx.access == AccessMode::Stm) {
    switch (config().quiesce) {
      case QuiescePolicy::Always: need_q = true; break;
      case QuiescePolicy::WriterOnly: need_q = !tx.read_only; break;
      case QuiescePolicy::Never: need_q = false; break;
    }
    if (need_q && config().honor_noquiesce && tx.noquiesce_req) {
      if (tx.freed_memory) {
        // The allocator exception: memory headed back to the system must
        // outlive every concurrent transaction.
        s.bump(s.noquiesce_ignored_free);
      } else {
        need_q = false;
        s.bump(s.noquiesce_honored);
      }
    }
  }
  bool quiesced = false;
  if (need_q) {
    quiesce_wait(tx);
    quiesced = true;
  }
  // §IV-C auditor hooks: arm the privatization-hazard tracker on unquiesced
  // STM commits; clear it once this thread has genuinely quiesced.
  if (audit::enabled() && tx.access == AccessMode::Stm) {
    if (quiesced)
      audit::on_quiesced(tx);
    else
      audit::on_unquiesced_commit(tx);
  }
  // --- limbo drain --------------------------------------------------------
  // Release whatever a grace period already covers; force a synchronous
  // one only when the list outgrows the configured bound. Engines that
  // never quiesce for ordering (HTM, the Never policy) thus pay one grace
  // per limbo_max_pending frees instead of one per freeing commit.
  // The fault plan is consulted on EVERY post-commit (not just ones with a
  // non-empty limbo) so the injection event counter advances at a rate that
  // depends only on this thread's workload, never on grace timing.
  bool fault_flush = false;
  if (fault::active() && fault::should_force_flush()) {
    fault_flush = !tx.limbo.empty();
    if (fault_flush) s.bump(s.fault_forced_flush);
  }
  if (!tx.limbo.empty())
    limbo_drain(tx, /*force=*/fault_flush ||
                        tx.limbo_pending > config().limbo_max_pending);
  // --- deferred actions (Section VI-c logging, condvar ops) ---------------
  for (auto& fn : tx.deferred) {
    fn();
    s.bump(s.deferred_run);
  }
  tx.deferred.clear();
  tx.allocs.clear();  // committed allocations are now owned by the program
}

void tx_abort(TxDesc& tx, AbortCause cause) {
  if (tx.access == AccessMode::Stm)
    stm_protocol_dispatch(tx.algo,
                          [&](auto p) { decltype(p)::rollback(tx); });
  // HTM rollback is trivial: buffered writes are simply dropped.
  epoch_exit(tx);
  if (tx.sl_held) {
    serial_lock().read_unlock(*tx.slot);
    tx.sl_held = false;
  }
  st(tx).bump(st(tx).aborts[static_cast<int>(cause)]);
  const std::uint32_t ob = obs::flags();
  if (ob) {
    const std::uint64_t dur = now_ns() - tx.obs_t0;
    if (ob & obs::kMetricsBit)
      tx.slot->txn_begin_ns.store(0, std::memory_order_relaxed);
    if (ob & obs::kProfileBit) {
      obs::SiteCounters& sc = obs::site_counters(tx.slot_id, tx.site);
      sc.aborts[static_cast<int>(cause)].fetch_add(1,
                                                   std::memory_order_relaxed);
      sc.attempt_ns.add(dur);
    }
    if (ob & obs::kTraceBit)
      trace::emit(trace::Event::Abort, cause, tx.site,
                  static_cast<std::uint16_t>(tx.attempts), obs_rset(tx),
                  obs_wset(tx), dur);
  }
  for (void* p : tx.allocs) ::operator delete(p);
  tx.clear_logs();
  tx.depth = 0;
  tx.last_abort = cause;
  std::longjmp(tx.env, static_cast<int>(cause));
}

void tx_rollback_for_exception(TxDesc& tx) {
  if (tx.is_serial) return;  // serial sections are irrevocable; no rollback
  if (tx.access == AccessMode::Stm)
    stm_protocol_dispatch(tx.algo,
                          [&](auto p) { decltype(p)::rollback(tx); });
  epoch_exit(tx);
  if (tx.sl_held) {
    serial_lock().read_unlock(*tx.slot);
    tx.sl_held = false;
  }
  st(tx).bump(st(tx).aborts[static_cast<int>(AbortCause::UserExplicit)]);
  const std::uint32_t ob = obs::flags();
  if (ob) {
    const std::uint64_t dur = now_ns() - tx.obs_t0;
    if (ob & obs::kMetricsBit)
      tx.slot->txn_begin_ns.store(0, std::memory_order_relaxed);
    if (ob & obs::kProfileBit) {
      obs::SiteCounters& sc = obs::site_counters(tx.slot_id, tx.site);
      sc.aborts[static_cast<int>(AbortCause::UserExplicit)].fetch_add(
          1, std::memory_order_relaxed);
      sc.attempt_ns.add(dur);
    }
    if (ob & obs::kTraceBit)
      trace::emit(trace::Event::Abort, AbortCause::UserExplicit, tx.site,
                  static_cast<std::uint16_t>(tx.attempts), obs_rset(tx),
                  obs_wset(tx), dur);
  }
  for (void* p : tx.allocs) ::operator delete(p);
  tx.clear_logs();
  tx.depth = 0;
  tx.attempts = 0;
  tx.budget_used = 0;
  tx.txn_start_ns = 0;
}

// ---------------------------------------------------------------------------
// Serial (irrevocable) execution
// ---------------------------------------------------------------------------

void tx_serial_enter(TxDesc& tx) {
  tx.access = AccessMode::Direct;
  tx.is_serial = true;
  tx.depth = 1;
  tx.clear_logs();
  serial_lock().write_lock(*tx.slot);
  epoch_enter(tx);
  const std::uint32_t ob = obs::flags();
  if (ob) {
    tx.obs_t0 = now_ns();
    if (ob & obs::kMetricsBit)
      tx.slot->txn_begin_ns.store(tx.obs_t0, std::memory_order_relaxed);
    if (ob & obs::kTraceBit)
      trace::emit(trace::Event::SerialEnter, AbortCause::None, tx.site,
                  static_cast<std::uint16_t>(tx.attempts));
  }
}

void tx_serial_exit(TxDesc& tx) {
  // The write lock drains every SUBSCRIBING reader, but a lazy-subscription
  // simulated-HTM attempt (HtmSubscription::Lazy) holds no serial-lock
  // reader slot and looks at the lock only at commit: such a zombie can
  // still issue one value-validated load of anything this section frees.
  // Mode-aware routing: with HTM readers in flight, frees park in limbo
  // (their grace ticket waits the zombies out) instead of freeing now, and
  // the lock-based limbo self-certification below is forfeited.
  const bool htm_risk = htm_readers_possible();
  if (!tx.frees.empty()) {
    if (htm_risk) {
      st(tx).bump(st(tx).htm_routed_frees, tx.frees.size());
      if (obs::flags() & obs::kProfileBit)
        obs::site_counters(tx.slot_id, tx.site)
            .htm_routed_frees.fetch_add(tx.frees.size(),
                                        std::memory_order_relaxed);
      limbo_enqueue(tx);
    } else {
      // No concurrent readers can exist: frees are immediate.
      for (void* p : tx.frees) ::operator delete(p);
      st(tx).bump(st(tx).tm_frees, tx.frees.size());
      tx.frees.clear();
    }
  }
  if (!tx.limbo.empty()) {
    // The write lock drained every subscribing reader, so a full grace
    // period has trivially elapsed for anything this thread had in limbo:
    // certify and drain it while the storage is provably unreferenced —
    // unless an unsubscribed HTM zombie may still hold references, in
    // which case batches wait for their genuine grace tickets.
    if (!htm_risk) tx.limbo_certified = tx.limbo_seq;
    limbo_drain(tx, /*force=*/false);
  }
  epoch_exit(tx);
  serial_lock().write_unlock(*tx.slot);
  st(tx).bump(st(tx).serial_commits);
  const std::uint32_t ob = obs::flags();
  if (ob) {
    const std::uint64_t dur = now_ns() - tx.obs_t0;
    if (ob & obs::kMetricsBit)
      tx.slot->txn_begin_ns.store(0, std::memory_order_relaxed);
    if (ob & obs::kProfileBit) {
      obs::SiteCounters& sc = obs::site_counters(tx.slot_id, tx.site);
      sc.serial_commits.fetch_add(1, std::memory_order_relaxed);
      sc.attempt_ns.add(dur);
    }
    if (ob & obs::kTraceBit)
      trace::emit(trace::Event::SerialExit, AbortCause::None, tx.site,
                  static_cast<std::uint16_t>(tx.attempts), 0, 0, dur);
  }
  for (auto& fn : tx.deferred) {
    fn();
    st(tx).bump(st(tx).deferred_run);
  }
  tx.deferred.clear();
  tx.allocs.clear();
  tx.depth = 0;
  tx.is_serial = false;
  tx.attempts = 0;
  tx.budget_used = 0;
  tx.txn_start_ns = 0;
}

// ---------------------------------------------------------------------------
// Word accessors
// ---------------------------------------------------------------------------

std::uint64_t tx_read_word(TxDesc& tx, const std::atomic<std::uint64_t>& cell) {
  switch (tx.access) {
    case AccessMode::Direct:
      return cell.load(std::memory_order_relaxed);
    case AccessMode::Stm:
      maybe_inject(tx, fault::Hook::Read);
      return stm_protocol_dispatch(
          tx.algo, [&](auto p) { return decltype(p)::read(tx, cell); });
    case AccessMode::Htm:
      maybe_inject(tx, fault::Hook::Read);
      return htm_read(tx, cell);
  }
  __builtin_unreachable();
}

void tx_write_word(TxDesc& tx, std::atomic<std::uint64_t>& cell,
                   std::uint64_t value) {
  switch (tx.access) {
    case AccessMode::Direct:
      cell.store(value, std::memory_order_relaxed);
      return;
    case AccessMode::Stm:
      maybe_inject(tx, fault::Hook::Write);
      stm_protocol_dispatch(
          tx.algo, [&](auto p) { decltype(p)::write(tx, cell, value); });
      return;
    case AccessMode::Htm:
      maybe_inject(tx, fault::Hook::Write);
      htm_write(tx, cell, value);
      return;
  }
}

// ---------------------------------------------------------------------------

void tx_backoff(TxDesc& tx) {
  // Randomized exponential backoff, capped. The delay grows across
  // ATTEMPTS only: each iteration pauses at one constant level. (Passing
  // the loop index escalated every iteration past 3 into a sched_yield,
  // compounding the exponential and stalling late retries for
  // milliseconds.) Late attempts deliberately yield so the scheme still
  // degrades gracefully on oversubscribed cores.
  const unsigned cap = 1u << (tx.attempts < 10 ? tx.attempts : 10);
  const unsigned spins =
      static_cast<unsigned>(tx.backoff_rng.below(cap ? cap : 1));
  const unsigned level = tx.attempts > 6 ? 8 : 0;
  for (unsigned i = 0; i < spins; ++i) spin_pause(level);
}

void tm_fence() {
  // A quiescence fence from plain code: wait for every in-flight
  // transaction (in our domain view) to commit or abort.
  quiesce_wait(TxDesc::current());
}

TxDesc::~TxDesc() {
  // Thread exit with batches still in limbo: nobody will be left to drain
  // them lazily, so flush through a forced grace period now. Runs before
  // the thread's SlotLease destructor (current() constructs the descriptor
  // inside the lease's initializer), so slot and stats are still valid.
  // A moved-from descriptor has an empty limbo and skips this.
  if (!limbo.empty()) limbo_drain(*this, /*force=*/true);
}

TxDesc& TxDesc::current() noexcept {
  thread_local TxDesc desc = [] {
    TxDesc d;
    d.slot_id = my_slot_id();
    d.slot = &slot_table()[d.slot_id];
    d.stats = &d.slot->stats;
    d.backoff_rng.reseed(0x9E3779B9u ^ static_cast<unsigned>(d.slot_id));
    return d;
  }();
  // A reused slot (thread exit + new thread) must rebind.
  if (desc.slot_id != my_slot_id()) {
    desc.slot_id = my_slot_id();
    desc.slot = &slot_table()[desc.slot_id];
    desc.stats = &desc.slot->stats;
    // Reseed with a per-rebind salt: a fresh thread recycling a slot must
    // not replay the previous occupant's backoff sequence, which would
    // re-create exactly the lockstep contention backoff exists to break.
    static std::atomic<std::uint64_t> rebind_salt{0};
    const std::uint64_t salt = rebind_salt.fetch_add(
        0x9E3779B97F4A7C15ULL, std::memory_order_relaxed);
    desc.backoff_rng.reseed(salt ^ (0x9E3779B9u ^
                                    static_cast<unsigned>(desc.slot_id)));
  }
  return desc;
}

}  // namespace tle
