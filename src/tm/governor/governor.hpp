// The contention governor — the control plane between the retry loop
// (api.hpp) and the engine.
//
// Three cooperating mechanisms (docs/tm-internals.md, "Contention
// management & graceful degradation"):
//
//  1. Cause-aware retry policy. The flat "attempts >= limit -> serial" rule
//     treats a capacity overflow (retrying is futile), a held serial lock
//     (retrying against it is the lemming effect), and a data conflict
//     (backoff genuinely helps) identically. on_abort() instead maps each
//     AbortCause to a Disposition: Capacity/Unsafe go serial at once,
//     SerialPending waits for the serial window to drain WITHOUT consuming
//     retry budget, Conflict/Validation keep randomized exponential
//     backoff, Spurious retries immediately. Per-section TxnAttrs can
//     override the table.
//
//  2. Abort-storm throttle. Per-thread attempt/abort windows fold into a
//     global estimate (no shared writes on the hot path); past
//     storm_on_rate the gate engages and admits only storm_tokens
//     concurrent speculators, releasing at storm_off_rate (hysteresis).
//
//  3. Starvation watchdog. A logical transaction aborted
//     watchdog_max_attempts times, or older than watchdog_deadline_ns since
//     its first abort, escalates to serial regardless of cause — the
//     progress guarantee the dispositions alone cannot give (an endless
//     drain/retry cycle is otherwise budget-neutral).
//
// config().governor = false restores the cause-blind legacy policy; the
// lemming-effect benchmark (bench/abl_htm_retry.cpp) measures the gap.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "tm/txdesc.hpp"

namespace tle::gov {

/// What the governor does with an abort of a given cause.
enum class Disposition : std::uint8_t {
  Inherit = 0,  ///< TxnAttrs only: defer to the global policy table
  Backoff,      ///< randomized exponential backoff; consumes retry budget
  Immediate,    ///< re-attempt at once; consumes retry budget
  Drain,        ///< wait for the serial window to clear; budget-free
  Serial,       ///< go irrevocable immediately
};

const char* to_string(Disposition d) noexcept;

/// Verdict of on_abort(): try again speculatively, or give up and go serial.
enum class Decision : std::uint8_t { Retry, Serial };

/// The built-in policy table (before TxnAttrs overrides).
Disposition default_disposition(AbortCause cause) noexcept;

/// Full post-abort policy: resolve the disposition (attr override or
/// default), run its wait (backoff / drain), account budget, fold the abort
/// into the storm window, and apply the starvation watchdog. The caller owns
/// serial_fallbacks/htm_retries accounting for the returned decision.
Decision on_abort(TxDesc& tx);

namespace detail {
extern std::atomic<std::uint32_t> g_storm_active;
/// Slow path of admit(): wait at the engaged storm gate for a token.
bool admit_gated(TxDesc& tx);
/// Return a held admission token to the gate.
void release_token(TxDesc& tx) noexcept;
/// Fold this thread's window into the global estimate and run the
/// storm-state hysteresis evaluation.
void fold_window(TxDesc& tx) noexcept;
}  // namespace detail

/// True while the abort-storm gate is engaged.
inline bool storm_active() noexcept {
  return detail::g_storm_active.load(std::memory_order_relaxed) != 0;
}

/// Admission control before a speculative attempt. Returns false when the
/// watchdog decided the transaction starved at the gate and must run serial
/// instead. One relaxed load when no storm is active.
inline bool admit(TxDesc& tx) {
  if (tx.storm_token) return true;  // token persists across retries
  if (!storm_active()) return true;
  return detail::admit_gated(tx);
}

/// Release the storm token, if held. Safe to call on every exit path.
inline void release(TxDesc& tx) noexcept {
  if (tx.storm_token) detail::release_token(tx);
}

/// Account one finished speculative attempt in the storm window.
inline void note_attempt(TxDesc& tx, bool aborted) noexcept {
  ++tx.win_attempts;
  if (aborted) ++tx.win_aborts;
  const unsigned w = config().storm_window;
  if (tx.win_attempts >= (w ? w : 1u)) detail::fold_window(tx);
}

/// Commit-side hook: fold the successful attempt and return the token early
/// so the gate reopens as the storm subsides.
inline void on_commit(TxDesc& tx) noexcept {
  note_attempt(tx, false);
  release(tx);
}

/// Scope guard for run_transaction: guarantees a storm token is returned on
/// every exit (commit, serial escalation, or user exception).
class TokenGuard {
 public:
  explicit TokenGuard(TxDesc& tx) noexcept : tx_(tx) {}
  TokenGuard(const TokenGuard&) = delete;
  TokenGuard& operator=(const TokenGuard&) = delete;
  ~TokenGuard() { release(tx_); }

 private:
  TxDesc& tx_;
};

/// Current global abort-rate estimate (aborts/attempts over the folded
/// windows; 0 before any fold). Exposed for tests and the obs layer.
double abort_rate_estimate() noexcept;

/// Speculators currently holding a storm-gate admission token (0 whenever
/// the gate is disengaged). Live gauge for the metrics sampler.
unsigned storm_inflight() noexcept;

/// Reset the global storm state (estimate, gate, token count). Test-only:
/// not safe while transactions run. Per-thread windows reset with their
/// threads; tests that need exact window phase use fresh threads or a
/// storm_window larger than the workload.
void reset() noexcept;

/// Ranked per-site starvation report (watchdog escalations, gate waits,
/// drain waits) from the obs layer; empty string when profiling is off or
/// nothing starved. Implemented in obs/export.cpp.
std::string starvation_report();

}  // namespace tle::gov
