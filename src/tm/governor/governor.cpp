#include "tm/governor/governor.hpp"

#include <thread>

#include "tm/fault/fault.hpp"
#include "tm/obs/site.hpp"
#include "tm/serial_lock.hpp"
#include "tm/trace.hpp"
#include "util/align.hpp"
#include "util/timing.hpp"

namespace tle::gov {

namespace {

// Global abort-rate window. Threads fold their private counters in every
// storm_window attempts, so the hot path never writes shared state; the
// folding thread runs the hysteresis evaluation. The window slides by
// subtraction: once it holds 4 windows' worth of attempts, one thread
// retires the prefix it observed (its own snapshot, so the counters never
// underflow under concurrent folds).
struct alignas(kCacheLine) StormWindow {
  std::atomic<std::uint64_t> attempts{0};
  std::atomic<std::uint64_t> aborts{0};
  std::atomic<std::uint32_t> rotating{0};
};
StormWindow g_window;

/// Speculators currently admitted through an engaged gate.
alignas(kCacheLine) std::atomic<std::uint32_t> g_inflight{0};

bool watchdog_expired(const TxDesc& tx, const RuntimeConfig& cfg) noexcept {
  if (cfg.watchdog_max_attempts != 0 &&
      tx.attempts >= cfg.watchdog_max_attempts)
    return true;
  if (cfg.watchdog_deadline_ns != 0 && tx.txn_start_ns != 0 &&
      now_ns() - tx.txn_start_ns >= cfg.watchdog_deadline_ns)
    return true;
  return false;
}

Decision escalate(TxDesc& tx) {
  TxStats& s = *tx.stats;
  s.bump(s.gov_watchdog_escalations);
  const std::uint32_t ob = obs::flags();
  if (ob & obs::kProfileBit)
    obs::site_counters(tx.slot_id, tx.site)
        .watchdog_escalations.fetch_add(1, std::memory_order_relaxed);
  if (ob & obs::kTraceBit)
    trace::emit(trace::Event::WatchdogEscalate, tx.last_abort, tx.site,
                static_cast<std::uint16_t>(tx.attempts));
  return Decision::Serial;
}

}  // namespace

namespace detail {

std::atomic<std::uint32_t> g_storm_active{0};

void fold_window(TxDesc& tx) noexcept {
  const std::uint64_t a =
      g_window.attempts.fetch_add(tx.win_attempts,
                                  std::memory_order_relaxed) +
      tx.win_attempts;
  const std::uint64_t b =
      g_window.aborts.fetch_add(tx.win_aborts, std::memory_order_relaxed) +
      tx.win_aborts;
  tx.win_attempts = 0;
  tx.win_aborts = 0;

  const RuntimeConfig& cfg = config();
  const double rate = a ? static_cast<double>(b) / static_cast<double>(a) : 0;
  if (g_storm_active.load(std::memory_order_relaxed) == 0) {
    if (rate >= cfg.storm_on_rate &&
        g_storm_active.exchange(1, std::memory_order_acq_rel) == 0) {
      tx.stats->bump(tx.stats->gov_storm_enters);
      if (obs::flags() & obs::kTraceBit)
        trace::emit(trace::Event::StormEnter, AbortCause::None, tx.site);
    }
  } else if (rate <= cfg.storm_off_rate &&
             g_storm_active.exchange(0, std::memory_order_acq_rel) == 1) {
    tx.stats->bump(tx.stats->gov_storm_exits);
    if (obs::flags() & obs::kTraceBit)
      trace::emit(trace::Event::StormExit, AbortCause::None, tx.site);
  }

  // Slide: retire the prefix this thread observed so the estimate tracks
  // the recent past instead of the whole run.
  if (a >= 4ull * (cfg.storm_window ? cfg.storm_window : 1u)) {
    std::uint32_t f = 0;
    if (g_window.rotating.compare_exchange_strong(
            f, 1, std::memory_order_acq_rel)) {
      g_window.attempts.fetch_sub(a, std::memory_order_relaxed);
      g_window.aborts.fetch_sub(b, std::memory_order_relaxed);
      g_window.rotating.store(0, std::memory_order_release);
    }
  }
}

bool admit_gated(TxDesc& tx) {
  const RuntimeConfig& cfg = config();
  TxStats& s = *tx.stats;
  bool counted = false;
  unsigned spin = 0;
  while (g_storm_active.load(std::memory_order_acquire) != 0) {
    const std::uint32_t cap = cfg.storm_tokens ? cfg.storm_tokens : 1u;
    std::uint32_t c = g_inflight.load(std::memory_order_relaxed);
    if (c < cap &&
        g_inflight.compare_exchange_weak(c, c + 1,
                                         std::memory_order_acq_rel)) {
      tx.storm_token = true;
      return true;
    }
    if (!counted) {
      counted = true;
      s.bump(s.gov_storm_gated);
      if (obs::flags() & obs::kProfileBit)
        obs::site_counters(tx.slot_id, tx.site)
            .storm_gated.fetch_add(1, std::memory_order_relaxed);
      // The gate is a starvation hazard too: start the watchdog clock.
      if (tx.txn_start_ns == 0) tx.txn_start_ns = now_ns();
    }
    if (fault::active() && fault::perturb(fault::Hook::GovGate))
      s.bump(s.fault_delays);
    if (watchdog_expired(tx, cfg)) {
      escalate(tx);
      return false;
    }
    if (spin < cfg.park_spin_limit)
      spin_pause(spin++);
    else
      std::this_thread::yield();
  }
  return true;  // storm ended while we waited
}

void release_token(TxDesc& tx) noexcept {
  tx.storm_token = false;
  g_inflight.fetch_sub(1, std::memory_order_acq_rel);
}

}  // namespace detail

const char* to_string(Disposition d) noexcept {
  switch (d) {
    case Disposition::Inherit: return "inherit";
    case Disposition::Backoff: return "backoff";
    case Disposition::Immediate: return "immediate";
    case Disposition::Drain: return "drain";
    case Disposition::Serial: return "serial";
  }
  return "?";
}

Disposition default_disposition(AbortCause cause) noexcept {
  switch (cause) {
    case AbortCause::Capacity:       // a too-big footprint stays too big
    case AbortCause::Unsafe:         // the irrevocable op will recur
      return Disposition::Serial;
    case AbortCause::SerialPending:  // wait the serial window out instead of
    case AbortCause::StripeBusy:     // burning budget against it (lemmings);
      return Disposition::Drain;     // a stuck stripe writeback clears the
                                     // same way a serial window does
    case AbortCause::Spurious:       // environmental, uncorrelated: just go
      return Disposition::Immediate;
    case AbortCause::Conflict:
    case AbortCause::Validation:
    case AbortCause::UserExplicit:
    default:
      return Disposition::Backoff;
  }
}

Decision on_abort(TxDesc& tx) {
  const RuntimeConfig& cfg = config();
  TxStats& s = *tx.stats;
  note_attempt(tx, true);
  if (tx.txn_start_ns == 0) tx.txn_start_ns = now_ns();

  // The watchdog outranks every disposition: a starving transaction goes
  // serial no matter why its attempts keep dying.
  if (watchdog_expired(tx, cfg)) return escalate(tx);

  int limit = live_mode() == ExecMode::Htm ? cfg.htm_max_retries
                                        : cfg.stm_max_retries;
  // Retry-budget resolution: a per-section TxnAttrs override outranks the
  // adaptive controller's plan, which outranks the global per-mode limit.
  if (tx.attr_retries >= 0) limit = tx.attr_retries;
  else if (cfg.controller && tx.ctl_retries >= 0) limit = tx.ctl_retries;
  if (limit < 0) limit = 0;  // validate_config() rejects; stay safe anyway

  // Disposition resolution follows the same order: user attrs, then the
  // controller's per-site plan (ctl::apply stamped it at section entry),
  // then the cause defaults.
  Disposition d =
      static_cast<Disposition>(tx.attr_disp[static_cast<int>(tx.last_abort)]);
  if (d == Disposition::Inherit && cfg.controller)
    d = static_cast<Disposition>(tx.ctl_disp[static_cast<int>(tx.last_abort)]);
  if (d == Disposition::Inherit) d = default_disposition(tx.last_abort);

  switch (d) {
    case Disposition::Serial:
      s.bump(s.gov_serial_immediate);
      return Decision::Serial;

    case Disposition::Drain: {
      s.bump(s.gov_drain_waits);
      if (obs::flags() & obs::kProfileBit)
        obs::site_counters(tx.slot_id, tx.site)
            .drain_waits.fetch_add(1, std::memory_order_relaxed);
      if (fault::active() && fault::perturb(fault::Hook::GovDrain))
        s.bump(s.fault_delays);
      if (tx.last_abort == AbortCause::StripeBusy) {
        // A stripe held odd past the bounded spin means its committer was
        // preempted mid-writeback; there is no drain condition to wait on —
        // it finishes as soon as that thread runs again. Budget-free pause
        // and retry; the watchdog bounds the pathological case.
        tx_backoff(tx);
        if (watchdog_expired(tx, cfg)) return escalate(tx);
        return Decision::Retry;
      }
      std::uint64_t waited = 0;
      const bool drained =
          serial_lock().wait_drained(cfg.serial_drain_timeout_ns, &waited);
      if (cfg.watchdog_stall_ns != 0 && waited >= cfg.watchdog_stall_ns) {
        s.bump(s.gov_stall_events);
        if (obs::flags() & obs::kTraceBit)
          trace::emit(trace::Event::WatchdogEscalate, AbortCause::SerialPending,
                      tx.site, static_cast<std::uint16_t>(tx.attempts), 0, 0,
                      waited);
      }
      if (watchdog_expired(tx, cfg)) return escalate(tx);
      if (drained) return Decision::Retry;  // budget-free re-attempt
      // Still busy past the timeout: charge the abort like any other so a
      // pathological writer stream cannot hide below the watchdog horizon.
      s.bump(s.gov_drain_timeouts);
      ++tx.budget_used;
      return tx.budget_used >= static_cast<unsigned>(limit)
                 ? Decision::Serial
                 : Decision::Retry;
    }

    case Disposition::Immediate:
      ++tx.budget_used;
      if (tx.budget_used >= static_cast<unsigned>(limit))
        return Decision::Serial;
      s.bump(s.gov_immediate_retries);
      return Decision::Retry;

    case Disposition::Backoff:
    case Disposition::Inherit:  // unreachable; treated as Backoff
    default:
      ++tx.budget_used;
      if (tx.budget_used >= static_cast<unsigned>(limit))
        return Decision::Serial;
      s.bump(s.gov_backoffs);
      tx_backoff(tx);
      return Decision::Retry;
  }
}

unsigned storm_inflight() noexcept {
  return g_inflight.load(std::memory_order_relaxed);
}

double abort_rate_estimate() noexcept {
  const std::uint64_t a = g_window.attempts.load(std::memory_order_relaxed);
  const std::uint64_t b = g_window.aborts.load(std::memory_order_relaxed);
  return a ? static_cast<double>(b) / static_cast<double>(a) : 0.0;
}

void reset() noexcept {
  g_window.attempts.store(0, std::memory_order_relaxed);
  g_window.aborts.store(0, std::memory_order_relaxed);
  g_window.rotating.store(0, std::memory_order_relaxed);
  g_inflight.store(0, std::memory_order_relaxed);
  detail::g_storm_active.store(0, std::memory_order_relaxed);
}

}  // namespace tle::gov
