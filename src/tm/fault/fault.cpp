// Deterministic fault injection & schedule perturbation — implementation.
//
// Determinism contract: a decision at (hook, per-thread event n, rule r) is
// splitmix64(seed ^ mix(stream) ^ mix(hook) ^ mix(n) ^ mix(r)) < prob. The
// per-thread event counter advances exactly once per consultation of a hook
// whether or not any rule fires, so two runs with the same seed and the same
// per-thread workloads consult identical (stream, hook, n) triples and fire
// identical events. Nothing here reads the wall clock.
#include "tm/fault/fault.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "tm/registry.hpp"
#include "util/env.hpp"
#include "util/rng.hpp"

namespace tle::fault {

namespace detail {
std::atomic<std::uint32_t> g_active{0};
}  // namespace detail

namespace {

constexpr int kCauseCount = static_cast<int>(AbortCause::kCount);

struct ActivePlan {
  std::uint64_t seed = 0;
  std::vector<Rule> by_hook[kHookCount];
};

// Written only by install()/clear() (between phases), read by armed decision
// points — same publication discipline as RuntimeConfig.
ActivePlan g_plan;

// Bumped by install() so thread-local streams lazily reset their counters.
std::atomic<std::uint64_t> g_plan_epoch{0};

struct GlobalCounts {
  std::atomic<std::uint64_t> injected[kHookCount][kCauseCount] = {};
  std::atomic<std::uint64_t> delays[kHookCount] = {};
  std::atomic<std::uint64_t> forced_serial{0};
  std::atomic<std::uint64_t> forced_flush{0};
};
GlobalCounts g_counts;

/// Per-thread deterministic stream: an id (pinned or slot-derived) plus one
/// event counter per hook, reset whenever a new plan is installed.
struct ThreadStream {
  std::uint64_t epoch = ~0ULL;
  std::uint32_t id = 0;
  bool pinned = false;
  std::uint64_t n[kHookCount] = {};
};

ThreadStream& stream() noexcept {
  thread_local ThreadStream ts;
  const std::uint64_t epoch = g_plan_epoch.load(std::memory_order_acquire);
  if (ts.epoch != epoch) {
    ts.epoch = epoch;
    std::memset(ts.n, 0, sizeof(ts.n));
    if (!ts.pinned) ts.id = static_cast<std::uint32_t>(my_slot_id());
  }
  return ts;
}

bool fire(double prob, std::uint32_t strm, Hook h, std::uint64_t n,
          std::size_t rule) noexcept {
  if (prob <= 0.0) return false;
  if (prob >= 1.0) return true;
  std::uint64_t x = g_plan.seed;
  x ^= (static_cast<std::uint64_t>(strm) + 1) * 0x9E3779B97F4A7C15ULL;
  x ^= (static_cast<std::uint64_t>(h) + 1) * 0xC2B2AE3D27D4EB4FULL;
  x ^= (n + 1) * 0x165667B19E3779F9ULL;
  x ^= (static_cast<std::uint64_t>(rule) + 1) * 0x27D4EB2F165667C5ULL;
  const std::uint64_t r = splitmix64(x);
  return static_cast<double>(r >> 11) * 0x1.0p-53 < prob;
}

/// One consultation of `h`: advance the event counter, return the first
/// firing rule of `kind` (rules draw independently, salted by index).
const Rule* consult(Hook h, ActionKind kind) noexcept {
  ThreadStream& ts = stream();
  const int hi = static_cast<int>(h);
  const std::uint64_t n = ts.n[hi]++;
  const auto& rules = g_plan.by_hook[hi];
  for (std::size_t i = 0; i < rules.size(); ++i) {
    const Rule& r = rules[i];
    if (r.kind != kind) continue;
    if (fire(r.prob, ts.id, h, n, i)) return &r;
  }
  return nullptr;
}

struct NameMap {
  const char* name;
  int value;
};

constexpr NameMap kHookNames[] = {
    {"begin", static_cast<int>(Hook::Begin)},
    {"read", static_cast<int>(Hook::Read)},
    {"write", static_cast<int>(Hook::Write)},
    {"commit", static_cast<int>(Hook::Commit)},
    {"post", static_cast<int>(Hook::PostCommit)},
    {"sl_read_backout", static_cast<int>(Hook::SlReadBackout)},
    {"sl_write_drain", static_cast<int>(Hook::SlWriteDrain)},
    {"sl_write_unlock", static_cast<int>(Hook::SlWriteUnlock)},
    {"epoch_exit", static_cast<int>(Hook::EpochExit)},
    {"epoch_scan", static_cast<int>(Hook::EpochScan)},
    {"grace_wait", static_cast<int>(Hook::GraceWait)},
    {"cv_enqueue", static_cast<int>(Hook::CvEnqueue)},
    {"cv_timeout", static_cast<int>(Hook::CvTimeout)},
    {"gov_drain", static_cast<int>(Hook::GovDrain)},
    {"gov_gate", static_cast<int>(Hook::GovGate)},
    {"tt_commit", static_cast<int>(Hook::TtCommit)},
    {"htm_zombie", static_cast<int>(Hook::HtmZombieLoad)},
    {"ctl_tick", static_cast<int>(Hook::CtlTick)},
};
static_assert(sizeof(kHookNames) / sizeof(kHookNames[0]) == kHookCount);

/// Causes a plan may inject. Unsafe/UserExplicit are organic-only: they
/// carry semantics (irrevocability, user restart) injection can't fake.
constexpr NameMap kCauseNames[] = {
    {"spurious", static_cast<int>(AbortCause::Spurious)},
    {"conflict", static_cast<int>(AbortCause::Conflict)},
    {"validation", static_cast<int>(AbortCause::Validation)},
    {"capacity", static_cast<int>(AbortCause::Capacity)},
    {"serial-pending", static_cast<int>(AbortCause::SerialPending)},
    {"stripe-busy", static_cast<int>(AbortCause::StripeBusy)},
};

int lookup(const NameMap* map, std::size_t count, const char* s,
           std::size_t len) noexcept {
  for (std::size_t i = 0; i < count; ++i) {
    if (std::strlen(map[i].name) == len &&
        std::memcmp(map[i].name, s, len) == 0)
      return map[i].value;
  }
  return -1;
}

/// Parse one "action@hook=prob[/delay_ns]" token into `out`.
bool parse_rule(const char* tok, std::size_t len, Rule& out) noexcept {
  const char* at = static_cast<const char*>(std::memchr(tok, '@', len));
  const char* eq = static_cast<const char*>(std::memchr(tok, '=', len));
  if (!at || !eq || eq < at) return false;

  const std::size_t action_len = static_cast<std::size_t>(at - tok);
  const char* hook_s = at + 1;
  const std::size_t hook_len = static_cast<std::size_t>(eq - hook_s);
  const int hook =
      lookup(kHookNames, kHookCount, hook_s, hook_len);
  if (hook < 0) return false;
  out.hook = static_cast<Hook>(hook);

  auto is = [&](const char* name) {
    return std::strlen(name) == action_len &&
           std::memcmp(name, tok, action_len) == 0;
  };
  if (is("serial")) {
    out.kind = ActionKind::ForceSerial;
    if (out.hook != Hook::Begin) return false;
  } else if (is("flush")) {
    out.kind = ActionKind::ForceFlush;
    if (out.hook != Hook::PostCommit) return false;
  } else if (is("yield") || is("delay")) {
    out.kind = ActionKind::Delay;
    out.delay_ns = is("delay") ? 1000000 : 0;  // overridable below
  } else {
    const int cause = lookup(
        kCauseNames, sizeof(kCauseNames) / sizeof(kCauseNames[0]), tok,
        action_len);
    if (cause < 0) return false;
    out.kind = ActionKind::Abort;
    out.cause = static_cast<AbortCause>(cause);
    // Abort rules only make sense at speculative decision points: the
    // begin/read/write/commit quartet plus tictoc's in-commit window.
    if (static_cast<int>(out.hook) > static_cast<int>(Hook::Commit) &&
        out.hook != Hook::TtCommit)
      return false;
  }

  const char* num = eq + 1;
  const char* end = tok + len;
  char* stop = nullptr;
  out.prob = std::strtod(num, &stop);
  if (stop == num || out.prob < 0.0 || out.prob > 1.0) return false;
  if (stop < end && *stop == '/') {
    const char* delay_s = stop + 1;
    out.delay_ns = std::strtoull(delay_s, &stop, 10);
    if (stop == delay_s || out.kind != ActionKind::Delay) return false;
  }
  return stop == end;
}

}  // namespace

const char* to_string(Hook h) noexcept {
  const int i = static_cast<int>(h);
  return (i >= 0 && i < kHookCount) ? kHookNames[i].name : "?";
}

void install(const Plan& plan) {
  detail::g_active.store(0, std::memory_order_seq_cst);
  for (auto& v : g_plan.by_hook) v.clear();
  g_plan.seed = plan.seed;
  for (const Rule& r : plan.rules)
    g_plan.by_hook[static_cast<int>(r.hook)].push_back(r);
  reset_counts();
  g_plan_epoch.fetch_add(1, std::memory_order_acq_rel);
  detail::g_active.store(1, std::memory_order_seq_cst);
}

void clear() {
  detail::g_active.store(0, std::memory_order_seq_cst);
  for (auto& v : g_plan.by_hook) v.clear();
}

bool install_spec(const char* spec, std::uint64_t seed) {
  if (!spec) return false;
  Plan plan;
  plan.seed = seed;
  const char* p = spec;
  while (*p) {
    const char* comma = std::strchr(p, ',');
    const std::size_t len =
        comma ? static_cast<std::size_t>(comma - p) : std::strlen(p);
    if (len > 0) {
      Rule r;
      if (!parse_rule(p, len, r)) return false;
      plan.rules.push_back(r);
    }
    p += len + (comma ? 1 : 0);
  }
  if (plan.rules.empty()) return false;
  install(plan);
  return true;
}

const char* default_spec() noexcept {
  return "spurious@commit=0.02,conflict@read=0.01,validation@commit=0.01,"
         "capacity@write=0.005,serial-pending@begin=0.005,serial@begin=0.002,"
         "flush@post=0.01,yield@sl_read_backout=0.1,yield@sl_write_drain=0.1,"
         "yield@sl_write_unlock=0.1,yield@epoch_exit=0.02,"
         "yield@epoch_scan=0.05,yield@grace_wait=0.05,yield@cv_enqueue=0.05,"
         "yield@cv_timeout=0.05,yield@gov_drain=0.05,yield@gov_gate=0.05";
}

AbortCause should_abort(Hook h) noexcept {
  const Rule* r = consult(h, ActionKind::Abort);
  if (!r) return AbortCause::None;
  g_counts.injected[static_cast<int>(h)][static_cast<int>(r->cause)]
      .fetch_add(1, std::memory_order_relaxed);
  return r->cause;
}

bool should_force_serial() noexcept {
  if (!consult(Hook::Begin, ActionKind::ForceSerial)) return false;
  g_counts.forced_serial.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool should_force_flush() noexcept {
  if (!consult(Hook::PostCommit, ActionKind::ForceFlush)) return false;
  g_counts.forced_flush.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool perturb(Hook h) noexcept {
  const Rule* r = consult(h, ActionKind::Delay);
  if (!r) return false;
  g_counts.delays[static_cast<int>(h)].fetch_add(1,
                                                 std::memory_order_relaxed);
  if (r->delay_ns == 0)
    std::this_thread::yield();
  else
    std::this_thread::sleep_for(std::chrono::nanoseconds(r->delay_ns));
  return true;
}

void set_thread_stream(std::uint32_t strm) noexcept {
  ThreadStream& ts = stream();
  ts.pinned = true;
  ts.id = strm;
  std::memset(ts.n, 0, sizeof(ts.n));
}

Counts snapshot() noexcept {
  Counts c;
  for (int h = 0; h < kHookCount; ++h) {
    for (int a = 0; a < kCauseCount; ++a)
      c.injected[h][a] =
          g_counts.injected[h][a].load(std::memory_order_relaxed);
    c.delays[h] = g_counts.delays[h].load(std::memory_order_relaxed);
  }
  c.forced_serial = g_counts.forced_serial.load(std::memory_order_relaxed);
  c.forced_flush = g_counts.forced_flush.load(std::memory_order_relaxed);
  return c;
}

void reset_counts() noexcept {
  for (int h = 0; h < kHookCount; ++h) {
    for (int a = 0; a < kCauseCount; ++a)
      g_counts.injected[h][a].store(0, std::memory_order_relaxed);
    g_counts.delays[h].store(0, std::memory_order_relaxed);
  }
  g_counts.forced_serial.store(0, std::memory_order_relaxed);
  g_counts.forced_flush.store(0, std::memory_order_relaxed);
}

std::string report() {
  const Counts c = snapshot();
  std::string out;
  char line[160];
  std::snprintf(line, sizeof(line),
                "fault injection: %llu aborts, %llu delays, %llu forced "
                "serial, %llu forced flushes\n",
                static_cast<unsigned long long>(c.injected_total()),
                static_cast<unsigned long long>(c.delays_total()),
                static_cast<unsigned long long>(c.forced_serial),
                static_cast<unsigned long long>(c.forced_flush));
  out += line;
  for (int h = 0; h < kHookCount; ++h) {
    for (int a = 0; a < kCauseCount; ++a) {
      if (c.injected[h][a] == 0) continue;
      std::snprintf(line, sizeof(line), "  %s <- %s: %llu\n",
                    to_string(static_cast<Hook>(h)),
                    to_string(static_cast<AbortCause>(a)),
                    static_cast<unsigned long long>(c.injected[h][a]));
      out += line;
    }
    if (c.delays[h] != 0) {
      std::snprintf(line, sizeof(line), "  %s delays: %llu\n",
                    to_string(static_cast<Hook>(h)),
                    static_cast<unsigned long long>(c.delays[h]));
      out += line;
    }
  }
  return out;
}

void init_from_env() noexcept {
  const char* seed_s = std::getenv("TLE_FAULT_SEED");
  if (!seed_s || !*seed_s) return;
  char* end = nullptr;
  const std::uint64_t seed = std::strtoull(seed_s, &end, 0);
  if (!end || *end != '\0') {
    std::fprintf(stderr, "tle: ignoring malformed TLE_FAULT_SEED=%s\n",
                 seed_s);
    return;
  }
  const char* spec = std::getenv("TLE_FAULT_PLAN");
  if (!spec || !*spec) spec = default_spec();
  if (!install_spec(spec, seed))
    std::fprintf(stderr, "tle: ignoring malformed TLE_FAULT_PLAN=%s\n", spec);
}

namespace {
/// Arms the env-driven chaos plan before main() in any binary that links
/// the TM core — the same zero-friction activation as TLE_STATS_DUMP.
struct EnvInit {
  EnvInit() { init_from_env(); }
};
EnvInit g_env_init;
}  // namespace

}  // namespace tle::fault
