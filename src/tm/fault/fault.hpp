// Deterministic fault injection & schedule perturbation for the TLE runtime.
//
// The paper's central findings are about *failure paths*: spurious HTM
// aborts forcing serial fallback, serialization storms, quiescence stalls.
// Stress loops hit those windows probabilistically; this subsystem makes
// them drivable on demand and reproducibly:
//
//   * Injection — a seeded plan can force any speculative AbortCause at the
//     begin/read/write/commit decision points (generalizing the single
//     htm_spurious_abort_rate poll), force serial-mode entry, and force
//     synchronous limbo flushes.
//   * Perturbation — injectable yield/sleep delays inside the seq_cst
//     Dekker handshake windows: the serial lock's read back-out and writer
//     drain/unlock, epoch exit/scan parking, grace-period piggyback waits,
//     and tx_condvar's commit->enqueue->sleep and timeout->withdraw races.
//   * Reproducibility — every decision is a pure function of
//     (seed, stream, hook, per-thread event counter, rule index); nothing
//     reads the wall clock or a global RNG, so the same seed over the same
//     per-thread workloads yields an identical injected-event sequence.
//
// Cost model: when no plan is installed the runtime pays one relaxed load
// of the activation word per decision point (same discipline as
// obs::flags()). Plans are installed between phases, never while
// transactions run — the same contract as RuntimeConfig mutation.
//
// Env activation (mirrors TLE_STATS_DUMP): TLE_FAULT_SEED=<u64> arms the
// default chaos plan; TLE_FAULT_PLAN overrides it with a spec string (see
// install_spec). Injected events are counted globally here (snapshot()),
// per thread in TxStats (faults_injected / fault_delays / ...), and
// per-site via the obs layer (an injected abort is attributed to its site
// and cause exactly like an organic one).
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "tm/config.hpp"

namespace tle::fault {

/// Engine decision points (injection) and handshake windows (perturbation).
enum class Hook : std::uint8_t {
  Begin,          ///< speculative begin (abort) / attempt start (force-serial)
  Read,           ///< speculative read, any engine
  Write,          ///< speculative write, any engine
  Commit,         ///< speculative commit, before publication
  PostCommit,     ///< post-commit duties (forced limbo flush)
  SlReadBackout,  ///< serial lock: reader saw a pending writer, pre-back-out
  SlWriteDrain,   ///< serial lock: writer parked on a straggling reader
  SlWriteUnlock,  ///< serial lock: between writer release and pending drop
  EpochExit,      ///< quiescence: before the epoch-exit seq bump
  EpochScan,      ///< quiescence: scanner about to park on a straggler
  GraceWait,      ///< shared grace period: piggybacker about to park
  CvEnqueue,      ///< tx_condvar: committed wait, before enqueue+sleep
  CvTimeout,      ///< tx_condvar: timed out, before the withdraw attempt
  GovDrain,       ///< governor: before a serial-pending drain wait
  GovGate,        ///< governor: each pass of a storm-gate admission wait
  TtCommit,       ///< tictoc commit: inside the lock->validate->publish window
  HtmZombieLoad,  ///< simulated-HTM read: post-peer-commit, pre-revalidation
  CtlTick,        ///< adaptive-controller evaluation pass (perturbation
                  ///< only: delay/yield shift the controller relative to
                  ///< the workers; abort kinds do not apply off-txn)
  kCount,
};
inline constexpr int kHookCount = static_cast<int>(Hook::kCount);

const char* to_string(Hook h) noexcept;

enum class ActionKind : std::uint8_t {
  Abort,        ///< fire tx_abort(cause) at a speculative decision point
  ForceSerial,  ///< run the next logical transaction irrevocably (Begin)
  ForceFlush,   ///< force a synchronous limbo drain (PostCommit)
  Delay,        ///< schedule perturbation: yield (delay_ns=0) or sleep
};

/// One probabilistic rule of a plan. Rules at the same hook draw
/// independently (salted by rule index) from the same event counter.
struct Rule {
  Hook hook = Hook::Begin;
  ActionKind kind = ActionKind::Abort;
  AbortCause cause = AbortCause::Spurious;  ///< Abort rules only
  double prob = 0.0;                        ///< per-event firing probability
  std::uint64_t delay_ns = 0;  ///< Delay rules: 0 = yield, else sleep
};

struct Plan {
  std::uint64_t seed = 0;
  std::vector<Rule> rules;
};

/// Install `plan` and arm the decision points. Resets the per-thread event
/// counters and the global injected-event counts. Not thread-safe against
/// running transactions (install between phases, like RuntimeConfig).
void install(const Plan& plan);

/// Disarm: decision points return to the single relaxed-load fast path.
void clear();

/// Parse and install a comma-separated spec, e.g.
///   "spurious@commit=0.02,conflict@read=0.01,serial@begin=0.005,
///    flush@post=0.01,yield@cv_enqueue=0.1,delay@sl_read_backout=1/2000000"
/// Grammar per token: <action>@<hook>=<prob>[/<delay_ns>] where <action> is
/// an injectable AbortCause name (spurious|conflict|validation|capacity|
/// serial-pending), "serial" (force serial), "flush" (force limbo flush),
/// "yield" or "delay" (perturbation). Returns false (and installs nothing)
/// on a malformed spec.
bool install_spec(const char* spec, std::uint64_t seed);

/// The plan TLE_FAULT_SEED arms when TLE_FAULT_PLAN is absent: low-rate
/// injection at every decision point plus yields in every handshake window.
const char* default_spec() noexcept;

namespace detail {
extern std::atomic<std::uint32_t> g_active;
}

/// The one relaxed load every decision point pays when no plan is armed.
inline bool active() noexcept {
  return detail::g_active.load(std::memory_order_relaxed) != 0;
}

// ---------------------------------------------------------------------------
// Decision points. All deterministic in (seed, stream, hook, event counter);
// callers gate on active() so the disarmed cost stays one relaxed load.
// ---------------------------------------------------------------------------

/// Abort cause to inject at this point, or AbortCause::None.
AbortCause should_abort(Hook h) noexcept;

/// True if the next logical transaction must run serial (Hook::Begin rules).
bool should_force_serial() noexcept;

/// True if this post-commit must force a synchronous limbo flush.
bool should_force_flush() noexcept;

/// Execute a perturbation delay if the plan says so; true if one ran.
bool perturb(Hook h) noexcept;

/// Pin this thread's deterministic stream id. By default a thread draws
/// from stream = its registry slot id; tests whose threads run distinct
/// workloads pin explicit streams so slot-claim order cannot change the
/// sequence. Takes effect from the next decision on.
void set_thread_stream(std::uint32_t stream) noexcept;

// ---------------------------------------------------------------------------
// Injected-event accounting (global; TxStats carries the per-thread rows)
// ---------------------------------------------------------------------------

struct Counts {
  std::uint64_t injected[kHookCount][static_cast<int>(AbortCause::kCount)] =
      {};
  std::uint64_t delays[kHookCount] = {};
  std::uint64_t forced_serial = 0;
  std::uint64_t forced_flush = 0;

  std::uint64_t injected_total() const noexcept {
    std::uint64_t t = 0;
    for (const auto& row : injected)
      for (std::uint64_t v : row) t += v;
    return t;
  }
  std::uint64_t delays_total() const noexcept {
    std::uint64_t t = 0;
    for (std::uint64_t v : delays) t += v;
    return t;
  }
  bool operator==(const Counts&) const = default;
};

Counts snapshot() noexcept;
void reset_counts() noexcept;

/// Human-readable per-hook/per-cause summary of everything injected so far.
std::string report();

/// TLE_FAULT_SEED / TLE_FAULT_PLAN activation; runs once (static init in
/// fault.cpp, so any binary linking the TM core honours the env vars).
void init_from_env() noexcept;

}  // namespace tle::fault
