// Umbrella header for the TLE/TM runtime.
#pragma once

#include "tm/api.hpp"         // IWYU pragma: export
#include "tm/config.hpp"      // IWYU pragma: export
#include "tm/obs/export.hpp"  // IWYU pragma: export
#include "tm/obs/site.hpp"    // IWYU pragma: export
#include "tm/stats.hpp"       // IWYU pragma: export
#include "tm/trace.hpp"       // IWYU pragma: export
#include "tm/txdesc.hpp"      // IWYU pragma: export
