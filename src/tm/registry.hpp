// Global thread registry: one cache-line-padded slot per participating
// thread. The slot carries the three pieces of shared per-thread state the
// runtime needs:
//
//   * the quiescence epoch sequence number (odd = inside a transaction),
//   * the serial ("irrevocability") lock's distributed reader flag,
//   * the statistics counters.
//
// Slots are claimed on a thread's first transactional operation and returned
// when the thread exits, so thread pools and short-lived workers both work.
#pragma once

#include <atomic>
#include <cstdint>

#include "tm/stats.hpp"
#include "util/align.hpp"

namespace tle {

inline constexpr int kMaxThreads = 64;

struct alignas(kCacheLine) ThreadSlot {
  /// Quiescence epoch. Incremented to odd when a transaction begins and to
  /// even when it ends (commit or fully-undone abort). A committing peer
  /// quiesces by waiting for every odd slot to move.
  std::atomic<std::uint64_t> seq{0};

  /// Quiescence domain of the in-flight transaction (ablation A3 only;
  /// always 0 in the paper's erased-lock configuration).
  std::atomic<std::uint32_t> domain{0};

  /// Distributed read-side flag of the serial lock.
  std::atomic<std::uint8_t> sl_reader{0};

  /// Slot ownership (0 free, 1 claimed).
  std::atomic<std::uint8_t> claimed{0};

  /// Count of threads parked (atomic::wait) on one of this slot's words —
  /// `seq` (quiescence stragglers) or `sl_reader` (a draining serial
  /// writer). The exit paths check it so the uncontended case stays a bare
  /// RMW/store with no notify syscall. Shared between the two words: a
  /// spurious notify on the other word costs one wasted syscall on an
  /// already-slow path, while a second counter would widen the slot.
  std::atomic<std::uint32_t> parked{0};

  /// Begin stamp (now_ns) of the in-flight transaction, for the metrics
  /// sampler's oldest-transaction gauge. Valid only while `seq` is odd;
  /// written by the owner on begin/serial-enter and zeroed on exit, and only
  /// while obs::kMetricsBit is set — the dark path never touches it.
  std::atomic<std::uint64_t> txn_begin_ns{0};

  /// Sampler-visible mirror of the owner's TxDesc::limbo_pending (deferred
  /// frees awaiting a grace period). Updated on the limbo enqueue/drain
  /// paths, which are never hot.
  std::atomic<std::uint64_t> limbo_pending{0};

  /// 1 while the in-flight transaction (seq odd) runs in simulated-HTM
  /// mode. Stored relaxed on every epoch enter, program-ordered before the
  /// seq_cst `seq` bump, so any scanner that observes the odd seq also
  /// observes this flag. Consulted by htm_readers_possible(): simulated-HTM
  /// readers validate lazily and can touch freed memory one load after a
  /// privatizing commit, so frees racing them must route through limbo.
  std::atomic<std::uint8_t> htm_active{0};

  TxStats stats;
};

/// The global slot table.
ThreadSlot* slot_table() noexcept;

/// Index of the calling thread's slot, claiming one on first use.
/// Aborts the process if more than kMaxThreads threads participate.
int my_slot_id() noexcept;

/// The calling thread's slot.
ThreadSlot& my_slot() noexcept;

/// Highest slot index ever claimed + 1 (bounds registry scans).
int slot_high_water() noexcept;

/// Shared grace-period state (RCU-style, paper Section IV). A grace pass is
/// one all-domain scan of the registry in snapshot-then-recheck form; pass
/// N completing certifies every quiescence request ticketed <= N, so
/// concurrent committers share one scanner instead of each burning an
/// O(threads) scan. Invariants: started >= completed; started - completed
/// <= 1 (at most one pass in flight, guarded by `scanner`); both are
/// monotone.
struct alignas(kCacheLine) GraceState {
  /// Grace passes begun. A requester's ticket is started+1: any pass with
  /// that number snapshots the registry after the request, hence observes
  /// (and waits out) every transaction the requester could race with.
  std::atomic<std::uint64_t> started{0};

  /// Grace passes finished. Waiters park on this word.
  std::atomic<std::uint64_t> completed{0};

  /// 1 while a pass is scanning (mutual exclusion for the scanner role).
  std::atomic<std::uint32_t> scanner{0};

  /// Threads parked on `completed` — checked before notify_all.
  std::atomic<std::uint32_t> parked{0};

  /// Duration of the most recent grace scan pass and the cumulative scan
  /// time, in nanoseconds. Stamped by the scanner in grace_sync only while
  /// obs::kMetricsBit is set (metrics-sampler gauges; 0 until a metered
  /// pass runs).
  std::atomic<std::uint64_t> last_scan_ns{0};
  std::atomic<std::uint64_t> scan_ns_total{0};
};

GraceState& grace_state() noexcept;

}  // namespace tle
