// Global thread registry: one cache-line-padded slot per participating
// thread. The slot carries the three pieces of shared per-thread state the
// runtime needs:
//
//   * the quiescence epoch sequence number (odd = inside a transaction),
//   * the serial ("irrevocability") lock's distributed reader flag,
//   * the statistics counters.
//
// Slots are claimed on a thread's first transactional operation and returned
// when the thread exits, so thread pools and short-lived workers both work.
#pragma once

#include <atomic>
#include <cstdint>

#include "tm/stats.hpp"
#include "util/align.hpp"

namespace tle {

inline constexpr int kMaxThreads = 64;

struct alignas(kCacheLine) ThreadSlot {
  /// Quiescence epoch. Incremented to odd when a transaction begins and to
  /// even when it ends (commit or fully-undone abort). A committing peer
  /// quiesces by waiting for every odd slot to move.
  std::atomic<std::uint64_t> seq{0};

  /// Quiescence domain of the in-flight transaction (ablation A3 only;
  /// always 0 in the paper's erased-lock configuration).
  std::atomic<std::uint32_t> domain{0};

  /// Distributed read-side flag of the serial lock.
  std::atomic<std::uint8_t> sl_reader{0};

  /// Slot ownership (0 free, 1 claimed).
  std::atomic<std::uint8_t> claimed{0};

  TxStats stats;
};

/// The global slot table.
ThreadSlot* slot_table() noexcept;

/// Index of the calling thread's slot, claiming one on first use.
/// Aborts the process if more than kMaxThreads threads participate.
int my_slot_id() noexcept;

/// The calling thread's slot.
ThreadSlot& my_slot() noexcept;

/// Highest slot index ever claimed + 1 (bounds registry scans).
int slot_high_water() noexcept;

}  // namespace tle
