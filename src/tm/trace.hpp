// Lightweight TM event tracing.
//
// When enabled, the engine emits begin/commit/abort/serial/quiesce events
// into fixed-size per-thread rings (relaxed stores by the owner, no shared
// contention). snapshot() merges the rings into one time-ordered record of
// recent TM activity — the first tool to reach for when a TLE workload
// misbehaves (who serialized? what aborted? how often did quiescence run?).
// Zero overhead when disabled (one relaxed flag load per event site).
#pragma once

#include <cstdint>
#include <vector>

#include "tm/config.hpp"

namespace tle::trace {

enum class Event : std::uint8_t {
  Begin,        ///< speculative attempt started
  Commit,       ///< speculative commit
  Abort,        ///< speculative abort (cause recorded)
  SerialEnter,  ///< irrevocable execution began
  SerialExit,   ///< irrevocable execution finished
  Quiesce,      ///< post-commit quiescence performed
};

const char* to_string(Event e) noexcept;

struct Record {
  std::uint64_t ts_ns;  ///< steady-clock timestamp
  std::uint32_t slot;   ///< thread slot id
  Event event;
  AbortCause cause;  ///< meaningful for Abort
};

/// Global on/off switch (off by default).
void enable(bool on) noexcept;
bool enabled() noexcept;

/// Engine hook: record an event for the calling thread.
void emit(Event e, AbortCause cause = AbortCause::None) noexcept;

/// Merge every thread's ring into one timestamp-sorted vector. Each ring
/// holds the most recent kRingSize events; older ones are overwritten.
std::vector<Record> snapshot();

/// Drop all recorded events.
void reset() noexcept;

inline constexpr std::size_t kRingSize = 4096;

}  // namespace tle::trace
