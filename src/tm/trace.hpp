// Lightweight TM event tracing — the flight recorder.
//
// When enabled, the engine emits begin/commit/abort/serial/quiesce events
// into fixed-size per-thread rings (owner-only stores, no shared
// contention). Each record carries the transaction's TxSite id, retry
// number, read/write-set sizes, and interval duration, so the exporter
// (tm/obs/export.hpp) can turn a snapshot into a Chrome-trace/Perfetto
// timeline with one track per thread slot.
//
// Records are guarded by a per-cell sequence lock: emit() never blocks and
// snapshot() is safe (and TSan-clean) while writers are live — a reader
// that races an overwrite simply discards that cell. reset() retires the
// currently visible records by advancing a per-ring floor watermark instead
// of rewinding the write cursor, so it too is safe against concurrent
// emitters. Zero overhead when disabled (one relaxed flag load per event
// site, shared with the per-site profiler).
#pragma once

#include <cstdint>
#include <vector>

#include "tm/config.hpp"

namespace tle::trace {

enum class Event : std::uint8_t {
  Begin,        ///< speculative attempt started
  Commit,       ///< speculative commit
  Abort,        ///< speculative abort (cause recorded)
  SerialEnter,  ///< irrevocable execution began
  SerialExit,   ///< irrevocable execution finished
  Quiesce,      ///< post-commit quiescence performed
  StormEnter,   ///< governor: abort-storm gate engaged
  StormExit,    ///< governor: abort-storm gate released
  WatchdogEscalate,  ///< governor: starvation escalation or detected stall
                     ///< (dur_ns carries the stall length for stalls)
  StripeRevalidate,  ///< HTM: a subscribed commit stripe moved and was
                     ///< value-revalidated (rset carries the stripe index)
  LazySubscribe,     ///< HTM: commit-time fallback-lock check (lazy mode)
  CtlPlanChange,     ///< controller: a site's plan changed (cause recorded;
                     ///< retry carries the new action, rset the dominant mix)
  CtlDegradedEnter,  ///< controller: global degraded mode tripped
  CtlDegradedExit,   ///< controller: full recovery (probe shift reached 0)
  CtlProbe,          ///< controller: probe widened (retry carries the shift)
  CtlModeSwitch,     ///< controller: drained global exec-mode switch
                     ///< (retry carries the new ExecMode)
};

const char* to_string(Event e) noexcept;

struct Record {
  std::uint64_t ts_ns;   ///< steady-clock timestamp (end of the interval)
  std::uint64_t dur_ns;  ///< interval length; 0 for Begin/SerialEnter
  std::uint32_t rset;    ///< read-set size at the event (Commit/Abort)
  std::uint32_t wset;    ///< write-set size at the event (Commit/Abort)
  std::uint16_t slot;    ///< thread slot id
  std::uint16_t site;    ///< obs::TxSite id (0 = unnamed section)
  std::uint16_t retry;   ///< attempt number within the logical txn (0-based)
  Event event;
  AbortCause cause;  ///< meaningful for Abort
};

/// Global on/off switch (off by default).
void enable(bool on) noexcept;
bool enabled() noexcept;

/// Engine hook: record an event for the calling thread.
void emit(Event e, AbortCause cause = AbortCause::None, std::uint16_t site = 0,
          std::uint16_t retry = 0, std::uint32_t rset = 0,
          std::uint32_t wset = 0, std::uint64_t dur_ns = 0) noexcept;

/// Merge every thread's ring into one timestamp-sorted vector. Each ring
/// holds the most recent kRingSize events; older ones are overwritten.
/// Cells being overwritten during the copy are skipped, not torn.
std::vector<Record> snapshot();

/// Drop all currently recorded events (concurrent emitters keep going).
void reset() noexcept;

inline constexpr std::size_t kRingSize = 4096;

}  // namespace tle::trace
