// Public TLE/TM API — the library-level analog of the C++ TM Technical
// Specification constructs the paper uses:
//
//   tle::atomic_do(body)         ~ atomic blocks
//   tle::synchronized_do(body)   ~ synchronized blocks (irrevocable)
//   tle::critical(mutex, body)   ~ a lock-based critical section, elided or
//                                  not according to the global ExecMode
//   TxContext::no_quiesce()      ~ the paper's proposed TM_NoQuiesce
//   TxContext::defer(fn)         ~ deferred actions (Section VI-c logging)
//   tle::tm_pure(fn)             ~ the transaction_pure escape (Section VI-e)
//
// Speculative bodies must route shared accesses through tm_var<T> and the
// TxContext, allocate with TxContext::alloc/create, and confine other side
// effects to deferred actions — the same contract the TMTS enforces
// statically with transaction_safe. Plain code (locals, private buffers) is
// uninstrumented, exactly like compiler-based TM treats thread-local data.
#pragma once

#include <cstring>
#include <exception>
#include <mutex>
#include <new>
#include <type_traits>
#include <utility>

#include "tm/audit.hpp"
#include "tm/config.hpp"
#include "tm/fault/fault.hpp"
#include "tm/governor/governor.hpp"
#include "tm/obs/site.hpp"
#include "tm/txdesc.hpp"

namespace tle::ctl {
// Adaptive-controller transaction-path consult (control/control.hpp); forward
// declared so the hot-path header does not pull the metrics machinery in.
void apply(TxDesc& tx) noexcept;
}  // namespace tle::ctl

namespace tle {

// ---------------------------------------------------------------------------
// tm_var
// ---------------------------------------------------------------------------

/// A transactional variable holding a word-sized trivially-copyable T
/// (integers, enums, pointers, small structs up to 8 bytes).
template <typename T>
class tm_var {
  static_assert(std::is_trivially_copyable_v<T> && sizeof(T) <= 8,
                "tm_var requires a trivially copyable type of at most 8 bytes");

 public:
  tm_var() noexcept { cell_.store(encode(T{}), std::memory_order_relaxed); }
  explicit tm_var(T v) noexcept {
    cell_.store(encode(v), std::memory_order_relaxed);
  }

  tm_var(const tm_var&) = delete;
  tm_var& operator=(const tm_var&) = delete;

  /// Non-transactional read — ONLY legal when the caller owns the data
  /// (initialization, or after privatization + quiescence). Checked by the
  /// §IV-C auditor when tle::audit::enable(true) is set.
  T unsafe_get() const noexcept {
    if (audit::enabled()) audit::on_unsafe_access(this);
    return decode(cell_.load(std::memory_order_relaxed));
  }

  /// Non-transactional write — same ownership requirement as unsafe_get.
  void unsafe_set(T v) noexcept {
    if (audit::enabled()) audit::on_unsafe_access(this);
    cell_.store(encode(v), std::memory_order_relaxed);
  }

  std::atomic<std::uint64_t>& raw() const noexcept { return cell_; }

  static std::uint64_t encode(T v) noexcept {
    std::uint64_t raw = 0;
    std::memcpy(&raw, &v, sizeof(T));
    return raw;
  }
  static T decode(std::uint64_t raw) noexcept {
    T v;
    std::memcpy(&v, &raw, sizeof(T));
    return v;
  }

 private:
  mutable std::atomic<std::uint64_t> cell_;
};

/// Commit-sequence stripe covering `v` under the current htm_seq_stripes
/// setting. For tests and benchmarks that need to construct footprints with
/// known stripe intersection (or deliberate aliasing) without re-deriving
/// the address hash.
template <typename T>
unsigned stripe_of(const tm_var<T>& v) noexcept {
  return htm_stripe_index(&v.raw());
}

// ---------------------------------------------------------------------------
// TxContext
// ---------------------------------------------------------------------------

/// Handle passed to every transactional body; all shared-memory access and
/// TM services go through it.
class TxContext {
 public:
  explicit TxContext(TxDesc* tx) noexcept : tx_(tx) {}

  template <typename T>
  T read(const tm_var<T>& v) const {
    return tm_var<T>::decode(tx_read_word(*tx_, v.raw()));
  }

  template <typename T>
  void write(tm_var<T>& v, T value) const {
    tx_write_word(*tx_, v.raw(), tm_var<T>::encode(value));
  }

  /// Read-modify-write sugar: v += delta, returning the PREVIOUS value.
  template <typename T>
  T fetch_add(tm_var<T>& v, T delta) const {
    const T old = read(v);
    write(v, static_cast<T>(old + delta));
    return old;
  }

  /// Raw word access for multi-word containers (tm_obj).
  std::uint64_t read_raw(const std::atomic<std::uint64_t>& cell) const {
    return tx_read_word(*tx_, cell);
  }
  void write_raw(std::atomic<std::uint64_t>& cell, std::uint64_t v) const {
    tx_write_word(*tx_, cell, v);
  }

  /// The paper's TM_NoQuiesce: request that this transaction skip its
  /// post-commit quiescence. Ignored (with accounting) when nested, when the
  /// transaction frees memory, or when the runtime policy says so (§IV-B).
  void no_quiesce() const noexcept {
    TxStats& s = *tx_->stats;
    s.bump(s.noquiesce_requests);
    if (tx_->depth > 1) {
      s.bump(s.noquiesce_ignored_nested);
      return;
    }
    // Simulated-HTM attempts never quiesce anyway, but a skip assertion
    // made here must not license anything downstream (an immediate free, a
    // skipped audit arm) while lazily-validating HTM peers are in flight:
    // the paper's "HTM needs no quiescence" identity is a property of
    // eager coherence aborts that our simulation does not have. Ignore
    // with accounting instead of silently honoring.
    if (tx_->access == AccessMode::Htm && htm_readers_possible()) {
      s.bump(s.noquiesce_ignored_htm);
      return;
    }
    tx_->noquiesce_req = true;
  }

  /// Register a deferred action: runs after commit (after the critical
  /// section in Lock mode), dropped on abort. This is how irrevocable
  /// effects (logging, condvar signals, I/O) are expressed (§VI-c).
  template <typename F>
  void defer(F&& fn) const {
    tx_->deferred.emplace_back(std::forward<F>(fn));
  }

  /// Transactional allocation: released automatically if the transaction
  /// aborts.
  void* alloc(std::size_t n) const {
    void* p = ::operator new(n);
    if (!tx_->is_serial && tx_->access != AccessMode::Direct)
      tx_->allocs.push_back(p);
    tx_->stats->bump(tx_->stats->tm_allocs);
    return p;
  }

  /// Transactional free: deferred until commit, and the commit quiesces
  /// before the memory returns to the allocator (§IV-B's allocator rule).
  void free(void* p) const {
    if (!p) return;
    if (tx_->access == AccessMode::Direct) {
      ::operator delete(p);
      tx_->stats->bump(tx_->stats->tm_frees);
      return;
    }
    tx_->frees.push_back(p);
    tx_->freed_memory = true;
  }

  /// Typed helpers over alloc/free for trivially-destructible node types.
  template <typename T, typename... Args>
  T* create(Args&&... args) const {
    static_assert(std::is_trivially_destructible_v<T>,
                  "transactional nodes must be trivially destructible");
    return ::new (alloc(sizeof(T))) T(std::forward<Args>(args)...);
  }

  template <typename T>
  void destroy(T* p) const {
    static_assert(std::is_trivially_destructible_v<T>);
    free(const_cast<std::remove_const_t<T>*>(p));
  }

  /// Abort the transaction and re-execute it from the top. Used by
  /// speculative retry loops (e.g. the StmSpin waiting idiom).
  [[noreturn]] void restart() const { tx_abort(*tx_, AbortCause::UserExplicit); }

  bool is_irrevocable() const noexcept {
    return tx_->access == AccessMode::Direct;
  }
  bool in_htm() const noexcept { return tx_->access == AccessMode::Htm; }
  bool in_stm() const noexcept { return tx_->access == AccessMode::Stm; }

  TxDesc& desc() const noexcept { return *tx_; }

 private:
  TxDesc* tx_;
};

/// The §VI-e transaction_pure escape: `fn` contains only instrumentable-free
/// computation (vector math, table lookups on private data). In a library TM
/// uninstrumented code is already pure; the wrapper documents intent and is
/// a single call in release builds.
template <typename F>
decltype(auto) tm_pure(F&& fn) {
  return std::forward<F>(fn)();
}

// ---------------------------------------------------------------------------
// Execution wrappers
// ---------------------------------------------------------------------------

/// Per-section tuning attributes — the paper's closing §VII-A suggestion
/// ("it would be beneficial for programmers to be able to suggest retry
/// policies on a transaction-by-transaction basis"). Default values inherit
/// the global RuntimeConfig / governor policy table.
struct TxnAttrs {
  /// Failed budget-consuming attempts tolerated before serial fallback.
  /// -1 inherits the global limit; 0 means "one attempt, then serial"
  /// (matching htm_max_retries = 0 — see config.hpp). Negative values other
  /// than -1 are invalid.
  int max_retries = -1;
  bool prefer_serial = false;  ///< skip speculation entirely (known-hostile
                               ///< sections, e.g. huge footprints)
  /// Per-cause governor disposition overrides; Disposition::Inherit (the
  /// default) keeps the global policy table. Index with on_abort() below.
  gov::Disposition on_abort_disp[static_cast<int>(AbortCause::kCount)] = {};

  /// Builder-style override: `TxnAttrs{}.with(AbortCause::Capacity,
  /// gov::Disposition::Backoff)` restores retrying for a cause.
  TxnAttrs& with(AbortCause cause, gov::Disposition d) noexcept {
    on_abort_disp[static_cast<int>(cause)] = d;
    return *this;
  }
};

namespace detail {

/// Speculation gave up (budget, policy, or watchdog): account the fallback.
inline void note_serial_fallback(TxDesc& tx) noexcept {
  tx.stats->bump(tx.stats->serial_fallbacks);
  if (obs::profiling_enabled())
    obs::site_counters(tx.slot_id, tx.site)
        .serial_fallbacks.fetch_add(1, std::memory_order_relaxed);
}

/// Run `body` irrevocably under the serial token.
template <typename F>
void run_serial(TxDesc& tx, F&& body) {
  tx_serial_enter(tx);
  try {
    TxContext ctx(&tx);
    body(ctx);
  } catch (...) {
    tx_serial_exit(tx);
    throw;
  }
  tx_serial_exit(tx);
}

/// The speculative retry loop shared by atomic_do and elided critical().
/// `site` is the obs::TxSite id of this top-level section (0 = unnamed);
/// nested sections inherit the enclosing transaction's site.
template <typename F>
void run_transaction(F&& body, std::uint16_t site = 0) {
  TxDesc& tx = TxDesc::current();
  if (tx.in_txn()) {  // flat nesting: subsume into the enclosing transaction
    ++tx.depth;
    TxContext ctx(&tx);
    try {
      body(ctx);
    } catch (...) {
      --tx.depth;
      throw;
    }
    --tx.depth;
    return;
  }

  tx.site = site;
  tx.attempts = 0;
  tx.budget_used = 0;
  tx.txn_start_ns = 0;
  tx.force_serial = tx.attr_prefer_serial;
  // Fault-injection point: force this logical transaction straight into the
  // irrevocable path, exercising serial entry/exit and everything that
  // contends with it. Counted separately from serial_fallbacks, which keeps
  // meaning "speculation gave up".
  if (fault::active() && fault::should_force_serial()) {
    tx.force_serial = true;
    tx.stats->bump(tx.stats->fault_forced_serial);
  }
  const RuntimeConfig& cfg = config();
  if (live_mode() == ExecMode::Lock) {
    // atomic_do without a mutex in Lock mode: fall back to serial execution
    // (the TMTS "synchronized" semantics).
    run_serial(tx, body);
    return;
  }
  // Adaptive-controller plan consult: one relaxed plan-table read per
  // logical transaction. May force serial (degraded mode, serial-planned
  // sites outside their probe fraction), boost the retry budget, or stamp
  // per-cause dispositions that resolve below any TxnAttrs the caller set.
  if (cfg.controller) ctl::apply(tx);

  // Storm tokens outlive individual attempts (a retrying transaction keeps
  // its admission); the guard returns a held token on every exit — commit,
  // serial escalation, or a user exception unwinding through us.
  gov::TokenGuard gov_guard(tx);
  for (;;) {
    if (tx.force_serial) {
      run_serial(tx, body);
      return;
    }
    if (cfg.governor && !gov::admit(tx)) {
      // Starved at the storm gate: the watchdog escalated us to serial.
      note_serial_fallback(tx);
      tx.force_serial = true;
      continue;
    }
    // NOTE: locals of this frame mutated after setjmp live in TxDesc, never
    // in the frame, so no volatile is needed.
    if (setjmp(tx.env) == 0) {
      tx_begin_speculative(tx);
      TxContext ctx(&tx);
      try {
        body(ctx);
      } catch (...) {
        // Cancel-and-throw: roll back, then let the exception continue.
        tx_rollback_for_exception(tx);
        throw;
      }
      tx_commit_speculative(tx);
      if (cfg.governor) gov::on_commit(tx);
      tx_post_commit(tx);
      return;
    }
    // Aborted (longjmp): the descriptor is already rolled back and clean.
    ++tx.attempts;
    bool serial;
    if (cfg.governor) {
      serial = gov::on_abort(tx) == gov::Decision::Serial;
    } else {
      // Cause-blind legacy policy, kept as the ablation baseline the
      // lemming-effect benchmark measures against.
      int limit = live_mode() == ExecMode::Htm ? cfg.htm_max_retries
                                               : cfg.stm_max_retries;
      if (tx.attr_retries >= 0) limit = tx.attr_retries;  // -1 = inherit
      if (limit < 0) limit = 0;  // validate_config() rejects negatives
      serial = tx.last_abort == AbortCause::Unsafe ||
               tx.attempts >= static_cast<unsigned>(limit);
      if (!serial) tx_backoff(tx);
    }
    if (serial) {
      tx.force_serial = true;
      note_serial_fallback(tx);
    } else if (live_mode() == ExecMode::Htm) {
      // An HTM "retry" is an abort followed by another hardware attempt;
      // the abort that sends us serial is a fallback, not a retry.
      tx.stats->bump(tx.stats->htm_retries);
      if (obs::profiling_enabled())
        obs::site_counters(tx.slot_id, tx.site)
            .htm_retries.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

/// run_transaction with scoped per-transaction attributes.
template <typename F>
void run_transaction_with_attrs(const TxnAttrs& attrs, F&& body,
                                std::uint16_t site = 0);

}  // namespace detail

/// Execute `body(TxContext&)` atomically (the TMTS atomic block).
template <typename F>
void atomic_do(F&& body) {
  detail::run_transaction(std::forward<F>(body));
}

/// atomic_do() with a named profiling site (see TLE_TX_SITE).
template <typename F>
void atomic_do(const obs::TxSite& site, F&& body) {
  detail::run_transaction(std::forward<F>(body), site.id);
}

/// Execute `body(TxContext&)` irrevocably (the TMTS synchronized block with
/// unsafe content: serializes all transactions, runs alone).
template <typename F>
void synchronized_do(F&& body) {
  TxDesc& tx = TxDesc::current();
  if (tx.in_txn()) {
    // A synchronized block nested in a transaction must make the whole
    // enclosing transaction irrevocable; we restart it in serial mode.
    if (!tx.is_serial && !tx.in_lock_section) tx_abort(tx, AbortCause::Unsafe);
    ++tx.depth;
    TxContext ctx(&tx);
    try {
      body(ctx);
    } catch (...) {
      --tx.depth;
      throw;
    }
    --tx.depth;
    return;
  }
  tx.site = 0;
  detail::run_serial(tx, std::forward<F>(body));
}

/// synchronized_do() with a named profiling site.
template <typename F>
void synchronized_do(const obs::TxSite& site, F&& body) {
  TxDesc& tx = TxDesc::current();
  if (tx.in_txn()) {
    synchronized_do(std::forward<F>(body));
    return;
  }
  tx.site = site.id;
  detail::run_serial(tx, std::forward<F>(body));
}

/// Issue a full memory quiescence fence from non-transactional code: waits
/// for every in-flight transaction to finish. Useful in tests and when
/// hand-publishing data.
void tm_fence();

// ---------------------------------------------------------------------------
// Privatization-safe reclamation (mode-aware routing)
// ---------------------------------------------------------------------------
// On real silicon a privatizing commit coherence-aborts every speculative
// reader instantly, so the privatizer's subsequent `delete` is safe without
// quiescence. Our simulated HTM validates lazily: a zombie reader may issue
// one more value-validated load of the detached block before it notices the
// commit sequence moved. These wrappers are the privatizer-side `delete`
// replacement: free immediately when no simulated-HTM reader can be in
// flight (htm_readers_possible() — see txdesc.hpp), otherwise park the
// block in the limbo machinery until a grace period waits the zombies out.
// Accounted by priv_immediate_frees / priv_limbo_routed.

/// Typed post-privatization delete. The destructor runs immediately — a
/// zombie only ever re-loads tm_var cell values, never container internals
/// — while the raw storage takes the mode-aware routed path.
template <typename T>
void tm_private_delete(T* p) {
  if (!p) return;
  if constexpr (!std::is_trivially_destructible_v<T>) p->~T();
  tm_private_free(const_cast<void*>(static_cast<const void*>(p)));
}

/// Macro spelling for call sites that style engine services in the paper's
/// TM_* naming (mirrors TM_NoQuiesce). Expands to tm_private_delete.
#define TM_PRIVATE_FREE(ptr) ::tle::tm_private_delete(ptr)

// ---------------------------------------------------------------------------
// Lock elision
// ---------------------------------------------------------------------------

/// A mutex whose critical sections can be elided. In Lock mode it is a real
/// mutex; in STM/HTM modes it is erased and sections run as transactions
/// (Section IV-A's "lock erasure"). `domain` participates in ablation A3.
class elidable_mutex {
 public:
  elidable_mutex() noexcept = default;
  explicit elidable_mutex(std::uint32_t domain) noexcept : domain_(domain) {}

  std::mutex& native() noexcept { return m_; }
  std::uint32_t domain() const noexcept { return domain_; }

 private:
  std::mutex m_;
  std::uint32_t domain_ = 0;
};

namespace detail {

template <typename F>
void run_lock_section(elidable_mutex& m, F&& body, std::uint16_t site = 0) {
  TxDesc& tx = TxDesc::current();
  const bool outermost = !tx.in_lock_section;
  if (outermost) tx.site = site;
  // Each section runs the deferred actions *it* registered right after its
  // own unlock. Nested sections (x265's Listing-3 producer holds the queue
  // lock across inner sections) therefore signal/wait while outer locks are
  // still held — exactly the original pthread behaviour.
  const std::size_t mark = tx.deferred.size();
  {
    std::lock_guard<std::mutex> g(m.native());
    if (outermost) {
      tx.in_lock_section = true;
      tx.access = AccessMode::Direct;
    }
    ++tx.depth;
    TxContext ctx(&tx);
    try {
      body(ctx);
    } catch (...) {
      --tx.depth;
      if (outermost) {
        tx.in_lock_section = false;
        tx.deferred.clear();
      }
      throw;
    }
    --tx.depth;
    if (outermost) tx.in_lock_section = false;
  }
  TxStats& s = *tx.stats;
  s.bump(s.lock_sections);
  if (obs::profiling_enabled())
    obs::site_counters(tx.slot_id, tx.site)
        .lock_sections.fetch_add(1, std::memory_order_relaxed);
  while (tx.deferred.size() > mark) {
    // Run in FIFO order among this section's actions.
    std::size_t i = mark;
    auto fn = std::move(tx.deferred[i]);
    tx.deferred.erase(tx.deferred.begin() + static_cast<std::ptrdiff_t>(i));
    fn();
    s.bump(s.deferred_run);
  }
}

}  // namespace detail

/// THE TLE entry point: run `body` as the critical section guarded by `m`.
/// ExecMode::Lock acquires `m`; every other mode elides it.
template <typename F>
void critical(elidable_mutex& m, F&& body) {
  if (live_mode() == ExecMode::Lock) {
    detail::run_lock_section(m, std::forward<F>(body));
    return;
  }
  TxDesc& tx = TxDesc::current();
  if (!tx.in_txn() && config().multi_domain) tx.domain = m.domain();
  detail::run_transaction(std::forward<F>(body));
}

/// critical() with a named profiling site: attempts/commits/aborts-by-cause
/// land in this site's row of the per-site profile (and Lock-mode runs in
/// its lock_sections column). Example:
///   tle::critical(m, TLE_TX_SITE("videnc/claim_row"), [&](auto& tx) ...);
template <typename F>
void critical(elidable_mutex& m, const obs::TxSite& site, F&& body) {
  if (live_mode() == ExecMode::Lock) {
    detail::run_lock_section(m, std::forward<F>(body), site.id);
    return;
  }
  TxDesc& tx = TxDesc::current();
  if (!tx.in_txn() && config().multi_domain) tx.domain = m.domain();
  detail::run_transaction(std::forward<F>(body), site.id);
}

/// critical() with per-section retry tuning.
template <typename F>
void critical(elidable_mutex& m, const TxnAttrs& attrs, F&& body) {
  if (live_mode() == ExecMode::Lock) {
    detail::run_lock_section(m, std::forward<F>(body));
    return;
  }
  TxDesc& tx = TxDesc::current();
  if (!tx.in_txn() && config().multi_domain) tx.domain = m.domain();
  detail::run_transaction_with_attrs(attrs, std::forward<F>(body));
}

/// critical() with both a named profiling site and retry tuning.
template <typename F>
void critical(elidable_mutex& m, const obs::TxSite& site, const TxnAttrs& attrs,
              F&& body) {
  if (live_mode() == ExecMode::Lock) {
    detail::run_lock_section(m, std::forward<F>(body), site.id);
    return;
  }
  TxDesc& tx = TxDesc::current();
  if (!tx.in_txn() && config().multi_domain) tx.domain = m.domain();
  detail::run_transaction_with_attrs(attrs, std::forward<F>(body), site.id);
}

/// atomic_do() with per-transaction retry tuning.
template <typename F>
void atomic_do(const TxnAttrs& attrs, F&& body) {
  detail::run_transaction_with_attrs(attrs, std::forward<F>(body));
}

/// atomic_do() with a named profiling site and retry tuning.
template <typename F>
void atomic_do(const obs::TxSite& site, const TxnAttrs& attrs, F&& body) {
  detail::run_transaction_with_attrs(attrs, std::forward<F>(body), site.id);
}

namespace detail {

template <typename F>
void run_transaction_with_attrs(const TxnAttrs& attrs, F&& body,
                                std::uint16_t site) {
  TxDesc& tx = TxDesc::current();
  if (tx.in_txn()) {  // nested: attributes of the outermost section rule
    run_transaction(std::forward<F>(body), site);
    return;
  }
  tx.attr_retries = attrs.max_retries;
  tx.attr_prefer_serial = attrs.prefer_serial;
  for (int c = 0; c < static_cast<int>(AbortCause::kCount); ++c)
    tx.attr_disp[c] = static_cast<std::uint8_t>(attrs.on_abort_disp[c]);
  auto clear_attrs = [&tx]() noexcept {
    tx.attr_retries = -1;
    tx.attr_prefer_serial = false;
    for (int c = 0; c < static_cast<int>(AbortCause::kCount); ++c)
      tx.attr_disp[c] = 0;
  };
  try {
    run_transaction(std::forward<F>(body), site);
  } catch (...) {
    clear_attrs();
    throw;
  }
  clear_attrs();
}

}  // namespace detail

}  // namespace tle
