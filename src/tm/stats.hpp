// Per-thread transaction statistics.
//
// These counters are the evidence stream for the reproduction: Figure 4 and
// the in-text Section VII-A numbers (transaction counts, abort percentages,
// HTM serial-fallback rates) are regenerated from them.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "tm/config.hpp"

namespace tle {

/// Counters owned by one thread; incremented with relaxed atomics so an
/// aggregator may read them concurrently without UB.
struct TxStats {
  using Counter = std::atomic<std::uint64_t>;

  Counter txn_starts{0};        ///< speculative attempts begun
  Counter commits{0};           ///< speculative commits
  Counter commits_readonly{0};  ///< subset of commits with empty write set
  Counter aborts[static_cast<int>(AbortCause::kCount)] = {};
  Counter serial_fallbacks{0};  ///< attempts that gave up and went serial
  Counter serial_commits{0};    ///< irrevocable/serial executions completed
  Counter lock_sections{0};     ///< critical sections run under the real lock

  Counter quiesce_calls{0};  ///< post-commit quiescence operations performed
  Counter quiesce_waits{0};  ///< quiescence calls that actually blocked
  Counter quiesce_spins{0};  ///< spin iterations spent waiting in quiescence
  Counter quiesce_wait_ns{0};  ///< nanoseconds spent blocked in quiescence

  Counter grace_scans{0};   ///< grace passes this thread scanned itself
  Counter grace_shared{0};  ///< quiesces satisfied by another thread's scan
  Counter parked_waits{0};  ///< futex parks after the bounded quiesce spin
  Counter limbo_enqueued{0};      ///< free batches deferred to the limbo list
  Counter limbo_drained{0};       ///< limbo batches released after a grace
  Counter limbo_forced_flush{0};  ///< drains forced by the limbo size bound

  Counter noquiesce_requests{0};        ///< TM_NoQuiesce() invocations
  Counter noquiesce_honored{0};         ///< commits that skipped quiescence
  Counter noquiesce_ignored_nested{0};  ///< calls ignored: nested txn (§IV-B)
  Counter noquiesce_ignored_free{0};    ///< skips denied: txn freed memory

  Counter tm_allocs{0};
  Counter tm_frees{0};
  Counter deferred_run{0};    ///< deferred actions executed post-commit
  Counter condvar_waits{0};
  Counter condvar_timeouts{0};
  Counter htm_retries{0};     ///< HTM re-attempts after an abort

  Counter stm_read_dedup{0};  ///< ml_wt repeat reads absorbed by the filter
  Counter htm_read_dedup{0};  ///< HTM repeat reads served from the value log
  Counter htm_rw_hits{0};     ///< HTM reads served from the write buffer

  void reset() noexcept {
    auto zero = [](Counter& c) { c.store(0, std::memory_order_relaxed); };
    zero(txn_starts);
    zero(commits);
    zero(commits_readonly);
    for (auto& a : aborts) zero(a);
    zero(serial_fallbacks);
    zero(serial_commits);
    zero(lock_sections);
    zero(quiesce_calls);
    zero(quiesce_waits);
    zero(quiesce_spins);
    zero(quiesce_wait_ns);
    zero(grace_scans);
    zero(grace_shared);
    zero(parked_waits);
    zero(limbo_enqueued);
    zero(limbo_drained);
    zero(limbo_forced_flush);
    zero(noquiesce_requests);
    zero(noquiesce_honored);
    zero(noquiesce_ignored_nested);
    zero(noquiesce_ignored_free);
    zero(tm_allocs);
    zero(tm_frees);
    zero(deferred_run);
    zero(condvar_waits);
    zero(condvar_timeouts);
    zero(htm_retries);
    zero(stm_read_dedup);
    zero(htm_read_dedup);
    zero(htm_rw_hits);
  }

  void bump(Counter& c, std::uint64_t n = 1) noexcept {
    c.fetch_add(n, std::memory_order_relaxed);
  }
};

/// Plain-value aggregate of every live thread's TxStats.
struct StatsSnapshot {
  std::uint64_t txn_starts = 0;
  std::uint64_t commits = 0;
  std::uint64_t commits_readonly = 0;
  std::uint64_t aborts[static_cast<int>(AbortCause::kCount)] = {};
  std::uint64_t serial_fallbacks = 0;
  std::uint64_t serial_commits = 0;
  std::uint64_t lock_sections = 0;
  std::uint64_t quiesce_calls = 0;
  std::uint64_t quiesce_waits = 0;
  std::uint64_t quiesce_spins = 0;
  std::uint64_t quiesce_wait_ns = 0;
  std::uint64_t grace_scans = 0;
  std::uint64_t grace_shared = 0;
  std::uint64_t parked_waits = 0;
  std::uint64_t limbo_enqueued = 0;
  std::uint64_t limbo_drained = 0;
  std::uint64_t limbo_forced_flush = 0;
  std::uint64_t noquiesce_requests = 0;
  std::uint64_t noquiesce_honored = 0;
  std::uint64_t noquiesce_ignored_nested = 0;
  std::uint64_t noquiesce_ignored_free = 0;
  std::uint64_t tm_allocs = 0;
  std::uint64_t tm_frees = 0;
  std::uint64_t deferred_run = 0;
  std::uint64_t condvar_waits = 0;
  std::uint64_t condvar_timeouts = 0;
  std::uint64_t htm_retries = 0;
  std::uint64_t stm_read_dedup = 0;
  std::uint64_t htm_read_dedup = 0;
  std::uint64_t htm_rw_hits = 0;

  std::uint64_t aborts_total() const noexcept {
    std::uint64_t t = 0;
    for (auto a : aborts) t += a;
    return t;
  }

  /// Fraction of speculative attempts that aborted (0 when none started).
  double abort_rate() const noexcept {
    return txn_starts ? static_cast<double>(aborts_total()) /
                            static_cast<double>(txn_starts)
                      : 0.0;
  }

  /// Fraction of logical transactions whose final execution was serial.
  double serial_fraction() const noexcept {
    const std::uint64_t logical = commits + serial_commits;
    return logical ? static_cast<double>(serial_commits) /
                         static_cast<double>(logical)
                   : 0.0;
  }

  /// Multi-line human-readable report.
  std::string report() const;
};

/// Sum the counters of every registered thread (safe while threads run; the
/// result is then approximate, exact at barriers).
StatsSnapshot aggregate_stats() noexcept;

/// Zero every registered thread's counters.
void reset_stats() noexcept;

}  // namespace tle
